# SpotDC build/verify entry points.
#
#   make check          tier-1 verification plus vet and the race detector
#                       (the parallel exact-clearing candidate evaluator must
#                       stay race-clean)
#   make test           tier-1 verification only (build + tests)
#   make bench-clearing scan vs exact Fig. 7(b) clearing-time comparison
#   make bench          the full benchmark suite

GO ?= go

.PHONY: check test bench bench-clearing

check:
	./scripts/check.sh

test:
	$(GO) build ./...
	$(GO) test ./...

bench-clearing:
	./scripts/bench-clearing.sh

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
