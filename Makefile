# SpotDC build/verify entry points.
#
#   make check          tier-1 verification plus vet and the race detector
#                       (the parallel exact-clearing candidate evaluator must
#                       stay race-clean)
#   make test           tier-1 verification only (build + tests)
#   make smoke-faults   seeded fault-schedule smoke run: 220 networked slots
#                       with bid loss, broadcast loss, severed connections
#                       and a forced operator failure, race detector on
#   make smoke-metrics  observability smoke run: a short networked market
#                       scraped over live HTTP /metrics mid-run, race
#                       detector on
#   make smoke-emergency emergency-loop smoke run: a seeded overload on a
#                       networked market triggers spot reclamation, rack
#                       PDU budget resets, tenant budget broadcasts and
#                       recovery, race detector on
#   make audit-replay   conservation audit smoke: the seeded 220-slot
#                       networked run journals full slot inputs and the
#                       offline auditor replays every cleared slot
#                       bit-identically through both engines
#   make smoke-wire     binary-wire smoke run: the seeded 220-slot fault
#                       schedule entirely on the binary encoding, plus the
#                       mixed-fleet JSON/binary interop contract, race
#                       detector on
#   make smoke-spans    tracing smoke run: the seeded 220-slot networked
#                       market traced at 100% sampling must yield one root
#                       span per journaled slot with full stage coverage
#                       and tenant traces adopted over both encodings,
#                       plus the span-journal → Chrome trace-event
#                       pipeline, race detector on
#   make smoke-crash    crash-injection smoke run: the seeded 220-slot
#                       networked market killed at randomized slot
#                       boundaries (one kill tearing the WAL tail) and
#                       recovered from the state directory each time must
#                       produce books, responder state, invoices and a
#                       slot journal bit-identical to an uninterrupted
#                       run, race detector on
#   make bench-clearing scan vs exact Fig. 7(b) clearing-time comparison
#   make bench-proto    wire-layer benchmarks: codec cost per encoding and
#                       the concurrent broadcast fan-out vs the serial JSON
#                       baseline
#   make bench          the full benchmark suite, recorded as the next free
#                       BENCH_<n>.json artifact (scripts/bench.sh)

GO ?= go

.PHONY: check test smoke-faults smoke-metrics smoke-emergency smoke-wire smoke-spans smoke-crash audit-replay bench bench-clearing bench-proto

check:
	./scripts/check.sh

test:
	$(GO) build ./...
	$(GO) test ./...

smoke-faults:
	$(GO) test -race -count=1 -v -run 'TestNetRunSeededFaultSchedule' ./internal/sim/

smoke-metrics:
	$(GO) test -race -count=1 -v -run 'TestSmokeMetricsScrape' .

smoke-emergency:
	$(GO) test -race -count=1 -v -run 'TestNetRunEmergency' ./internal/sim/

smoke-wire:
	$(GO) test -race -count=1 -v -run 'TestSmokeWire|TestMixedFleetInteropMatchesAllJSON' ./internal/sim/

smoke-spans:
	$(GO) test -race -count=1 -v -run 'TestNetRunSpansMatchFaultSchedule|TestSmokeSpans' ./internal/sim/

smoke-crash:
	$(GO) test -race -count=1 -v -run 'TestCrash' ./internal/sim/ ./internal/billing/

audit-replay:
	$(GO) test -race -count=1 -v -run 'TestGoldenNetRunJournalReplay' ./internal/audit/

bench-clearing:
	./scripts/bench-clearing.sh

bench-proto:
	$(GO) test -run '^$$' -bench 'BenchmarkCodec|BenchmarkBroadcast' -benchmem ./internal/proto/

bench:
	./scripts/bench.sh
