#!/bin/sh
# bench.sh — run the repository benchmark suite and emit a machine-readable
# BENCH_<n>.json artifact (benchmark name → ns/op, B/op, allocs/op) so the
# performance trajectory is tracked across PRs. BENCH_0.json is the PR 3
# pre-optimization baseline; BENCH_1.json the post-optimization state; later
# PRs append BENCH_2.json, BENCH_3.json, ...
#
# Usage: scripts/bench.sh [index]
#   index        numeric suffix for BENCH_<index>.json (default: next free)
#
# Environment:
#   BENCH_FILTER regex of benchmarks to run (default: .)
#   BENCH_TIME   value for -benchtime (default: 1x)
set -eu
cd "$(dirname "$0")/.."

idx="${1:-}"
if [ -z "$idx" ]; then
	idx=0
	while [ -e "BENCH_${idx}.json" ]; do idx=$((idx + 1)); done
fi
out="BENCH_${idx}.json"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench "${BENCH_FILTER:-.}" -benchtime "${BENCH_TIME:-1x}" -benchmem ./... | tee "$tmp"

# Environment metadata embedded in the artifact: numbers are only
# comparable across runs made in the same environment, so record it.
go_version="$(go version | sed 's/^go version //')"
gomaxprocs="${GOMAXPROCS:-$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)}"
cpu_model="$(awk -F': *' '/^model name/ { print $2; exit }' /proc/cpuinfo 2>/dev/null || true)"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
	-v go_version="$go_version" -v gomaxprocs="$gomaxprocs" -v cpu_model="$cpu_model" '
/^goos:/ { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
	# Wire-layer benchmarks carry their encoding in the name; surface the
	# set covered by this run in the metadata block.
	if ($1 ~ /\/json/) encodings["json"] = 1
	if ($1 ~ /\/binary/ || $1 ~ /^BenchmarkBroadcast\//) encodings["binary"] = 1
	if ($1 ~ /SerialJSON/) encodings["json"] = 1
	name = $1; ns = ""; bytes = ""; allocs = ""
	for (i = 2; i < NF; i++) {
		if ($(i + 1) == "ns/op") ns = $i
		if ($(i + 1) == "B/op") bytes = $i
		if ($(i + 1) == "allocs/op") allocs = $i
	}
	if (ns == "") next
	n++
	line = sprintf("    \"%s\": {\"ns_per_op\": %s", name, ns)
	if (bytes != "") line = line sprintf(", \"bytes_per_op\": %s", bytes)
	if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
	lines[n] = line "}"
}
END {
	if (cpu == "" && cpu_model != "") cpu = cpu_model
	printf "{\n"
	printf "  \"date\": \"%s\",\n", date
	printf "  \"go_version\": \"%s\",\n", go_version
	printf "  \"gomaxprocs\": %s,\n", (gomaxprocs == "" ? 0 : gomaxprocs)
	printf "  \"goos\": \"%s\",\n", goos
	printf "  \"goarch\": \"%s\",\n", goarch
	printf "  \"cpu\": \"%s\",\n", cpu
	enc = ""
	if ("json" in encodings) enc = "\"json\""
	if ("binary" in encodings) enc = enc (enc == "" ? "" : ", ") "\"binary\""
	printf "  \"wire_encodings\": [%s],\n", enc
	printf "  \"benchmarks\": {\n"
	for (i = 1; i <= n; i++) printf "%s%s\n", lines[i], (i < n ? "," : "")
	printf "  }\n}\n"
}' "$tmp" >"$out"

echo "bench: wrote $out"
