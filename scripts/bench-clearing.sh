#!/bin/sh
# bench-clearing.sh — compare the grid-scan and exact breakpoint-driven
# clearing engines on the Fig. 7(b) operating points. The ISSUE acceptance
# bar is >= 5x at racks=15000 / step=0.001 (the paper's headline "clearing
# in < 1 s at 15,000 racks" scalability claim).
#
# Usage: scripts/bench-clearing.sh [benchtime]   (default 10x)
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${1:-10x}"

go test -run '^$' \
    -bench 'BenchmarkFig7bClearingTime' \
    -benchtime "$BENCHTIME" \
    . | awk '
/algo=scan/  { scan[$1] = $3 }
/algo=exact/ { key = $1; sub(/algo=exact/, "algo=scan", key); exact[key] = $3 }
{ print }
END {
    print ""
    print "speedup (scan / exact):"
    for (k in scan) if (k in exact && exact[k] > 0) {
        name = k; sub(/\/algo=scan/, "", name)
        printf "  %-40s %.2fx\n", name, scan[k] / exact[k]
    }
}'
