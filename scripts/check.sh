#!/bin/sh
# check.sh — the repo's full verification gate:
#
#   1. go build ./...        everything compiles
#   2. go vet ./...          static checks
#   3. go test -race on the concurrency-heavy packages — the protocol
#      layer (sessions, reconnect, fault injection) and the networked
#      simulator harness — so the Section III-C robustness machinery is
#      exercised under race checking explicitly on every run
#   4. go test -race ./...   everything else under the race detector, so
#                            the parallel candidate evaluation inside the
#                            exact clearing engine
#                            (internal/core/clear_exact.go) is covered too
#
# Tier-1 (ROADMAP.md) remains `go build ./... && go test ./...`; this script
# is a superset of it.
set -eu
cd "$(dirname "$0")/.."

echo '== go build ./...'
go build ./...
echo '== go vet ./...'
go vet ./...
echo '== go test -race ./internal/proto/... ./internal/sim/...'
go test -race -count=1 ./internal/proto/... ./internal/sim/...
echo '== go test -race ./...'
go test -race ./...
echo 'check: OK'
