#!/bin/sh
# check.sh — the repo's full verification gate:
#
#   1. go build ./...        everything compiles
#   2. go vet ./...          static checks
#   3. go test -race ./...   all tests under the race detector, so the
#                            parallel candidate evaluation inside the exact
#                            clearing engine (internal/core/clear_exact.go)
#                            is exercised with race checking on every run
#
# Tier-1 (ROADMAP.md) remains `go build ./... && go test ./...`; this script
# is a superset of it.
set -eu
cd "$(dirname "$0")/.."

echo '== go build ./...'
go build ./...
echo '== go vet ./...'
go vet ./...
echo '== go test -race ./...'
go test -race ./...
echo 'check: OK'
