#!/bin/sh
# check.sh — the repo's full verification gate:
#
#   1. go build ./...        everything compiles
#   2. go vet ./...          static checks
#   3. go test -race on the concurrency-heavy packages — the protocol
#      layer (sessions, reconnect, fault injection) and the networked
#      simulator harness — so the Section III-C robustness machinery is
#      exercised under race checking explicitly on every run
#   4. targeted -race on the parallel-engine determinism tests — the
#      serial-vs-parallel bit-reproducibility contracts of the simulator
#      (Scenario.Parallel) and the experiment fan-out (Options.Workers);
#      the tests force GOMAXPROCS=4 internally so the parallel phases
#      really interleave even on a single-core runner
#   5. go test -race ./...   everything else under the race detector, so
#                            the parallel candidate evaluation inside the
#                            exact clearing engine
#                            (internal/core/clear_exact.go) is covered too
#   6. the observability smoke: a short networked market scraped over
#      live HTTP /metrics mid-run (make smoke-metrics), proving the
#      scrape surface end to end on every check
#   7. the emergency-loop smoke: a seeded overload on a networked market
#      drives the full Section III-C arc — spot reclamation, rack PDU
#      budget resets, tenant budget broadcasts, suspension and recovery —
#      under the race detector (make smoke-emergency)
#   8. the audit-replay gate: the seeded 220-slot networked fault run
#      journals full slot inputs (schema v2) and the offline auditor
#      (internal/audit) replays every cleared slot bit-identically
#      through both clearing engines, re-checking the conservation
#      invariants end to end (make audit-replay)
#   9. the wire smoke: the seeded 220-slot fault schedule entirely on the
#      binary encoding with an audit replay, plus the mixed-fleet interop
#      contract — JSON and binary tenants in one market produce the same
#      journal and metrics as an all-JSON fleet (make smoke-wire)
#  10. the tracing smoke: the seeded 220-slot networked market traced at
#      100% sampling must produce exactly one root span per journaled
#      slot with predict/clear/WAL/broadcast stage coverage, tenant
#      traces adopted into the operator's over both wire encodings, and
#      a span journal that converts to valid Chrome trace-event JSON
#      (make smoke-spans)
#  11. the crash-recovery smoke: the seeded 220-slot networked market is
#      killed at randomized slot boundaries — one kill leaving a torn WAL
#      record, one mid-emergency-suspension — and recovered from the
#      state directory each time; books, responder state, billing
#      invoices and the slot journal must come out bit-identical to an
#      uninterrupted run (make smoke-crash)
#  12. a one-iteration smoke of the Fig. 7(b) clearing benchmark, which
#      doubles as a regression tripwire for the allocation-free hot loop
#      (the alloc budgets themselves are enforced by TestClearAllocBudget
#      and, with instrumentation or tracing on, by
#      TestClearAllocBudgetInstrumented and TestClearAllocBudgetTraced),
#      and of the wire-layer benchmarks (their steady-state alloc budgets
#      are enforced by TestWireAllocBudget)
#
# Tier-1 (ROADMAP.md) remains `go build ./... && go test ./...`; this script
# is a superset of it.
set -eu
cd "$(dirname "$0")/.."

echo '== go build ./...'
go build ./...
echo '== go vet ./...'
go vet ./...
echo '== go test -race ./internal/proto/... ./internal/sim/...'
go test -race -count=1 ./internal/proto/... ./internal/sim/...
echo '== go test -race (parallel determinism contracts)'
go test -race -count=1 -run 'TestParallelMatchesSerial' ./internal/sim/
go test -race -count=1 -run 'TestFanOutDeterminism' ./internal/experiments/
echo '== go test -race ./...'
go test -race ./...
echo '== smoke: /metrics scrape of a live networked market'
go test -race -count=1 -run 'TestSmokeMetricsScrape' .
echo '== smoke: emergency loop on a networked market'
go test -race -count=1 -run 'TestNetRunEmergency' ./internal/sim/
echo '== audit replay: seeded journal through both engines'
go test -race -count=1 -run 'TestGoldenNetRunJournalReplay' ./internal/audit/
echo '== smoke: binary wire + mixed-fleet interop'
go test -race -count=1 -run 'TestSmokeWire|TestMixedFleetInteropMatchesAllJSON' ./internal/sim/
echo '== smoke: slot-lifecycle tracing + Chrome trace export'
go test -race -count=1 -run 'TestNetRunSpansMatchFaultSchedule|TestSmokeSpans' ./internal/sim/
echo '== smoke: crash injection + WAL recovery'
go test -race -count=1 -run 'TestCrash' ./internal/sim/ ./internal/billing/
echo '== bench smoke: Fig. 7(b) clearing'
go test -run '^$' -bench 'BenchmarkFig7bClearingTime' -benchtime 1x -benchmem .
echo '== bench smoke: wire codec + broadcast fan-out'
go test -run '^$' -bench 'BenchmarkCodec|BenchmarkBroadcast' -benchtime 1x -benchmem ./internal/proto/
echo 'check: OK'
