module spotdc

go 1.22
