// Benchmarks regenerating every table and figure of the paper's evaluation
// (one benchmark per experiment; DESIGN.md maps IDs to paper artifacts).
// Horizons are bench-sized via ExperimentOptions; run
// cmd/spotdc-experiments for the full-scale numbers recorded in
// EXPERIMENTS.md.
package spotdc_test

import (
	"fmt"
	"testing"

	"spotdc"
)

// benchOpt shrinks the experiment horizons so each benchmark iteration
// stays in the tens-of-milliseconds range while exercising the same code
// paths as the full runs.
func benchOpt() spotdc.ExperimentOptions {
	return spotdc.ExperimentOptions{
		Seed:          42,
		LongSlots:     1200,
		ScaleTenants:  []int{8, 50},
		ScaleSlots:    60,
		ClearingRacks: []int{1500},
	}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	opt := benchOpt()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := spotdc.RunExperiment(id, opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// Table I: building the scaled-down testbed scenario.
func BenchmarkTableITestbedBuild(b *testing.B) { benchExperiment(b, "table1") }

// Fig. 2(b): aggregate-power CDFs with and without oversubscription.
func BenchmarkFig2PowerCDF(b *testing.B) { benchExperiment(b, "fig2b") }

// Fig. 3: demand-function shapes and the 10-rack aggregate.
func BenchmarkFig3DemandFunctions(b *testing.B) { benchExperiment(b, "fig3") }

// Fig. 7(a): PDU power variation between consecutive slots.
func BenchmarkFig7aPowerVariation(b *testing.B) { benchExperiment(b, "fig7a") }

// Fig. 7(b): market clearing time at scale (the headline scalability
// result). Sub-benchmarks measure one clearing round directly at the
// paper's operating points — up to 15,000 racks, price steps of 0.1 and 1
// cents/kW — for both engines: the paper's grid scan and the exact
// breakpoint-driven search (scripts/bench-clearing.sh compares them).
func BenchmarkFig7bClearingTime(b *testing.B) {
	for _, racks := range []int{1500, 5000, 15000} {
		for _, step := range []float64{0.001, 0.01} {
			for _, algo := range []spotdc.ClearingAlgorithm{spotdc.AlgorithmScan, spotdc.AlgorithmExact} {
				b.Run(fmt.Sprintf("racks=%d/step=%v/algo=%v", racks, step, algo), func(b *testing.B) {
					cons, bids := syntheticMarket(racks)
					mkt, err := spotdc.NewMarket(cons, spotdc.MarketOptions{PriceStep: step, Algorithm: algo})
					if err != nil {
						b.Fatal(err)
					}
					// Warm up the market's reusable scratch buffers once: a
					// market clears every slot of its life, so the
					// steady-state per-slot cost is the meaningful figure
					// (and -benchtime=1x runs would otherwise charge the
					// one-time warm-up growth to the measurement).
					if _, err := mkt.Clear(bids); err != nil {
						b.Fatal(err)
					}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						res, err := mkt.Clear(bids)
						if err != nil {
							b.Fatal(err)
						}
						if res.TotalWatts <= 0 {
							b.Fatal("nothing cleared")
						}
					}
				})
			}
		}
	}
}

// syntheticMarket fabricates a large data center: 50 racks per PDU, one
// elastic bid per rack with testbed-like parameters (mirrors the Fig. 7(b)
// experiment driver).
func syntheticMarket(racks int) (spotdc.Constraints, []spotdc.Bid) {
	pdus := (racks + 49) / 50
	cons := spotdc.Constraints{
		RackHeadroom: make([]float64, racks),
		RackPDU:      make([]int, racks),
		PDUSpot:      make([]float64, pdus),
		UPSSpot:      float64(racks) * 20,
	}
	bids := make([]spotdc.Bid, 0, racks)
	for i := 0; i < racks; i++ {
		cons.RackHeadroom[i] = 60
		cons.RackPDU[i] = i / 50
		cons.PDUSpot[i/50] += 25
		v := float64((int64(i)*2654435761 + 42) % 97 / 1)
		v = v / 97
		bids = append(bids, spotdc.Bid{Rack: i, Tenant: fmt.Sprintf("t%d", i), Fn: spotdc.LinearBid{
			DMax: 20 + 40*v,
			DMin: 5 * v,
			QMin: 0.02 + 0.1*v,
			QMax: 0.16 + 0.5*v,
		}})
	}
	return cons, bids
}

// Fig. 8: power-performance relation tables.
func BenchmarkFig8PowerPerformance(b *testing.B) { benchExperiment(b, "fig8") }

// Fig. 9: dollar-valued performance-gain curves.
func BenchmarkFig9PerfGain(b *testing.B) { benchExperiment(b, "fig9") }

// Fig. 10: the 20-minute testbed trace (allocation + price).
func BenchmarkFig10Trace(b *testing.B) { benchExperiment(b, "fig10") }

// Fig. 11: tenant performance over the 20-minute trace.
func BenchmarkFig11Performance(b *testing.B) { benchExperiment(b, "fig11") }

// Fig. 12: cost/performance/spot-usage vs PowerCapped and MaxPerf.
func BenchmarkFig12CostPerf(b *testing.B) { benchExperiment(b, "fig12") }

// Fig. 13: CDFs of market price and UPS power utilization.
func BenchmarkFig13CDFs(b *testing.B) { benchExperiment(b, "fig13") }

// Fig. 14: StepBid vs LinearBid vs FullBid across spot availability.
func BenchmarkFig14DemandFunctions(b *testing.B) { benchExperiment(b, "fig14") }

// Fig. 15: profit and performance vs spot availability.
func BenchmarkFig15Availability(b *testing.B) { benchExperiment(b, "fig15") }

// Fig. 16: price-predicting strategic bidding.
func BenchmarkFig16Strategy(b *testing.B) { benchExperiment(b, "fig16") }

// Fig. 17: conservative spot under-prediction sweep.
func BenchmarkFig17UnderPrediction(b *testing.B) { benchExperiment(b, "fig17") }

// Fig. 18: scaling the number of tenants.
func BenchmarkFig18Scale(b *testing.B) { benchExperiment(b, "fig18") }

// Ablation: the per-PDU pricing alternative discussed in DESIGN.md,
// compared against the paper's single uniform price on the same bids.
func BenchmarkAblationPerPDUPricing(b *testing.B) {
	cons, bids := syntheticMarket(1500)
	mkt, err := spotdc.NewMarket(cons, spotdc.MarketOptions{PriceStep: 0.005})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("uniform", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mkt.Clear(bids); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("per-pdu", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mkt.ClearPerPDU(bids); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Ablation: clearing-price step size vs revenue found (finer steps cost
// time; DESIGN.md calls this design choice out).
func BenchmarkAblationPriceStep(b *testing.B) {
	cons, bids := syntheticMarket(3000)
	for _, step := range []float64{0.0005, 0.001, 0.005, 0.01, 0.05} {
		b.Run(fmt.Sprintf("step=%v", step), func(b *testing.B) {
			mkt, err := spotdc.NewMarket(cons, spotdc.MarketOptions{PriceStep: step})
			if err != nil {
				b.Fatal(err)
			}
			var revenue float64
			for i := 0; i < b.N; i++ {
				res, err := mkt.Clear(bids)
				if err != nil {
					b.Fatal(err)
				}
				revenue = res.RevenueRate
			}
			b.ReportMetric(revenue, "revenue-$/h")
		})
	}
}

// Extension benchmarks (beyond the paper's tables/figures).

// Clearing under the Section III-A extras (heat-density zones and phase
// balance) scans every candidate price with full constraint checks.
func BenchmarkExtrasClearing(b *testing.B) {
	cons, bids := syntheticMarket(1500)
	mkt, err := spotdc.NewMarket(cons, spotdc.MarketOptions{PriceStep: 0.005})
	if err != nil {
		b.Fatal(err)
	}
	phases := make(spotdc.PhaseOf, len(cons.RackHeadroom))
	zones := make([]spotdc.Zone, 0, len(cons.RackHeadroom)/10)
	for i := range phases {
		phases[i] = i % 3
	}
	for z := 0; z+10 <= len(cons.RackHeadroom); z += 10 {
		racks := make([]int, 10)
		for j := range racks {
			racks[j] = z + j
		}
		zones = append(zones, spotdc.Zone{Name: fmt.Sprintf("z%d", z), Racks: racks, MaxWatts: 250})
	}
	if err := mkt.SetExtras(&spotdc.Extras{Zones: zones, RackPhase: phases, PhaseImbalance: 0.5}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mkt.ClearWithExtras(bids); err != nil {
			b.Fatal(err)
		}
	}
}

// The tenant-side PI power-capping loop converging to a new budget.
func BenchmarkCappingSettle(b *testing.B) {
	model := spotdc.ServerModel{IdleWatts: 60, PeakWatts: 205, Alpha: 1.5, MinKnob: 0.2}
	for i := 0; i < b.N; i++ {
		c, err := spotdc.NewCapController(spotdc.CapConfig{Model: model, InitialBudget: 145})
		if err != nil {
			b.Fatal(err)
		}
		if _, ticks := c.Settle(0.95, 0.5, 500); ticks >= 500 {
			b.Fatal("did not settle")
		}
	}
}

// Invoice generation from a finished month-scale run.
func BenchmarkInvoices(b *testing.B) {
	sc, err := spotdc.Testbed(spotdc.TestbedOptions{Seed: 42, Slots: 2000})
	if err != nil {
		b.Fatal(err)
	}
	res, err := spotdc.Run(sc, spotdc.RunOptions{Mode: spotdc.ModeSpotDC})
	if err != nil {
		b.Fatal(err)
	}
	pricing := spotdc.DefaultPricing()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		invs, err := spotdc.Invoices(res, pricing)
		if err != nil {
			b.Fatal(err)
		}
		if len(invs) != 8 {
			b.Fatal("wrong invoice count")
		}
	}
}
