// Tracing must not bend the clearing hot loop's allocation budgets: a nil
// Tracer costs one branch per span site and zero allocations (the budgets
// here are IDENTICAL to TestClearAllocBudget's), and a sampling tracer
// stays within a small constant budget per Clear — the span freelist, the
// value-type ring and the fixed attr array mean steady state recycles
// everything. BenchmarkSlotTraceOverhead measures the wall-clock cost of
// tracing a full slot (root span + clear child) against the untraced
// clear; the PR target is <= 5% (run with -count and benchstat for a
// rigorous comparison).
package spotdc_test

import (
	"testing"

	"spotdc"
)

// tracedMarket builds a 15,000-rack market whose Clear opens a "clear"
// span under root. A nil tracer exercises the tracing-off branch.
func tracedMarket(t testing.TB, algo spotdc.ClearingAlgorithm, tr *spotdc.Tracer) (*spotdc.Market, []spotdc.Bid, *spotdc.Span) {
	t.Helper()
	cons, bids := syntheticMarket(15000)
	mkt, err := spotdc.NewMarket(cons, spotdc.MarketOptions{
		PriceStep: 0.001,
		Algorithm: algo,
		Trace:     tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	root := tr.StartRoot("slot", 0)
	mkt.SetTraceParent(root)
	return mkt, bids, root
}

func TestClearAllocBudgetTraced(t *testing.T) {
	for _, tc := range []struct {
		name   string
		algo   spotdc.ClearingAlgorithm
		tracer *spotdc.Tracer
		budget float64
	}{
		// Tracing off: budgets identical to TestClearAllocBudget — a nil
		// tracer adds zero allocations to either engine.
		{"off", spotdc.AlgorithmScan, nil, 0},
		{"off", spotdc.AlgorithmExact, nil, 32},
		// Tracing on at 100% sampling: the span comes from the freelist and
		// publishes into the preallocated ring, so the steady-state budget
		// gains only slack for runtime variation, not a per-span cost.
		{"on", spotdc.AlgorithmScan, spotdc.NewTracer(spotdc.TracerOptions{SampleEvery: 1, Seed: 1}), 4},
		{"on", spotdc.AlgorithmExact, spotdc.NewTracer(spotdc.TracerOptions{SampleEvery: 1, Seed: 1}), 36},
	} {
		t.Run(tc.name+"/"+tc.algo.String(), func(t *testing.T) {
			mkt, bids, root := tracedMarket(t, tc.algo, tc.tracer)
			defer root.End()
			if _, err := mkt.Clear(bids); err != nil {
				t.Fatal(err)
			}
			avg := testing.AllocsPerRun(5, func() {
				if _, err := mkt.Clear(bids); err != nil {
					t.Fatal(err)
				}
			})
			if avg > tc.budget {
				t.Errorf("algo %v tracing %s: %v allocs/Clear at 15000 racks, budget %v",
					tc.algo, tc.name, avg, tc.budget)
			}
		})
	}
}

// BenchmarkSlotTraceOverhead compares a traced slot — root span, clear
// child with its attrs, End — against the identical untraced sequence
// (every call nil-safe, so the off case measures the branch cost alone).
// Recorded as BENCH_3.json (scripts/bench.sh).
func BenchmarkSlotTraceOverhead(b *testing.B) {
	run := func(b *testing.B, tr *spotdc.Tracer) {
		b.Helper()
		cons, bids := syntheticMarket(15000)
		mkt, err := spotdc.NewMarket(cons, spotdc.MarketOptions{
			PriceStep: 0.001, Algorithm: spotdc.AlgorithmScan, Trace: tr,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := mkt.Clear(bids); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			root := tr.StartRoot("slot", i)
			mkt.SetTraceParent(root)
			if _, err := mkt.Clear(bids); err != nil {
				b.Fatal(err)
			}
			mkt.SetTraceParent(nil)
			root.End()
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("on", func(b *testing.B) {
		run(b, spotdc.NewTracer(spotdc.TracerOptions{SampleEvery: 1, Seed: 1}))
	})
}
