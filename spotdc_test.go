package spotdc_test

import (
	"math"
	"testing"

	"spotdc"
)

// reading for the quickstart topology used across these tests.
func quickTopo(t *testing.T) *spotdc.Topology {
	t.Helper()
	topo, err := spotdc.NewTopology(1370,
		[]spotdc.PDU{{ID: "PDU#1", Capacity: 715}, {ID: "PDU#2", Capacity: 724}},
		[]spotdc.Rack{
			{ID: "S-1", Tenant: "search", PDU: 0, Guaranteed: 145, SpotHeadroom: 60},
			{ID: "O-1", Tenant: "count", PDU: 0, Guaranteed: 125, SpotHeadroom: 60},
			{ID: "S-3", Tenant: "search2", PDU: 1, Guaranteed: 145, SpotHeadroom: 60},
		})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestPublicMarketRound(t *testing.T) {
	topo := quickTopo(t)
	op, err := spotdc.NewOperator(spotdc.OperatorConfig{
		Topology:      topo,
		MarketOptions: spotdc.MarketOptions{PriceStep: 0.001},
	})
	if err != nil {
		t.Fatal(err)
	}
	reading := spotdc.Reading{
		RackWatts:     []float64{120, 100, 120},
		OtherPDUWatts: []float64{200, 200},
	}
	bids := []spotdc.Bid{
		{Rack: 0, Tenant: "search", Fn: spotdc.LinearBid{DMax: 40, DMin: 15, QMin: 0.18, QMax: 0.45}},
		{Rack: 1, Tenant: "count", Fn: spotdc.LinearBid{DMax: 60, DMin: 6, QMin: 0.02, QMax: 0.18}},
	}
	out, err := op.RunSlot(bids, reading, 2.0/60)
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.TotalWatts <= 0 || out.Result.Price <= 0 {
		t.Errorf("clearing: %+v", out.Result)
	}
	if op.SpotRevenue() != out.RevenueThisSlot {
		t.Error("revenue accounting mismatch")
	}
}

func TestPublicDemandFunctions(t *testing.T) {
	var fns []spotdc.DemandFunc
	fns = append(fns, spotdc.LinearBid{DMax: 50, DMin: 10, QMin: 0.1, QMax: 0.3})
	fns = append(fns, spotdc.StepBid{D: 40, QMax: 0.2})
	fb, err := spotdc.NewFullBid([]spotdc.PricePoint{{Price: 0.1, Demand: 50}, {Price: 0.3, Demand: 0}})
	if err != nil {
		t.Fatal(err)
	}
	fns = append(fns, fb)
	for _, fn := range fns {
		if fn.Demand(0) <= 0 {
			t.Errorf("%T demands nothing at price 0", fn)
		}
		if fn.Demand(fn.MaxPrice()+0.01) != 0 {
			t.Errorf("%T demands above max price", fn)
		}
	}
}

func TestPublicBundleBids(t *testing.T) {
	bids, err := spotdc.BundleBids("web", []int{0, 2}, []float64{40, 30}, []float64{10, 5}, 0.1, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(bids) != 2 || bids[0].Tenant != "web" {
		t.Errorf("bids = %+v", bids)
	}
}

func TestPublicMaxPerf(t *testing.T) {
	cons := spotdc.Constraints{
		RackHeadroom: []float64{60, 60},
		RackPDU:      []int{0, 0},
		PDUSpot:      []float64{80},
		UPSSpot:      80,
	}
	allocs, err := spotdc.MaxPerf(cons, []spotdc.MaxPerfRequest{
		{Rack: 0, MaxWatts: 60, Gain: func(w float64) float64 { return 0.002 * w }},
		{Rack: 1, MaxWatts: 60, Gain: func(w float64) float64 { return 0.001 * w }},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if allocs[0].Watts+allocs[1].Watts > 80+1e-9 {
		t.Error("MaxPerf exceeded PDU spot")
	}
	if allocs[0].Watts < allocs[1].Watts {
		t.Error("higher gain rack should receive at least as much")
	}
}

func TestPublicTestbedRun(t *testing.T) {
	sc, err := spotdc.Testbed(spotdc.TestbedOptions{Seed: 1, Slots: 100})
	if err != nil {
		t.Fatal(err)
	}
	res, err := spotdc.Run(sc, spotdc.RunOptions{Mode: spotdc.ModeSpotDC})
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots != 100 {
		t.Errorf("slots = %d", res.Slots)
	}
	cost, err := spotdc.TenantCost(res, spotdc.DefaultPricing(), "Search-1")
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Errorf("cost = %v", cost)
	}
	if math.IsNaN(res.Profit(500).ExtraProfitFraction) {
		t.Error("profit is NaN")
	}
}

func TestPublicScaled(t *testing.T) {
	sc, err := spotdc.Scaled(spotdc.ScaledOptions{
		Testbed: spotdc.TestbedOptions{Seed: 1, Slots: 20},
		Tenants: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Agents) != 16 {
		t.Errorf("agents = %d", len(sc.Agents))
	}
}

func TestPublicExperimentRegistry(t *testing.T) {
	ids := spotdc.Experiments()
	if len(ids) < 15 {
		t.Fatalf("only %d experiments registered: %v", len(ids), ids)
	}
	want := map[string]bool{"table1": false, "fig7b": false, "fig12": false, "fig18": false}
	for _, id := range ids {
		if _, ok := want[id]; ok {
			want[id] = true
		}
	}
	for id, seen := range want {
		if !seen {
			t.Errorf("experiment %s missing", id)
		}
	}
	rep, err := spotdc.RunExperiment("table1", spotdc.ExperimentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 10 {
		t.Errorf("table1 rows = %d", len(rep.Rows))
	}
	if _, err := spotdc.RunExperiment("nope", spotdc.ExperimentOptions{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}
