// Package spotdc is a Go implementation of SpotDC, the spot power-capacity
// market for multi-tenant data centers from "A Spot Capacity Market to
// Increase Power Infrastructure Utilization in Multi-Tenant Data Centers"
// (HPCA 2018).
//
// A multi-tenant (colocation) data center leases guaranteed power capacity
// to tenants who run their own servers. The aggregate demand fluctuates,
// leaving unused headroom — spot capacity — at the shared PDUs and UPS.
// SpotDC sells that headroom per time slot: tenants submit a four-parameter
// piece-wise linear demand function per rack, and the operator picks the
// uniform price maximizing its revenue subject to rack, PDU and UPS
// capacity constraints.
//
// The package surface mirrors the system's layers:
//
//   - Topology / NewTopology describe the power-delivery tree.
//   - LinearBid, StepBid, FullBid and Market / NewMarket implement demand
//     function bidding and uniform-price clearing (the paper's core).
//   - Operator / NewOperator add spot prediction, billing and profit
//     accounting (Algorithm 1).
//   - Sprint, Opp and BundledSprint are ready-made tenant agents with the
//     paper's workload and cost models.
//   - Testbed, Scaled, Run and Mode* reproduce the paper's evaluation
//     scenarios end to end.
//   - RunExperiment regenerates any of the paper's tables and figures.
//
// Quick start (one market round):
//
//	topo, _ := spotdc.NewTopology(1370,
//		[]spotdc.PDU{{ID: "PDU#1", Capacity: 715}},
//		[]spotdc.Rack{{ID: "S-1", Tenant: "search", PDU: 0, Guaranteed: 145, SpotHeadroom: 60}})
//	op, _ := spotdc.NewOperator(spotdc.OperatorConfig{Topology: topo})
//	out, _ := op.RunSlot([]spotdc.Bid{{
//		Rack: 0, Tenant: "search",
//		Fn:   spotdc.LinearBid{DMax: 40, DMin: 15, QMin: 0.1, QMax: 0.4},
//	}}, reading, 2.0/60)
//	fmt.Println(out.Result.Price, out.Result.TotalWatts)
//
// See examples/ for runnable programs and DESIGN.md / EXPERIMENTS.md for
// the reproduction methodology.
package spotdc

import (
	"io"
	"net/http"
	"time"

	"spotdc/internal/audit"
	"spotdc/internal/billing"
	"spotdc/internal/capping"
	"spotdc/internal/config"
	"spotdc/internal/core"
	"spotdc/internal/experiments"
	"spotdc/internal/metrics"
	"spotdc/internal/operator"
	"spotdc/internal/otrace"
	"spotdc/internal/par"
	"spotdc/internal/power"
	"spotdc/internal/proto"
	"spotdc/internal/rackpdu"
	"spotdc/internal/sim"
	"spotdc/internal/tenant"
	"spotdc/internal/trace"
	"spotdc/internal/wal"
	"spotdc/internal/workload"
)

// Power hierarchy (internal/power).
type (
	// Topology is the UPS → PDU → rack power-delivery tree.
	Topology = power.Topology
	// PDU is one cluster-level power distribution unit.
	PDU = power.PDU
	// Rack is one tenant rack with guaranteed capacity and spot headroom.
	Rack = power.Rack
	// Reading is a per-rack power snapshot.
	Reading = power.Reading
	// Spot is the available spot capacity at every level for one slot.
	Spot = power.Spot
	// PredictOptions tunes spot-capacity prediction.
	PredictOptions = power.PredictOptions
	// Emergency is a capacity excursion report.
	Emergency = power.Emergency
)

// NewTopology validates and indexes a power topology.
func NewTopology(upsCapacity float64, pdus []PDU, racks []Rack) (*Topology, error) {
	return power.NewTopology(upsCapacity, pdus, racks)
}

// Market design (internal/core — the paper's contribution).
type (
	// DemandFunc is a rack's spot-capacity demand as a function of price.
	DemandFunc = core.DemandFunc
	// LinearBid is the paper's four-parameter piece-wise linear demand
	// function (Fig. 3(a)).
	LinearBid = core.LinearBid
	// StepBid is the Amazon-style all-or-nothing demand function.
	StepBid = core.StepBid
	// FullBid is a completely sampled demand curve.
	FullBid = core.FullBid
	// PricePoint samples a full demand curve.
	PricePoint = core.PricePoint
	// Bid pairs a rack with its demand function.
	Bid = core.Bid
	// Constraints carries the Eqn. (2)–(4) capacity limits.
	Constraints = core.Constraints
	// Market clears spot capacity at a uniform revenue-maximizing price.
	Market = core.Market
	// MarketOptions tunes the clearing-price search.
	MarketOptions = core.Options
	// Allocation is one rack's granted spot capacity.
	Allocation = core.Allocation
	// ClearingResult is the outcome of one market clearing.
	ClearingResult = core.Result
	// MaxPerfRequest exposes a rack's true gain curve to the MaxPerf
	// baseline.
	MaxPerfRequest = core.MaxPerfRequest
	// GainFunc maps granted watts to performance gain in $/h.
	GainFunc = core.GainFunc
	// ClearingAlgorithm selects the market-clearing engine (see
	// MarketOptions.Algorithm).
	ClearingAlgorithm = core.Algorithm
	// Breakpointer is the structural interface a demand function implements
	// to enable exact breakpoint-driven clearing.
	Breakpointer = core.Breakpointer
)

// Clearing-engine selectors for MarketOptions.Algorithm.
const (
	// AlgorithmAuto picks exact clearing when every bid exposes its
	// piece-wise linear structure, else falls back to the grid scan.
	AlgorithmAuto = core.AlgorithmAuto
	// AlgorithmScan forces the Section III-C grid scan (the reference
	// oracle).
	AlgorithmScan = core.AlgorithmScan
	// AlgorithmExact forces the breakpoint-driven exact engine.
	AlgorithmExact = core.AlgorithmExact
)

// ParseClearingAlgorithm parses "auto", "scan" or "exact" (empty means
// auto), for wiring the Algorithm knob through flags and config files.
func ParseClearingAlgorithm(s string) (ClearingAlgorithm, error) {
	return core.ParseAlgorithm(s)
}

// Optional Section III-A constraints (heat density, phase balance).
type (
	// Extras carries the optional zone and phase constraints.
	Extras = core.Extras
	// Zone is a heat-density (cooling) constraint over a set of racks.
	Zone = core.Zone
	// PhaseOf assigns racks to three-phase feeds.
	PhaseOf = core.PhaseOf
)

// NewMarket builds a clearing engine over the given constraints.
func NewMarket(cons Constraints, opts MarketOptions) (*Market, error) {
	return core.NewMarket(cons, opts)
}

// NewFullBid builds a FullBid from demand-curve samples.
func NewFullBid(points []PricePoint) (*FullBid, error) {
	return core.NewFullBid(points)
}

// BundleBids builds the per-rack linear bids of a multi-rack (bundled)
// demand vector (Section III-B3).
func BundleBids(tenantName string, racks []int, dMax, dMin []float64, qMin, qMax float64) ([]Bid, error) {
	return core.Bundle(tenantName, racks, dMax, dMin, qMin, qMax)
}

// MaxPerf allocates spot capacity to maximize total performance gain — the
// owner-operated baseline of Section V-B.
func MaxPerf(cons Constraints, reqs []MaxPerfRequest, quantumWatts float64) ([]Allocation, error) {
	return core.MaxPerf(cons, reqs, core.MaxPerfOptions{QuantumWatts: quantumWatts})
}

// Operator runtime (internal/operator).
type (
	// Operator runs the per-slot SpotDC control loop with billing.
	Operator = operator.Operator
	// OperatorConfig assembles an Operator.
	OperatorConfig = operator.Config
	// Pricing carries the monetary parameters of the evaluation.
	Pricing = operator.Pricing
	// SlotOutcome reports one slot of market operation.
	SlotOutcome = operator.SlotOutcome
	// ProfitReport summarizes operator profit vs the no-spot baseline.
	ProfitReport = operator.ProfitReport
)

// NewOperator builds the operator for a topology.
func NewOperator(cfg OperatorConfig) (*Operator, error) { return operator.New(cfg) }

// DefaultPricing returns the paper's evaluation parameters.
func DefaultPricing() Pricing { return operator.DefaultPricing() }

// Emergency response (internal/operator + internal/rackpdu): the Section
// III-C detect → reclaim → cap → verify loop.
type (
	// ResponderConfig arms the operator's emergency responder
	// (OperatorConfig.Emergency).
	ResponderConfig = operator.ResponderConfig
	// ReclaimPlan is one emergency's spot-first reclamation plan.
	ReclaimPlan = operator.ReclaimPlan
	// ReclaimTarget is one rack's budget reset within a ReclaimPlan.
	ReclaimTarget = operator.ReclaimTarget
	// RackPDU is a metered rack PDU with a settable power budget — the
	// physical enforcement point for emergency budget resets.
	RackPDU = rackpdu.PDU
	// RackPDUConfig parameterizes a RackPDU.
	RackPDUConfig = rackpdu.Config
	// RackPDUMetrics instruments a fleet of RackPDUs.
	RackPDUMetrics = rackpdu.Metrics
)

// PlanReclaim computes the spot-first proportional reclamation plan for one
// capacity emergency. Pure and deterministic: the audit replays it bit-exactly.
func PlanReclaim(topo *Topology, em Emergency, rackWatts, spotGrants []float64, escalationSeverity float64) ReclaimPlan {
	return operator.PlanReclaim(topo, em, rackWatts, spotGrants, escalationSeverity)
}

// NewRackPDU builds a rack PDU.
func NewRackPDU(cfg RackPDUConfig) (*RackPDU, error) { return rackpdu.New(cfg) }

// NewRackPDUMetrics registers the shared rack-PDU metric families.
func NewRackPDUMetrics(r *MetricsRegistry) *RackPDUMetrics { return rackpdu.NewMetrics(r) }

// Tenant agents (internal/tenant) and workload models (internal/workload).
type (
	// Agent is a tenant participating in the market.
	Agent = tenant.Agent
	// Sprint is a latency-sensitive (sprinting) tenant agent.
	Sprint = tenant.Sprint
	// Opp is a delay-tolerant (opportunistic) tenant agent.
	Opp = tenant.Opp
	// BundledSprint is a multi-rack tenant bidding a bundled demand vector.
	BundledSprint = tenant.BundledSprint
	// Tier is one rack of a BundledSprint.
	Tier = tenant.Tier
	// BidPolicy selects a bidding strategy.
	BidPolicy = tenant.BidPolicy
	// MarketHint carries strategic bidders' price information.
	MarketHint = tenant.MarketHint
	// LatencyModel is a tail-latency workload's power-performance model.
	LatencyModel = workload.LatencyModel
	// ThroughputModel is a batch workload's power-performance model.
	ThroughputModel = workload.ThroughputModel
	// SprintCost is the linear + quadratic-beyond-SLO cost model.
	SprintCost = workload.SprintCost
	// OppCost is the linear completion-time cost model.
	OppCost = workload.OppCost
	// LoadTrace is a sampled load or power time series.
	LoadTrace = trace.Power
)

// Bidding policies (re-exported from internal/tenant).
const (
	PolicyElastic      = tenant.PolicyElastic
	PolicySimple       = tenant.PolicySimple
	PolicyStep         = tenant.PolicyStep
	PolicyFull         = tenant.PolicyFull
	PolicyPricePredict = tenant.PolicyPricePredict
)

// Simulation (internal/sim).
type (
	// Scenario describes a simulation run.
	Scenario = sim.Scenario
	// SimMode selects SpotDC, PowerCapped or MaxPerf.
	SimMode = sim.Mode
	// RunOptions tunes a simulation run.
	RunOptions = sim.RunOptions
	// SimResult is a simulation outcome with per-tenant statistics.
	SimResult = sim.Result
	// TenantStats accumulates one tenant's metrics over a run.
	TenantStats = sim.TenantStats
	// TestbedOptions parameterizes the Table I scenario.
	TestbedOptions = sim.TestbedOptions
	// ScaledOptions parameterizes the large-scale scenario.
	ScaledOptions = sim.ScaledOptions
	// NetRunOptions configures a networked scenario run with an injected
	// fault schedule.
	NetRunOptions = sim.NetRunOptions
	// NetResult is the outcome of a networked scenario run.
	NetResult = sim.NetResult
	// NetTenantStats is one tenant's view of a networked run.
	NetTenantStats = sim.NetTenantStats
)

// Simulation modes.
const (
	ModeSpotDC      = sim.ModeSpotDC
	ModePowerCapped = sim.ModePowerCapped
	ModeMaxPerf     = sim.ModeMaxPerf
)

// Testbed builds the paper's Table I scenario.
func Testbed(opt TestbedOptions) (Scenario, error) { return sim.Testbed(opt) }

// Scaled builds the replicated large-scale scenario (Fig. 18).
func Scaled(opt ScaledOptions) (Scenario, error) { return sim.Scaled(opt) }

// Run simulates a scenario.
func Run(sc Scenario, opts RunOptions) (*SimResult, error) { return sim.Run(sc, opts) }

// NetRun executes a scenario's market over real TCP connections under an
// injected fault schedule — the Section III-C robustness harness.
func NetRun(sc Scenario, opts NetRunOptions) (*NetResult, error) { return sim.NetRun(sc, opts) }

// TenantCost computes a tenant's total cost over a run (subscription +
// energy + spot payments).
func TenantCost(r *SimResult, pricing Pricing, name string) (float64, error) {
	return sim.TenantCost(r, pricing, name)
}

// Network protocol (internal/proto — the Fig. 5 operator↔tenant API).
type (
	// MarketServer is the operator-side protocol endpoint.
	MarketServer = proto.Server
	// MarketServerOptions tunes server robustness: session expiry, the bid
	// acceptance window, and connection wrapping (fault injection).
	MarketServerOptions = proto.ServerOptions
	// MarketClient is the tenant-side protocol endpoint.
	MarketClient = proto.Client
	// MarketClientOptions tunes client robustness: auto-reconnect with
	// seeded exponential backoff and re-registration.
	MarketClientOptions = proto.ClientOptions
	// RackBid is the wire form of the four-parameter demand function.
	RackBid = proto.RackBid
	// Grant is one rack's allocation in a price broadcast.
	Grant = proto.Grant
	// RackResolver maps wire rack IDs to market rack indices.
	RackResolver = proto.RackResolver
	// WireEncoding selects a client's frame encoding
	// (MarketClientOptions.Wire): WireJSON or WireBinary.
	WireEncoding = proto.Encoding
	// MarketWirePolicy restricts which encodings a server accepts
	// (MarketServerOptions.Wire); the default accepts both.
	MarketWirePolicy = proto.WirePolicy
)

// Wire encodings and server acceptance policies. The server answers each
// connection in whichever encoding it opened with, so JSON and binary
// tenants interoperate in one fleet.
const (
	WireJSON   = proto.WireJSON
	WireBinary = proto.WireBinary

	WireAny        = proto.WireAny
	WireJSONOnly   = proto.WireJSONOnly
	WireBinaryOnly = proto.WireBinaryOnly
)

// ParseWireEncoding parses a -wire flag value ("json" or "binary").
func ParseWireEncoding(s string) (WireEncoding, error) { return proto.ParseEncoding(s) }

// ParseMarketWirePolicy parses a server -wire flag value ("any", "json" or
// "binary").
func ParseMarketWirePolicy(s string) (MarketWirePolicy, error) { return proto.ParseWirePolicy(s) }

// ErrNoPrice reports a missed price broadcast; the tenant then defaults to
// no spot capacity (Section III-C).
var ErrNoPrice = proto.ErrNoPrice

// ErrBreakerOpen tags slots degraded by the market loop's circuit breaker,
// and ErrReconnectFailed reports an exhausted client reconnect schedule.
var (
	ErrBreakerOpen     = proto.ErrBreakerOpen
	ErrReconnectFailed = proto.ErrReconnectFailed
)

// Protocol fault injection (internal/proto): deterministic drop / delay /
// sever schedules for robustness testing of the Section III-C exception
// semantics.
type (
	// FaultPlan is a seeded per-write fault schedule.
	FaultPlan = proto.FaultPlan
	// FaultInjector applies a FaultPlan to connections.
	FaultInjector = proto.FaultInjector
	// FaultStats counts injected faults.
	FaultStats = proto.FaultStats
)

// NewFaultInjector validates a plan and builds an injector; Wrap applied to
// a net.Conn (or Dial used as a client dialer) enforces the schedule.
func NewFaultInjector(plan FaultPlan) (*FaultInjector, error) {
	return proto.NewFaultInjector(plan)
}

// Networked market loop (Fig. 5/6).
type (
	// MarketLoop drives Algorithm 1 over the network per slot boundary.
	MarketLoop = proto.MarketLoop
	// SlotClock implements the Fig. 6 slot timing discipline.
	SlotClock = proto.SlotClock
)

// NewSlotClock builds a slot clock anchored at epoch.
func NewSlotClock(epoch time.Time, slotLen time.Duration) (*SlotClock, error) {
	return proto.NewSlotClock(epoch, slotLen)
}

// NewMarketServer starts the operator-side protocol endpoint.
func NewMarketServer(addr string, resolve RackResolver) (*MarketServer, error) {
	return proto.NewServer(addr, resolve)
}

// NewMarketServerOpts starts the operator-side endpoint with explicit
// robustness options (session TTL reaping, bid window, fault wrapping).
func NewMarketServerOpts(addr string, resolve RackResolver, opts MarketServerOptions) (*MarketServer, error) {
	return proto.NewServerOpts(addr, resolve, opts)
}

// DialMarket connects a tenant to the operator and registers its racks.
func DialMarket(addr, tenantName string, racks []string) (*MarketClient, error) {
	return proto.Dial(addr, tenantName, racks)
}

// DialMarketOpts connects with explicit robustness options (auto-reconnect
// with backoff, custom dialer).
func DialMarketOpts(addr, tenantName string, racks []string, opts MarketClientOptions) (*MarketClient, error) {
	return proto.DialOpts(addr, tenantName, racks, opts)
}

// Power capping (internal/capping).
type (
	// CapController is the PI power-capping controller tenants use to
	// honour changing budgets (guaranteed + spot).
	CapController = capping.Controller
	// CapConfig parameterizes a CapController.
	CapConfig = capping.Config
	// ServerModel is the actuator→power plant model.
	ServerModel = capping.ServerModel
)

// NewCapController builds a power-capping controller.
func NewCapController(cfg CapConfig) (*CapController, error) { return capping.New(cfg) }

// Billing (internal/billing).
type (
	// Invoice is one tenant's bill for a period.
	Invoice = billing.Invoice
	// InvoiceItem is one line of an Invoice.
	InvoiceItem = billing.LineItem
	// Ledger accumulates per-slot usage into invoices.
	Ledger = billing.Ledger
)

// NewLedger builds a billing ledger under the given pricing.
func NewLedger(pricing Pricing) (*Ledger, error) { return billing.NewLedger(pricing) }

// Invoices builds every tenant's invoice from a finished simulation run.
func Invoices(res *SimResult, pricing Pricing) ([]Invoice, error) {
	return billing.FromSimResult(res, pricing)
}

// Declarative configuration (internal/config).
type (
	// ScenarioConfig is the JSON-serializable scenario description used by
	// cmd/spotdc-sim -config.
	ScenarioConfig = config.Scenario
)

// LoadScenarioConfig reads a scenario configuration file.
func LoadScenarioConfig(path string) (*ScenarioConfig, error) { return config.Load(path) }

// Experiments (internal/experiments).
type (
	// ExperimentReport is a printable experiment result.
	ExperimentReport = experiments.Report
	// ExperimentOptions tunes experiment horizons and scales.
	ExperimentOptions = experiments.Options
)

// Experiments lists the available experiment IDs (table1, fig2b, ...).
func Experiments() []string { return experiments.IDs() }

// RunExperiment regenerates one of the paper's tables or figures.
func RunExperiment(id string, opt ExperimentOptions) (*ExperimentReport, error) {
	return experiments.Run(id, opt)
}

// RunAllExperiments regenerates every table and figure, fanning the
// experiments out across opt.Workers goroutines (0 = GOMAXPROCS). Reports
// come back in sorted-ID order and are bit-identical at any worker count.
func RunAllExperiments(opt ExperimentOptions) ([]*ExperimentReport, error) {
	return experiments.RunAll(opt)
}

// Observability (internal/metrics): an allocation-free metrics registry
// with Prometheus text exposition, plus the structured per-slot event
// journal. Instrumentation is strictly opt-in — every layer accepts a nil
// metrics handle and skips all bookkeeping.
type (
	// MetricsRegistry holds every registered metric family and renders a
	// deterministic Prometheus text snapshot.
	MetricsRegistry = metrics.Registry
	// MarketMetrics instruments market clearings (handles for
	// MarketOptions.Metrics).
	MarketMetrics = core.MarketMetrics
	// OperatorMetrics instruments the per-slot operator loop (handles for
	// OperatorConfig.Metrics).
	OperatorMetrics = operator.Metrics
	// MarketProtoMetrics instruments the wire protocol: sessions,
	// reconnects, bid rejections and injected faults (handles for
	// MarketServerOptions.Metrics / MarketClientOptions.Metrics /
	// FaultInjector.SetMetrics).
	MarketProtoMetrics = proto.Metrics
	// SlotJournal appends one structured SlotEvent JSON line per market
	// slot (MarketLoop.Journal).
	SlotJournal = metrics.Journal
	// SlotEvent is one journal line: price, volume, revenue, degradation
	// and fault counters for a slot; schema-v2 events additionally carry
	// the slot's full inputs for deterministic replay.
	SlotEvent = metrics.SlotEvent
	// SlotJournalHeader is the schema-v2 journal's first line: the static
	// configuration (topology, market options, slot length) a replay needs.
	SlotJournalHeader = metrics.JournalHeader

	// Auditor is the market core's inline conservation checker (attach via
	// MarketOptions.Audit): it re-verifies the settlement invariants —
	// grant envelopes, hierarchical capacity, revenue arithmetic — after
	// every clearing, allocation-free.
	Auditor = core.Auditor
	// AuditOptions tunes an offline journal check (see ReplayJournal).
	AuditOptions = audit.Options
	// AuditReport summarizes an offline journal check.
	AuditReport = audit.Report
	// AuditViolation is one failed invariant in an AuditReport.
	AuditViolation = audit.Violation
)

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// NewMarketMetrics registers the market-clearing families on r.
func NewMarketMetrics(r *MetricsRegistry) *MarketMetrics { return core.NewMarketMetrics(r) }

// NewOperatorMetrics registers the operator slot-loop families on r.
func NewOperatorMetrics(r *MetricsRegistry) *OperatorMetrics { return operator.NewMetrics(r) }

// NewMarketProtoMetrics registers the protocol families on r.
func NewMarketProtoMetrics(r *MetricsRegistry) *MarketProtoMetrics { return proto.NewMetrics(r) }

// NewSlotJournal builds a journal writing JSON lines to w.
func NewSlotJournal(w io.Writer) *SlotJournal { return metrics.NewJournal(w) }

// ReadSlotJournal parses a slot journal (v1 or v2); the header is nil for
// a v1 journal.
func ReadSlotJournal(r io.Reader) (*SlotJournalHeader, []SlotEvent, error) {
	return metrics.ReadJournal(r)
}

// ReplayJournal reads a slot journal and re-verifies every invariant its
// schema supports: outcome-level conservation for v1 journals, full
// deterministic replay through the clearing engines for v2 (see
// internal/audit and cmd/spotdc-audit). Violations are reported, not
// returned as the error — inspect AuditReport.Err.
func ReplayJournal(r io.Reader, opts AuditOptions) (*AuditReport, error) {
	return audit.Replay(r, opts)
}

// EnableWorkerPoolMetrics instruments the process-wide parallel worker
// pools (scenario fan-out, intra-slot agent parallelism) on r.
func EnableWorkerPoolMetrics(r *MetricsRegistry) { par.EnableMetrics(r) }

// ServeMetrics serves GET /metrics (Prometheus text format 0.0.4) and
// /healthz on addr. It returns the bound address (useful with ":0") and a
// shutdown function.
func ServeMetrics(addr string, r *MetricsRegistry) (boundAddr string, shutdown func() error, err error) {
	return metrics.Serve(addr, r)
}

// MetricsHandler returns the /metrics exposition handler for embedding in
// an existing HTTP server.
func MetricsHandler(r *MetricsRegistry) http.Handler { return metrics.Handler(r) }

// MetricsMuxOptions extends the scrape mux: opt-in /debug/pprof/* handlers
// and extra routes (e.g. the /debug/traces handler below).
type MetricsMuxOptions = metrics.MuxOptions

// ServeMetricsOpts is ServeMetrics with MetricsMuxOptions.
func ServeMetricsOpts(addr string, r *MetricsRegistry, o MetricsMuxOptions) (boundAddr string, shutdown func() error, err error) {
	return metrics.ServeOpts(addr, r, o)
}

// Distributed tracing (internal/otrace): slot-lifecycle spans across the
// operator, the wire, and tenant clients, exported as a JSONL span journal
// and Chrome trace-event JSON (Perfetto/chrome://tracing). Strictly opt-in:
// a nil *Tracer disables every span site at the cost of one branch. See
// DESIGN §4i.
type (
	// Tracer records spans into a fixed-capacity ring and an optional JSONL
	// journal. Wire one instance into MarketLoop.Tracer,
	// MarketServerOptions.Tracer and OperatorConfig.Tracer (operator plane),
	// or MarketClientOptions.Tracer (tenant plane).
	Tracer = otrace.Tracer
	// TracerOptions configures NewTracer: sampling cadence, ring capacity,
	// journal writer, slow-slot percentile, metrics.
	TracerOptions = otrace.Options
	// TracerMetrics exposes the otrace_* metric families (handles for
	// TracerOptions.Metrics).
	TracerMetrics = otrace.TracerMetrics
	// Span is one recorded operation; nil is a valid no-op span.
	Span = otrace.Span
	// SpanContext identifies a span for cross-process propagation
	// (trace/span IDs plus the sampling decision).
	SpanContext = otrace.SpanContext
	// SpanRecord is one exported span as written to the JSONL journal.
	SpanRecord = otrace.SpanRecord
)

// NewTracer builds a tracer.
func NewTracer(o TracerOptions) *Tracer { return otrace.NewTracer(o) }

// NewTracerMetrics registers the otrace_* families on r.
func NewTracerMetrics(r *MetricsRegistry) *TracerMetrics { return otrace.NewTracerMetrics(r) }

// ReadSpans parses a JSONL span journal, tolerating a torn final line.
func ReadSpans(r io.Reader) ([]SpanRecord, error) { return otrace.ReadSpans(r) }

// WriteChromeTrace renders spans as Chrome trace-event JSON, loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing.
func WriteChromeTrace(w io.Writer, spans []SpanRecord) error {
	return otrace.WriteChromeTrace(w, spans)
}

// ValidateChromeTrace checks that data is well-formed Chrome trace-event
// JSON as produced by WriteChromeTrace.
func ValidateChromeTrace(data []byte) error { return otrace.ValidateChromeTrace(data) }

// FormatTraceparent renders a span context as the wire traceparent field.
func FormatTraceparent(sc SpanContext) string { return otrace.FormatTraceparent(sc) }

// ParseTraceparent parses a wire traceparent field.
func ParseTraceparent(s string) (SpanContext, error) { return otrace.ParseTraceparent(s) }

// TraceHandler serves the tracer's ring as JSON (mount at /debug/traces;
// filter with ?slot=N).
func TraceHandler(t *Tracer) http.Handler { return otrace.TraceHandler(t) }

// Durable operator state (internal/wal + internal/proto): an append-only
// segmented write-ahead log with periodic snapshots, and crash recovery
// that resumes the market at the slot after the last committed record.
// Durability is strictly opt-in — a MarketLoop without Durability runs
// exactly as before. See DESIGN §4h.
type (
	// WriteAheadLog is the append-only segmented log (CRC32C-framed
	// records, configurable fsync policy, snapshot-driven compaction).
	WriteAheadLog = wal.Log
	// WALOptions configures OpenWAL (directory, fsync policy, segment
	// size, metrics).
	WALOptions = wal.Options
	// WALRecovery is what OpenWAL found on disk: the newest snapshot, every
	// committed record after it, and any torn-tail truncations repaired.
	WALRecovery = wal.Recovery
	// WALRecord is one recovered log entry.
	WALRecord = wal.Record
	// WALSyncPolicy selects the fsync discipline (record / slot / timer).
	WALSyncPolicy = wal.SyncPolicy
	// WALMetrics instruments the log (handles for WALOptions.Metrics).
	WALMetrics = wal.Metrics

	// MarketDurability threads a WriteAheadLog through the market loop:
	// one record per slot boundary, periodic snapshots, opaque extra-state
	// hooks for higher layers (MarketLoop.Durable).
	MarketDurability = proto.Durable
	// MarketRecovered reports what RecoverMarketState rebuilt.
	MarketRecovered = proto.Recovered

	// SlotJournalOptions tunes a journal's sync cadence and append-mode
	// resumption (see NewSlotJournalOpts).
	SlotJournalOptions = metrics.JournalOptions

	// OperatorCheckpoint is the operator's complete serializable state:
	// accumulated revenue and per-tenant payments as exact compensated-sum
	// terms, plus emergency-responder suspension state.
	OperatorCheckpoint = operator.Checkpoint
	// OperatorSlotCommit is one slot's delta against a checkpoint — what a
	// WAL slot record carries.
	OperatorSlotCommit = operator.SlotCommit
	// LedgerState is a billing ledger's serializable state (exact
	// compensated sums included).
	LedgerState = billing.LedgerState
)

// WAL fsync policies (the -fsync flag values: "record", "slot", "timer").
const (
	WALSyncEveryRecord = wal.SyncEveryRecord
	WALSyncEverySlot   = wal.SyncEverySlot
	WALSyncTimer       = wal.SyncTimer
)

// OpenWAL opens (or creates) the log in opts.Dir and recovers whatever a
// previous process left behind, truncating at the first torn or corrupt
// record. Hand the WALRecovery to RecoverMarketState before starting the
// loop.
func OpenWAL(opts WALOptions) (*WriteAheadLog, *WALRecovery, error) { return wal.Open(opts) }

// NewWALMetrics registers the wal_* families on r.
func NewWALMetrics(r *MetricsRegistry) *WALMetrics { return wal.NewMetrics(r) }

// ParseWALSyncPolicy parses a -fsync flag value ("record", "slot", "timer").
func ParseWALSyncPolicy(s string) (WALSyncPolicy, error) { return wal.ParseSyncPolicy(s) }

// RecoverMarketState rebuilds operator and server state from a WAL
// recovery: the snapshot restores the checkpoint, committed slot records
// replay into the books, and the server's bid window advances so stale
// bids from reconnecting tenants are rejected. Resume the loop at
// MarketRecovered.NextSlot.
func RecoverMarketState(rec *WALRecovery, op *Operator, srv *MarketServer) (*MarketRecovered, error) {
	return proto.RecoverDurable(rec, op, srv)
}

// NewSlotJournalOpts builds a journal with explicit sync cadence and
// append-mode resumption (a resumed journal skips the header its first
// lifetime already wrote).
func NewSlotJournalOpts(w io.Writer, opts SlotJournalOptions) *SlotJournal {
	return metrics.NewJournalOpts(w, opts)
}

// ReadSlotJournalInfo parses a slot journal like ReadSlotJournal and
// additionally reports whether the final line was torn mid-append (the
// signature of a crashed writer); the torn line is dropped, not an error.
func ReadSlotJournalInfo(r io.Reader) (*SlotJournalHeader, []SlotEvent, bool, error) {
	return metrics.ReadJournalInfo(r)
}

// RestoreLedger rebuilds a ledger from a serialized state, bit-identical
// to the original (compensated-sum terms restore exactly).
func RestoreLedger(st LedgerState) (*Ledger, error) { return billing.RestoreLedger(st) }
