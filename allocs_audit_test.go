// Allocation and overhead budgets for the inline conservation auditor.
// The auditor rides the clearing hot loop (Options.Audit), so it must
// preserve the engines' steady-state allocation budgets exactly — 0 for
// the grid scan, ≤32 for the exact breakpoint search — and stay within a
// few percent of wall time: its pass is one O(1)-per-bid loop over
// market-owned scratch.
package spotdc_test

import (
	"testing"

	"spotdc"
)

func TestClearAllocBudgetAudited(t *testing.T) {
	for _, tc := range []struct {
		algo   spotdc.ClearingAlgorithm
		budget float64
	}{
		{spotdc.AlgorithmScan, 0},
		{spotdc.AlgorithmExact, 32},
	} {
		t.Run(tc.algo.String(), func(t *testing.T) {
			cons, bids := syntheticMarket(15000)
			aud := &spotdc.Auditor{}
			mkt, err := spotdc.NewMarket(cons, spotdc.MarketOptions{
				PriceStep: 0.001, Algorithm: tc.algo, Audit: aud,
			})
			if err != nil {
				t.Fatal(err)
			}
			// Warm-up grows the audit scratch once; steady state is what
			// every slot of the market's life pays.
			if _, err := mkt.Clear(bids); err != nil {
				t.Fatal(err)
			}
			avg := testing.AllocsPerRun(5, func() {
				if _, err := mkt.Clear(bids); err != nil {
					t.Fatal(err)
				}
			})
			if avg > tc.budget {
				t.Errorf("algo %v audited: %v allocs/Clear at 15000 racks, budget %v", tc.algo, avg, tc.budget)
			}
			if aud.Violations() != 0 {
				t.Fatalf("synthetic market flagged: %v", aud.Err())
			}
		})
	}
}

// BenchmarkClearAuditOverhead measures the audited clearing loop against
// the bare one at the paper's largest operating point. Compare:
//
//	go test -bench BenchmarkClearAuditOverhead -benchtime 2s spotdc
//
// The acceptance budget is ≤5% overhead for either engine.
func BenchmarkClearAuditOverhead(b *testing.B) {
	for _, algo := range []spotdc.ClearingAlgorithm{spotdc.AlgorithmScan, spotdc.AlgorithmExact} {
		for _, audited := range []bool{false, true} {
			name := algo.String() + "/bare"
			opts := spotdc.MarketOptions{PriceStep: 0.001, Algorithm: algo}
			if audited {
				name = algo.String() + "/audited"
				opts.Audit = &spotdc.Auditor{}
			}
			b.Run(name, func(b *testing.B) {
				cons, bids := syntheticMarket(15000)
				mkt, err := spotdc.NewMarket(cons, opts)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := mkt.Clear(bids); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := mkt.Clear(bids); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
