// Instrumentation must not bend the clearing hot loop's allocation
// budgets: the metrics design (pre-registered handles, atomics only) means
// a Clear with a wired MarketMetrics performs the same number of heap
// allocations as an unwired one. TestClearAllocBudget pins the uninstrumented
// budgets; this file pins the instrumented ones to the SAME numbers, and
// BenchmarkClearMetricsOverhead measures the wall-clock cost of metrics-on
// vs metrics-off (the PR target is <= 5%; run with -count and benchstat for
// a rigorous comparison).
package spotdc_test

import (
	"testing"

	"spotdc"
)

func instrumentedMarket(t testing.TB, racks int, algo spotdc.ClearingAlgorithm) (*spotdc.Market, []spotdc.Bid, *spotdc.MetricsRegistry) {
	t.Helper()
	cons, bids := syntheticMarket(racks)
	reg := spotdc.NewMetricsRegistry()
	mkt, err := spotdc.NewMarket(cons, spotdc.MarketOptions{
		PriceStep: 0.001,
		Algorithm: algo,
		Metrics:   spotdc.NewMarketMetrics(reg),
	})
	if err != nil {
		t.Fatal(err)
	}
	return mkt, bids, reg
}

func TestClearAllocBudgetInstrumented(t *testing.T) {
	for _, tc := range []struct {
		algo   spotdc.ClearingAlgorithm
		budget float64
	}{
		// Identical budgets to TestClearAllocBudget: instrumentation adds
		// zero allocations to either engine.
		{spotdc.AlgorithmScan, 0},
		{spotdc.AlgorithmExact, 32},
	} {
		t.Run(tc.algo.String(), func(t *testing.T) {
			mkt, bids, reg := instrumentedMarket(t, 15000, tc.algo)
			if _, err := mkt.Clear(bids); err != nil {
				t.Fatal(err)
			}
			avg := testing.AllocsPerRun(5, func() {
				if _, err := mkt.Clear(bids); err != nil {
					t.Fatal(err)
				}
			})
			if avg > tc.budget {
				t.Errorf("algo %v instrumented: %v allocs/Clear at 15000 racks, budget %v",
					tc.algo, avg, tc.budget)
			}
			// The instrumentation observed every clear.
			if got, ok := reg.Value("spotdc_market_clears_total", tc.algo.String()); !ok || got < 6 {
				t.Errorf("clears_total{engine=%v} = %v (ok=%v), want >= 6", tc.algo, got, ok)
			}
		})
	}
}

// BenchmarkClearMetricsOverhead compares steady-state Clear with metrics
// off vs on at the paper's largest operating point. The per-Clear cost of
// instrumentation is one time.Now pair plus a handful of atomic updates —
// nanoseconds against a multi-millisecond clear.
func BenchmarkClearMetricsOverhead(b *testing.B) {
	for _, algo := range []spotdc.ClearingAlgorithm{spotdc.AlgorithmScan, spotdc.AlgorithmExact} {
		b.Run(algo.String()+"/off", func(b *testing.B) {
			cons, bids := syntheticMarket(15000)
			mkt, err := spotdc.NewMarket(cons, spotdc.MarketOptions{PriceStep: 0.001, Algorithm: algo})
			if err != nil {
				b.Fatal(err)
			}
			benchClear(b, mkt, bids)
		})
		b.Run(algo.String()+"/on", func(b *testing.B) {
			mkt, bids, _ := instrumentedMarket(b, 15000, algo)
			benchClear(b, mkt, bids)
		})
	}
}

func benchClear(b *testing.B, mkt *spotdc.Market, bids []spotdc.Bid) {
	b.Helper()
	if _, err := mkt.Clear(bids); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mkt.Clear(bids); err != nil {
			b.Fatal(err)
		}
	}
}
