// Allocation budgets for the market-clearing hot loop. The clearing engines
// keep reusable scratch inside the Market, so a steady-state Clear must not
// allocate (grid scan) or allocate only the result's grant slice bookkeeping
// (exact breakpoint search). These guards pin the budgets at the paper's
// largest operating point so regressions show up as test failures rather
// than silent GC pressure.
package spotdc_test

import (
	"testing"

	"spotdc"
)

func TestClearAllocBudget(t *testing.T) {
	for _, tc := range []struct {
		algo   spotdc.ClearingAlgorithm
		budget float64
	}{
		// The scan engine is fully allocation-free after warm-up.
		{spotdc.AlgorithmScan, 0},
		// The exact engine keeps a small, rack-count-independent number of
		// allocations for its breakpoint heap bookkeeping (measured 11 at
		// 15,000 racks; budget leaves slack for runtime variation).
		{spotdc.AlgorithmExact, 32},
	} {
		t.Run(tc.algo.String(), func(t *testing.T) {
			cons, bids := syntheticMarket(15000)
			mkt, err := spotdc.NewMarket(cons, spotdc.MarketOptions{PriceStep: 0.001, Algorithm: tc.algo})
			if err != nil {
				t.Fatal(err)
			}
			// Warm up the reusable scratch once; every market clears each
			// slot of its life, so steady state is the meaningful regime.
			if _, err := mkt.Clear(bids); err != nil {
				t.Fatal(err)
			}
			avg := testing.AllocsPerRun(5, func() {
				if _, err := mkt.Clear(bids); err != nil {
					t.Fatal(err)
				}
			})
			if avg > tc.budget {
				t.Errorf("algo %v: %v allocs/Clear at 15000 racks, budget %v", tc.algo, avg, tc.budget)
			}
		})
	}
}
