// Command spotdc-operator runs the operator side of a networked SpotDC
// deployment (Fig. 5): it serves the market protocol on a TCP address and
// clears the market once per slot, broadcasting the price and grants to
// connected tenants.
//
// The power hierarchy is the paper's Table I testbed; background
// (non-participating) power is synthesized. Tenants connect with
// spotdc-tenant.
//
// Usage:
//
//	spotdc-operator [-listen 127.0.0.1:7070] [-slot-seconds 10] [-slots N] \
//	    [-wire any|json|binary] [-metrics-addr host:port] [-events FILE] \
//	    [-state-dir DIR] [-fsync record|slot|timer] [-audit] [-emergency] [-v]
//
// The server speaks both wire encodings, answering each connection in
// whichever encoding it opened with (JSON or the compact binary frame); the
// -wire flag restricts which encodings are accepted, for fleets that want
// to enforce one.
//
// Observability: -metrics-addr serves Prometheus text metrics on
// GET /metrics (plus /healthz) covering market clearings, operator slot
// outcomes, protocol sessions and bid handling; -pprof additionally mounts
// the /debug/pprof/* profiling endpoints there; -events appends one JSON
// line per slot (price, volume, revenue, degradation) to FILE; -v enables
// verbose per-slot and protocol diagnostics (prefixed slot=N trace=ID so a
// log line joins its span tree), which are silent by default.
//
// Tracing: -trace-spans FILE records one span tree per slot — bid-window
// drain, prediction, clearing, feasibility audit, WAL commit, broadcast
// fan-out with per-session sends — as JSON lines; -trace-sample N head-
// samples every Nth slot (degraded, emergency and slowest-percentile slots
// are always kept). Convert the journal with spotdc-spans to open it in
// Perfetto, or browse the live ring at /debug/traces on -metrics-addr.
// Connected tenants' price broadcasts carry the slot's trace context, so
// tenant-side spans (spotdc tenant clients with a Tracer) parent under the
// same trace across both wire encodings.
//
// Emergency response: -emergency arms the Section III-C loop — every slot
// the operator checks measured load against breaker capacity (ride-through
// tolerance -breaker-tolerance); on an excursion it reclaims spot capacity
// proportionally to granted spot, resets rack PDU budgets, broadcasts the
// new budgets to connected tenants, and suspends spot sales at the affected
// element until -emergency-recovery-slots consecutive healthy readings.
// The demo's synthesized background trace stays below breaker capacity, so
// excursions come from real telemetry in a production deployment; the flag
// arms the loop and exercises the budget plumbing end to end.
//
// Durability: -state-dir DIR keeps the operator's books in a write-ahead
// log under DIR — one record per slot boundary, periodic snapshots
// (-snapshot-every), fsync policy -fsync (record, slot or timer; see
// -fsync-interval). On startup the operator recovers whatever a previous
// process committed and resumes the market at the next slot; torn final
// records from a crash are truncated and the slot re-runs. With -state-dir
// the -events journal opens in append mode so one journal file spans
// restarts (-events-sync forces it to disk every N slots). SIGINT/SIGTERM
// stop the loop gracefully at the next slot boundary, then drain in order:
// WAL close (final fsync), journal sync, summaries. A second signal exits
// immediately.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"spotdc"
	"spotdc/internal/trace"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7070", "address to serve the market protocol on")
	slotSeconds := flag.Int("slot-seconds", 10, "market slot length in seconds (paper: 60-300; short for demos)")
	slots := flag.Int("slots", 0, "stop after this many slots (0 = run forever)")
	seed := flag.Int64("seed", 42, "background power trace seed")
	algorithm := flag.String("algorithm", "auto", "clearing engine: auto, scan or exact")
	wire := flag.String("wire", "any", "accepted wire encodings: any, json or binary")
	sessionTTL := flag.Duration("session-ttl", 0, "expire tenant sessions idle longer than this (0 = library default)")
	bidWindow := flag.Int("bid-window", 0, "accept bids at most this many slots ahead (0 = library default)")
	maxFailures := flag.Int("max-consecutive-failures", 0, "trip the breaker to no-spot after this many consecutive slot failures (0 = never)")
	breakerCooldown := flag.Int("breaker-cooldown-slots", 0, "slots to hold the breaker open before a half-open probe (0 = stay open)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics and /healthz on this address (e.g. localhost:9090)")
	pprofOn := flag.Bool("pprof", false, "also serve /debug/pprof/* profiling endpoints on -metrics-addr")
	traceSpans := flag.String("trace-spans", "", "record slot-lifecycle trace spans as JSON lines to this file (convert with spotdc-spans)")
	traceSample := flag.Int("trace-sample", 1, "head-sample every Nth slot's trace (1 = all; degraded/emergency/slow slots are always kept)")
	eventsFile := flag.String("events", "", "append one JSON slot event per market slot to this file")
	eventsSync := flag.Int("events-sync", 0, "fsync the -events journal every N slots (0 = only at shutdown)")
	stateDir := flag.String("state-dir", "", "persist operator state (WAL + snapshots) under this directory and recover from it on startup")
	fsync := flag.String("fsync", "slot", "WAL fsync policy: record, slot or timer (with -state-dir)")
	fsyncInterval := flag.Duration("fsync-interval", 0, "background fsync tick for -fsync timer (0 = library default)")
	snapshotEvery := flag.Int("snapshot-every", 0, "WAL snapshot cadence in committed slots (0 = library default)")
	auditRun := flag.Bool("audit", false, "re-verify clearing invariants inline on every slot and log violations")
	emergency := flag.Bool("emergency", false, "arm the emergency responder: reclaim spot capacity and reset rack PDU budgets on capacity excursions")
	breakerTol := flag.Float64("breaker-tolerance", 0.05, "breaker ride-through tolerance fraction before an excursion is an emergency (with -emergency)")
	escalation := flag.Float64("emergency-escalation", 0.5, "overload fraction beyond which guaranteed capacity is curtailed pro-rata (with -emergency)")
	recoverySlots := flag.Int("emergency-recovery-slots", 2, "consecutive healthy slots before a suspended element resumes spot sales (with -emergency)")
	resetDelay := flag.Duration("reset-delay", 0, "rack PDU budget-reset actuation delay (with -emergency)")
	verbose := flag.Bool("v", false, "verbose: per-slot results and protocol diagnostics (default: quiet)")
	flag.Parse()

	algo, err := spotdc.ParseClearingAlgorithm(*algorithm)
	if err != nil {
		log.Fatal(err)
	}
	wirePolicy, err := spotdc.ParseMarketWirePolicy(*wire)
	if err != nil {
		log.Fatal(err)
	}

	// Observability is opt-in: a nil registry/journal disables every hook.
	var (
		reg      *spotdc.MetricsRegistry
		journal  *spotdc.SlotJournal
		mktMet   *spotdc.MarketMetrics
		opMet    *spotdc.OperatorMetrics
		protoMet *spotdc.MarketProtoMetrics
		walMet   *spotdc.WALMetrics
	)
	if *metricsAddr != "" {
		reg = spotdc.NewMetricsRegistry()
		mktMet = spotdc.NewMarketMetrics(reg)
		opMet = spotdc.NewOperatorMetrics(reg)
		protoMet = spotdc.NewMarketProtoMetrics(reg)
		if *stateDir != "" {
			walMet = spotdc.NewWALMetrics(reg)
		}
	}
	// -trace-spans: one tracer shared by the market loop, the server's
	// broadcast fan-out, and the operator's slot phases, journaled as JSON
	// lines (read them back with spotdc-spans or cmd/spotdc-audit -spans).
	var tracer *spotdc.Tracer
	if *traceSpans != "" {
		f, err := os.Create(*traceSpans)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		var tm *spotdc.TracerMetrics
		if reg != nil {
			tm = spotdc.NewTracerMetrics(reg)
		}
		tracer = spotdc.NewTracer(spotdc.TracerOptions{
			SampleEvery: *traceSample,
			Journal:     f,
			Metrics:     tm,
		})
		log.Printf("spotdc-operator: tracing slot spans to %s (sample every %d)", *traceSpans, *traceSample)
	}
	if *metricsAddr != "" {
		muxOpts := spotdc.MetricsMuxOptions{Pprof: *pprofOn}
		if tracer != nil {
			muxOpts.Extra = map[string]http.Handler{"/debug/traces": spotdc.TraceHandler(tracer)}
		}
		bound, shutdown, err := spotdc.ServeMetricsOpts(*metricsAddr, reg, muxOpts)
		if err != nil {
			log.Fatal(err)
		}
		defer shutdown()
		log.Printf("spotdc-operator: serving metrics on http://%s/metrics", bound)
		if *pprofOn {
			log.Printf("spotdc-operator: profiling on http://%s/debug/pprof/", bound)
		}
	} else if *pprofOn {
		log.Printf("spotdc-operator: -pprof has no effect without -metrics-addr")
	}
	if *eventsFile != "" {
		// Without durable state each run truncates and starts a fresh
		// journal; with -state-dir one journal file spans every lifetime of
		// the operator, so append and skip the header a previous lifetime
		// already wrote.
		mode := os.O_CREATE | os.O_WRONLY | os.O_TRUNC
		if *stateDir != "" {
			mode = os.O_CREATE | os.O_WRONLY | os.O_APPEND
		}
		f, err := os.OpenFile(*eventsFile, mode, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		resumed := false
		if st, err := f.Stat(); err == nil && st.Size() > 0 {
			resumed = true
		}
		journal = spotdc.NewSlotJournalOpts(f, spotdc.SlotJournalOptions{
			SyncEvery: *eventsSync,
			Resumed:   resumed,
		})
	}
	logf := func(string, ...interface{}) {}
	if *verbose {
		logf = log.Printf
	}

	topo, err := spotdc.NewTopology(1370,
		[]spotdc.PDU{
			{ID: "PDU#1", Capacity: 715},
			{ID: "PDU#2", Capacity: 724},
		},
		[]spotdc.Rack{
			{ID: "S-1", Tenant: "Search-1", PDU: 0, Guaranteed: 145, SpotHeadroom: 60},
			{ID: "S-2", Tenant: "Web", PDU: 0, Guaranteed: 115, SpotHeadroom: 50},
			{ID: "O-1", Tenant: "Count-1", PDU: 0, Guaranteed: 125, SpotHeadroom: 60},
			{ID: "O-2", Tenant: "Graph-1", PDU: 0, Guaranteed: 115, SpotHeadroom: 50},
			{ID: "S-3", Tenant: "Search-2", PDU: 1, Guaranteed: 145, SpotHeadroom: 60},
			{ID: "O-3", Tenant: "Count-2", PDU: 1, Guaranteed: 125, SpotHeadroom: 60},
			{ID: "O-4", Tenant: "Sort", PDU: 1, Guaranteed: 125, SpotHeadroom: 60},
			{ID: "O-5", Tenant: "Graph-2", PDU: 1, Guaranteed: 115, SpotHeadroom: 50},
		})
	if err != nil {
		log.Fatal(err)
	}
	mktOpts := spotdc.MarketOptions{PriceStep: 0.001, Algorithm: algo, Metrics: mktMet}
	var auditor *spotdc.Auditor
	if *auditRun {
		auditor = &spotdc.Auditor{OnViolation: func(v error) {
			log.Printf("spotdc-operator: AUDIT VIOLATION: %v", v)
		}}
		mktOpts.Audit = auditor
	}
	opCfg := spotdc.OperatorConfig{
		Topology:      topo,
		MarketOptions: mktOpts,
		Metrics:       opMet,
		Tracer:        tracer,
	}
	// -emergency: one rack PDU per rack is the physical enforcement point;
	// the responder's SetBudget hook actuates it (and logs the reset).
	var units []*spotdc.RackPDU
	if *emergency {
		var rpm *spotdc.RackPDUMetrics
		if reg != nil {
			rpm = spotdc.NewRackPDUMetrics(reg)
		}
		units = make([]*spotdc.RackPDU, len(topo.Racks))
		for i, r := range topo.Racks {
			units[i], err = spotdc.NewRackPDU(spotdc.RackPDUConfig{
				ID:          r.ID,
				BudgetWatts: r.Guaranteed + r.SpotHeadroom,
				ResetDelay:  *resetDelay,
				Metrics:     rpm,
			})
			if err != nil {
				log.Fatal(err)
			}
		}
		opCfg.Emergency = &spotdc.ResponderConfig{
			EscalationSeverity: *escalation,
			RecoverySlots:      *recoverySlots,
			SetBudget: func(rack int, watts float64) error {
				log.Printf("emergency: rack %s budget reset to %.1f W", topo.Racks[rack].ID, watts)
				return units[rack].SetBudget(watts)
			},
		}
	}
	op, err := spotdc.NewOperator(opCfg)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := spotdc.NewMarketServerOpts(*listen, func(id string) (int, bool) {
		return topo.RackByID(id)
	}, spotdc.MarketServerOptions{
		Wire:       wirePolicy,
		SessionTTL: *sessionTTL,
		BidWindow:  *bidWindow,
		// Racks are single-tenant: reject a hello that claims another
		// tenant's rack instead of silently mis-billing its grants.
		OwnerOf: func(i int) string { return topo.Racks[i].Tenant },
		Metrics: protoMet,
		Tracer:  tracer,
		Logf:    logf,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	log.Printf("spotdc-operator: serving market on %s, slot length %ds", srv.Addr(), *slotSeconds)

	// -state-dir: open the write-ahead log and recover whatever a previous
	// process committed — the books resume exactly where they stopped, and
	// the market resumes at the slot after the last committed record.
	firstSlot := 0
	var walLog *spotdc.WriteAheadLog
	if *stateDir != "" {
		policy, err := spotdc.ParseWALSyncPolicy(*fsync)
		if err != nil {
			log.Fatal(err)
		}
		var rec *spotdc.WALRecovery
		walLog, rec, err = spotdc.OpenWAL(spotdc.WALOptions{
			Dir:           *stateDir,
			Policy:        policy,
			TimerInterval: *fsyncInterval,
			Metrics:       walMet,
		})
		if err != nil {
			log.Fatal(err)
		}
		recovered, err := spotdc.RecoverMarketState(rec, op, srv)
		if err != nil {
			log.Fatalf("spotdc-operator: state recovery: %v", err)
		}
		firstSlot = recovered.NextSlot
		if firstSlot > 0 {
			log.Printf("spotdc-operator: recovered %s: resuming at slot %d (snapshot %v, %d slot records replayed, %d degraded, %d torn tail(s) repaired), spot revenue so far $%.6f",
				*stateDir, firstSlot, recovered.HadSnapshot, recovered.SlotsReplayed,
				recovered.DegradedReplayed, recovered.Truncations, op.SpotRevenue())
		} else {
			log.Printf("spotdc-operator: fresh state directory %s (fsync policy %s)", *stateDir, policy)
		}
	}

	// Background (non-participating) power per PDU.
	others := make([]*trace.Power, len(topo.PDUs))
	for m := range others {
		tr, err := trace.GeneratePower(trace.PowerConfig{
			Name: fmt.Sprintf("other-%d", m), Seed: *seed + int64(m),
			Slots: 100000, SlotSeconds: *slotSeconds,
			MeanWatts: 180, MinWatts: 90, MaxWatts: 250, Volatility: 0.03,
		})
		if err != nil {
			log.Fatal(err)
		}
		others[m] = tr
	}

	// This demo binary has no rack telemetry feed, so it references racks
	// at a typical 75% utilization of their guarantee; a production
	// deployment wires ReadTotal from the rack PDUs here instead. Racks
	// that bid are referenced at their full guarantee by the operator
	// regardless (Section III-C).
	reading := spotdc.Reading{
		RackWatts:     make([]float64, len(topo.Racks)),
		OtherPDUWatts: make([]float64, len(topo.PDUs)),
	}
	for i, r := range topo.Racks {
		reading.RackWatts[i] = 0.75 * r.Guaranteed
	}

	// The epoch is shifted back by the recovered slot count so slot
	// numbering continues where the previous lifetime stopped, with the
	// first live slot still a full slot length away.
	slotLen := time.Duration(*slotSeconds) * time.Second
	clock, err := spotdc.NewSlotClock(
		time.Now().Add(slotLen).Add(-time.Duration(firstSlot)*slotLen), slotLen)
	if err != nil {
		log.Fatal(err)
	}
	loop := spotdc.MarketLoop{
		Server:   srv,
		Operator: op,
		Clock:    clock,
		Reading: func(slot int) spotdc.Reading {
			for m := range others {
				reading.OtherPDUWatts[m] = others[m].At(slot)
			}
			// With -emergency the rack PDU budget is the physical cap: a
			// reclaimed rack cannot draw above its reset budget.
			for i := range units {
				w := 0.75 * topo.Racks[i].Guaranteed
				if b := units[i].Budget(); w > b {
					w = b
				}
				reading.RackWatts[i] = w
			}
			return reading
		},
		RackID:                 func(i int) string { return topo.Racks[i].ID },
		MaxConsecutiveFailures: *maxFailures,
		BreakerCooldownSlots:   *breakerCooldown,
		Journal:                journal,
		Tracer:                 tracer,
	}
	// slotTag prefixes a log line with the slot and its trace ID, so a
	// degraded slot in the log joins its span tree in -trace-spans with one
	// grep ("-" when tracing is off).
	slotTag := func(slot int) string {
		if sc := loop.SlotTrace(); sc.Valid() {
			return fmt.Sprintf("slot=%d trace=%s", slot, sc.Trace)
		}
		return fmt.Sprintf("slot=%d trace=-", slot)
	}
	// Per-slot narration is verbose-only; the journal and /metrics are
	// the always-available records. (Assigned outside the literal: the
	// closures read loop.SlotTrace.)
	loop.OnSlot = func(slot int, out spotdc.SlotOutcome, bids int) {
		logf("%s: %d bids from %v, price $%.3f/kWh, sold %.1f W, revenue $%.6f (total $%.6f)",
			slotTag(slot), bids, srv.Sessions(), out.Result.Price, out.Result.TotalWatts,
			out.RevenueThisSlot, op.SpotRevenue())
	}
	// Section III-C: a failed slot degrades to the no-spot default and
	// the market keeps running; it is logged, never fatal.
	loop.OnSlotError = func(slot int, err error) {
		log.Printf("%s: degraded to no-spot default: %v", slotTag(slot), err)
	}
	if *emergency {
		loop.CheckEmergencies = true
		loop.BreakerTolerance = *breakerTol
	}
	if walLog != nil {
		loop.Durable = &spotdc.MarketDurability{Log: walLog, SnapshotEvery: *snapshotEvery}
	}

	// Graceful shutdown: the first SIGINT/SIGTERM stops the loop at the
	// next slot boundary — after that slot's WAL commit, so nothing
	// acknowledged is lost; a second signal exits immediately.
	stop := make(chan struct{})
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigs
		log.Printf("spotdc-operator: %v: stopping at next slot boundary (signal again to exit now)", s)
		close(stop)
		s = <-sigs
		log.Fatalf("spotdc-operator: %v: exiting immediately", s)
	}()
	loop.Stop = stop

	n := *slots
	if n == 0 {
		n = 1 << 30 // effectively forever
	}
	cleared, err := loop.RunSlots(firstSlot, n)

	// Ordered drain regardless of how the loop ended: make the log durable
	// first (a sticky WAL error never stopped the market — surface it now),
	// then flush the journal, then summarize.
	if walLog != nil {
		if cerr := walLog.Close(); cerr != nil {
			log.Printf("spotdc-operator: WAL degraded: %v", cerr)
		} else {
			log.Printf("spotdc-operator: state committed through slot %d in %s", firstSlot+cleared+loop.SlotErrors()-1, *stateDir)
		}
	}
	if serr := journal.Sync(); serr != nil {
		log.Printf("spotdc-operator: slot journal sync: %v", serr)
	}
	if err != nil {
		log.Fatal(err)
	}
	if degraded := loop.SlotErrors(); degraded > 0 {
		log.Printf("spotdc-operator: %d/%d slots cleared, %d degraded (breaker open: %v)",
			cleared, n, degraded, loop.BreakerTripped())
	}
	if *emergency {
		log.Printf("spotdc-operator: emergency responder: %d emergencies acted on, %.1f W spot reclaimed, %.1f W guaranteed curtailed (%d involuntary cuts)",
			op.EmergenciesActed(), op.ReclaimedWatts(), op.GuaranteedCutWatts(), op.InvoluntaryCuts())
	}
	if err := journal.Err(); err != nil {
		log.Printf("spotdc-operator: slot journal degraded: %v", err)
	}
	if auditor != nil {
		if n := auditor.Violations(); n > 0 {
			log.Fatalf("spotdc-operator: audit recorded %d violation(s): %v", n, auditor.Err())
		}
		if err := op.ReconcileAccounts(); err != nil {
			log.Fatalf("spotdc-operator: %v", err)
		}
		log.Printf("spotdc-operator: audit clean — every slot conserved power and revenue")
	}
}
