// Command spotdc-sim runs a SpotDC simulation scenario and prints the
// per-tenant and operator summary.
//
// Usage:
//
//	spotdc-sim [-scenario testbed|scaled] [-mode spotdc|capped|maxperf]
//	           [-slots N] [-seed N] [-tenants N] [-capacity-scale X]
//	           [-under-prediction X] [-policy elastic|simple|step|full]
//	           [-trace-csv FILE]
//	spotdc-sim -config scenario.json   (declarative form; see internal/config)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"spotdc"
	"spotdc/internal/config"
	"spotdc/internal/trace"
)

func main() {
	scenario := flag.String("scenario", "testbed", "testbed or scaled")
	mode := flag.String("mode", "spotdc", "spotdc, capped or maxperf")
	slots := flag.Int("slots", 3000, "number of 2-minute slots")
	seed := flag.Int64("seed", 42, "trace seed")
	tenants := flag.Int("tenants", 100, "tenant count for -scenario scaled")
	capacityScale := flag.Float64("capacity-scale", 1, "PDU/UPS capacity multiplier (spot availability knob)")
	underPrediction := flag.Float64("under-prediction", 0, "conservative prediction factor (0.15 = offer 85%)")
	policy := flag.String("policy", "elastic", "bidding policy: elastic, simple, step or full")
	traceCSV := flag.String("trace-csv", "", "write the UPS power trace to this CSV file")
	configPath := flag.String("config", "", "load a declarative scenario JSON instead of using flags")
	invoices := flag.Bool("invoices", false, "print per-tenant invoices after the run")
	algorithm := flag.String("algorithm", "auto", "clearing engine: auto, scan or exact")
	flag.Parse()

	var sc spotdc.Scenario
	var m spotdc.SimMode
	otherLeased := 500.0
	if *configPath != "" {
		cfg, err := config.Load(*configPath)
		if err != nil {
			log.Fatal(err)
		}
		if sc, err = cfg.Build(); err != nil {
			log.Fatal(err)
		}
		if m, err = cfg.RunMode(); err != nil {
			log.Fatal(err)
		}
		otherLeased = cfg.OtherLeasedWatts()
	} else {
		pol, err := parsePolicy(*policy)
		if err != nil {
			log.Fatal(err)
		}
		algo, err := spotdc.ParseClearingAlgorithm(*algorithm)
		if err != nil {
			log.Fatal(err)
		}
		tb := spotdc.TestbedOptions{
			Seed:            *seed,
			Slots:           *slots,
			CapacityScale:   *capacityScale,
			UnderPrediction: *underPrediction,
			Policy:          pol,
			Algorithm:       algo,
		}
		switch *scenario {
		case "testbed":
			sc, err = spotdc.Testbed(tb)
		case "scaled":
			sc, err = spotdc.Scaled(spotdc.ScaledOptions{Testbed: tb, Tenants: *tenants, JitterFrac: 0.2})
			otherLeased = 500 * float64((*tenants+7)/8)
		default:
			log.Fatalf("spotdc-sim: unknown scenario %q", *scenario)
		}
		if err != nil {
			log.Fatal(err)
		}
		switch *mode {
		case "spotdc":
			m = spotdc.ModeSpotDC
		case "capped":
			m = spotdc.ModePowerCapped
		case "maxperf":
			m = spotdc.ModeMaxPerf
		default:
			log.Fatalf("spotdc-sim: unknown mode %q", *mode)
		}
	}

	res, err := spotdc.Run(sc, spotdc.RunOptions{Mode: m})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scenario=%s mode=%s slots=%d (%.1f h)\n\n", sc.Name, res.Mode, res.Slots, res.Hours())
	names := make([]string, 0, len(res.Tenants))
	for n := range res.Tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	shown := 0
	for _, n := range names {
		if shown >= 16 {
			fmt.Printf("  ... and %d more tenants\n", len(names)-shown)
			break
		}
		ts := res.Tenants[n]
		fmt.Printf("  %-12s %-13s need=%5d grants=%5d SLO-miss=%4d avg-spot=%5.1f%%res paid=$%.4f energy=%.2fkWh\n",
			ts.Name, ts.Class, ts.NeedSlots, ts.GrantSlots, ts.SLOViolations,
			100*ts.GrantFrac.Mean(), ts.Payment, ts.EnergyKWh)
		shown++
	}
	profit := res.Profit(otherLeased)
	fmt.Printf("\noperator: spot revenue $%.4f, spot energy %.2f kWh, emergencies %d slots\n",
		res.SpotRevenue, res.Operator.SpotEnergyKWh(), res.EmergencySlots)
	fmt.Printf("extra profit vs PowerCapped baseline: %.1f%% (baseline $%.2f, rack capex $%.5f)\n",
		100*profit.ExtraProfitFraction, profit.BaselineProfit, profit.RackCapex)
	if res.Clearings > 0 {
		fmt.Printf("market clearings: %d, total clearing time %v (%.2f ms avg)\n",
			res.Clearings, res.ClearingTime,
			float64(res.ClearingTime.Milliseconds())/float64(res.Clearings))
	}

	if *invoices {
		invs, err := spotdc.Invoices(res, spotdc.DefaultPricing())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		for _, inv := range invs {
			if err := inv.Fprint(os.Stdout); err != nil {
				log.Fatal(err)
			}
		}
	}

	if *traceCSV != "" {
		f, err := os.Create(*traceCSV)
		if err != nil {
			log.Fatal(err)
		}
		tr := &trace.Power{Name: "ups-power", SlotSeconds: sc.SlotSeconds, Watts: res.UPSPower}
		if err := tr.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote UPS power trace to %s\n", *traceCSV)
	}
}

func parsePolicy(s string) (spotdc.BidPolicy, error) {
	switch s {
	case "elastic":
		return spotdc.PolicyElastic, nil
	case "simple":
		return spotdc.PolicySimple, nil
	case "step":
		return spotdc.PolicyStep, nil
	case "full":
		return spotdc.PolicyFull, nil
	default:
		return 0, fmt.Errorf("spotdc-sim: unknown policy %q", s)
	}
}
