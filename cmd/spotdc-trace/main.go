// Command spotdc-trace generates and inspects the synthetic traces the
// simulator runs on: PDU-level power (the colo trace stand-in), request
// arrivals (Google-trace stand-in), and batch backlog.
//
// Usage:
//
//	spotdc-trace -kind power   [-slots N] [-seed N] [-mean W] [-min W] [-max W]
//	             [-volatility X] [-diurnal X] [-out FILE]
//	spotdc-trace -kind arrivals [-base R] [-peak R] [-burst X] [-out FILE]
//	spotdc-trace -kind backlog  [-active X] [-out FILE]
//	spotdc-trace -inspect FILE
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"spotdc/internal/stats"
	"spotdc/internal/trace"
)

func main() {
	kind := flag.String("kind", "power", "power, arrivals or backlog")
	slots := flag.Int("slots", 10000, "number of slots")
	slotSeconds := flag.Int("slot-seconds", 60, "slot length")
	seed := flag.Int64("seed", 42, "generator seed")
	mean := flag.Float64("mean", 250, "power: mean watts")
	minW := flag.Float64("min", 100, "power: minimum watts")
	maxW := flag.Float64("max", 350, "power: maximum watts")
	volatility := flag.Float64("volatility", 0.008, "power: per-slot relative noise")
	diurnal := flag.Float64("diurnal", 0.15, "power: diurnal amplitude")
	base := flag.Float64("base", 40, "arrivals: off-peak rate")
	peak := flag.Float64("peak", 68, "arrivals: diurnal peak rate")
	burst := flag.Float64("burst", 0.15, "arrivals: burst fraction")
	active := flag.Float64("active", 0.3, "backlog: active fraction")
	out := flag.String("out", "", "write CSV to this file (default stdout)")
	inspect := flag.String("inspect", "", "read a CSV trace and print statistics instead of generating")
	flag.Parse()

	if *inspect != "" {
		f, err := os.Open(*inspect)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		tr, err := trace.ReadCSV(f)
		if err != nil {
			log.Fatal(err)
		}
		describe(tr)
		return
	}

	var tr *trace.Power
	var err error
	switch *kind {
	case "power":
		tr, err = trace.GeneratePower(trace.PowerConfig{
			Name: "power", Seed: *seed, Slots: *slots, SlotSeconds: *slotSeconds,
			MeanWatts: *mean, MinWatts: *minW, MaxWatts: *maxW,
			Volatility: *volatility, Diurnal: *diurnal,
		})
	case "arrivals":
		tr, err = trace.GenerateArrivals(trace.ArrivalConfig{
			Name: "arrivals", Seed: *seed, Slots: *slots, SlotSeconds: *slotSeconds,
			BaseRate: *base, PeakRate: *peak, BurstFraction: *burst,
		})
	case "backlog":
		tr, err = trace.GenerateBacklog(trace.BacklogConfig{
			Name: "backlog", Seed: *seed, Slots: *slots, SlotSeconds: *slotSeconds,
			ActiveFraction: *active, MeanUnits: 10,
		})
	default:
		log.Fatalf("spotdc-trace: unknown kind %q", *kind)
	}
	if err != nil {
		log.Fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	if err := tr.WriteCSV(w); err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d slots to %s\n", tr.Len(), *out)
		describe(tr)
	}
}

func describe(tr *trace.Power) {
	sum, err := stats.Summarize(tr.Watts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "name=%s slot=%ds %s\n", tr.Name, tr.SlotSeconds, sum)
	rel := stats.RelDiffs(tr.Watts)
	if len(rel) > 0 {
		within := 0
		for _, r := range rel {
			if r <= 0.025 {
				within++
			}
		}
		fmt.Fprintf(os.Stderr, "slot-to-slot |Δ| ≤ 2.5%%: %.2f%% of slots\n",
			100*float64(within)/float64(len(rel)))
	}
}
