// Command spotdc-audit replays slot journals offline and re-verifies the
// market's conservation invariants: grant envelopes, hierarchical
// capacity (Eqns. 2–4), revenue arithmetic, degraded-slot zeroing, and —
// for schema-v2 journals — bit-identical reproduction of every cleared
// slot through the recorded clearing engine, plus optional exact-vs-scan
// engine agreement.
//
// Usage:
//
//	spotdc-audit [-engine-check] [-agreement-rel 0.01] [-spans spans.jsonl] \
//	    [-v] journal.jsonl...
//
// Journals are produced by spotdc-operator -events or any harness wiring a
// SlotJournal into MarketLoop (e.g. the sim package's NetRun). v1
// journals (no header line) get outcome-level checks only; v2 journals
// replay in full. Exits 1 if any journal fails an invariant.
//
// -spans joins a trace-span journal (spotdc-operator -trace-spans) against
// the slot journal: every sampled root span must match a journaled slot,
// and — when the tracer sampled every slot — every journaled slot must have
// exactly one root span. A mismatch means the observability plane disagrees
// with the book of record, and fails the audit.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"spotdc"
)

func main() {
	engineCheck := flag.Bool("engine-check", false, "additionally clear every replayed slot through the other engine and assert revenue agreement")
	agreementRel := flag.Float64("agreement-rel", 0, "relative revenue tolerance for -engine-check (0 = default 0.01)")
	spansFile := flag.String("spans", "", "join this trace-span journal (spotdc-operator -trace-spans) against the slot journal")
	maxPrint := flag.Int("max-violations", 20, "print at most this many violations per journal")
	verbose := flag.Bool("v", false, "narrate per-journal progress")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: spotdc-audit [-engine-check] [-agreement-rel REL] [-spans spans.jsonl] [-v] journal.jsonl...")
		os.Exit(2)
	}

	opts := spotdc.AuditOptions{EngineCheck: *engineCheck, AgreementRel: *agreementRel}
	if *verbose {
		opts.Logf = log.Printf
	}

	// -spans: index the trace journal's root spans (no parent) by slot once;
	// the join below runs against every slot journal on the command line.
	rootSpans := map[int]int{}
	spanSampledAll := false
	if *spansFile != "" {
		f, err := os.Open(*spansFile)
		if err != nil {
			log.Fatal(err)
		}
		spans, err := spotdc.ReadSpans(f)
		f.Close()
		if err != nil {
			log.Fatalf("%s: %v", *spansFile, err)
		}
		for _, s := range spans {
			if s.Root() && s.Slot >= 0 {
				rootSpans[s.Slot]++
			}
		}
		fmt.Printf("%s: %d spans, %d slot traces\n", *spansFile, len(spans), len(rootSpans))
	}

	failed := 0
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := spotdc.ReplayJournal(f, opts)
		f.Close()
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		if *spansFile != "" {
			// Re-read the journal for its per-slot events: the replay report
			// aggregates, the join needs slot identity.
			jf, err := os.Open(path)
			if err != nil {
				log.Fatal(err)
			}
			_, events, jerr := spotdc.ReadSlotJournal(jf)
			jf.Close()
			if jerr != nil {
				log.Fatalf("%s: %v", path, jerr)
			}
			journaled := map[int]bool{}
			joinBad := 0
			for _, ev := range events {
				journaled[ev.Slot] = true
			}
			for slot, n := range rootSpans {
				if !journaled[slot] {
					fmt.Printf("%s: SPAN MISMATCH slot %d traced (%d root span(s)) but not journaled\n", path, slot, n)
					joinBad++
				} else if n > 1 {
					fmt.Printf("%s: SPAN MISMATCH slot %d has %d root spans, want 1\n", path, slot, n)
					joinBad++
				}
			}
			// With 100% sampling every journaled slot must have its trace;
			// detect that regime from full coverage of the slots seen so far.
			if spanSampledAll || len(rootSpans) >= len(journaled) {
				spanSampledAll = true
				for slot := range journaled {
					if rootSpans[slot] == 0 {
						fmt.Printf("%s: SPAN MISMATCH slot %d journaled but has no root span\n", path, slot)
						joinBad++
					}
				}
			}
			if joinBad > 0 {
				failed++
			} else {
				fmt.Printf("%s: spans join 1:1 with the journal (%d slot traces)\n", path, len(rootSpans))
			}
		}
		schema := "v1 (outcome-only)"
		if rep.Header != nil {
			schema = "v2"
		}
		fmt.Printf("%s: %s, %d slots (%d cleared, %d degraded), %d replayed, %d outcome-only, revenue $%.6f\n",
			path, schema, rep.Slots, rep.Cleared, rep.Degraded, rep.Replayed, rep.OutcomeOnly, rep.TotalRevenue)
		if rep.TornTail {
			fmt.Printf("%s: WARNING torn final line dropped (writer crashed mid-append)\n", path)
		}
		if rep.OK() {
			fmt.Printf("%s: OK — every invariant held\n", path)
			continue
		}
		failed++
		for i, v := range rep.Violations {
			if i >= *maxPrint {
				fmt.Printf("%s: ... and %d more violations\n", path, len(rep.Violations)-*maxPrint)
				break
			}
			fmt.Printf("%s: VIOLATION %s\n", path, v)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
