// Command spotdc-audit replays slot journals offline and re-verifies the
// market's conservation invariants: grant envelopes, hierarchical
// capacity (Eqns. 2–4), revenue arithmetic, degraded-slot zeroing, and —
// for schema-v2 journals — bit-identical reproduction of every cleared
// slot through the recorded clearing engine, plus optional exact-vs-scan
// engine agreement.
//
// Usage:
//
//	spotdc-audit [-engine-check] [-agreement-rel 0.01] [-v] journal.jsonl...
//
// Journals are produced by spotdc-operator -events or any harness wiring a
// SlotJournal into MarketLoop (e.g. the sim package's NetRun). v1
// journals (no header line) get outcome-level checks only; v2 journals
// replay in full. Exits 1 if any journal fails an invariant.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"spotdc"
)

func main() {
	engineCheck := flag.Bool("engine-check", false, "additionally clear every replayed slot through the other engine and assert revenue agreement")
	agreementRel := flag.Float64("agreement-rel", 0, "relative revenue tolerance for -engine-check (0 = default 0.01)")
	maxPrint := flag.Int("max-violations", 20, "print at most this many violations per journal")
	verbose := flag.Bool("v", false, "narrate per-journal progress")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: spotdc-audit [-engine-check] [-agreement-rel REL] [-v] journal.jsonl...")
		os.Exit(2)
	}

	opts := spotdc.AuditOptions{EngineCheck: *engineCheck, AgreementRel: *agreementRel}
	if *verbose {
		opts.Logf = log.Printf
	}

	failed := 0
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := spotdc.ReplayJournal(f, opts)
		f.Close()
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		schema := "v1 (outcome-only)"
		if rep.Header != nil {
			schema = "v2"
		}
		fmt.Printf("%s: %s, %d slots (%d cleared, %d degraded), %d replayed, %d outcome-only, revenue $%.6f\n",
			path, schema, rep.Slots, rep.Cleared, rep.Degraded, rep.Replayed, rep.OutcomeOnly, rep.TotalRevenue)
		if rep.TornTail {
			fmt.Printf("%s: WARNING torn final line dropped (writer crashed mid-append)\n", path)
		}
		if rep.OK() {
			fmt.Printf("%s: OK — every invariant held\n", path)
			continue
		}
		failed++
		for i, v := range rep.Violations {
			if i >= *maxPrint {
				fmt.Printf("%s: ... and %d more violations\n", path, len(rep.Violations)-*maxPrint)
				break
			}
			fmt.Printf("%s: VIOLATION %s\n", path, v)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
