// Command spotdc-experiments regenerates the SpotDC paper's tables and
// figures. Run with no arguments to list experiment IDs, with IDs to run a
// subset, or with -all for the full suite.
//
// Usage:
//
//	spotdc-experiments [-seed N] [-long-slots N] [-scale-slots N] [-all] \
//	    [-workers N] [-parallel] [-emergency] \
//	    [-cpuprofile f] [-memprofile f] [-trace f] [-pprof-addr host:port] \
//	    [id ...]
//
// Parallelism: -workers caps the scenario fan-out pool each experiment uses
// for its independent simulation runs (0 = GOMAXPROCS, 1 = serial), and
// -parallel additionally enables intra-slot agent parallelism inside every
// simulation. Both knobs are bit-reproducible: the same seed produces the
// same reports at any worker count.
//
// Profiling: -cpuprofile/-memprofile/-trace write pprof / execution-trace
// files covering the experiment runs; -pprof-addr serves net/http/pprof for
// live inspection (go tool pprof http://host:port/debug/pprof/profile).
//
// Observability: -metrics-addr serves Prometheus text metrics on
// GET /metrics (plus /healthz) aggregating every simulation the experiments
// run — market clearings, operator slot outcomes, simulated slots, and
// worker-pool occupancy; -pprof additionally mounts /debug/pprof/* on that
// mux. -trace-spans FILE records slot-lifecycle trace spans (root slot span
// with predict/clear/audit children) as JSON lines, head-sampled every
// -trace-sample slots; convert with spotdc-spans for Perfetto.
// Instrumentation never changes report contents.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"runtime/trace"

	"spotdc/internal/experiments"
	"spotdc/internal/metrics"
	"spotdc/internal/otrace"
	"spotdc/internal/par"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "spotdc-experiments: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Int64("seed", 42, "seed for all synthetic traces")
	longSlots := flag.Int("long-slots", 0, "slots for extended runs (default 21600 = 30 days of 2-minute slots)")
	scaleSlots := flag.Int("scale-slots", 0, "slots for the fig18 scaling runs (default 720)")
	all := flag.Bool("all", false, "run every experiment")
	outDir := flag.String("out", "", "also write each report to <dir>/<id>.txt")
	workers := flag.Int("workers", 0, "scenario fan-out workers (0 = GOMAXPROCS, 1 = serial)")
	parallel := flag.Bool("parallel", false, "enable intra-slot agent parallelism (bit-identical to serial)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	traceFile := flag.String("trace", "", "write a runtime execution trace to this file")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics and /healthz on this address (e.g. localhost:9090)")
	pprofOn := flag.Bool("pprof", false, "also serve /debug/pprof/* on -metrics-addr (own mux, unlike -pprof-addr's DefaultServeMux)")
	traceSpans := flag.String("trace-spans", "", "record slot-lifecycle trace spans as JSON lines to this file (convert with spotdc-spans)")
	traceSample := flag.Int("trace-sample", 64, "head-sample every Nth slot's trace (1 = all)")
	auditRuns := flag.Bool("audit", false, "re-verify clearing invariants and reconcile the books on every simulation (fails the run on any violation)")
	emergency := flag.Bool("emergency", false, "run the ext-emergency experiment (shorthand for the ext-emergency ID)")
	flag.Parse()

	opt := experiments.Options{
		Seed: *seed, LongSlots: *longSlots, ScaleSlots: *scaleSlots,
		Workers: *workers, Parallel: *parallel, Audit: *auditRuns,
	}
	var reg *metrics.Registry
	if *metricsAddr != "" {
		reg = metrics.NewRegistry()
		par.EnableMetrics(reg)
		opt.Registry = reg
	}
	// -trace-spans: one shared tracer across every simulation the
	// experiments run; the default -trace-sample 64 keeps the journal small
	// over month-long horizons (21600 slots × many scenarios).
	if *traceSpans != "" {
		f, err := os.Create(*traceSpans)
		if err != nil {
			return err
		}
		defer f.Close()
		var tm *otrace.TracerMetrics
		if reg != nil {
			tm = otrace.NewTracerMetrics(reg)
		}
		opt.Tracer = otrace.NewTracer(otrace.Options{
			SampleEvery: *traceSample,
			Journal:     f,
			Metrics:     tm,
		})
		fmt.Fprintf(os.Stderr, "spotdc-experiments: tracing slot spans to %s (sample every %d)\n", *traceSpans, *traceSample)
	}
	if *metricsAddr != "" {
		muxOpts := metrics.MuxOptions{Pprof: *pprofOn}
		if opt.Tracer != nil {
			muxOpts.Extra = map[string]http.Handler{"/debug/traces": otrace.TraceHandler(opt.Tracer)}
		}
		bound, shutdown, err := metrics.ServeOpts(*metricsAddr, reg, muxOpts)
		if err != nil {
			return err
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "spotdc-experiments: serving metrics on http://%s/metrics\n", bound)
	}
	ids := flag.Args()
	if *emergency && !*all {
		ids = append(ids, "ext-emergency")
	}
	if !*all && len(ids) == 0 {
		fmt.Println("available experiments:")
		for _, id := range experiments.IDs() {
			title, _ := experiments.Title(id)
			fmt.Printf("  %-8s %s\n", id, title)
		}
		return nil
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}

	if *pprofAddr != "" {
		go func() {
			// DefaultServeMux carries the net/http/pprof handlers.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "spotdc-experiments: pprof server: %v\n", err)
			}
		}()
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			return err
		}
		defer trace.Stop()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "spotdc-experiments: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the steady-state heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "spotdc-experiments: %v\n", err)
			}
		}()
	}

	var reports []*experiments.Report
	if *all {
		// The whole suite: experiments run concurrently on the -workers
		// pool, reports come back in sorted-ID order.
		reps, err := experiments.RunAll(opt)
		if err != nil {
			return err
		}
		reports = reps
	} else {
		for _, id := range ids {
			rep, err := experiments.Run(id, opt)
			if err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			reports = append(reports, rep)
		}
	}
	for _, rep := range reports {
		if err := rep.Fprint(os.Stdout); err != nil {
			return err
		}
		if *outDir != "" {
			if err := writeReport(*outDir, rep); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeReport(dir string, rep *experiments.Report) error {
	f, err := os.Create(filepath.Join(dir, rep.ID+".txt"))
	if err != nil {
		return err
	}
	if err := rep.Fprint(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
