// Command spotdc-experiments regenerates the SpotDC paper's tables and
// figures. Run with no arguments to list experiment IDs, with IDs to run a
// subset, or with -all for the full suite.
//
// Usage:
//
//	spotdc-experiments [-seed N] [-long-slots N] [-scale-slots N] [-all] [id ...]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"spotdc/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 42, "seed for all synthetic traces")
	longSlots := flag.Int("long-slots", 0, "slots for extended runs (default 21600 = 30 days of 2-minute slots)")
	scaleSlots := flag.Int("scale-slots", 0, "slots for the fig18 scaling runs (default 720)")
	all := flag.Bool("all", false, "run every experiment")
	outDir := flag.String("out", "", "also write each report to <dir>/<id>.txt")
	flag.Parse()

	opt := experiments.Options{Seed: *seed, LongSlots: *longSlots, ScaleSlots: *scaleSlots}
	ids := flag.Args()
	if *all {
		ids = experiments.IDs()
	}
	if len(ids) == 0 {
		fmt.Println("available experiments:")
		for _, id := range experiments.IDs() {
			title, _ := experiments.Title(id)
			fmt.Printf("  %-8s %s\n", id, title)
		}
		return
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "spotdc-experiments: %v\n", err)
			os.Exit(1)
		}
	}
	for _, id := range ids {
		rep, err := experiments.Run(id, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spotdc-experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		if err := rep.Fprint(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "spotdc-experiments: %v\n", err)
			os.Exit(1)
		}
		if *outDir != "" {
			f, err := os.Create(filepath.Join(*outDir, id+".txt"))
			if err != nil {
				fmt.Fprintf(os.Stderr, "spotdc-experiments: %v\n", err)
				os.Exit(1)
			}
			if err := rep.Fprint(f); err != nil {
				f.Close()
				fmt.Fprintf(os.Stderr, "spotdc-experiments: %v\n", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "spotdc-experiments: %v\n", err)
				os.Exit(1)
			}
		}
	}
}
