// Command spotdc-spans converts a trace-span journal (JSON lines written
// by spotdc-operator -trace-spans, or any Tracer with a Journal) into
// Chrome trace-event JSON loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. Each trace — one market slot's lifecycle — renders as
// its own track, with the operator's bid-drain/predict/clear/audit/WAL/
// broadcast phases and any tenant-side spans nested by parentage.
//
// Usage:
//
//	spotdc-spans [-o trace.json] [-slot N] [-check] spans.jsonl
//
// -o writes the converted trace (default stdout); -slot keeps only one
// slot's trace; -check additionally validates the produced JSON against
// the trace-event schema and reports span/trace counts, for CI smoke use.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"spotdc"
)

func main() {
	out := flag.String("o", "", "write Chrome trace JSON to this file (default stdout)")
	slot := flag.Int("slot", -1, "convert only this slot's trace (-1 = all)")
	check := flag.Bool("check", false, "validate the produced trace-event JSON and print a summary to stderr")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: spotdc-spans [-o trace.json] [-slot N] [-check] spans.jsonl")
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	spans, err := spotdc.ReadSpans(f)
	f.Close()
	if err != nil {
		log.Fatalf("%s: %v", flag.Arg(0), err)
	}
	if *slot >= 0 {
		kept := spans[:0]
		for _, s := range spans {
			if s.Slot == *slot {
				kept = append(kept, s)
			}
		}
		spans = kept
	}

	// Render into memory so -check validates exactly the bytes written.
	var buf bytes.Buffer
	if err := spotdc.WriteChromeTrace(&buf, spans); err != nil {
		log.Fatal(err)
	}
	if *check {
		if err := spotdc.ValidateChromeTrace(buf.Bytes()); err != nil {
			log.Fatalf("%s: produced trace fails validation: %v", flag.Arg(0), err)
		}
		traces := map[string]bool{}
		roots := 0
		for _, s := range spans {
			traces[s.Trace] = true
			if s.Root() {
				roots++
			}
		}
		fmt.Fprintf(os.Stderr, "spotdc-spans: %d spans, %d traces, %d roots — trace-event JSON valid\n",
			len(spans), len(traces), roots)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		of, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer of.Close()
		w = of
	}
	if _, err := w.Write(buf.Bytes()); err != nil {
		log.Fatal(err)
	}
}
