// Command spotdc-tenant runs a tenant agent against a networked SpotDC
// operator (see cmd/spotdc-operator): it registers its rack, submits a
// four-parameter demand-function bid every slot, and reports the clearing
// price and its grant.
//
// Usage:
//
//	spotdc-tenant -name Count-1 -rack O-1 [-connect 127.0.0.1:7070]
//	              [-dmax 60] [-dmin 6] [-qmin 0.02] [-qmax 0.16]
//	              [-slot-seconds 10] [-slots N] [-reconnect] [-v]
//	              [-wire json|binary] [-peak-watts 205 [-idle-watts 60]]
//
// -wire selects the frame encoding. The default json is the line-delimited
// JSON protocol every operator accepts; binary is the compact
// length-prefixed encoding (the operator answers in kind, so mixed fleets
// interoperate).
//
// Output is quiet by default — only connection establishment and failures
// are logged; -v adds per-slot price/grant lines and reconnect diagnostics.
//
// Power capping: -peak-watts enables the tenant-side PI capping controller.
// When the operator declares a capacity emergency and resets this rack's
// power budget (Section III-C), the new budget is fed forward into the
// controller, which logs the budget and the performance knob it settles to —
// the hook a production deployment uses to drive RAPL/DVFS.
package main

import (
	"errors"
	"flag"
	"log"
	"time"

	"spotdc"
)

func main() {
	connect := flag.String("connect", "127.0.0.1:7070", "operator address")
	name := flag.String("name", "Count-1", "tenant name")
	rack := flag.String("rack", "O-1", "rack ID to bid for")
	dMax := flag.Float64("dmax", 60, "maximum spot demand (W)")
	dMin := flag.Float64("dmin", 6, "minimum spot demand (W)")
	qMin := flag.Float64("qmin", 0.02, "price at which demand is DMax ($/kWh)")
	qMax := flag.Float64("qmax", 0.16, "maximum acceptable price ($/kWh)")
	slotSeconds := flag.Int("slot-seconds", 10, "must match the operator's slot length")
	slots := flag.Int("slots", 0, "stop after this many slots (0 = run forever)")
	reconnect := flag.Bool("reconnect", true, "auto-reconnect with backoff when the session drops")
	backoff := flag.Duration("backoff", 200*time.Millisecond, "base reconnect backoff (doubles per attempt, with jitter)")
	maxAttempts := flag.Int("max-attempts", 8, "reconnect attempts before giving up (-1 = unlimited)")
	wire := flag.String("wire", "json", "wire encoding: json (interoperable default) or binary (compact, allocation-free)")
	peakWatts := flag.Float64("peak-watts", 0, "enable the power-capping controller: rack peak draw at full performance (W); 0 = off")
	idleWatts := flag.Float64("idle-watts", 0, "rack idle draw for the capping model (W, with -peak-watts)")
	verbose := flag.Bool("v", false, "verbose: per-slot prices/grants and reconnect diagnostics (default: quiet)")
	flag.Parse()

	logf := func(string, ...interface{}) {}
	if *verbose {
		logf = log.Printf
	}
	enc, err := spotdc.ParseWireEncoding(*wire)
	if err != nil {
		log.Fatal(err)
	}

	// -peak-watts: emergency budget resets from the operator drive the
	// capping controller. OnBudgetReset runs inside AwaitPrice on this
	// goroutine, so the controller needs no locking.
	var capper *spotdc.CapController
	if *peakWatts > 0 {
		var err error
		capper, err = spotdc.NewCapController(spotdc.CapConfig{
			Model:         spotdc.ServerModel{IdleWatts: *idleWatts, PeakWatts: *peakWatts},
			InitialBudget: *peakWatts,
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	copts := spotdc.MarketClientOptions{
		Wire:        enc,
		Reconnect:   *reconnect,
		BackoffBase: *backoff,
		MaxAttempts: *maxAttempts,
		Logf:        logf,
		OnReconnect: func(attempt int, err error) {
			logf("spotdc-tenant: reconnect attempt %d: %v", attempt, err)
		},
	}
	if capper != nil {
		copts.OnBudgetReset = func(slot int, budgets []spotdc.Grant) {
			for _, b := range budgets {
				if b.Rack != *rack {
					continue
				}
				if err := capper.SetBudget(b.Watts); err != nil {
					log.Printf("slot %d: budget reset to %.1f W rejected: %v", slot, b.Watts, err)
					continue
				}
				watts, ticks := capper.Settle(1, 0.01, 50)
				log.Printf("slot %d: EMERGENCY budget reset — capped to %.1f W (knob %.2f, settled at %.1f W in %d ticks)",
					slot, b.Watts, capper.Knob(), watts, ticks)
			}
		}
	}
	client, err := spotdc.DialMarketOpts(*connect, *name, []string{*rack}, copts)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	log.Printf("spotdc-tenant %s: connected to %s, bidding for rack %s", *name, *connect, *rack)

	slotDur := time.Duration(*slotSeconds) * time.Second
	for slot := 0; *slots == 0 || slot < *slots; slot++ {
		bid := spotdc.RackBid{Rack: *rack, DMax: *dMax, QMin: *qMin, DMin: *dMin, QMax: *qMax}
		if err := client.SubmitBids(slot, []spotdc.RackBid{bid}); err != nil {
			// Section III-C: a lost bid means no spot capacity this slot,
			// not a dead tenant. Pace out the slot and try the next one.
			log.Printf("slot %d: submit failed (%v) — running without spot capacity", slot, err)
			time.Sleep(slotDur)
			continue
		}
		price, grants, err := client.AwaitPrice(slot, slotDur+2*time.Second)
		switch {
		case errors.Is(err, spotdc.ErrNoPrice):
			// Section III-C: communication loss defaults to no spot capacity.
			log.Printf("slot %d: no price broadcast — running without spot capacity", slot)
			continue
		case err != nil:
			log.Printf("slot %d: await failed (%v) — running without spot capacity", slot, err)
			continue
		}
		total := 0.0
		for _, g := range grants {
			total += g.Watts
		}
		logf("slot %d: price $%.3f/kWh, granted %.1f W of spot capacity", slot, price, total)
	}
	if n := client.Reconnects(); n > 0 {
		log.Printf("spotdc-tenant %s: session survived %d reconnects", *name, n)
	}
}
