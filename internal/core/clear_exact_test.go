package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// bigHeadroomConstraints builds constraints whose rack headrooms never bind,
// so tests can reason about demand curves directly.
func bigHeadroomConstraints(nRacks, nPDUs int, pduSpot, upsSpot float64) Constraints {
	c := Constraints{
		RackHeadroom: make([]float64, nRacks),
		RackPDU:      make([]int, nRacks),
		PDUSpot:      make([]float64, nPDUs),
		UPSSpot:      upsSpot,
	}
	for r := 0; r < nRacks; r++ {
		c.RackHeadroom[r] = 1e6
		c.RackPDU[r] = r % nPDUs
	}
	for m := 0; m < nPDUs; m++ {
		c.PDUSpot[m] = pduSpot
	}
	return c
}

// randomBid draws one of the three piece-wise linear demand functions with
// random parameters (prices in [0, ~0.8], demands in [0, ~90] watts).
func randomBid(rng *rand.Rand, rack int) Bid {
	switch rng.Intn(3) {
	case 0:
		dMin := rng.Float64() * 30
		dMax := dMin + rng.Float64()*60
		qMin := rng.Float64() * 0.3
		qMax := qMin + rng.Float64()*0.5
		return Bid{Rack: rack, Fn: LinearBid{DMax: dMax, DMin: dMin, QMin: qMin, QMax: qMax}}
	case 1:
		return Bid{Rack: rack, Fn: StepBid{D: rng.Float64() * 90, QMax: rng.Float64() * 0.8}}
	default:
		n := 2 + rng.Intn(4)
		pts := make([]PricePoint, n)
		price, demand := rng.Float64()*0.1, 20+rng.Float64()*70
		for i := 0; i < n; i++ {
			pts[i] = PricePoint{Price: price, Demand: demand}
			price += 0.02 + rng.Float64()*0.2
			demand -= rng.Float64() * demand
		}
		fb, err := NewFullBid(pts)
		if err != nil {
			panic(err)
		}
		return Bid{Rack: rack, Fn: fb}
	}
}

// Property (the ISSUE's cross-validation suite): on randomized markets
// mixing LinearBid/StepBid/FullBid, with ration on and off and with random
// reserve prices, exact clearing earns at least the scan oracle's revenue
// (same step, same bids), both allocations verify feasible, and the results
// are internally consistent.
func TestQuickExactMatchesOrBeatsScan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nRacks := 2 + rng.Intn(10)
		nPDUs := 1 + rng.Intn(3)
		cons := Constraints{
			RackHeadroom: make([]float64, nRacks),
			RackPDU:      make([]int, nRacks),
			PDUSpot:      make([]float64, nPDUs),
		}
		for r := 0; r < nRacks; r++ {
			cons.RackHeadroom[r] = 10 + rng.Float64()*80
			cons.RackPDU[r] = rng.Intn(nPDUs)
		}
		for m := 0; m < nPDUs; m++ {
			cons.PDUSpot[m] = rng.Float64() * 200
		}
		cons.UPSSpot = rng.Float64() * 200 * float64(nPDUs)
		opts := Options{PriceStep: 0.002, Ration: rng.Intn(2) == 0}
		if rng.Intn(2) == 0 {
			opts.ReservePrice = rng.Float64() * 0.3
		}
		var bids []Bid
		for r := 0; r < nRacks; r++ {
			if rng.Float64() < 0.2 {
				continue
			}
			bids = append(bids, randomBid(rng, r))
		}

		exOpts, scOpts := opts, opts
		exOpts.Algorithm = AlgorithmExact
		scOpts.Algorithm = AlgorithmScan
		exM, err := NewMarket(cons, exOpts)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		scM, err := NewMarket(cons, scOpts)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		ex, err := exM.Clear(bids)
		if err != nil {
			t.Logf("seed %d: exact: %v", seed, err)
			return false
		}
		sc, err := scM.Clear(bids)
		if err != nil {
			t.Logf("seed %d: scan: %v", seed, err)
			return false
		}
		if len(bids) > 0 {
			if ex.Algorithm != AlgorithmExact || sc.Algorithm != AlgorithmScan {
				t.Logf("seed %d: algorithms %v/%v", seed, ex.Algorithm, sc.Algorithm)
				return false
			}
		}
		// Exact must match or beat the grid oracle.
		if ex.RevenueRate < sc.RevenueRate-1e-9 {
			t.Logf("seed %d: exact revenue %.12f < scan %.12f (ration=%v reserve=%v, exact price %v, scan price %v)",
				seed, ex.RevenueRate, sc.RevenueRate, opts.Ration, opts.ReservePrice, ex.Price, sc.Price)
			return false
		}
		// Both allocations must satisfy Eqns. (2)-(4).
		if err := exM.VerifyFeasible(ex.Allocations); err != nil {
			t.Logf("seed %d: exact infeasible: %v", seed, err)
			return false
		}
		if err := scM.VerifyFeasible(sc.Allocations); err != nil {
			t.Logf("seed %d: scan infeasible: %v", seed, err)
			return false
		}
		// Internal consistency: allocations sum to the reported total and
		// the revenue is price x total.
		for _, res := range []Result{ex, sc} {
			sum := 0.0
			for _, a := range res.Allocations {
				if a.Watts < -1e-9 {
					t.Logf("seed %d: negative allocation %v", seed, a.Watts)
					return false
				}
				sum += a.Watts
			}
			if math.Abs(sum-res.TotalWatts) > 1e-6 {
				t.Logf("seed %d: allocations sum %v != total %v", seed, sum, res.TotalWatts)
				return false
			}
			if math.Abs(res.RevenueRate-res.Price*res.TotalWatts/1000) > 1e-9 {
				t.Logf("seed %d: revenue %v != price*watts %v", seed, res.RevenueRate, res.Price*res.TotalWatts/1000)
				return false
			}
			if res.Price < opts.ReservePrice {
				t.Logf("seed %d: price %v below reserve %v", seed, res.Price, opts.ReservePrice)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// The exact engine finds the true quadratic vertex even when the scan grid
// steps over it: a single elastic bid D(q) = 100(1-q) has revenue
// q·100(1-q)/1000, maximized at exactly q = 0.5 (rev 0.025 $/h), which a
// 0.3-step grid cannot hit.
func TestExactFindsOffGridVertex(t *testing.T) {
	cons := bigHeadroomConstraints(1, 1, 1000, 1000)
	bid := Bid{Rack: 0, Fn: LinearBid{DMax: 100, DMin: 0, QMin: 0, QMax: 1}}

	ex, err := NewMarket(cons, Options{PriceStep: 0.3, Algorithm: AlgorithmExact})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.Clear([]Bid{bid})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Price-0.5) > 1e-12 {
		t.Errorf("exact price = %v, want 0.5", res.Price)
	}
	if math.Abs(res.RevenueRate-0.025) > 1e-12 {
		t.Errorf("exact revenue = %v, want 0.025", res.RevenueRate)
	}

	sc, err := NewMarket(cons, Options{PriceStep: 0.3, Algorithm: AlgorithmScan})
	if err != nil {
		t.Fatal(err)
	}
	scRes, err := sc.Clear([]Bid{bid})
	if err != nil {
		t.Fatal(err)
	}
	if scRes.RevenueRate >= res.RevenueRate {
		t.Errorf("coarse scan revenue %v should be below exact %v", scRes.RevenueRate, res.RevenueRate)
	}
}

// Regression (ISSUE satellite 1): SetSpot must validate every value before
// mutating any constraint, so a rejected update leaves the market exactly as
// it was.
func TestSetSpotNoPartialMutation(t *testing.T) {
	m, err := NewMarket(twoPDUConstraints(100, 120, 200), Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := m.Constraints()

	// First element valid, second negative: must reject without applying
	// the first.
	if err := m.SetSpot([]float64{55, -1}, 180); err == nil {
		t.Fatal("negative PDU spot accepted")
	}
	after := m.Constraints()
	if after.PDUSpot[0] != before.PDUSpot[0] || after.PDUSpot[1] != before.PDUSpot[1] || after.UPSSpot != before.UPSSpot {
		t.Errorf("constraints mutated by rejected SetSpot: before %v/%v, after %v/%v",
			before.PDUSpot, before.UPSSpot, after.PDUSpot, after.UPSSpot)
	}

	// Valid PDU spots but negative UPS: same guarantee.
	if err := m.SetSpot([]float64{55, 66}, -5); err == nil {
		t.Fatal("negative UPS spot accepted")
	}
	after = m.Constraints()
	if after.PDUSpot[0] != before.PDUSpot[0] || after.PDUSpot[1] != before.PDUSpot[1] || after.UPSSpot != before.UPSSpot {
		t.Errorf("constraints mutated by rejected SetSpot: before %v/%v, after %v/%v",
			before.PDUSpot, before.UPSSpot, after.PDUSpot, after.UPSSpot)
	}

	// And a valid update still applies fully.
	if err := m.SetSpot([]float64{55, 66}, 110); err != nil {
		t.Fatal(err)
	}
	after = m.Constraints()
	if after.PDUSpot[0] != 55 || after.PDUSpot[1] != 66 || after.UPSSpot != 110 {
		t.Errorf("valid SetSpot not applied: %v/%v", after.PDUSpot, after.UPSSpot)
	}
}

// Regression (ISSUE satellite 2): every scan clearing price sits exactly on
// the integer-indexed grid floor + i·step — including when the price comes
// out of the binary-searched feasibility boundary — so reported prices match
// the advertised resolution bit-for-bit.
func TestScanPricesExactlyOnGrid(t *testing.T) {
	onGrid := func(t *testing.T, price, floor, step float64) {
		t.Helper()
		i := math.Round((price - floor) / step)
		if price != floor+i*step {
			t.Errorf("price %v is off the grid floor %v + i*%v (nearest i=%v gives %v)",
				price, floor, step, i, floor+i*step)
		}
	}

	// Unconstrained: the argmax lands deep into the scan (hundreds of
	// drift-prone iterations in the old q += step loop).
	m, err := NewMarket(bigHeadroomConstraints(2, 1, 1e6, 1e6),
		Options{PriceStep: 0.001, Algorithm: AlgorithmScan})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Clear([]Bid{
		{Rack: 0, Fn: LinearBid{DMax: 100, DMin: 0, QMin: 0, QMax: 0.7}},
		{Rack: 1, Fn: StepBid{D: 40, QMax: 0.9}},
	})
	if err != nil {
		t.Fatal(err)
	}
	onGrid(t, res.Price, 0, 0.001)

	// Constrained: the clearing price is found by the bisection + snap path.
	tight, err := NewMarket(twoPDUConstraints(30, 500, 1000),
		Options{PriceStep: 0.001, Algorithm: AlgorithmScan})
	if err != nil {
		t.Fatal(err)
	}
	res, err = tight.Clear([]Bid{
		{Rack: 0, Fn: LinearBid{DMax: 50, DMin: 5, QMin: 0.05, QMax: 0.61}},
		{Rack: 1, Fn: LinearBid{DMax: 50, DMin: 5, QMin: 0.05, QMax: 0.61}},
	})
	if err != nil {
		t.Fatal(err)
	}
	onGrid(t, res.Price, 0, 0.001)
	if err := tight.VerifyFeasible(res.Allocations); err != nil {
		t.Fatal(err)
	}

	// With a reserve price the grid origin shifts to the floor.
	rp, err := NewMarket(bigHeadroomConstraints(1, 1, 1e6, 1e6),
		Options{PriceStep: 0.003, ReservePrice: 0.1, Algorithm: AlgorithmScan})
	if err != nil {
		t.Fatal(err)
	}
	res, err = rp.Clear([]Bid{{Rack: 0, Fn: StepBid{D: 40, QMax: 0.5}}})
	if err != nil {
		t.Fatal(err)
	}
	onGrid(t, res.Price, 0.1, 0.003)
}

// Regression (ISSUE satellite 3): when two prices earn the same revenue
// (within revEps) both engines deterministically pick the lower one. Two
// step bids — 100 W up to 0.5 and 100 W up to 1.0 — earn exactly 0.1 $/h at
// both q=0.5 (200 W) and q=1.0 (100 W).
func TestRevenueTieBreaksTowardLowerPrice(t *testing.T) {
	cons := bigHeadroomConstraints(2, 1, 1000, 1000)
	bids := []Bid{
		{Rack: 0, Fn: StepBid{D: 100, QMax: 0.5}},
		{Rack: 1, Fn: StepBid{D: 100, QMax: 1.0}},
	}
	for _, algo := range []Algorithm{AlgorithmScan, AlgorithmExact} {
		m, err := NewMarket(cons, Options{PriceStep: 0.25, Algorithm: algo})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Clear(bids)
		if err != nil {
			t.Fatal(err)
		}
		if res.Price != 0.5 {
			t.Errorf("%v: tie broke to price %v, want 0.5", algo, res.Price)
		}
		if math.Abs(res.RevenueRate-0.1) > 1e-12 {
			t.Errorf("%v: revenue %v, want 0.1", algo, res.RevenueRate)
		}
	}
}

// opaqueBid hides its breakpoint structure, forcing the scan fallback.
type opaqueBid struct{ inner StepBid }

func (o opaqueBid) Demand(price float64) float64 { return o.inner.Demand(price) }
func (o opaqueBid) MaxDemand() float64           { return o.inner.MaxDemand() }
func (o opaqueBid) MaxPrice() float64            { return o.inner.MaxPrice() }

func TestAutoSelectsExactAndFallsBackToScan(t *testing.T) {
	cons := bigHeadroomConstraints(2, 1, 1000, 1000)
	m, err := NewMarket(cons, Options{PriceStep: 0.01}) // AlgorithmAuto
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Clear([]Bid{{Rack: 0, Fn: StepBid{D: 40, QMax: 0.4}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != AlgorithmExact {
		t.Errorf("auto with structured bids used %v, want exact", res.Algorithm)
	}

	// A bid without Breakpoints forces the grid scan, even when exact is
	// requested explicitly.
	for _, algo := range []Algorithm{AlgorithmAuto, AlgorithmExact} {
		m, err := NewMarket(cons, Options{PriceStep: 0.01, Algorithm: algo})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Clear([]Bid{{Rack: 0, Fn: opaqueBid{inner: StepBid{D: 40, QMax: 0.4}}}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Algorithm != AlgorithmScan {
			t.Errorf("%v with opaque bid used %v, want scan fallback", algo, res.Algorithm)
		}
	}
}

func TestParseAlgorithm(t *testing.T) {
	cases := []struct {
		in   string
		want Algorithm
		ok   bool
	}{
		{"", AlgorithmAuto, true},
		{"auto", AlgorithmAuto, true},
		{"scan", AlgorithmScan, true},
		{"exact", AlgorithmExact, true},
		{"grid", 0, false},
	}
	for _, c := range cases {
		got, err := ParseAlgorithm(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseAlgorithm(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseAlgorithm(%q) accepted", c.in)
		}
	}
	for _, a := range []Algorithm{AlgorithmAuto, AlgorithmScan, AlgorithmExact} {
		back, err := ParseAlgorithm(a.String())
		if err != nil || back != a {
			t.Errorf("round trip %v -> %q -> %v, %v", a, a.String(), back, err)
		}
	}
}

// The exact engine with Workers forced to various counts returns identical
// results — the parallel candidate verification is deterministic.
func TestExactDeterministicAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cons := twoPDUConstraints(80, 90, 150)
	var bids []Bid
	for r := 0; r < 8; r++ {
		bids = append(bids, randomBid(rng, r))
	}
	var ref Result
	for i, workers := range []int{1, 2, 4, 8} {
		m, err := NewMarket(cons, Options{PriceStep: 0.001, Algorithm: AlgorithmExact, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Clear(bids)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = res
			continue
		}
		if res.Price != ref.Price || res.RevenueRate != ref.RevenueRate || res.TotalWatts != ref.TotalWatts {
			t.Errorf("workers=%d: result (%v, %v, %v) != workers=1 (%v, %v, %v)",
				workers, res.Price, res.RevenueRate, res.TotalWatts, ref.Price, ref.RevenueRate, ref.TotalWatts)
		}
	}
}
