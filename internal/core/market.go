package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"spotdc/internal/otrace"
)

// ErrConstraints reports inconsistent market constraints.
var ErrConstraints = errors.New("core: invalid constraints")

// Constraints carries the multi-level capacity limits of Eqns. (2)–(4) for
// one clearing round. Rack arrays are indexed by rack index; PDUSpot by PDU
// index.
type Constraints struct {
	// RackHeadroom is P_r^R: the maximum spot capacity each rack's physical
	// PDU supports (Eqn. 2).
	RackHeadroom []float64
	// RackPDU maps each rack to its feeding PDU.
	RackPDU []int
	// PDUSpot is P_m(t): the available spot capacity at each PDU (Eqn. 3).
	PDUSpot []float64
	// UPSSpot is P_o(t): the available spot capacity at the UPS (Eqn. 4).
	UPSSpot float64
}

// Validate checks internal consistency.
func (c Constraints) Validate() error {
	if len(c.RackHeadroom) != len(c.RackPDU) {
		return fmt.Errorf("%w: %d headrooms but %d rack-PDU entries",
			ErrConstraints, len(c.RackHeadroom), len(c.RackPDU))
	}
	for r, m := range c.RackPDU {
		if m < 0 || m >= len(c.PDUSpot) {
			return fmt.Errorf("%w: rack %d references PDU %d of %d", ErrConstraints, r, m, len(c.PDUSpot))
		}
		if c.RackHeadroom[r] < 0 {
			return fmt.Errorf("%w: rack %d headroom %v negative", ErrConstraints, r, c.RackHeadroom[r])
		}
	}
	for m, p := range c.PDUSpot {
		if p < 0 {
			return fmt.Errorf("%w: PDU %d spot %v negative", ErrConstraints, m, p)
		}
	}
	if c.UPSSpot < 0 {
		return fmt.Errorf("%w: UPS spot %v negative", ErrConstraints, c.UPSSpot)
	}
	return nil
}

// Algorithm selects the clearing engine.
type Algorithm int

const (
	// AlgorithmAuto picks the default engine: the exact breakpoint-driven
	// search when every bid's demand function exposes its piece-wise linear
	// structure (Breakpointer), otherwise the grid scan.
	AlgorithmAuto Algorithm = iota
	// AlgorithmScan is the paper's Section III-C "simple search over the
	// feasible price range" at PriceStep granularity. It is kept as the
	// reference oracle the exact engine is cross-validated against.
	AlgorithmScan
	// AlgorithmExact is the breakpoint-driven engine: it collects the bid
	// curves' breakpoints, maximizes the closed-form piece-wise quadratic
	// revenue analytically on each inter-breakpoint segment, and verifies
	// the leading candidate prices in parallel. O(B log B) in the number of
	// breakpoints instead of O(prices × bids). Falls back to the scan when
	// a bid's demand function does not implement Breakpointer.
	AlgorithmExact
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case AlgorithmAuto:
		return "auto"
	case AlgorithmScan:
		return "scan"
	case AlgorithmExact:
		return "exact"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ParseAlgorithm maps the flag/config spelling to an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "", "auto":
		return AlgorithmAuto, nil
	case "scan":
		return AlgorithmScan, nil
	case "exact":
		return AlgorithmExact, nil
	default:
		return 0, fmt.Errorf("core: unknown clearing algorithm %q (want auto, scan or exact)", s)
	}
}

// Options tunes the clearing-price search.
type Options struct {
	// PriceStep is the scan granularity in $/kW·h. The paper evaluates
	// steps of 0.1 and 1 cents/kW (Fig. 7(b)). Default 0.001 $/kW·h.
	PriceStep float64
	// ReservePrice is the price floor; the operator can set it to recoup
	// metered-energy costs. Default 0.
	ReservePrice float64
	// Ration selects best-effort proportional rationing: instead of
	// requiring the uniform price to make every PDU's demand feasible
	// (which at scale lets the single most congested PDU floor the price
	// for the whole data center), allocations on an over-demanded PDU (or
	// UPS) are scaled down proportionally. Spot capacity is explicitly
	// best-effort in the paper, and the resulting allocation still
	// satisfies Eqns. (2)–(4). See DESIGN.md for this design choice.
	Ration bool
	// Algorithm selects the clearing engine; the zero value (AlgorithmAuto)
	// uses the exact breakpoint-driven engine whenever the bids permit it.
	Algorithm Algorithm
	// Workers caps the goroutines the exact engine uses to verify candidate
	// prices (each worker gets its own scratch buffers). 0 uses
	// runtime.GOMAXPROCS; 1 forces serial evaluation.
	Workers int
	// Metrics, if non-nil, receives per-clearing instrumentation (duration,
	// candidate evaluations, engine, price/revenue/watts). Observation is a
	// handful of atomic updates on pre-registered handles, preserving the
	// clearing loop's allocation budgets; nil disables it entirely at the
	// cost of one branch per Clear.
	Metrics *MarketMetrics
	// Audit, if non-nil, re-verifies the settlement conservation invariants
	// after every clearing (see Auditor). The inline pass is one O(bids)
	// loop over market-owned scratch — allocation-free after warm-up, like
	// Metrics — and never fails the clearing: violations are counted on the
	// Auditor and surfaced via its OnViolation hook and Err().
	Audit *Auditor
	// Trace, if non-nil, opens one clear span per Clear call under the
	// parent set by SetTraceParent, annotated with the engine, candidate
	// evaluations, and clearing price (DESIGN §4i). Nil is free.
	Trace *otrace.Tracer
}

const defaultPriceStep = 0.001

func (o Options) step() float64 {
	if o.PriceStep <= 0 {
		return defaultPriceStep
	}
	return o.PriceStep
}

// Allocation records the spot capacity granted to one rack.
type Allocation struct {
	Rack   int
	Tenant string
	// Watts is the granted spot capacity, already clamped to the rack
	// headroom P_r^R.
	Watts float64
}

// Result is the outcome of one market clearing.
type Result struct {
	// Price is the uniform clearing price in $/kW·h.
	Price float64
	// Allocations lists the per-rack grants (one per bid, zero-watt grants
	// included so callers can observe priced-out racks).
	//
	// Ownership: the slice is backed by the Market's reusable scratch buffer
	// and is valid only until the next Clear/ClearWithExtras call on the
	// same Market. Callers that retain grants across clearings must copy
	// (the market loop broadcasts and the simulator consumes grants within
	// the slot, so the steady-state clearing path allocates nothing).
	Allocations []Allocation
	// TotalWatts is the total spot capacity sold.
	TotalWatts float64
	// RevenueRate is the operator's revenue rate in $/h at this price
	// (Price × TotalWatts/1000). Multiply by the slot length in hours for
	// the per-slot payment.
	RevenueRate float64
	// Evaluations counts the full demand-curve evaluations performed (the
	// dominant cost of clearing), a proxy for clearing cost reported
	// alongside Fig. 7(b). The scan performs one per candidate grid price;
	// the exact engine performs a handful (feasibility probes plus
	// verification of the analytically chosen candidates).
	Evaluations int
	// Algorithm records which engine produced the result (never
	// AlgorithmAuto: auto resolves to scan or exact per clearing).
	Algorithm Algorithm
}

// Market clears spot capacity for a fixed topology, reusing scratch buffers
// across slots. It is not safe for concurrent use; create one per goroutine.
type Market struct {
	cons Constraints
	opts Options
	// extras holds the optional Section III-A constraints (heat density,
	// phase balance); nil when unused.
	extras *Extras
	// scratch per-PDU accumulation buffer.
	pduLoad []float64
	// allocBuf backs Result.Allocations across clearings (see the ownership
	// note on Result.Allocations): steady-state clearing materializes into
	// this buffer instead of allocating per slot.
	allocBuf []Allocation
	// pduScale is rationedAllocations' per-PDU scale factor scratch.
	pduScale []float64
	// auditLoad is the inline auditor's per-PDU accumulation scratch.
	auditLoad []float64
	// rackLoad is VerifyFeasible's per-rack accumulation scratch (grants
	// for the same rack must jointly respect its headroom).
	rackLoad []float64
	// rackSeen/rackEpoch implement O(1) duplicate-rack detection in Clear's
	// validation pass without clearing a buffer per call: a rack is "seen
	// this clearing" iff rackSeen[rack] == rackEpoch.
	rackSeen  []uint32
	rackEpoch uint32
	// exact holds the reusable buffers of the breakpoint-driven engine
	// (same single-threaded contract as pduLoad; the parallel candidate
	// verification uses private per-worker buffers instead).
	exact exactScratch
	// traceParent is the span Clear's clear span parents under; set per
	// slot by SetTraceParent, nil outside an instrumented slot.
	traceParent *otrace.Span
}

// SetTraceParent sets the parent span for the clear spans opened by Clear
// (nil detaches). Call it from the same goroutine that calls Clear; the
// market is single-threaded by contract.
func (m *Market) SetTraceParent(sp *otrace.Span) {
	m.traceParent = sp
}

// allocs returns the market-owned allocation buffer resized to n
// (reallocating only on growth).
func (m *Market) allocs(n int) []Allocation {
	if cap(m.allocBuf) < n {
		m.allocBuf = make([]Allocation, n)
	}
	m.allocBuf = m.allocBuf[:n]
	return m.allocBuf
}

// NewMarket validates the constraints and builds a market. The constraints'
// PDUSpot and UPSSpot may be updated per slot via SetSpot.
func NewMarket(cons Constraints, opts Options) (*Market, error) {
	if err := cons.Validate(); err != nil {
		return nil, err
	}
	cons.RackHeadroom = append([]float64(nil), cons.RackHeadroom...)
	cons.RackPDU = append([]int(nil), cons.RackPDU...)
	cons.PDUSpot = append([]float64(nil), cons.PDUSpot...)
	return &Market{
		cons:    cons,
		opts:    opts,
		pduLoad: make([]float64, len(cons.PDUSpot)),
	}, nil
}

// SetSpot updates the per-slot available spot capacity. It validates every
// value before mutating anything, so a rejected update leaves the market's
// constraints exactly as they were (no partial application).
func (m *Market) SetSpot(pduSpot []float64, upsSpot float64) error {
	if len(pduSpot) != len(m.cons.PDUSpot) {
		return fmt.Errorf("%w: %d PDU spot values for %d PDUs", ErrConstraints, len(pduSpot), len(m.cons.PDUSpot))
	}
	for i, p := range pduSpot {
		if p < 0 {
			return fmt.Errorf("%w: PDU %d spot %v negative", ErrConstraints, i, p)
		}
	}
	if upsSpot < 0 {
		return fmt.Errorf("%w: UPS spot %v negative", ErrConstraints, upsSpot)
	}
	copy(m.cons.PDUSpot, pduSpot)
	m.cons.UPSSpot = upsSpot
	return nil
}

// Options returns the market's clearing options (the Metrics and Audit
// handles come along as shared pointers; callers treat them as read-only).
func (m *Market) Options() Options { return m.opts }

// Constraints returns a copy of the current constraints.
func (m *Market) Constraints() Constraints {
	return Constraints{
		RackHeadroom: append([]float64(nil), m.cons.RackHeadroom...),
		RackPDU:      append([]int(nil), m.cons.RackPDU...),
		PDUSpot:      append([]float64(nil), m.cons.PDUSpot...),
		UPSSpot:      m.cons.UPSSpot,
	}
}

// servedInto fills pduLoad (a caller-owned buffer of len(PDUSpot)) with the
// per-PDU served demand at the given price (each rack clamped to its
// headroom) and returns the total. It touches no Market scratch state, so
// concurrent callers with distinct buffers are safe.
func (m *Market) servedInto(pduLoad []float64, bids []Bid, price float64) float64 {
	for i := range pduLoad {
		pduLoad[i] = 0
	}
	total := 0.0
	for _, b := range bids {
		d := b.Fn.Demand(price)
		if hr := m.cons.RackHeadroom[b.Rack]; d > hr {
			d = hr
		}
		if d <= 0 {
			continue
		}
		pduLoad[m.cons.RackPDU[b.Rack]] += d
		total += d
	}
	return total
}

// servedAt is servedInto over the market's shared scratch buffer
// (single-threaded callers only).
func (m *Market) servedAt(bids []Bid, price float64) float64 {
	return m.servedInto(m.pduLoad, bids, price)
}

// feasEps is the capacity-comparison tolerance in watts: loads within
// feasEps of a PDU/UPS limit still count as feasible (Eqns. 2–4 hold up to
// floating-point noise).
const feasEps = 1e-9

// revEps is the revenue-comparison tolerance in $/h, deliberately distinct
// from the watts-scale feasEps: a candidate price must beat the incumbent's
// revenue by more than revEps to replace it. Combined with evaluating
// candidates in ascending price order, this tie-breaks deterministically
// toward the lower clearing price.
const revEps = 1e-9

// rationedInto returns the total watts served at the given price under
// proportional rationing, accumulating per-PDU loads into the caller-owned
// buffer: each rack's demand is clamped to its headroom, each over-demanded
// PDU's load is scaled to its spot capacity, and the grand total is capped
// at the UPS spot.
func (m *Market) rationedInto(pduLoad []float64, bids []Bid, price float64) float64 {
	m.servedInto(pduLoad, bids, price)
	total := 0.0
	for i, load := range pduLoad {
		if load > m.cons.PDUSpot[i] {
			load = m.cons.PDUSpot[i]
		}
		total += load
	}
	if total > m.cons.UPSSpot {
		total = m.cons.UPSSpot
	}
	return total
}

// rationedAt is rationedInto over the market's shared scratch buffer.
func (m *Market) rationedAt(bids []Bid, price float64) float64 {
	return m.rationedInto(m.pduLoad, bids, price)
}

// rationedAllocations materializes the per-rack grants at a price under
// proportional rationing, into the market-owned allocation buffer.
func (m *Market) rationedAllocations(bids []Bid, price float64) ([]Allocation, float64) {
	m.servedAt(bids, price)
	pduScale := f64s(m.pduScale, len(m.pduLoad))
	m.pduScale = pduScale
	total := 0.0
	for i, load := range m.pduLoad {
		pduScale[i] = 1
		if load > m.cons.PDUSpot[i] && load > 0 {
			pduScale[i] = m.cons.PDUSpot[i] / load
		}
		total += load * pduScale[i]
	}
	upsScale := 1.0
	if total > m.cons.UPSSpot && total > 0 {
		upsScale = m.cons.UPSSpot / total
		total = m.cons.UPSSpot
	}
	allocs := m.allocs(len(bids))
	for i, b := range bids {
		d := b.Fn.Demand(price)
		if hr := m.cons.RackHeadroom[b.Rack]; d > hr {
			d = hr
		}
		if d < 0 {
			d = 0
		}
		d *= pduScale[m.cons.RackPDU[b.Rack]] * upsScale
		allocs[i] = Allocation{Rack: b.Rack, Tenant: b.Tenant, Watts: d}
	}
	return allocs, total
}

// feasibleInto reports whether the served demand at price fits every PDU
// and the UPS, using the caller-owned buffer, and returns the served total.
// Because demand is non-increasing in price, feasibility is monotone:
// feasible at q implies feasible at any q' ≥ q.
func (m *Market) feasibleInto(pduLoad []float64, bids []Bid, price float64) (float64, bool) {
	total := m.servedInto(pduLoad, bids, price)
	if total > m.cons.UPSSpot+feasEps {
		return total, false
	}
	for i, load := range pduLoad {
		if load > m.cons.PDUSpot[i]+feasEps {
			return total, false
		}
	}
	return total, true
}

// feasibleAt is feasibleInto over the market's shared scratch buffer.
func (m *Market) feasibleAt(bids []Bid, price float64) bool {
	_, ok := m.feasibleInto(m.pduLoad, bids, price)
	return ok
}

// Clear runs the market: it finds the uniform price maximizing the
// operator's revenue q·ΣD_r(q) (Eqn. 1) over feasible prices. The engine is
// selected by Options.Algorithm: the exact breakpoint-driven search (the
// default when every bid exposes its piece-wise linear structure) or the
// Section III-C grid scan at PriceStep granularity. Bids referencing
// out-of-range racks are rejected.
//
// The returned Result.Allocations slice is owned by the Market and valid
// only until the next Clear/ClearWithExtras call; copy it to retain grants
// across clearings.
func (m *Market) Clear(bids []Bid) (Result, error) {
	met := m.opts.Metrics
	var start time.Time
	if met != nil {
		start = time.Now()
	}
	sp := m.opts.Trace.StartChild("clear", m.traceParent)
	if err := m.validateBids(bids); err != nil {
		if met != nil {
			met.clearErrors.Inc()
		}
		if sp != nil {
			sp.SetStr("error", err.Error())
			sp.End()
		}
		return Result{}, err
	}
	var res Result
	switch {
	case m.opts.Algorithm == AlgorithmScan:
		res = m.clearScan(bids)
	case breakpointable(bids): // AlgorithmExact or AlgorithmAuto
		res = m.clearExact(bids)
	default:
		res = m.clearScan(bids)
	}
	if met != nil {
		met.observeClear(res, time.Since(start))
	}
	if aud := m.opts.Audit; aud != nil {
		m.auditClear(aud, bids, res)
	}
	if sp != nil {
		sp.SetStr("engine", res.Algorithm.String())
		sp.SetInt("evaluations", int64(res.Evaluations))
		sp.SetFloat("price", res.Price)
		sp.End()
	}
	return res, nil
}

// validateBids rejects out-of-range racks, nil demand functions, and
// duplicate racks. A rack gets exactly one demand function per slot (b_r in
// the paper); two bids on the same rack would let the per-bid headroom
// clamp in servedInto jointly exceed the rack's physical headroom (Eqn. 2).
// Duplicate detection is epoch-marked over a reusable buffer, so steady-
// state validation allocates nothing.
func (m *Market) validateBids(bids []Bid) error {
	if cap(m.rackSeen) < len(m.cons.RackHeadroom) {
		m.rackSeen = make([]uint32, len(m.cons.RackHeadroom))
	}
	seen := m.rackSeen[:len(m.cons.RackHeadroom)]
	m.rackEpoch++
	if m.rackEpoch == 0 { // uint32 wrap: stale marks could alias, reset
		for i := range seen {
			seen[i] = 0
		}
		m.rackEpoch = 1
	}
	for _, b := range bids {
		if b.Rack < 0 || b.Rack >= len(m.cons.RackHeadroom) {
			return fmt.Errorf("%w: bid references rack %d of %d", ErrConstraints, b.Rack, len(m.cons.RackHeadroom))
		}
		if b.Fn == nil {
			return fmt.Errorf("%w: bid for rack %d has nil demand function", ErrBid, b.Rack)
		}
		if seen[b.Rack] == m.rackEpoch {
			return fmt.Errorf("%w: duplicate bid for rack %d (one demand function per rack per slot)", ErrBid, b.Rack)
		}
		seen[b.Rack] = m.rackEpoch
	}
	return nil
}

// breakpointable reports whether every bid's demand function exposes its
// piece-wise linear structure, the prerequisite of exact clearing.
func breakpointable(bids []Bid) bool {
	for _, b := range bids {
		if _, ok := b.Fn.(Breakpointer); !ok {
			return false
		}
	}
	return true
}

// priceFloor returns the effective reserve price.
func (m *Market) priceFloor() float64 {
	if m.opts.ReservePrice < 0 {
		return 0
	}
	return m.opts.ReservePrice
}

// maxBidPrice returns the highest MaxPrice over the bids, floored at the
// reserve; revenue is zero above it.
func (m *Market) maxBidPrice(bids []Bid) float64 {
	hi := m.priceFloor()
	for _, b := range bids {
		if p := b.Fn.MaxPrice(); p > hi {
			hi = p
		}
	}
	return hi
}

// clearScan is the reference engine: the paper's grid scan at PriceStep
// granularity. Every candidate price is an exact grid point
// floor + i·PriceStep (integer-indexed, so thousands of iterations cannot
// drift off-grid the way a floating-point accumulator would), and the
// binary-searched feasibility boundary is snapped up to the same grid.
func (m *Market) clearScan(bids []Bid) Result {
	floor := m.priceFloor()
	res := Result{Price: floor, Algorithm: AlgorithmScan}
	if len(bids) == 0 {
		return res
	}
	// The revenue is zero above every bid's maximum price; cap the scan.
	hi := m.maxBidPrice(bids)
	step := m.opts.step()

	loIdx := 0
	evals := 0
	if !m.opts.Ration {
		// Feasibility is monotone in price, so binary-search the lowest
		// feasible price to step resolution, then scan only feasible
		// prices.
		evals++
		if !m.feasibleAt(bids, floor) {
			// Demand is zero (hence trivially feasible) just above hi.
			searchLo, searchHi := floor, hi+step
			for searchHi-searchLo > step/4 {
				mid := (searchLo + searchHi) / 2
				evals++
				if m.feasibleAt(bids, mid) {
					searchHi = mid
				} else {
					searchLo = mid
				}
			}
			// Snap the boundary up to the scan grid: the first candidate is
			// the lowest grid price at or above the infeasible searchLo that
			// probes feasible (at most a couple of probes, since
			// searchHi − searchLo ≤ step/4).
			loIdx = int(math.Ceil((searchLo - floor) / step))
			if loIdx < 0 {
				loIdx = 0
			}
			for {
				evals++
				if m.feasibleAt(bids, floor+float64(loIdx)*step) {
					break
				}
				loIdx++
			}
		}
	}

	served := m.servedAt
	if m.opts.Ration {
		served = m.rationedAt
	}
	bestPrice, bestRevenue, bestWatts := floor+float64(loIdx)*step, -1.0, 0.0
	for i := loIdx; ; i++ {
		q := floor + float64(i)*step
		if q > hi+step/2 {
			break
		}
		evals++
		watts := served(bids, q)
		rev := q * watts / 1000 // $/kW·h × kW = $/h
		if rev > bestRevenue+revEps {
			bestPrice, bestRevenue, bestWatts = q, rev, watts
		}
	}
	if bestRevenue < 0 {
		// Even the lowest feasible price exceeds every max price: nothing
		// sells.
		bestRevenue, bestWatts = 0, 0
	}

	res.Price = bestPrice
	res.Evaluations = evals
	return m.materialize(res, bids, bestWatts, bestRevenue)
}

// materialize fills the allocations of a result whose Price is decided.
func (m *Market) materialize(res Result, bids []Bid, watts, revenue float64) Result {
	if m.opts.Ration {
		res.Allocations, res.TotalWatts = m.rationedAllocations(bids, res.Price)
		res.RevenueRate = res.Price * res.TotalWatts / 1000
		return res
	}
	res.TotalWatts = watts
	res.RevenueRate = revenue
	res.Allocations = m.allocs(len(bids))
	for i, b := range bids {
		d := b.Fn.Demand(res.Price)
		if hr := m.cons.RackHeadroom[b.Rack]; d > hr {
			d = hr
		}
		res.Allocations[i] = Allocation{Rack: b.Rack, Tenant: b.Tenant, Watts: d}
	}
	return res
}

// VerifyFeasible confirms that an allocation satisfies Eqns. (2)–(4); the
// simulator asserts this invariant every slot. Grants are accumulated per
// rack before the headroom comparison: several allocations for the same
// rack (legal for callers outside Clear, e.g. MaxPerf) must jointly fit its
// physical headroom, not just individually.
func (m *Market) VerifyFeasible(allocs []Allocation) error {
	for i := range m.pduLoad {
		m.pduLoad[i] = 0
	}
	rackLoad := f64s(m.rackLoad, len(m.cons.RackHeadroom))
	m.rackLoad = rackLoad
	for i := range rackLoad {
		rackLoad[i] = 0
	}
	total := 0.0
	for _, a := range allocs {
		if a.Rack < 0 || a.Rack >= len(m.cons.RackHeadroom) {
			return fmt.Errorf("%w: allocation for rack %d of %d", ErrConstraints, a.Rack, len(m.cons.RackHeadroom))
		}
		if a.Watts < 0 {
			return fmt.Errorf("core: rack %d allocated negative power %v", a.Rack, a.Watts)
		}
		rackLoad[a.Rack] += a.Watts
		if rackLoad[a.Rack] > m.cons.RackHeadroom[a.Rack]+feasEps {
			return fmt.Errorf("core: rack %d allocated %v W beyond headroom %v W (Eqn. 2)",
				a.Rack, rackLoad[a.Rack], m.cons.RackHeadroom[a.Rack])
		}
		m.pduLoad[m.cons.RackPDU[a.Rack]] += a.Watts
		total += a.Watts
	}
	for i, load := range m.pduLoad {
		if load > m.cons.PDUSpot[i]+feasEps {
			return fmt.Errorf("core: PDU %d allocated %v W beyond spot %v W (Eqn. 3)", i, load, m.cons.PDUSpot[i])
		}
	}
	if total > m.cons.UPSSpot+feasEps {
		return fmt.Errorf("core: UPS allocated %v W beyond spot %v W (Eqn. 4)", total, m.cons.UPSSpot)
	}
	return nil
}

// ClearPerPDU is the pricing ablation discussed in DESIGN.md: each PDU
// clears independently at its own price (still respecting rack headrooms
// and its own spot capacity), and the UPS constraint is then enforced by
// raising the cheapest PDU's price step-by-step until the total fits. The
// paper's single uniform price is simpler and is what SpotDC deploys; this
// exists to quantify the gap.
func (m *Market) ClearPerPDU(bids []Bid) ([]Result, error) {
	byPDU := make([][]Bid, len(m.cons.PDUSpot))
	for _, b := range bids {
		if b.Rack < 0 || b.Rack >= len(m.cons.RackHeadroom) {
			return nil, fmt.Errorf("%w: bid references rack %d of %d", ErrConstraints, b.Rack, len(m.cons.RackHeadroom))
		}
		pdu := m.cons.RackPDU[b.Rack]
		byPDU[pdu] = append(byPDU[pdu], b)
	}
	results := make([]Result, len(byPDU))
	for pdu, pb := range byPDU {
		sub, err := NewMarket(Constraints{
			RackHeadroom: m.cons.RackHeadroom,
			RackPDU:      m.cons.RackPDU,
			PDUSpot:      isolatedSpot(m.cons.PDUSpot, pdu),
			UPSSpot:      m.cons.PDUSpot[pdu],
		}, m.opts)
		if err != nil {
			return nil, err
		}
		r, err := sub.Clear(pb)
		if err != nil {
			return nil, err
		}
		results[pdu] = r
	}
	// Enforce the UPS constraint by pricing up the cheapest PDU.
	step := m.opts.step()
	for {
		total := 0.0
		for _, r := range results {
			total += r.TotalWatts
		}
		if total <= m.cons.UPSSpot+feasEps {
			break
		}
		cheapest, found := -1, false
		for pdu, r := range results {
			if r.TotalWatts <= 0 {
				continue
			}
			if !found || r.Price < results[cheapest].Price {
				cheapest, found = pdu, true
			}
		}
		if !found {
			break
		}
		newPrice := results[cheapest].Price + step
		results[cheapest] = m.reallocateAt(byPDU[cheapest], newPrice)
	}
	return results, nil
}

func isolatedSpot(pduSpot []float64, keep int) []float64 {
	out := make([]float64, len(pduSpot))
	out[keep] = pduSpot[keep]
	return out
}

// reallocateAt recomputes a per-PDU result at a forced price.
func (m *Market) reallocateAt(bids []Bid, price float64) Result {
	res := Result{Price: price, Allocations: make([]Allocation, len(bids))}
	for i, b := range bids {
		d := b.Fn.Demand(price)
		if hr := m.cons.RackHeadroom[b.Rack]; d > hr {
			d = hr
		}
		res.Allocations[i] = Allocation{Rack: b.Rack, Tenant: b.Tenant, Watts: d}
		res.TotalWatts += d
	}
	res.RevenueRate = price * res.TotalWatts / 1000
	return res
}
