package core

import (
	"errors"
	"fmt"
)

// ErrConstraints reports inconsistent market constraints.
var ErrConstraints = errors.New("core: invalid constraints")

// Constraints carries the multi-level capacity limits of Eqns. (2)–(4) for
// one clearing round. Rack arrays are indexed by rack index; PDUSpot by PDU
// index.
type Constraints struct {
	// RackHeadroom is P_r^R: the maximum spot capacity each rack's physical
	// PDU supports (Eqn. 2).
	RackHeadroom []float64
	// RackPDU maps each rack to its feeding PDU.
	RackPDU []int
	// PDUSpot is P_m(t): the available spot capacity at each PDU (Eqn. 3).
	PDUSpot []float64
	// UPSSpot is P_o(t): the available spot capacity at the UPS (Eqn. 4).
	UPSSpot float64
}

// Validate checks internal consistency.
func (c Constraints) Validate() error {
	if len(c.RackHeadroom) != len(c.RackPDU) {
		return fmt.Errorf("%w: %d headrooms but %d rack-PDU entries",
			ErrConstraints, len(c.RackHeadroom), len(c.RackPDU))
	}
	for r, m := range c.RackPDU {
		if m < 0 || m >= len(c.PDUSpot) {
			return fmt.Errorf("%w: rack %d references PDU %d of %d", ErrConstraints, r, m, len(c.PDUSpot))
		}
		if c.RackHeadroom[r] < 0 {
			return fmt.Errorf("%w: rack %d headroom %v negative", ErrConstraints, r, c.RackHeadroom[r])
		}
	}
	for m, p := range c.PDUSpot {
		if p < 0 {
			return fmt.Errorf("%w: PDU %d spot %v negative", ErrConstraints, m, p)
		}
	}
	if c.UPSSpot < 0 {
		return fmt.Errorf("%w: UPS spot %v negative", ErrConstraints, c.UPSSpot)
	}
	return nil
}

// Options tunes the clearing-price search.
type Options struct {
	// PriceStep is the scan granularity in $/kW·h. The paper evaluates
	// steps of 0.1 and 1 cents/kW (Fig. 7(b)). Default 0.001 $/kW·h.
	PriceStep float64
	// ReservePrice is the price floor; the operator can set it to recoup
	// metered-energy costs. Default 0.
	ReservePrice float64
	// Ration selects best-effort proportional rationing: instead of
	// requiring the uniform price to make every PDU's demand feasible
	// (which at scale lets the single most congested PDU floor the price
	// for the whole data center), allocations on an over-demanded PDU (or
	// UPS) are scaled down proportionally. Spot capacity is explicitly
	// best-effort in the paper, and the resulting allocation still
	// satisfies Eqns. (2)–(4). See DESIGN.md for this design choice.
	Ration bool
}

const defaultPriceStep = 0.001

func (o Options) step() float64 {
	if o.PriceStep <= 0 {
		return defaultPriceStep
	}
	return o.PriceStep
}

// Allocation records the spot capacity granted to one rack.
type Allocation struct {
	Rack   int
	Tenant string
	// Watts is the granted spot capacity, already clamped to the rack
	// headroom P_r^R.
	Watts float64
}

// Result is the outcome of one market clearing.
type Result struct {
	// Price is the uniform clearing price in $/kW·h.
	Price float64
	// Allocations lists the per-rack grants (one per bid, zero-watt grants
	// included so callers can observe priced-out racks).
	Allocations []Allocation
	// TotalWatts is the total spot capacity sold.
	TotalWatts float64
	// RevenueRate is the operator's revenue rate in $/h at this price
	// (Price × TotalWatts/1000). Multiply by the slot length in hours for
	// the per-slot payment.
	RevenueRate float64
	// Evaluations counts the candidate prices examined, a proxy for
	// clearing cost reported alongside Fig. 7(b).
	Evaluations int
}

// Market clears spot capacity for a fixed topology, reusing scratch buffers
// across slots. It is not safe for concurrent use; create one per goroutine.
type Market struct {
	cons Constraints
	opts Options
	// extras holds the optional Section III-A constraints (heat density,
	// phase balance); nil when unused.
	extras *Extras
	// scratch per-PDU accumulation buffer.
	pduLoad []float64
}

// NewMarket validates the constraints and builds a market. The constraints'
// PDUSpot and UPSSpot may be updated per slot via SetSpot.
func NewMarket(cons Constraints, opts Options) (*Market, error) {
	if err := cons.Validate(); err != nil {
		return nil, err
	}
	cons.RackHeadroom = append([]float64(nil), cons.RackHeadroom...)
	cons.RackPDU = append([]int(nil), cons.RackPDU...)
	cons.PDUSpot = append([]float64(nil), cons.PDUSpot...)
	return &Market{
		cons:    cons,
		opts:    opts,
		pduLoad: make([]float64, len(cons.PDUSpot)),
	}, nil
}

// SetSpot updates the per-slot available spot capacity.
func (m *Market) SetSpot(pduSpot []float64, upsSpot float64) error {
	if len(pduSpot) != len(m.cons.PDUSpot) {
		return fmt.Errorf("%w: %d PDU spot values for %d PDUs", ErrConstraints, len(pduSpot), len(m.cons.PDUSpot))
	}
	for i, p := range pduSpot {
		if p < 0 {
			return fmt.Errorf("%w: PDU %d spot %v negative", ErrConstraints, i, p)
		}
		m.cons.PDUSpot[i] = p
	}
	if upsSpot < 0 {
		return fmt.Errorf("%w: UPS spot %v negative", ErrConstraints, upsSpot)
	}
	m.cons.UPSSpot = upsSpot
	return nil
}

// Constraints returns a copy of the current constraints.
func (m *Market) Constraints() Constraints {
	return Constraints{
		RackHeadroom: append([]float64(nil), m.cons.RackHeadroom...),
		RackPDU:      append([]int(nil), m.cons.RackPDU...),
		PDUSpot:      append([]float64(nil), m.cons.PDUSpot...),
		UPSSpot:      m.cons.UPSSpot,
	}
}

// servedAt fills m.pduLoad with the per-PDU served demand at the given
// price (each rack clamped to its headroom) and returns the total.
func (m *Market) servedAt(bids []Bid, price float64) float64 {
	for i := range m.pduLoad {
		m.pduLoad[i] = 0
	}
	total := 0.0
	for _, b := range bids {
		d := b.Fn.Demand(price)
		if hr := m.cons.RackHeadroom[b.Rack]; d > hr {
			d = hr
		}
		if d <= 0 {
			continue
		}
		m.pduLoad[m.cons.RackPDU[b.Rack]] += d
		total += d
	}
	return total
}

const feasEps = 1e-9

// rationedAt returns the total watts served at the given price under
// proportional rationing: each rack's demand is clamped to its headroom,
// each over-demanded PDU's load is scaled to its spot capacity, and the
// grand total is capped at the UPS spot.
func (m *Market) rationedAt(bids []Bid, price float64) float64 {
	m.servedAt(bids, price)
	total := 0.0
	for i, load := range m.pduLoad {
		if load > m.cons.PDUSpot[i] {
			load = m.cons.PDUSpot[i]
		}
		total += load
	}
	if total > m.cons.UPSSpot {
		total = m.cons.UPSSpot
	}
	return total
}

// rationedAllocations materializes the per-rack grants at a price under
// proportional rationing.
func (m *Market) rationedAllocations(bids []Bid, price float64) ([]Allocation, float64) {
	m.servedAt(bids, price)
	pduScale := make([]float64, len(m.pduLoad))
	total := 0.0
	for i, load := range m.pduLoad {
		pduScale[i] = 1
		if load > m.cons.PDUSpot[i] && load > 0 {
			pduScale[i] = m.cons.PDUSpot[i] / load
		}
		total += load * pduScale[i]
	}
	upsScale := 1.0
	if total > m.cons.UPSSpot && total > 0 {
		upsScale = m.cons.UPSSpot / total
		total = m.cons.UPSSpot
	}
	allocs := make([]Allocation, len(bids))
	for i, b := range bids {
		d := b.Fn.Demand(price)
		if hr := m.cons.RackHeadroom[b.Rack]; d > hr {
			d = hr
		}
		if d < 0 {
			d = 0
		}
		d *= pduScale[m.cons.RackPDU[b.Rack]] * upsScale
		allocs[i] = Allocation{Rack: b.Rack, Tenant: b.Tenant, Watts: d}
	}
	return allocs, total
}

// feasibleAt reports whether the served demand at price fits every PDU and
// the UPS. Because demand is non-increasing in price, feasibility is
// monotone: feasible at q implies feasible at any q' ≥ q.
func (m *Market) feasibleAt(bids []Bid, price float64) bool {
	total := m.servedAt(bids, price)
	if total > m.cons.UPSSpot+feasEps {
		return false
	}
	for i, load := range m.pduLoad {
		if load > m.cons.PDUSpot[i]+feasEps {
			return false
		}
	}
	return true
}

// Clear runs the market: it finds the uniform price maximizing the
// operator's revenue q·ΣD_r(q) (Eqn. 1) over feasible prices, scanning with
// the configured step exactly as Section III-C's "simple search over the
// feasible price range". Bids referencing out-of-range racks are rejected.
func (m *Market) Clear(bids []Bid) (Result, error) {
	for _, b := range bids {
		if b.Rack < 0 || b.Rack >= len(m.cons.RackHeadroom) {
			return Result{}, fmt.Errorf("%w: bid references rack %d of %d", ErrConstraints, b.Rack, len(m.cons.RackHeadroom))
		}
		if b.Fn == nil {
			return Result{}, fmt.Errorf("%w: bid for rack %d has nil demand function", ErrBid, b.Rack)
		}
	}
	floor := m.opts.ReservePrice
	if floor < 0 {
		floor = 0
	}
	res := Result{Price: floor}
	if len(bids) == 0 {
		return res, nil
	}
	// The revenue is zero above every bid's maximum price; cap the scan.
	hi := floor
	for _, b := range bids {
		if p := b.Fn.MaxPrice(); p > hi {
			hi = p
		}
	}
	step := m.opts.step()

	lo := floor
	evals := 0
	if !m.opts.Ration {
		// Feasibility is monotone in price, so binary-search the lowest
		// feasible price to step resolution, then scan only feasible
		// prices.
		if !m.feasibleAt(bids, lo) {
			evals++
			// Demand is zero (hence trivially feasible) just above hi.
			searchLo, searchHi := lo, hi+step
			for searchHi-searchLo > step/4 {
				mid := (searchLo + searchHi) / 2
				evals++
				if m.feasibleAt(bids, mid) {
					searchHi = mid
				} else {
					searchLo = mid
				}
			}
			lo = searchHi
		} else {
			evals++
		}
	}

	served := m.servedAt
	if m.opts.Ration {
		served = m.rationedAt
	}
	bestPrice, bestRevenue, bestWatts := lo, -1.0, 0.0
	for q := lo; q <= hi+step/2; q += step {
		evals++
		watts := served(bids, q)
		rev := q * watts / 1000 // $/kW·h × kW = $/h
		if rev > bestRevenue+feasEps {
			bestPrice, bestRevenue, bestWatts = q, rev, watts
		}
	}
	if bestRevenue < 0 {
		// Even the lowest feasible price exceeds every max price: nothing
		// sells.
		bestPrice, bestRevenue, bestWatts = lo, 0, 0
	}

	res.Price = bestPrice
	res.Evaluations = evals
	if m.opts.Ration {
		res.Allocations, res.TotalWatts = m.rationedAllocations(bids, bestPrice)
		res.RevenueRate = bestPrice * res.TotalWatts / 1000
		return res, nil
	}
	res.TotalWatts = bestWatts
	res.RevenueRate = bestRevenue
	res.Allocations = make([]Allocation, len(bids))
	for i, b := range bids {
		d := b.Fn.Demand(bestPrice)
		if hr := m.cons.RackHeadroom[b.Rack]; d > hr {
			d = hr
		}
		res.Allocations[i] = Allocation{Rack: b.Rack, Tenant: b.Tenant, Watts: d}
	}
	return res, nil
}

// VerifyFeasible confirms that an allocation satisfies Eqns. (2)–(4); the
// simulator asserts this invariant every slot.
func (m *Market) VerifyFeasible(allocs []Allocation) error {
	for i := range m.pduLoad {
		m.pduLoad[i] = 0
	}
	total := 0.0
	for _, a := range allocs {
		if a.Rack < 0 || a.Rack >= len(m.cons.RackHeadroom) {
			return fmt.Errorf("%w: allocation for rack %d of %d", ErrConstraints, a.Rack, len(m.cons.RackHeadroom))
		}
		if a.Watts < 0 {
			return fmt.Errorf("core: rack %d allocated negative power %v", a.Rack, a.Watts)
		}
		if a.Watts > m.cons.RackHeadroom[a.Rack]+feasEps {
			return fmt.Errorf("core: rack %d allocated %v W beyond headroom %v W (Eqn. 2)",
				a.Rack, a.Watts, m.cons.RackHeadroom[a.Rack])
		}
		m.pduLoad[m.cons.RackPDU[a.Rack]] += a.Watts
		total += a.Watts
	}
	for i, load := range m.pduLoad {
		if load > m.cons.PDUSpot[i]+feasEps {
			return fmt.Errorf("core: PDU %d allocated %v W beyond spot %v W (Eqn. 3)", i, load, m.cons.PDUSpot[i])
		}
	}
	if total > m.cons.UPSSpot+feasEps {
		return fmt.Errorf("core: UPS allocated %v W beyond spot %v W (Eqn. 4)", total, m.cons.UPSSpot)
	}
	return nil
}

// ClearPerPDU is the pricing ablation discussed in DESIGN.md: each PDU
// clears independently at its own price (still respecting rack headrooms
// and its own spot capacity), and the UPS constraint is then enforced by
// raising the cheapest PDU's price step-by-step until the total fits. The
// paper's single uniform price is simpler and is what SpotDC deploys; this
// exists to quantify the gap.
func (m *Market) ClearPerPDU(bids []Bid) ([]Result, error) {
	byPDU := make([][]Bid, len(m.cons.PDUSpot))
	for _, b := range bids {
		if b.Rack < 0 || b.Rack >= len(m.cons.RackHeadroom) {
			return nil, fmt.Errorf("%w: bid references rack %d of %d", ErrConstraints, b.Rack, len(m.cons.RackHeadroom))
		}
		pdu := m.cons.RackPDU[b.Rack]
		byPDU[pdu] = append(byPDU[pdu], b)
	}
	results := make([]Result, len(byPDU))
	for pdu, pb := range byPDU {
		sub, err := NewMarket(Constraints{
			RackHeadroom: m.cons.RackHeadroom,
			RackPDU:      m.cons.RackPDU,
			PDUSpot:      isolatedSpot(m.cons.PDUSpot, pdu),
			UPSSpot:      m.cons.PDUSpot[pdu],
		}, m.opts)
		if err != nil {
			return nil, err
		}
		r, err := sub.Clear(pb)
		if err != nil {
			return nil, err
		}
		results[pdu] = r
	}
	// Enforce the UPS constraint by pricing up the cheapest PDU.
	step := m.opts.step()
	for {
		total := 0.0
		for _, r := range results {
			total += r.TotalWatts
		}
		if total <= m.cons.UPSSpot+feasEps {
			break
		}
		cheapest, found := -1, false
		for pdu, r := range results {
			if r.TotalWatts <= 0 {
				continue
			}
			if !found || r.Price < results[cheapest].Price {
				cheapest, found = pdu, true
			}
		}
		if !found {
			break
		}
		newPrice := results[cheapest].Price + step
		results[cheapest] = m.reallocateAt(byPDU[cheapest], newPrice)
	}
	return results, nil
}

func isolatedSpot(pduSpot []float64, keep int) []float64 {
	out := make([]float64, len(pduSpot))
	out[keep] = pduSpot[keep]
	return out
}

// reallocateAt recomputes a per-PDU result at a forced price.
func (m *Market) reallocateAt(bids []Bid, price float64) Result {
	res := Result{Price: price, Allocations: make([]Allocation, len(bids))}
	for i, b := range bids {
		d := b.Fn.Demand(price)
		if hr := m.cons.RackHeadroom[b.Rack]; d > hr {
			d = hr
		}
		res.Allocations[i] = Allocation{Rack: b.Rack, Tenant: b.Tenant, Watts: d}
		res.TotalWatts += d
	}
	res.RevenueRate = price * res.TotalWatts / 1000
	return res
}
