package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRationPDUOverflowScalesProportionally(t *testing.T) {
	// Two inelastic step bids totalling 110 W on a 50 W PDU: strict mode
	// sells nothing (no feasible price ≤ their max price); rationing sells
	// the whole 50 W, split proportionally.
	cons := twoPDUConstraints(50, 500, 1000)
	bids := []Bid{
		{Rack: 0, Tenant: "a", Fn: StepBid{D: 60, QMax: 0.2}},
		{Rack: 1, Tenant: "b", Fn: StepBid{D: 50, QMax: 0.2}},
	}
	strict, err := NewMarket(cons, Options{PriceStep: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := strict.Clear(bids)
	if err != nil {
		t.Fatal(err)
	}
	if rs.TotalWatts != 0 {
		t.Fatalf("strict mode sold %v W, want 0", rs.TotalWatts)
	}
	rationed, err := NewMarket(cons, Options{PriceStep: 0.001, Ration: true})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := rationed.Clear(bids)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rr.TotalWatts-50) > 1e-6 {
		t.Fatalf("rationed sold %v W, want 50", rr.TotalWatts)
	}
	// Proportional split: 60:50.
	ratio := rr.Allocations[0].Watts / rr.Allocations[1].Watts
	if math.Abs(ratio-1.2) > 1e-6 {
		t.Errorf("split ratio = %v, want 1.2", ratio)
	}
	if err := rationed.VerifyFeasible(rr.Allocations); err != nil {
		t.Errorf("rationed allocation infeasible: %v", err)
	}
	if rr.RevenueRate <= rs.RevenueRate {
		t.Errorf("rationing revenue %v should beat strict %v here", rr.RevenueRate, rs.RevenueRate)
	}
}

func TestRationUPSOverflow(t *testing.T) {
	cons := twoPDUConstraints(100, 100, 80)
	bids := []Bid{
		{Rack: 0, Fn: StepBid{D: 60, QMax: 0.3}},
		{Rack: 4, Fn: StepBid{D: 60, QMax: 0.3}},
	}
	mkt, err := NewMarket(cons, Options{PriceStep: 0.001, Ration: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mkt.Clear(bids)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalWatts > 80+1e-6 {
		t.Errorf("sold %v W on an 80 W UPS", res.TotalWatts)
	}
	if res.TotalWatts < 80-1e-6 {
		t.Errorf("sold %v W, want the full 80 W under rationing", res.TotalWatts)
	}
	if err := mkt.VerifyFeasible(res.Allocations); err != nil {
		t.Errorf("infeasible: %v", err)
	}
	// Symmetric bids → equal split.
	if math.Abs(res.Allocations[0].Watts-res.Allocations[1].Watts) > 1e-9 {
		t.Errorf("asymmetric split: %v vs %v", res.Allocations[0].Watts, res.Allocations[1].Watts)
	}
}

func TestRationCongestedPDUDoesNotFloorGlobalPrice(t *testing.T) {
	// The scaling pathology rationing exists to fix: PDU 0 has zero spot
	// capacity while PDU 1 is wide open. Strict mode must raise the uniform
	// price beyond the PDU-0 bidder's maximum (dropping the PDU-1 bidder's
	// cheap demand too, if its own max price is below the floor); rationing
	// keeps the market at the revenue-optimal price and simply gives PDU 0
	// nothing.
	cons := twoPDUConstraints(0, 200, 200)
	bids := []Bid{
		{Rack: 0, Tenant: "stuck", Fn: StepBid{D: 40, QMax: 0.5}},
		{Rack: 4, Tenant: "free", Fn: LinearBid{DMax: 60, DMin: 6, QMin: 0.02, QMax: 0.16}},
	}
	strict, err := NewMarket(cons, Options{PriceStep: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := strict.Clear(bids)
	if err != nil {
		t.Fatal(err)
	}
	// Strict: feasibility needs the stuck bid to drop → price > 0.5, which
	// also prices out the free bidder (max 0.16).
	if rs.TotalWatts != 0 {
		t.Fatalf("strict sold %v W, want 0 (global floor)", rs.TotalWatts)
	}
	rationed, err := NewMarket(cons, Options{PriceStep: 0.001, Ration: true})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := rationed.Clear(bids)
	if err != nil {
		t.Fatal(err)
	}
	byTenant := map[string]float64{}
	for _, a := range rr.Allocations {
		byTenant[a.Tenant] += a.Watts
	}
	if byTenant["stuck"] != 0 {
		t.Errorf("stuck tenant got %v W from an empty PDU", byTenant["stuck"])
	}
	if byTenant["free"] <= 0 {
		t.Errorf("free tenant got nothing despite 200 W of spot")
	}
	if err := rationed.VerifyFeasible(rr.Allocations); err != nil {
		t.Errorf("infeasible: %v", err)
	}
}

func TestRationNoOverflowMatchesStrict(t *testing.T) {
	// With abundant capacity rationing changes nothing: same price, same
	// allocations.
	cons := twoPDUConstraints(500, 500, 1000)
	bids := []Bid{
		{Rack: 0, Fn: LinearBid{DMax: 40, DMin: 10, QMin: 0.1, QMax: 0.4}},
		{Rack: 1, Fn: LinearBid{DMax: 60, DMin: 6, QMin: 0.02, QMax: 0.16}},
	}
	strict, err := NewMarket(cons, Options{PriceStep: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	rationed, err := NewMarket(cons, Options{PriceStep: 0.001, Ration: true})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := strict.Clear(bids)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := rationed.Clear(bids)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rs.Price-rr.Price) > 1e-9 || math.Abs(rs.TotalWatts-rr.TotalWatts) > 1e-9 {
		t.Errorf("abundant capacity: strict (%v, %v) != rationed (%v, %v)",
			rs.Price, rs.TotalWatts, rr.Price, rr.TotalWatts)
	}
	for i := range rs.Allocations {
		if math.Abs(rs.Allocations[i].Watts-rr.Allocations[i].Watts) > 1e-9 {
			t.Errorf("allocation %d differs: %v vs %v", i, rs.Allocations[i].Watts, rr.Allocations[i].Watts)
		}
	}
}

// Property: rationed clearings always satisfy Eqns. (2)–(4), never exceed
// the per-rack demand at the clearing price, and earn at least as much
// revenue as strict clearing on the same bids.
func TestQuickRationFeasibleAndDominant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nRacks := 4 + rng.Intn(8)
		nPDUs := 1 + rng.Intn(3)
		cons := Constraints{
			RackHeadroom: make([]float64, nRacks),
			RackPDU:      make([]int, nRacks),
			PDUSpot:      make([]float64, nPDUs),
		}
		for r := 0; r < nRacks; r++ {
			cons.RackHeadroom[r] = 20 + rng.Float64()*80
			cons.RackPDU[r] = rng.Intn(nPDUs)
		}
		for m := 0; m < nPDUs; m++ {
			cons.PDUSpot[m] = rng.Float64() * 100
		}
		cons.UPSSpot = rng.Float64() * 100 * float64(nPDUs)
		var bids []Bid
		for r := 0; r < nRacks; r++ {
			dMin := rng.Float64() * 30
			dMax := dMin + rng.Float64()*60
			qMin := rng.Float64() * 0.2
			qMax := qMin + rng.Float64()*0.5
			bids = append(bids, Bid{Rack: r, Fn: LinearBid{DMax: dMax, DMin: dMin, QMin: qMin, QMax: qMax}})
		}
		strict, err := NewMarket(cons, Options{PriceStep: 0.002})
		if err != nil {
			return false
		}
		rationed, err := NewMarket(cons, Options{PriceStep: 0.002, Ration: true})
		if err != nil {
			return false
		}
		rs, err := strict.Clear(bids)
		if err != nil {
			return false
		}
		rr, err := rationed.Clear(bids)
		if err != nil {
			return false
		}
		if err := rationed.VerifyFeasible(rr.Allocations); err != nil {
			return false
		}
		for i, a := range rr.Allocations {
			want := bids[i].Fn.Demand(rr.Price)
			if a.Watts > want+1e-9 {
				return false // rationing only ever shrinks the grant
			}
		}
		// Strict clearing is one feasible pricing strategy; the rationed
		// optimum cannot earn less (up to scan-grid slack).
		return rr.RevenueRate >= rs.RevenueRate-1e-6-0.002*rr.TotalWatts/1000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
