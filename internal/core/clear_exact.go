package core

// Exact breakpoint-driven market clearing.
//
// The scan engine (clearScan) evaluates the aggregate demand at every grid
// price — O(prices × bids) work, thousands of full-demand evaluations at
// the paper's 15,000-rack / 0.1 cent step operating point (Fig. 7(b)). But
// the bid family is piece-wise linear in price (LinearBid, StepBid,
// FullBid), so the served aggregate demand T(q) — each rack clamped to its
// headroom — is itself piece-wise linear, with breakpoints only where some
// bid's curve changes slope or crosses its rack headroom. On each
// inter-breakpoint segment the operator revenue q·T(q)/1000 is a closed-form
// quadratic whose maximum lies at a segment endpoint or at its interior
// vertex. clearExact therefore:
//
//  1. decomposes every bid's served demand into affine pieces (constant-time
//     fast paths for LinearBid and StepBid, one generic path for any other
//     Breakpointer) and merges the piece boundaries into one sorted,
//     deduplicated breakpoint grid — a float sort plus a counting sort of
//     the piece start/stop events, O(B log B);
//  2. sweeps the grid once, maintaining per-PDU affine load coefficients
//     (L_m(q) = A[m] + B[m]·q on the current segment). Loads are
//     non-increasing in price, so the set of over-capacity PDUs only ever
//     shrinks; the sweep keeps that set in a compact list and resolves each
//     PDU's crossing — an affine root — against its spot limit, which
//     yields (a) the exact lowest feasible price q* for strict (non-ration)
//     clearing and (b) for ration mode, the exact piece-wise linear form of
//     the rationed total Σ_m min(L_m(q), P_m) capped at the UPS;
//  3. maximizes the per-segment quadratics analytically, collects the
//     leading candidate prices, and re-evaluates them against the real
//     demand curves in parallel (per-worker scratch buffers; the shared
//     Market scratch stays single-threaded) before picking the winner in
//     ascending price order (deterministic low-price tie-break).
//
// The scan remains available as Options.Algorithm = AlgorithmScan and
// serves as the cross-validation oracle: exact clearing must earn at least
// the scan's revenue on the same bids (see clear_exact_test.go).

import (
	"math"
	"runtime"
	"sort"
	"sync"
)

// exactVerifyCandidates caps how many analytically ranked candidate prices
// are re-evaluated against the real demand curves before the winner is
// chosen. The analytic pieces are exact for the built-in bid family, so the
// verification pass is a safety net (and the source of the measured watts),
// not a search: a small constant suffices.
const exactVerifyCandidates = 8

// linPiece is one affine piece of a served-demand curve: value a + b·q for
// prices in the half-open interval (lo, hi]. Demand curves are
// left-continuous in price — a bid's demand holds through its maximum price
// and jumps down just above it — so the right endpoint belongs to the
// piece.
type linPiece struct {
	lo, hi float64
	a, b   float64
}

// eval evaluates the piece's affine value.
func (p linPiece) eval(q float64) float64 { return p.a + p.b*q }

// sweepEvent activates (positive dA/dB) or retires (negative) one bid
// piece's contribution to its PDU. Events are bucketed by breakpoint-grid
// index, so they carry no price of their own.
type sweepEvent struct {
	pdu    int
	dA, dB float64
}

// pieceBuilder decomposes bids into the affine pieces of their served
// demand min(D_b(q), headroom) over [floor, ∞).
type pieceBuilder struct {
	m      *Market
	floor  float64
	pieces []linPiece
	pdus   []int
	knots  []float64 // scratch for the generic Breakpointer path
}

// addBid appends the pieces of one bid. The bid's demand function must
// implement Breakpointer (callers check via breakpointable).
func (pb *pieceBuilder) addBid(b Bid) {
	hr := pb.m.cons.RackHeadroom[b.Rack]
	if hr <= 0 {
		return
	}
	pdu := pb.m.cons.RackPDU[b.Rack]
	switch fn := b.Fn.(type) {
	case LinearBid:
		pb.addLinear(pdu, hr, fn.DMax, fn.DMin, fn.QMin, fn.QMax)
	case StepBid:
		pb.addConst(pdu, hr, fn.D, fn.QMax)
	default:
		pb.addGeneric(pdu, hr, b)
	}
}

// addConst handles a step bid: demand d through qMax, zero above.
func (pb *pieceBuilder) addConst(pdu int, hr, d, qMax float64) {
	if qMax <= pb.floor || d <= 0 {
		return
	}
	if d > hr {
		d = hr
	}
	pb.pieces = append(pb.pieces, linPiece{lo: pb.floor, hi: qMax, a: d})
	pb.pdus = append(pb.pdus, pdu)
}

// addLinear handles the four-parameter LinearBid without touching the
// interface (no Breakpoints allocation, no Demand sampling).
func (pb *pieceBuilder) addLinear(pdu int, hr, dMax, dMin, qMin, qMax float64) {
	if qMax <= pb.floor || dMax <= 0 {
		return
	}
	if qMin >= qMax {
		// Degenerate step: demand dMax through qMax.
		pb.addConst(pdu, hr, dMax, qMax)
		return
	}
	beta := (dMin - dMax) / (qMax - qMin)
	alpha := dMax - beta*qMin
	if qMin > pb.floor {
		pb.addAffine(pdu, hr, pb.floor, qMin, dMax, 0)
		pb.addAffine(pdu, hr, qMin, qMax, alpha, beta)
	} else {
		pb.addAffine(pdu, hr, pb.floor, qMax, alpha, beta)
	}
}

// addGeneric samples any Breakpointer (FullBid, external implementations)
// between its knots: demand is affine between consecutive breakpoints, so a
// midpoint and right-end sample pin down the segment exactly.
func (pb *pieceBuilder) addGeneric(pdu int, hr float64, b Bid) {
	bp := b.Fn.(Breakpointer).Breakpoints()
	knots := pb.knots[:0]
	knots = append(knots, pb.floor)
	for _, p := range bp {
		if p > knots[len(knots)-1] {
			knots = append(knots, p)
		}
	}
	for i := 0; i+1 < len(knots); i++ {
		lo, hi := knots[i], knots[i+1]
		mid := lo + (hi-lo)/2
		dm := b.Fn.Demand(mid)
		dr := b.Fn.Demand(hi)
		beta := 0.0
		if hi > mid {
			beta = (dr - dm) / (hi - mid)
		}
		if beta > 0 {
			// Defensive: demand must be non-increasing; collapse sampling
			// noise to a constant piece.
			beta, dr = 0, (dm+dr)/2
		}
		alpha := dr - beta*hi
		pb.addAffine(pdu, hr, lo, hi, alpha, beta)
	}
	pb.knots = knots
}

// addAffine clamps one affine demand segment alpha + beta·q (beta ≤ 0, so
// the value is non-increasing) on (lo, hi] against the rack headroom and
// appends the surviving pieces.
func (pb *pieceBuilder) addAffine(pdu int, hr, lo, hi, alpha, beta float64) {
	if hi <= lo {
		return
	}
	vLo, vHi := alpha+beta*lo, alpha+beta*hi
	switch {
	case vLo <= 0 && vHi <= 0:
		return // nothing served on this piece
	case vHi >= hr:
		// Non-increasing and still above headroom at the right end: fully
		// clamped.
		pb.pieces = append(pb.pieces, linPiece{lo: lo, hi: hi, a: hr})
		pb.pdus = append(pb.pdus, pdu)
	case vLo <= hr:
		pb.pieces = append(pb.pieces, linPiece{lo: lo, hi: hi, a: alpha, b: beta})
		pb.pdus = append(pb.pdus, pdu)
	default:
		// Crosses the headroom inside the piece (beta < 0 strictly).
		qc := (hr - alpha) / beta
		if qc <= lo {
			qc = lo
		}
		if qc >= hi {
			qc = hi
		}
		if qc > lo {
			pb.pieces = append(pb.pieces, linPiece{lo: lo, hi: qc, a: hr})
			pb.pdus = append(pb.pdus, pdu)
		}
		if hi > qc {
			pb.pieces = append(pb.pieces, linPiece{lo: qc, hi: hi, a: alpha, b: beta})
			pb.pdus = append(pb.pdus, pdu)
		}
	}
}

// priceCandidate pairs a candidate clearing price with its analytic
// revenue, used to rank candidates before measured verification.
type priceCandidate struct {
	price float64
	rev   float64
}

// exactScratch holds clearExact's reusable working memory, so steady-state
// clearing (one call per market slot, or a benchmark loop) allocates almost
// nothing. It shares the Market's single-threaded contract; the parallel
// candidate verification hands each worker a private buffer out of
// verifyBufs.
type exactScratch struct {
	// piece decomposition + breakpoint grid (stage 1).
	pieces  []linPiece
	pdus    []int
	knots   []float64
	bounds  []float64
	loIdx   []int32
	hiIdx   []int32
	evStart []int
	fill    []int
	evs     []sweepEvent
	// sweep working state (stage 2).
	sweepA    []float64
	sweepB    []float64
	over      []bool
	pos       []int
	overList  []int
	touched   []int
	rawPieces []linPiece
	ratPieces []linPiece
	// candidate selection + verification (stages 3–4). top is a fixed-size
	// array backing the bounded top-k selection (the +1 slot holds the
	// range-start fallback).
	cands      []priceCandidate
	top        [exactVerifyCandidates + 1]priceCandidate
	prices     []float64
	watts      []float64
	ok         []bool
	verifyBufs [][]float64
}

// i32s returns dst resized to n (reallocating only on growth).
func i32s(dst []int32, n int) []int32 {
	if cap(dst) < n {
		return make([]int32, n)
	}
	return dst[:n]
}

// ints returns dst resized to n (reallocating only on growth).
func ints(dst []int, n int) []int {
	if cap(dst) < n {
		return make([]int, n)
	}
	return dst[:n]
}

// f64s returns dst resized to n (reallocating only on growth).
func f64s(dst []float64, n int) []float64 {
	if cap(dst) < n {
		return make([]float64, n)
	}
	return dst[:n]
}

// bools returns dst resized to n (reallocating only on growth).
func bools(dst []bool, n int) []bool {
	if cap(dst) < n {
		return make([]bool, n)
	}
	return dst[:n]
}

// clearExact runs the breakpoint-driven engine. Callers guarantee every
// bid implements Breakpointer (see Clear).
func (m *Market) clearExact(bids []Bid) Result {
	floor := m.priceFloor()
	res := Result{Price: floor, Algorithm: AlgorithmExact}
	if len(bids) == 0 {
		return res
	}
	hi := m.maxBidPrice(bids)

	// 1. Decompose bids into affine pieces.
	sc := &m.exact
	pb := pieceBuilder{
		m:      m,
		floor:  floor,
		pieces: sc.pieces[:0],
		pdus:   sc.pdus[:0],
		knots:  sc.knots,
	}
	for _, b := range bids {
		pb.addBid(b)
	}
	pieces, piecePDU := pb.pieces, pb.pdus
	sc.pieces, sc.pdus, sc.knots = pieces, piecePDU, pb.knots

	// Breakpoint grid: the sorted, deduplicated piece boundaries (a plain
	// float sort — far cheaper than sorting tagged event structs). Piece
	// lows equal to the floor always map to grid[0], and a piece sharing
	// its low with the previous piece's high (adjacent pieces of the same
	// bid) contributes nothing new; both are left out.
	bounds := append(sc.bounds[:0], floor)
	for i, p := range pieces {
		if p.lo > floor && (i == 0 || pieces[i-1].hi != p.lo) {
			bounds = append(bounds, p.lo)
		}
		bounds = append(bounds, p.hi)
	}
	sort.Float64s(bounds)
	sc.bounds = bounds
	grid := bounds[:1]
	for _, q := range bounds[1:] {
		if q > grid[len(grid)-1] {
			grid = append(grid, q)
		}
	}

	// Bucket the piece start/stop events by grid index (counting sort):
	// events at grid[gi] occupy evs[evStart[gi]:evStart[gi+1]].
	evStart := ints(sc.evStart, len(grid)+1)
	for i := range evStart {
		evStart[i] = 0
	}
	loIdx := i32s(sc.loIdx, len(pieces))
	hiIdx := i32s(sc.hiIdx, len(pieces))
	for i, p := range pieces {
		li := 0
		switch {
		case p.lo <= floor:
			// li = 0: pieces never start below the floor.
		case i > 0 && pieces[i-1].hi == p.lo:
			li = int(hiIdx[i-1]) // adjacent pieces of the same bid
		default:
			li = sort.SearchFloat64s(grid, p.lo)
		}
		ri := sort.SearchFloat64s(grid, p.hi)
		loIdx[i], hiIdx[i] = int32(li), int32(ri)
		evStart[li+1]++
		evStart[ri+1]++
	}
	for i := 1; i <= len(grid); i++ {
		evStart[i] += evStart[i-1]
	}
	evs := sc.evs
	if cap(evs) < 2*len(pieces) {
		evs = make([]sweepEvent, 2*len(pieces))
	} else {
		evs = evs[:2*len(pieces)]
	}
	fill := append(ints(sc.fill, 0), evStart[:len(grid)]...)
	for i, p := range pieces {
		evs[fill[loIdx[i]]] = sweepEvent{pdu: piecePDU[i], dA: p.a, dB: p.b}
		fill[loIdx[i]]++
		evs[fill[hiIdx[i]]] = sweepEvent{pdu: piecePDU[i], dA: -p.a, dB: -p.b}
		fill[hiIdx[i]]++
	}
	sc.evStart, sc.loIdx, sc.hiIdx, sc.evs, sc.fill = evStart, loIdx, hiIdx, evs, fill

	// 2. Sweep: exact feasibility frontier + piece-wise linear totals.
	sw := m.sweep(evs, evStart, grid)

	// 3. Analytic per-segment maximization → ranked candidates.
	cands := sc.cands[:0]
	var start float64
	if m.opts.Ration {
		start = floor
		cands = collectCandidates(cands, sw.ratPieces, start, true)
	} else {
		start = sw.qStar
		attained := sw.qStarAttained
		if !attained {
			// The frontier is approached via a downward demand jump: any
			// price strictly above qStar is feasible.
			start = math.Nextafter(sw.qStar, math.Inf(1))
		}
		cands = collectCandidates(cands, sw.rawPieces, start, attained)
	}
	if len(cands) == 0 {
		cands = append(cands, priceCandidate{price: start})
	}
	sc.cands = cands

	// 4. Keep the analytically best candidates (the range start always
	// rides along as a safe fallback) and verify them against the real
	// demand curves in parallel. The candidate list is large (one or two
	// entries per affine piece — tens of thousands at 15,000 racks), but
	// only exactVerifyCandidates survive, so a bounded insertion pass by
	// (revenue desc, price asc) replaces a full sort: O(n·k) with k = 8,
	// no comparator closures, no allocation.
	top := sc.top[:0]
	for _, c := range cands {
		top = insertTopK(top, c, exactVerifyCandidates)
	}
	hasStart := false
	for _, c := range top {
		if c.price == start {
			hasStart = true
			break
		}
	}
	if !hasStart {
		top = append(top, priceCandidate{price: start}) // fits: cap is k+1
	}
	// Ascending price order (≤ k+1 entries: insertion sort) so the winner
	// loop tie-breaks deterministically toward the lower price.
	for i := 1; i < len(top); i++ {
		for j := i; j > 0 && top[j].price < top[j-1].price; j-- {
			top[j], top[j-1] = top[j-1], top[j]
		}
	}
	prices := f64s(sc.prices, len(top))
	sc.prices = prices
	for i, c := range top {
		prices[i] = c.price
	}
	watts, ok := m.verifyCandidates(bids, prices)

	// 5. Winner by measured revenue, ascending price (low-price
	// tie-break within revEps).
	bestPrice, bestRev, bestWatts := start, -1.0, 0.0
	for i, q := range prices {
		if !ok[i] {
			continue
		}
		rev := q * watts[i] / 1000
		if rev > bestRev+revEps {
			bestPrice, bestRev, bestWatts = q, rev, watts[i]
		}
	}
	if bestRev < 0 {
		// No candidate is feasible (only possible when even the frontier
		// price cannot be attained); nothing sells just above the highest
		// bid price.
		bestPrice, bestRev, bestWatts = hi+m.opts.step(), 0, 0
	}
	res.Price = bestPrice
	// Piece construction costs about two full demand passes; verification
	// and materialization are full evaluations each.
	res.Evaluations = 2 + len(prices) + 1
	return m.materialize(res, bids, bestWatts, bestRev)
}

// candBetter ranks candidates for verification: higher analytic revenue
// first, lower price on ties (the deterministic low-price preference).
func candBetter(a, b priceCandidate) bool {
	if a.rev != b.rev {
		return a.rev > b.rev
	}
	return a.price < b.price
}

// insertTopK maintains top (sorted best-first under candBetter, at most k
// entries) after considering c. The caller provides a slice with enough
// capacity, so no allocation ever happens.
func insertTopK(top []priceCandidate, c priceCandidate, k int) []priceCandidate {
	switch {
	case len(top) < k:
		top = append(top, c)
	case candBetter(c, top[len(top)-1]):
		top[len(top)-1] = c
	default:
		return top
	}
	for i := len(top) - 1; i > 0 && candBetter(top[i], top[i-1]); i-- {
		top[i], top[i-1] = top[i-1], top[i]
	}
	return top
}

// collectCandidates extracts the per-piece analytic revenue maximizers —
// the right endpoint of each piece plus any interior quadratic vertex — for
// prices at or above start, appending to out (a reused scratch slice).
func collectCandidates(out []priceCandidate, pieces []linPiece, start float64, startAttained bool) []priceCandidate {
	rev := func(p linPiece, q float64) float64 { return q * p.eval(q) / 1000 }
	for _, p := range pieces {
		if p.hi <= start {
			continue
		}
		effLo := p.lo
		if start > effLo {
			effLo = start
			// The range start belongs to this piece: it is a candidate
			// itself when attained (the left end of later pieces is covered
			// by the previous piece's right endpoint, which dominates it
			// because demand only jumps downward).
			if startAttained {
				out = append(out, priceCandidate{price: start, rev: rev(p, start)})
			}
		}
		out = append(out, priceCandidate{price: p.hi, rev: rev(p, p.hi)})
		if p.b < 0 {
			if qv := -p.a / (2 * p.b); qv > effLo && qv < p.hi {
				out = append(out, priceCandidate{price: qv, rev: rev(p, qv)})
			}
		}
	}
	return out
}

// verifyCandidates evaluates the served (or rationed) total at each price
// against the real demand curves, in parallel when more than one worker is
// available. Each worker owns a private per-PDU scratch buffer; the
// market's shared scratch is untouched, preserving the documented
// single-threaded contract for everything else.
func (m *Market) verifyCandidates(bids []Bid, prices []float64) (watts []float64, ok []bool) {
	sc := &m.exact
	watts = f64s(sc.watts, len(prices))
	ok = bools(sc.ok, len(prices))
	sc.watts, sc.ok = watts, ok
	workers := m.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers < 2 {
			// Keep the parallel path exercised (and race-checked) even on
			// single-core hosts; two goroutines cost next to nothing.
			workers = 2
		}
	}
	if workers > len(prices) {
		workers = len(prices)
	}
	// Per-worker private PDU-load buffers, grown once and reused across
	// Clear calls (the PDU count is fixed per Market).
	for len(sc.verifyBufs) < workers {
		sc.verifyBufs = append(sc.verifyBufs, make([]float64, len(m.cons.PDUSpot)))
	}
	evalOne := func(buf []float64, i int) {
		if m.opts.Ration {
			watts[i] = m.rationedInto(buf, bids, prices[i])
			ok[i] = true
			return
		}
		watts[i], ok[i] = m.feasibleInto(buf, bids, prices[i])
	}
	if workers <= 1 {
		for i := range prices {
			evalOne(sc.verifyBufs[0], i)
		}
		return watts, ok
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := sc.verifyBufs[w]
			for i := w; i < len(prices); i += workers {
				evalOne(buf, i)
			}
		}(w)
	}
	wg.Wait()
	return watts, ok
}

// sweepState is what one breakpoint sweep produces.
type sweepState struct {
	// rawPieces is the served total T(q) as affine pieces over (floor, hi]
	// (one per grid segment).
	rawPieces []linPiece
	// ratPieces is the rationed total min(UPS, Σ_m min(L_m(q), P_m)) as
	// affine pieces, sub-split at every PDU/UPS clamp crossing. Only built
	// in ration mode.
	ratPieces []linPiece
	// qStar is the lowest strictly-feasible price: the largest crossing at
	// which the last violated PDU/UPS constraint comes back within limits.
	// qStarAttained is false when that happens via a demand jump (the
	// constraint holds only strictly above qStar).
	qStar         float64
	qStarAttained bool
}

// sweep walks the breakpoint grid once, maintaining per-PDU affine load
// coefficients (L_m(q) = A[m] + B[m]·q on the current segment). PDU loads
// are non-increasing in price, so a PDU under its limit never goes back
// over: the set of over-capacity PDUs only shrinks, and the sweep keeps it
// in a compact list, resolving each crossing either smoothly (an affine
// root inside a segment) or via a downward jump at a breakpoint. The same
// machinery yields the exact feasibility frontier for strict clearing and
// the exact clamped total for rationed clearing.
func (m *Market) sweep(evs []sweepEvent, evStart []int, grid []float64) sweepState {
	nPDU := len(m.cons.PDUSpot)
	sc := &m.exact
	A := f64s(sc.sweepA, nPDU)
	B := f64s(sc.sweepB, nPDU)
	over := bools(sc.over, nPDU)
	for i := 0; i < nPDU; i++ {
		A[i], B[i], over[i] = 0, 0, false
	}
	pos := ints(sc.pos, nPDU)               // index into overList while over
	overList := ints(sc.overList, nPDU)[:0] // never exceeds nPDU entries
	sc.sweepA, sc.sweepB, sc.over, sc.pos = A, B, over, pos
	rawA, rawB := 0.0, 0.0
	underA, underB := 0.0, 0.0
	overCapSum := 0.0
	floor := grid[0]
	st := sweepState{
		qStar: floor, qStarAttained: true,
		rawPieces: sc.rawPieces[:0],
		ratPieces: sc.ratPieces[:0],
	}

	markFeasible := func(pdu int, at float64, attained bool) {
		over[pdu] = false
		last := len(overList) - 1
		i := pos[pdu]
		overList[i] = overList[last]
		pos[overList[i]] = i
		overList = overList[:last]
		overCapSum -= m.cons.PDUSpot[pdu]
		underA += A[pdu]
		underB += B[pdu]
		if at > st.qStar {
			st.qStar, st.qStarAttained = at, attained
		} else if at == st.qStar && !attained {
			st.qStarAttained = false
		}
	}

	touched := ints(sc.touched, 16)[:0]
	applyIdx := func(gi int) {
		touched = touched[:0]
		for ei := evStart[gi]; ei < evStart[gi+1]; ei++ {
			e := evs[ei]
			A[e.pdu] += e.dA
			B[e.pdu] += e.dB
			rawA += e.dA
			rawB += e.dB
			if !over[e.pdu] {
				underA += e.dA
				underB += e.dB
			}
			touched = append(touched, e.pdu)
		}
	}

	// Apply the activations at the floor, then classify every PDU.
	applyIdx(0)
	for pdu := 0; pdu < nPDU; pdu++ {
		if A[pdu]+B[pdu]*floor > m.cons.PDUSpot[pdu]+feasEps {
			// Reclassify as over: remove from the under sums.
			over[pdu] = true
			pos[pdu] = len(overList)
			overList = append(overList, pdu)
			overCapSum += m.cons.PDUSpot[pdu]
			underA -= A[pdu]
			underB -= B[pdu]
		}
	}
	rawOverUPS := rawA+rawB*floor > m.cons.UPSSpot+feasEps

	emitRation := func(lo, hiP float64) {
		if hiP <= lo {
			return
		}
		cA, cB := overCapSum+underA, underB
		ups := m.cons.UPSSpot
		vLo, vHi := cA+cB*lo, cA+cB*hiP
		switch {
		case vLo <= ups:
			st.ratPieces = append(st.ratPieces, linPiece{lo: lo, hi: hiP, a: cA, b: cB})
		case vHi > ups:
			st.ratPieces = append(st.ratPieces, linPiece{lo: lo, hi: hiP, a: ups})
		default:
			qc := (ups - cA) / cB // cB < 0 here
			st.ratPieces = append(st.ratPieces,
				linPiece{lo: lo, hi: qc, a: ups},
				linPiece{lo: qc, hi: hiP, a: cA, b: cB})
		}
	}

	for gi := 1; gi < len(grid); gi++ {
		p, g := grid[gi-1], grid[gi]
		// Raw total vs the UPS (strict feasibility): affine on the whole
		// segment, so its crossing needs no sub-splitting.
		if rawOverUPS && rawB < 0 {
			if qc := (m.cons.UPSSpot - rawA) / rawB; qc <= g {
				at := qc
				if at < p {
					at = p
				}
				if at > st.qStar {
					st.qStar, st.qStarAttained = at, true
				}
				rawOverUPS = false
			}
		}
		st.rawPieces = append(st.rawPieces, linPiece{lo: p, hi: g, a: rawA, b: rawB})

		// Sub-split the segment at PDU clamp crossings: scan the (shrinking)
		// over set for the earliest affine root in (cur, g].
		cur := p
		for cur < g {
			nxt, crossPDU := g, -1
			for i := 0; i < len(overList); {
				pdu := overList[i]
				if B[pdu] < 0 {
					qc := (m.cons.PDUSpot[pdu] - A[pdu]) / B[pdu]
					if qc <= cur {
						// Already at or below the clamp (accumulated
						// rounding): flip immediately. Swap-removes
						// overList[i]; revisit the same index.
						markFeasible(pdu, cur, true)
						continue
					}
					if qc < nxt {
						nxt, crossPDU = qc, pdu
					}
				}
				i++
			}
			if m.opts.Ration {
				emitRation(cur, nxt)
			}
			if crossPDU >= 0 {
				markFeasible(crossPDU, nxt, true)
			} else if !m.opts.Ration && len(overList) == 0 {
				// Strict mode past the feasibility frontier: no more
				// sub-structure is needed.
				break
			}
			cur = nxt
		}

		// Apply the events at g and re-check the touched PDUs: a downward
		// jump can carry an over-capacity PDU straight below its limit
		// (feasible only strictly above g).
		applyIdx(gi)
		for _, pdu := range touched {
			if !over[pdu] {
				continue // loads only jump downward; under stays under
			}
			if A[pdu]+B[pdu]*g <= m.cons.PDUSpot[pdu]+feasEps {
				markFeasible(pdu, g, false)
			}
		}
		if rawOverUPS && rawA+rawB*g <= m.cons.UPSSpot+feasEps {
			if g > st.qStar {
				st.qStar, st.qStarAttained = g, false
			} else if g == st.qStar {
				st.qStarAttained = false
			}
			rawOverUPS = false
		}
	}
	if len(overList) > 0 || rawOverUPS {
		// Some constraint never came back within limits on (floor, hi]
		// (possible only when all demand retires exactly at the top): the
		// frontier sits just above the last grid price.
		st.qStar, st.qStarAttained = grid[len(grid)-1], false
	}
	// Persist grown buffers for the next Clear on this market.
	sc.overList, sc.touched = overList[:0], touched[:0]
	sc.rawPieces, sc.ratPieces = st.rawPieces, st.ratPieces
	return st
}
