package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestLinearBidValidate(t *testing.T) {
	ok := LinearBid{DMax: 50, DMin: 10, QMin: 0.05, QMax: 0.2}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid bid rejected: %v", err)
	}
	bad := []LinearBid{
		{DMax: 50, DMin: -1, QMin: 0.05, QMax: 0.2},
		{DMax: 5, DMin: 10, QMin: 0.05, QMax: 0.2},
		{DMax: 50, DMin: 10, QMin: -0.01, QMax: 0.2},
		{DMax: 50, DMin: 10, QMin: 0.3, QMax: 0.2},
	}
	for i, b := range bad {
		if err := b.Validate(); !errors.Is(err, ErrBid) {
			t.Errorf("bad bid %d accepted: %v", i, err)
		}
	}
}

func TestLinearBidSegments(t *testing.T) {
	b := LinearBid{DMax: 100, DMin: 20, QMin: 0.1, QMax: 0.3}
	cases := []struct {
		price, want float64
	}{
		{0, 100},      // below qmin: horizontal segment
		{0.1, 100},    // at qmin
		{0.2, 60},     // midpoint of linear segment
		{0.3, 20},     // at qmax: Dmin
		{0.300001, 0}, // above qmax: zero
		{1, 0},
	}
	for _, c := range cases {
		if got := b.Demand(c.price); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Demand(%v) = %v, want %v", c.price, got, c.want)
		}
	}
	if b.MaxDemand() != 100 || b.MaxPrice() != 0.3 {
		t.Errorf("MaxDemand/MaxPrice = %v/%v", b.MaxDemand(), b.MaxPrice())
	}
}

func TestLinearBidDegeneratesToStep(t *testing.T) {
	// QMin == QMax: the paper says this reduces to StepBid.
	b := LinearBid{DMax: 80, DMin: 80, QMin: 0.2, QMax: 0.2}
	if got := b.Demand(0.2); got != 80 {
		t.Errorf("Demand at qmax = %v, want 80", got)
	}
	if got := b.Demand(0.21); got != 0 {
		t.Errorf("Demand above qmax = %v, want 0", got)
	}
	step := StepBid{D: 80, QMax: 0.2}
	for _, q := range []float64{0, 0.1, 0.2, 0.25, 1} {
		if b.Demand(q) != step.Demand(q) {
			t.Errorf("degenerate LinearBid(%v)=%v != StepBid=%v", q, b.Demand(q), step.Demand(q))
		}
	}
}

func TestStepBid(t *testing.T) {
	b := StepBid{D: 60, QMax: 0.15}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.Demand(0.15) != 60 || b.Demand(0.1500001) != 0 || b.Demand(0) != 60 {
		t.Error("StepBid demand wrong")
	}
	if b.MaxDemand() != 60 || b.MaxPrice() != 0.15 {
		t.Error("StepBid accessors wrong")
	}
	if err := (StepBid{D: -1}).Validate(); !errors.Is(err, ErrBid) {
		t.Error("negative demand accepted")
	}
	if err := (StepBid{D: 1, QMax: -1}).Validate(); !errors.Is(err, ErrBid) {
		t.Error("negative price accepted")
	}
}

func TestFullBidValidation(t *testing.T) {
	if _, err := NewFullBid(nil); !errors.Is(err, ErrBid) {
		t.Error("empty full bid accepted")
	}
	bad := [][]PricePoint{
		{{Price: -1, Demand: 10}},
		{{Price: 0.1, Demand: -5}},
		{{Price: 0.1, Demand: 10}, {Price: 0.1, Demand: 5}},                           // duplicate price
		{{Price: 0.1, Demand: 10}, {Price: 0.2, Demand: 20}},                          // increasing demand
		{{Price: 0.3, Demand: 5}, {Price: 0.1, Demand: 10}, {Price: 0.2, Demand: 20}}, // unsorted, still increasing after sort
	}
	for i, pts := range bad {
		if _, err := NewFullBid(pts); !errors.Is(err, ErrBid) {
			t.Errorf("bad full bid %d accepted", i)
		}
	}
}

func TestFullBidInterpolation(t *testing.T) {
	fb, err := NewFullBid([]PricePoint{
		{Price: 0.3, Demand: 10}, // deliberately unsorted input
		{Price: 0.1, Demand: 100},
		{Price: 0.2, Demand: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ price, want float64 }{
		{0, 100},   // below first point
		{0.1, 100}, // at first point
		{0.15, 70}, // interpolated
		{0.2, 40},
		{0.25, 25},
		{0.3, 10},
		{0.31, 0}, // beyond last point
	}
	for _, c := range cases {
		if got := fb.Demand(c.price); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Demand(%v) = %v, want %v", c.price, got, c.want)
		}
	}
	if fb.MaxDemand() != 100 || fb.MaxPrice() != 0.3 {
		t.Errorf("accessors: %v/%v", fb.MaxDemand(), fb.MaxPrice())
	}
	pts := fb.Points()
	if len(pts) != 3 || pts[0].Price != 0.1 {
		t.Errorf("Points = %v", pts)
	}
	pts[0].Price = 99 // must not alias internal state
	if fb.Points()[0].Price != 0.1 {
		t.Error("Points leaked internal storage")
	}
}

func TestBundle(t *testing.T) {
	bids, err := Bundle("web", []int{2, 5}, []float64{60, 40}, []float64{20, 10}, 0.05, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(bids) != 2 {
		t.Fatalf("len = %d", len(bids))
	}
	if bids[0].Rack != 2 || bids[1].Rack != 5 || bids[0].Tenant != "web" {
		t.Errorf("bids = %+v", bids)
	}
	// Both racks share the price pair; demands are joined affinely.
	d0 := bids[0].Fn.Demand(0.175) // midpoint: (60+20)/2 = 40
	d1 := bids[1].Fn.Demand(0.175) // (40+10)/2 = 25
	if math.Abs(d0-40) > 1e-9 || math.Abs(d1-25) > 1e-9 {
		t.Errorf("midpoint demands = %v, %v", d0, d1)
	}
	if _, err := Bundle("x", []int{1}, []float64{1, 2}, []float64{1}, 0, 1); !errors.Is(err, ErrBid) {
		t.Error("length mismatch accepted")
	}
	if _, err := Bundle("x", []int{1}, []float64{1}, []float64{5}, 0, 1); !errors.Is(err, ErrBid) {
		t.Error("DMin > DMax accepted")
	}
}

func TestAggregateDemand(t *testing.T) {
	bids := []Bid{
		{Rack: 0, Fn: LinearBid{DMax: 100, DMin: 0, QMin: 0, QMax: 1}},
		{Rack: 1, Fn: StepBid{D: 50, QMax: 0.5}},
	}
	if got := AggregateDemand(bids, 0); got != 150 {
		t.Errorf("at 0: %v", got)
	}
	if got := AggregateDemand(bids, 0.5); got != 100 {
		t.Errorf("at 0.5: %v", got)
	}
	if got := AggregateDemand(bids, 0.6); got != 40 {
		t.Errorf("at 0.6: %v", got)
	}
	if got := AggregateDemand(nil, 0.5); got != 0 {
		t.Errorf("empty: %v", got)
	}
}

// Property: every demand function is non-increasing in price and bounded by
// MaxDemand, and is zero above MaxPrice.
func TestQuickDemandMonotone(t *testing.T) {
	mk := func(dMax, dMin, qMin, qMax float64) []DemandFunc {
		lb := LinearBid{DMax: dMax, DMin: dMin, QMin: qMin, QMax: qMax}
		fb, err := NewFullBid([]PricePoint{
			{Price: qMin, Demand: dMax},
			{Price: qMax, Demand: dMin},
		})
		fns := []DemandFunc{lb, StepBid{D: dMax, QMax: qMax}}
		if err == nil {
			fns = append(fns, fb)
		}
		return fns
	}
	f := func(a, b, c, d uint16, p1, p2 uint16) bool {
		dMax := float64(a%1000) + float64(b%1000)
		dMin := float64(b % 1000)
		qMin := float64(c%100) / 100
		qMax := qMin + float64(d%100)/100 + 0.01
		lo := float64(p1%200) / 100
		hi := lo + float64(p2%200)/100
		for _, fn := range mk(dMax, dMin, qMin, qMax) {
			dl, dh := fn.Demand(lo), fn.Demand(hi)
			if dh > dl+1e-9 {
				return false // not non-increasing
			}
			if dl > fn.MaxDemand()+1e-9 || dl < 0 || dh < 0 {
				return false
			}
			if fn.Demand(fn.MaxPrice()+0.001) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
