package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// twoPDUConstraints builds a small two-PDU market mirroring the testbed
// layout: racks 0–3 on PDU 0, racks 4–7 on PDU 1.
func twoPDUConstraints(pduSpot0, pduSpot1, upsSpot float64) Constraints {
	return Constraints{
		RackHeadroom: []float64{60, 50, 60, 50, 60, 60, 60, 50},
		RackPDU:      []int{0, 0, 0, 0, 1, 1, 1, 1},
		PDUSpot:      []float64{pduSpot0, pduSpot1},
		UPSSpot:      upsSpot,
	}
}

func TestConstraintsValidate(t *testing.T) {
	ok := twoPDUConstraints(100, 100, 180)
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Constraints{
		{RackHeadroom: []float64{1}, RackPDU: []int{0, 0}, PDUSpot: []float64{1}},
		{RackHeadroom: []float64{1}, RackPDU: []int{2}, PDUSpot: []float64{1}},
		{RackHeadroom: []float64{-1}, RackPDU: []int{0}, PDUSpot: []float64{1}},
		{RackHeadroom: []float64{1}, RackPDU: []int{0}, PDUSpot: []float64{-1}},
		{RackHeadroom: []float64{1}, RackPDU: []int{0}, PDUSpot: []float64{1}, UPSSpot: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); !errors.Is(err, ErrConstraints) {
			t.Errorf("bad constraints %d accepted: %v", i, err)
		}
	}
}

func TestNewMarketCopiesConstraints(t *testing.T) {
	cons := twoPDUConstraints(100, 100, 180)
	m, err := NewMarket(cons, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cons.PDUSpot[0] = 0 // mutating the caller's slice must not affect the market
	got := m.Constraints()
	if got.PDUSpot[0] != 100 {
		t.Error("market aliased caller's PDUSpot")
	}
	got.RackHeadroom[0] = -5
	if m.Constraints().RackHeadroom[0] != 60 {
		t.Error("Constraints() leaked internal storage")
	}
}

func TestClearNoBids(t *testing.T) {
	m, err := NewMarket(twoPDUConstraints(100, 100, 180), Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Clear(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalWatts != 0 || res.RevenueRate != 0 || len(res.Allocations) != 0 {
		t.Errorf("empty clear: %+v", res)
	}
}

func TestClearSingleBidUnconstrained(t *testing.T) {
	m, err := NewMarket(twoPDUConstraints(200, 200, 400), Options{PriceStep: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	// Demand 50 W flat up to 0.2: revenue = q*50/1000 is maximized at the
	// highest price with positive demand.
	res, err := m.Clear([]Bid{{Rack: 0, Tenant: "t", Fn: StepBid{D: 50, QMax: 0.2}}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Price-0.2) > 0.0015 {
		t.Errorf("price = %v, want ≈0.2", res.Price)
	}
	if math.Abs(res.TotalWatts-50) > 1e-9 {
		t.Errorf("watts = %v, want 50", res.TotalWatts)
	}
	if math.Abs(res.RevenueRate-res.Price*50/1000) > 1e-9 {
		t.Errorf("revenue = %v", res.RevenueRate)
	}
}

func TestClearElasticRevenueMaximization(t *testing.T) {
	m, err := NewMarket(twoPDUConstraints(500, 500, 1000), Options{PriceStep: 0.0001})
	if err != nil {
		t.Fatal(err)
	}
	// Pure linear demand D(q) = 100*(1 - q/0.4) for q in [0, 0.4] (headroom
	// raised so it never binds). Revenue q*D(q) peaks at q = 0.2.
	cons := m.Constraints()
	cons.RackHeadroom[0] = 1000
	m2, err := NewMarket(cons, Options{PriceStep: 0.0001})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m2.Clear([]Bid{{Rack: 0, Fn: LinearBid{DMax: 100, DMin: 0, QMin: 0, QMax: 0.4}}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Price-0.2) > 0.001 {
		t.Errorf("price = %v, want ≈0.2 (revenue max of q·D(q))", res.Price)
	}
	if math.Abs(res.TotalWatts-50) > 0.5 {
		t.Errorf("watts = %v, want ≈50", res.TotalWatts)
	}
}

func TestClearRackHeadroomClamps(t *testing.T) {
	m, err := NewMarket(twoPDUConstraints(500, 500, 1000), Options{PriceStep: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	// Rack 0 has 60 W headroom but demands 200 W.
	res, err := m.Clear([]Bid{{Rack: 0, Fn: StepBid{D: 200, QMax: 0.2}}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Allocations[0].Watts-60) > 1e-9 {
		t.Errorf("allocation = %v, want clamped to 60 (Eqn. 2)", res.Allocations[0].Watts)
	}
	if err := m.VerifyFeasible(res.Allocations); err != nil {
		t.Errorf("allocation infeasible: %v", err)
	}
}

func TestClearPDUConstraintRaisesPrice(t *testing.T) {
	// PDU 0 has only 60 W spot; two racks on it each demand up to 60 W with
	// elastic linear bids. The market must raise the price until the summed
	// demand fits 60 W.
	m, err := NewMarket(twoPDUConstraints(60, 500, 1000), Options{PriceStep: 0.0005})
	if err != nil {
		t.Fatal(err)
	}
	bids := []Bid{
		{Rack: 0, Tenant: "a", Fn: LinearBid{DMax: 60, DMin: 0, QMin: 0.05, QMax: 0.4}},
		{Rack: 1, Tenant: "b", Fn: LinearBid{DMax: 50, DMin: 0, QMin: 0.05, QMax: 0.4}},
	}
	res, err := m.Clear(bids)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalWatts > 60+1e-6 {
		t.Errorf("sold %v W on a 60 W PDU", res.TotalWatts)
	}
	// At the unconstrained optimum the total would exceed 60 W, so the
	// constraint must bind (total close to 60) rather than sell almost
	// nothing at a needlessly high price.
	if res.TotalWatts < 55 {
		t.Errorf("sold only %v W; constraint should bind near 60 W", res.TotalWatts)
	}
	if err := m.VerifyFeasible(res.Allocations); err != nil {
		t.Errorf("infeasible: %v", err)
	}
}

func TestClearUPSConstraint(t *testing.T) {
	// Each PDU individually has room, but the UPS only has 80 W.
	m, err := NewMarket(twoPDUConstraints(100, 100, 80), Options{PriceStep: 0.0005})
	if err != nil {
		t.Fatal(err)
	}
	bids := []Bid{
		{Rack: 0, Fn: LinearBid{DMax: 60, DMin: 0, QMin: 0.05, QMax: 0.4}},
		{Rack: 4, Fn: LinearBid{DMax: 60, DMin: 0, QMin: 0.05, QMax: 0.4}},
	}
	res, err := m.Clear(bids)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalWatts > 80+1e-6 {
		t.Errorf("sold %v W on an 80 W UPS", res.TotalWatts)
	}
	// The interior revenue maximum of q·2D(q) for these bids is at q = 0.2,
	// selling ~68.6 W — deliberately below the 80 W cap. This mirrors the
	// paper's Fig. 10 note that profit-maximizing pricing leaves some spot
	// capacity unsold.
	if math.Abs(res.Price-0.2) > 0.002 {
		t.Errorf("price = %v, want ≈0.2 (interior revenue max)", res.Price)
	}
	if math.Abs(res.TotalWatts-68.57) > 1 {
		t.Errorf("sold %v W, want ≈68.6", res.TotalWatts)
	}
	if err := m.VerifyFeasible(res.Allocations); err != nil {
		t.Errorf("infeasible: %v", err)
	}
}

func TestClearInfeasibleInelasticDemand(t *testing.T) {
	// A step bid of 100 W on a PDU with 50 W spot can never be served: the
	// only feasible prices are above its QMax, so nothing sells.
	m, err := NewMarket(twoPDUConstraints(50, 500, 1000), Options{PriceStep: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Clear([]Bid{{Rack: 0, Fn: StepBid{D: 100, QMax: 0.2}}})
	if err != nil {
		t.Fatal(err)
	}
	// Headroom clamp brings 100 down to 60 which still exceeds 50.
	if res.TotalWatts != 0 {
		t.Errorf("sold %v W, want 0 (demand inelastic and infeasible)", res.TotalWatts)
	}
	if err := m.VerifyFeasible(res.Allocations); err != nil {
		t.Errorf("infeasible: %v", err)
	}
}

func TestClearSprintingPricesOutOpportunistic(t *testing.T) {
	// Reproduces the Fig. 10 dynamic: when a sprinting tenant with a high
	// max price joins, the clearing price rises and low-bidding
	// opportunistic tenants are priced out.
	m, err := NewMarket(twoPDUConstraints(70, 500, 1000), Options{PriceStep: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	oppOnly := []Bid{
		{Rack: 2, Tenant: "opp", Fn: LinearBid{DMax: 60, DMin: 10, QMin: 0.02, QMax: 0.2}},
	}
	resOpp, err := m.Clear(oppOnly)
	if err != nil {
		t.Fatal(err)
	}
	both := append([]Bid{
		{Rack: 0, Tenant: "sprint", Fn: LinearBid{DMax: 60, DMin: 40, QMin: 0.3, QMax: 0.8}},
	}, oppOnly...)
	resBoth, err := m.Clear(both)
	if err != nil {
		t.Fatal(err)
	}
	if resBoth.Price <= resOpp.Price {
		t.Errorf("price with sprinter %v should exceed opportunistic-only price %v", resBoth.Price, resOpp.Price)
	}
	var sprintW, oppW float64
	for i, a := range resBoth.Allocations {
		if both[i].Tenant == "sprint" {
			sprintW = a.Watts
		} else {
			oppW = a.Watts
		}
	}
	if sprintW < 40 {
		t.Errorf("sprinting tenant got %v W, want ≥ its DMin 40", sprintW)
	}
	if oppW >= 10 {
		t.Errorf("opportunistic tenant got %v W, want priced out (<10)", oppW)
	}
}

func TestClearMorSpotLowersPrice(t *testing.T) {
	// Fig. 10 again: more available spot capacity lowers the market price.
	bids := []Bid{
		{Rack: 0, Fn: LinearBid{DMax: 60, DMin: 0, QMin: 0.02, QMax: 0.4}},
		{Rack: 1, Fn: LinearBid{DMax: 50, DMin: 0, QMin: 0.02, QMax: 0.4}},
	}
	scarce, err := NewMarket(twoPDUConstraints(40, 500, 1000), Options{PriceStep: 0.0005})
	if err != nil {
		t.Fatal(err)
	}
	rich, err := NewMarket(twoPDUConstraints(200, 500, 1000), Options{PriceStep: 0.0005})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := scarce.Clear(bids)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := rich.Clear(bids)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Price <= rr.Price {
		t.Errorf("scarce price %v should exceed rich price %v", rs.Price, rr.Price)
	}
}

func TestClearReservePrice(t *testing.T) {
	m, err := NewMarket(twoPDUConstraints(500, 500, 1000), Options{PriceStep: 0.001, ReservePrice: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	// A bid whose max price is below the reserve sells nothing.
	res, err := m.Clear([]Bid{{Rack: 0, Fn: StepBid{D: 50, QMax: 0.05}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalWatts != 0 {
		t.Errorf("sold %v W below reserve price", res.TotalWatts)
	}
	if res.Price < 0.1 {
		t.Errorf("price %v below reserve", res.Price)
	}
}

func TestClearBadBids(t *testing.T) {
	m, err := NewMarket(twoPDUConstraints(100, 100, 200), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Clear([]Bid{{Rack: 99, Fn: StepBid{D: 1, QMax: 1}}}); !errors.Is(err, ErrConstraints) {
		t.Error("out-of-range rack accepted")
	}
	if _, err := m.Clear([]Bid{{Rack: 0}}); !errors.Is(err, ErrBid) {
		t.Error("nil demand function accepted")
	}
}

func TestSetSpot(t *testing.T) {
	m, err := NewMarket(twoPDUConstraints(100, 100, 200), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetSpot([]float64{10, 20}, 25); err != nil {
		t.Fatal(err)
	}
	c := m.Constraints()
	if c.PDUSpot[0] != 10 || c.PDUSpot[1] != 20 || c.UPSSpot != 25 {
		t.Errorf("SetSpot not applied: %+v", c)
	}
	if err := m.SetSpot([]float64{1}, 5); !errors.Is(err, ErrConstraints) {
		t.Error("wrong length accepted")
	}
	if err := m.SetSpot([]float64{-1, 0}, 5); !errors.Is(err, ErrConstraints) {
		t.Error("negative PDU spot accepted")
	}
	if err := m.SetSpot([]float64{1, 1}, -5); !errors.Is(err, ErrConstraints) {
		t.Error("negative UPS spot accepted")
	}
}

func TestVerifyFeasibleRejects(t *testing.T) {
	m, err := NewMarket(twoPDUConstraints(100, 100, 120), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		allocs []Allocation
	}{
		{"bad rack", []Allocation{{Rack: 50, Watts: 1}}},
		{"negative", []Allocation{{Rack: 0, Watts: -1}}},
		{"headroom", []Allocation{{Rack: 0, Watts: 61}}},
		{"pdu", []Allocation{{Rack: 0, Watts: 60}, {Rack: 1, Watts: 50}, {Rack: 2, Watts: 30}}},
		{"ups", []Allocation{{Rack: 0, Watts: 60}, {Rack: 1, Watts: 40}, {Rack: 4, Watts: 30}}},
	}
	for _, c := range cases {
		if err := m.VerifyFeasible(c.allocs); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if err := m.VerifyFeasible([]Allocation{{Rack: 0, Watts: 60}, {Rack: 4, Watts: 60}}); err != nil {
		t.Errorf("feasible allocation rejected: %v", err)
	}
}

func TestLinearBidBeatsStepBidUnderScarcity(t *testing.T) {
	// The Section V-C comparison in miniature: under scarce spot capacity,
	// elastic linear bids let the operator partially serve demand and earn
	// more than all-or-nothing step bids.
	cons := twoPDUConstraints(50, 500, 1000)
	linear := []Bid{
		{Rack: 0, Fn: LinearBid{DMax: 60, DMin: 5, QMin: 0.05, QMax: 0.4}},
		{Rack: 1, Fn: LinearBid{DMax: 50, DMin: 5, QMin: 0.05, QMax: 0.4}},
	}
	step := []Bid{
		{Rack: 0, Fn: StepBid{D: 60, QMax: 0.4}},
		{Rack: 1, Fn: StepBid{D: 50, QMax: 0.4}},
	}
	m1, err := NewMarket(cons, Options{PriceStep: 0.0005})
	if err != nil {
		t.Fatal(err)
	}
	rLin, err := m1.Clear(linear)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewMarket(cons, Options{PriceStep: 0.0005})
	if err != nil {
		t.Fatal(err)
	}
	rStep, err := m2.Clear(step)
	if err != nil {
		t.Fatal(err)
	}
	// Step bids are infeasible together (110 > 50) at any price ≤ 0.4, so
	// nothing sells; linear bids are partially served.
	if rStep.TotalWatts != 0 {
		t.Errorf("step bids sold %v W, want 0", rStep.TotalWatts)
	}
	if rLin.RevenueRate <= rStep.RevenueRate {
		t.Errorf("linear revenue %v not above step revenue %v", rLin.RevenueRate, rStep.RevenueRate)
	}
}

func TestClearPerPDU(t *testing.T) {
	m, err := NewMarket(twoPDUConstraints(100, 100, 120), Options{PriceStep: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	bids := []Bid{
		{Rack: 0, Fn: LinearBid{DMax: 60, DMin: 0, QMin: 0.02, QMax: 0.4}},
		{Rack: 1, Fn: LinearBid{DMax: 50, DMin: 0, QMin: 0.02, QMax: 0.4}},
		{Rack: 4, Fn: LinearBid{DMax: 60, DMin: 0, QMin: 0.02, QMax: 0.4}},
		{Rack: 5, Fn: LinearBid{DMax: 60, DMin: 0, QMin: 0.02, QMax: 0.4}},
	}
	results, err := m.ClearPerPDU(bids)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want one per PDU", len(results))
	}
	total := results[0].TotalWatts + results[1].TotalWatts
	if total > 120+1e-6 {
		t.Errorf("per-PDU clearing sold %v W beyond the 120 W UPS", total)
	}
	for pdu, r := range results {
		if r.TotalWatts > 100+1e-6 {
			t.Errorf("PDU %d sold %v W beyond its 100 W spot", pdu, r.TotalWatts)
		}
	}
	if _, err := m.ClearPerPDU([]Bid{{Rack: 42, Fn: StepBid{D: 1, QMax: 1}}}); !errors.Is(err, ErrConstraints) {
		t.Error("bad rack accepted")
	}
}

func TestClearEvaluationsBounded(t *testing.T) {
	m, err := NewMarket(twoPDUConstraints(100, 100, 200), Options{PriceStep: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Clear([]Bid{{Rack: 0, Fn: StepBid{D: 10, QMax: 0.2}}})
	if err != nil {
		t.Fatal(err)
	}
	// Scan of [0, 0.2] at step 0.01 is ~21 evaluations plus the feasibility
	// probe; anything wildly above that means the search is broken.
	if res.Evaluations < 2 || res.Evaluations > 60 {
		t.Errorf("evaluations = %d", res.Evaluations)
	}
}

// Property: for random elastic bid sets and random spot capacities, the
// cleared allocation always satisfies Eqns. (2)–(4), revenue is
// non-negative, and every allocation matches the bid's demand at the
// clearing price (clamped to headroom).
func TestQuickClearFeasibleAndConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nRacks := 4 + rng.Intn(8)
		nPDUs := 1 + rng.Intn(3)
		cons := Constraints{
			RackHeadroom: make([]float64, nRacks),
			RackPDU:      make([]int, nRacks),
			PDUSpot:      make([]float64, nPDUs),
		}
		for r := 0; r < nRacks; r++ {
			cons.RackHeadroom[r] = 20 + rng.Float64()*80
			cons.RackPDU[r] = rng.Intn(nPDUs)
		}
		for m := 0; m < nPDUs; m++ {
			cons.PDUSpot[m] = rng.Float64() * 150
		}
		cons.UPSSpot = rng.Float64() * 150 * float64(nPDUs)
		mkt, err := NewMarket(cons, Options{PriceStep: 0.002})
		if err != nil {
			return false
		}
		var bids []Bid
		for r := 0; r < nRacks; r++ {
			if rng.Float64() < 0.3 {
				continue // not every rack bids
			}
			dMin := rng.Float64() * 30
			dMax := dMin + rng.Float64()*60
			qMin := rng.Float64() * 0.2
			qMax := qMin + rng.Float64()*0.5
			bids = append(bids, Bid{Rack: r, Fn: LinearBid{DMax: dMax, DMin: dMin, QMin: qMin, QMax: qMax}})
		}
		res, err := mkt.Clear(bids)
		if err != nil {
			return false
		}
		if res.RevenueRate < 0 || res.TotalWatts < 0 {
			return false
		}
		if err := mkt.VerifyFeasible(res.Allocations); err != nil {
			return false
		}
		sum := 0.0
		for i, a := range res.Allocations {
			want := bids[i].Fn.Demand(res.Price)
			if hr := cons.RackHeadroom[a.Rack]; want > hr {
				want = hr
			}
			if math.Abs(a.Watts-want) > 1e-9 {
				return false
			}
			sum += a.Watts
		}
		return math.Abs(sum-res.TotalWatts) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: revenue found by the scan is at least the revenue at any other
// feasible scanned price (sanity of the argmax).
func TestQuickClearIsArgmaxOverScan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cons := twoPDUConstraints(30+rng.Float64()*100, 30+rng.Float64()*100, 60+rng.Float64()*150)
		step := 0.005
		mkt, err := NewMarket(cons, Options{PriceStep: step})
		if err != nil {
			return false
		}
		var bids []Bid
		for r := 0; r < 6; r++ {
			dMin := rng.Float64() * 20
			dMax := dMin + rng.Float64()*50
			qMin := rng.Float64() * 0.1
			qMax := qMin + 0.05 + rng.Float64()*0.4
			bids = append(bids, Bid{Rack: r, Fn: LinearBid{DMax: dMax, DMin: dMin, QMin: qMin, QMax: qMax}})
		}
		res, err := mkt.Clear(bids)
		if err != nil {
			return false
		}
		// Exhaustively recheck every scanned price.
		check, err := NewMarket(cons, Options{PriceStep: step})
		if err != nil {
			return false
		}
		hi, sumDMax := 0.0, 0.0
		for _, b := range bids {
			if p := b.Fn.MaxPrice(); p > hi {
				hi = p
			}
			sumDMax += b.Fn.MaxDemand()
		}
		// Clear's scan grid may be offset from this one by up to one step
		// (its origin is the bisected minimum feasible price), so allow one
		// step's worth of revenue slack.
		tol := step*sumDMax/1000 + 1e-9
		for q := 0.0; q <= hi+step; q += step {
			if !check.feasibleAt(bids, q) {
				continue
			}
			watts := check.servedAt(bids, q)
			if q*watts/1000 > res.RevenueRate+tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
