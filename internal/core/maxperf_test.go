package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// concaveGain builds a diminishing-returns gain curve saturating at
// `scale` $/h as watts grow with rate constant alpha.
func concaveGain(scale, alpha float64) GainFunc {
	return func(w float64) float64 {
		if w <= 0 {
			return 0
		}
		return scale * (1 - math.Exp(-alpha*w))
	}
}

func TestMaxPerfValidation(t *testing.T) {
	cons := twoPDUConstraints(100, 100, 150)
	if _, err := MaxPerf(Constraints{RackHeadroom: []float64{1}, RackPDU: []int{0, 0}, PDUSpot: []float64{1}}, nil, MaxPerfOptions{}); err == nil {
		t.Error("invalid constraints accepted")
	}
	if _, err := MaxPerf(cons, []MaxPerfRequest{{Rack: 99, MaxWatts: 1, Gain: concaveGain(1, 1)}}, MaxPerfOptions{}); err == nil {
		t.Error("out-of-range rack accepted")
	}
	if _, err := MaxPerf(cons, []MaxPerfRequest{{Rack: 0, MaxWatts: 1}}, MaxPerfOptions{}); err == nil {
		t.Error("nil gain accepted")
	}
	if _, err := MaxPerf(cons, []MaxPerfRequest{{Rack: 0, MaxWatts: -1, Gain: concaveGain(1, 1)}}, MaxPerfOptions{}); err == nil {
		t.Error("negative MaxWatts accepted")
	}
}

func TestMaxPerfEmpty(t *testing.T) {
	allocs, err := MaxPerf(twoPDUConstraints(100, 100, 150), nil, MaxPerfOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(allocs) != 0 {
		t.Errorf("allocs = %v", allocs)
	}
}

func TestMaxPerfSingleRackSaturates(t *testing.T) {
	cons := twoPDUConstraints(100, 100, 150)
	reqs := []MaxPerfRequest{{Rack: 0, MaxWatts: 40, Gain: concaveGain(10, 0.1)}}
	allocs, err := MaxPerf(cons, reqs, MaxPerfOptions{QuantumWatts: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Marginal gain stays positive everywhere, so the rack should be filled
	// to its 40 W request (headroom is 60, PDU 100 — neither binds).
	if math.Abs(allocs[0].Watts-40) > 1e-9 {
		t.Errorf("alloc = %v, want 40", allocs[0].Watts)
	}
}

func TestMaxPerfPrefersHigherMarginalGain(t *testing.T) {
	// Two racks compete for 50 W of PDU spot. Rack 0's gain curve is much
	// steeper, so it should receive most of the capacity.
	cons := twoPDUConstraints(50, 500, 1000)
	reqs := []MaxPerfRequest{
		{Rack: 0, MaxWatts: 60, Gain: concaveGain(20, 0.08)},
		{Rack: 1, MaxWatts: 60, Gain: concaveGain(2, 0.08)},
	}
	allocs, err := MaxPerf(cons, reqs, MaxPerfOptions{QuantumWatts: 1})
	if err != nil {
		t.Fatal(err)
	}
	total := allocs[0].Watts + allocs[1].Watts
	if total > 50+1e-9 {
		t.Errorf("total %v exceeds PDU spot 50", total)
	}
	if allocs[0].Watts <= allocs[1].Watts {
		t.Errorf("steeper curve got %v, flatter got %v", allocs[0].Watts, allocs[1].Watts)
	}
}

func TestMaxPerfEqualCurvesSplitEvenly(t *testing.T) {
	cons := twoPDUConstraints(60, 500, 1000)
	g := concaveGain(10, 0.05)
	reqs := []MaxPerfRequest{
		{Rack: 0, MaxWatts: 100, Gain: g},
		{Rack: 1, MaxWatts: 100, Gain: g},
	}
	allocs, err := MaxPerf(cons, reqs, MaxPerfOptions{QuantumWatts: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(allocs[0].Watts-allocs[1].Watts) > 2 {
		t.Errorf("equal curves split %v / %v", allocs[0].Watts, allocs[1].Watts)
	}
}

func TestMaxPerfRespectsUPS(t *testing.T) {
	cons := twoPDUConstraints(100, 100, 70)
	reqs := []MaxPerfRequest{
		{Rack: 0, MaxWatts: 60, Gain: concaveGain(10, 0.1)},
		{Rack: 4, MaxWatts: 60, Gain: concaveGain(10, 0.1)},
	}
	allocs, err := MaxPerf(cons, reqs, MaxPerfOptions{QuantumWatts: 1})
	if err != nil {
		t.Fatal(err)
	}
	total := allocs[0].Watts + allocs[1].Watts
	if total > 70+1e-9 {
		t.Errorf("total %v exceeds UPS spot 70", total)
	}
	if total < 69 {
		t.Errorf("total %v should nearly exhaust the 70 W UPS (positive marginals)", total)
	}
}

func TestMaxPerfZeroGainGetsNothing(t *testing.T) {
	cons := twoPDUConstraints(100, 100, 200)
	reqs := []MaxPerfRequest{{Rack: 0, MaxWatts: 50, Gain: func(float64) float64 { return 0 }}}
	allocs, err := MaxPerf(cons, reqs, MaxPerfOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if allocs[0].Watts != 0 {
		t.Errorf("zero-gain rack got %v W", allocs[0].Watts)
	}
}

func TestMaxPerfBeatsOrMatchesMarketGain(t *testing.T) {
	// MaxPerf is the upper bound the paper normalizes against (Fig. 12(b)):
	// given the same gain curves, its total gain must be ≥ what the profit-
	// maximizing market delivers.
	cons := twoPDUConstraints(60, 60, 100)
	gains := []GainFunc{concaveGain(8, 0.06), concaveGain(4, 0.06), concaveGain(6, 0.06)}
	racks := []int{0, 1, 4}
	reqs := make([]MaxPerfRequest, len(racks))
	for i, r := range racks {
		reqs[i] = MaxPerfRequest{Rack: r, MaxWatts: 60, Gain: gains[i]}
	}
	mpAllocs, err := MaxPerf(cons, reqs, MaxPerfOptions{QuantumWatts: 1})
	if err != nil {
		t.Fatal(err)
	}
	mpGain := TotalGain(reqs, mpAllocs)

	mkt, err := NewMarket(cons, Options{PriceStep: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	bids := []Bid{
		{Rack: 0, Fn: LinearBid{DMax: 60, DMin: 5, QMin: 0.05, QMax: 0.4}},
		{Rack: 1, Fn: LinearBid{DMax: 60, DMin: 5, QMin: 0.05, QMax: 0.3}},
		{Rack: 4, Fn: LinearBid{DMax: 60, DMin: 5, QMin: 0.05, QMax: 0.35}},
	}
	res, err := mkt.Clear(bids)
	if err != nil {
		t.Fatal(err)
	}
	marketGain := 0.0
	for i, a := range res.Allocations {
		marketGain += gains[i](a.Watts)
	}
	if mpGain+1e-6 < marketGain {
		t.Errorf("MaxPerf gain %v below market gain %v", mpGain, marketGain)
	}
}

func TestTotalGainSkipsNil(t *testing.T) {
	reqs := []MaxPerfRequest{{Rack: 0, Gain: concaveGain(1, 1)}}
	allocs := []Allocation{{Rack: 0, Watts: 100}, {Rack: 1, Watts: 50}}
	got := TotalGain(reqs, allocs)
	want := concaveGain(1, 1)(100)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("TotalGain = %v, want %v", got, want)
	}
}

// Property: MaxPerf allocations always satisfy all constraints and never
// exceed the per-request MaxWatts.
func TestQuickMaxPerfFeasible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nRacks := 4 + rng.Intn(6)
		nPDUs := 1 + rng.Intn(2)
		cons := Constraints{
			RackHeadroom: make([]float64, nRacks),
			RackPDU:      make([]int, nRacks),
			PDUSpot:      make([]float64, nPDUs),
		}
		for r := 0; r < nRacks; r++ {
			cons.RackHeadroom[r] = rng.Float64() * 80
			cons.RackPDU[r] = rng.Intn(nPDUs)
		}
		for m := 0; m < nPDUs; m++ {
			cons.PDUSpot[m] = rng.Float64() * 120
		}
		cons.UPSSpot = rng.Float64() * 120 * float64(nPDUs)
		var reqs []MaxPerfRequest
		for r := 0; r < nRacks; r++ {
			reqs = append(reqs, MaxPerfRequest{
				Rack:     r,
				MaxWatts: rng.Float64() * 100,
				Gain:     concaveGain(1+rng.Float64()*10, 0.01+rng.Float64()*0.2),
			})
		}
		allocs, err := MaxPerf(cons, reqs, MaxPerfOptions{QuantumWatts: 2})
		if err != nil {
			return false
		}
		mkt, err := NewMarket(cons, Options{})
		if err != nil {
			return false
		}
		if err := mkt.VerifyFeasible(allocs); err != nil {
			return false
		}
		for i, a := range allocs {
			if a.Watts > reqs[i].MaxWatts+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: for concave gains, greedy water-filling is within one quantum
// per rack of any feasible alternative allocation produced by scaling.
func TestQuickMaxPerfNotDominated(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cons := twoPDUConstraints(30+rng.Float64()*60, 30+rng.Float64()*60, 50+rng.Float64()*100)
		gains := []GainFunc{
			concaveGain(1+rng.Float64()*5, 0.05),
			concaveGain(1+rng.Float64()*5, 0.05),
			concaveGain(1+rng.Float64()*5, 0.05),
		}
		reqs := []MaxPerfRequest{
			{Rack: 0, MaxWatts: 60, Gain: gains[0]},
			{Rack: 1, MaxWatts: 60, Gain: gains[1]},
			{Rack: 4, MaxWatts: 60, Gain: gains[2]},
		}
		allocs, err := MaxPerf(cons, reqs, MaxPerfOptions{QuantumWatts: 1})
		if err != nil {
			return false
		}
		got := TotalGain(reqs, allocs)
		// A simple feasible competitor: proportional split of each PDU's
		// spot (and of the UPS) across its racks.
		competitor := []Allocation{
			{Rack: 0, Watts: math.Min(60, math.Min(cons.RackHeadroom[0], math.Min(cons.PDUSpot[0]/2, cons.UPSSpot/3)))},
			{Rack: 1, Watts: math.Min(60, math.Min(cons.RackHeadroom[1], math.Min(cons.PDUSpot[0]/2, cons.UPSSpot/3)))},
			{Rack: 4, Watts: math.Min(60, math.Min(cons.RackHeadroom[4], math.Min(cons.PDUSpot[1], cons.UPSSpot/3)))},
		}
		alt := TotalGain(reqs, competitor)
		// Allow slack of 3 quanta worth of the steepest marginal.
		slack := 3.0 * 0.3
		return got+slack >= alt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
