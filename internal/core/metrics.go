package core

import (
	"time"

	"spotdc/internal/metrics"
)

// MarketMetrics is the market core's pre-registered instrumentation handle
// set (see internal/metrics: handles, not maps, so the clearing hot loop
// stays allocation-free with instrumentation enabled). Build one with
// NewMarketMetrics and hand it to Options.Metrics; a nil set disables
// instrumentation at the cost of one branch per Clear.
type MarketMetrics struct {
	// clearSeconds is the clear-duration histogram (Fig. 7(b)'s quantity,
	// observed continuously instead of benchmarked offline).
	clearSeconds *metrics.Histogram
	// evaluations is the candidate-count histogram: full demand-curve
	// evaluations per clearing, the engines' dominant cost.
	evaluations *metrics.Histogram
	// clears counts clearings by engine (the auto selector resolves to scan
	// or exact per clearing, so the two children expose its decisions).
	clearsScan  *metrics.Counter
	clearsExact *metrics.Counter
	// clearErrors counts rejected clearings (invalid bids).
	clearErrors *metrics.Counter
	// price / revenue / soldWatts mirror the most recent Result.
	price     *metrics.Gauge
	revenue   *metrics.Gauge
	soldWatts *metrics.Gauge
}

// NewMarketMetrics registers the market families on r and returns the
// resolved handle set. Registration is idempotent per registry: many
// markets (e.g. one per fan-out scenario) may share one set, in which case
// counters aggregate across them.
func NewMarketMetrics(r *metrics.Registry) *MarketMetrics {
	clears := r.CounterVec("spotdc_market_clears_total",
		"Market clearings completed, by engine (auto resolves per clearing).", "engine")
	return &MarketMetrics{
		clearSeconds: r.Histogram("spotdc_market_clear_seconds",
			"Wall time of one market clearing (the Fig. 7(b) quantity).",
			metrics.ExpBuckets(1e-5, 4, 12)), // 10µs … ~168s
		evaluations: r.Histogram("spotdc_market_clear_evaluations",
			"Full demand-curve evaluations per clearing (the dominant clearing cost).",
			metrics.ExpBuckets(1, 4, 10)), // 1 … ~262k
		clearsScan:  clears.With(AlgorithmScan.String()),
		clearsExact: clears.With(AlgorithmExact.String()),
		clearErrors: r.Counter("spotdc_market_clear_errors_total",
			"Clearings rejected before running (invalid bids or constraints)."),
		price: r.Gauge("spotdc_market_price_dollars_per_kwh",
			"Most recent uniform clearing price."),
		revenue: r.Gauge("spotdc_market_revenue_dollars_per_hour",
			"Most recent clearing's revenue rate."),
		soldWatts: r.Gauge("spotdc_market_sold_watts",
			"Most recent clearing's total spot capacity sold."),
	}
}

// observeClear records one successful clearing. All handle updates are
// atomic and allocation-free; mm is never nil here (callers check).
func (mm *MarketMetrics) observeClear(res Result, dur time.Duration) {
	mm.clearSeconds.Observe(dur.Seconds())
	mm.evaluations.Observe(float64(res.Evaluations))
	if res.Algorithm == AlgorithmScan {
		mm.clearsScan.Inc()
	} else {
		mm.clearsExact.Inc()
	}
	mm.price.Set(res.Price)
	mm.revenue.Set(res.RevenueRate)
	mm.soldWatts.Set(res.TotalWatts)
}
