package core

import (
	"math"
	"math/rand"
	"testing"
)

// randCase draws a random hierarchical topology and bid set. Headrooms,
// PDU spot, and UPS spot are drawn independently so every binding pattern
// occurs: rack-limited, PDU-limited, UPS-limited, and slack. Bids may
// demand far beyond their rack's headroom — the clamp is the market's
// problem, not the generator's.
func randCase(rng *rand.Rand) (Constraints, []Bid) {
	nPDU := 1 + rng.Intn(4)
	nRack := 1 + rng.Intn(12)
	cons := Constraints{
		RackHeadroom: make([]float64, nRack),
		RackPDU:      make([]int, nRack),
		PDUSpot:      make([]float64, nPDU),
		UPSSpot:      rng.Float64() * 400,
	}
	for r := 0; r < nRack; r++ {
		cons.RackHeadroom[r] = rng.Float64() * 100
		cons.RackPDU[r] = rng.Intn(nPDU)
	}
	for m := 0; m < nPDU; m++ {
		cons.PDUSpot[m] = rng.Float64() * 250
	}
	var bids []Bid
	for r := 0; r < nRack; r++ {
		if rng.Float64() < 0.2 { // some racks sit a slot out
			continue
		}
		dMin := rng.Float64() * 50
		qMin := rng.Float64() * 0.5
		bids = append(bids, Bid{Rack: r, Tenant: "t", Fn: LinearBid{
			DMax: dMin + rng.Float64()*120,
			DMin: dMin,
			QMin: qMin,
			QMax: qMin + rng.Float64()*0.6,
		}})
	}
	return cons, bids
}

// checkHierarchy re-derives Eqns. (2)-(4) from scratch — independent of
// VerifyFeasible, whose accumulation logic is itself under test elsewhere.
func checkHierarchy(t *testing.T, cons Constraints, res Result) {
	t.Helper()
	pduLoad := make([]float64, len(cons.PDUSpot))
	total := 0.0
	for _, a := range res.Allocations {
		if a.Watts < 0 {
			t.Fatalf("rack %d granted negative power %v W", a.Rack, a.Watts)
		}
		if a.Watts > cons.RackHeadroom[a.Rack]+1e-9 {
			t.Fatalf("rack %d granted %v W beyond headroom %v W (Eqn. 2)",
				a.Rack, a.Watts, cons.RackHeadroom[a.Rack])
		}
		pduLoad[cons.RackPDU[a.Rack]] += a.Watts
		total += a.Watts
	}
	for m, l := range pduLoad {
		if l > cons.PDUSpot[m]+1e-9 {
			t.Fatalf("PDU %d granted %v W beyond spot %v W (Eqn. 3)", m, l, cons.PDUSpot[m])
		}
	}
	if total > cons.UPSSpot+1e-9 {
		t.Fatalf("UPS granted %v W beyond spot %v W (Eqn. 4)", total, cons.UPSSpot)
	}
	if math.Abs(total-res.TotalWatts) > 1e-9+1e-12*total {
		t.Fatalf("grants sum to %v W, TotalWatts says %v W", total, res.TotalWatts)
	}
}

// TestClearFeasibilityProperty hammers both engines with random
// topologies and asserts the hierarchical feasibility invariants, engine
// agreement on revenue, and a silent inline auditor on every clearing.
func TestClearFeasibilityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20180224)) // HPCA'18
	for trial := 0; trial < 400; trial++ {
		cons, bids := randCase(rng)
		ration := rng.Float64() < 0.25
		results := make(map[Algorithm]Result)
		for _, algo := range []Algorithm{AlgorithmScan, AlgorithmExact} {
			aud := &Auditor{}
			mkt, err := NewMarket(cons, Options{PriceStep: 0.001, Algorithm: algo, Ration: ration, Audit: aud})
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			res, err := mkt.Clear(bids)
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, algo, err)
			}
			checkHierarchy(t, cons, res)
			if err := mkt.VerifyFeasible(res.Allocations); err != nil {
				t.Fatalf("trial %d %v: %v", trial, algo, err)
			}
			if aud.Violations() != 0 {
				t.Fatalf("trial %d %v: inline audit: %v", trial, algo, aud.Err())
			}
			results[algo] = res
		}
		// The exact engine optimizes over all breakpoints, the scan over a
		// grid: exact must never earn less (up to float slack), and the
		// scan can trail only by what a one-grid-step price miss costs —
		// generously bounded here at 10%, since these random curves are
		// tiny and steep compared to the paper's workloads.
		scan, exact := results[AlgorithmScan], results[AlgorithmExact]
		if exact.RevenueRate < scan.RevenueRate-1e-9 {
			t.Fatalf("trial %d: exact revenue %v < scan revenue %v", trial, exact.RevenueRate, scan.RevenueRate)
		}
		if d := exact.RevenueRate - scan.RevenueRate; d > 1e-9+0.10*math.Abs(exact.RevenueRate) {
			t.Fatalf("trial %d: engines disagree on revenue: scan %v, exact %v", trial, scan.RevenueRate, exact.RevenueRate)
		}
	}
}

// FuzzClearFeasibility lets the fuzzer steer the topology draw and the
// binding constraint levels directly. `go test -fuzz=FuzzClearFeasibility
// ./internal/core/` explores; the seed corpus keeps it as a fast
// regression property under plain `go test`.
func FuzzClearFeasibility(f *testing.F) {
	f.Add(int64(1), 100.0, 50.0)
	f.Add(int64(42), 0.0, 0.0)
	f.Add(int64(7), 1e6, 1e-3)
	f.Add(int64(-3), 0.5, 400.0)
	f.Fuzz(func(t *testing.T, seed int64, upsSpot, pduSpot float64) {
		if math.IsNaN(upsSpot) || math.IsInf(upsSpot, 0) || upsSpot < 0 || upsSpot > 1e12 {
			t.Skip()
		}
		if math.IsNaN(pduSpot) || math.IsInf(pduSpot, 0) || pduSpot < 0 || pduSpot > 1e12 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		cons, bids := randCase(rng)
		cons.UPSSpot = upsSpot
		for m := range cons.PDUSpot {
			cons.PDUSpot[m] = pduSpot
		}
		for _, algo := range []Algorithm{AlgorithmScan, AlgorithmExact} {
			aud := &Auditor{}
			mkt, err := NewMarket(cons, Options{PriceStep: 0.001, Algorithm: algo, Audit: aud})
			if err != nil {
				t.Fatal(err)
			}
			res, err := mkt.Clear(bids)
			if err != nil {
				t.Fatal(err)
			}
			checkHierarchy(t, cons, res)
			if err := mkt.VerifyFeasible(res.Allocations); err != nil {
				t.Fatal(err)
			}
			if aud.Violations() != 0 {
				t.Fatal(aud.Err())
			}
		}
	})
}

// TestValidateBidsRejectsDuplicateRack: one demand function per rack per
// slot (b_r in Eqn. 5). Two bids on the same rack would each get the full
// rack headroom clamp and jointly breach Eqn. 2.
func TestValidateBidsRejectsDuplicateRack(t *testing.T) {
	cons := Constraints{
		RackHeadroom: []float64{60, 60},
		RackPDU:      []int{0, 0},
		PDUSpot:      []float64{100},
		UPSSpot:      100,
	}
	mkt, err := NewMarket(cons, Options{PriceStep: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	dup := []Bid{
		{Rack: 0, Fn: LinearBid{DMax: 60, QMax: 0.1}},
		{Rack: 1, Fn: LinearBid{DMax: 60, QMax: 0.1}},
		{Rack: 0, Fn: LinearBid{DMax: 60, QMax: 0.1}},
	}
	if _, err := mkt.Clear(dup); err == nil {
		t.Fatal("duplicate-rack bid set cleared")
	}
	if _, err := mkt.ClearWithExtras(dup); err == nil {
		t.Fatal("duplicate-rack bid set cleared with extras")
	}
	// The epoch-marked buffer must not leak marks across calls: the same
	// racks, deduplicated, clear fine immediately afterwards.
	if _, err := mkt.Clear(dup[:2]); err != nil {
		t.Fatalf("clean bid set rejected after duplicate rejection: %v", err)
	}
}

// TestVerifyFeasibleAccumulatesPerRack: multiple allocations for one rack
// (legal for callers outside Clear, e.g. MaxPerf composition) must be
// summed before the headroom comparison — the bug let each slip under the
// limit individually.
func TestVerifyFeasibleAccumulatesPerRack(t *testing.T) {
	cons := Constraints{
		RackHeadroom: []float64{60},
		RackPDU:      []int{0},
		PDUSpot:      []float64{1000},
		UPSSpot:      1000,
	}
	mkt, err := NewMarket(cons, Options{PriceStep: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	// 40 + 40 = 80 W on a 60 W rack: individually fine, jointly infeasible.
	err = mkt.VerifyFeasible([]Allocation{
		{Rack: 0, Watts: 40},
		{Rack: 0, Watts: 40},
	})
	if err == nil {
		t.Fatal("per-rack over-allocation passed VerifyFeasible")
	}
	if err := mkt.VerifyFeasible([]Allocation{{Rack: 0, Watts: 30}, {Rack: 0, Watts: 30}}); err != nil {
		t.Fatalf("joint allocation within headroom rejected: %v", err)
	}
}

// TestAuditorFlagsDoctoredResult exercises the inline checker directly
// with corrupted clearing results — each doctored field must produce a
// violation, proving auditClear checks what it claims to.
func TestAuditorFlagsDoctoredResult(t *testing.T) {
	cons := Constraints{
		RackHeadroom: []float64{60, 60},
		RackPDU:      []int{0, 1},
		PDUSpot:      []float64{50, 50},
		UPSSpot:      80,
	}
	bids := []Bid{
		{Rack: 0, Tenant: "a", Fn: LinearBid{DMax: 60, DMin: 10, QMin: 0.01, QMax: 0.2}},
		{Rack: 1, Tenant: "b", Fn: LinearBid{DMax: 60, DMin: 10, QMin: 0.01, QMax: 0.2}},
	}
	doctor := []struct {
		name string
		mut  func(*Result)
	}{
		{"negative grant", func(r *Result) { r.Allocations[0].Watts = -5 }},
		{"beyond headroom", func(r *Result) { r.Allocations[0].Watts = 70 }},
		{"beyond PDU spot", func(r *Result) { r.Allocations[0].Watts = 55 }},
		{"wrong rack", func(r *Result) { r.Allocations[0].Rack = 1 }},
		{"total mismatch", func(r *Result) { r.TotalWatts += 3 }},
		{"revenue mismatch", func(r *Result) { r.RevenueRate += 0.5 }},
		{"price above bid max", func(r *Result) { r.Price = 0.9 }},
	}
	for _, tc := range doctor {
		aud := &Auditor{}
		mkt, err := NewMarket(cons, Options{PriceStep: 0.001, Audit: aud})
		if err != nil {
			t.Fatal(err)
		}
		res, err := mkt.Clear(bids)
		if err != nil {
			t.Fatal(err)
		}
		if aud.Violations() != 0 {
			t.Fatalf("%s: clean clearing flagged: %v", tc.name, aud.Err())
		}
		tc.mut(&res)
		mkt.auditClear(aud, bids, res)
		if aud.Violations() == 0 {
			t.Errorf("%s: doctored result passed the inline audit", tc.name)
		}
	}
}
