// Package core implements the SpotDC market itself — the paper's primary
// contribution: rack-level demand-function bidding (Section III-B) and
// uniform-price market clearing under the multi-level power capacity
// constraints of Eqns. (2)–(4), plus the two baselines the evaluation
// compares against (PowerCapped and MaxPerf) and the alternative demand
// functions (StepBid, FullBid) of Section V-C.
//
// Prices are in $/kW·h, demands in watts.
package core

import (
	"errors"
	"fmt"
	"sort"
)

// ErrBid reports an invalid demand-function specification.
var ErrBid = errors.New("core: invalid bid")

// DemandFunc captures how much spot capacity a rack wants as a function of
// the uniform market price. Demand must be non-increasing in price.
type DemandFunc interface {
	// Demand returns the requested spot capacity in watts at the given
	// price ($/kW·h). It must be non-negative and non-increasing in price.
	Demand(price float64) float64
	// MaxDemand returns the demand at price zero.
	MaxDemand() float64
	// MaxPrice returns the highest price at which demand is still positive;
	// above it the demand is zero.
	MaxPrice() float64
}

// Breakpointer is the optional structural interface behind exact
// (breakpoint-driven) market clearing. A demand function that is piece-wise
// linear in price exposes the prices at which its slope changes:
//
//   - Breakpoints returns the slope-change prices in ascending order;
//   - below the first breakpoint the demand is constant at MaxDemand();
//   - between consecutive breakpoints the demand is affine in price;
//   - the last breakpoint equals MaxPrice(), and above it demand is zero.
//
// All three built-in demand functions (LinearBid, StepBid, FullBid)
// implement it. Bids whose demand function does not implement Breakpointer
// force Market.Clear to fall back to the grid-scan algorithm, which needs
// no structural knowledge.
type Breakpointer interface {
	// Breakpoints returns the ascending prices at which the piece-wise
	// linear demand curve changes slope (including its MaxPrice).
	Breakpoints() []float64
}

// LinearBid is the paper's piece-wise linear demand function (Fig. 3(a)),
// uniquely determined by the four solicited parameters
// b_r = {(Dmax, qmin), (Dmin, qmax)}:
//
//   - price ≤ QMin:         demand = DMax (horizontal segment)
//   - QMin < price ≤ QMax:  demand falls linearly from DMax to DMin
//   - price > QMax:         demand = 0 (vertical segment at QMax)
//
// Setting DMax == DMin or QMin == QMax degenerates to a step bid.
type LinearBid struct {
	// DMax and DMin are the maximum and minimum spot-capacity demands in
	// watts; DMax ≥ DMin ≥ 0.
	DMax, DMin float64
	// QMin and QMax are the prices ($/kW·h) delimiting the linear segment;
	// QMax ≥ QMin ≥ 0. QMax is the tenant's maximum acceptable price.
	QMin, QMax float64
}

// Validate checks the four-parameter constraints.
func (b LinearBid) Validate() error {
	switch {
	case b.DMin < 0:
		return fmt.Errorf("%w: DMin %v negative", ErrBid, b.DMin)
	case b.DMax < b.DMin:
		return fmt.Errorf("%w: DMax %v below DMin %v", ErrBid, b.DMax, b.DMin)
	case b.QMin < 0:
		return fmt.Errorf("%w: QMin %v negative", ErrBid, b.QMin)
	case b.QMax < b.QMin:
		return fmt.Errorf("%w: QMax %v below QMin %v", ErrBid, b.QMax, b.QMin)
	}
	return nil
}

// Demand implements DemandFunc.
func (b LinearBid) Demand(price float64) float64 {
	switch {
	case price > b.QMax:
		return 0
	case price <= b.QMin || b.QMax == b.QMin:
		return b.DMax
	default:
		frac := (price - b.QMin) / (b.QMax - b.QMin)
		return b.DMax + frac*(b.DMin-b.DMax)
	}
}

// MaxDemand implements DemandFunc.
func (b LinearBid) MaxDemand() float64 { return b.DMax }

// MaxPrice implements DemandFunc.
func (b LinearBid) MaxPrice() float64 { return b.QMax }

// Breakpoints implements Breakpointer: the demand is constant below QMin,
// affine on [QMin, QMax] and zero above QMax.
func (b LinearBid) Breakpoints() []float64 {
	if b.QMin == b.QMax {
		return []float64{b.QMax}
	}
	return []float64{b.QMin, b.QMax}
}

// StepBid is the Amazon-spot-style step demand function: a fixed demand D
// for any price up to QMax, and zero above. It cannot express demand
// elasticity, which is exactly the deficiency Fig. 14 quantifies.
type StepBid struct {
	// D is the fixed spot-capacity demand in watts.
	D float64
	// QMax is the maximum acceptable price ($/kW·h).
	QMax float64
}

// Validate checks the parameters.
func (b StepBid) Validate() error {
	if b.D < 0 {
		return fmt.Errorf("%w: demand %v negative", ErrBid, b.D)
	}
	if b.QMax < 0 {
		return fmt.Errorf("%w: QMax %v negative", ErrBid, b.QMax)
	}
	return nil
}

// Demand implements DemandFunc.
func (b StepBid) Demand(price float64) float64 {
	if price > b.QMax {
		return 0
	}
	return b.D
}

// MaxDemand implements DemandFunc.
func (b StepBid) MaxDemand() float64 { return b.D }

// MaxPrice implements DemandFunc.
func (b StepBid) MaxPrice() float64 { return b.QMax }

// Breakpoints implements Breakpointer: a single step down to zero at QMax.
func (b StepBid) Breakpoints() []float64 { return []float64{b.QMax} }

// PricePoint is one (price, demand) sample of a full demand curve.
type PricePoint struct {
	Price  float64 // $/kW·h
	Demand float64 // watts
}

// FullBid is the complete demand curve alternative of Section V-C: the
// tenant reports its demand at many prices and the operator interpolates
// linearly between them. It extracts the most elasticity but is impractical
// to solicit at scale; SpotDC's LinearBid is the midpoint between it and
// StepBid.
type FullBid struct {
	points []PricePoint
}

// NewFullBid builds a FullBid from samples of the demand curve. Points are
// sorted by price; demand must be non-increasing in price and non-negative.
func NewFullBid(points []PricePoint) (*FullBid, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("%w: full bid needs at least one point", ErrBid)
	}
	ps := append([]PricePoint(nil), points...)
	sort.Slice(ps, func(i, j int) bool { return ps[i].Price < ps[j].Price })
	for i, p := range ps {
		if p.Price < 0 {
			return nil, fmt.Errorf("%w: price %v negative", ErrBid, p.Price)
		}
		if p.Demand < 0 {
			return nil, fmt.Errorf("%w: demand %v negative", ErrBid, p.Demand)
		}
		if i > 0 {
			if ps[i-1].Price == p.Price {
				return nil, fmt.Errorf("%w: duplicate price %v", ErrBid, p.Price)
			}
			if p.Demand > ps[i-1].Demand {
				return nil, fmt.Errorf("%w: demand increases from %v to %v at price %v",
					ErrBid, ps[i-1].Demand, p.Demand, p.Price)
			}
		}
	}
	return &FullBid{points: ps}, nil
}

// Demand implements DemandFunc: below the first sampled price the demand is
// the first point's demand; between samples it interpolates linearly; above
// the last sampled price it is zero.
func (b *FullBid) Demand(price float64) float64 {
	ps := b.points
	if price <= ps[0].Price {
		return ps[0].Demand
	}
	last := ps[len(ps)-1]
	if price > last.Price {
		return 0
	}
	i := sort.Search(len(ps), func(i int) bool { return ps[i].Price >= price })
	// ps[i-1].Price < price <= ps[i].Price.
	lo, hi := ps[i-1], ps[i]
	frac := (price - lo.Price) / (hi.Price - lo.Price)
	return lo.Demand + frac*(hi.Demand-lo.Demand)
}

// MaxDemand implements DemandFunc.
func (b *FullBid) MaxDemand() float64 { return b.points[0].Demand }

// MaxPrice implements DemandFunc.
func (b *FullBid) MaxPrice() float64 { return b.points[len(b.points)-1].Price }

// Points returns a copy of the sampled curve.
func (b *FullBid) Points() []PricePoint { return append([]PricePoint(nil), b.points...) }

// Breakpoints implements Breakpointer: every sampled price is a potential
// slope change.
func (b *FullBid) Breakpoints() []float64 {
	out := make([]float64, len(b.points))
	for i, p := range b.points {
		out[i] = p.Price
	}
	return out
}

// Bid pairs one rack with its demand function for the next time slot.
type Bid struct {
	// Rack is the rack index within the market's Constraints.
	Rack int
	// Tenant identifies the bidding tenant (informational; used by billing).
	Tenant string
	// Fn is the rack's demand function.
	Fn DemandFunc
}

// Bundle builds the per-rack linear bids of a tenant's multi-rack
// (bundled) demand (Section III-B3, Fig. 4): the tenant decides a maximum
// demand vector at price qmin and a minimum demand vector at price qmax,
// and the two are joined affinely, one LinearBid per rack sharing the same
// price pair.
func Bundle(tenant string, racks []int, dMax, dMin []float64, qMin, qMax float64) ([]Bid, error) {
	if len(racks) != len(dMax) || len(racks) != len(dMin) {
		return nil, fmt.Errorf("%w: bundle length mismatch: %d racks, %d dMax, %d dMin",
			ErrBid, len(racks), len(dMax), len(dMin))
	}
	out := make([]Bid, 0, len(racks))
	for i, r := range racks {
		lb := LinearBid{DMax: dMax[i], DMin: dMin[i], QMin: qMin, QMax: qMax}
		if err := lb.Validate(); err != nil {
			return nil, fmt.Errorf("rack %d: %w", r, err)
		}
		out = append(out, Bid{Rack: r, Tenant: tenant, Fn: lb})
	}
	return out, nil
}

// AggregateDemand sums the demand of all bids at the given price, the
// quantity plotted in Fig. 3(b).
func AggregateDemand(bids []Bid, price float64) float64 {
	sum := 0.0
	for _, b := range bids {
		sum += b.Fn.Demand(price)
	}
	return sum
}
