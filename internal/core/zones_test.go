package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetExtrasValidation(t *testing.T) {
	m, err := NewMarket(twoPDUConstraints(100, 100, 200), Options{PriceStep: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	bad := []*Extras{
		{Zones: []Zone{{Name: "z", Racks: []int{99}, MaxWatts: 10}}},
		{Zones: []Zone{{Name: "z", Racks: []int{0}, MaxWatts: -1}}},
		{RackPhase: PhaseOf{0, 1}},                   // wrong length
		{RackPhase: PhaseOf{0, 1, 2, 3, 0, 1, 2, 0}}, // phase 3
	}
	for i, e := range bad {
		if err := m.SetExtras(e); !errors.Is(err, ErrConstraints) {
			t.Errorf("bad extras %d accepted: %v", i, err)
		}
	}
	ok := &Extras{
		Zones:     []Zone{{Name: "aisle", Racks: []int{0, 1}, MaxWatts: 80}},
		RackPhase: PhaseOf{0, 1, 2, 0, 1, 2, 0, 1},
	}
	if err := m.SetExtras(ok); err != nil {
		t.Fatal(err)
	}
	// Clearing (and mutation of the caller's extras) must not alias.
	ok.Zones[0].MaxWatts = -5
	res, err := m.ClearWithExtras(nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	if err := m.SetExtras(nil); err != nil {
		t.Fatal(err)
	}
}

func TestZoneConstraintCapsAllocation(t *testing.T) {
	// Racks 0 and 1 share a hot aisle capped at 50 W even though their PDU
	// has 200 W of spot; inelastic step bids of 40 W each exceed the zone,
	// so the price must rise until the zone fits.
	m, err := NewMarket(twoPDUConstraints(200, 200, 400), Options{PriceStep: 0.0005})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetExtras(&Extras{Zones: []Zone{{Name: "aisle", Racks: []int{0, 1}, MaxWatts: 50}}}); err != nil {
		t.Fatal(err)
	}
	bids := []Bid{
		{Rack: 0, Fn: LinearBid{DMax: 40, DMin: 5, QMin: 0.05, QMax: 0.4}},
		{Rack: 1, Fn: LinearBid{DMax: 40, DMin: 5, QMin: 0.05, QMax: 0.4}},
		{Rack: 4, Fn: LinearBid{DMax: 40, DMin: 5, QMin: 0.05, QMax: 0.4}}, // other PDU, not in the zone
	}
	res, err := m.ClearWithExtras(bids)
	if err != nil {
		t.Fatal(err)
	}
	inZone := res.Allocations[0].Watts + res.Allocations[1].Watts
	if inZone > 50+1e-6 {
		t.Errorf("zone granted %v W of 50 W", inZone)
	}
	if err := m.VerifyExtras(res.Allocations); err != nil {
		t.Errorf("VerifyExtras: %v", err)
	}
	if err := m.VerifyFeasible(res.Allocations); err != nil {
		t.Errorf("VerifyFeasible: %v", err)
	}
	// The rack outside the zone should not be starved by the zone cap: it
	// still receives capacity at the clearing price.
	if res.Allocations[2].Watts <= 0 {
		t.Error("rack outside the zone got nothing")
	}
}

func TestZoneInfeasibleSellsNothing(t *testing.T) {
	// An inelastic bid that can never fit its 10 W zone: nothing sells.
	m, err := NewMarket(twoPDUConstraints(200, 200, 400), Options{PriceStep: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetExtras(&Extras{Zones: []Zone{{Name: "z", Racks: []int{0}, MaxWatts: 10}}}); err != nil {
		t.Fatal(err)
	}
	res, err := m.ClearWithExtras([]Bid{{Rack: 0, Fn: StepBid{D: 40, QMax: 0.3}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalWatts != 0 {
		t.Errorf("sold %v W into a 10 W zone", res.TotalWatts)
	}
}

func TestPhaseBalanceEnforced(t *testing.T) {
	// All demand on phase 0 of PDU 0: with phases installed and default
	// tolerance, a single loaded phase (mean = load/3, limit = mean·1.25)
	// can never be balanced, so nothing sells; spreading the same bids
	// across phases clears fine.
	cons := twoPDUConstraints(200, 200, 400)
	lopsided, err := NewMarket(cons, Options{PriceStep: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if err := lopsided.SetExtras(&Extras{RackPhase: PhaseOf{0, 0, 0, 0, 0, 0, 0, 0}}); err != nil {
		t.Fatal(err)
	}
	bids := []Bid{
		{Rack: 0, Fn: StepBid{D: 30, QMax: 0.3}},
		{Rack: 1, Fn: StepBid{D: 30, QMax: 0.3}},
		{Rack: 2, Fn: StepBid{D: 30, QMax: 0.3}},
	}
	res, err := lopsided.ClearWithExtras(bids)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalWatts != 0 {
		t.Errorf("lopsided phases sold %v W", res.TotalWatts)
	}
	balanced, err := NewMarket(cons, Options{PriceStep: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if err := balanced.SetExtras(&Extras{RackPhase: PhaseOf{0, 1, 2, 0, 1, 2, 0, 1}}); err != nil {
		t.Fatal(err)
	}
	res, err = balanced.ClearWithExtras(bids)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.TotalWatts-90) > 1e-6 {
		t.Errorf("balanced phases sold %v W, want 90", res.TotalWatts)
	}
	if err := balanced.VerifyExtras(res.Allocations); err != nil {
		t.Errorf("VerifyExtras: %v", err)
	}
}

func TestPhaseImbalanceTolerance(t *testing.T) {
	// Two racks on phases 0 and 1 with 40 W and 30 W: mean is 23.3, the
	// default 25% tolerance allows 29.2 — infeasible. A generous 100%
	// tolerance allows 46.7 — feasible.
	cons := twoPDUConstraints(200, 200, 400)
	bids := []Bid{
		{Rack: 0, Fn: StepBid{D: 40, QMax: 0.3}},
		{Rack: 1, Fn: StepBid{D: 30, QMax: 0.3}},
	}
	strict, err := NewMarket(cons, Options{PriceStep: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if err := strict.SetExtras(&Extras{RackPhase: PhaseOf{0, 1, 2, 0, 1, 2, 0, 1}}); err != nil {
		t.Fatal(err)
	}
	rs, err := strict.ClearWithExtras(bids)
	if err != nil {
		t.Fatal(err)
	}
	if rs.TotalWatts != 0 {
		t.Errorf("default tolerance sold %v W despite imbalance", rs.TotalWatts)
	}
	loose, err := NewMarket(cons, Options{PriceStep: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if err := loose.SetExtras(&Extras{RackPhase: PhaseOf{0, 1, 2, 0, 1, 2, 0, 1}, PhaseImbalance: 1.0}); err != nil {
		t.Fatal(err)
	}
	rl, err := loose.ClearWithExtras(bids)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rl.TotalWatts-70) > 1e-6 {
		t.Errorf("loose tolerance sold %v W, want 70", rl.TotalWatts)
	}
}

func TestClearWithExtrasNoExtrasDelegates(t *testing.T) {
	m, err := NewMarket(twoPDUConstraints(100, 100, 200), Options{PriceStep: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	bids := []Bid{{Rack: 0, Fn: LinearBid{DMax: 40, DMin: 10, QMin: 0.05, QMax: 0.3}}}
	a, err := m.ClearWithExtras(bids)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Clear(bids)
	if err != nil {
		t.Fatal(err)
	}
	if a.Price != b.Price || a.TotalWatts != b.TotalWatts {
		t.Errorf("delegation mismatch: %+v vs %+v", a, b)
	}
}

func TestVerifyExtrasRejects(t *testing.T) {
	m, err := NewMarket(twoPDUConstraints(200, 200, 400), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetExtras(&Extras{
		Zones:     []Zone{{Name: "z", Racks: []int{0, 1}, MaxWatts: 50}},
		RackPhase: PhaseOf{0, 1, 2, 0, 1, 2, 0, 1},
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyExtras([]Allocation{{Rack: 0, Watts: 30}, {Rack: 1, Watts: 30}}); err == nil {
		t.Error("zone overflow accepted")
	}
	if err := m.VerifyExtras([]Allocation{{Rack: 0, Watts: 60}}); err == nil {
		t.Error("phase imbalance accepted")
	}
	if err := m.VerifyExtras([]Allocation{{Rack: 0, Watts: 15}, {Rack: 1, Watts: 15}, {Rack: 2, Watts: 15}}); err != nil {
		t.Errorf("balanced allocation rejected: %v", err)
	}
}

// Property: ClearWithExtras never violates zones or phases, and never
// earns more than the unconstrained clearing on the same bids.
func TestQuickExtrasNeverViolated(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cons := twoPDUConstraints(50+rng.Float64()*150, 50+rng.Float64()*150, 100+rng.Float64()*300)
		phases := make(PhaseOf, 8)
		for i := range phases {
			phases[i] = rng.Intn(3)
		}
		extras := &Extras{
			Zones: []Zone{
				{Name: "a", Racks: []int{0, 1, 2}, MaxWatts: rng.Float64() * 120},
				{Name: "b", Racks: []int{4, 5}, MaxWatts: rng.Float64() * 120},
			},
			RackPhase:      phases,
			PhaseImbalance: 0.3 + rng.Float64(),
		}
		var bids []Bid
		for r := 0; r < 8; r++ {
			if rng.Float64() < 0.3 {
				continue
			}
			dMin := rng.Float64() * 20
			dMax := dMin + rng.Float64()*40
			qMin := rng.Float64() * 0.1
			bids = append(bids, Bid{Rack: r, Fn: LinearBid{
				DMax: dMax, DMin: dMin, QMin: qMin, QMax: qMin + 0.05 + rng.Float64()*0.3}})
		}
		withEx, err := NewMarket(cons, Options{PriceStep: 0.005})
		if err != nil {
			return false
		}
		if err := withEx.SetExtras(extras); err != nil {
			return false
		}
		res, err := withEx.ClearWithExtras(bids)
		if err != nil {
			return false
		}
		if err := withEx.VerifyExtras(res.Allocations); err != nil {
			return false
		}
		if err := withEx.VerifyFeasible(res.Allocations); err != nil {
			return false
		}
		plain, err := NewMarket(cons, Options{PriceStep: 0.005})
		if err != nil {
			return false
		}
		base, err := plain.Clear(bids)
		if err != nil {
			return false
		}
		// Extra constraints can only reduce the achievable revenue (up to
		// one grid step of slack from the differing scan origins).
		slack := 0.005*res.TotalWatts/1000 + 1e-9
		return res.RevenueRate <= base.RevenueRate+slack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
