package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Auditor is the market core's inline conservation checker: attached via
// Options.Audit, it re-verifies the paper's settlement invariants after
// every clearing —
//
//   - one grant per bid, in bid order, on the bid's rack;
//   - every grant within [0, min(rack headroom, bid's MaxDemand)] (the
//     [qmin,qmax] envelope of Eqn. 5 materialized in watts);
//   - no positive grant priced above the bid's maximum acceptable price;
//   - Σ grants ≤ predicted spot at every PDU and at the UPS (Eqns. 2–4);
//   - Σ grants == Result.TotalWatts and
//     Result.RevenueRate == Price × TotalWatts / 1000, within auditEps.
//
// Like MarketMetrics it is a handle, not a map: the per-clearing pass is a
// single loop over the bids using market-owned scratch, with zero
// steady-state allocations, so it preserves the clearing alloc budgets
// (0 scan / ≤32 exact). A nil Auditor disables auditing at the cost of one
// branch per Clear. One Auditor may be shared by many markets (e.g. a
// parallel scenario fan-out): the counters are atomic and the scratch
// belongs to each Market, not the Auditor.
//
// Deeper checks that need extra demand-curve evaluations (exact-vs-scan
// engine agreement, Demand(price) consistency of every grant) run offline
// in internal/audit over a schema-v2 slot journal, keeping the inline pass
// within its ≤5% overhead budget.
type Auditor struct {
	// OnViolation, if non-nil, observes every violation as it is found (on
	// the clearing goroutine). Leave nil to just count and inspect Err()
	// afterwards. Note the violation is reported on an otherwise successful
	// Result: Clear does not fail the slot, callers decide.
	OnViolation func(error)

	violations atomic.Int64
	mu         sync.Mutex
	firstErr   error
}

// Violations returns how many invariant violations have been recorded.
func (a *Auditor) Violations() int64 {
	if a == nil {
		return 0
	}
	return a.violations.Load()
}

// Err returns the first recorded violation (nil when the books balance).
func (a *Auditor) Err() error {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.firstErr
}

// report records one violation. Only the violation path allocates (the
// error); clean clearings never reach it.
func (a *Auditor) report(err error) {
	a.violations.Add(1)
	a.mu.Lock()
	if a.firstErr == nil {
		a.firstErr = err
	}
	a.mu.Unlock()
	if a.OnViolation != nil {
		a.OnViolation(err)
	}
}

// auditEps returns the comparison tolerance for a sum of magnitude scale:
// the absolute feasEps floor plus a relative term covering re-association
// error when the auditor re-sums thousands of grants in a different order
// than the engine did (documented in DESIGN.md §4e).
func auditEps(scale float64) float64 {
	return feasEps + 1e-12*math.Abs(scale)
}

// auditClear runs the inline invariant pass over a finished clearing. It
// reuses the market's audit scratch buffer (grown once, then steady-state
// allocation-free) and performs only O(1) work per bid.
func (m *Market) auditClear(aud *Auditor, bids []Bid, res Result) {
	if len(res.Allocations) != len(bids) {
		aud.report(fmt.Errorf("core: audit: %d allocations for %d bids", len(res.Allocations), len(bids)))
		return
	}
	load := f64s(m.auditLoad, len(m.cons.PDUSpot))
	m.auditLoad = load
	for i := range load {
		load[i] = 0
	}
	total := 0.0
	for i, b := range bids {
		a := res.Allocations[i]
		if a.Rack != b.Rack {
			aud.report(fmt.Errorf("core: audit: allocation %d on rack %d, bid on rack %d", i, a.Rack, b.Rack))
			continue
		}
		if a.Watts < 0 {
			aud.report(fmt.Errorf("core: audit: rack %d granted negative power %v W", a.Rack, a.Watts))
			continue
		}
		if hr := m.cons.RackHeadroom[a.Rack]; a.Watts > hr+feasEps {
			aud.report(fmt.Errorf("core: audit: rack %d granted %v W beyond headroom %v W (Eqn. 2)", a.Rack, a.Watts, hr))
		}
		// The envelope reads are per-bid hot-path work: LinearBid (the only
		// demand form the wire protocol carries) gets a concrete fast path
		// so the common case pays field loads, not two virtual calls.
		var dm, mp float64
		if lb, ok := b.Fn.(LinearBid); ok {
			dm, mp = lb.DMax, lb.QMax
		} else {
			dm, mp = b.Fn.MaxDemand(), b.Fn.MaxPrice()
		}
		if a.Watts > dm+feasEps {
			aud.report(fmt.Errorf("core: audit: rack %d granted %v W beyond its bid's max demand %v W", a.Rack, a.Watts, dm))
		}
		if a.Watts > feasEps && res.Price > mp+1e-12 {
			aud.report(fmt.Errorf("core: audit: rack %d granted %v W at price %v above its max acceptable price %v",
				a.Rack, a.Watts, res.Price, mp))
		}
		load[m.cons.RackPDU[a.Rack]] += a.Watts
		total += a.Watts
	}
	for pdu, l := range load {
		if lim := m.cons.PDUSpot[pdu]; l > lim+auditEps(lim) {
			aud.report(fmt.Errorf("core: audit: PDU %d granted %v W beyond spot %v W (Eqn. 3)", pdu, l, lim))
		}
	}
	if lim := m.cons.UPSSpot; total > lim+auditEps(lim) {
		aud.report(fmt.Errorf("core: audit: UPS granted %v W beyond spot %v W (Eqn. 4)", total, lim))
	}
	if d := math.Abs(total - res.TotalWatts); d > auditEps(total) {
		aud.report(fmt.Errorf("core: audit: grants sum to %v W but TotalWatts is %v W (Δ %v)", total, res.TotalWatts, d))
	}
	wantRev := res.Price * res.TotalWatts / 1000
	if d := math.Abs(res.RevenueRate - wantRev); d > revEps+1e-12*math.Abs(wantRev) {
		aud.report(fmt.Errorf("core: audit: revenue rate %v $/h, want price×watts/1000 = %v $/h (Δ %v)",
			res.RevenueRate, wantRev, d))
	}
	if m.extras != nil {
		if err := m.VerifyExtras(res.Allocations); err != nil {
			aud.report(fmt.Errorf("core: audit: %w", err))
		}
	}
}
