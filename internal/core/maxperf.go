package core

import (
	"container/heap"
	"fmt"
)

// GainFunc maps spot capacity (watts) granted to a rack to the tenant's
// performance gain in $/h. MaxPerf assumes the function is concave and
// non-decreasing, which holds for the paper's power-performance models.
type GainFunc func(watts float64) float64

// MaxPerfRequest describes one rack's participation in the MaxPerf
// baseline, where the operator sees tenants' true gain curves (as if it
// owned the servers, like the power-routing work [9] the paper compares to).
type MaxPerfRequest struct {
	Rack int
	// MaxWatts caps how much spot capacity the rack can absorb.
	MaxWatts float64
	// Gain is the rack's performance-gain curve.
	Gain GainFunc
}

// MaxPerfOptions tunes the greedy water-filling.
type MaxPerfOptions struct {
	// QuantumWatts is the allocation granularity (default 1 W).
	QuantumWatts float64
}

type mpCandidate struct {
	idx      int     // index into requests
	quanta   int     // chunk size in quanta
	marginal float64 // average gain per watt over the chunk
}

type mpHeap []mpCandidate

func (h mpHeap) Len() int            { return len(h) }
func (h mpHeap) Less(i, j int) bool  { return h[i].marginal > h[j].marginal }
func (h mpHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mpHeap) Push(x interface{}) { *h = append(*h, x.(mpCandidate)) }
func (h *mpHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// MaxPerf allocates spot capacity to maximize total performance gain
// subject to the same Eqn. (2)–(4) constraints, with no payments: the
// owner-operated-data-center baseline of Section V-B. It greedily
// water-fills the rack with the highest *average* marginal gain over the
// best-sized chunk of quanta — the concave-envelope variant of marginal
// greedy. The chunk lookahead matters because sprinting tenants' gain
// curves have a threshold shape: the first watts buy nothing until the
// service rate crosses the load, then the gain jumps.
func MaxPerf(cons Constraints, reqs []MaxPerfRequest, opts MaxPerfOptions) ([]Allocation, error) {
	if err := cons.Validate(); err != nil {
		return nil, err
	}
	quantum := opts.QuantumWatts
	if quantum <= 0 {
		quantum = 1
	}
	for _, r := range reqs {
		if r.Rack < 0 || r.Rack >= len(cons.RackHeadroom) {
			return nil, fmt.Errorf("%w: request references rack %d of %d", ErrConstraints, r.Rack, len(cons.RackHeadroom))
		}
		if r.Gain == nil {
			return nil, fmt.Errorf("core: request for rack %d has nil gain function", r.Rack)
		}
		if r.MaxWatts < 0 {
			return nil, fmt.Errorf("core: request for rack %d has negative MaxWatts", r.Rack)
		}
	}

	allocated := make([]float64, len(reqs))
	pduUsed := make([]float64, len(cons.PDUSpot))
	upsUsed := 0.0

	limit := func(i int) float64 {
		r := reqs[i]
		lim := r.MaxWatts
		if hr := cons.RackHeadroom[r.Rack]; hr < lim {
			lim = hr
		}
		return lim
	}
	// bestChunk finds the chunk size (in quanta) with the highest average
	// gain per watt that still fits every constraint.
	bestChunk := func(i int) (mpCandidate, bool) {
		cur := allocated[i]
		rem := limit(i) - cur
		pdu := cons.RackPDU[reqs[i].Rack]
		if r := cons.PDUSpot[pdu] - pduUsed[pdu]; r < rem {
			rem = r
		}
		if r := cons.UPSSpot - upsUsed; r < rem {
			rem = r
		}
		maxK := int((rem + feasEps) / quantum)
		if maxK <= 0 {
			return mpCandidate{}, false
		}
		g0 := reqs[i].Gain(cur)
		best := mpCandidate{idx: i}
		for k := 1; k <= maxK; k++ {
			avg := (reqs[i].Gain(cur+float64(k)*quantum) - g0) / (float64(k) * quantum)
			if avg > best.marginal+feasEps {
				best.marginal = avg
				best.quanta = k
			}
		}
		return best, best.quanta > 0 && best.marginal > 0
	}

	h := &mpHeap{}
	for i := range reqs {
		if c, ok := bestChunk(i); ok {
			heap.Push(h, c)
		}
	}
	for h.Len() > 0 {
		top := heap.Pop(h).(mpCandidate)
		// Re-validate: constraints may have tightened since it was pushed.
		fresh, ok := bestChunk(top.idx)
		if !ok {
			continue
		}
		if fresh.marginal < top.marginal-feasEps {
			// Stale priority: re-queue with the fresh value. Averages only
			// ever shrink as capacity is consumed, so this terminates.
			heap.Push(h, fresh)
			continue
		}
		i := top.idx
		w := float64(fresh.quanta) * quantum
		allocated[i] += w
		pduUsed[cons.RackPDU[reqs[i].Rack]] += w
		upsUsed += w
		if c, ok := bestChunk(i); ok {
			heap.Push(h, c)
		}
	}

	out := make([]Allocation, len(reqs))
	for i, r := range reqs {
		out[i] = Allocation{Rack: r.Rack, Watts: allocated[i]}
	}
	return out, nil
}

// TotalGain evaluates the summed performance gain of an allocation under
// the given requests (requests and allocations must be index-aligned, as
// returned by MaxPerf).
func TotalGain(reqs []MaxPerfRequest, allocs []Allocation) float64 {
	sum := 0.0
	for i, a := range allocs {
		if i < len(reqs) && reqs[i].Gain != nil {
			sum += reqs[i].Gain(a.Watts)
		}
	}
	return sum
}
