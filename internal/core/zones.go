package core

import "fmt"

// The paper notes (Section III-A) that further practical constraints —
// heat density (limiting server power over an area to bound the cooling
// load) and phase balance (keeping the three phases of a PDU/UPS within a
// tolerance of each other) — can be incorporated into spot capacity
// allocation following the power-routing model [9]. This file adds both as
// optional extensions of Constraints; they participate in feasibility,
// rationing, allocation verification, and MaxPerf.

// Zone is a heat-density (cooling) constraint: the summed spot capacity
// granted to its racks must not exceed MaxWatts, independent of PDU
// membership.
type Zone struct {
	// Name labels the zone (e.g. a row or cold aisle).
	Name string
	// Racks lists the member rack indices.
	Racks []int
	// MaxWatts is the zone's spot-capacity limit in watts.
	MaxWatts float64
}

// PhaseOf maps racks to the electrical phase (0, 1 or 2) feeding them.
// Three-phase balance is enforced per PDU.
type PhaseOf []int

// Extras carries the optional Section III-A constraints.
type Extras struct {
	// Zones lists heat-density constraints.
	Zones []Zone
	// RackPhase assigns each rack a phase 0–2; nil disables phase checks.
	RackPhase PhaseOf
	// PhaseImbalance is the tolerated fractional deviation of any phase's
	// spot allocation from the per-PDU phase mean (e.g. 0.2 allows a phase
	// to carry up to 120% of the mean). Values ≤ 0 default to 0.25.
	PhaseImbalance float64
}

func (e *Extras) imbalance() float64 {
	if e.PhaseImbalance <= 0 {
		return 0.25
	}
	return e.PhaseImbalance
}

// validateExtras checks extras against the base constraints.
func (c Constraints) validateExtras(e *Extras) error {
	if e == nil {
		return nil
	}
	for zi, z := range e.Zones {
		if z.MaxWatts < 0 {
			return fmt.Errorf("%w: zone %d (%s) max %v negative", ErrConstraints, zi, z.Name, z.MaxWatts)
		}
		for _, r := range z.Racks {
			if r < 0 || r >= len(c.RackHeadroom) {
				return fmt.Errorf("%w: zone %d (%s) references rack %d of %d",
					ErrConstraints, zi, z.Name, r, len(c.RackHeadroom))
			}
		}
	}
	if e.RackPhase != nil {
		if len(e.RackPhase) != len(c.RackHeadroom) {
			return fmt.Errorf("%w: %d phase assignments for %d racks",
				ErrConstraints, len(e.RackPhase), len(c.RackHeadroom))
		}
		for r, ph := range e.RackPhase {
			if ph < 0 || ph > 2 {
				return fmt.Errorf("%w: rack %d assigned phase %d (want 0-2)", ErrConstraints, r, ph)
			}
		}
	}
	return nil
}

// SetExtras installs (or clears, with nil) the optional constraints.
func (m *Market) SetExtras(e *Extras) error {
	if err := m.cons.validateExtras(e); err != nil {
		return err
	}
	if e != nil {
		cp := *e
		cp.Zones = append([]Zone(nil), e.Zones...)
		if e.RackPhase != nil {
			cp.RackPhase = append(PhaseOf(nil), e.RackPhase...)
		}
		m.extras = &cp
	} else {
		m.extras = nil
	}
	return nil
}

// extrasFeasible reports whether the per-rack served demands (already
// clamped to rack headroom) satisfy the zone and phase constraints.
// serve(rack) must return the rack's tentative grant.
func (m *Market) extrasFeasible(bids []Bid, serve func(b Bid) float64) bool {
	e := m.extras
	if e == nil {
		return true
	}
	if len(e.Zones) > 0 {
		zoneLoad := make(map[int]float64, len(e.Zones))
		rackGrant := make(map[int]float64, len(bids))
		for _, b := range bids {
			rackGrant[b.Rack] += serve(b)
		}
		for zi, z := range e.Zones {
			for _, r := range z.Racks {
				zoneLoad[zi] += rackGrant[r]
			}
			if zoneLoad[zi] > z.MaxWatts+feasEps {
				return false
			}
		}
	}
	if e.RackPhase != nil {
		if !m.phasesBalanced(bids, serve) {
			return false
		}
	}
	return true
}

// phasesBalanced checks the per-PDU three-phase balance of the tentative
// grants.
func (m *Market) phasesBalanced(bids []Bid, serve func(b Bid) float64) bool {
	e := m.extras
	tol := e.imbalance()
	// phase load per PDU: index pdu*3+phase.
	loads := make([]float64, len(m.cons.PDUSpot)*3)
	for _, b := range bids {
		w := serve(b)
		if w <= 0 {
			continue
		}
		pdu := m.cons.RackPDU[b.Rack]
		loads[pdu*3+e.RackPhase[b.Rack]] += w
	}
	for pdu := 0; pdu < len(m.cons.PDUSpot); pdu++ {
		a, bb, c := loads[pdu*3], loads[pdu*3+1], loads[pdu*3+2]
		mean := (a + bb + c) / 3
		if mean <= feasEps {
			continue
		}
		limit := mean * (1 + tol)
		if a > limit+feasEps || bb > limit+feasEps || c > limit+feasEps {
			return false
		}
	}
	return true
}

// VerifyExtras confirms an allocation against the installed zone and phase
// constraints (no-op when none are installed).
func (m *Market) VerifyExtras(allocs []Allocation) error {
	e := m.extras
	if e == nil {
		return nil
	}
	rackGrant := make(map[int]float64, len(allocs))
	for _, a := range allocs {
		rackGrant[a.Rack] += a.Watts
	}
	for zi, z := range e.Zones {
		load := 0.0
		for _, r := range z.Racks {
			load += rackGrant[r]
		}
		if load > z.MaxWatts+feasEps {
			return fmt.Errorf("core: zone %d (%s) allocated %v W beyond %v W (heat density)",
				zi, z.Name, load, z.MaxWatts)
		}
	}
	if e.RackPhase != nil {
		loads := make([]float64, len(m.cons.PDUSpot)*3)
		for r, w := range rackGrant {
			loads[m.cons.RackPDU[r]*3+e.RackPhase[r]] += w
		}
		tol := e.imbalance()
		for pdu := 0; pdu < len(m.cons.PDUSpot); pdu++ {
			a, b, c := loads[pdu*3], loads[pdu*3+1], loads[pdu*3+2]
			mean := (a + b + c) / 3
			if mean <= feasEps {
				continue
			}
			limit := mean * (1 + tol)
			for ph, w := range []float64{a, b, c} {
				if w > limit+feasEps {
					return fmt.Errorf("core: PDU %d phase %d carries %v W, beyond %v W (balance tolerance %v)",
						pdu, ph, w, limit, tol)
				}
			}
		}
	}
	return nil
}

// ClearWithExtras clears the market honouring the installed zone and phase
// constraints. Unlike the base constraints, phase balance is NOT monotone
// in price (a high price can drop one phase's bidders entirely and
// unbalance the rest), so the search scans every candidate price and keeps
// the best feasible one instead of bisecting a feasibility frontier.
func (m *Market) ClearWithExtras(bids []Bid) (Result, error) {
	if m.extras == nil {
		return m.Clear(bids)
	}
	if err := m.validateBids(bids); err != nil {
		return Result{}, err
	}
	floor := m.opts.ReservePrice
	if floor < 0 {
		floor = 0
	}
	res := Result{Price: floor}
	if len(bids) == 0 {
		return res, nil
	}
	hi := floor
	for _, b := range bids {
		if p := b.Fn.MaxPrice(); p > hi {
			hi = p
		}
	}
	step := m.opts.step()
	serveAt := func(price float64) func(b Bid) float64 {
		return func(b Bid) float64 {
			d := b.Fn.Demand(price)
			if hr := m.cons.RackHeadroom[b.Rack]; d > hr {
				d = hr
			}
			if d < 0 {
				return 0
			}
			return d
		}
	}
	feasible := func(price float64) bool {
		return m.feasibleAt(bids, price) && m.extrasFeasible(bids, serveAt(price))
	}

	bestPrice, bestRevenue, bestWatts := floor, -1.0, 0.0
	evals := 0
	// Integer-indexed grid (floor + i*step) so prices stay exactly on the
	// advertised resolution, and the dedicated revenue epsilon so the
	// winner-comparison tolerance is not tied to the watts-scale feasEps.
	// Ascending order + strict improvement tie-breaks toward the lower price.
	for i := 0; ; i++ {
		q := floor + float64(i)*step
		if q > hi+step/2 {
			break
		}
		evals++
		if !feasible(q) {
			continue
		}
		watts := m.servedAt(bids, q)
		rev := q * watts / 1000
		if rev > bestRevenue+revEps {
			bestPrice, bestRevenue, bestWatts = q, rev, watts
		}
	}
	if bestRevenue < 0 {
		// No feasible price sells anything: the market idles above every
		// max price, where demand (and hence every constraint load) is 0.
		bestPrice, bestRevenue, bestWatts = hi+step, 0, 0
	}
	res.Price = bestPrice
	res.TotalWatts = bestWatts
	res.RevenueRate = bestRevenue
	res.Evaluations = evals
	res.Allocations = m.allocs(len(bids))
	serve := serveAt(bestPrice)
	for i, b := range bids {
		res.Allocations[i] = Allocation{Rack: b.Rack, Tenant: b.Tenant, Watts: serve(b)}
	}
	if aud := m.opts.Audit; aud != nil {
		m.auditClear(aud, bids, res)
	}
	return res, nil
}
