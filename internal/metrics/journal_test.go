package metrics

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestJournalAppendsJSONLines(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	events := []SlotEvent{
		{Slot: 0, Price: 0.05, SoldWatts: 120, Revenue: 0.0001, Grants: 3, Bids: 5, ClearMicros: 42},
		{Slot: 1, Degraded: true, Err: "poisoned reading", Bids: 5},
		{Slot: 2, Price: 0.06, SoldWatts: 80, Revenue: 0.00008, Grants: 2, Bids: 4, ClearMicros: 17,
			FaultDrops: 3, FaultDelays: 1, FaultSevers: 1},
	}
	for _, ev := range events {
		if err := j.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if j.Events() != len(events) {
		t.Errorf("Events() = %d, want %d", j.Events(), len(events))
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(events) {
		t.Fatalf("wrote %d lines, want %d", len(lines), len(events))
	}
	for i, line := range lines {
		var got SlotEvent
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
		if !reflect.DeepEqual(got, events[i]) {
			t.Errorf("line %d round-trip = %+v, want %+v", i, got, events[i])
		}
	}
	// The omitempty contract keeps clean-slot lines compact.
	if strings.Contains(lines[0], "degraded") || strings.Contains(lines[0], "fault_drops") {
		t.Errorf("clean slot carries degraded/fault fields: %s", lines[0])
	}
}

func TestJournalV2RoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	hdr := JournalHeader{
		UPSCapacity: 1000,
		PDUCapacity: []float64{600, 600},
		Racks: []JournalRack{
			{ID: "S-1", Tenant: "Search", PDU: 0, Guaranteed: 200, Headroom: 60},
			{ID: "O-1", Tenant: "Sort", PDU: 1, Guaranteed: 180, Headroom: 40},
		},
		PriceStep:       0.001,
		UnderPrediction: 0.05,
		SlotHours:       1.0 / 12,
	}
	if err := j.Header(hdr); err != nil {
		t.Fatal(err)
	}
	if !j.HasHeader() {
		t.Error("HasHeader() = false after Header")
	}
	// A second header, or one after events, must be rejected.
	if err := j.Header(hdr); err == nil {
		t.Error("second Header accepted")
	}
	events := []SlotEvent{
		{Slot: 0, Price: 0.05, SoldWatts: 90, Revenue: 0.000375, Grants: 2, Bids: 2,
			Algorithm: "exact", Evaluations: 7,
			BidSet: []BidRecord{
				{Rack: 0, Tenant: "Search", DMax: 0.09, DMin: 0.01, QMin: 10, QMax: 60},
				{Rack: 1, Tenant: "Sort", DMax: 0.08, DMin: 0.02, QMin: 5, QMax: 40},
			},
			GrantSet:      []GrantRecord{{Rack: 0, Watts: 55}, {Rack: 1, Watts: 35}},
			PDUSpot:       []float64{120, 80},
			UPSSpot:       150,
			RackWatts:     []float64{150, 135},
			OtherPDUWatts: []float64{300, 280},
		},
		{Slot: 1, Degraded: true, Err: "poisoned reading", Bids: 2},
	}
	for _, ev := range events {
		if err := j.Append(ev); err != nil {
			t.Fatal(err)
		}
	}

	gotHdr, gotEvents, err := ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gotHdr == nil {
		t.Fatal("ReadJournal returned nil header for a v2 journal")
	}
	wantHdr := hdr
	wantHdr.Schema = JournalSchemaV2
	if !reflect.DeepEqual(*gotHdr, wantHdr) {
		t.Errorf("header round-trip = %+v, want %+v", *gotHdr, wantHdr)
	}
	if !reflect.DeepEqual(gotEvents, events) {
		t.Errorf("events round-trip = %+v, want %+v", gotEvents, events)
	}
}

func TestReadJournalV1(t *testing.T) {
	// A headerless journal is v1: nil header, every line an event.
	in := `{"slot":0,"price":0.05,"sold_watts":10,"revenue":0.0001,"grants":1,"bids":2,"clear_us":9}
{"slot":1,"price":0,"sold_watts":0,"revenue":0,"grants":0,"bids":2,"degraded":true,"err":"x","clear_us":0}
`
	hdr, events, err := ReadJournal(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if hdr != nil {
		t.Errorf("v1 journal yielded header %+v", hdr)
	}
	if len(events) != 2 || events[0].Slot != 0 || !events[1].Degraded {
		t.Errorf("events = %+v", events)
	}
}

func TestReadJournalUnknownSchema(t *testing.T) {
	if _, _, err := ReadJournal(strings.NewReader(`{"schema":"spotdc/slot-journal/v9"}`)); err == nil {
		t.Error("unknown schema accepted")
	}
}

type failWriter struct{ err error }

func (w failWriter) Write([]byte) (int, error) { return 0, w.err }

func TestJournalStickyError(t *testing.T) {
	boom := errors.New("disk full")
	j := NewJournal(failWriter{boom})
	if err := j.Append(SlotEvent{Slot: 0}); !errors.Is(err, boom) {
		t.Fatalf("Append = %v, want %v", err, boom)
	}
	// The error is sticky and events never count.
	if err := j.Append(SlotEvent{Slot: 1}); !errors.Is(err, boom) {
		t.Fatalf("second Append = %v, want sticky %v", err, boom)
	}
	if j.Events() != 0 {
		t.Errorf("Events() = %d after write failures", j.Events())
	}
	if !errors.Is(j.Err(), boom) {
		t.Errorf("Err() = %v, want %v", j.Err(), boom)
	}
}

func TestReadJournalToleratesTornFinalLine(t *testing.T) {
	in := `{"slot":0,"price":0.05,"sold_watts":10,"revenue":0.0001,"grants":1,"bids":2,"clear_us":9}
{"slot":1,"price":0.06,"sold_watts":12,"revenue":0.0002,"grants":1,"bids":2,"clear_us":8}
{"slot":2,"price":0.07,"sold_wat`
	hdr, events, torn, err := ReadJournalInfo(strings.NewReader(in))
	if err != nil {
		t.Fatalf("torn tail should not fail the read: %v", err)
	}
	if hdr != nil || len(events) != 2 || !torn {
		t.Fatalf("hdr=%v events=%d torn=%v, want nil/2/true", hdr, len(events), torn)
	}
	// ReadJournal drops the tail silently.
	if _, events, err = ReadJournal(strings.NewReader(in)); err != nil || len(events) != 2 {
		t.Fatalf("ReadJournal: %d events, %v", len(events), err)
	}
}

func TestReadJournalTornOnlyLineIsError(t *testing.T) {
	// Torn-tail tolerance needs at least one valid line before the tear:
	// a file whose only line is unparseable — a header torn mid-append, or
	// a file that was never a journal — is a hard error, not an empty
	// journal. (spotdc-audit on a garbage file must keep exiting non-zero.)
	for _, in := range []string{`{"schema":"spotdc/sl`, "garbage\n"} {
		if _, _, _, err := ReadJournalInfo(strings.NewReader(in)); err == nil {
			t.Errorf("%q parsed as an (empty, torn) journal, want error", in)
		}
	}
}

func TestReadJournalMidFileCorruptionStillFatal(t *testing.T) {
	in := `{"slot":0,"price":0.05,"sold_watts":10,"revenue":0,"grants":1,"bids":2,"clear_us":9}
{"slot":1,"garbage
{"slot":2,"price":0.07,"sold_watts":14,"revenue":0,"grants":1,"bids":2,"clear_us":7}
`
	if _, _, _, err := ReadJournalInfo(strings.NewReader(in)); err == nil {
		t.Fatal("mid-file corruption tolerated")
	}
}

type syncCounter struct {
	bytes.Buffer
	syncs int
}

func (s *syncCounter) Sync() error { s.syncs++; return nil }

func TestJournalSyncEvery(t *testing.T) {
	var sink syncCounter
	j := NewJournalOpts(&sink, JournalOptions{SyncEvery: 3})
	for i := 0; i < 10; i++ {
		if err := j.Append(SlotEvent{Slot: i}); err != nil {
			t.Fatal(err)
		}
	}
	if sink.syncs != 3 {
		t.Errorf("syncs = %d after 10 appends with SyncEvery=3, want 3", sink.syncs)
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if sink.syncs != 4 {
		t.Errorf("explicit Sync did not reach the sink (syncs = %d)", sink.syncs)
	}
	// Non-syncable sinks are a no-op, not an error.
	if err := NewJournal(&bytes.Buffer{}).Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestJournalResumedSkipsHeader(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournalOpts(&buf, JournalOptions{Resumed: true})
	if !j.HasHeader() {
		t.Fatal("resumed journal should report an existing header")
	}
	if err := j.Header(JournalHeader{}); err == nil {
		t.Fatal("resumed journal accepted a second header")
	}
	if err := j.Append(SlotEvent{Slot: 7}); err != nil {
		t.Fatal(err)
	}
	// Only the event line lands in the resumed file.
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 1 || !strings.Contains(lines[0], `"slot":7`) {
		t.Fatalf("resumed journal wrote %q", buf.String())
	}
}
