package metrics

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestJournalAppendsJSONLines(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	events := []SlotEvent{
		{Slot: 0, Price: 0.05, SoldWatts: 120, Revenue: 0.0001, Grants: 3, Bids: 5, ClearMicros: 42},
		{Slot: 1, Degraded: true, Err: "poisoned reading", Bids: 5},
		{Slot: 2, Price: 0.06, SoldWatts: 80, Revenue: 0.00008, Grants: 2, Bids: 4, ClearMicros: 17,
			FaultDrops: 3, FaultDelays: 1, FaultSevers: 1},
	}
	for _, ev := range events {
		if err := j.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if j.Events() != len(events) {
		t.Errorf("Events() = %d, want %d", j.Events(), len(events))
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(events) {
		t.Fatalf("wrote %d lines, want %d", len(lines), len(events))
	}
	for i, line := range lines {
		var got SlotEvent
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
		if !reflect.DeepEqual(got, events[i]) {
			t.Errorf("line %d round-trip = %+v, want %+v", i, got, events[i])
		}
	}
	// The omitempty contract keeps clean-slot lines compact.
	if strings.Contains(lines[0], "degraded") || strings.Contains(lines[0], "fault_drops") {
		t.Errorf("clean slot carries degraded/fault fields: %s", lines[0])
	}
}

func TestJournalV2RoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	hdr := JournalHeader{
		UPSCapacity: 1000,
		PDUCapacity: []float64{600, 600},
		Racks: []JournalRack{
			{ID: "S-1", Tenant: "Search", PDU: 0, Guaranteed: 200, Headroom: 60},
			{ID: "O-1", Tenant: "Sort", PDU: 1, Guaranteed: 180, Headroom: 40},
		},
		PriceStep:       0.001,
		UnderPrediction: 0.05,
		SlotHours:       1.0 / 12,
	}
	if err := j.Header(hdr); err != nil {
		t.Fatal(err)
	}
	if !j.HasHeader() {
		t.Error("HasHeader() = false after Header")
	}
	// A second header, or one after events, must be rejected.
	if err := j.Header(hdr); err == nil {
		t.Error("second Header accepted")
	}
	events := []SlotEvent{
		{Slot: 0, Price: 0.05, SoldWatts: 90, Revenue: 0.000375, Grants: 2, Bids: 2,
			Algorithm: "exact", Evaluations: 7,
			BidSet: []BidRecord{
				{Rack: 0, Tenant: "Search", DMax: 0.09, DMin: 0.01, QMin: 10, QMax: 60},
				{Rack: 1, Tenant: "Sort", DMax: 0.08, DMin: 0.02, QMin: 5, QMax: 40},
			},
			GrantSet:      []GrantRecord{{Rack: 0, Watts: 55}, {Rack: 1, Watts: 35}},
			PDUSpot:       []float64{120, 80},
			UPSSpot:       150,
			RackWatts:     []float64{150, 135},
			OtherPDUWatts: []float64{300, 280},
		},
		{Slot: 1, Degraded: true, Err: "poisoned reading", Bids: 2},
	}
	for _, ev := range events {
		if err := j.Append(ev); err != nil {
			t.Fatal(err)
		}
	}

	gotHdr, gotEvents, err := ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gotHdr == nil {
		t.Fatal("ReadJournal returned nil header for a v2 journal")
	}
	wantHdr := hdr
	wantHdr.Schema = JournalSchemaV2
	if !reflect.DeepEqual(*gotHdr, wantHdr) {
		t.Errorf("header round-trip = %+v, want %+v", *gotHdr, wantHdr)
	}
	if !reflect.DeepEqual(gotEvents, events) {
		t.Errorf("events round-trip = %+v, want %+v", gotEvents, events)
	}
}

func TestReadJournalV1(t *testing.T) {
	// A headerless journal is v1: nil header, every line an event.
	in := `{"slot":0,"price":0.05,"sold_watts":10,"revenue":0.0001,"grants":1,"bids":2,"clear_us":9}
{"slot":1,"price":0,"sold_watts":0,"revenue":0,"grants":0,"bids":2,"degraded":true,"err":"x","clear_us":0}
`
	hdr, events, err := ReadJournal(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if hdr != nil {
		t.Errorf("v1 journal yielded header %+v", hdr)
	}
	if len(events) != 2 || events[0].Slot != 0 || !events[1].Degraded {
		t.Errorf("events = %+v", events)
	}
}

func TestReadJournalUnknownSchema(t *testing.T) {
	if _, _, err := ReadJournal(strings.NewReader(`{"schema":"spotdc/slot-journal/v9"}`)); err == nil {
		t.Error("unknown schema accepted")
	}
}

type failWriter struct{ err error }

func (w failWriter) Write([]byte) (int, error) { return 0, w.err }

func TestJournalStickyError(t *testing.T) {
	boom := errors.New("disk full")
	j := NewJournal(failWriter{boom})
	if err := j.Append(SlotEvent{Slot: 0}); !errors.Is(err, boom) {
		t.Fatalf("Append = %v, want %v", err, boom)
	}
	// The error is sticky and events never count.
	if err := j.Append(SlotEvent{Slot: 1}); !errors.Is(err, boom) {
		t.Fatalf("second Append = %v, want sticky %v", err, boom)
	}
	if j.Events() != 0 {
		t.Errorf("Events() = %d after write failures", j.Events())
	}
	if !errors.Is(j.Err(), boom) {
		t.Errorf("Err() = %v, want %v", j.Err(), boom)
	}
}
