package metrics

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestJournalAppendsJSONLines(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	events := []SlotEvent{
		{Slot: 0, Price: 0.05, SoldWatts: 120, Revenue: 0.0001, Grants: 3, Bids: 5, ClearMicros: 42},
		{Slot: 1, Degraded: true, Err: "poisoned reading", Bids: 5},
		{Slot: 2, Price: 0.06, SoldWatts: 80, Revenue: 0.00008, Grants: 2, Bids: 4, ClearMicros: 17,
			FaultDrops: 3, FaultDelays: 1, FaultSevers: 1},
	}
	for _, ev := range events {
		if err := j.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if j.Events() != len(events) {
		t.Errorf("Events() = %d, want %d", j.Events(), len(events))
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(events) {
		t.Fatalf("wrote %d lines, want %d", len(lines), len(events))
	}
	for i, line := range lines {
		var got SlotEvent
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
		if got != events[i] {
			t.Errorf("line %d round-trip = %+v, want %+v", i, got, events[i])
		}
	}
	// The omitempty contract keeps clean-slot lines compact.
	if strings.Contains(lines[0], "degraded") || strings.Contains(lines[0], "fault_drops") {
		t.Errorf("clean slot carries degraded/fault fields: %s", lines[0])
	}
}

type failWriter struct{ err error }

func (w failWriter) Write([]byte) (int, error) { return 0, w.err }

func TestJournalStickyError(t *testing.T) {
	boom := errors.New("disk full")
	j := NewJournal(failWriter{boom})
	if err := j.Append(SlotEvent{Slot: 0}); !errors.Is(err, boom) {
		t.Fatalf("Append = %v, want %v", err, boom)
	}
	// The error is sticky and events never count.
	if err := j.Append(SlotEvent{Slot: 1}); !errors.Is(err, boom) {
		t.Fatalf("second Append = %v, want sticky %v", err, boom)
	}
	if j.Events() != 0 {
		t.Errorf("Events() = %d after write failures", j.Events())
	}
	if !errors.Is(j.Err(), boom) {
		t.Errorf("Err() = %v, want %v", j.Err(), boom)
	}
}
