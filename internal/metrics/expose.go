package metrics

import (
	"bufio"
	"io"
	"math"
	"strconv"
	"strings"
)

// escapeHelp escapes a HELP text per the Prometheus text format: backslash
// and newline are escaped; everything else passes through. The loop is
// byte-oriented on purpose — the escaped characters are ASCII, and byte
// processing preserves arbitrary (even invalid-UTF-8) input exactly, which
// FuzzEscapeRoundTrip relies on.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// escapeLabel escapes a label value: backslash, double quote and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// unescapeValue inverts escapeHelp/escapeLabel (they escape supersets of the
// same three sequences). Unknown escapes pass the backslash through, per the
// Prometheus parsers' lenient behavior.
func unescapeValue(s string) string {
	if !strings.Contains(s, `\`) {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
				i++
				continue
			case 'n':
				b.WriteByte('\n')
				i++
				continue
			case '"':
				b.WriteByte('"')
				i++
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// formatFloat renders a sample value the way Prometheus expects: shortest
// round-trippable decimal, with +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeLabels renders {k1="v1",k2="v2"} (plus an optional trailing le label
// for histogram buckets); it writes nothing when there are no labels.
func writeLabels(w *bufio.Writer, keys, vals []string, le string) {
	if len(keys) == 0 && le == "" {
		return
	}
	w.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			w.WriteByte(',')
		}
		w.WriteString(k)
		w.WriteString(`="`)
		w.WriteString(escapeLabel(vals[i]))
		w.WriteByte('"')
	}
	if le != "" {
		if len(keys) > 0 {
			w.WriteByte(',')
		}
		w.WriteString(`le="`)
		w.WriteString(le)
		w.WriteByte('"')
	}
	w.WriteByte('}')
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, samples sorted by label
// values, histograms as cumulative _bucket/_sum/_count series. The output
// is deterministic for a given registry state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, fs := range r.Snapshot() {
		if fs.Help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(fs.Name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(fs.Help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(fs.Name)
		bw.WriteByte(' ')
		bw.WriteString(fs.Kind.String())
		bw.WriteByte('\n')
		for _, s := range fs.Samples {
			switch fs.Kind {
			case KindCounter, KindGauge:
				bw.WriteString(fs.Name)
				writeLabels(bw, fs.Labels, s.LabelValues, "")
				bw.WriteByte(' ')
				bw.WriteString(formatFloat(s.Value))
				bw.WriteByte('\n')
			case KindHistogram:
				cum := uint64(0)
				for i, c := range s.BucketCounts {
					cum += c
					le := "+Inf"
					if i < len(fs.Bounds) {
						le = formatFloat(fs.Bounds[i])
					}
					bw.WriteString(fs.Name)
					bw.WriteString("_bucket")
					writeLabels(bw, fs.Labels, s.LabelValues, le)
					bw.WriteByte(' ')
					bw.WriteString(strconv.FormatUint(cum, 10))
					bw.WriteByte('\n')
				}
				bw.WriteString(fs.Name)
				bw.WriteString("_sum")
				writeLabels(bw, fs.Labels, s.LabelValues, "")
				bw.WriteByte(' ')
				bw.WriteString(formatFloat(s.Sum))
				bw.WriteByte('\n')
				bw.WriteString(fs.Name)
				bw.WriteString("_count")
				writeLabels(bw, fs.Labels, s.LabelValues, "")
				bw.WriteByte(' ')
				bw.WriteString(strconv.FormatUint(s.Count, 10))
				bw.WriteByte('\n')
			}
		}
	}
	return bw.Flush()
}
