package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// JournalSchemaV2 is the schema tag of a version-2 slot journal's header
// line. A v2 journal opens with one JournalHeader line (distinguished by
// its "schema" key) carrying the run's static configuration — topology,
// market options, prediction factor, slot length — followed by one
// SlotEvent line per slot whose cleared events capture the full slot
// inputs (bids, reading, predicted capacities). Together they make a slot
// deterministically replayable offline (cmd/spotdc-audit). A journal with
// no header line is a v1 journal: outcome-only events, still readable, but
// only the outcome-level invariants can be re-checked.
const JournalSchemaV2 = "spotdc/slot-journal/v2"

// JournalRack describes one rack in a v2 journal header.
type JournalRack struct {
	ID         string  `json:"id"`
	Tenant     string  `json:"tenant,omitempty"`
	PDU        int     `json:"pdu"`
	Guaranteed float64 `json:"guaranteed"`
	// Headroom is the rack's spot headroom P_r^R in watts.
	Headroom float64 `json:"headroom"`
}

// JournalHeader is the first line of a v2 journal: everything static a
// replay needs to rebuild the operator's market bit-for-bit.
type JournalHeader struct {
	// Schema is JournalSchemaV2.
	Schema string `json:"schema"`
	// UPSCapacity / PDUCapacity / Racks describe the power topology.
	UPSCapacity float64       `json:"ups_capacity"`
	PDUCapacity []float64     `json:"pdu_capacity"`
	Racks       []JournalRack `json:"racks"`
	// PriceStep / ReservePrice / Ration mirror the market options.
	PriceStep    float64 `json:"price_step,omitempty"`
	ReservePrice float64 `json:"reserve_price,omitempty"`
	Ration       bool    `json:"ration,omitempty"`
	// Algorithm is the configured engine ("auto", "scan" or "exact"); each
	// event additionally records the engine that actually ran.
	Algorithm string `json:"algorithm,omitempty"`
	// UnderPrediction is the prediction's conservative scaling factor.
	UnderPrediction float64 `json:"under_prediction,omitempty"`
	// SlotHours is the billed slot length in hours.
	SlotHours float64 `json:"slot_hours"`
	// BreakerTolerance is the circuit-breaker excursion tolerance the loop
	// checked emergencies with (only stamped when emergency checking ran).
	BreakerTolerance float64 `json:"breaker_tolerance,omitempty"`
	// EmergencyResponder marks a run whose operator planned reclamation on
	// excursions; EmergencyEscalation is its guaranteed-curtailment
	// severity threshold. Together with BreakerTolerance they let the
	// audit layer replay each slot's reclaim events deterministically.
	EmergencyResponder  bool    `json:"emergency_responder,omitempty"`
	EmergencyEscalation float64 `json:"emergency_escalation,omitempty"`
}

// BidRecord is the journaled wire form of one piece-wise linear rack bid
// (the four solicited parameters of Eqn. 5).
type BidRecord struct {
	Rack   int     `json:"rack"`
	Tenant string  `json:"tenant,omitempty"`
	DMax   float64 `json:"dmax"`
	DMin   float64 `json:"dmin"`
	QMin   float64 `json:"qmin"`
	QMax   float64 `json:"qmax"`
}

// GrantRecord is one positive-watt allocation of a cleared slot.
type GrantRecord struct {
	Rack  int     `json:"rack"`
	Watts float64 `json:"watts"`
}

// BudgetRecord is one rack's budget reset inside a ReclaimRecord.
type BudgetRecord struct {
	Rack        int     `json:"rack"`
	BudgetWatts float64 `json:"budget_watts"`
	// SpotCut is the watts reclaimed from draw above the rack's guarantee;
	// GuaranteedCut the watts curtailed out of the guarantee (escalation).
	SpotCut       float64 `json:"spot_cut,omitempty"`
	GuaranteedCut float64 `json:"guaranteed_cut,omitempty"`
}

// ReclaimRecord journals one emergency reclamation: the excursion and the
// budget resets the responder issued for it. A pure function of the slot's
// reading, grants, and the header's responder parameters, so the audit
// layer replays it bit-for-bit.
type ReclaimRecord struct {
	// Level is "PDU" or "UPS"; PDU indexes the topology's PDUs (-1 = UPS).
	Level string `json:"level"`
	PDU   int    `json:"pdu"`
	// LoadWatts / CapacityWatts echo the excursion.
	LoadWatts     float64 `json:"load_watts"`
	CapacityWatts float64 `json:"capacity_watts"`
	// SpotCutWatts / GuaranteedCutWatts total the plan's cuts by class.
	SpotCutWatts       float64 `json:"spot_cut_watts"`
	GuaranteedCutWatts float64 `json:"guaranteed_cut_watts,omitempty"`
	// Escalated marks a plan that curtailed guaranteed capacity.
	Escalated bool `json:"escalated,omitempty"`
	// Budgets lists the per-rack resets in ascending rack order.
	Budgets []BudgetRecord `json:"budgets,omitempty"`
}

// SlotEvent is one structured record of the per-slot event journal: the
// operator's view of a market slot, serialized as one JSON line. The
// journal complements the scrape surface — /metrics answers "what is the
// market doing now / in aggregate", the journal answers "what happened in
// slot 12,417" after the fact (jq-able, greppable, diffable).
type SlotEvent struct {
	// Slot is the market slot index.
	Slot int `json:"slot"`
	// UnixMicros is the wall-clock append time in microseconds since the
	// epoch (0 when the caller does not stamp it).
	UnixMicros int64 `json:"ts_us,omitempty"`
	// Price is the uniform clearing price in $/kW·h (0 on degraded slots).
	Price float64 `json:"price"`
	// SoldWatts is the total spot capacity sold.
	SoldWatts float64 `json:"sold_watts"`
	// Revenue is the $ billed for the slot.
	Revenue float64 `json:"revenue"`
	// Grants counts allocations with positive watts.
	Grants int `json:"grants"`
	// Bids counts the bids collected for the slot.
	Bids int `json:"bids"`
	// Degraded marks a slot that fell back to the zero-price no-grant
	// default; Err carries the cause.
	Degraded bool   `json:"degraded,omitempty"`
	Err      string `json:"err,omitempty"`
	// ClearMicros is the wall time spent inside market clearing, in µs.
	ClearMicros int64 `json:"clear_us"`
	// FaultDrops / FaultDelays / FaultSevers are the cumulative injected
	// fault counts at journal time (only populated by harnesses that inject
	// faults; a pure function of the fault seed).
	FaultDrops  int64 `json:"fault_drops,omitempty"`
	FaultDelays int64 `json:"fault_delays,omitempty"`
	FaultSevers int64 `json:"fault_severs,omitempty"`

	// The remaining fields are the schema-v2 full-input capture, populated
	// only for cleared slots (degraded slots may hold NaN-poisoned readings,
	// which JSON cannot encode; their v1-style outcome record plus Err is
	// the complete story). Together with the header they let
	// internal/audit replay the slot through both clearing engines.

	// Algorithm is the engine that produced the result ("scan" or "exact");
	// Evaluations its demand-curve evaluation count.
	Algorithm   string `json:"algorithm,omitempty"`
	Evaluations int    `json:"evaluations,omitempty"`
	// BidSet is the slot's collected bids in submission order.
	BidSet []BidRecord `json:"bid_set,omitempty"`
	// GrantSet lists the positive-watt allocations (Grants == len(GrantSet)).
	GrantSet []GrantRecord `json:"grant_set,omitempty"`
	// PDUSpot / UPSSpot are the predicted spot capacities cleared against.
	PDUSpot []float64 `json:"pdu_spot,omitempty"`
	UPSSpot float64   `json:"ups_spot,omitempty"`
	// RackWatts / OtherPDUWatts are the power reading the prediction ran on.
	RackWatts     []float64 `json:"rack_watts,omitempty"`
	OtherPDUWatts []float64 `json:"other_pdu_watts,omitempty"`
	// InputsTruncated marks a cleared slot whose bid set could not be fully
	// captured (a demand function with no four-parameter wire form); replay
	// falls back to outcome-level checks for it.
	InputsTruncated bool `json:"inputs_truncated,omitempty"`

	// Emergency-responder capture (only populated when the run's header has
	// EmergencyResponder set; all empty on healthy slots, so journals from
	// responder-less runs are byte-identical to before).

	// SuspendedPDUs / SuspendedUPS record the suspensions applied to THIS
	// slot's prediction: the listed elements' spot capacity was zeroed
	// before clearing. Replay applies the same zeroing before comparing.
	SuspendedPDUs []int `json:"suspended_pdus,omitempty"`
	SuspendedUPS  bool  `json:"suspended_ups,omitempty"`
	// Reclaims lists the reclamations planned from this slot's reading.
	Reclaims []ReclaimRecord `json:"reclaims,omitempty"`
	// RestoredPDUs / RestoredUPS record elements whose suspension ended
	// this slot (budgets restored to guaranteed + headroom).
	RestoredPDUs []int `json:"restored_pdus,omitempty"`
	RestoredUPS  bool  `json:"restored_ups,omitempty"`
}

// Journal appends SlotEvents as JSONL to an io.Writer sink. It is safe for
// concurrent use; each Append writes exactly one line. A nil *Journal is a
// valid no-op sink, so callers wire it unconditionally.
type Journal struct {
	mu        sync.Mutex
	w         io.Writer
	enc       *json.Encoder
	n         int
	syncEvery int
	header    bool
	err       error
}

// NewJournal builds a journal over w (typically an *os.File opened by the
// -events flag, or a bytes.Buffer in tests).
func NewJournal(w io.Writer) *Journal {
	return NewJournalOpts(w, JournalOptions{})
}

// JournalOptions tunes a journal's durability behavior.
type JournalOptions struct {
	// SyncEvery fsyncs the sink after every N successful appends, when the
	// sink supports it (*os.File does). 0 leaves durability to the OS page
	// cache — the historical behavior.
	SyncEvery int
	// Resumed marks a journal reopened in append mode after a restart: the
	// header line is already on disk, so HasHeader reports true and the
	// market loop won't write a duplicate mid-file.
	Resumed bool
}

// NewJournalOpts builds a journal over w with explicit durability options.
func NewJournalOpts(w io.Writer, opts JournalOptions) *Journal {
	return &Journal{w: w, enc: json.NewEncoder(w), syncEvery: opts.SyncEvery, header: opts.Resumed}
}

// Append writes one event as a JSON line. The first write error is sticky
// and returned by every subsequent Append (and by Err), so a full disk
// degrades the journal, never the market loop.
func (j *Journal) Append(ev SlotEvent) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if err := j.enc.Encode(ev); err != nil {
		j.err = err
		return err
	}
	j.n++
	if j.syncEvery > 0 && j.n%j.syncEvery == 0 {
		return j.syncLocked()
	}
	return nil
}

// Sync forces the sink to stable storage when it supports it (*os.File);
// other sinks are a no-op. Called by graceful shutdown, and automatically
// every JournalOptions.SyncEvery appends.
func (j *Journal) Sync() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	s, ok := j.w.(interface{ Sync() error })
	if !ok {
		return nil
	}
	if err := s.Sync(); err != nil {
		j.err = err
		return err
	}
	return nil
}

// Header writes the v2 schema header as the journal's first line. It must
// be called before any Append; a second call, or a call after events were
// written, is rejected (a header mid-stream would corrupt the journal).
// Write errors are sticky, exactly as for Append.
func (j *Journal) Header(h JournalHeader) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if j.header || j.n > 0 {
		return fmt.Errorf("metrics: journal header must be the first line (have header=%v, %d events)", j.header, j.n)
	}
	h.Schema = JournalSchemaV2
	if err := j.enc.Encode(h); err != nil {
		j.err = err
		return err
	}
	j.header = true
	return nil
}

// HasHeader reports whether a v2 header was written.
func (j *Journal) HasHeader() bool {
	if j == nil {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.header
}

// Events returns how many events were appended successfully.
func (j *Journal) Events() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// Err returns the sticky write error, if any.
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// maxJournalLine bounds one journal line when reading: a 15,000-rack v2
// event (rack_watts plus bid_set) runs to a few megabytes of JSON.
const maxJournalLine = 64 << 20

// ReadJournal parses a slot journal. The returned header is nil for a v1
// journal (no header line); events are returned in file order. An unknown
// schema tag or malformed line in the middle of the file fails the whole
// read: a journal that cannot be parsed completely cannot be audited. The
// single exception is a torn FINAL line — the signature of a crash mid-
// append — which is dropped so a crashed run's journal stays auditable
// (use ReadJournalInfo to learn whether a tail was dropped).
func ReadJournal(r io.Reader) (*JournalHeader, []SlotEvent, error) {
	header, events, _, err := ReadJournalInfo(r)
	return header, events, err
}

// ReadJournalInfo is ReadJournal plus a torn-tail report: torn is true when
// the journal's last line failed to parse and was dropped (truncate-and-
// warn semantics — the operator died mid-append). A malformed line with
// further lines after it is still a hard error, not a tear.
func ReadJournalInfo(r io.Reader) (header *JournalHeader, events []SlotEvent, torn bool, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxJournalLine)
	line := 0
	// A parse failure is held pending: fatal only if a later non-empty line
	// proves the defect was not a torn tail.
	var pending error
	for sc.Scan() {
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		if pending != nil {
			return nil, nil, false, pending
		}
		line++
		if line == 1 {
			var probe struct {
				Schema string `json:"schema"`
			}
			if err := json.Unmarshal(raw, &probe); err != nil {
				pending = fmt.Errorf("metrics: journal line 1: %w", err)
				continue
			}
			if probe.Schema != "" {
				if probe.Schema != JournalSchemaV2 {
					return nil, nil, false, fmt.Errorf("metrics: unsupported journal schema %q (want %q)", probe.Schema, JournalSchemaV2)
				}
				header = &JournalHeader{}
				if err := json.Unmarshal(raw, header); err != nil {
					return nil, nil, false, fmt.Errorf("metrics: journal header: %w", err)
				}
				continue
			}
		}
		var ev SlotEvent
		if err := json.Unmarshal(raw, &ev); err != nil {
			pending = fmt.Errorf("metrics: journal line %d: %w", line, err)
			continue
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, false, fmt.Errorf("metrics: reading journal: %w", err)
	}
	if pending != nil && header == nil && len(events) == 0 {
		// Nothing valid preceded the defect: that is a file that is not a
		// journal, not a journal with a torn tail.
		return nil, nil, false, pending
	}
	return header, events, pending != nil, nil
}
