package metrics

import (
	"encoding/json"
	"io"
	"sync"
)

// SlotEvent is one structured record of the per-slot event journal: the
// operator's view of a market slot, serialized as one JSON line. The
// journal complements the scrape surface — /metrics answers "what is the
// market doing now / in aggregate", the journal answers "what happened in
// slot 12,417" after the fact (jq-able, greppable, diffable).
type SlotEvent struct {
	// Slot is the market slot index.
	Slot int `json:"slot"`
	// UnixMicros is the wall-clock append time in microseconds since the
	// epoch (0 when the caller does not stamp it).
	UnixMicros int64 `json:"ts_us,omitempty"`
	// Price is the uniform clearing price in $/kW·h (0 on degraded slots).
	Price float64 `json:"price"`
	// SoldWatts is the total spot capacity sold.
	SoldWatts float64 `json:"sold_watts"`
	// Revenue is the $ billed for the slot.
	Revenue float64 `json:"revenue"`
	// Grants counts allocations with positive watts.
	Grants int `json:"grants"`
	// Bids counts the bids collected for the slot.
	Bids int `json:"bids"`
	// Degraded marks a slot that fell back to the zero-price no-grant
	// default; Err carries the cause.
	Degraded bool   `json:"degraded,omitempty"`
	Err      string `json:"err,omitempty"`
	// ClearMicros is the wall time spent inside market clearing, in µs.
	ClearMicros int64 `json:"clear_us"`
	// FaultDrops / FaultDelays / FaultSevers are the cumulative injected
	// fault counts at journal time (only populated by harnesses that inject
	// faults; a pure function of the fault seed).
	FaultDrops  int64 `json:"fault_drops,omitempty"`
	FaultDelays int64 `json:"fault_delays,omitempty"`
	FaultSevers int64 `json:"fault_severs,omitempty"`
}

// Journal appends SlotEvents as JSONL to an io.Writer sink. It is safe for
// concurrent use; each Append writes exactly one line. A nil *Journal is a
// valid no-op sink, so callers wire it unconditionally.
type Journal struct {
	mu  sync.Mutex
	enc *json.Encoder
	n   int
	err error
}

// NewJournal builds a journal over w (typically an *os.File opened by the
// -events flag, or a bytes.Buffer in tests).
func NewJournal(w io.Writer) *Journal {
	return &Journal{enc: json.NewEncoder(w)}
}

// Append writes one event as a JSON line. The first write error is sticky
// and returned by every subsequent Append (and by Err), so a full disk
// degrades the journal, never the market loop.
func (j *Journal) Append(ev SlotEvent) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if err := j.enc.Encode(ev); err != nil {
		j.err = err
		return err
	}
	j.n++
	return nil
}

// Events returns how many events were appended successfully.
func (j *Journal) Events() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// Err returns the sticky write error, if any.
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}
