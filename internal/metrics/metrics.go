// Package metrics is SpotDC's zero-dependency instrumentation subsystem:
// counters, gauges and fixed-bucket histograms updated through atomics via
// pre-registered handles, a Registry with a deterministic snapshot API, and
// Prometheus text-format exposition with an HTTP scrape surface.
//
// The design constraint that shaped the package is the PR 3 allocation
// budget on the market-clearing hot loop: a steady-state Clear performs
// zero heap allocations (grid scan) even with instrumentation enabled. Two
// rules keep that true:
//
//  1. Handles, not maps. Every metric is registered once at setup time and
//     observed through the returned *Counter / *Gauge / *Histogram pointer.
//     The observe path is a couple of atomic operations — no name lookup,
//     no label hashing, no interface boxing, no allocation.
//  2. Labels resolve at registration. A labeled family (Vec) hands out its
//     child handles via With(...) during wiring; the hot path holds the
//     already-resolved child and never touches the family again.
//
// All handle methods are nil-receiver safe: a component whose metrics were
// never wired calls the same code with nil handles and pays one predictable
// branch, so "metrics off" needs no separate code path.
package metrics

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. The zero value is
// unusable; obtain counters from a Registry so they appear in exposition.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one. Safe on a nil receiver (no-op).
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add increments by n. Safe on a nil receiver (no-op).
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can go up and down, stored as IEEE-754
// bits in a single atomic word.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. Safe on a nil receiver (no-op).
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add atomically adds delta (CAS loop). Safe on a nil receiver (no-op).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution metric. Bucket upper bounds are
// frozen at registration; Observe is a short linear scan over them plus
// three atomic updates — no allocation, ever. Exposition follows the
// Prometheus convention: cumulative _bucket{le="..."} series, _sum, _count.
type Histogram struct {
	bounds  []float64 // sorted ascending upper bounds; implicit +Inf last
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     Gauge
}

func newHistogram(bounds []float64) *Histogram {
	h := &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
	return h
}

// Observe records one sample. Safe on a nil receiver (no-op).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// ExpBuckets returns n exponentially spaced bucket bounds starting at
// start and growing by factor: start, start·factor, start·factor², …
// It panics on non-positive start, factor ≤ 1, or n < 1 (setup-time misuse).
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("metrics: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n linearly spaced bucket bounds: start,
// start+width, … It panics on width ≤ 0 or n < 1.
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n < 1 {
		panic("metrics: LinearBuckets needs width > 0, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}
