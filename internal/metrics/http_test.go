package metrics

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestMuxPprofGating pins the opt-in profiling surface: /debug/pprof/*
// serves only when MuxOptions.Pprof is set, Extra routes mount alongside
// the standard endpoints, and the default mux stays pprof-free.
func TestMuxPprofGating(t *testing.T) {
	get := func(t *testing.T, addr, path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}

	r := NewRegistry()
	r.Counter("gated_total", "gating probe").Add(1)

	// Default surface: metrics and health only.
	addr, shutdown, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	if code, _ := get(t, addr, "/debug/pprof/"); code != http.StatusNotFound {
		t.Errorf("ungated /debug/pprof/ = %d, want 404", code)
	}
	if code, _ := get(t, addr, "/debug/pprof/cmdline"); code != http.StatusNotFound {
		t.Errorf("ungated /debug/pprof/cmdline = %d, want 404", code)
	}

	// Opted in: the pprof index and profiles serve, Extra routes mount,
	// and the standard endpoints keep working.
	extra := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("traces here\n"))
	})
	addr2, shutdown2, err := ServeOpts("127.0.0.1:0", r, MuxOptions{
		Pprof: true,
		Extra: map[string]http.Handler{"/debug/traces": extra},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown2()
	if code, body := get(t, addr2, "/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("gated /debug/pprof/ = %d, body %.60q; want 200 with profile index", code, body)
	}
	if code, body := get(t, addr2, "/debug/pprof/goroutine?debug=1"); code != http.StatusOK || !strings.Contains(body, "goroutine profile") {
		t.Errorf("gated goroutine profile = %d, body %.60q", code, body)
	}
	if code, body := get(t, addr2, "/debug/traces"); code != http.StatusOK || body != "traces here\n" {
		t.Errorf("/debug/traces = %d %q, want the Extra handler", code, body)
	}
	if code, body := get(t, addr2, "/metrics"); code != http.StatusOK || !strings.Contains(body, "gated_total 1") {
		t.Errorf("/metrics with pprof on = %d, body %.60q", code, body)
	}
	if _, body := get(t, addr2, "/healthz"); body != "ok\n" {
		t.Errorf("/healthz with pprof on = %q", body)
	}
}
