package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Kind discriminates metric families.
type Kind int

const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a fixed-bucket distribution.
	KindHistogram
)

// String implements fmt.Stringer (matches the Prometheus TYPE spelling).
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Registry is a collection of metric families. Registration is get-or-create
// and idempotent: asking for an already-registered name with a matching kind
// and label set returns the existing family's handles, so wiring code may
// run once per component instance against a shared registry (e.g. the
// experiment fan-out creating one operator per scenario). A mismatched
// re-registration (same name, different kind, labels, or buckets) panics —
// that is a programming error at setup time, never a runtime condition.
//
// Registration takes a lock; observation never does (handles are atomic).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

type family struct {
	name   string
	help   string
	kind   Kind
	labels []string
	bounds []float64 // histogram bucket upper bounds

	mu       sync.Mutex
	children map[string]*child
}

type child struct {
	vals []string
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// labelKey joins label values with an unlikely separator for child lookup.
const labelSep = "\x1f"

func validName(s string, label bool) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case !label && r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// register returns the family for name, creating it on first use and
// panicking on any structural mismatch with a previous registration.
func (r *Registry) register(name, help string, kind Kind, labels []string, bounds []float64) *family {
	if !validName(name, false) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l, true) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", l, name))
		}
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q bucket bounds not strictly ascending", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || !equalStrings(f.labels, labels) || !equalFloats(f.bounds, bounds) {
			panic(fmt.Sprintf("metrics: conflicting re-registration of %q", name))
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   append([]string(nil), labels...),
		bounds:   append([]float64(nil), bounds...),
		children: make(map[string]*child),
	}
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// with returns the family's child for the given label values, creating it on
// first use.
func (f *family) with(vals []string) *child {
	if len(vals) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %q wants %d label values, got %d", f.name, len(f.labels), len(vals)))
	}
	key := strings.Join(vals, labelSep)
	f.mu.Lock()
	defer f.mu.Unlock()
	if ch, ok := f.children[key]; ok {
		return ch
	}
	ch := &child{vals: append([]string(nil), vals...)}
	switch f.kind {
	case KindCounter:
		ch.c = &Counter{}
	case KindGauge:
		ch.g = &Gauge{}
	case KindHistogram:
		ch.h = newHistogram(f.bounds)
	}
	f.children[key] = ch
	return ch
}

// Counter registers (or retrieves) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, KindCounter, nil, nil).with(nil).c
}

// Gauge registers (or retrieves) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, KindGauge, nil, nil).with(nil).g
}

// Histogram registers (or retrieves) an unlabeled histogram with the given
// bucket upper bounds (an implicit +Inf bucket is always appended).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.register(name, help, KindHistogram, nil, bounds).with(nil).h
}

// CounterVec is a labeled counter family; resolve children with With during
// setup and hold the returned handles on the hot path.
type CounterVec struct{ f *family }

// CounterVec registers (or retrieves) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, KindCounter, labels, nil)}
}

// With returns the pre-resolved child counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter { return v.f.with(values).c }

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// GaugeVec registers (or retrieves) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, KindGauge, labels, nil)}
}

// With returns the pre-resolved child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.with(values).g }

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// HistogramVec registers (or retrieves) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, KindHistogram, labels, bounds)}
}

// With returns the pre-resolved child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.with(values).h }

// Sample is one metric instance inside a FamilySnapshot.
type Sample struct {
	// LabelValues aligns with the family's Labels.
	LabelValues []string
	// Value carries a counter's count (as float64) or a gauge's value.
	Value float64
	// Count / Sum / BucketCounts are set for histograms; BucketCounts[i] is
	// the non-cumulative count of the i-th bucket, with the final entry the
	// implicit +Inf bucket (the family snapshot carries the bounds).
	Count        uint64
	Sum          float64
	BucketCounts []uint64
}

// FamilySnapshot is one family's deterministic point-in-time state.
type FamilySnapshot struct {
	Name    string
	Help    string
	Kind    Kind
	Labels  []string
	Bounds  []float64
	Samples []Sample
}

// Snapshot returns every family's state, sorted by family name with samples
// sorted by label values — the same deterministic order WritePrometheus
// emits, so tests can assert on it directly.
func (r *Registry) Snapshot() []FamilySnapshot {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		fs := FamilySnapshot{
			Name:   f.name,
			Help:   f.help,
			Kind:   f.kind,
			Labels: append([]string(nil), f.labels...),
			Bounds: append([]float64(nil), f.bounds...),
		}
		f.mu.Lock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			ch := f.children[k]
			s := Sample{LabelValues: append([]string(nil), ch.vals...)}
			switch f.kind {
			case KindCounter:
				s.Value = float64(ch.c.Value())
			case KindGauge:
				s.Value = ch.g.Value()
			case KindHistogram:
				s.Count = ch.h.Count()
				s.Sum = ch.h.Sum()
				s.BucketCounts = make([]uint64, len(ch.h.buckets))
				for i := range ch.h.buckets {
					s.BucketCounts[i] = ch.h.buckets[i].Load()
				}
			}
			fs.Samples = append(fs.Samples, s)
		}
		f.mu.Unlock()
		out = append(out, fs)
	}
	return out
}

// Value looks one metric instance up by family name and label values —
// a test convenience over Snapshot. Histograms report their observation
// count. The boolean is false when the family or child does not exist.
func (r *Registry) Value(name string, labelValues ...string) (float64, bool) {
	r.mu.Lock()
	f, ok := r.families[name]
	r.mu.Unlock()
	if !ok {
		return 0, false
	}
	key := strings.Join(labelValues, labelSep)
	f.mu.Lock()
	ch, ok := f.children[key]
	f.mu.Unlock()
	if !ok {
		return 0, false
	}
	switch f.kind {
	case KindCounter:
		return float64(ch.c.Value()), true
	case KindGauge:
		return ch.g.Value(), true
	default:
		return float64(ch.h.Count()), true
	}
}
