package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("Value() = %d, want 5", got)
	}
	// Idempotent re-registration returns the same handle.
	if c2 := r.Counter("test_total", "a counter"); c2 != c {
		t.Error("re-registration returned a different handle")
	}
}

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_gauge", "a gauge")
	g.Set(3.25)
	g.Add(-1.25)
	if got := g.Value(); got != 2 {
		t.Errorf("Value() = %v, want 2", got)
	}
	g.Set(math.Inf(1))
	if !math.IsInf(g.Value(), 1) {
		t.Errorf("Value() = %v, want +Inf", g.Value())
	}
}

func TestGaugeAddConcurrent(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_gauge", "a gauge")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 8000 {
		t.Errorf("Value() = %v, want 8000 (CAS loop lost updates)", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "a histogram", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Errorf("Count() = %d, want 5", got)
	}
	if got := h.Sum(); got != 106 {
		t.Errorf("Sum() = %v, want 106", got)
	}
	snap := r.Snapshot()
	if len(snap) != 1 || len(snap[0].Samples) != 1 {
		t.Fatalf("snapshot shape: %+v", snap)
	}
	// Bounds 1,2,4 (+Inf): 0.5 and 1 land in le=1 (bounds inclusive),
	// 1.5 in le=2, 3 in le=4, 100 in +Inf.
	want := []uint64{2, 1, 1, 1}
	got := snap[0].Samples[0].BucketCounts
	if len(got) != len(want) {
		t.Fatalf("bucket counts = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	// The "metrics off" path: every handle method must be callable on nil.
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil handles reported non-zero values")
	}
	var j *Journal
	if err := j.Append(SlotEvent{}); err != nil {
		t.Errorf("nil journal Append = %v", err)
	}
	if j.Events() != 0 || j.Err() != nil {
		t.Error("nil journal reported state")
	}
}

func TestVecChildrenPreResolved(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_labeled_total", "labeled", "engine")
	a := v.With("scan")
	b := v.With("exact")
	a2 := v.With("scan")
	if a == b {
		t.Error("distinct label values shared a child")
	}
	if a != a2 {
		t.Error("same label values resolved to different children")
	}
	a.Add(2)
	b.Inc()
	if got, ok := r.Value("test_labeled_total", "scan"); !ok || got != 2 {
		t.Errorf(`Value(scan) = %v,%v want 2,true`, got, ok)
	}
	if got, ok := r.Value("test_labeled_total", "exact"); !ok || got != 1 {
		t.Errorf(`Value(exact) = %v,%v want 1,true`, got, ok)
	}
	if _, ok := r.Value("test_labeled_total", "missing"); ok {
		t.Error("Value found a child that was never resolved")
	}
}

func TestConflictingReRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "a counter")
	assertPanics(t, "kind conflict", func() { r.Gauge("test_total", "now a gauge") })
	r.CounterVec("test_vec_total", "labeled", "a")
	assertPanics(t, "label conflict", func() { r.CounterVec("test_vec_total", "labeled", "b") })
	r.Histogram("test_hist", "h", []float64{1, 2})
	assertPanics(t, "bounds conflict", func() { r.Histogram("test_hist", "h", []float64{1, 3}) })
	assertPanics(t, "invalid name", func() { r.Counter("0bad name", "x") })
	assertPanics(t, "invalid label", func() { r.CounterVec("test_ok_total", "x", "bad-label") })
	assertPanics(t, "unsorted bounds", func() { r.Histogram("test_hist2", "h", []float64{2, 1}) })
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", name)
		}
	}()
	fn()
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if exp[i] != want[i] {
			t.Errorf("ExpBuckets[%d] = %v, want %v", i, exp[i], want[i])
		}
	}
	lin := LinearBuckets(0, 0.5, 3)
	wantLin := []float64{0, 0.5, 1}
	for i := range wantLin {
		if lin[i] != wantLin[i] {
			t.Errorf("LinearBuckets[%d] = %v, want %v", i, lin[i], wantLin[i])
		}
	}
	assertPanics(t, "ExpBuckets misuse", func() { ExpBuckets(0, 2, 3) })
	assertPanics(t, "LinearBuckets misuse", func() { LinearBuckets(0, 0, 3) })
}
