package metrics

import (
	"net"
	"net/http"
)

// Handler returns an http.Handler that serves the registry in Prometheus
// text exposition format.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Mux returns a ServeMux with the standard observability endpoints:
// /metrics (Prometheus text exposition) and /healthz (liveness, "ok").
func Mux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	return mux
}

// Serve starts the scrape surface on addr (use host:0 for an ephemeral
// port) and returns the bound listener address plus a shutdown func. The
// server runs on its own goroutine; Serve returns immediately.
func Serve(addr string, r *Registry) (boundAddr string, shutdown func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Mux(r)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
