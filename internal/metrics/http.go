package metrics

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler that serves the registry in Prometheus
// text exposition format.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// MuxOptions extends the observability mux beyond /metrics and /healthz.
type MuxOptions struct {
	// Pprof, when true, mounts the net/http/pprof profiling handlers
	// under /debug/pprof/. Opt-in: profiling endpoints expose stack
	// traces and heap contents, so they stay off unless asked for.
	Pprof bool
	// Extra maps additional patterns (e.g. "/debug/traces") to handlers.
	Extra map[string]http.Handler
}

// Mux returns a ServeMux with the standard observability endpoints:
// /metrics (Prometheus text exposition) and /healthz (liveness, "ok").
func Mux(r *Registry) *http.ServeMux {
	return MuxOpts(r, MuxOptions{})
}

// MuxOpts is Mux with optional pprof handlers and extra routes.
func MuxOpts(r *Registry, o MuxOptions) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	if o.Pprof {
		// Explicit registrations instead of the pprof package's
		// DefaultServeMux side effect, so the endpoints exist only on
		// muxes that asked for them.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	for pattern, h := range o.Extra {
		mux.Handle(pattern, h)
	}
	return mux
}

// Serve starts the scrape surface on addr (use host:0 for an ephemeral
// port) and returns the bound listener address plus a shutdown func. The
// server runs on its own goroutine; Serve returns immediately.
func Serve(addr string, r *Registry) (boundAddr string, shutdown func() error, err error) {
	return ServeOpts(addr, r, MuxOptions{})
}

// ServeOpts is Serve with optional pprof handlers and extra routes.
func ServeOpts(addr string, r *Registry, o MuxOptions) (boundAddr string, shutdown func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: MuxOpts(r, o)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
