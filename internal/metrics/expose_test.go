package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// series is one parsed exposition sample: a metric name plus its decoded
// label pairs in emission order.
type series struct {
	name   string
	labels [][2]string // key, decoded value
	value  float64
}

func (s series) key() string {
	var b strings.Builder
	b.WriteString(s.name)
	for _, kv := range s.labels {
		fmt.Fprintf(&b, "|%s=%s", kv[0], kv[1])
	}
	return b.String()
}

// parseExposition is a strict parser for the subset of the Prometheus text
// format WritePrometheus emits. It returns the samples keyed by
// name|label=value|..., plus HELP and TYPE maps, failing the test on any
// malformed line — so it doubles as a format validator.
func parseExposition(t *testing.T, text string) (samples map[string]float64, help, typ map[string]string) {
	t.Helper()
	samples = make(map[string]float64)
	help = make(map[string]string)
	typ = make(map[string]string)
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, h, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("malformed HELP line %q", line)
			}
			help[name] = unescapeValue(h)
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, k, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("malformed TYPE line %q", line)
			}
			typ[name] = k
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment %q", line)
		}
		s := parseSample(t, line)
		if _, dup := samples[s.key()]; dup {
			t.Fatalf("duplicate series %q", s.key())
		}
		samples[s.key()] = s.value
	}
	return samples, help, typ
}

func parseSample(t *testing.T, line string) series {
	t.Helper()
	var s series
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		t.Fatalf("malformed sample line %q", line)
	}
	s.name = line[:i]
	rest := line[i:]
	if rest[0] == '{' {
		rest = rest[1:]
		for {
			eq := strings.IndexByte(rest, '=')
			if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
				t.Fatalf("malformed labels in %q", line)
			}
			key := rest[:eq]
			rest = rest[eq+2:]
			// Find the closing quote, skipping escaped characters.
			var raw strings.Builder
			for j := 0; ; j++ {
				if j >= len(rest) {
					t.Fatalf("unterminated label value in %q", line)
				}
				if rest[j] == '\\' && j+1 < len(rest) {
					raw.WriteByte(rest[j])
					raw.WriteByte(rest[j+1])
					j++
					continue
				}
				if rest[j] == '"' {
					rest = rest[j+1:]
					break
				}
				raw.WriteByte(rest[j])
			}
			s.labels = append(s.labels, [2]string{key, unescapeValue(raw.String())})
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
				continue
			}
			if strings.HasPrefix(rest, "} ") {
				rest = rest[2:]
				break
			}
			t.Fatalf("malformed label block tail %q in %q", rest, line)
		}
	} else {
		rest = rest[1:] // the space
	}
	v, err := parseValue(rest)
	if err != nil {
		t.Fatalf("bad value %q in %q: %v", rest, line, err)
	}
	s.value = v
	return s
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// TestPrometheusRoundTrip registers one family of every kind — with label
// values exercising every escape sequence — observes known values, renders
// the registry, and parses the text back, asserting every sample, HELP and
// TYPE line survives the trip exactly.
func TestPrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()

	c := r.CounterVec("rt_requests_total", "requests by verdict\nsecond line \\ backslash", "verdict")
	c.With("ok").Add(7)
	c.With(`tricky "quoted" \ value` + "\nnewline").Inc()

	g := r.Gauge("rt_temperature", "a gauge")
	g.Set(-3.75)

	inf := r.Gauge("rt_inf", "positive infinity")
	inf.Set(math.Inf(1))

	h := r.HistogramVec("rt_latency_seconds", "latency", []float64{0.1, 1}, "route")
	lat := h.With("/bid")
	lat.Observe(0.05)
	lat.Observe(0.5)
	lat.Observe(30)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	samples, help, typ := parseExposition(t, text)

	wantHelp := map[string]string{
		"rt_requests_total":  "requests by verdict\nsecond line \\ backslash",
		"rt_temperature":     "a gauge",
		"rt_inf":             "positive infinity",
		"rt_latency_seconds": "latency",
	}
	for name, want := range wantHelp {
		if got := help[name]; got != want {
			t.Errorf("HELP %s = %q, want %q", name, got, want)
		}
	}
	wantType := map[string]string{
		"rt_requests_total":  "counter",
		"rt_temperature":     "gauge",
		"rt_inf":             "gauge",
		"rt_latency_seconds": "histogram",
	}
	for name, want := range wantType {
		if got := typ[name]; got != want {
			t.Errorf("TYPE %s = %q, want %q", name, got, want)
		}
	}

	wantSamples := map[string]float64{
		`rt_requests_total|verdict=ok`: 7,
		`rt_requests_total|verdict=tricky "quoted" \ value` + "\nnewline": 1,
		`rt_temperature`:                       -3.75,
		`rt_inf`:                               math.Inf(1),
		`rt_latency_seconds_bucket|route=/bid|le=0.1`:  1,
		`rt_latency_seconds_bucket|route=/bid|le=1`:    2,
		`rt_latency_seconds_bucket|route=/bid|le=+Inf`: 3,
		`rt_latency_seconds_sum|route=/bid`:            30.55,
		`rt_latency_seconds_count|route=/bid`:          3,
	}
	if len(samples) != len(wantSamples) {
		t.Errorf("parsed %d samples, want %d:\n%s", len(samples), len(wantSamples), text)
	}
	for key, want := range wantSamples {
		got, ok := samples[key]
		if !ok {
			t.Errorf("series %q missing from exposition:\n%s", key, text)
			continue
		}
		if got != want {
			t.Errorf("series %q = %v, want %v", key, got, want)
		}
	}

	// The format promise: deterministic output for the same state.
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != text {
		t.Error("two renders of the same state differ")
	}
}

// TestPrometheusNoRawNewlines asserts no sample or comment line ever
// contains an unescaped newline, whatever the label values and help texts.
func TestPrometheusNoRawNewlines(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("nl_total", "help with\nnewline", "k")
	v.With("a\nb\nc").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	// Every line must be a comment or parse as a sample; the parser fails
	// the test on fragments produced by unescaped newlines.
	parseExposition(t, b.String())
}

// TestServeScrape exercises the HTTP surface end to end: /metrics content
// type and body, /healthz liveness.
func TestServeScrape(t *testing.T) {
	r := NewRegistry()
	r.Counter("scrape_total", "scrapes").Add(3)
	addr, shutdown, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus text 0.0.4", ct)
	}
	if !strings.Contains(string(body), "scrape_total 3") {
		t.Errorf("scrape body missing sample:\n%s", body)
	}

	hresp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if string(hbody) != "ok\n" {
		t.Errorf("/healthz = %q, want ok", hbody)
	}
}

// FuzzEscapeRoundTrip asserts the escaping used for label values and help
// texts is inverted exactly by unescapeValue for arbitrary input, and that
// escaped output never contains characters that would corrupt the
// line-oriented format.
func FuzzEscapeRoundTrip(f *testing.F) {
	for _, seed := range []string{
		"", "plain", `back\slash`, "new\nline", `quo"te`, `\"`, `\\n`,
		"mixed \\ \" \n tail", "\\", "trailing backslash\\",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		esc := escapeLabel(s)
		if strings.Contains(esc, "\n") {
			t.Fatalf("escapeLabel(%q) = %q leaks a raw newline", s, esc)
		}
		// Every double quote must be escaped (preceded by an odd run of
		// backslashes), or the label block would terminate early.
		for i := 0; i < len(esc); i++ {
			if esc[i] != '"' {
				continue
			}
			bs := 0
			for j := i - 1; j >= 0 && esc[j] == '\\'; j-- {
				bs++
			}
			if bs%2 == 0 {
				t.Fatalf("escapeLabel(%q) = %q leaves an unescaped quote at %d", s, esc, i)
			}
		}
		if got := unescapeValue(esc); got != s {
			t.Errorf("label round-trip: %q -> %q -> %q", s, esc, got)
		}
		eh := escapeHelp(s)
		if strings.Contains(eh, "\n") {
			t.Fatalf("escapeHelp(%q) = %q leaks a raw newline", s, eh)
		}
		if got := unescapeValue(eh); got != s {
			t.Errorf("help round-trip: %q -> %q -> %q", s, eh, got)
		}
	})
}
