// Package tenant implements the tenant side of SpotDC: agents that decide
// when to participate, how to translate their private power-performance
// models into the four-parameter rack-level demand functions of
// Section III-B, and how to run their workloads under whatever spot
// capacity the market grants.
//
// Three bidding policies from the paper are provided:
//
//   - PolicySimple — the paper's simple strategy (Section III-B3): bid the
//     needed extra power with DMax = DMin at a fixed maximum price.
//   - PolicyElastic — the SpotDC default: a piece-wise linear demand
//     function approximating the tenant's true (gain-derived) demand curve.
//   - PolicyStep / PolicyFull — the StepBid and FullBid alternatives used
//     in the Fig. 14 comparison.
//   - PolicyPricePredict — the Fig. 16 strategic variant where sprinting
//     tenants bid with (near-)perfect knowledge of the clearing price.
package tenant

import (
	"fmt"
	"math"

	"spotdc/internal/core"
	"spotdc/internal/trace"
	"spotdc/internal/workload"
)

// BidPolicy selects how an agent turns its demand into a bid.
type BidPolicy int

const (
	// PolicyElastic is the SpotDC piece-wise linear demand function.
	PolicyElastic BidPolicy = iota
	// PolicySimple bids exactly the needed power, all-or-nothing, at the
	// tenant's maximum price.
	PolicySimple
	// PolicyStep bids a StepBid at the tenant's maximum price for its
	// maximum useful demand.
	PolicyStep
	// PolicyFull bids the complete sampled demand curve.
	PolicyFull
	// PolicyPricePredict bids a step at just above the predicted clearing
	// price for the maximum useful demand.
	PolicyPricePredict
)

// String implements fmt.Stringer.
func (p BidPolicy) String() string {
	switch p {
	case PolicyElastic:
		return "elastic"
	case PolicySimple:
		return "simple"
	case PolicyStep:
		return "step"
	case PolicyFull:
		return "full"
	case PolicyPricePredict:
		return "price-predict"
	default:
		return fmt.Sprintf("BidPolicy(%d)", int(p))
	}
}

// MarketHint carries optional operator-side information available to
// strategic bidders (Fig. 16 assumes sprinting tenants know the price).
type MarketHint struct {
	// PredictedPrice is the anticipated clearing price in $/kW·h.
	PredictedPrice float64
	// HavePrediction reports whether PredictedPrice is meaningful.
	HavePrediction bool
}

// SlotResult reports what happened to one agent during one slot.
type SlotResult struct {
	// Participated reports whether the agent bid this slot.
	Participated bool
	// PowerWatts is the agent's actual total draw across its racks.
	PowerWatts float64
	// SpotGrantWatts is the total spot capacity granted.
	SpotGrantWatts float64
	// SpotUsedWatts is how much of the grant was actually drawn.
	SpotUsedWatts float64
	// LatencyMS is the tail latency (sprinting agents; 0 otherwise).
	LatencyMS float64
	// SLOViolated reports a missed latency SLO this slot.
	SLOViolated bool
	// ThroughputUnits is the processing rate in units/s (opportunistic
	// agents; 0 otherwise).
	ThroughputUnits float64
	// PerfScore is the normalizable performance figure: 1000/latency for
	// sprinting agents (inverse latency), throughput for opportunistic
	// ones. Zero when idle.
	PerfScore float64
	// PerfCostRate is the Section IV-C monetary performance cost in $/h
	// (sprinting) or negative value produced (opportunistic agents report
	// -value so lower is better for both).
	PerfCostRate float64
	// PowerByRack breaks PowerWatts down per rack for the operator's
	// rack-level monitoring.
	PowerByRack map[int]float64
}

// Agent is a tenant participating in the spot market. Implementations are
// deterministic: the same slot always produces the same bids and results.
//
// Concurrency and ownership: one agent is never called from two goroutines
// at once, but distinct agents may run concurrently (the simulator's
// intra-slot parallelism), so implementations must not share mutable state
// across agents. The slices and maps returned by PlanBids and Execute may
// be backed by agent-owned scratch buffers: they are valid only until the
// agent's next PlanBids/Execute call, and callers that retain them must
// copy (the simulator and the protocol client both consume them within the
// slot).
type Agent interface {
	// Name identifies the tenant (Table I aliases: S-1, O-4, ...).
	Name() string
	// Class reports sprinting or opportunistic behaviour.
	Class() workload.Class
	// Racks lists the rack indices the agent owns.
	Racks() []int
	// ReservedWatts is the guaranteed capacity of one of the agent's racks.
	ReservedWatts(rack int) float64
	// PlanBids returns the agent's bids for the given slot, or nil when it
	// does not participate.
	PlanBids(slot int, hint MarketHint) []core.Bid
	// MaxPerfRequests exposes the agent's true gain curves for the MaxPerf
	// baseline; empty when the agent would not participate.
	MaxPerfRequests(slot int) []core.MaxPerfRequest
	// Execute simulates the slot given the granted spot watts per rack and
	// returns the realized metrics. A nil map means no grants.
	Execute(slot int, grants map[int]float64) SlotResult
}

// OptimalDemand computes the tenant's true demand at a price: the spot
// capacity d in [0, maxWatts] maximizing net benefit gain(d) − price·d/1000
// ($/h terms), evaluated on a grid of the given step (Fig. 4(a)'s "optimal
// spot capacity demand"). For concave gain the result is the usual
// marginal-gain ≥ marginal-cost point.
func OptimalDemand(gain func(float64) float64, price, maxWatts, stepWatts float64) float64 {
	if maxWatts <= 0 {
		return 0
	}
	if stepWatts <= 0 {
		stepWatts = 1
	}
	bestD, bestNet := 0.0, 0.0
	for d := 0.0; d <= maxWatts+stepWatts/2; d += stepWatts {
		dd := math.Min(d, maxWatts)
		net := gain(dd) - price*dd/1000
		if net > bestNet+1e-12 {
			bestD, bestNet = dd, net
		}
	}
	return bestD
}

// DemandCurve is a tenant's true rack-level demand for spot capacity as a
// function of price — the "Reference" curve of Fig. 3(a). It must be
// non-increasing and return 0 above the tenant's maximum acceptable price.
type DemandCurve func(price float64) float64

// buildBid approximates a true demand curve with the wire demand function
// dictated by the policy. qMin and qMax delimit the tenant's price range.
func buildBid(policy BidPolicy, curve DemandCurve, qMin, qMax float64, hint MarketHint) (core.DemandFunc, error) {
	dMax := curve(qMin)
	dMin := curve(qMax)
	if dMin > dMax {
		dMin = dMax
	}
	if dMax <= 0 {
		return nil, nil
	}
	switch policy {
	case PolicySimple:
		// The paper's simple strategy: bid the needed power (the demand the
		// tenant insists on even at its maximum price), all-or-nothing.
		if dMin <= 0 {
			return nil, nil
		}
		return core.LinearBid{DMax: dMin, DMin: dMin, QMin: qMax, QMax: qMax}, nil
	case PolicyStep:
		// The paper's StepBid-1 (Fig. 3(b)): bid the single point
		// (Dmax, qmin) of the true demand curve — the tenant requests its
		// full useful demand at the only price at which it truly wants all
		// of it. All the elasticity between qmin and qmax is lost, which is
		// exactly the deficiency Fig. 14 quantifies.
		return core.StepBid{D: dMax, QMax: qMin}, nil
	case PolicyFull:
		const samples = 16
		pts := make([]core.PricePoint, 0, samples)
		prev := math.Inf(1)
		for i := 0; i < samples; i++ {
			q := qMin + (qMax-qMin)*float64(i)/float64(samples-1)
			d := curve(q)
			if d > prev { // enforce monotonicity against model noise
				d = prev
			}
			prev = d
			pts = append(pts, core.PricePoint{Price: q, Demand: d})
		}
		return core.NewFullBid(pts)
	case PolicyPricePredict:
		if hint.HavePrediction && hint.PredictedPrice <= qMax {
			// With perfect knowledge of the clearing price the tenant stops
			// shading: it bids its full useful demand at exactly the
			// anticipated price, collecting dMax at the price that clears
			// anyway (Fig. 16). Bidding even slightly above the prediction
			// would let the operator ratchet the price up by that margin on
			// every slot; at exactly the prediction the fixed point is
			// stationary (the fig16 experiment iterates it).
			target := hint.PredictedPrice
			if target > qMax {
				target = qMax
			}
			return core.StepBid{D: dMax, QMax: target}, nil
		}
		// No usable prediction: fall back to the elastic default.
		lb := core.LinearBid{DMax: dMax, DMin: dMin, QMin: qMin, QMax: qMax}
		if err := lb.Validate(); err != nil {
			return nil, err
		}
		return lb, nil
	default: // PolicyElastic
		lb := core.LinearBid{DMax: dMax, DMin: dMin, QMin: qMin, QMax: qMax}
		if err := lb.Validate(); err != nil {
			return nil, err
		}
		return lb, nil
	}
}

// Sprint is a sprinting agent: one rack running a latency-sensitive
// workload driven by a request-rate trace. It bids whenever its reserved
// capacity cannot hold the SLO for the slot's anticipated load.
type Sprint struct {
	// TenantName is the Table I alias (S-1, S-2, S-3).
	TenantName string
	// RackIndex is the agent's rack in the market's constraint arrays.
	RackIndex int
	// Model is the workload's power-performance model.
	Model workload.LatencyModel
	// Cost is the Section IV-C monetization.
	Cost workload.SprintCost
	// Reserved is the guaranteed capacity in watts.
	Reserved float64
	// Headroom is the rack's spot headroom P_r^R in watts.
	Headroom float64
	// Load is the request-rate trace (req/s per slot).
	Load *trace.Power
	// QMin and QMax are the bidding price range in $/kW·h. Sprinting
	// tenants bid the highest prices (QMax several times the amortized
	// guaranteed rate).
	QMin, QMax float64
	// Policy selects the bidding strategy (default PolicyElastic).
	Policy BidPolicy

	// rackBuf backs SlotResult.PowerByRack and bidBuf the PlanBids return
	// slice (see the Agent ownership contract): per-slot calls reuse them
	// instead of allocating.
	rackBuf map[int]float64
	bidBuf  [1]core.Bid
}

var _ Agent = (*Sprint)(nil)

// Name implements Agent.
func (s *Sprint) Name() string { return s.TenantName }

// Class implements Agent.
func (s *Sprint) Class() workload.Class { return workload.Sprinting }

// Racks implements Agent.
func (s *Sprint) Racks() []int { return []int{s.RackIndex} }

// ReservedWatts implements Agent.
func (s *Sprint) ReservedWatts(rack int) float64 {
	if rack == s.RackIndex {
		return s.Reserved
	}
	return 0
}

// load returns the anticipated request rate for a slot.
func (s *Sprint) load(slot int) float64 { return s.Load.At(slot) }

// needsSpot reports whether the reservation misses the SLO at the slot's
// load, and the maximum watts the tenant could usefully absorb.
func (s *Sprint) needsSpot(slot int) (need bool, maxUseful float64) {
	load := s.load(slot)
	if load <= 0 {
		return false, 0
	}
	needW, _ := s.Model.PowerForLatency(load, s.Cost.SLOms)
	if needW <= s.Reserved {
		return false, 0
	}
	maxUseful = math.Min(s.Headroom, s.Model.PeakWatts-s.Reserved)
	if maxUseful <= 0 {
		return false, 0
	}
	return true, maxUseful
}

// GainFor returns the slot's performance-gain curve in $/h.
func (s *Sprint) GainFor(slot int) func(float64) float64 {
	return workload.SprintGainCurve(s.Model, s.Cost, s.load(slot), s.Reserved)
}

// comfortFrac places the sprinting tenant's low-price latency target
// between the SLO and the intrinsic base latency.
const comfortFrac = 0.6

// TrueDemand returns the slot's reference demand curve (Fig. 3(a)): at the
// tenant's maximum price it still insists on the watts that exactly
// restore the SLO; at its minimum price it wants enough to reach a
// comfortable latency well below the SLO; in between, the target
// interpolates linearly.
func (s *Sprint) TrueDemand(slot int) DemandCurve {
	load := s.load(slot)
	_, maxUseful := s.needsSpot(slot)
	needW, ok := s.Model.PowerForLatency(load, s.Cost.SLOms)
	needSpot := math.Min(math.Max(0, needW-s.Reserved), maxUseful)
	if !ok {
		// Even peak power misses the SLO: the tenant wants everything it
		// can use at any acceptable price.
		needSpot = maxUseful
	}
	comfortMS := s.Cost.SLOms - comfortFrac*(s.Cost.SLOms-s.Model.BaseMS)
	comfortW, _ := s.Model.PowerForLatency(load, comfortMS)
	comfortSpot := math.Min(math.Max(needSpot, comfortW-s.Reserved), maxUseful)
	return func(q float64) float64 {
		switch {
		case q > s.QMax:
			return 0
		case q <= s.QMin:
			return comfortSpot
		case s.QMax == s.QMin:
			return comfortSpot
		default:
			frac := (q - s.QMin) / (s.QMax - s.QMin)
			return comfortSpot + frac*(needSpot-comfortSpot)
		}
	}
}

// PlanBids implements Agent. The returned slice is agent-owned scratch,
// valid until the next PlanBids call.
func (s *Sprint) PlanBids(slot int, hint MarketHint) []core.Bid {
	need, _ := s.needsSpot(slot)
	if !need {
		return nil
	}
	fn, err := buildBid(s.Policy, s.TrueDemand(slot), s.QMin, s.QMax, hint)
	if err != nil || fn == nil {
		return nil
	}
	s.bidBuf[0] = core.Bid{Rack: s.RackIndex, Tenant: s.TenantName, Fn: fn}
	return s.bidBuf[:]
}

// byRack reuses the agent-owned single-entry PowerByRack map.
func (s *Sprint) byRack(w float64) map[int]float64 {
	if s.rackBuf == nil {
		s.rackBuf = make(map[int]float64, 1)
	}
	s.rackBuf[s.RackIndex] = w
	return s.rackBuf
}

// MaxPerfRequests implements Agent.
func (s *Sprint) MaxPerfRequests(slot int) []core.MaxPerfRequest {
	need, maxUseful := s.needsSpot(slot)
	if !need {
		return nil
	}
	return []core.MaxPerfRequest{{Rack: s.RackIndex, MaxWatts: maxUseful, Gain: s.GainFor(slot)}}
}

// Execute implements Agent.
func (s *Sprint) Execute(slot int, grants map[int]float64) SlotResult {
	load := s.load(slot)
	grant := grants[s.RackIndex]
	budget := s.Reserved + grant
	// The tenant only draws what improves its latency, up to the model's
	// peak draw.
	draw := math.Min(budget, s.Model.PeakWatts)
	if load <= 0 {
		idle := math.Min(s.Model.IdleWatts, budget)
		return SlotResult{
			Participated:   grant > 0,
			PowerWatts:     idle,
			SpotGrantWatts: grant,
			LatencyMS:      s.Model.BaseMS,
			PerfScore:      0,
			PowerByRack:    s.byRack(idle),
		}
	}
	lat := s.Model.LatencyMS(load, draw)
	used := math.Max(0, draw-s.Reserved)
	return SlotResult{
		Participated:   grant > 0,
		PowerWatts:     draw,
		SpotGrantWatts: grant,
		SpotUsedWatts:  math.Min(used, grant),
		LatencyMS:      lat,
		SLOViolated:    lat > s.Cost.SLOms,
		PerfScore:      1000 / lat,
		PerfCostRate:   s.Cost.RatePerHour(lat, load),
		PowerByRack:    s.byRack(draw),
	}
}

// Opp is an opportunistic agent: one rack running a delay-tolerant batch
// workload driven by a backlog trace. It bids for speed-up whenever backlog
// is pending, never above its maximum price (the amortized guaranteed
// rate).
type Opp struct {
	// TenantName is the Table I alias (O-1 … O-5).
	TenantName string
	// RackIndex is the agent's rack.
	RackIndex int
	// Model is the workload's power-performance model.
	Model workload.ThroughputModel
	// Cost values processed work.
	Cost workload.OppCost
	// Reserved is the guaranteed capacity in watts, sized for the minimum
	// processing rate.
	Reserved float64
	// Headroom is the rack's spot headroom P_r^R.
	Headroom float64
	// Backlog is the pending-work trace; zero means no spot demand.
	Backlog *trace.Power
	// QMin and QMax are the bidding price range in $/kW·h; QMax should not
	// exceed the amortized guaranteed-capacity rate (≈0.2).
	QMin, QMax float64
	// Policy selects the bidding strategy.
	Policy BidPolicy

	// rackBuf and bidBuf are the agent-owned scratch behind the Agent
	// ownership contract (reused across per-slot calls).
	rackBuf map[int]float64
	bidBuf  [1]core.Bid
}

var _ Agent = (*Opp)(nil)

// Name implements Agent.
func (o *Opp) Name() string { return o.TenantName }

// Class implements Agent.
func (o *Opp) Class() workload.Class { return workload.Opportunistic }

// Racks implements Agent.
func (o *Opp) Racks() []int { return []int{o.RackIndex} }

// ReservedWatts implements Agent.
func (o *Opp) ReservedWatts(rack int) float64 {
	if rack == o.RackIndex {
		return o.Reserved
	}
	return 0
}

func (o *Opp) active(slot int) bool { return o.Backlog.At(slot) > 0 }

func (o *Opp) maxUseful() float64 {
	return math.Max(0, math.Min(o.Headroom, o.Model.PeakWatts-o.Reserved))
}

// GainFor returns the slot's performance-gain curve in $/h.
func (o *Opp) GainFor(slot int) func(float64) float64 {
	return workload.OppGainCurve(o.Model, o.Cost, o.Reserved)
}

// trickleFrac is the fraction of the maximum useful spot capacity an
// opportunistic tenant still wants at its maximum acceptable price.
const trickleFrac = 0.1

// oppCurveShape bends the opportunistic demand curve (<1 = concave:
// demand holds up at moderate prices and drops near qMax). The curvature
// is what a complete demand curve (FullBid) captures and the two-segment
// LinearBid only approximates from below — the Fig. 14 gap.
const oppCurveShape = 0.6

// TrueDemand returns the slot's reference demand curve: batch tenants take
// everything useful when spot is cheap and taper to a trickle at the
// amortized guaranteed rate, above which spot capacity never makes sense
// for them.
func (o *Opp) TrueDemand(slot int) DemandCurve {
	maxUseful := o.maxUseful()
	return func(q float64) float64 {
		switch {
		case q > o.QMax:
			return 0
		case q <= o.QMin:
			return maxUseful
		case o.QMax == o.QMin:
			return maxUseful
		default:
			frac := (q - o.QMin) / (o.QMax - o.QMin)
			keep := math.Pow(1-frac, oppCurveShape)
			return maxUseful * (trickleFrac + (1-trickleFrac)*keep)
		}
	}
}

// PlanBids implements Agent. The returned slice is agent-owned scratch,
// valid until the next PlanBids call.
func (o *Opp) PlanBids(slot int, hint MarketHint) []core.Bid {
	if !o.active(slot) || o.maxUseful() <= 0 {
		return nil
	}
	fn, err := buildBid(o.Policy, o.TrueDemand(slot), o.QMin, o.QMax, hint)
	if err != nil || fn == nil {
		return nil
	}
	o.bidBuf[0] = core.Bid{Rack: o.RackIndex, Tenant: o.TenantName, Fn: fn}
	return o.bidBuf[:]
}

// byRack reuses the agent-owned single-entry PowerByRack map.
func (o *Opp) byRack(w float64) map[int]float64 {
	if o.rackBuf == nil {
		o.rackBuf = make(map[int]float64, 1)
	}
	o.rackBuf[o.RackIndex] = w
	return o.rackBuf
}

// MaxPerfRequests implements Agent.
func (o *Opp) MaxPerfRequests(slot int) []core.MaxPerfRequest {
	if !o.active(slot) || o.maxUseful() <= 0 {
		return nil
	}
	return []core.MaxPerfRequest{{Rack: o.RackIndex, MaxWatts: o.maxUseful(), Gain: o.GainFor(slot)}}
}

// Execute implements Agent.
func (o *Opp) Execute(slot int, grants map[int]float64) SlotResult {
	grant := grants[o.RackIndex]
	if !o.active(slot) {
		idle := math.Min(o.Model.IdleWatts, o.Reserved)
		return SlotResult{
			PowerWatts:     idle,
			SpotGrantWatts: grant,
			PowerByRack:    o.byRack(idle),
		}
	}
	budget := o.Reserved + grant
	draw := math.Min(budget, o.Model.PeakWatts)
	tp := o.Model.Throughput(draw)
	used := math.Max(0, draw-o.Reserved)
	return SlotResult{
		Participated:    grant > 0,
		PowerWatts:      draw,
		SpotGrantWatts:  grant,
		SpotUsedWatts:   math.Min(used, grant),
		ThroughputUnits: tp,
		PerfScore:       tp,
		PerfCostRate:    -o.Cost.RatePerHour(tp),
		PowerByRack:     o.byRack(draw),
	}
}
