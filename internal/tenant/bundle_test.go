package tenant

import (
	"testing"

	"spotdc/internal/core"
	"spotdc/internal/workload"
)

// newBundle builds a two-tier web service: an Nginx-like front end and a
// MySQL-like back end, mirroring the paper's Web Serving benchmark split
// across two racks.
func newBundle(load float64) *BundledSprint {
	front := workload.WebModel()
	back := workload.WebModel()
	back.Name = "web-db"
	back.MaxRate = 140 // the back end is slightly faster per watt
	return &BundledSprint{
		TenantName: "Web",
		Tiers: []Tier{
			{Rack: 0, Model: front, Reserved: 100, Headroom: 50},
			{Rack: 1, Model: back, Reserved: 100, Headroom: 50},
		},
		Cost: workload.SprintCost{A: 2e-6, B: 8e-7, SLOms: 200},
		Load: constLoad(load, 10),
		QMin: 0.05,
		QMax: 0.6,
	}
}

func TestBundledIdentity(t *testing.T) {
	b := newBundle(80)
	if b.Name() != "Web" || b.Class() != workload.Sprinting {
		t.Error("identity wrong")
	}
	racks := b.Racks()
	if len(racks) != 2 || racks[0] != 0 || racks[1] != 1 {
		t.Errorf("Racks = %v", racks)
	}
	if b.ReservedWatts(0) != 100 || b.ReservedWatts(1) != 100 || b.ReservedWatts(7) != 0 {
		t.Error("ReservedWatts wrong")
	}
}

func TestBundledBidsSharePrices(t *testing.T) {
	b := newBundle(80)
	bids := b.PlanBids(0, MarketHint{})
	if len(bids) != 2 {
		t.Fatalf("bids = %v (end-to-end latency at 80 req/s should demand spot)", bids)
	}
	lb0, ok0 := bids[0].Fn.(core.LinearBid)
	lb1, ok1 := bids[1].Fn.(core.LinearBid)
	if !ok0 || !ok1 {
		t.Fatalf("bundle produced %T / %T", bids[0].Fn, bids[1].Fn)
	}
	// Section III-B3: one shared (qmin, qmax) pair across the bundle.
	if lb0.QMin != lb1.QMin || lb0.QMax != lb1.QMax {
		t.Errorf("bundle prices differ: %+v vs %+v", lb0, lb1)
	}
	if lb0.DMax <= 0 && lb1.DMax <= 0 {
		t.Error("bundle demands nothing")
	}
	if lb0.DMax > 50+1e-9 || lb1.DMax > 50+1e-9 {
		t.Errorf("bundle exceeds headroom: %v / %v", lb0.DMax, lb1.DMax)
	}
}

func TestBundledQuietSlotsNoBid(t *testing.T) {
	if bids := newBundle(10).PlanBids(0, MarketHint{}); bids != nil {
		t.Errorf("low load bundle bid: %v", bids)
	}
	if bids := newBundle(0).PlanBids(0, MarketHint{}); bids != nil {
		t.Errorf("zero load bundle bid: %v", bids)
	}
}

func TestBundledExecute(t *testing.T) {
	b := newBundle(80)
	without := b.Execute(0, nil)
	if !without.SLOViolated {
		t.Fatalf("premise: no-spot latency %v should violate 200 ms SLO", without.LatencyMS)
	}
	with := b.Execute(0, map[int]float64{0: 40, 1: 40})
	if with.LatencyMS >= without.LatencyMS {
		t.Errorf("latency: %v → %v", without.LatencyMS, with.LatencyMS)
	}
	if with.SpotGrantWatts != 80 {
		t.Errorf("grant total = %v", with.SpotGrantWatts)
	}
	if with.PowerWatts > 100+100+80+1e-9 {
		t.Errorf("drew %v beyond budget", with.PowerWatts)
	}
	idle := newBundle(0).Execute(0, map[int]float64{0: 10})
	if idle.SLOViolated || idle.LatencyMS != 0 {
		t.Errorf("idle execute: %+v", idle)
	}
}

func TestBundledJointDemandReflectsBottleneck(t *testing.T) {
	// Make the front end the bottleneck — tight enough that it needs most
	// of its headroom, but recoverable (a starved tier whose full headroom
	// still saturates would rationally get nothing).
	b := newBundle(80)
	b.Tiers[0].Reserved = 105
	b.Tiers[1].Reserved = 130
	bids := b.PlanBids(0, MarketHint{})
	if len(bids) != 2 {
		t.Fatalf("bids = %v", bids)
	}
	d0 := bids[0].Fn.Demand(b.QMin)
	d1 := bids[1].Fn.Demand(b.QMin)
	if d0 <= d1 {
		t.Errorf("bottleneck tier demanded %v, relaxed tier %v; want more on the bottleneck", d0, d1)
	}
}

func TestBundledMaxPerfRequests(t *testing.T) {
	b := newBundle(80)
	reqs := b.MaxPerfRequests(0)
	if len(reqs) != 2 {
		t.Fatalf("reqs = %+v", reqs)
	}
	for _, r := range reqs {
		if r.MaxWatts <= 0 || r.MaxWatts > 50+1e-9 {
			t.Errorf("rack %d MaxWatts = %v", r.Rack, r.MaxWatts)
		}
		if g := r.Gain(r.MaxWatts); g < 0 {
			t.Errorf("rack %d gain = %v", r.Rack, g)
		}
	}
	if reqs := newBundle(5).MaxPerfRequests(0); reqs != nil {
		t.Error("quiet bundle should have no MaxPerf requests")
	}
}

func TestBundledClearsInMarket(t *testing.T) {
	// End-to-end: the bundle's bids clear against a real market and the
	// granted vector improves the end-to-end latency.
	b := newBundle(80)
	cons := core.Constraints{
		RackHeadroom: []float64{50, 50},
		RackPDU:      []int{0, 0},
		PDUSpot:      []float64{100},
		UPSSpot:      100,
	}
	mkt, err := core.NewMarket(cons, core.Options{PriceStep: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	bids := b.PlanBids(0, MarketHint{})
	res, err := mkt.Clear(bids)
	if err != nil {
		t.Fatal(err)
	}
	grants := map[int]float64{}
	for _, a := range res.Allocations {
		grants[a.Rack] = a.Watts
	}
	before := b.Execute(0, nil)
	after := b.Execute(0, grants)
	if after.LatencyMS >= before.LatencyMS {
		t.Errorf("market grants did not improve latency: %v → %v", before.LatencyMS, after.LatencyMS)
	}
}
