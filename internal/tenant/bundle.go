package tenant

import (
	"math"

	"spotdc/internal/core"
	"spotdc/internal/trace"
	"spotdc/internal/workload"
)

// BundledSprint is the advanced multi-rack tenant of Section III-B3 and
// Fig. 4: a multi-tier service (e.g. a web front end and a database back
// end in separate racks) whose end-to-end latency depends jointly on the
// power budgets of all its racks. It derives the optimal demand *vector*
// at the two bidding prices and joins them affinely into one LinearBid per
// rack sharing the same (qmin, qmax) pair — exactly the bundle the paper
// describes.
type BundledSprint struct {
	// TenantName identifies the tenant.
	TenantName string
	// Tiers lists the racks and their per-tier models, front to back.
	Tiers []Tier
	// Cost monetizes the end-to-end tail latency; the SLO applies to the
	// sum of tier latencies.
	Cost workload.SprintCost
	// Load is the request-rate trace; every tier serves the same rate.
	Load *trace.Power
	// QMin and QMax are the shared bidding prices.
	QMin, QMax float64

	// Agent-owned scratch (see the Agent ownership contract): zeroBuf is
	// the all-zero spot vector reused by every gain evaluation (hot inside
	// optimalVector's grid search), spotsBuf and rackBuf back Execute's
	// per-slot working state and returned PowerByRack map.
	zeroBuf  []float64
	spotsBuf []float64
	rackBuf  map[int]float64
}

// Tier is one rack of a bundled tenant.
type Tier struct {
	// Rack is the rack index.
	Rack int
	// Model is the tier's power-performance model.
	Model workload.LatencyModel
	// Reserved is the tier's guaranteed capacity in watts.
	Reserved float64
	// Headroom is the tier's spot headroom P_r^R.
	Headroom float64
}

var _ Agent = (*BundledSprint)(nil)

// Name implements Agent.
func (b *BundledSprint) Name() string { return b.TenantName }

// Class implements Agent.
func (b *BundledSprint) Class() workload.Class { return workload.Sprinting }

// Racks implements Agent.
func (b *BundledSprint) Racks() []int {
	out := make([]int, len(b.Tiers))
	for i, t := range b.Tiers {
		out[i] = t.Rack
	}
	return out
}

// ReservedWatts implements Agent.
func (b *BundledSprint) ReservedWatts(rack int) float64 {
	for _, t := range b.Tiers {
		if t.Rack == rack {
			return t.Reserved
		}
	}
	return 0
}

// latencyAt returns the end-to-end latency for the given per-tier spot
// grants at the slot's load.
func (b *BundledSprint) latencyAt(load float64, spots []float64) float64 {
	total := 0.0
	for i, t := range b.Tiers {
		draw := math.Min(t.Reserved+spots[i], t.Model.PeakWatts)
		total += t.Model.LatencyMS(load, draw)
	}
	return total
}

// zero returns the reused all-zero spot vector.
func (b *BundledSprint) zero() []float64 {
	if len(b.zeroBuf) != len(b.Tiers) {
		b.zeroBuf = make([]float64, len(b.Tiers))
	}
	return b.zeroBuf
}

// gainAt returns the $/h gain of the spot vector over no spot capacity.
func (b *BundledSprint) gainAt(load float64, spots []float64) float64 {
	base := b.Cost.RatePerHour(b.latencyAt(load, b.zero()), load)
	with := b.Cost.RatePerHour(b.latencyAt(load, spots), load)
	g := base - with
	if g < 0 {
		return 0
	}
	return g
}

// optimalVector grid-searches the per-tier demand vector maximizing net
// benefit at the given price (Fig. 4(a)'s per-price optimum). The grid is
// coarse (gridW watts) — tenants approximate, as the paper notes.
func (b *BundledSprint) optimalVector(load, price float64) []float64 {
	const gridW = 5.0
	best := make([]float64, len(b.Tiers))
	bestNet := 0.0
	// Exhaustive grid over up to three tiers; bundles are small by design.
	var walk func(i int, cur []float64)
	var scratch = make([]float64, len(b.Tiers))
	walk = func(i int, cur []float64) {
		if i == len(b.Tiers) {
			total := 0.0
			for _, s := range cur {
				total += s
			}
			net := b.gainAt(load, cur) - price*total/1000
			if net > bestNet+1e-12 {
				bestNet = net
				copy(best, cur)
			}
			return
		}
		lim := math.Min(b.Tiers[i].Headroom, b.Tiers[i].Model.PeakWatts-b.Tiers[i].Reserved)
		for s := 0.0; s <= lim+gridW/2; s += gridW {
			cur[i] = math.Min(s, lim)
			walk(i+1, cur)
		}
	}
	walk(0, scratch)
	return best
}

// needsSpot reports whether the reservation misses the SLO at the slot's
// load.
func (b *BundledSprint) needsSpot(slot int) bool {
	load := b.Load.At(slot)
	if load <= 0 {
		return false
	}
	return b.latencyAt(load, b.zero()) > b.Cost.SLOms
}

// PlanBids implements Agent: it computes the optimal demand vectors at
// qmin and qmax and bundles them into per-rack linear bids.
func (b *BundledSprint) PlanBids(slot int, _ MarketHint) []core.Bid {
	if !b.needsSpot(slot) {
		return nil
	}
	load := b.Load.At(slot)
	dMax := b.optimalVector(load, b.QMin)
	dMin := b.optimalVector(load, b.QMax)
	racks := b.Racks()
	for i := range dMin {
		if dMin[i] > dMax[i] {
			dMin[i] = dMax[i] // keep each rack's bid monotone
		}
	}
	any := false
	for _, d := range dMax {
		if d > 0 {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	bids, err := core.Bundle(b.TenantName, racks, dMax, dMin, b.QMin, b.QMax)
	if err != nil {
		return nil
	}
	return bids
}

// MaxPerfRequests implements Agent. The joint gain is split per tier by
// holding the other tiers at their optimal zero-price allocation, a
// standard separable approximation.
func (b *BundledSprint) MaxPerfRequests(slot int) []core.MaxPerfRequest {
	if !b.needsSpot(slot) {
		return nil
	}
	load := b.Load.At(slot)
	ref := b.optimalVector(load, 0)
	reqs := make([]core.MaxPerfRequest, 0, len(b.Tiers))
	for i, t := range b.Tiers {
		i := i
		lim := math.Min(t.Headroom, t.Model.PeakWatts-t.Reserved)
		if lim <= 0 {
			continue
		}
		gain := func(w float64) float64 {
			v := append([]float64(nil), ref...)
			v[i] = math.Min(w, lim)
			return b.gainAt(load, v)
		}
		reqs = append(reqs, core.MaxPerfRequest{Rack: t.Rack, MaxWatts: lim, Gain: gain})
	}
	return reqs
}

// Execute implements Agent. The returned PowerByRack map is agent-owned
// scratch, valid until the next Execute call.
func (b *BundledSprint) Execute(slot int, grants map[int]float64) SlotResult {
	load := b.Load.At(slot)
	if len(b.spotsBuf) != len(b.Tiers) {
		b.spotsBuf = make([]float64, len(b.Tiers))
	}
	if b.rackBuf == nil {
		b.rackBuf = make(map[int]float64, len(b.Tiers))
	}
	spots, byRack := b.spotsBuf, b.rackBuf
	totalGrant, totalDraw, totalUsed := 0.0, 0.0, 0.0
	for i, t := range b.Tiers {
		g := grants[t.Rack]
		spots[i] = g
		totalGrant += g
		draw := math.Min(t.Reserved+g, t.Model.PeakWatts)
		if load <= 0 {
			draw = math.Min(t.Model.IdleWatts, t.Reserved)
		}
		byRack[t.Rack] = draw
		totalDraw += draw
		totalUsed += math.Min(math.Max(0, draw-t.Reserved), g)
	}
	if load <= 0 {
		return SlotResult{PowerWatts: totalDraw, SpotGrantWatts: totalGrant, PowerByRack: byRack}
	}
	lat := b.latencyAt(load, spots)
	return SlotResult{
		Participated:   totalGrant > 0,
		PowerWatts:     totalDraw,
		SpotGrantWatts: totalGrant,
		SpotUsedWatts:  totalUsed,
		LatencyMS:      lat,
		SLOViolated:    lat > b.Cost.SLOms,
		PerfScore:      1000 / lat,
		PerfCostRate:   b.Cost.RatePerHour(lat, load),
		PowerByRack:    byRack,
	}
}
