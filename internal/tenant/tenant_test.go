package tenant

import (
	"math"
	"testing"
	"testing/quick"

	"spotdc/internal/core"
	"spotdc/internal/trace"
	"spotdc/internal/workload"
)

func constLoad(v float64, n int) *trace.Power {
	w := make([]float64, n)
	for i := range w {
		w[i] = v
	}
	return &trace.Power{Name: "const", SlotSeconds: 120, Watts: w}
}

// newSprint builds a Search-like sprinting agent under high load (SLO at
// risk without spot capacity).
func newSprint(load float64, policy BidPolicy) *Sprint {
	return &Sprint{
		TenantName: "S-1",
		RackIndex:  0,
		Model:      workload.SearchModel(),
		Cost:       workload.DefaultSprintCost(),
		Reserved:   145,
		Headroom:   60,
		Load:       constLoad(load, 10),
		QMin:       0.1,
		QMax:       0.8,
		Policy:     policy,
	}
}

func newOpp(backlog float64, policy BidPolicy) *Opp {
	return &Opp{
		TenantName: "O-1",
		RackIndex:  1,
		Model:      workload.WordCountModel(),
		Cost:       workload.DefaultOppCost(),
		Reserved:   125,
		Headroom:   60,
		Backlog:    constLoad(backlog, 10),
		QMin:       0.02,
		QMax:       0.2,
		Policy:     policy,
	}
}

func TestBidPolicyString(t *testing.T) {
	for _, p := range []BidPolicy{PolicyElastic, PolicySimple, PolicyStep, PolicyFull, PolicyPricePredict} {
		if p.String() == "" {
			t.Errorf("policy %d has empty string", p)
		}
	}
	if BidPolicy(42).String() == "" {
		t.Error("unknown policy should still print")
	}
}

func TestOptimalDemand(t *testing.T) {
	// gain(d) = 0.001·d up to 50 W then flat: at price below 1 $/kW·h the
	// optimum is 50; above it, 0.
	gain := func(d float64) float64 { return 0.001 * math.Min(d, 50) }
	if got := OptimalDemand(gain, 0.5, 100, 1); got != 50 {
		t.Errorf("cheap price: %v, want 50", got)
	}
	if got := OptimalDemand(gain, 2.0, 100, 1); got != 0 {
		t.Errorf("expensive price: %v, want 0", got)
	}
	if got := OptimalDemand(gain, 0.5, 0, 1); got != 0 {
		t.Errorf("zero maxWatts: %v", got)
	}
	if got := OptimalDemand(gain, 0.5, 30, 0); got != 30 {
		t.Errorf("default step, capped: %v, want 30", got)
	}
}

func TestSprintAgentBasics(t *testing.T) {
	s := newSprint(100, PolicyElastic)
	if s.Name() != "S-1" || s.Class() != workload.Sprinting {
		t.Error("identity wrong")
	}
	if racks := s.Racks(); len(racks) != 1 || racks[0] != 0 {
		t.Errorf("Racks = %v", racks)
	}
	if s.ReservedWatts(0) != 145 || s.ReservedWatts(3) != 0 {
		t.Error("ReservedWatts wrong")
	}
}

func TestSprintBidsOnlyUnderPressure(t *testing.T) {
	// Low load: the 145 W reservation meets the SLO, so no bid.
	idle := newSprint(40, PolicyElastic)
	if bids := idle.PlanBids(0, MarketHint{}); bids != nil {
		t.Errorf("low-load agent bid: %v", bids)
	}
	if reqs := idle.MaxPerfRequests(0); reqs != nil {
		t.Errorf("low-load MaxPerf requests: %v", reqs)
	}
	// High load: must bid.
	hot := newSprint(100, PolicyElastic)
	bids := hot.PlanBids(0, MarketHint{})
	if len(bids) != 1 {
		t.Fatalf("bids = %v", bids)
	}
	if bids[0].Rack != 0 || bids[0].Tenant != "S-1" {
		t.Errorf("bid identity: %+v", bids[0])
	}
	lb, ok := bids[0].Fn.(core.LinearBid)
	if !ok {
		t.Fatalf("elastic policy produced %T", bids[0].Fn)
	}
	if lb.DMax <= 0 || lb.DMax > 60 {
		t.Errorf("DMax = %v, want in (0, 60]", lb.DMax)
	}
	if lb.DMin > lb.DMax {
		t.Errorf("DMin %v > DMax %v", lb.DMin, lb.DMax)
	}
	if lb.QMin != 0.1 || lb.QMax != 0.8 {
		t.Errorf("prices: %+v", lb)
	}
	if reqs := hot.MaxPerfRequests(0); len(reqs) != 1 || reqs[0].MaxWatts <= 0 {
		t.Errorf("MaxPerf requests: %+v", reqs)
	}
}

func TestSprintZeroLoadSlot(t *testing.T) {
	s := newSprint(0, PolicyElastic)
	if bids := s.PlanBids(0, MarketHint{}); bids != nil {
		t.Error("zero-load slot should not bid")
	}
	res := s.Execute(0, nil)
	if res.PowerWatts > s.Model.IdleWatts {
		t.Errorf("idle power = %v", res.PowerWatts)
	}
	if res.SLOViolated {
		t.Error("idle slot cannot violate SLO")
	}
}

func TestSprintExecuteImprovesWithGrant(t *testing.T) {
	s := newSprint(100, PolicyElastic)
	without := s.Execute(0, nil)
	with := s.Execute(0, map[int]float64{0: 50})
	if !without.SLOViolated {
		t.Fatalf("premise: no-spot slot should violate SLO (lat=%v)", without.LatencyMS)
	}
	if with.SLOViolated {
		t.Errorf("50 W grant should restore the SLO (lat=%v)", with.LatencyMS)
	}
	if with.LatencyMS >= without.LatencyMS {
		t.Errorf("latency did not improve: %v → %v", without.LatencyMS, with.LatencyMS)
	}
	if with.PerfScore <= without.PerfScore {
		t.Error("perf score did not improve")
	}
	if with.SpotUsedWatts <= 0 || with.SpotUsedWatts > 50 {
		t.Errorf("spot used = %v", with.SpotUsedWatts)
	}
	if with.PowerWatts > s.Reserved+50+1e-9 {
		t.Errorf("drew %v W beyond budget", with.PowerWatts)
	}
	if !with.Participated || without.Participated {
		t.Error("participation flags wrong")
	}
}

func TestSprintPolicies(t *testing.T) {
	for _, p := range []BidPolicy{PolicySimple, PolicyStep, PolicyFull, PolicyElastic} {
		s := newSprint(100, p)
		bids := s.PlanBids(0, MarketHint{})
		if len(bids) != 1 {
			t.Fatalf("policy %v: bids = %v", p, bids)
		}
		fn := bids[0].Fn
		// All policies must produce a valid, monotone demand function whose
		// demand never exceeds the rack headroom.
		for _, q := range []float64{0, 0.1, 0.3, 0.5, 0.8, 1.0} {
			d := fn.Demand(q)
			if d < 0 || d > 60+1e-9 {
				t.Errorf("policy %v: demand %v at price %v", p, d, q)
			}
		}
		if fn.Demand(0.9) != 0 {
			t.Errorf("policy %v: demand above QMax should be 0", p)
		}
	}
	// Simple policy is all-or-nothing at QMax.
	s := newSprint(100, PolicySimple)
	fn := s.PlanBids(0, MarketHint{})[0].Fn
	if fn.Demand(0.79) != fn.Demand(0.1) {
		t.Error("simple policy should be flat up to QMax")
	}
}

func TestSprintPricePredictPolicy(t *testing.T) {
	s := newSprint(100, PolicyPricePredict)
	// Without a hint it behaves like a step at QMax.
	noHint := s.PlanBids(0, MarketHint{})[0].Fn
	if noHint.MaxPrice() != 0.8 {
		t.Errorf("no hint MaxPrice = %v, want QMax", noHint.MaxPrice())
	}
	// With a hint it bids its full demand at exactly the predicted price,
	// never above QMax.
	hinted := s.PlanBids(0, MarketHint{PredictedPrice: 0.3, HavePrediction: true})[0].Fn
	if math.Abs(hinted.MaxPrice()-0.3) > 1e-9 {
		t.Errorf("hinted MaxPrice = %v, want 0.3", hinted.MaxPrice())
	}
	if hinted.Demand(0.3) <= 0 {
		t.Error("hinted bid should demand at the predicted price")
	}
	if hinted.Demand(0.3) < s.PlanBids(0, MarketHint{})[0].Fn.Demand(0.1) {
		t.Error("strategic bid should not shade demand below the elastic DMax")
	}
	// An out-of-range prediction falls back to the elastic bid.
	capped := s.PlanBids(0, MarketHint{PredictedPrice: 5, HavePrediction: true})[0].Fn
	if capped.MaxPrice() > 0.8 {
		t.Errorf("fallback MaxPrice %v above QMax", capped.MaxPrice())
	}
}

func TestOppAgent(t *testing.T) {
	o := newOpp(10, PolicyElastic)
	if o.Name() != "O-1" || o.Class() != workload.Opportunistic {
		t.Error("identity wrong")
	}
	bids := o.PlanBids(0, MarketHint{})
	if len(bids) != 1 {
		t.Fatalf("bids = %v", bids)
	}
	if bids[0].Fn.MaxPrice() > 0.2 {
		t.Errorf("opportunistic max price %v above amortized rate", bids[0].Fn.MaxPrice())
	}
	// No backlog → no bid, idle power.
	quietSlot := newOpp(0, PolicyElastic)
	if bids := quietSlot.PlanBids(0, MarketHint{}); bids != nil {
		t.Errorf("idle opp bid: %v", bids)
	}
	res := quietSlot.Execute(0, nil)
	if res.ThroughputUnits != 0 || res.PowerWatts > quietSlot.Model.IdleWatts {
		t.Errorf("idle slot: %+v", res)
	}
}

func TestOppExecuteThroughputImproves(t *testing.T) {
	o := newOpp(10, PolicyElastic)
	without := o.Execute(0, nil)
	with := o.Execute(0, map[int]float64{1: 60})
	if with.ThroughputUnits <= without.ThroughputUnits {
		t.Errorf("throughput: %v → %v", without.ThroughputUnits, with.ThroughputUnits)
	}
	// Paper band: full spot headroom gives 1.2–1.8× speed-up.
	ratio := with.ThroughputUnits / without.ThroughputUnits
	if ratio < 1.2 || ratio > 1.8 {
		t.Errorf("speed-up %v outside [1.2, 1.8]", ratio)
	}
	if with.PerfCostRate >= without.PerfCostRate {
		t.Error("value rate should improve (more negative cost)")
	}
}

func TestOppMaxPerfRequests(t *testing.T) {
	o := newOpp(10, PolicyElastic)
	reqs := o.MaxPerfRequests(0)
	if len(reqs) != 1 || reqs[0].Rack != 1 {
		t.Fatalf("reqs = %+v", reqs)
	}
	if g := reqs[0].Gain(30); g <= 0 {
		t.Errorf("gain(30) = %v", g)
	}
	if reqs := newOpp(0, PolicyElastic).MaxPerfRequests(0); reqs != nil {
		t.Error("idle opp should have no MaxPerf requests")
	}
}

func TestSprintGrantBeyondPeakIsUnused(t *testing.T) {
	s := newSprint(100, PolicyElastic)
	res := s.Execute(0, map[int]float64{0: 500})
	if res.PowerWatts > s.Model.PeakWatts+1e-9 {
		t.Errorf("drew %v beyond peak %v", res.PowerWatts, s.Model.PeakWatts)
	}
	if res.SpotUsedWatts > s.Model.PeakWatts-s.Reserved+1e-9 {
		t.Errorf("used %v spot beyond peak-reserved", res.SpotUsedWatts)
	}
}

// Property: across loads and policies, planned bids always have demand
// within the rack headroom, prices within [QMin, QMax], and demand
// monotone in price.
func TestQuickSprintBidsWellFormed(t *testing.T) {
	f := func(loadRaw uint16, policyRaw uint8) bool {
		load := float64(loadRaw % 160)
		policy := BidPolicy(policyRaw % 5)
		s := newSprint(load, policy)
		bids := s.PlanBids(0, MarketHint{PredictedPrice: 0.3, HavePrediction: policy == PolicyPricePredict})
		for _, b := range bids {
			prev := math.Inf(1)
			for q := 0.0; q <= 1.0; q += 0.05 {
				d := b.Fn.Demand(q)
				if d < -1e-9 || d > 60+1e-9 {
					return false
				}
				if d > prev+1e-9 {
					return false
				}
				prev = d
			}
			if b.Fn.MaxPrice() > 0.8+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Execute never draws beyond reserved+grant (capped at peak) and
// never reports SpotUsed beyond the grant.
func TestQuickExecutePowerBudget(t *testing.T) {
	f := func(loadRaw, grantRaw uint16) bool {
		load := float64(loadRaw % 200)
		grant := float64(grantRaw % 100)
		s := newSprint(load, PolicyElastic)
		res := s.Execute(0, map[int]float64{0: grant})
		if res.PowerWatts > s.Reserved+grant+1e-9 && res.PowerWatts > s.Model.PeakWatts+1e-9 {
			return false
		}
		if res.SpotUsedWatts > grant+1e-9 {
			return false
		}
		o := newOpp(float64(loadRaw%20), PolicyElastic)
		ores := o.Execute(0, map[int]float64{1: grant})
		if ores.PowerWatts > o.Reserved+grant+1e-9 && ores.PowerWatts > o.Model.PeakWatts+1e-9 {
			return false
		}
		return ores.SpotUsedWatts <= grant+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
