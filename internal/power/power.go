// Package power models the tree-type power-delivery hierarchy of a
// multi-tenant data center (Fig. 1 of the SpotDC paper): one UPS feeding
// cluster-level PDUs, each PDU feeding tenant racks. It provides capacity
// accounting, oversubscription, spot-capacity measurement and conservative
// prediction (Section III-C), and emergency detection with circuit-breaker
// tolerance.
//
// All power quantities are in watts.
package power

import (
	"errors"
	"fmt"
	"math"
)

// ErrTopology reports an inconsistent data-center description.
var ErrTopology = errors.New("power: invalid topology")

// PDU describes one cluster-level power distribution unit.
type PDU struct {
	// ID names the PDU, e.g. "PDU#1".
	ID string
	// Capacity is the usable IT power capacity in watts. A typical cluster
	// PDU supports 200–300 kW; the paper's scaled-down testbed uses 715 W
	// and 724 W.
	Capacity float64
}

// Rack describes one tenant rack (in the paper's scaled-down testbed a
// single server stands in for a rack).
type Rack struct {
	// ID names the rack, e.g. "S-1".
	ID string
	// Tenant names the owning tenant; racks are never shared.
	Tenant string
	// PDU is the index into Topology.PDUs of the feeding PDU.
	PDU int
	// Guaranteed is the tenant's reserved (guaranteed) capacity for this
	// rack in watts.
	Guaranteed float64
	// SpotHeadroom is P_r^R: the maximum spot capacity the physical
	// rack-level PDU can deliver beyond the guaranteed capacity. Rack-level
	// capacity is cheap (US¢20–50/W) so a 20%+ margin is standard.
	SpotHeadroom float64
}

// Topology is an immutable description of the power-delivery tree.
type Topology struct {
	// UPSCapacity is the usable capacity at the shared UPS in watts.
	UPSCapacity float64
	// PDUs lists the cluster-level PDUs under the UPS.
	PDUs []PDU
	// Racks lists every rack; Rack.PDU indexes into PDUs.
	Racks []Rack

	racksByPDU [][]int
	rackIndex  map[string]int
}

// NewTopology validates and indexes a topology description.
func NewTopology(upsCapacity float64, pdus []PDU, racks []Rack) (*Topology, error) {
	if upsCapacity <= 0 {
		return nil, fmt.Errorf("%w: UPS capacity %v must be positive", ErrTopology, upsCapacity)
	}
	if len(pdus) == 0 {
		return nil, fmt.Errorf("%w: no PDUs", ErrTopology)
	}
	t := &Topology{
		UPSCapacity: upsCapacity,
		PDUs:        append([]PDU(nil), pdus...),
		Racks:       append([]Rack(nil), racks...),
		racksByPDU:  make([][]int, len(pdus)),
		rackIndex:   make(map[string]int, len(racks)),
	}
	seenPDU := make(map[string]bool, len(pdus))
	for i, p := range t.PDUs {
		if p.Capacity <= 0 {
			return nil, fmt.Errorf("%w: PDU %q capacity %v must be positive", ErrTopology, p.ID, p.Capacity)
		}
		if seenPDU[p.ID] {
			return nil, fmt.Errorf("%w: duplicate PDU ID %q", ErrTopology, p.ID)
		}
		seenPDU[p.ID] = true
		_ = i
	}
	for i, r := range t.Racks {
		if r.PDU < 0 || r.PDU >= len(t.PDUs) {
			return nil, fmt.Errorf("%w: rack %q references PDU %d of %d", ErrTopology, r.ID, r.PDU, len(t.PDUs))
		}
		if r.Guaranteed < 0 {
			return nil, fmt.Errorf("%w: rack %q guaranteed capacity %v negative", ErrTopology, r.ID, r.Guaranteed)
		}
		if r.SpotHeadroom < 0 {
			return nil, fmt.Errorf("%w: rack %q spot headroom %v negative", ErrTopology, r.ID, r.SpotHeadroom)
		}
		if _, dup := t.rackIndex[r.ID]; dup {
			return nil, fmt.Errorf("%w: duplicate rack ID %q", ErrTopology, r.ID)
		}
		t.rackIndex[r.ID] = i
		t.racksByPDU[r.PDU] = append(t.racksByPDU[r.PDU], i)
	}
	return t, nil
}

// RacksOfPDU returns the indices of racks fed by PDU m. The returned slice
// must not be modified.
func (t *Topology) RacksOfPDU(m int) []int { return t.racksByPDU[m] }

// RackByID returns the index of the rack with the given ID.
func (t *Topology) RackByID(id string) (int, bool) {
	i, ok := t.rackIndex[id]
	return i, ok
}

// GuaranteedOfPDU sums the guaranteed capacity leased on PDU m.
func (t *Topology) GuaranteedOfPDU(m int) float64 {
	sum := 0.0
	for _, r := range t.racksByPDU[m] {
		sum += t.Racks[r].Guaranteed
	}
	return sum
}

// TotalGuaranteed sums the guaranteed capacity across all racks.
func (t *Topology) TotalGuaranteed() float64 {
	sum := 0.0
	for _, r := range t.Racks {
		sum += r.Guaranteed
	}
	return sum
}

// Oversubscription returns the ratio of leased guaranteed capacity to
// physical capacity at PDU m (>1 means the PDU is oversubscribed; the
// paper's testbed runs at 1.05).
func (t *Topology) Oversubscription(m int) float64 {
	return t.GuaranteedOfPDU(m) / t.PDUs[m].Capacity
}

// UPSOversubscription returns leased capacity over UPS capacity.
func (t *Topology) UPSOversubscription() float64 {
	return t.TotalGuaranteed() / t.UPSCapacity
}

// Reading is a snapshot of per-rack power at one instant, as collected by
// the operator's routine rack-level monitoring.
type Reading struct {
	// RackWatts has one measured power per rack, indexed like
	// Topology.Racks.
	RackWatts []float64
	// OtherPDUWatts is non-participating load attached directly at each PDU
	// that is not broken out into modeled racks (the "Other" rows of
	// Table I), indexed like Topology.PDUs.
	OtherPDUWatts []float64
}

// PDUPower returns the total power flowing through PDU m for this reading.
func (t *Topology) PDUPower(rd Reading, m int) float64 {
	sum := 0.0
	if m < len(rd.OtherPDUWatts) {
		sum += rd.OtherPDUWatts[m]
	}
	for _, r := range t.racksByPDU[m] {
		if r < len(rd.RackWatts) {
			sum += rd.RackWatts[r]
		}
	}
	return sum
}

// UPSPower returns the total power at the UPS for this reading.
func (t *Topology) UPSPower(rd Reading) float64 {
	sum := 0.0
	for m := range t.PDUs {
		sum += t.PDUPower(rd, m)
	}
	return sum
}

// Spot is the available spot capacity at every level for one time slot:
// P_m(t) per PDU and P_o(t) at the UPS.
type Spot struct {
	PDUWatts []float64
	UPSWatts float64
}

// PredictOptions tunes spot-capacity prediction.
type PredictOptions struct {
	// UnderPredictionFactor conservatively scales the predicted spot
	// capacity: 0.15 means the operator only offers 85% of what it
	// measured (Fig. 17). Must be in [0, 1).
	UnderPredictionFactor float64
	// SpotUsers marks racks currently using spot capacity or requesting it
	// for the next slot; their reference power is their guaranteed capacity
	// rather than their instantaneous usage (Section III-C).
	SpotUsers map[int]bool
}

// PredictSpot estimates the spot capacity available in the next slot from
// the current reading, exactly as Section III-C prescribes: subtract each
// rack's reference power (instantaneous usage, or guaranteed capacity for
// racks in the spot market) from the physical capacities, then apply the
// conservative under-prediction factor.
func (t *Topology) PredictSpot(rd Reading, opt PredictOptions) (Spot, error) {
	if opt.UnderPredictionFactor < 0 || opt.UnderPredictionFactor >= 1 {
		return Spot{}, fmt.Errorf("power: under-prediction factor %v outside [0,1)", opt.UnderPredictionFactor)
	}
	scale := 1 - opt.UnderPredictionFactor
	out := Spot{PDUWatts: make([]float64, len(t.PDUs))}
	upsRef := 0.0
	for m, p := range t.PDUs {
		ref := 0.0
		if m < len(rd.OtherPDUWatts) {
			ref += rd.OtherPDUWatts[m]
		}
		for _, r := range t.racksByPDU[m] {
			if opt.SpotUsers[r] {
				ref += t.Racks[r].Guaranteed
			} else if r < len(rd.RackWatts) {
				ref += rd.RackWatts[r]
			}
		}
		upsRef += ref
		avail := (p.Capacity - ref) * scale
		if avail < 0 {
			avail = 0
		}
		out.PDUWatts[m] = avail
	}
	out.UPSWatts = (t.UPSCapacity - upsRef) * scale
	if out.UPSWatts < 0 {
		out.UPSWatts = 0
	}
	return out, nil
}

// Emergency describes a capacity excursion at one level of the hierarchy.
type Emergency struct {
	// Level is "PDU" or "UPS".
	Level string
	// ID names the overloaded element.
	ID string
	// Load and Capacity are the measured power and the limit in watts.
	Load, Capacity float64
	// PDU is the index into Topology.PDUs of the overloaded PDU, or -1 for
	// a UPS-level emergency. CheckEmergencies fills it so responders can
	// map the excursion back to the racks that feed the element.
	PDU int
}

// OverloadFraction returns how far past capacity the element is, e.g. 0.03
// for a 3% excursion. Any load on an element with no capacity at all is an
// unbounded excursion, not a healthy one.
func (e Emergency) OverloadFraction() float64 {
	if e.Capacity <= 0 {
		if e.Load > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return e.Load/e.Capacity - 1
}

func (e Emergency) String() string {
	return fmt.Sprintf("%s %s overloaded: %.1f W of %.1f W (+%.1f%%)",
		e.Level, e.ID, e.Load, e.Capacity, 100*e.OverloadFraction())
}

// CheckEmergencies reports every PDU or UPS whose load exceeds its capacity
// by more than the circuit-breaker tolerance (a fraction, e.g. 0.05 for the
// short-term 5% excursion breakers ride through).
func (t *Topology) CheckEmergencies(rd Reading, breakerTolerance float64) []Emergency {
	var out []Emergency
	for m, p := range t.PDUs {
		load := t.PDUPower(rd, m)
		if load > p.Capacity*(1+breakerTolerance) {
			out = append(out, Emergency{Level: "PDU", ID: p.ID, Load: load, Capacity: p.Capacity, PDU: m})
		}
	}
	ups := t.UPSPower(rd)
	if ups > t.UPSCapacity*(1+breakerTolerance) {
		out = append(out, Emergency{Level: "UPS", ID: "UPS", Load: ups, Capacity: t.UPSCapacity, PDU: -1})
	}
	return out
}
