package power

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

// testbed mirrors Table I of the paper: PDU#1 at 715 W with four
// participating racks plus 250 W "other", PDU#2 at 724 W likewise.
func testbed(t *testing.T) *Topology {
	t.Helper()
	topo, err := NewTopology(1370,
		[]PDU{{ID: "PDU#1", Capacity: 715}, {ID: "PDU#2", Capacity: 724}},
		[]Rack{
			{ID: "S-1", Tenant: "Search-1", PDU: 0, Guaranteed: 145, SpotHeadroom: 60},
			{ID: "S-2", Tenant: "Web", PDU: 0, Guaranteed: 115, SpotHeadroom: 50},
			{ID: "O-1", Tenant: "Count-1", PDU: 0, Guaranteed: 125, SpotHeadroom: 60},
			{ID: "O-2", Tenant: "Graph-1", PDU: 0, Guaranteed: 115, SpotHeadroom: 50},
			{ID: "S-3", Tenant: "Search-2", PDU: 1, Guaranteed: 145, SpotHeadroom: 60},
			{ID: "O-3", Tenant: "Count-2", PDU: 1, Guaranteed: 125, SpotHeadroom: 60},
			{ID: "O-4", Tenant: "Sort", PDU: 1, Guaranteed: 125, SpotHeadroom: 60},
			{ID: "O-5", Tenant: "Graph-2", PDU: 1, Guaranteed: 115, SpotHeadroom: 50},
		})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestNewTopologyValidation(t *testing.T) {
	okPDUs := []PDU{{ID: "p", Capacity: 100}}
	cases := []struct {
		name  string
		ups   float64
		pdus  []PDU
		racks []Rack
	}{
		{"zero UPS", 0, okPDUs, nil},
		{"no PDUs", 100, nil, nil},
		{"zero PDU capacity", 100, []PDU{{ID: "p", Capacity: 0}}, nil},
		{"duplicate PDU", 100, []PDU{{ID: "p", Capacity: 1}, {ID: "p", Capacity: 1}}, nil},
		{"bad rack PDU index", 100, okPDUs, []Rack{{ID: "r", PDU: 3}}},
		{"negative rack PDU index", 100, okPDUs, []Rack{{ID: "r", PDU: -1}}},
		{"negative guaranteed", 100, okPDUs, []Rack{{ID: "r", Guaranteed: -1}}},
		{"negative headroom", 100, okPDUs, []Rack{{ID: "r", SpotHeadroom: -1}}},
		{"duplicate rack", 100, okPDUs, []Rack{{ID: "r"}, {ID: "r"}}},
	}
	for _, c := range cases {
		if _, err := NewTopology(c.ups, c.pdus, c.racks); !errors.Is(err, ErrTopology) {
			t.Errorf("%s: err = %v, want ErrTopology", c.name, err)
		}
	}
}

func TestTopologyIndexing(t *testing.T) {
	topo := testbed(t)
	if got := topo.RacksOfPDU(0); len(got) != 4 {
		t.Errorf("PDU#1 racks = %v, want 4", got)
	}
	if got := topo.RacksOfPDU(1); len(got) != 4 {
		t.Errorf("PDU#2 racks = %v, want 4", got)
	}
	i, ok := topo.RackByID("O-4")
	if !ok || topo.Racks[i].Tenant != "Sort" {
		t.Errorf("RackByID(O-4) = %d, %v", i, ok)
	}
	if _, ok := topo.RackByID("nope"); ok {
		t.Error("RackByID should miss unknown rack")
	}
}

func TestCapacityAccounting(t *testing.T) {
	topo := testbed(t)
	// Table I: PDU#1 participating subscriptions 145+115+125+115 = 500 W
	// plus 250 W other leased capacity is carried outside Racks here, so
	// GuaranteedOfPDU counts only modeled racks.
	if got := topo.GuaranteedOfPDU(0); got != 500 {
		t.Errorf("GuaranteedOfPDU(0) = %v, want 500", got)
	}
	if got := topo.GuaranteedOfPDU(1); got != 510 {
		t.Errorf("GuaranteedOfPDU(1) = %v, want 510", got)
	}
	if got := topo.TotalGuaranteed(); got != 1010 {
		t.Errorf("TotalGuaranteed = %v, want 1010", got)
	}
	if got := topo.Oversubscription(0); math.Abs(got-500.0/715) > 1e-12 {
		t.Errorf("Oversubscription(0) = %v", got)
	}
	if got := topo.UPSOversubscription(); math.Abs(got-1010.0/1370) > 1e-12 {
		t.Errorf("UPSOversubscription = %v", got)
	}
}

func TestPDUAndUPSPower(t *testing.T) {
	topo := testbed(t)
	rd := Reading{
		RackWatts:     []float64{100, 90, 80, 70, 110, 95, 85, 75},
		OtherPDUWatts: []float64{200, 210},
	}
	if got := topo.PDUPower(rd, 0); got != 100+90+80+70+200 {
		t.Errorf("PDUPower(0) = %v", got)
	}
	if got := topo.PDUPower(rd, 1); got != 110+95+85+75+210 {
		t.Errorf("PDUPower(1) = %v", got)
	}
	if got := topo.UPSPower(rd); got != 540+575 {
		t.Errorf("UPSPower = %v", got)
	}
}

func TestPDUPowerShortReading(t *testing.T) {
	topo := testbed(t)
	// Missing rack readings and other-loads are treated as zero rather than
	// panicking; a real deployment can always have monitoring gaps.
	rd := Reading{RackWatts: []float64{100}}
	if got := topo.PDUPower(rd, 0); got != 100 {
		t.Errorf("PDUPower with short reading = %v, want 100", got)
	}
	if got := topo.UPSPower(rd); got != 100 {
		t.Errorf("UPSPower with short reading = %v, want 100", got)
	}
}

func TestPredictSpot(t *testing.T) {
	topo := testbed(t)
	rd := Reading{
		RackWatts:     []float64{100, 90, 80, 70, 110, 95, 85, 75},
		OtherPDUWatts: []float64{200, 210},
	}
	spot, err := topo.PredictSpot(rd, PredictOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := spot.PDUWatts[0]; math.Abs(got-(715-540)) > 1e-9 {
		t.Errorf("PDU#1 spot = %v, want 175", got)
	}
	if got := spot.PDUWatts[1]; math.Abs(got-(724-575)) > 1e-9 {
		t.Errorf("PDU#2 spot = %v, want 149", got)
	}
	if got := spot.UPSWatts; math.Abs(got-(1370-1115)) > 1e-9 {
		t.Errorf("UPS spot = %v, want 255", got)
	}
}

func TestPredictSpotSpotUsersUseGuaranteedReference(t *testing.T) {
	topo := testbed(t)
	rd := Reading{
		RackWatts:     []float64{180, 90, 80, 70, 110, 95, 85, 75}, // S-1 is sprinting above its 145 W reservation
		OtherPDUWatts: []float64{200, 210},
	}
	spot, err := topo.PredictSpot(rd, PredictOptions{SpotUsers: map[int]bool{0: true}})
	if err != nil {
		t.Fatal(err)
	}
	// S-1's reference is its 145 W guarantee, not its 180 W instantaneous
	// draw, per Section III-C.
	want := 715.0 - (145 + 90 + 80 + 70 + 200)
	if math.Abs(spot.PDUWatts[0]-want) > 1e-9 {
		t.Errorf("PDU#1 spot = %v, want %v", spot.PDUWatts[0], want)
	}
}

func TestPredictSpotUnderPrediction(t *testing.T) {
	topo := testbed(t)
	rd := Reading{
		RackWatts:     []float64{100, 90, 80, 70, 110, 95, 85, 75},
		OtherPDUWatts: []float64{200, 210},
	}
	full, err := topo.PredictSpot(rd, PredictOptions{})
	if err != nil {
		t.Fatal(err)
	}
	under, err := topo.PredictSpot(rd, PredictOptions{UnderPredictionFactor: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	for m := range full.PDUWatts {
		if math.Abs(under.PDUWatts[m]-0.85*full.PDUWatts[m]) > 1e-9 {
			t.Errorf("PDU %d under-predicted spot = %v, want %v", m, under.PDUWatts[m], 0.85*full.PDUWatts[m])
		}
	}
	if math.Abs(under.UPSWatts-0.85*full.UPSWatts) > 1e-9 {
		t.Errorf("UPS under-predicted = %v, want %v", under.UPSWatts, 0.85*full.UPSWatts)
	}
	if _, err := topo.PredictSpot(rd, PredictOptions{UnderPredictionFactor: 1}); err == nil {
		t.Error("factor 1 should be rejected")
	}
	if _, err := topo.PredictSpot(rd, PredictOptions{UnderPredictionFactor: -0.1}); err == nil {
		t.Error("negative factor should be rejected")
	}
}

func TestPredictSpotNeverNegative(t *testing.T) {
	topo := testbed(t)
	rd := Reading{
		RackWatts:     []float64{300, 300, 300, 300, 300, 300, 300, 300},
		OtherPDUWatts: []float64{400, 400},
	}
	spot, err := topo.PredictSpot(rd, PredictOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for m, w := range spot.PDUWatts {
		if w != 0 {
			t.Errorf("PDU %d overloaded but spot = %v, want 0", m, w)
		}
	}
	if spot.UPSWatts != 0 {
		t.Errorf("UPS overloaded but spot = %v, want 0", spot.UPSWatts)
	}
}

func TestCheckEmergencies(t *testing.T) {
	topo := testbed(t)
	calm := Reading{
		RackWatts:     []float64{100, 90, 80, 70, 110, 95, 85, 75},
		OtherPDUWatts: []float64{200, 210},
	}
	if em := topo.CheckEmergencies(calm, 0); em != nil {
		t.Errorf("calm reading flagged: %v", em)
	}
	hot := Reading{ // PDU#1 = 800 W > 715 W; PDU#2 = 420 W; UPS = 1220 W < 1370 W
		RackWatts:     []float64{150, 150, 150, 150, 80, 80, 80, 80},
		OtherPDUWatts: []float64{200, 100},
	}
	em := topo.CheckEmergencies(hot, 0)
	if len(em) != 1 || em[0].Level != "PDU" || em[0].ID != "PDU#1" {
		t.Fatalf("emergencies = %v", em)
	}
	if f := em[0].OverloadFraction(); f <= 0 {
		t.Errorf("overload fraction = %v, want > 0", f)
	}
	if em[0].String() == "" {
		t.Error("String should describe the emergency")
	}
	// Breaker tolerance rides through small excursions.
	slight := Reading{
		RackWatts:     []float64{145, 120, 130, 125, 110, 95, 85, 75},
		OtherPDUWatts: []float64{200, 210}, // PDU#1 at 730 W = 2.1% over
	}
	if e := topo.CheckEmergencies(slight, 0.05); e != nil {
		t.Errorf("2%% excursion should be within 5%% breaker tolerance: %v", e)
	}
	if e := topo.CheckEmergencies(slight, 0); len(e) != 1 {
		t.Errorf("2%% excursion with zero tolerance should trip: %v", e)
	}
}

func TestUPSEmergency(t *testing.T) {
	topo := testbed(t)
	// Keep each PDU under its own cap but exceed the UPS: PDU capacities sum
	// to 1439 > 1370 UPS capacity (both 5% oversubscribed).
	rd := Reading{
		RackWatts:     []float64{140, 110, 120, 110, 140, 120, 120, 110},
		OtherPDUWatts: []float64{230, 230}, // PDU#1 = 710, PDU#2 = 720, UPS = 1430
	}
	em := topo.CheckEmergencies(rd, 0)
	if len(em) != 1 || em[0].Level != "UPS" {
		t.Fatalf("emergencies = %v, want single UPS emergency", em)
	}
}

func TestEmergencyZeroCapacity(t *testing.T) {
	// Any load on a zero-capacity element is an unbounded excursion; it
	// must rank above every finite overload, never read as "no overload".
	e := Emergency{Load: 10, Capacity: 0}
	if f := e.OverloadFraction(); !math.IsInf(f, 1) {
		t.Errorf("OverloadFraction with zero capacity = %v, want +Inf", f)
	}
	idle := Emergency{Load: 0, Capacity: 0}
	if f := idle.OverloadFraction(); f != 0 {
		t.Errorf("OverloadFraction with zero load and capacity = %v, want 0", f)
	}
}

// Property: predicted spot capacity never exceeds physical headroom and the
// under-prediction factor only ever shrinks it.
func TestQuickPredictSpotBounds(t *testing.T) {
	topo := testbed(t)
	f := func(raw [8]uint16, other1, other2 uint16, factorPct uint8) bool {
		rd := Reading{RackWatts: make([]float64, 8), OtherPDUWatts: []float64{float64(other1 % 500), float64(other2 % 500)}}
		for i, v := range raw {
			rd.RackWatts[i] = float64(v % 400)
		}
		factor := float64(factorPct%100) / 100
		full, err := topo.PredictSpot(rd, PredictOptions{})
		if err != nil {
			return false
		}
		scaled, err := topo.PredictSpot(rd, PredictOptions{UnderPredictionFactor: factor})
		if err != nil {
			return false
		}
		for m := range topo.PDUs {
			if full.PDUWatts[m] < 0 || full.PDUWatts[m] > topo.PDUs[m].Capacity {
				return false
			}
			if scaled.PDUWatts[m] > full.PDUWatts[m]+1e-9 {
				return false
			}
		}
		return full.UPSWatts >= 0 && full.UPSWatts <= topo.UPSCapacity &&
			scaled.UPSWatts <= full.UPSWatts+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
