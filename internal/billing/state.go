// Durable ledger state. The ledger is money: restore must be exact, not
// approximately exact, so every compensated accumulator serializes as its
// (sum, comp) pair and a restored ledger renders invoices bit-identical to
// the one it was captured from — the property the crash-recovery smoke
// diffs with ==.
package billing

import (
	"fmt"
	"sort"

	"spotdc/internal/operator"
)

// TenantUsage is one tenant's serialized accumulator state.
type TenantUsage struct {
	Tenant        string                 `json:"tenant"`
	ReservedWatts float64                `json:"reserved_watts"`
	Hours         operator.NeumaierState `json:"hours"`
	EnergyKWh     operator.NeumaierState `json:"energy_kwh"`
	SpotKWh       operator.NeumaierState `json:"spot_kwh"`
	SpotPaid      operator.NeumaierState `json:"spot_paid"`
	SpotSlots     int                    `json:"spot_slots"`
	PeakSpotWatts float64                `json:"peak_spot_watts"`
}

// LedgerState is a ledger snapshot: pricing plus per-tenant usage, sorted
// by tenant name so the encoding is deterministic.
type LedgerState struct {
	Pricing operator.Pricing `json:"pricing"`
	Tenants []TenantUsage    `json:"tenants,omitempty"`
}

// State captures the ledger for durable storage. The result owns its
// slices and stays valid across further RecordSlot calls.
func (l *Ledger) State() LedgerState {
	st := LedgerState{Pricing: l.pricing}
	if len(l.tenants) > 0 {
		st.Tenants = make([]TenantUsage, 0, len(l.tenants))
		for name, u := range l.tenants {
			st.Tenants = append(st.Tenants, TenantUsage{
				Tenant:        name,
				ReservedWatts: u.reservedWatts,
				Hours:         operator.ExportNeumaier(u.hours),
				EnergyKWh:     operator.ExportNeumaier(u.energyKWh),
				SpotKWh:       operator.ExportNeumaier(u.spotKWh),
				SpotPaid:      operator.ExportNeumaier(u.spotPaid),
				SpotSlots:     u.spotSlots,
				PeakSpotWatts: u.peakSpotWatts,
			})
		}
		sort.Slice(st.Tenants, func(i, j int) bool { return st.Tenants[i].Tenant < st.Tenants[j].Tenant })
	}
	return st
}

// RestoreLedger rebuilds a ledger from a captured state. SpotPaidTotal,
// Invoices, and all further accumulation are bit-identical to the source
// ledger's.
func RestoreLedger(st LedgerState) (*Ledger, error) {
	l, err := NewLedger(st.Pricing)
	if err != nil {
		return nil, err
	}
	for _, tu := range st.Tenants {
		if tu.Tenant == "" {
			return nil, fmt.Errorf("%w: empty tenant name in ledger state", ErrBilling)
		}
		if _, dup := l.tenants[tu.Tenant]; dup {
			return nil, fmt.Errorf("%w: duplicate tenant %q in ledger state", ErrBilling, tu.Tenant)
		}
		l.tenants[tu.Tenant] = &usage{
			reservedWatts: tu.ReservedWatts,
			hours:         tu.Hours.Restore(),
			energyKWh:     tu.EnergyKWh.Restore(),
			spotKWh:       tu.SpotKWh.Restore(),
			spotPaid:      tu.SpotPaid.Restore(),
			spotSlots:     tu.SpotSlots,
			peakSpotWatts: tu.PeakSpotWatts,
		}
	}
	return l, nil
}
