package billing

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"

	"spotdc/internal/operator"
	"spotdc/internal/sim"
)

func newLedger(t *testing.T) *Ledger {
	t.Helper()
	l, err := NewLedger(operator.DefaultPricing())
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewLedgerValidatesPricing(t *testing.T) {
	if _, err := NewLedger(operator.Pricing{GuaranteedPerKWMonth: -1, InfraLifetimeYears: 1, RackLifetimeYears: 1}); err == nil {
		t.Error("bad pricing accepted")
	}
}

func TestRegisterValidation(t *testing.T) {
	l := newLedger(t)
	if err := l.Register("", 100); !errors.Is(err, ErrBilling) {
		t.Error("empty name accepted")
	}
	if err := l.Register("a", -1); !errors.Is(err, ErrBilling) {
		t.Error("negative reservation accepted")
	}
	if err := l.Register("a", 145); err != nil {
		t.Fatal(err)
	}
	if err := l.Register("a", 145); !errors.Is(err, ErrBilling) {
		t.Error("duplicate accepted")
	}
}

func TestRecordSlotValidation(t *testing.T) {
	l := newLedger(t)
	if err := l.RecordSlot("ghost", 100, 0, 0, 1); !errors.Is(err, ErrBilling) {
		t.Error("unknown tenant accepted")
	}
	if err := l.Register("a", 145); err != nil {
		t.Fatal(err)
	}
	bad := [][4]float64{{-1, 0, 0, 1}, {1, -1, 0, 1}, {1, 0, -1, 1}, {1, 0, 0, 0}}
	for i, b := range bad {
		if err := l.RecordSlot("a", b[0], b[1], b[2], b[3]); !errors.Is(err, ErrBilling) {
			t.Errorf("bad record %d accepted", i)
		}
	}
}

func TestInvoiceArithmetic(t *testing.T) {
	l := newLedger(t)
	if err := l.Register("Search-1", 145); err != nil {
		t.Fatal(err)
	}
	// 30 slots of 2 minutes = 1 hour: draw 130 W, two slots with 30 W spot
	// at $0.2/kWh.
	slotH := 2.0 / 60
	for i := 0; i < 30; i++ {
		spot, price := 0.0, 0.0
		if i < 2 {
			spot, price = 30, 0.2
		}
		if err := l.RecordSlot("Search-1", 130+spot, spot, price, slotH); err != nil {
			t.Fatal(err)
		}
	}
	inv, err := l.InvoiceOf("Search-1")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(inv.PeriodHours-1) > 1e-9 {
		t.Errorf("period = %v h", inv.PeriodHours)
	}
	if len(inv.Items) != 3 {
		t.Fatalf("items = %d", len(inv.Items))
	}
	p := operator.DefaultPricing()
	wantSub := 0.145 * 1 / operator.HoursPerMonth * p.GuaranteedPerKWMonth
	if math.Abs(inv.Items[0].Amount-wantSub) > 1e-9 {
		t.Errorf("subscription = %v, want %v", inv.Items[0].Amount, wantSub)
	}
	wantEnergy := (0.130*1 + 0.030*2*slotH) * p.EnergyPerKWh
	if math.Abs(inv.Items[1].Amount-wantEnergy) > 1e-9 {
		t.Errorf("energy = %v, want %v", inv.Items[1].Amount, wantEnergy)
	}
	wantSpot := 0.2 * 0.030 * 2 * slotH
	if math.Abs(inv.Items[2].Amount-wantSpot) > 1e-9 {
		t.Errorf("spot = %v, want %v", inv.Items[2].Amount, wantSpot)
	}
	if math.Abs(inv.Total-(wantSub+wantEnergy+wantSpot)) > 1e-9 {
		t.Errorf("total = %v", inv.Total)
	}
	if inv.SpotShare <= 0 || inv.SpotShare > 0.05 {
		t.Errorf("spot share = %v, want small positive", inv.SpotShare)
	}
	// Effective spot rate recovers the clearing price.
	if math.Abs(inv.Items[2].Rate-0.2) > 1e-9 {
		t.Errorf("spot rate = %v, want 0.2", inv.Items[2].Rate)
	}
	if _, err := l.InvoiceOf("ghost"); !errors.Is(err, ErrBilling) {
		t.Error("unknown invoice accepted")
	}
}

func TestInvoicesSortedAndPrintable(t *testing.T) {
	l := newLedger(t)
	for _, n := range []string{"zeta", "alpha"} {
		if err := l.Register(n, 100); err != nil {
			t.Fatal(err)
		}
		if err := l.RecordSlot(n, 90, 10, 0.1, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	invs := l.Invoices()
	if len(invs) != 2 || invs[0].Tenant != "alpha" || invs[1].Tenant != "zeta" {
		t.Fatalf("order: %+v", invs)
	}
	var buf bytes.Buffer
	if err := invs[0].Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"INVOICE  alpha", "guaranteed capacity subscription", "metered energy", "spot capacity", "TOTAL"} {
		if !strings.Contains(out, want) {
			t.Errorf("printout missing %q:\n%s", want, out)
		}
	}
	// JSON marshals cleanly.
	b, err := json.Marshal(invs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"tenant":"alpha"`) {
		t.Errorf("json: %s", b)
	}
}

func TestWriteCSV(t *testing.T) {
	l := newLedger(t)
	if err := l.Register("a", 100); err != nil {
		t.Fatal(err)
	}
	if err := l.RecordSlot("a", 90, 10, 0.1, 0.5); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, l.Invoices()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 { // header + 3 items
		t.Fatalf("lines = %d:\n%s", len(lines), buf.String())
	}
	if lines[0] != "tenant,item,quantity,unit,rate,amount" {
		t.Errorf("header = %s", lines[0])
	}
}

func TestFromSimResult(t *testing.T) {
	sc, err := sim.Testbed(sim.TestbedOptions{Seed: 5, Slots: 800})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sc, sim.RunOptions{Mode: sim.ModeSpotDC})
	if err != nil {
		t.Fatal(err)
	}
	pricing := operator.DefaultPricing()
	invs, err := FromSimResult(res, pricing)
	if err != nil {
		t.Fatal(err)
	}
	if len(invs) != 8 {
		t.Fatalf("invoices = %d", len(invs))
	}
	totalSpot := 0.0
	for _, inv := range invs {
		if inv.Total <= 0 {
			t.Errorf("%s: zero total", inv.Tenant)
		}
		totalSpot += inv.Items[2].Amount
		// Invoice totals must reconcile with the simulator's own cost
		// accounting (the Fig. 12(a) numbers).
		want, err := sim.TenantCost(res, pricing, inv.Tenant)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(inv.Total-want) > 1e-6*math.Max(1, want) {
			t.Errorf("%s: invoice %v != sim cost %v", inv.Tenant, inv.Total, want)
		}
	}
	// Sum of spot line items reconciles with operator revenue.
	if math.Abs(totalSpot-res.SpotRevenue) > 1e-9 {
		t.Errorf("spot items %v != operator revenue %v", totalSpot, res.SpotRevenue)
	}
	if _, err := FromSimResult(nil, pricing); !errors.Is(err, ErrBilling) {
		t.Error("nil result accepted")
	}
}
