package billing

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"spotdc/internal/operator"
)

// TestLedgerRestoreBitIdenticalAt15000Racks is the durability twin of
// stats' TestNeumaierBeatsNaiveAt15000Racks: at 15,000 racks the spot
// totals only hold because the compensation terms do, so a restore that
// dropped them would render different invoices. The round trip goes
// through JSON, the encoding the WAL snapshot actually stores.
func TestLedgerRestoreBitIdenticalAt15000Racks(t *testing.T) {
	const racks = 15000
	src, err := NewLedger(operator.DefaultPricing())
	if err != nil {
		t.Fatal(err)
	}
	// One long-lived tenant whose books are already large (the big+tiny
	// Neumaier regression shape), plus many small ones so the state carries
	// a full-size testbed's worth of entries.
	if err := src.Register("anchor", 1e9); err != nil {
		t.Fatal(err)
	}
	if err := src.RecordSlot("anchor", 1e9, 1e9, 1e7, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < racks; i++ {
		name := fmt.Sprintf("rack-%05d", i)
		if err := src.Register(name, 145); err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 3; s++ {
			if err := src.RecordSlot(name, 130+float64(i%7), 20+0.1*float64(s), 0.163, 1.0/12); err != nil {
				t.Fatal(err)
			}
		}
		// The anchor's accumulator keeps folding tiny terms into a huge sum —
		// exactly where naive restoration (Sum() alone) would lose money.
		if err := src.RecordSlot("anchor", 100, 10, 0.1, 1.0/12); err != nil {
			t.Fatal(err)
		}
	}

	data, err := json.Marshal(src.State())
	if err != nil {
		t.Fatal(err)
	}
	var st LedgerState
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreLedger(st)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := restored.SpotPaidTotal(), src.SpotPaidTotal(); got != want {
		t.Fatalf("SpotPaidTotal not bit-identical: %.17g vs %.17g", got, want)
	}
	if !reflect.DeepEqual(restored.Invoices(), src.Invoices()) {
		t.Fatal("restored invoices differ from source")
	}
	// The compensation state itself survived: further accumulation stays
	// bit-identical on both ledgers.
	for s := 0; s < 100; s++ {
		for _, l := range []*Ledger{src, restored} {
			if err := l.RecordSlot("anchor", 100, 10, 0.1, 1.0/12); err != nil {
				t.Fatal(err)
			}
		}
	}
	if restored.SpotPaidTotal() != src.SpotPaidTotal() {
		t.Fatal("post-restore accumulation diverged")
	}
	inv, err := restored.InvoiceOf("anchor")
	if err != nil {
		t.Fatal(err)
	}
	srcInv, err := src.InvoiceOf("anchor")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(inv, srcInv) {
		t.Fatal("anchor invoices diverged after post-restore slots")
	}
}

func TestRestoreLedgerValidation(t *testing.T) {
	if _, err := RestoreLedger(LedgerState{}); err == nil {
		t.Error("zero pricing accepted")
	}
	st := LedgerState{
		Pricing: operator.DefaultPricing(),
		Tenants: []TenantUsage{{Tenant: "a"}, {Tenant: "a"}},
	}
	if _, err := RestoreLedger(st); err == nil {
		t.Error("duplicate tenant accepted")
	}
	st.Tenants = []TenantUsage{{Tenant: ""}}
	if _, err := RestoreLedger(st); err == nil {
		t.Error("empty tenant accepted")
	}
}
