// Package billing turns SpotDC's per-slot market outcomes into tenant
// invoices: guaranteed-capacity subscription, metered energy, and spot
// capacity line items. In a colocation business this is the surface
// tenants actually see; the paper's cost comparisons (Fig. 12(a)) are
// ratios of exactly these totals.
package billing

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"spotdc/internal/operator"
	"spotdc/internal/sim"
	"spotdc/internal/stats"
)

// ErrBilling reports invalid billing input.
var ErrBilling = errors.New("billing: invalid input")

// Ledger accumulates slot-level usage records per tenant. It is the
// streaming counterpart of sim's aggregated TenantStats, suitable for the
// live operator loop.
type Ledger struct {
	pricing operator.Pricing
	tenants map[string]*usage
}

// usage accumulates a tenant's streaming slot records. Hours, energy, and
// money use compensated (Neumaier) accumulators: a month of 5-minute slots
// is ~8,760 per-slot terms per tenant, and naive += drops small spot
// payments once the running totals grow (see stats.Neumaier).
type usage struct {
	reservedWatts float64
	hours         stats.Neumaier
	energyKWh     stats.Neumaier
	spotKWh       stats.Neumaier
	spotPaid      stats.Neumaier
	spotSlots     int
	peakSpotWatts float64
}

// NewLedger builds a ledger under the given pricing.
func NewLedger(pricing operator.Pricing) (*Ledger, error) {
	if err := pricing.Validate(); err != nil {
		return nil, err
	}
	return &Ledger{pricing: pricing, tenants: make(map[string]*usage)}, nil
}

// Register declares a tenant and its reserved capacity; records for
// unregistered tenants are rejected so typos surface early.
func (l *Ledger) Register(tenant string, reservedWatts float64) error {
	if tenant == "" {
		return fmt.Errorf("%w: empty tenant name", ErrBilling)
	}
	if reservedWatts < 0 {
		return fmt.Errorf("%w: negative reservation", ErrBilling)
	}
	if _, dup := l.tenants[tenant]; dup {
		return fmt.Errorf("%w: tenant %q already registered", ErrBilling, tenant)
	}
	l.tenants[tenant] = &usage{reservedWatts: reservedWatts}
	return nil
}

// RecordSlot adds one slot of usage: the tenant's total draw, its spot
// grant, and the slot's clearing price.
func (l *Ledger) RecordSlot(tenant string, drawWatts, spotGrantWatts, price, slotHours float64) error {
	u, ok := l.tenants[tenant]
	if !ok {
		return fmt.Errorf("%w: unknown tenant %q", ErrBilling, tenant)
	}
	if drawWatts < 0 || spotGrantWatts < 0 || price < 0 || slotHours <= 0 {
		return fmt.Errorf("%w: negative usage for %q", ErrBilling, tenant)
	}
	u.hours.Add(slotHours)
	u.energyKWh.Add(drawWatts / 1000 * slotHours)
	u.spotKWh.Add(spotGrantWatts / 1000 * slotHours)
	u.spotPaid.Add(price * spotGrantWatts / 1000 * slotHours)
	if spotGrantWatts > 0 {
		u.spotSlots++
		if spotGrantWatts > u.peakSpotWatts {
			u.peakSpotWatts = spotGrantWatts
		}
	}
	return nil
}

// SpotPaidTotal returns the ledger-wide sum of spot line items in $ — the
// quantity that must reconcile with the operator's SpotRevenue (audit
// invariant: every dollar billed to a tenant was earned in some slot).
func (l *Ledger) SpotPaidTotal() float64 {
	var total stats.Neumaier
	for _, u := range l.tenants {
		total.Add(u.spotPaid.Sum())
	}
	return total.Sum()
}

// LineItem is one row of an invoice.
type LineItem struct {
	// Description labels the charge.
	Description string `json:"description"`
	// Quantity and Unit describe what is billed (kW-months, kWh, ...).
	Quantity float64 `json:"quantity"`
	Unit     string  `json:"unit"`
	// Rate is the unit price in dollars; Amount the extended total.
	Rate   float64 `json:"rate"`
	Amount float64 `json:"amount"`
}

// Invoice is one tenant's bill for a period.
type Invoice struct {
	// Tenant names the payer.
	Tenant string `json:"tenant"`
	// PeriodHours is the billed duration.
	PeriodHours float64 `json:"period_hours"`
	// Items lists the charges.
	Items []LineItem `json:"items"`
	// Total is the sum of item amounts.
	Total float64 `json:"total"`
	// SpotShare is the fraction of the total attributable to spot capacity
	// — the paper's "marginal cost" claim, per tenant.
	SpotShare float64 `json:"spot_share"`
}

// InvoiceOf renders one tenant's invoice from the ledger.
func (l *Ledger) InvoiceOf(tenant string) (Invoice, error) {
	u, ok := l.tenants[tenant]
	if !ok {
		return Invoice{}, fmt.Errorf("%w: unknown tenant %q", ErrBilling, tenant)
	}
	return buildInvoice(l.pricing, tenant, u), nil
}

// Invoices renders every registered tenant's invoice, sorted by name.
func (l *Ledger) Invoices() []Invoice {
	names := make([]string, 0, len(l.tenants))
	for n := range l.tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Invoice, 0, len(names))
	for _, n := range names {
		out = append(out, buildInvoice(l.pricing, n, l.tenants[n]))
	}
	return out
}

func buildInvoice(p operator.Pricing, tenant string, u *usage) Invoice {
	hours := u.hours.Sum()
	energyKWh := u.energyKWh.Sum()
	spotKWh := u.spotKWh.Sum()
	spotPaid := u.spotPaid.Sum()
	inv := Invoice{Tenant: tenant, PeriodHours: hours}
	kwMonths := u.reservedWatts / 1000 * hours / operator.HoursPerMonth
	sub := kwMonths * p.GuaranteedPerKWMonth
	inv.Items = append(inv.Items, LineItem{
		Description: "guaranteed capacity subscription",
		Quantity:    kwMonths, Unit: "kW-month",
		Rate: p.GuaranteedPerKWMonth, Amount: sub,
	})
	energy := energyKWh * p.EnergyPerKWh
	inv.Items = append(inv.Items, LineItem{
		Description: "metered energy",
		Quantity:    energyKWh, Unit: "kWh",
		Rate: p.EnergyPerKWh, Amount: energy,
	})
	spotRate := 0.0
	if spotKWh > 0 {
		spotRate = spotPaid / spotKWh
	}
	inv.Items = append(inv.Items, LineItem{
		Description: fmt.Sprintf("spot capacity (%d slots, peak %.0f W)", u.spotSlots, u.peakSpotWatts),
		Quantity:    spotKWh, Unit: "kWh",
		Rate: spotRate, Amount: spotPaid,
	})
	inv.Total = sub + energy + spotPaid
	if inv.Total > 0 {
		inv.SpotShare = spotPaid / inv.Total
	}
	return inv
}

// FromSimResult builds a ledger-equivalent set of invoices directly from a
// finished simulation run.
func FromSimResult(res *sim.Result, pricing operator.Pricing) ([]Invoice, error) {
	if res == nil {
		return nil, fmt.Errorf("%w: nil result", ErrBilling)
	}
	if err := pricing.Validate(); err != nil {
		return nil, err
	}
	l, err := NewLedger(pricing)
	if err != nil {
		return nil, err
	}
	for name, ts := range res.Tenants {
		if err := l.Register(name, ts.Reserved); err != nil {
			return nil, err
		}
		u := l.tenants[name]
		// The simulator aggregates; transplant its totals.
		u.hours.Add(res.Hours())
		u.energyKWh.Add(ts.EnergyKWh)
		u.spotKWh.Add(ts.SpotKWh)
		u.spotPaid.Add(ts.Payment)
		u.spotSlots = ts.GrantSlots
		u.peakSpotWatts = ts.GrantFrac.Max() * ts.Reserved
	}
	return l.Invoices(), nil
}

// Fprint renders an invoice as aligned text.
func (inv Invoice) Fprint(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "INVOICE  %s  (%.1f h ≈ %s)\n", inv.Tenant, inv.PeriodHours,
		(time.Duration(inv.PeriodHours * float64(time.Hour))).Round(time.Minute))
	for _, it := range inv.Items {
		fmt.Fprintf(bw, "  %-48s %10.4f %-9s @ %10.4f  $%10.6f\n",
			it.Description, it.Quantity, it.Unit, it.Rate, it.Amount)
	}
	fmt.Fprintf(bw, "  %-48s %36s  $%10.6f  (spot: %.2f%%)\n", "TOTAL", "", inv.Total, 100*inv.SpotShare)
	return bw.Flush()
}

// WriteCSV emits the invoices as a flat CSV (tenant, item, quantity, unit,
// rate, amount).
func WriteCSV(w io.Writer, invoices []Invoice) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "tenant,item,quantity,unit,rate,amount"); err != nil {
		return err
	}
	for _, inv := range invoices {
		for _, it := range inv.Items {
			if _, err := fmt.Fprintf(bw, "%s,%q,%.6f,%s,%.6f,%.6f\n",
				inv.Tenant, it.Description, it.Quantity, it.Unit, it.Rate, it.Amount); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
