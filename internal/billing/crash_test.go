package billing

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"spotdc/internal/operator"
	"spotdc/internal/sim"
	"spotdc/internal/wal"
)

// crashLedgerRun drives the networked crash harness with a billing ledger
// threaded through the durable hooks: every cleared slot folds into the
// ledger right before the WAL commit captures its full serialized state,
// and each recovery rebuilds the ledger purely from the WAL — the
// in-memory ledger of a killed lifetime is deliberately discarded.
func crashLedgerRun(t *testing.T, kills []sim.CrashKill) *Ledger {
	t.Helper()
	sc, err := sim.Testbed(sim.TestbedOptions{Seed: 17, Slots: 100})
	if err != nil {
		t.Fatal(err)
	}
	opts := sim.NetRunOptions{SlotLen: 15 * time.Millisecond, Audit: true}
	slotHours := opts.SlotLen.Hours()
	topo := sc.Topo

	newLedger := func() *Ledger {
		l, err := NewLedger(sc.Pricing)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range topo.Racks {
			if err := l.Register(r.Tenant, r.Guaranteed); err != nil {
				t.Fatal(err)
			}
		}
		return l
	}
	led := newLedger()

	restore := func(data []byte) error {
		var st LedgerState
		if err := json.Unmarshal(data, &st); err != nil {
			return err
		}
		restored, err := RestoreLedger(st)
		if err != nil {
			return err
		}
		led = restored
		return nil
	}
	_, err = sim.CrashNetRun(sc, opts, sim.CrashRunOptions{
		StateDir:      filepath.Join(t.TempDir(), "state"),
		Policy:        wal.SyncEverySlot,
		SegmentBytes:  1 << 14,
		SnapshotEvery: 16,
		Kills:         kills,
		OnCommit: func(slot int, out operator.SlotOutcome) {
			// Rack draws are the harness's deterministic 75%-of-guarantee
			// reference; grants come from the slot's allocations. Racks fold
			// in index order so the compensated sums accumulate identically
			// every run.
			for i, r := range topo.Racks {
				grant := 0.0
				for _, a := range out.Result.Allocations {
					if a.Rack == i {
						grant += a.Watts
					}
				}
				if err := led.RecordSlot(r.Tenant, 0.75*r.Guaranteed, grant, out.Result.Price, slotHours); err != nil {
					t.Errorf("slot %d: %v", slot, err)
				}
			}
		},
		ExtraSlot:     func(int) ([]byte, error) { return json.Marshal(led.State()) },
		ExtraSnapshot: func() ([]byte, error) { return json.Marshal(led.State()) },
		// A recovered lifetime starts from a ledger that never saw the
		// earlier slots: registrations only, then WAL state on top.
		RestoreSnapshot: func(data []byte) error { led = newLedger(); return restore(data) },
		ReplaySlot:      restore,
	})
	if err != nil {
		t.Fatal(err)
	}
	return led
}

// TestCrashBillingInvoicesBitIdentical proves the billing half of the
// durability claim: a run killed twice mid-horizon (once leaving a torn
// WAL record) re-derives its ledger from the WAL alone and still issues
// invoices bit-identical to an uninterrupted run — compensated spot-paid
// sums included.
func TestCrashBillingInvoicesBitIdentical(t *testing.T) {
	golden := crashLedgerRun(t, nil)
	crashed := crashLedgerRun(t, []sim.CrashKill{
		{AfterSlot: 23},
		{AfterSlot: 57, TearTail: true},
	})

	gi, ci := golden.Invoices(), crashed.Invoices()
	if !reflect.DeepEqual(gi, ci) {
		t.Errorf("invoices diverge:\nuninterrupted %+v\ncrashed       %+v", gi, ci)
	}
	if g, c := golden.SpotPaidTotal(), crashed.SpotPaidTotal(); g != c {
		t.Errorf("spot paid total %v (uninterrupted) != %v (crashed)", g, c)
	}
	if golden.SpotPaidTotal() == 0 {
		t.Error("no spot charges accrued — the comparison above is vacuous")
	}
}
