package billing

import (
	"math"
	"testing"

	"spotdc/internal/core"
	"spotdc/internal/operator"
	"spotdc/internal/power"
)

// TestDegradedSlotBillsNoSpot is the regression for the degraded-slot
// billing leak: a slot that fails to clear (poisoned telemetry here) must
// contribute zero spot line items — the no-spot default means nobody got
// capacity, so nobody is billed — and the ledger must still reconcile with
// the operator's spot revenue to the dollar. The leak this guards against
// billed degraded slots at the previous slot's price and grants.
func TestDegradedSlotBillsNoSpot(t *testing.T) {
	topo, err := power.NewTopology(1370,
		[]power.PDU{{ID: "PDU#1", Capacity: 715}, {ID: "PDU#2", Capacity: 724}},
		[]power.Rack{
			{ID: "S-1", Tenant: "Search-1", PDU: 0, Guaranteed: 145, SpotHeadroom: 60},
			{ID: "O-1", Tenant: "Count-1", PDU: 0, Guaranteed: 125, SpotHeadroom: 60},
			{ID: "S-3", Tenant: "Search-2", PDU: 1, Guaranteed: 145, SpotHeadroom: 60},
			{ID: "O-4", Tenant: "Sort", PDU: 1, Guaranteed: 125, SpotHeadroom: 60},
		})
	if err != nil {
		t.Fatal(err)
	}
	op, err := operator.New(operator.Config{Topology: topo, MarketOptions: core.Options{PriceStep: 0.001}})
	if err != nil {
		t.Fatal(err)
	}
	led := newLedger(t)
	for _, r := range topo.Racks {
		if err := led.Register(r.Tenant, r.Guaranteed); err != nil {
			t.Fatal(err)
		}
	}

	bids := func() []core.Bid {
		return []core.Bid{
			{Rack: 0, Tenant: "Search-1", Fn: core.LinearBid{DMax: 50, DMin: 10, QMin: 0.02, QMax: 0.2}},
			{Rack: 2, Tenant: "Search-2", Fn: core.LinearBid{DMax: 40, DMin: 5, QMin: 0.03, QMax: 0.25}},
		}
	}
	reading := func(poisoned bool) power.Reading {
		rd := power.Reading{
			RackWatts:     make([]float64, len(topo.Racks)),
			OtherPDUWatts: []float64{180, 180},
		}
		for i, r := range topo.Racks {
			rd.RackWatts[i] = 0.75 * r.Guaranteed
		}
		if poisoned {
			rd.RackWatts[0] = math.NaN()
		}
		return rd
	}

	const slotHours = 1.0 / 12
	degraded := 0
	for slot := 0; slot < 10; slot++ {
		out, err := op.RunSlot(bids(), reading(slot == 4), slotHours)
		if err != nil {
			// Degraded slot: the market loop falls back to the no-spot
			// default (Section III-C). Tenants draw their guaranteed power
			// but there are NO spot grants and NO spot charges — the
			// leak billed this slot at the previous price/grants.
			degraded++
			for i, r := range topo.Racks {
				draw := 0.75 * r.Guaranteed
				if math.IsNaN(reading(slot == 4).RackWatts[i]) {
					draw = r.Guaranteed
				}
				if err := led.RecordSlot(r.Tenant, draw, 0, 0, slotHours); err != nil {
					t.Fatal(err)
				}
			}
			continue
		}
		grants := make(map[string]float64)
		for _, a := range out.Result.Allocations {
			if a.Watts > 0 {
				grants[a.Tenant] += a.Watts
			}
		}
		for i, r := range topo.Racks {
			if err := led.RecordSlot(r.Tenant, reading(false).RackWatts[i]+grants[r.Tenant],
				grants[r.Tenant], out.Result.Price, slotHours); err != nil {
				t.Fatal(err)
			}
		}
	}
	if degraded != 1 {
		t.Fatalf("degraded slots = %d, want exactly 1 (the poisoned reading)", degraded)
	}

	// Every dollar billed as a spot line item was earned by the operator in
	// some cleared slot; the degraded slot contributed none.
	billed := led.SpotPaidTotal()
	earned := op.SpotRevenue()
	if earned <= 0 {
		t.Fatal("test premise broken: no spot revenue in cleared slots")
	}
	if d := math.Abs(billed - earned); d > 1e-9*(1+earned) {
		t.Errorf("ledger spot $%v vs operator spot $%v (Δ %g)", billed, earned, d)
	}

	// Teeth: re-billing the degraded slot at the prior slot's outcome (the
	// bug) must break reconciliation — proving the check above detects it.
	leak := earned / 9 // one slot's worth of revenue, roughly
	if err := led.RecordSlot("Search-1", 145, leak*1000/slotHours/0.1, 0.1, slotHours); err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(led.SpotPaidTotal() - earned); d <= 1e-9*(1+earned) {
		t.Error("reconciliation failed to detect a degraded-slot billing leak")
	}

	// The operator's own books agree with themselves.
	if err := op.ReconcileAccounts(); err != nil {
		t.Error(err)
	}
}
