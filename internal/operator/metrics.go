package operator

import (
	"fmt"
	"sync"
	"time"

	"spotdc/internal/metrics"
	"spotdc/internal/power"
)

// Slot-status label values of spotdc_operator_slots_total.
const (
	slotStatusCleared     = "cleared"
	slotStatusDegraded    = "degraded"
	slotStatusBreakerOpen = "breaker_open"
)

// Metrics is the operator's pre-registered instrumentation handle set.
// Build one with NewMetrics, hand it to Config.Metrics, and the operator
// binds its per-PDU gauge children at construction time (so RunSlot's
// observe path is pure atomics — no label lookups, no allocation). The
// market-loop layer reports slot degradation and breaker transitions
// through the exported Observe/Set hooks.
//
// One Metrics may back several operators against a shared registry (the
// experiment fan-out); counters then aggregate across them while gauges
// reflect the most recent writer.
type Metrics struct {
	slotsCleared  *metrics.Counter
	slotsDegraded *metrics.Counter
	slotsBreaker  *metrics.Counter
	emergencies   *metrics.Counter

	// Emergency-responder instrumentation (emergency.go): excursions acted
	// on, watts reclaimed via budget resets, resets that invaded guaranteed
	// capacity, and the suspension-to-recovery duration in slots.
	emergenciesActed *metrics.Counter
	reclaimedWatts   *metrics.Gauge // cumulative W, monotone (Add only)
	involuntaryCuts  *metrics.Counter
	timeToSafe       *metrics.Histogram

	predictedVec *metrics.GaugeVec
	soldVec      *metrics.GaugeVec
	predictedUPS *metrics.Gauge
	soldUPS      *metrics.Gauge

	margin      *metrics.Gauge
	breakerOpen *metrics.Gauge
	revenue     *metrics.Gauge // cumulative $, monotone (Add only)
	slotSeconds *metrics.Histogram

	// bindMu guards the per-PDU child slices: binding happens once per
	// operator at setup time, never on the slot path.
	bindMu       sync.Mutex
	predictedPDU []*metrics.Gauge
	soldPDU      []*metrics.Gauge
}

// NewMetrics registers the operator families on r and returns the handle
// set. Registration is idempotent per registry.
func NewMetrics(r *metrics.Registry) *Metrics {
	slots := r.CounterVec("spotdc_operator_slots_total",
		"Market slots by outcome: cleared, degraded (fell back to the zero-price no-grant default), breaker_open (skipped while the circuit breaker cools down).",
		"status")
	return &Metrics{
		slotsCleared:  slots.With(slotStatusCleared),
		slotsDegraded: slots.With(slotStatusDegraded),
		slotsBreaker:  slots.With(slotStatusBreakerOpen),
		emergencies: r.Counter("spotdc_operator_emergency_slots_total",
			"Slots with at least one observed capacity excursion (handled by power capping, counted here)."),
		emergenciesActed: r.Counter("spotdc_operator_emergencies_acted_total",
			"Capacity excursions the emergency responder planned reclamation for (spot users capped first, Section III-C)."),
		reclaimedWatts: r.Gauge("spotdc_operator_reclaimed_watts_total",
			"Cumulative watts of rack-budget cuts issued by the emergency responder (spot plus escalated guaranteed)."),
		involuntaryCuts: r.Counter("spotdc_operator_involuntary_cuts_total",
			"Budget resets that curtailed a rack below its guaranteed capacity (escalation only — zero means guaranteed tenants were never touched)."),
		timeToSafe: r.Histogram("spotdc_operator_emergency_recovery_slots",
			"Slots from the start of an element's spot-sale suspension until readings stayed healthy and budgets were restored.",
			metrics.ExpBuckets(1, 2, 10)),
		predictedVec: r.GaugeVec("spotdc_operator_spot_predicted_watts",
			"Predicted available spot capacity entering the clearing, by level (ups, pdu0, pdu1, ...).",
			"level"),
		soldVec: r.GaugeVec("spotdc_operator_spot_sold_watts",
			"Spot capacity actually sold in the most recent cleared slot, by level.",
			"level"),
		margin: r.Gauge("spotdc_operator_underprediction_margin_watts",
			"Spot capacity withheld by the conservative under-prediction factor (Fig. 17): measured minus offered, at the UPS."),
		breakerOpen: r.Gauge("spotdc_operator_breaker_open",
			"1 while the market loop's circuit breaker is open (slots degrade without touching the operator), else 0."),
		revenue: r.Gauge("spotdc_operator_spot_revenue_dollars",
			"Cumulative spot revenue billed across all cleared slots."),
		slotSeconds: r.Histogram("spotdc_operator_slot_seconds",
			"Wall time of one full operator slot: prediction, clearing, feasibility verification, billing.",
			metrics.ExpBuckets(1e-5, 4, 12)),
	}
}

// bind pre-resolves the per-PDU gauge children for a topology with nPDU
// PDUs (label values ups, pdu0, pdu1, ...). Idempotent and grow-only, so
// operators of different sizes can share one Metrics.
func (om *Metrics) bind(nPDU int) {
	om.bindMu.Lock()
	defer om.bindMu.Unlock()
	if om.predictedUPS == nil {
		om.predictedUPS = om.predictedVec.With("ups")
		om.soldUPS = om.soldVec.With("ups")
	}
	for i := len(om.predictedPDU); i < nPDU; i++ {
		lv := fmt.Sprintf("pdu%d", i)
		om.predictedPDU = append(om.predictedPDU, om.predictedVec.With(lv))
		om.soldPDU = append(om.soldPDU, om.soldVec.With(lv))
	}
}

// observeSlot records one successfully cleared slot. soldByPDU is the
// operator's scratch accumulation of granted watts per PDU; underFactor is
// the prediction's under-prediction factor, from which the withheld margin
// is reconstructed (offered = measured × (1−f), so withheld =
// offered × f/(1−f)).
func (om *Metrics) observeSlot(spot power.Spot, soldByPDU []float64, soldTotal, slotRevenue, underFactor float64, dur time.Duration) {
	om.slotsCleared.Inc()
	om.slotSeconds.Observe(dur.Seconds())
	om.predictedUPS.Set(spot.UPSWatts)
	om.soldUPS.Set(soldTotal)
	for i := range spot.PDUWatts {
		if i >= len(om.predictedPDU) {
			break
		}
		om.predictedPDU[i].Set(spot.PDUWatts[i])
		om.soldPDU[i].Set(soldByPDU[i])
	}
	if underFactor > 0 && underFactor < 1 {
		om.margin.Set(spot.UPSWatts * underFactor / (1 - underFactor))
	} else {
		om.margin.Set(0)
	}
	om.revenue.Add(slotRevenue)
}

// observeReclaim records one planned reclamation.
func (om *Metrics) observeReclaim(plan ReclaimPlan) {
	om.emergenciesActed.Inc()
	om.reclaimedWatts.Add(plan.SpotReclaimed + plan.GuaranteedReclaimed)
	for _, t := range plan.Targets {
		if t.GuaranteedCut > 0 {
			om.involuntaryCuts.Inc()
		}
	}
}

// observeRecovery records a completed suspension's duration in slots.
func (om *Metrics) observeRecovery(slots float64) {
	om.timeToSafe.Observe(slots)
}

// ObserveDegradedSlot records a slot that fell back to the zero-price
// no-grant default (called by the market loop on clearing failure).
func (om *Metrics) ObserveDegradedSlot() {
	if om == nil {
		return
	}
	om.slotsDegraded.Inc()
}

// ObserveBreakerOpenSlot records a slot skipped while the circuit breaker
// was open.
func (om *Metrics) ObserveBreakerOpenSlot() {
	if om == nil {
		return
	}
	om.slotsBreaker.Inc()
}

// SetBreakerOpen mirrors the market loop's circuit-breaker state.
func (om *Metrics) SetBreakerOpen(open bool) {
	if om == nil {
		return
	}
	if open {
		om.breakerOpen.Set(1)
	} else {
		om.breakerOpen.Set(0)
	}
}
