// Package operator implements the data-center operator's side of SpotDC
// (Algorithm 1): per-slot spot-capacity prediction from rack-level power
// monitoring, market execution, rack-budget resets, billing, and the
// profit accounting the paper's evaluation reports (baseline guaranteed
// revenue, infrastructure capex amortization, the US$0.4/W rack
// over-provisioning capex, and spot revenue).
package operator

import (
	"errors"
	"fmt"
	"math"
	"time"

	"spotdc/internal/core"
	"spotdc/internal/otrace"
	"spotdc/internal/power"
	"spotdc/internal/stats"
)

// ErrReading reports a rack-power snapshot the operator refuses to clear
// on: prediction from corrupt telemetry could oversell spot capacity, so
// the slot degrades to the no-spot default instead (Section III-C).
var ErrReading = errors.New("operator: invalid power reading")

// ErrPricing reports an invalid pricing configuration.
var ErrPricing = errors.New("operator: invalid pricing")

// HoursPerMonth is the average month length used to amortize monthly rates.
const HoursPerMonth = 730.0

// Pricing carries the monetary parameters of the evaluation (Sections II
// and V-B).
type Pricing struct {
	// GuaranteedPerKWMonth is the guaranteed-capacity lease rate in
	// $/kW/month (US$120–250 in the paper; the amortized form anchors
	// tenants' maximum bids at ≈$0.2/kW·h).
	GuaranteedPerKWMonth float64
	// EnergyPerKWh is the metered energy price tenants pay ($/kWh).
	EnergyPerKWh float64
	// InfraCapexPerWatt is the UPS/PDU/cooling capital expense (US$10–25/W;
	// the paper's calculations use the midpoint).
	InfraCapexPerWatt float64
	// InfraLifetimeYears amortizes the infrastructure capex.
	InfraLifetimeYears float64
	// RackCapexPerWatt is the cheap rack-level over-provisioning expense
	// supporting spot headroom (US$0.4/W in the paper's calculation).
	RackCapexPerWatt float64
	// RackLifetimeYears amortizes the rack capex (15 years in the paper).
	RackLifetimeYears float64
}

// DefaultPricing returns the paper's evaluation parameters.
func DefaultPricing() Pricing {
	return Pricing{
		GuaranteedPerKWMonth: 120,
		EnergyPerKWh:         0.10,
		InfraCapexPerWatt:    20.5,
		InfraLifetimeYears:   15,
		RackCapexPerWatt:     0.4,
		RackLifetimeYears:    15,
	}
}

// Validate checks the configuration.
func (p Pricing) Validate() error {
	switch {
	case p.GuaranteedPerKWMonth <= 0:
		return fmt.Errorf("%w: guaranteed rate %v", ErrPricing, p.GuaranteedPerKWMonth)
	case p.EnergyPerKWh < 0:
		return fmt.Errorf("%w: energy price %v", ErrPricing, p.EnergyPerKWh)
	case p.InfraCapexPerWatt < 0 || p.RackCapexPerWatt < 0:
		return fmt.Errorf("%w: negative capex", ErrPricing)
	case p.InfraLifetimeYears <= 0 || p.RackLifetimeYears <= 0:
		return fmt.Errorf("%w: non-positive lifetime", ErrPricing)
	}
	return nil
}

// GuaranteedPerKWh is the amortized guaranteed-capacity rate in $/kW·h,
// the natural price anchor for spot bids (≈0.16–0.34 for the paper's
// $120–250/kW/month range).
func (p Pricing) GuaranteedPerKWh() float64 {
	return p.GuaranteedPerKWMonth / HoursPerMonth
}

// GuaranteedRevenueRate returns the operator's revenue rate ($/h) from
// leasedWatts of guaranteed capacity.
func (p Pricing) GuaranteedRevenueRate(leasedWatts float64) float64 {
	return leasedWatts / 1000 * p.GuaranteedPerKWh()
}

// InfraAmortRate returns the $/h amortization of the shared power
// infrastructure sized at capacityWatts.
func (p Pricing) InfraAmortRate(capacityWatts float64) float64 {
	return capacityWatts * p.InfraCapexPerWatt / (p.InfraLifetimeYears * 365 * 24)
}

// RackAmortRate returns the $/h amortization of rack-level
// over-provisioning totaling headroomWatts — the only extra expense SpotDC
// adds, which the paper shows is negligible.
func (p Pricing) RackAmortRate(headroomWatts float64) float64 {
	return headroomWatts * p.RackCapexPerWatt / (p.RackLifetimeYears * 365 * 24)
}

// BaselineProfitRate is the PowerCapped operator profit rate in $/h:
// guaranteed revenue minus infrastructure amortization. Spot revenue is
// reported as an increase over this baseline (the paper's +9.7%).
func (p Pricing) BaselineProfitRate(leasedWatts, infraCapacityWatts float64) float64 {
	return p.GuaranteedRevenueRate(leasedWatts) - p.InfraAmortRate(infraCapacityWatts)
}

// Operator runs the SpotDC control loop for one data center.
type Operator struct {
	topo    *power.Topology
	market  *core.Market
	pricing Pricing
	predict power.PredictOptions

	// Money and energy ledgers use compensated (Neumaier) accumulators:
	// a long horizon folds millions of small per-slot terms into a large
	// cumulative total, where naive += provably drops sub-ulp payments
	// (see stats.Neumaier and TestNeumaierBeatsNaiveAt15000Racks).
	spotRevenue    stats.Neumaier // cumulative $
	spotEnergyKWh  stats.Neumaier // spot capacity actually sold × time
	slots          int
	payments       map[string]*stats.Neumaier // per-tenant cumulative $
	unattributed   stats.Neumaier             // $ granted to allocations with no tenant name
	lastSpot       power.Spot
	emergencySlots int

	// Per-slot scratch, reused across RunSlot/MaxPerfSlot calls so the
	// steady-state slot loop allocates nothing here: rackBuf collects the
	// bidding racks, spotUsers the prediction's spot-user set, pduSoldBuf
	// the per-PDU sold-watts accumulation for instrumentation.
	rackBuf    []int
	spotUsers  map[int]bool
	pduSoldBuf []float64

	// responder is non-nil only when Config.Emergency enables the
	// emergency response loop (emergency.go); nil keeps every slot path
	// bit-identical to the count-only behavior.
	responder *responderState

	met *Metrics

	// tracer and traceParent carry slot tracing (DESIGN §4i): the market
	// loop parks the slot's root span here around RunSlot, under which
	// the predict/clear/audit stage spans open. Both nil with tracing off.
	tracer      *otrace.Tracer
	traceParent *otrace.Span
}

// Config assembles an Operator.
type Config struct {
	// Topology describes the power hierarchy.
	Topology *power.Topology
	// MarketOptions tunes the clearing-price search.
	MarketOptions core.Options
	// Pricing carries the monetary parameters (DefaultPricing if zero).
	Pricing Pricing
	// Predict tunes spot-capacity prediction (e.g. the Fig. 17
	// under-prediction factor).
	Predict power.PredictOptions
	// Metrics, if non-nil, receives per-slot instrumentation (slot
	// outcomes, predicted vs. sold spot per level, margins, revenue). The
	// operator binds its per-PDU gauge children at construction time, so
	// the slot path stays allocation-free. The market core's own
	// instrumentation is configured separately via MarketOptions.Metrics.
	Metrics *Metrics
	// Emergency, if non-nil, enables the emergency responder: on a
	// capacity excursion ObserveEmergencies plans spot reclamation, issues
	// budget resets, and suspends spot sales at the affected element until
	// readings recover (Section III-C, Fig. 6). Nil keeps the historical
	// count-only behavior, bit-identically.
	Emergency *ResponderConfig
	// Tracer, if non-nil, opens predict and audit stage spans inside
	// RunSlot under the parent set by SetTraceParent, and is handed to
	// the market core for its clear span (unless MarketOptions.Trace is
	// already set). Nil is free.
	Tracer *otrace.Tracer
}

// New builds an Operator, deriving the market's rack constraints from the
// topology (headroom P_r^R per rack, PDU membership).
func New(cfg Config) (*Operator, error) {
	if cfg.Topology == nil {
		return nil, errors.New("operator: nil topology")
	}
	pr := cfg.Pricing
	if pr == (Pricing{}) {
		pr = DefaultPricing()
	}
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	topo := cfg.Topology
	cons := core.Constraints{
		RackHeadroom: make([]float64, len(topo.Racks)),
		RackPDU:      make([]int, len(topo.Racks)),
		PDUSpot:      make([]float64, len(topo.PDUs)),
	}
	for i, r := range topo.Racks {
		cons.RackHeadroom[i] = r.SpotHeadroom
		cons.RackPDU[i] = r.PDU
	}
	if cfg.Tracer != nil && cfg.MarketOptions.Trace == nil {
		cfg.MarketOptions.Trace = cfg.Tracer
	}
	mkt, err := core.NewMarket(cons, cfg.MarketOptions)
	if err != nil {
		return nil, err
	}
	if cfg.Metrics != nil {
		cfg.Metrics.bind(len(topo.PDUs))
	}
	var responder *responderState
	if cfg.Emergency != nil {
		if err := cfg.Emergency.validate(); err != nil {
			return nil, err
		}
		responder = newResponderState(*cfg.Emergency, topo)
	}
	return &Operator{
		topo:       topo,
		market:     mkt,
		pricing:    pr,
		predict:    cfg.Predict,
		payments:   make(map[string]*stats.Neumaier),
		pduSoldBuf: make([]float64, len(topo.PDUs)),
		responder:  responder,
		met:        cfg.Metrics,
		tracer:     cfg.Tracer,
	}, nil
}

// SetTraceParent parks the current slot's root span for RunSlot's stage
// spans (predict/clear/audit) to parent under, and forwards it to the
// market core for its clear span. The market loop calls it around each
// RunSlot; nil clears it. Nil-safe with tracing off.
func (op *Operator) SetTraceParent(sp *otrace.Span) {
	op.traceParent = sp
	op.market.SetTraceParent(sp)
}

// Metrics returns the operator's instrumentation handle set (nil when the
// operator runs uninstrumented). The market-loop layer uses it to report
// slot degradation and circuit-breaker transitions.
func (op *Operator) Metrics() *Metrics { return op.met }

// Pricing returns the operator's pricing parameters.
func (op *Operator) Pricing() Pricing { return op.pricing }

// Topology returns the operator's power topology.
func (op *Operator) Topology() *power.Topology { return op.topo }

// LastSpot returns the spot capacity predicted in the most recent slot.
func (op *Operator) LastSpot() power.Spot { return op.lastSpot }

// PredictSpot runs Section III-C's prediction for the next slot: the
// current reading provides reference power, racks appearing in bids are
// referenced at their guaranteed capacity, and the conservative
// under-prediction factor is applied.
func (op *Operator) PredictSpot(reading power.Reading, biddingRacks []int) (power.Spot, error) {
	opts := op.predict
	if len(biddingRacks) > 0 {
		// Reuse the spot-user set across slots (PredictSpot only reads it
		// during the call).
		if op.spotUsers == nil {
			op.spotUsers = make(map[int]bool, len(biddingRacks))
		} else {
			for k := range op.spotUsers {
				delete(op.spotUsers, k)
			}
		}
		for _, r := range biddingRacks {
			op.spotUsers[r] = true
		}
		opts.SpotUsers = op.spotUsers
	}
	return op.topo.PredictSpot(reading, opts)
}

// SlotOutcome reports one slot of market operation.
type SlotOutcome struct {
	// Spot is the predicted available spot capacity used for clearing.
	Spot power.Spot
	// Result is the market clearing outcome.
	Result core.Result
	// RevenueThisSlot is the $ billed for the slot.
	RevenueThisSlot float64
	// ClearDuration is the wall time spent inside market clearing alone —
	// not prediction, feasibility verification, or billing — which is
	// what the paper's Fig. 7(b) scaling numbers measure.
	ClearDuration time.Duration
}

// ValidateReading rejects power snapshots the operator must not clear on:
// NaN, infinite, or negative rack or PDU watts (corrupt telemetry). The
// caller degrades the slot to the no-spot default.
func ValidateReading(reading power.Reading) error {
	check := func(kind string, ws []float64) error {
		for i, w := range ws {
			if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
				return fmt.Errorf("%w: %s %d watts %v", ErrReading, kind, i, w)
			}
		}
		return nil
	}
	if err := check("rack", reading.RackWatts); err != nil {
		return err
	}
	return check("other-PDU", reading.OtherPDUWatts)
}

// VerifyFeasible re-checks an allocation against the market's capacity
// constraints (Eqns. 2–4) — the reliability invariant exposed so external
// harnesses (e.g. the networked fault tests) can assert it independently.
func (op *Operator) VerifyFeasible(allocs []core.Allocation) error {
	return op.market.VerifyFeasible(allocs)
}

// RunSlot executes one Algorithm 1 iteration: predict spot capacity from
// the reading, clear the market over the bids, verify feasibility, and
// bill tenants for slotHours of their granted capacity.
func (op *Operator) RunSlot(bids []core.Bid, reading power.Reading, slotHours float64) (SlotOutcome, error) {
	var slotStart time.Time
	if op.met != nil {
		slotStart = time.Now()
	}
	if slotHours <= 0 {
		return SlotOutcome{}, fmt.Errorf("operator: slotHours %v must be positive", slotHours)
	}
	// predict covers reading validation plus the Section III-C spot
	// prediction; clear (market.Clear's own span) and audit follow it.
	ps := op.tracer.StartChild("predict", op.traceParent)
	if err := ValidateReading(reading); err != nil {
		ps.SetStr("error", err.Error())
		ps.End()
		return SlotOutcome{}, err
	}
	racks := op.rackBuf[:0]
	for _, b := range bids {
		racks = append(racks, b.Rack)
	}
	op.rackBuf = racks
	spot, err := op.PredictSpot(reading, racks)
	if err != nil {
		ps.SetStr("error", err.Error())
		ps.End()
		return SlotOutcome{}, err
	}
	ps.SetFloat("ups_spot_watts", spot.UPSWatts)
	ps.End()
	if rs := op.responder; rs != nil {
		// Suspended elements sell no spot capacity until they recover
		// (Section III-C: the market pauses at an overloaded PDU). The
		// zeroed prediction is what gets journaled, so the applied
		// suspensions are recorded alongside for exact replay.
		rs.appliedPDU = rs.appliedPDU[:0]
		rs.appliedUPS = rs.suspendedUPS
		for m, suspended := range rs.suspendedPDU {
			if suspended {
				spot.PDUWatts[m] = 0
				rs.appliedPDU = append(rs.appliedPDU, m)
			}
		}
		if rs.suspendedUPS {
			spot.UPSWatts = 0
		}
	}
	if err := op.market.SetSpot(spot.PDUWatts, spot.UPSWatts); err != nil {
		return SlotOutcome{}, err
	}
	clearStart := time.Now()
	res, err := op.market.Clear(bids)
	clearDur := time.Since(clearStart)
	if err != nil {
		return SlotOutcome{}, err
	}
	// audit covers the feasibility re-verification and the slot's billing
	// fold — the post-clear settlement work.
	as := op.tracer.StartChild("audit", op.traceParent)
	if err := op.market.VerifyFeasible(res.Allocations); err != nil {
		// A reliability invariant, not an expected runtime condition: spot
		// allocation must never endanger the infrastructure.
		as.SetStr("error", err.Error())
		as.End()
		return SlotOutcome{}, fmt.Errorf("operator: clearing produced infeasible allocation: %w", err)
	}
	slotRevenue := res.RevenueRate * slotHours
	op.spotRevenue.Add(slotRevenue)
	op.spotEnergyKWh.Add(res.TotalWatts / 1000 * slotHours)
	op.slots++
	op.lastSpot = spot
	if rs := op.responder; rs != nil {
		// Remember the slot's granted spot per rack: PlanReclaim cuts spot
		// users proportionally to these weights.
		for i := range rs.lastGrants {
			rs.lastGrants[i] = 0
		}
		for _, a := range res.Allocations {
			if a.Watts > 0 && a.Rack >= 0 && a.Rack < len(rs.lastGrants) {
				rs.lastGrants[a.Rack] += a.Watts
			}
		}
	}
	for _, a := range res.Allocations {
		if a.Watts <= 0 {
			continue
		}
		paid := res.Price * a.Watts / 1000 * slotHours
		if a.Tenant == "" {
			// Grants to anonymous bids still earn revenue; booking them
			// explicitly keeps the per-tenant ledger reconcilable against
			// SpotRevenue (previously this money silently vanished from the
			// payment books).
			op.unattributed.Add(paid)
			continue
		}
		acc := op.payments[a.Tenant]
		if acc == nil {
			acc = &stats.Neumaier{}
			op.payments[a.Tenant] = acc
		}
		acc.Add(paid)
	}
	as.SetFloat("revenue", slotRevenue)
	as.End()
	if op.met != nil {
		for i := range op.pduSoldBuf {
			op.pduSoldBuf[i] = 0
		}
		for _, a := range res.Allocations {
			op.pduSoldBuf[op.topo.Racks[a.Rack].PDU] += a.Watts
		}
		op.met.observeSlot(spot, op.pduSoldBuf, res.TotalWatts, slotRevenue,
			op.predict.UnderPredictionFactor, time.Since(slotStart))
	}
	return SlotOutcome{Spot: spot, Result: res, RevenueThisSlot: slotRevenue, ClearDuration: clearDur}, nil
}

// MaxPerfSlot runs the MaxPerf baseline for one slot under the same
// predicted spot capacity (no payments).
func (op *Operator) MaxPerfSlot(reqs []core.MaxPerfRequest, reading power.Reading) ([]core.Allocation, power.Spot, error) {
	racks := op.rackBuf[:0]
	for _, r := range reqs {
		racks = append(racks, r.Rack)
	}
	op.rackBuf = racks
	spot, err := op.PredictSpot(reading, racks)
	if err != nil {
		return nil, power.Spot{}, err
	}
	cons := op.market.Constraints()
	cons.PDUSpot = spot.PDUWatts
	cons.UPSSpot = spot.UPSWatts
	allocs, err := core.MaxPerf(cons, reqs, core.MaxPerfOptions{QuantumWatts: 2})
	if err != nil {
		return nil, power.Spot{}, err
	}
	op.slots++
	op.lastSpot = spot
	return allocs, spot, nil
}

// ObserveEmergencies records capacity excursions for the slot's realized
// reading. Without Config.Emergency it only counts them (capping is left
// to out-of-band mechanisms, as the paper assumes); with the responder
// enabled it additionally plans reclamation, pushes budget resets, and
// manages spot-sale suspension/recovery — see emergency.go.
func (op *Operator) ObserveEmergencies(reading power.Reading, breakerTolerance float64) []power.Emergency {
	em := op.topo.CheckEmergencies(reading, breakerTolerance)
	if len(em) > 0 {
		op.emergencySlots++
		if op.met != nil {
			op.met.emergencies.Inc()
		}
	}
	if op.responder != nil {
		op.respondEmergencies(em, reading)
	}
	return em
}

// EmergencySlots returns how many observed slots had at least one
// capacity excursion.
func (op *Operator) EmergencySlots() int { return op.emergencySlots }

// SpotRevenue returns the cumulative spot revenue in $.
func (op *Operator) SpotRevenue() float64 { return op.spotRevenue.Sum() }

// SpotEnergyKWh returns the cumulative spot capacity sold in kWh.
func (op *Operator) SpotEnergyKWh() float64 { return op.spotEnergyKWh.Sum() }

// Slots returns how many slots the operator has run.
func (op *Operator) Slots() int { return op.slots }

// PaymentOf returns a tenant's cumulative spot payments in $.
func (op *Operator) PaymentOf(tenant string) float64 {
	if acc := op.payments[tenant]; acc != nil {
		return acc.Sum()
	}
	return 0
}

// UnattributedRevenue returns the cumulative $ granted to allocations that
// carried no tenant name (anonymous direct-API bids).
func (op *Operator) UnattributedRevenue() float64 { return op.unattributed.Sum() }

// MarketOptions returns the market configuration the operator clears with.
func (op *Operator) MarketOptions() core.Options { return op.market.Options() }

// PredictOptions returns the operator's prediction configuration. The
// per-slot SpotUsers scratch is omitted — it is transient state, not
// configuration.
func (op *Operator) PredictOptions() power.PredictOptions {
	p := op.predict
	p.SpotUsers = nil
	return p
}

// ReconcileAccounts cross-checks the operator's books: the sum of every
// tenant's payments plus unattributed revenue must equal cumulative spot
// revenue. The tolerance covers re-association error only — both sides use
// compensated accumulators, so a real accounting bug (a dropped or
// double-billed line item) is far outside it.
func (op *Operator) ReconcileAccounts() error {
	var paid stats.Neumaier
	for _, acc := range op.payments {
		paid.Add(acc.Sum())
	}
	paid.Add(op.unattributed.Sum())
	rev := op.spotRevenue.Sum()
	if d := math.Abs(paid.Sum() - rev); d > 1e-9*(1+math.Abs(rev)) {
		return fmt.Errorf("operator: payments %.12g $ (incl. %.12g unattributed) != spot revenue %.12g $ (Δ %g)",
			paid.Sum(), op.unattributed.Sum(), rev, d)
	}
	return nil
}

// ProfitReport summarizes the Fig. 12 / Fig. 18 profit comparison over a
// simulated horizon.
type ProfitReport struct {
	// Hours is the simulated duration.
	Hours float64
	// BaselineProfit is the PowerCapped profit over the horizon ($).
	BaselineProfit float64
	// SpotRevenue is the extra revenue from selling spot capacity ($).
	SpotRevenue float64
	// RackCapex is the amortized rack over-provisioning expense ($).
	RackCapex float64
	// ExtraProfitFraction is (SpotRevenue − RackCapex) / BaselineProfit —
	// the paper's headline +9.7%.
	ExtraProfitFraction float64
}

// Profit computes the report for a horizon of the given hours, using the
// topology's leased capacity and UPS capacity for the baseline.
func (op *Operator) Profit(hours float64, extraLeasedWatts float64) ProfitReport {
	leased := op.topo.TotalGuaranteed() + extraLeasedWatts
	headroom := 0.0
	for _, r := range op.topo.Racks {
		headroom += r.SpotHeadroom
	}
	base := op.pricing.BaselineProfitRate(leased, op.topo.UPSCapacity) * hours
	rackCapex := op.pricing.RackAmortRate(headroom) * hours
	rep := ProfitReport{
		Hours:          hours,
		BaselineProfit: base,
		SpotRevenue:    op.spotRevenue.Sum(),
		RackCapex:      rackCapex,
	}
	if base > 0 {
		rep.ExtraProfitFraction = (op.spotRevenue.Sum() - rackCapex) / base
	}
	return rep
}
