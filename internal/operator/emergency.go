// Emergency response and spot reclamation (Section III-C, Fig. 6): when a
// PDU or the UPS exceeds its capacity by more than the breaker tolerance,
// the operator reclaims capacity by power-capping spot users first —
// proportionally to their granted spot capacity, never below their
// guaranteed capacity — and escalates to pro-rata guaranteed curtailment
// only past a configurable severity. Affected elements stop selling spot
// capacity until readings stay healthy for RecoverySlots consecutive
// slots, after which budgets are restored to guaranteed + headroom.
//
// The planner is a pure function of (topology, emergency, reading, grants)
// so reclaim events replay deterministically from the slot journal.
package operator

import (
	"fmt"
	"sync"

	"spotdc/internal/power"
)

// reclaimEps absorbs float dust in the waterfill: residuals below it count
// as fully distributed.
const reclaimEps = 1e-9

// ReclaimTarget is one rack's budget reset within a reclaim plan: the rack
// is capped to BudgetWatts, of which SpotCut watts came out of its draw
// above guaranteed capacity and GuaranteedCut out of the guarantee itself
// (escalation only).
type ReclaimTarget struct {
	Rack          int
	BudgetWatts   float64
	SpotCut       float64
	GuaranteedCut float64
}

// ReclaimPlan is the responder's answer to one capacity excursion: per-rack
// budget resets that bring the element's measured load back to its
// capacity, cutting spot users first.
type ReclaimPlan struct {
	// Level is "PDU" or "UPS"; ID names the element; PDU indexes
	// Topology.PDUs or is -1 for the UPS.
	Level string
	ID    string
	PDU   int
	// Load and Capacity echo the emergency in watts.
	Load, Capacity float64
	// Targets lists the racks whose budgets change, in ascending rack
	// order. Racks needing no cut are omitted.
	Targets []ReclaimTarget
	// SpotReclaimed and GuaranteedReclaimed total the cuts by class.
	SpotReclaimed       float64
	GuaranteedReclaimed float64
	// Escalated reports that spot cuts alone could not cover the excess and
	// the overload fraction exceeded the escalation severity, so guaranteed
	// capacity was curtailed pro-rata.
	Escalated bool
}

// PlanReclaim computes per-rack budget resets for one emergency. Cuts are
// based on each rack's measured draw above its guaranteed capacity (the
// only load a budget reset can actually shed): the excess over capacity is
// distributed across spot users proportionally to their granted spot
// capacity, capped at what each rack has to give, with leftover spread
// over remaining reclaimable draw. Guaranteed capacity is untouchable
// below the escalation severity; past it, any excess spot cuts cannot
// cover is curtailed pro-rata to guaranteed capacity. The new budget is
// measured − cut, so a compliant rack's next reading removes exactly the
// planned watts.
//
// The function is deterministic and pure — identical inputs produce
// bit-identical plans — which is what lets the audit layer replay journal
// reclaim events exactly.
func PlanReclaim(topo *power.Topology, em power.Emergency, rackWatts, grants []float64, escalationSeverity float64) ReclaimPlan {
	plan := ReclaimPlan{Level: em.Level, ID: em.ID, PDU: em.PDU, Load: em.Load, Capacity: em.Capacity}
	excess := em.Load - em.Capacity
	if excess <= 0 {
		return plan
	}
	var racks []int
	if em.PDU >= 0 {
		racks = topo.RacksOfPDU(em.PDU)
	} else {
		racks = make([]int, len(topo.Racks))
		for i := range racks {
			racks[i] = i
		}
	}
	n := len(racks)
	if n == 0 {
		return plan
	}
	var (
		watts      = make([]float64, n) // measured draw
		above      = make([]float64, n) // reclaimable: draw above guaranteed
		cut        = make([]float64, n) // spot cut
		gcut       = make([]float64, n) // guaranteed cut (escalation only)
		weight     = make([]float64, n) // granted spot, for proportional cuts
		totalAbove float64
	)
	for j, r := range racks {
		w := 0.0
		if r < len(rackWatts) {
			w = rackWatts[r]
		}
		watts[j] = w
		if a := w - topo.Racks[r].Guaranteed; a > 0 {
			above[j] = a
			totalAbove += a
			if r < len(grants) {
				weight[j] = grants[r]
			}
		}
	}

	remaining := excess
	if remaining >= totalAbove {
		// Not enough spot draw to cover the excess: cap everyone at their
		// guarantee and let escalation (below) decide about the rest.
		copy(cut, above)
		remaining -= totalAbove
	} else {
		// Waterfill proportional to granted spot, cap-and-redistribute:
		// racks whose reclaimable draw fills up drop out and their share
		// flows to the rest. At most n passes empty the weighted set.
		for pass := 0; pass < n && remaining > reclaimEps; pass++ {
			tw := 0.0
			for j := range cut {
				if weight[j] > 0 && above[j]-cut[j] > reclaimEps {
					tw += weight[j]
				}
			}
			if tw <= 0 {
				break
			}
			r0 := remaining
			for j := range cut {
				if weight[j] <= 0 || above[j]-cut[j] <= reclaimEps {
					continue
				}
				share := r0 * weight[j] / tw
				if room := above[j] - cut[j]; share > room {
					share = room
				}
				cut[j] += share
				remaining -= share
			}
		}
		// Leftover — every weighted rack capped out, or no grants at all
		// (e.g. a slot that cleared nothing): spread over residual
		// reclaimable draw so the element still recovers.
		for pass := 0; pass < n && remaining > reclaimEps; pass++ {
			tr := 0.0
			for j := range cut {
				tr += above[j] - cut[j]
			}
			if tr <= reclaimEps {
				break
			}
			r0 := remaining
			for j := range cut {
				room := above[j] - cut[j]
				if room <= 0 {
					continue
				}
				share := r0 * room / tr
				if share > room {
					share = room
				}
				cut[j] += share
				remaining -= share
			}
		}
	}

	if remaining > reclaimEps && em.OverloadFraction() > escalationSeverity {
		// Severe excursion spot cuts cannot cover: curtail guaranteed
		// capacity pro-rata, never below zero draw.
		plan.Escalated = true
		for pass := 0; pass < n && remaining > reclaimEps; pass++ {
			tg := 0.0
			for j, r := range racks {
				if watts[j]-cut[j]-gcut[j] > reclaimEps && topo.Racks[r].Guaranteed > 0 {
					tg += topo.Racks[r].Guaranteed
				}
			}
			if tg <= 0 {
				break
			}
			r0 := remaining
			for j, r := range racks {
				g := topo.Racks[r].Guaranteed
				drawLeft := watts[j] - cut[j] - gcut[j]
				if g <= 0 || drawLeft <= reclaimEps {
					continue
				}
				share := r0 * g / tg
				if share > drawLeft {
					share = drawLeft
				}
				gcut[j] += share
				remaining -= share
			}
		}
	}

	for j, r := range racks {
		total := cut[j] + gcut[j]
		if total <= reclaimEps {
			continue
		}
		budget := watts[j] - total
		if budget < 0 {
			budget = 0
		}
		plan.Targets = append(plan.Targets, ReclaimTarget{
			Rack: r, BudgetWatts: budget, SpotCut: cut[j], GuaranteedCut: gcut[j],
		})
		plan.SpotReclaimed += cut[j]
		plan.GuaranteedReclaimed += gcut[j]
	}
	return plan
}

// ResponderConfig enables the operator's emergency responder: with
// Config.Emergency set, ObserveEmergencies no longer just counts
// excursions — it plans reclamation, pushes budget resets through the
// SetBudget hook, suspends spot sales at affected elements, and restores
// budgets once readings stay healthy. Leaving Config.Emergency nil keeps
// the operator bit-identical to the count-only behavior.
type ResponderConfig struct {
	// EscalationSeverity is the overload fraction past which the responder
	// may curtail guaranteed capacity (default 0.5 — a 50% excursion).
	// Below it, guaranteed capacity is untouchable even if spot cuts cannot
	// cover the excess.
	EscalationSeverity float64
	// RecoverySlots is how many consecutive healthy readings an element
	// needs before spot sales resume and budgets are restored (default 2).
	RecoverySlots int
	// SetBudget, if non-nil, applies one rack budget reset — typically
	// rackpdu.PDU.SetBudget. The responder fans resets out concurrently
	// across racks so each unit's ResetDelay is paid in parallel, keeping a
	// whole plan inside the ≥20 resets/s envelope.
	SetBudget func(rack int, budgetWatts float64) error
}

func (rc ResponderConfig) validate() error {
	if rc.EscalationSeverity < 0 {
		return fmt.Errorf("operator: emergency escalation severity %v negative", rc.EscalationSeverity)
	}
	if rc.RecoverySlots < 0 {
		return fmt.Errorf("operator: emergency recovery slots %d negative", rc.RecoverySlots)
	}
	return nil
}

func (rc ResponderConfig) normalized() ResponderConfig {
	if rc.EscalationSeverity == 0 {
		rc.EscalationSeverity = 0.5
	}
	if rc.RecoverySlots == 0 {
		rc.RecoverySlots = 2
	}
	return rc
}

// responderState lives on the Operator only when Config.Emergency is set.
// Everything here is touched from the slot loop goroutine; the only
// concurrency is the budget-reset fan-out, which joins before returning.
type responderState struct {
	cfg ResponderConfig

	// Per-PDU suspension: suspended elements sell no spot capacity; calm
	// counts consecutive healthy readings toward recovery; start is the
	// operator slot count when the suspension began (time-to-safe clock).
	suspendedPDU []bool
	calmPDU      []int
	startPDU     []int
	suspendedUPS bool
	calmUPS      int
	startUPS     int

	// lastGrants is the most recent cleared slot's granted spot per rack —
	// the proportional weights for PlanReclaim.
	lastGrants []float64

	// Per-slot outputs, valid until the next ObserveEmergencies call.
	lastReclaims []ReclaimPlan
	lastRestores []ReclaimPlan
	appliedPDU   []int // suspensions zeroed out of this slot's prediction
	appliedUPS   bool

	// Running totals for results and experiment tables.
	acted           int
	reclaimedWatts  float64
	guaranteedWatts float64
	involuntary     int

	hookMu       sync.Mutex
	hookFailures int
	lastHookErr  error
}

func newResponderState(cfg ResponderConfig, topo *power.Topology) *responderState {
	return &responderState{
		cfg:          cfg.normalized(),
		suspendedPDU: make([]bool, len(topo.PDUs)),
		calmPDU:      make([]int, len(topo.PDUs)),
		startPDU:     make([]int, len(topo.PDUs)),
		lastGrants:   make([]float64, len(topo.Racks)),
		appliedPDU:   make([]int, 0, len(topo.PDUs)),
	}
}

// EmergencyResponder returns the responder configuration and whether the
// emergency loop is enabled.
func (op *Operator) EmergencyResponder() (ResponderConfig, bool) {
	if op.responder == nil {
		return ResponderConfig{}, false
	}
	return op.responder.cfg, true
}

// LastReclaims returns the reclaim plans issued by the most recent
// ObserveEmergencies call (nil when the slot was healthy or the responder
// is disabled). Valid until the next call.
func (op *Operator) LastReclaims() []ReclaimPlan {
	if op.responder == nil {
		return nil
	}
	return op.responder.lastReclaims
}

// LastRestores returns the budget restorations (guaranteed + headroom)
// issued by the most recent ObserveEmergencies call as elements recovered.
// Valid until the next call.
func (op *Operator) LastRestores() []ReclaimPlan {
	if op.responder == nil {
		return nil
	}
	return op.responder.lastRestores
}

// AppliedSuspensions reports which elements' spot capacity the most recent
// RunSlot zeroed out of its prediction: the suspended PDU indices (shared
// slice, do not modify) and whether the UPS was suspended.
func (op *Operator) AppliedSuspensions() (pdus []int, ups bool) {
	if op.responder == nil {
		return nil, false
	}
	return op.responder.appliedPDU, op.responder.appliedUPS
}

// EmergenciesActed returns how many excursions the responder has planned
// reclamation for.
func (op *Operator) EmergenciesActed() int {
	if op.responder == nil {
		return 0
	}
	return op.responder.acted
}

// ReclaimedWatts returns the cumulative watts of budget cuts the responder
// has issued (spot + escalated guaranteed).
func (op *Operator) ReclaimedWatts() float64 {
	if op.responder == nil {
		return 0
	}
	return op.responder.reclaimedWatts
}

// GuaranteedCutWatts returns the cumulative guaranteed-capacity watts the
// responder curtailed under escalation. Zero means guaranteed tenants were
// never touched.
func (op *Operator) GuaranteedCutWatts() float64 {
	if op.responder == nil {
		return 0
	}
	return op.responder.guaranteedWatts
}

// InvoluntaryCuts returns how many budget resets invaded a rack's
// guaranteed capacity (the paper's involuntary power cuts).
func (op *Operator) InvoluntaryCuts() int {
	if op.responder == nil {
		return 0
	}
	return op.responder.involuntary
}

// HookFailures reports budget-reset hook errors: the count and the most
// recent error. The responder never aborts on a failed reset — a partial
// reclamation is still safer than none — so failures are surfaced here.
func (op *Operator) HookFailures() (int, error) {
	if op.responder == nil {
		return 0, nil
	}
	op.responder.hookMu.Lock()
	defer op.responder.hookMu.Unlock()
	return op.responder.hookFailures, op.responder.lastHookErr
}

// respondEmergencies runs the responder for one observed slot: plan and
// apply reclamation for each excursion, advance recovery clocks on
// suspended elements that read healthy, and restore budgets once an
// element has been calm for RecoverySlots. When multiple elements fail in
// the same slot the plans are applied in CheckEmergencies order (PDUs
// ascending, then UPS); a rack targeted twice keeps the later budget.
func (op *Operator) respondEmergencies(ems []power.Emergency, reading power.Reading) {
	rs := op.responder
	rs.lastReclaims = rs.lastReclaims[:0]
	rs.lastRestores = rs.lastRestores[:0]
	for _, em := range ems {
		plan := PlanReclaim(op.topo, em, reading.RackWatts, rs.lastGrants, rs.cfg.EscalationSeverity)
		op.suspendElement(em.PDU)
		op.applyBudgets(plan.Targets)
		rs.acted++
		rs.reclaimedWatts += plan.SpotReclaimed + plan.GuaranteedReclaimed
		rs.guaranteedWatts += plan.GuaranteedReclaimed
		for _, t := range plan.Targets {
			if t.GuaranteedCut > 0 {
				rs.involuntary++
			}
		}
		if op.met != nil {
			op.met.observeReclaim(plan)
		}
		rs.lastReclaims = append(rs.lastReclaims, plan)
	}
	// Recovery: a suspended element absent from this slot's emergency list
	// read healthy; RecoverySlots consecutive healthy readings restore it.
	inEmergency := func(pdu int) bool {
		for _, em := range ems {
			if em.PDU == pdu {
				return true
			}
		}
		return false
	}
	for m := range rs.suspendedPDU {
		if !rs.suspendedPDU[m] {
			continue
		}
		if inEmergency(m) {
			rs.calmPDU[m] = 0
			continue
		}
		rs.calmPDU[m]++
		if rs.calmPDU[m] >= rs.cfg.RecoverySlots {
			op.restoreElement(m)
		}
	}
	if rs.suspendedUPS {
		if inEmergency(-1) {
			rs.calmUPS = 0
		} else if rs.calmUPS++; rs.calmUPS >= rs.cfg.RecoverySlots {
			op.restoreElement(-1)
		}
	}
}

// suspendElement stops spot sales at a PDU (or the UPS for pdu -1) until
// recovery; re-suspending an already suspended element only resets its
// calm counter, keeping the original time-to-safe clock.
func (op *Operator) suspendElement(pdu int) {
	rs := op.responder
	if pdu < 0 {
		if !rs.suspendedUPS {
			rs.suspendedUPS = true
			rs.startUPS = op.slots
		}
		rs.calmUPS = 0
		return
	}
	if !rs.suspendedPDU[pdu] {
		rs.suspendedPDU[pdu] = true
		rs.startPDU[pdu] = op.slots
	}
	rs.calmPDU[pdu] = 0
}

// restoreElement ends a suspension: spot sales resume next slot and every
// rack under the element gets its full budget (guaranteed + headroom)
// back, recorded as a restore plan so the network layer re-broadcasts it.
func (op *Operator) restoreElement(pdu int) {
	rs := op.responder
	plan := ReclaimPlan{PDU: pdu}
	var racks []int
	var start int
	if pdu < 0 {
		plan.Level = "UPS"
		plan.ID = "UPS"
		racks = make([]int, len(op.topo.Racks))
		for i := range racks {
			racks[i] = i
		}
		start = rs.startUPS
		rs.suspendedUPS = false
		rs.calmUPS = 0
	} else {
		plan.Level = "PDU"
		plan.ID = op.topo.PDUs[pdu].ID
		racks = op.topo.RacksOfPDU(pdu)
		start = rs.startPDU[pdu]
		rs.suspendedPDU[pdu] = false
		rs.calmPDU[pdu] = 0
	}
	for _, r := range racks {
		rk := op.topo.Racks[r]
		plan.Targets = append(plan.Targets, ReclaimTarget{
			Rack: r, BudgetWatts: rk.Guaranteed + rk.SpotHeadroom,
		})
	}
	op.applyBudgets(plan.Targets)
	if op.met != nil {
		op.met.observeRecovery(float64(op.slots - start))
	}
	rs.lastRestores = append(rs.lastRestores, plan)
}

// applyBudgets pushes one plan's budget resets through the SetBudget hook,
// one goroutine per rack: rack PDUs serialize resets behind ResetDelay, so
// the fan-out pays those delays in parallel and a full-testbed plan stays
// well inside the ≥20 resets/s envelope. Returns after every reset lands.
func (op *Operator) applyBudgets(targets []ReclaimTarget) {
	rs := op.responder
	hook := rs.cfg.SetBudget
	if hook == nil || len(targets) == 0 {
		return
	}
	var wg sync.WaitGroup
	for _, t := range targets {
		wg.Add(1)
		go func(t ReclaimTarget) {
			defer wg.Done()
			if err := hook(t.Rack, t.BudgetWatts); err != nil {
				rs.hookMu.Lock()
				rs.hookFailures++
				rs.lastHookErr = err
				rs.hookMu.Unlock()
			}
		}(t)
	}
	wg.Wait()
}
