package operator

import (
	"math"
	"reflect"
	"sort"
	"sync"
	"testing"

	"spotdc/internal/core"
	"spotdc/internal/power"
)

func pduEmergency(load float64) power.Emergency {
	return power.Emergency{Level: "PDU", ID: "PDU#1", Load: load, Capacity: 715, PDU: 0}
}

func TestPlanReclaimProportionalToGrants(t *testing.T) {
	topo := testTopo(t)
	// Racks 0 (145 W guaranteed) and 1 (125 W) both drawing above their
	// guarantee; grants 60/40 set the proportional cut weights.
	rackWatts := []float64{220, 180, 130, 110}
	grants := []float64{60, 40, 0, 0}
	plan := PlanReclaim(topo, pduEmergency(795), rackWatts, grants, 0.5)
	// excess = 80 < totalAbove = 75+55 = 130: pure proportional waterfill.
	if len(plan.Targets) != 2 {
		t.Fatalf("targets = %+v, want 2", plan.Targets)
	}
	want := []ReclaimTarget{
		{Rack: 0, BudgetWatts: 172, SpotCut: 48},
		{Rack: 1, BudgetWatts: 148, SpotCut: 32},
	}
	for i, w := range want {
		g := plan.Targets[i]
		if g.Rack != w.Rack || math.Abs(g.BudgetWatts-w.BudgetWatts) > 1e-9 ||
			math.Abs(g.SpotCut-w.SpotCut) > 1e-9 || g.GuaranteedCut != 0 {
			t.Errorf("target %d = %+v, want %+v", i, g, w)
		}
	}
	if math.Abs(plan.SpotReclaimed-80) > 1e-9 || plan.GuaranteedReclaimed != 0 || plan.Escalated {
		t.Errorf("plan totals %+v", plan)
	}
}

func TestPlanReclaimCapAndRedistribute(t *testing.T) {
	topo := testTopo(t)
	// Rack 0 has 30 W above guarantee but 80% of the grant weight: its
	// proportional share caps out and the rest flows to rack 1.
	rackWatts := []float64{175, 215, 130, 110}
	grants := []float64{80, 20, 0, 0}
	plan := PlanReclaim(topo, pduEmergency(815), rackWatts, grants, 0.5)
	if len(plan.Targets) != 2 {
		t.Fatalf("targets = %+v", plan.Targets)
	}
	if math.Abs(plan.Targets[0].SpotCut-30) > 1e-9 {
		t.Errorf("rack 0 cut %v, want its full 30 W above guarantee", plan.Targets[0].SpotCut)
	}
	if math.Abs(plan.Targets[1].SpotCut-70) > 1e-9 {
		t.Errorf("rack 1 cut %v, want the redistributed 70 W", plan.Targets[1].SpotCut)
	}
	if plan.Escalated || plan.GuaranteedReclaimed != 0 {
		t.Errorf("plan escalated: %+v", plan)
	}
}

func TestPlanReclaimEscalation(t *testing.T) {
	topo := testTopo(t)
	// Spot draw above guarantee totals 50 W but the excess is 185 W: spot
	// cuts cannot cover it. Below the severity threshold guaranteed capacity
	// stays untouchable; above it the shortfall is curtailed pro-rata.
	rackWatts := []float64{175, 145, 130, 110}
	grants := []float64{30, 20, 0, 0}
	em := pduEmergency(900) // overload fraction ≈ 0.259

	mild := PlanReclaim(topo, em, rackWatts, grants, 0.5)
	if mild.Escalated || mild.GuaranteedReclaimed != 0 {
		t.Errorf("severity 0.5 escalated: %+v", mild)
	}
	if math.Abs(mild.SpotReclaimed-50) > 1e-9 {
		t.Errorf("severity 0.5 spot reclaimed %v, want all 50 W above guarantee", mild.SpotReclaimed)
	}

	severe := PlanReclaim(topo, em, rackWatts, grants, 0.2)
	if !severe.Escalated {
		t.Fatalf("severity 0.2 did not escalate: %+v", severe)
	}
	if math.Abs(severe.SpotReclaimed-50) > 1e-9 {
		t.Errorf("escalated spot reclaimed %v, want 50", severe.SpotReclaimed)
	}
	if math.Abs(severe.GuaranteedReclaimed-135) > 1e-9 {
		t.Errorf("guaranteed reclaimed %v, want the 135 W shortfall", severe.GuaranteedReclaimed)
	}
	// Pro-rata to guaranteed capacity: 145:125 over the racks of PDU#1.
	wantG0 := 135 * 145.0 / 270
	for _, tg := range severe.Targets {
		if tg.BudgetWatts < 0 {
			t.Errorf("negative budget: %+v", tg)
		}
		if tg.Rack == 0 && math.Abs(tg.GuaranteedCut-wantG0) > 1e-9 {
			t.Errorf("rack 0 guaranteed cut %v, want %v", tg.GuaranteedCut, wantG0)
		}
	}
}

func TestPlanReclaimUPSCoversAllRacks(t *testing.T) {
	topo := testTopo(t)
	rackWatts := []float64{180, 160, 180, 160}
	grants := []float64{25, 25, 25, 25}
	em := power.Emergency{Level: "UPS", ID: "UPS", Load: 1450, Capacity: 1370, PDU: -1}
	plan := PlanReclaim(topo, em, rackWatts, grants, 0.5)
	if len(plan.Targets) != 4 {
		t.Fatalf("UPS plan targets = %+v, want all four racks", plan.Targets)
	}
	if math.Abs(plan.SpotReclaimed-80) > 1e-9 || plan.GuaranteedReclaimed != 0 {
		t.Errorf("UPS plan totals %+v", plan)
	}
	if !sort.SliceIsSorted(plan.Targets, func(i, j int) bool { return plan.Targets[i].Rack < plan.Targets[j].Rack }) {
		t.Errorf("targets not in ascending rack order: %+v", plan.Targets)
	}
}

func TestPlanReclaimDeterministic(t *testing.T) {
	topo := testTopo(t)
	rackWatts := []float64{213.7, 181.3, 130, 110}
	grants := []float64{37.21, 42.9, 0, 0}
	a := PlanReclaim(topo, pduEmergency(801.77), rackWatts, grants, 0.3)
	b := PlanReclaim(topo, pduEmergency(801.77), rackWatts, grants, 0.3)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("identical inputs produced different plans:\n%+v\n%+v", a, b)
	}
}

// newEmergencyOp builds an operator with the responder enabled and a
// recording SetBudget hook.
func newEmergencyOp(t *testing.T, recoverySlots int) (*Operator, *budgetLog) {
	t.Helper()
	log := &budgetLog{set: map[int]float64{}}
	op, err := New(Config{
		Topology:      testTopo(t),
		MarketOptions: core.Options{PriceStep: 0.001},
		Emergency: &ResponderConfig{
			RecoverySlots: recoverySlots,
			SetBudget:     log.apply,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return op, log
}

type budgetLog struct {
	mu  sync.Mutex
	set map[int]float64
	n   int
}

func (l *budgetLog) apply(rack int, watts float64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.set[rack] = watts
	l.n++
	return nil
}

func TestResponderReclaimSuspendRestore(t *testing.T) {
	op, log := newEmergencyOp(t, 2)
	overloaded := power.Reading{
		RackWatts:     []float64{220, 180, 130, 110},
		OtherPDUWatts: []float64{395, 180}, // PDU#1 load 795 > 750.75
	}
	healthy := power.Reading{
		RackWatts:     []float64{140, 120, 130, 110},
		OtherPDUWatts: []float64{180, 180},
	}

	if ems := op.ObserveEmergencies(overloaded, 0.05); len(ems) != 1 {
		t.Fatalf("emergencies = %+v, want PDU#1 only", ems)
	}
	if got := op.EmergenciesActed(); got != 1 {
		t.Fatalf("EmergenciesActed = %d", got)
	}
	plans := op.LastReclaims()
	if len(plans) != 1 || len(plans[0].Targets) != 2 {
		t.Fatalf("LastReclaims = %+v", plans)
	}
	if op.GuaranteedCutWatts() != 0 || op.InvoluntaryCuts() != 0 {
		t.Errorf("guaranteed capacity touched: %v W, %d cuts", op.GuaranteedCutWatts(), op.InvoluntaryCuts())
	}
	log.mu.Lock()
	if len(log.set) != 2 || log.n != 2 {
		t.Errorf("hook applied %d resets to %v", log.n, log.set)
	}
	log.mu.Unlock()

	// A suspended PDU sells no spot capacity while the emergency stands.
	out, err := op.RunSlot(nil, healthy, 2.0/60)
	if err != nil {
		t.Fatal(err)
	}
	if out.Spot.PDUWatts[0] != 0 {
		t.Errorf("suspended PDU#1 offered %v W of spot", out.Spot.PDUWatts[0])
	}
	if out.Spot.PDUWatts[1] == 0 {
		t.Errorf("healthy PDU#2 offered no spot")
	}
	pdus, ups := op.AppliedSuspensions()
	if len(pdus) != 1 || pdus[0] != 0 || ups {
		t.Errorf("AppliedSuspensions = %v, %v", pdus, ups)
	}

	// Recovery: after RecoverySlots consecutive healthy readings the element
	// restores every rack to guaranteed + headroom and spot sales resume.
	if op.ObserveEmergencies(healthy, 0.05); len(op.LastRestores()) != 0 {
		t.Fatalf("restored after one calm slot")
	}
	op.ObserveEmergencies(healthy, 0.05)
	restores := op.LastRestores()
	if len(restores) != 1 || restores[0].PDU != 0 || len(restores[0].Targets) != 2 {
		t.Fatalf("LastRestores = %+v", restores)
	}
	log.mu.Lock()
	if w := log.set[0]; w != 145+60 {
		t.Errorf("rack 0 restored to %v, want guaranteed+headroom 205", w)
	}
	log.mu.Unlock()
	out, err = op.RunSlot(nil, healthy, 2.0/60)
	if err != nil {
		t.Fatal(err)
	}
	if out.Spot.PDUWatts[0] == 0 {
		t.Errorf("restored PDU#1 still offers no spot")
	}
}

func TestResponderReSuspensionResetsCalm(t *testing.T) {
	op, _ := newEmergencyOp(t, 2)
	overloaded := power.Reading{
		RackWatts:     []float64{220, 180, 130, 110},
		OtherPDUWatts: []float64{395, 180},
	}
	healthy := power.Reading{
		RackWatts:     []float64{140, 120, 130, 110},
		OtherPDUWatts: []float64{180, 180},
	}
	op.ObserveEmergencies(overloaded, 0.05) // suspend
	op.ObserveEmergencies(healthy, 0.05)    // calm 1
	op.ObserveEmergencies(overloaded, 0.05) // re-excursion: calm resets
	op.ObserveEmergencies(healthy, 0.05)    // calm 1 again
	if len(op.LastRestores()) != 0 {
		t.Fatalf("restored despite interrupted recovery")
	}
	op.ObserveEmergencies(healthy, 0.05) // calm 2: restore
	if len(op.LastRestores()) != 1 {
		t.Fatalf("no restore after two consecutive calm slots")
	}
	if got := op.EmergenciesActed(); got != 2 {
		t.Errorf("EmergenciesActed = %d, want 2", got)
	}
}

func TestResponderQuiescentPathAllocFree(t *testing.T) {
	op, _ := newEmergencyOp(t, 2)
	healthy := power.Reading{
		RackWatts:     []float64{140, 120, 130, 110},
		OtherPDUWatts: []float64{180, 180},
	}
	allocs := testing.AllocsPerRun(100, func() {
		op.ObserveEmergencies(healthy, 0.05)
	})
	if allocs > 0 {
		t.Errorf("healthy-slot emergency scan allocates %v times per call, want 0", allocs)
	}
}
