package operator

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"spotdc/internal/core"
	"spotdc/internal/power"
	"spotdc/internal/stats"
)

// driveSlot runs one deterministic slot (varying by index) and returns the
// commit record for it.
func driveSlot(t *testing.T, op *Operator, i int, emergencies bool) SlotCommit {
	t.Helper()
	surge := 0.0
	if emergencies && i%7 == 3 {
		surge = 400 // push PDU#1 over its 715 W capacity
	}
	reading := power.Reading{
		RackWatts:     []float64{130 + float64(i%5) + surge, 110, 120 + float64(i%3), 105},
		OtherPDUWatts: []float64{180, 190},
	}
	bids := []core.Bid{
		{Rack: 0, Tenant: "Search-1", Fn: core.LinearBid{DMax: 50, DMin: 30, QMin: 0.3, QMax: 0.8}},
		{Rack: 1, Tenant: "Count-1", Fn: core.LinearBid{DMax: 60, DMin: 5, QMin: 0.02, QMax: 0.2}},
		{Rack: 2, Fn: core.LinearBid{DMax: 40, DMin: 10, QMin: 0.05, QMax: 0.3}}, // anonymous
	}
	const slotHours = 2.0 / 60
	out, err := op.RunSlot(bids, reading, slotHours)
	if err != nil {
		t.Fatalf("slot %d: %v", i, err)
	}
	if emergencies {
		op.ObserveEmergencies(reading, 0.01)
	}
	return op.LastSlotCommit(out, slotHours)
}

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	a := newOp(t)
	for i := 0; i < 12; i++ {
		driveSlot(t, a, i, false)
	}
	cp := a.Checkpoint()

	b := newOp(t)
	if err := b.Restore(cp); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if b.Slots() != a.Slots() || b.SpotRevenue() != a.SpotRevenue() ||
		b.SpotEnergyKWh() != a.SpotEnergyKWh() ||
		b.PaymentOf("Search-1") != a.PaymentOf("Search-1") ||
		b.UnattributedRevenue() != a.UnattributedRevenue() {
		t.Fatal("restored accessors differ from source")
	}
	if !reflect.DeepEqual(b.Checkpoint(), cp) {
		t.Fatal("re-checkpoint differs from source checkpoint")
	}
	if !reflect.DeepEqual(b.LastSpot(), a.LastSpot()) {
		t.Fatal("restored LastSpot differs")
	}
	// Both must continue identically: compensated accumulators carried their
	// compensation terms across the restore.
	for i := 12; i < 20; i++ {
		ca := driveSlot(t, a, i, false)
		cb := driveSlot(t, b, i, false)
		if !reflect.DeepEqual(ca, cb) {
			t.Fatalf("slot %d commits diverge after restore", i)
		}
	}
	if a.SpotRevenue() != b.SpotRevenue() || a.PaymentOf("Count-1") != b.PaymentOf("Count-1") {
		t.Fatal("books diverged after post-restore slots")
	}
}

func TestSlotCommitReplayBitIdentical(t *testing.T) {
	a := newOp(t)
	b := newOp(t)
	var mid Checkpoint
	for i := 0; i < 16; i++ {
		c := driveSlot(t, a, i, false)
		if i == 7 {
			mid = a.Checkpoint()
		}
		if i > 7 {
			// Round-trip the commit through JSON, as the WAL stores it.
			data, err := json.Marshal(c)
			if err != nil {
				t.Fatal(err)
			}
			var decoded SlotCommit
			if err := json.Unmarshal(data, &decoded); err != nil {
				t.Fatal(err)
			}
			if i == 8 {
				if err := b.Restore(mid); err != nil {
					t.Fatal(err)
				}
			}
			if err := b.ApplySlotCommit(decoded); err != nil {
				t.Fatalf("ApplySlotCommit slot %d: %v", i, err)
			}
		}
	}
	if !reflect.DeepEqual(a.Checkpoint(), b.Checkpoint()) {
		t.Fatal("replayed checkpoint differs from live run")
	}
	if a.SpotRevenue() != b.SpotRevenue() || a.SpotEnergyKWh() != b.SpotEnergyKWh() {
		t.Fatalf("replayed sums not bit-identical: %v vs %v", a.SpotRevenue(), b.SpotRevenue())
	}
	if err := b.ReconcileAccounts(); err != nil {
		t.Fatal(err)
	}
}

func newDurableEmergencyOp(t *testing.T) *Operator {
	t.Helper()
	op, err := New(Config{
		Topology:      testTopo(t),
		MarketOptions: core.Options{PriceStep: 0.001},
		Emergency:     &ResponderConfig{RecoverySlots: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	return op
}

func TestCheckpointRestoreCarriesResponderState(t *testing.T) {
	a := newDurableEmergencyOp(t)
	var mid Checkpoint
	for i := 0; i < 11; i++ {
		driveSlot(t, a, i, true)
		if i == 4 {
			// Slot 3 overloaded PDU#1: the checkpoint lands mid-suspension,
			// with a partially advanced calm counter.
			mid = a.Checkpoint()
		}
	}
	if mid.Responder == nil || !mid.Responder.SuspendedPDU[0] {
		t.Fatalf("checkpoint at slot 4 should capture an active PDU suspension: %+v", mid.Responder)
	}

	b := newDurableEmergencyOp(t)
	if err := b.Restore(mid); err != nil {
		t.Fatal(err)
	}
	// Fresh continuation from slot 5 must match the uninterrupted run —
	// including the recovery clock and reclaim totals.
	c := newDurableEmergencyOp(t)
	if err := c.Restore(mid); err != nil {
		t.Fatal(err)
	}
	for i := 5; i < 11; i++ {
		driveSlot(t, c, i, true)
	}
	if !reflect.DeepEqual(a.Checkpoint(), c.Checkpoint()) {
		t.Fatal("responder run restored mid-suspension diverged from uninterrupted run")
	}
	if a.EmergenciesActed() != c.EmergenciesActed() || a.ReclaimedWatts() != c.ReclaimedWatts() {
		t.Fatal("reclaim totals diverged")
	}
}

func TestRestoreValidation(t *testing.T) {
	plain := newOp(t)
	em := newDurableEmergencyOp(t)

	cp := em.Checkpoint()
	if err := plain.Restore(cp); err == nil {
		t.Error("responder checkpoint accepted by responder-less operator")
	}
	bad := plain.Checkpoint()
	bad.LastSpotPDU = []float64{1, 2, 3}
	if err := plain.Restore(bad); err == nil {
		t.Error("mis-sized spot accepted")
	}
	rbad := em.Checkpoint()
	rbad.Responder.CalmPDU = nil
	if err := em.Restore(rbad); err == nil {
		t.Error("mis-sized responder arrays accepted")
	}
	// A responder-less checkpoint resets an enabled responder to fresh.
	driveSlot(t, em, 3, true) // suspend PDU#1
	if pdus, _ := em.AppliedSuspensions(); len(pdus) == 0 {
		driveSlot(t, em, 10, true) // ensure the suspension is applied at least once
	}
	if err := em.Restore(plain.Checkpoint()); err != nil {
		t.Fatal(err)
	}
	if got := em.Checkpoint().Responder; got.SuspendedPDU[0] || got.Acted != 0 {
		t.Errorf("responder not reset by responder-less checkpoint: %+v", got)
	}
}

func TestNeumaierStateJSONBitExact(t *testing.T) {
	// The checkpoint contract leans on encoding/json round-tripping float64
	// exactly; pin that with values whose compensation terms are non-trivial.
	var acc stats.Neumaier
	for i := 0; i < 1000; i++ {
		acc.Add(1e16)
		acc.Add(math.Pi * float64(i))
		acc.Add(-1e16)
	}
	st := ExportNeumaier(acc)
	if st.Comp == 0 {
		t.Fatal("test sequence produced no compensation term")
	}
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back NeumaierState
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != st {
		t.Fatalf("JSON round-trip changed state: %+v vs %+v", back, st)
	}
	restored := back.Restore()
	if restored.Sum() != acc.Sum() {
		t.Fatalf("restored sum %v != original %v", restored.Sum(), acc.Sum())
	}
	// Continued accumulation stays bit-identical too.
	restored.Add(0.1)
	acc.Add(0.1)
	if restored.Sum() != acc.Sum() {
		t.Fatal("post-restore accumulation diverged")
	}
}
