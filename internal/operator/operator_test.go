package operator

import (
	"math"
	"testing"

	"spotdc/internal/core"
	"spotdc/internal/power"
)

func testTopo(t *testing.T) *power.Topology {
	t.Helper()
	topo, err := power.NewTopology(1370,
		[]power.PDU{{ID: "PDU#1", Capacity: 715}, {ID: "PDU#2", Capacity: 724}},
		[]power.Rack{
			{ID: "S-1", Tenant: "Search-1", PDU: 0, Guaranteed: 145, SpotHeadroom: 60},
			{ID: "O-1", Tenant: "Count-1", PDU: 0, Guaranteed: 125, SpotHeadroom: 60},
			{ID: "S-3", Tenant: "Search-2", PDU: 1, Guaranteed: 145, SpotHeadroom: 60},
			{ID: "O-4", Tenant: "Sort", PDU: 1, Guaranteed: 125, SpotHeadroom: 60},
		})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func newOp(t *testing.T) *Operator {
	t.Helper()
	op, err := New(Config{Topology: testTopo(t), MarketOptions: core.Options{PriceStep: 0.001}})
	if err != nil {
		t.Fatal(err)
	}
	return op
}

func TestPricingValidate(t *testing.T) {
	if err := DefaultPricing().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Pricing{
		{GuaranteedPerKWMonth: 0, InfraLifetimeYears: 1, RackLifetimeYears: 1},
		{GuaranteedPerKWMonth: 100, EnergyPerKWh: -1, InfraLifetimeYears: 1, RackLifetimeYears: 1},
		{GuaranteedPerKWMonth: 100, InfraCapexPerWatt: -1, InfraLifetimeYears: 1, RackLifetimeYears: 1},
		{GuaranteedPerKWMonth: 100, InfraLifetimeYears: 0, RackLifetimeYears: 1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad pricing %d accepted", i)
		}
	}
}

func TestPricingRates(t *testing.T) {
	p := DefaultPricing()
	// $120/kW/month ≈ $0.164/kW·h — the paper's "around US$0.2/kW/hour"
	// amortized guaranteed rate.
	if got := p.GuaranteedPerKWh(); math.Abs(got-120.0/730) > 1e-12 {
		t.Errorf("GuaranteedPerKWh = %v", got)
	}
	if got := p.GuaranteedRevenueRate(2000); math.Abs(got-2*120.0/730) > 1e-12 {
		t.Errorf("GuaranteedRevenueRate = %v", got)
	}
	// The calibrated default capex per watt over 15 years, $/W/h.
	if got := p.InfraAmortRate(1); math.Abs(got-p.InfraCapexPerWatt/(15*8760)) > 1e-15 {
		t.Errorf("InfraAmortRate = %v", got)
	}
	// The rack over-provisioning expense must be negligible relative to
	// revenue, as the paper asserts: $0.4/W over 15 y for 240 W of headroom
	// is micro-dollars per hour.
	if got := p.RackAmortRate(240); got > 1e-3 {
		t.Errorf("RackAmortRate(240) = %v, want negligible", got)
	}
	base := p.BaselineProfitRate(1510, 1370)
	if base <= 0 {
		t.Errorf("baseline profit rate %v should be positive at default pricing", base)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil topology accepted")
	}
	if _, err := New(Config{Topology: testTopo(t), Pricing: Pricing{GuaranteedPerKWMonth: -1, InfraLifetimeYears: 1, RackLifetimeYears: 1}}); err == nil {
		t.Error("bad pricing accepted")
	}
}

func TestPredictSpotMarksBiddingRacks(t *testing.T) {
	op := newOp(t)
	reading := power.Reading{
		RackWatts:     []float64{180, 100, 120, 100}, // rack 0 sprinting above its 145 W guarantee
		OtherPDUWatts: []float64{200, 200},
	}
	plain, err := op.PredictSpot(reading, nil)
	if err != nil {
		t.Fatal(err)
	}
	marked, err := op.PredictSpot(reading, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	// Marking rack 0 replaces its 180 W reading with its 145 W guarantee,
	// freeing 35 W more spot at PDU#1.
	if diff := marked.PDUWatts[0] - plain.PDUWatts[0]; math.Abs(diff-35) > 1e-9 {
		t.Errorf("marked-unmarked spot difference = %v, want 35", diff)
	}
}

func TestRunSlotBillsAndAccumulates(t *testing.T) {
	op := newOp(t)
	reading := power.Reading{
		RackWatts:     []float64{130, 110, 130, 110},
		OtherPDUWatts: []float64{180, 180},
	}
	bids := []core.Bid{
		{Rack: 0, Tenant: "Search-1", Fn: core.LinearBid{DMax: 50, DMin: 30, QMin: 0.3, QMax: 0.8}},
		{Rack: 1, Tenant: "Count-1", Fn: core.LinearBid{DMax: 60, DMin: 5, QMin: 0.02, QMax: 0.2}},
	}
	out, err := op.RunSlot(bids, reading, 2.0/60) // 2-minute slot
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.TotalWatts <= 0 {
		t.Fatal("nothing sold despite available spot")
	}
	if out.RevenueThisSlot <= 0 {
		t.Error("no revenue billed")
	}
	if math.Abs(op.SpotRevenue()-out.RevenueThisSlot) > 1e-12 {
		t.Errorf("cumulative revenue %v != slot revenue %v", op.SpotRevenue(), out.RevenueThisSlot)
	}
	wantEnergy := out.Result.TotalWatts / 1000 * 2.0 / 60
	if math.Abs(op.SpotEnergyKWh()-wantEnergy) > 1e-12 {
		t.Errorf("energy = %v, want %v", op.SpotEnergyKWh(), wantEnergy)
	}
	if op.Slots() != 1 {
		t.Errorf("slots = %d", op.Slots())
	}
	// Per-tenant payments sum to the slot revenue.
	total := op.PaymentOf("Search-1") + op.PaymentOf("Count-1")
	if math.Abs(total-out.RevenueThisSlot) > 1e-9 {
		t.Errorf("payments %v != revenue %v", total, out.RevenueThisSlot)
	}
	if op.PaymentOf("nobody") != 0 {
		t.Error("unknown tenant has payments")
	}
	if _, err := op.RunSlot(nil, reading, 0); err == nil {
		t.Error("zero slotHours accepted")
	}
}

func TestRunSlotRespectsPrediction(t *testing.T) {
	// With a 50% under-prediction factor the operator offers half the spot
	// and sells no more than that.
	topo := testTopo(t)
	op, err := New(Config{
		Topology:      topo,
		MarketOptions: core.Options{PriceStep: 0.001},
		Predict:       power.PredictOptions{UnderPredictionFactor: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	reading := power.Reading{
		RackWatts:     []float64{130, 110, 130, 110},
		OtherPDUWatts: []float64{180, 180},
	}
	bids := []core.Bid{{Rack: 1, Tenant: "Count-1", Fn: core.LinearBid{DMax: 60, DMin: 5, QMin: 0.02, QMax: 0.2}}}
	out, err := op.RunSlot(bids, reading, 1)
	if err != nil {
		t.Fatal(err)
	}
	full := 715 - (130 + 125 + 180) // rack 1 referenced at its 125 W guarantee
	if math.Abs(out.Spot.PDUWatts[0]-float64(full)/2) > 1e-9 {
		t.Errorf("under-predicted spot = %v, want %v", out.Spot.PDUWatts[0], float64(full)/2)
	}
	if out.Result.TotalWatts > out.Spot.PDUWatts[0]+1e-9 {
		t.Error("sold beyond predicted spot")
	}
}

func TestMaxPerfSlot(t *testing.T) {
	op := newOp(t)
	reading := power.Reading{
		RackWatts:     []float64{130, 110, 130, 110},
		OtherPDUWatts: []float64{180, 180},
	}
	gain := func(w float64) float64 { return 0.001 * w }
	reqs := []core.MaxPerfRequest{
		{Rack: 0, MaxWatts: 50, Gain: gain},
		{Rack: 2, MaxWatts: 50, Gain: gain},
	}
	allocs, spot, err := op.MaxPerfSlot(reqs, reading)
	if err != nil {
		t.Fatal(err)
	}
	if len(allocs) != 2 {
		t.Fatalf("allocs = %v", allocs)
	}
	total := allocs[0].Watts + allocs[1].Watts
	if total > spot.UPSWatts+1e-9 {
		t.Error("MaxPerf exceeded UPS spot")
	}
	if allocs[0].Watts <= 0 {
		t.Error("linear gain should receive capacity")
	}
	if op.SpotRevenue() != 0 {
		t.Error("MaxPerf must not bill")
	}
}

func TestObserveEmergencies(t *testing.T) {
	op := newOp(t)
	calm := power.Reading{RackWatts: []float64{100, 100, 100, 100}, OtherPDUWatts: []float64{100, 100}}
	if em := op.ObserveEmergencies(calm, 0); em != nil {
		t.Errorf("calm: %v", em)
	}
	hot := power.Reading{RackWatts: []float64{200, 200, 100, 100}, OtherPDUWatts: []float64{400, 100}}
	if em := op.ObserveEmergencies(hot, 0); len(em) == 0 {
		t.Error("overload not flagged")
	}
	if op.EmergencySlots() != 1 {
		t.Errorf("emergency slots = %d", op.EmergencySlots())
	}
}

func TestProfitReport(t *testing.T) {
	op := newOp(t)
	reading := power.Reading{
		RackWatts:     []float64{130, 110, 130, 110},
		OtherPDUWatts: []float64{180, 180},
	}
	bids := []core.Bid{{Rack: 1, Tenant: "Count-1", Fn: core.LinearBid{DMax: 60, DMin: 5, QMin: 0.02, QMax: 0.2}}}
	for i := 0; i < 10; i++ {
		if _, err := op.RunSlot(bids, reading, 1); err != nil {
			t.Fatal(err)
		}
	}
	// Non-participating tenants lease the rest of the capacity (the test
	// topology only models 4 of the racks); with the full 1510 W leased the
	// baseline margin is the thin-but-positive one of a real colo.
	rep := op.Profit(10, 970)
	if rep.BaselineProfit <= 0 {
		t.Fatalf("baseline profit %v", rep.BaselineProfit)
	}
	if rep.SpotRevenue != op.SpotRevenue() {
		t.Error("report revenue mismatch")
	}
	if rep.ExtraProfitFraction <= 0 {
		t.Errorf("extra profit fraction = %v, want positive", rep.ExtraProfitFraction)
	}
	if rep.RackCapex <= 0 || rep.RackCapex > rep.SpotRevenue {
		t.Errorf("rack capex %v should be positive and small vs revenue %v", rep.RackCapex, rep.SpotRevenue)
	}
}
