package operator_test

import (
	"fmt"
	"testing"

	"spotdc/internal/capping"
	"spotdc/internal/core"
	"spotdc/internal/operator"
	"spotdc/internal/power"
	"spotdc/internal/rackpdu"
)

// TestHardwareInTheLoopSlotCycle wires the full per-slot chain the paper's
// testbed exercises physically: the operator reads rack power from
// metered rack PDUs, clears the market, resets each rack PDU's budget to
// guaranteed + granted spot capacity, and tenants' power-capping
// controllers settle under the new budgets. The rack PDUs must never
// observe budget violations once controllers settle, and budget resets
// must be counted.
func TestHardwareInTheLoopSlotCycle(t *testing.T) {
	topo, err := power.NewTopology(1370,
		[]power.PDU{{ID: "PDU#1", Capacity: 715}, {ID: "PDU#2", Capacity: 724}},
		[]power.Rack{
			{ID: "S-1", Tenant: "Search-1", PDU: 0, Guaranteed: 145, SpotHeadroom: 60},
			{ID: "O-1", Tenant: "Count-1", PDU: 0, Guaranteed: 125, SpotHeadroom: 60},
			{ID: "S-3", Tenant: "Search-2", PDU: 1, Guaranteed: 145, SpotHeadroom: 60},
			{ID: "O-4", Tenant: "Sort", PDU: 1, Guaranteed: 125, SpotHeadroom: 60},
		})
	if err != nil {
		t.Fatal(err)
	}
	op, err := operator.New(operator.Config{
		Topology:      topo,
		MarketOptions: core.Options{PriceStep: 0.001, Ration: true},
	})
	if err != nil {
		t.Fatal(err)
	}

	// One metered rack PDU and one capping controller per rack.
	pdus := make([]*rackpdu.PDU, len(topo.Racks))
	ctrls := make([]*capping.Controller, len(topo.Racks))
	models := make([]capping.ServerModel, len(topo.Racks))
	for i, r := range topo.Racks {
		pdus[i], err = rackpdu.New(rackpdu.Config{
			ID: fmt.Sprintf("rpdu-%s", r.ID), Outlets: 2, BudgetWatts: r.Guaranteed,
		})
		if err != nil {
			t.Fatal(err)
		}
		models[i] = capping.ServerModel{IdleWatts: 55, PeakWatts: r.Guaranteed + r.SpotHeadroom, Alpha: 1.5, MinKnob: 0.2}
		ctrls[i], err = capping.New(capping.Config{Model: models[i], InitialBudget: r.Guaranteed})
		if err != nil {
			t.Fatal(err)
		}
	}
	utils := []float64{0.95, 0.9, 0.85, 0.8} // heavy slot: everyone wants spot

	// Initial settle under guaranteed budgets and feed the rack PDUs.
	for i := range pdus {
		w, _ := ctrls[i].Settle(utils[i], 0.5, 500)
		if err := pdus[i].Feed(0, w); err != nil {
			t.Fatal(err)
		}
	}

	totalRevenue := 0.0
	for slot := 0; slot < 5; slot++ {
		// 1. The operator's routine monitoring: read every rack PDU.
		reading := power.Reading{
			RackWatts:     make([]float64, len(topo.Racks)),
			OtherPDUWatts: []float64{180, 180},
		}
		for i := range pdus {
			reading.RackWatts[i] = pdus[i].ReadTotal()
		}
		// 2. Tenants bid for their full headroom (inelastic for the test).
		bids := make([]core.Bid, len(topo.Racks))
		for i, r := range topo.Racks {
			bids[i] = core.Bid{Rack: i, Tenant: r.Tenant, Fn: core.LinearBid{
				DMax: r.SpotHeadroom, DMin: 5, QMin: 0.05, QMax: 0.3}}
		}
		out, err := op.RunSlot(bids, reading, 2.0/60)
		if err != nil {
			t.Fatal(err)
		}
		totalRevenue += out.RevenueThisSlot
		// 3. Reset rack budgets to guaranteed + grant (the intelligent rack
		// PDU operation of Algorithm 1 step 5) and retarget controllers.
		grants := map[int]float64{}
		for _, a := range out.Result.Allocations {
			grants[a.Rack] = a.Watts
		}
		for i, r := range topo.Racks {
			budget := r.Guaranteed + grants[i]
			if err := pdus[i].SetBudget(budget); err != nil {
				t.Fatal(err)
			}
			if err := ctrls[i].SetBudget(budget); err != nil {
				t.Fatal(err)
			}
			w, _ := ctrls[i].Settle(utils[i], 0.5, 500)
			if err := pdus[i].Feed(0, w); err != nil {
				t.Fatal(err)
			}
			if _, over := pdus[i].Observe(); over {
				t.Errorf("slot %d rack %s: settled draw %v over budget %v", slot, r.ID, w, budget)
			}
		}
	}
	if totalRevenue <= 0 {
		t.Fatal("no revenue across the heavy slots")
	}
	for i, p := range pdus {
		if p.Resets() != 5 {
			t.Errorf("rack %d saw %d budget resets, want 5", i, p.Resets())
		}
		if p.Violations() != 0 {
			t.Errorf("rack %d recorded %d budget violations", i, p.Violations())
		}
	}
	// Granted racks actually drew above their guarantee (the spot capacity
	// was used, not wasted).
	usedSpot := false
	for i, r := range topo.Racks {
		if pdus[i].ReadTotal() > r.Guaranteed+1 {
			usedSpot = true
		}
		_ = r
	}
	if !usedSpot {
		t.Error("no rack used its spot grant")
	}
	// The realized reading stays within every shared capacity.
	final := power.Reading{RackWatts: make([]float64, len(topo.Racks)), OtherPDUWatts: []float64{180, 180}}
	for i := range pdus {
		final.RackWatts[i] = pdus[i].ReadTotal()
	}
	if em := topo.CheckEmergencies(final, 0); em != nil {
		t.Errorf("emergencies after settle: %v", em)
	}
}
