package operator

import (
	"errors"
	"math"
	"testing"

	"spotdc/internal/core"
	"spotdc/internal/power"
)

func TestValidateReadingRejectsCorruptTelemetry(t *testing.T) {
	good := power.Reading{RackWatts: []float64{130, 110}, OtherPDUWatts: []float64{180}}
	if err := ValidateReading(good); err != nil {
		t.Fatalf("good reading rejected: %v", err)
	}
	bad := []power.Reading{
		{RackWatts: []float64{math.NaN(), 110}, OtherPDUWatts: []float64{180}},
		{RackWatts: []float64{130, math.Inf(1)}, OtherPDUWatts: []float64{180}},
		{RackWatts: []float64{130, -5}, OtherPDUWatts: []float64{180}},
		{RackWatts: []float64{130, 110}, OtherPDUWatts: []float64{math.NaN()}},
		{RackWatts: []float64{130, 110}, OtherPDUWatts: []float64{math.Inf(-1)}},
		{RackWatts: []float64{130, 110}, OtherPDUWatts: []float64{-1}},
	}
	for i, r := range bad {
		err := ValidateReading(r)
		if err == nil {
			t.Errorf("corrupt reading %d accepted", i)
			continue
		}
		if !errors.Is(err, ErrReading) {
			t.Errorf("reading %d error %v is not ErrReading", i, err)
		}
	}
}

func TestRunSlotRejectsPoisonedReading(t *testing.T) {
	op := newOp(t)
	poison := power.Reading{
		RackWatts:     []float64{math.NaN(), 110, 130, 110},
		OtherPDUWatts: []float64{180, 180},
	}
	if _, err := op.RunSlot(nil, poison, 1); !errors.Is(err, ErrReading) {
		t.Fatalf("RunSlot on poisoned reading: %v, want ErrReading", err)
	}
	// The failed slot leaves no trace in the accumulators: it never ran.
	if op.Slots() != 0 || op.SpotRevenue() != 0 {
		t.Errorf("failed slot accumulated state: slots=%d revenue=%v", op.Slots(), op.SpotRevenue())
	}
}

func TestRunSlotReportsClearDuration(t *testing.T) {
	op := newOp(t)
	reading := power.Reading{
		RackWatts:     []float64{130, 110, 130, 110},
		OtherPDUWatts: []float64{180, 180},
	}
	bids := []core.Bid{
		{Rack: 1, Tenant: "Count-1", Fn: core.LinearBid{DMax: 60, DMin: 5, QMin: 0.02, QMax: 0.2}},
	}
	out, err := op.RunSlot(bids, reading, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out.ClearDuration <= 0 {
		t.Errorf("ClearDuration = %v, want > 0", out.ClearDuration)
	}
}

func TestVerifyFeasibleExported(t *testing.T) {
	op := newOp(t)
	reading := power.Reading{
		RackWatts:     []float64{130, 110, 130, 110},
		OtherPDUWatts: []float64{180, 180},
	}
	bids := []core.Bid{
		{Rack: 1, Tenant: "Count-1", Fn: core.LinearBid{DMax: 60, DMin: 5, QMin: 0.02, QMax: 0.2}},
	}
	out, err := op.RunSlot(bids, reading, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := op.VerifyFeasible(out.Result.Allocations); err != nil {
		t.Errorf("broadcast allocation fails independent re-check: %v", err)
	}
	// An allocation beyond a rack's headroom must fail the re-check.
	over := []core.Allocation{{Rack: 1, Tenant: "Count-1", Watts: 1e6}}
	if err := op.VerifyFeasible(over); err == nil {
		t.Error("absurd allocation passed VerifyFeasible")
	}
}
