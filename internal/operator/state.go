// Durable operator state (checkpoint/restore + per-slot commit records).
//
// The operator's books are compensated accumulators, so "restore" has a
// stricter contract than copying totals: a checkpoint captures every
// Neumaier (sum, comp) pair, and per-slot commits re-Add the exact dollar
// and kWh terms RunSlot folded in, in the original order. A crash restored
// from checkpoint N and replayed through slot K therefore reaches totals
// bit-identical to an uninterrupted run — which is what lets the crash
// harness diff invoices with ==, not a tolerance.
package operator

import (
	"fmt"
	"sort"

	"spotdc/internal/power"
	"spotdc/internal/stats"
)

// NeumaierState is the serializable form of a compensated accumulator.
// JSON round-trips float64 exactly (shortest-representation encoding), so
// Export → marshal → unmarshal → Restore reproduces the bit pattern.
type NeumaierState struct {
	Sum  float64 `json:"sum"`
	Comp float64 `json:"comp"`
}

// ExportNeumaier captures an accumulator's internals for checkpointing.
func ExportNeumaier(n stats.Neumaier) NeumaierState {
	sum, comp := n.State()
	return NeumaierState{Sum: sum, Comp: comp}
}

// Restore rebuilds the accumulator this state was exported from.
func (s NeumaierState) Restore() stats.Neumaier {
	return stats.NeumaierFromState(s.Sum, s.Comp)
}

// TenantPayment is one tenant's cumulative spot payments in a checkpoint.
type TenantPayment struct {
	Tenant string        `json:"tenant"`
	Paid   NeumaierState `json:"paid"`
}

// ResponderCheckpoint captures the emergency responder's durable state: the
// per-element suspension flags, recovery (calm) counters, suspension start
// clocks, the previous slot's grant weights, and the running reclaim
// totals. Per-slot transients (lastReclaims/lastRestores, the applied-
// suspension scratch) are recomputed on the next slot; hook-failure
// diagnostics are process-local and deliberately not persisted.
type ResponderCheckpoint struct {
	SuspendedPDU []bool    `json:"suspended_pdu"`
	CalmPDU      []int     `json:"calm_pdu"`
	StartPDU     []int     `json:"start_pdu"`
	SuspendedUPS bool      `json:"suspended_ups"`
	CalmUPS      int       `json:"calm_ups"`
	StartUPS     int       `json:"start_ups"`
	LastGrants   []float64 `json:"last_grants"`

	Acted           int     `json:"acted"`
	ReclaimedWatts  float64 `json:"reclaimed_watts"`
	GuaranteedWatts float64 `json:"guaranteed_watts"`
	Involuntary     int     `json:"involuntary"`
}

// Checkpoint is a full snapshot of the operator's durable state: market
// position, money and energy books (with compensation terms), the last
// predicted spot capacity, and the responder state when the emergency loop
// is enabled. Payments are sorted by tenant so encoding is deterministic.
type Checkpoint struct {
	Slots          int             `json:"slots"`
	EmergencySlots int             `json:"emergency_slots"`
	SpotRevenue    NeumaierState   `json:"spot_revenue"`
	SpotEnergyKWh  NeumaierState   `json:"spot_energy_kwh"`
	Unattributed   NeumaierState   `json:"unattributed"`
	Payments       []TenantPayment `json:"payments,omitempty"`
	LastSpotPDU    []float64       `json:"last_spot_pdu,omitempty"`
	LastSpotUPS    float64         `json:"last_spot_ups"`

	Responder *ResponderCheckpoint `json:"responder,omitempty"`
}

// PaymentDelta is one slot's billing line: the exact $ a RunSlot Add folded
// into a tenant's accumulator. An empty tenant names the unattributed book.
type PaymentDelta struct {
	Tenant string  `json:"tenant,omitempty"`
	Amount float64 `json:"amount"`
}

// SlotCommit is the WAL record for one committed slot: the accumulator
// deltas (replayed as Adds, preserving compensation), the post-slot
// absolute counters, the slot's predicted spot (restoring LastSpot), and
// the responder's post-slot state. Payment deltas appear in allocation
// order — the order RunSlot billed them — because compensated summation is
// order-sensitive.
type SlotCommit struct {
	Revenue        float64        `json:"revenue"`
	EnergyKWh      float64        `json:"energy_kwh"`
	Payments       []PaymentDelta `json:"payments,omitempty"`
	Slots          int            `json:"slots"`
	EmergencySlots int            `json:"emergency_slots"`
	SpotPDU        []float64      `json:"spot_pdu,omitempty"`
	SpotUPS        float64        `json:"spot_ups"`

	Responder *ResponderCheckpoint `json:"responder,omitempty"`
}

func (rs *responderState) checkpoint() *ResponderCheckpoint {
	cp := &ResponderCheckpoint{
		SuspendedPDU: append([]bool(nil), rs.suspendedPDU...),
		CalmPDU:      append([]int(nil), rs.calmPDU...),
		StartPDU:     append([]int(nil), rs.startPDU...),
		SuspendedUPS: rs.suspendedUPS,
		CalmUPS:      rs.calmUPS,
		StartUPS:     rs.startUPS,
		LastGrants:   append([]float64(nil), rs.lastGrants...),

		Acted:           rs.acted,
		ReclaimedWatts:  rs.reclaimedWatts,
		GuaranteedWatts: rs.guaranteedWatts,
		Involuntary:     rs.involuntary,
	}
	return cp
}

func (rs *responderState) restore(cp *ResponderCheckpoint) error {
	if len(cp.SuspendedPDU) != len(rs.suspendedPDU) ||
		len(cp.CalmPDU) != len(rs.calmPDU) ||
		len(cp.StartPDU) != len(rs.startPDU) ||
		len(cp.LastGrants) != len(rs.lastGrants) {
		return fmt.Errorf("operator: responder checkpoint sized for %d PDUs / %d racks, topology has %d / %d",
			len(cp.SuspendedPDU), len(cp.LastGrants), len(rs.suspendedPDU), len(rs.lastGrants))
	}
	copy(rs.suspendedPDU, cp.SuspendedPDU)
	copy(rs.calmPDU, cp.CalmPDU)
	copy(rs.startPDU, cp.StartPDU)
	rs.suspendedUPS = cp.SuspendedUPS
	rs.calmUPS = cp.CalmUPS
	rs.startUPS = cp.StartUPS
	copy(rs.lastGrants, cp.LastGrants)
	rs.acted = cp.Acted
	rs.reclaimedWatts = cp.ReclaimedWatts
	rs.guaranteedWatts = cp.GuaranteedWatts
	rs.involuntary = cp.Involuntary
	rs.lastReclaims = rs.lastReclaims[:0]
	rs.lastRestores = rs.lastRestores[:0]
	rs.appliedPDU = rs.appliedPDU[:0]
	rs.appliedUPS = false
	return nil
}

// Checkpoint captures the operator's durable state. The result owns its
// slices and stays valid across further slots.
func (op *Operator) Checkpoint() Checkpoint {
	cp := Checkpoint{
		Slots:          op.slots,
		EmergencySlots: op.emergencySlots,
		SpotRevenue:    ExportNeumaier(op.spotRevenue),
		SpotEnergyKWh:  ExportNeumaier(op.spotEnergyKWh),
		Unattributed:   ExportNeumaier(op.unattributed),
		LastSpotPDU:    append([]float64(nil), op.lastSpot.PDUWatts...),
		LastSpotUPS:    op.lastSpot.UPSWatts,
	}
	if len(op.payments) > 0 {
		cp.Payments = make([]TenantPayment, 0, len(op.payments))
		for tenant, acc := range op.payments {
			cp.Payments = append(cp.Payments, TenantPayment{Tenant: tenant, Paid: ExportNeumaier(*acc)})
		}
		sort.Slice(cp.Payments, func(i, j int) bool { return cp.Payments[i].Tenant < cp.Payments[j].Tenant })
	}
	if op.responder != nil {
		cp.Responder = op.responder.checkpoint()
	}
	return cp
}

// Restore overwrites the operator's durable state from a checkpoint taken
// by an operator with the same topology and configuration. A checkpoint
// carrying responder state requires Config.Emergency to be enabled (and
// vice versa a responder-less checkpoint resets an enabled responder to its
// fresh state — the suspensions simply predate the emergency feature).
func (op *Operator) Restore(cp Checkpoint) error {
	if n := len(cp.LastSpotPDU); n != 0 && n != len(op.topo.PDUs) {
		return fmt.Errorf("operator: checkpoint spot sized for %d PDUs, topology has %d", n, len(op.topo.PDUs))
	}
	if cp.Responder != nil && op.responder == nil {
		return fmt.Errorf("operator: checkpoint carries responder state but the emergency responder is disabled")
	}
	if op.responder != nil {
		if cp.Responder != nil {
			if err := op.responder.restore(cp.Responder); err != nil {
				return err
			}
		} else {
			op.responder = newResponderState(op.responder.cfg, op.topo)
		}
	}
	op.slots = cp.Slots
	op.emergencySlots = cp.EmergencySlots
	op.spotRevenue = cp.SpotRevenue.Restore()
	op.spotEnergyKWh = cp.SpotEnergyKWh.Restore()
	op.unattributed = cp.Unattributed.Restore()
	op.payments = make(map[string]*stats.Neumaier, len(cp.Payments))
	for _, p := range cp.Payments {
		acc := p.Paid.Restore()
		op.payments[p.Tenant] = &acc
	}
	op.lastSpot = power.Spot{
		PDUWatts: append([]float64(nil), cp.LastSpotPDU...),
		UPSWatts: cp.LastSpotUPS,
	}
	return nil
}

// LastSlotCommit builds the WAL record for the slot that produced out,
// using the identical floating-point expressions RunSlot billed with so a
// replayed Add reproduces the accumulation bit-for-bit. Call it after
// RunSlot and (when the emergency loop runs) after ObserveEmergencies, so
// the absolute counters and responder state are post-slot.
func (op *Operator) LastSlotCommit(out SlotOutcome, slotHours float64) SlotCommit {
	c := SlotCommit{
		Revenue:        out.Result.RevenueRate * slotHours,
		EnergyKWh:      out.Result.TotalWatts / 1000 * slotHours,
		Slots:          op.slots,
		EmergencySlots: op.emergencySlots,
		SpotPDU:        append([]float64(nil), out.Spot.PDUWatts...),
		SpotUPS:        out.Spot.UPSWatts,
	}
	for _, a := range out.Result.Allocations {
		if a.Watts <= 0 {
			continue
		}
		c.Payments = append(c.Payments, PaymentDelta{
			Tenant: a.Tenant,
			Amount: out.Result.Price * a.Watts / 1000 * slotHours,
		})
	}
	if op.responder != nil {
		c.Responder = op.responder.checkpoint()
	}
	return c
}

// ApplySlotCommit replays one committed slot into the books: accumulator
// deltas are re-Added in their original order (bit-identical compensated
// sums), counters and spot prediction are overwritten with the recorded
// post-slot values, and responder state is overwritten when present.
func (op *Operator) ApplySlotCommit(c SlotCommit) error {
	if n := len(c.SpotPDU); n != 0 && n != len(op.topo.PDUs) {
		return fmt.Errorf("operator: slot commit spot sized for %d PDUs, topology has %d", n, len(op.topo.PDUs))
	}
	if c.Responder != nil && op.responder == nil {
		return fmt.Errorf("operator: slot commit carries responder state but the emergency responder is disabled")
	}
	if op.responder != nil && c.Responder != nil {
		if err := op.responder.restore(c.Responder); err != nil {
			return err
		}
	}
	op.spotRevenue.Add(c.Revenue)
	op.spotEnergyKWh.Add(c.EnergyKWh)
	for _, p := range c.Payments {
		if p.Tenant == "" {
			op.unattributed.Add(p.Amount)
			continue
		}
		acc := op.payments[p.Tenant]
		if acc == nil {
			acc = &stats.Neumaier{}
			op.payments[p.Tenant] = acc
		}
		acc.Add(p.Amount)
	}
	op.slots = c.Slots
	op.emergencySlots = c.EmergencySlots
	op.lastSpot = power.Spot{
		PDUWatts: append([]float64(nil), c.SpotPDU...),
		UPSWatts: c.SpotUPS,
	}
	return nil
}
