package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV exercises the trace parser with arbitrary input: it must
// never panic, and anything it accepts must round-trip losslessly.
func FuzzReadCSV(f *testing.F) {
	f.Add("# name=x slot_seconds=60\n0,1.5\n1,2\n")
	f.Add("0,1\n")
	f.Add("")
	f.Add("# name=weird slot_seconds=1\n\n#comment\n5,0.000001\n")
	f.Add("not,a,number\n")
	f.Add("0;1\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted trace failed to serialize: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("serialized trace failed to parse: %v", err)
		}
		if back.Len() != tr.Len() {
			t.Fatalf("round trip changed length: %d → %d", tr.Len(), back.Len())
		}
	})
}
