package trace

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"spotdc/internal/stats"
)

func TestGeneratePowerValidation(t *testing.T) {
	base := PowerConfig{Slots: 10, MeanWatts: 100, MinWatts: 50, MaxWatts: 150, Volatility: 0.01}
	cases := []struct {
		name string
		mod  func(*PowerConfig)
	}{
		{"zero slots", func(c *PowerConfig) { c.Slots = 0 }},
		{"max<=min", func(c *PowerConfig) { c.MaxWatts = 50 }},
		{"mean below min", func(c *PowerConfig) { c.MeanWatts = 10 }},
		{"mean above max", func(c *PowerConfig) { c.MeanWatts = 1000 }},
		{"bad persistence", func(c *PowerConfig) { c.Persistence = 1.5 }},
	}
	for _, c := range cases {
		cfg := base
		c.mod(&cfg)
		if _, err := GeneratePower(cfg); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestGeneratePowerBounds(t *testing.T) {
	p, err := GeneratePower(PowerConfig{
		Name: "pdu", Seed: 7, Slots: 5000,
		MeanWatts: 200, MinWatts: 120, MaxWatts: 260, Volatility: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 5000 {
		t.Fatalf("Len = %d", p.Len())
	}
	for i, w := range p.Watts {
		if w < 120 || w > 260 {
			t.Fatalf("slot %d power %v escapes [120,260]", i, w)
		}
	}
	m := stats.Mean(p.Watts)
	if m < 150 || m > 250 {
		t.Errorf("mean %v far from configured 200", m)
	}
}

// The headline calibration target from Section III-C / Fig. 7(a): at
// production-grade volatility, PDU power changes by no more than ±2.5%
// between consecutive one-minute slots for at least 99% of slots.
func TestGeneratePowerMatchesProductionVariation(t *testing.T) {
	p, err := GeneratePower(PowerConfig{
		Name: "prod", Seed: 42, Slots: 3 * 30 * 24 * 60, // three months of minutes
		SlotSeconds: 60,
		MeanWatts:   250e3, MinWatts: 100e3, MaxWatts: 300e3,
		Volatility: 0.008, Diurnal: 0.15,
	})
	if err != nil {
		t.Fatal(err)
	}
	rel := stats.RelDiffs(p.Watts)
	within := 0
	for _, r := range rel {
		if r <= 0.025 {
			within++
		}
	}
	frac := float64(within) / float64(len(rel))
	if frac < 0.99 {
		t.Errorf("only %.4f of slots within ±2.5%% variation, want ≥0.99", frac)
	}
}

func TestGeneratePowerDeterministic(t *testing.T) {
	cfg := PowerConfig{Seed: 3, Slots: 100, MeanWatts: 100, MinWatts: 0, MaxWatts: 200, Volatility: 0.05}
	a, err := GeneratePower(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GeneratePower(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Watts {
		if a.Watts[i] != b.Watts[i] {
			t.Fatalf("slot %d differs: %v vs %v", i, a.Watts[i], b.Watts[i])
		}
	}
	cfg.Seed = 4
	c, err := GeneratePower(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Watts {
		if a.Watts[i] != c.Watts[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestGeneratePowerDiurnalSwing(t *testing.T) {
	p, err := GeneratePower(PowerConfig{
		Seed: 1, Slots: 2 * 24 * 60, SlotSeconds: 60,
		MeanWatts: 100, MinWatts: 0, MaxWatts: 200,
		Volatility: 0.001, Diurnal: 0.3, Persistence: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	mn, _ := stats.Min(p.Watts)
	mx, _ := stats.Max(p.Watts)
	if mx-mn < 40 { // expect roughly 2*0.3*100 = 60 W swing
		t.Errorf("diurnal swing too small: max-min = %v", mx-mn)
	}
}

func TestPowerAtWraps(t *testing.T) {
	p := &Power{Watts: []float64{1, 2, 3}}
	if p.At(0) != 1 || p.At(3) != 1 || p.At(4) != 2 || p.At(-1) != 3 {
		t.Errorf("At wrap: %v %v %v %v", p.At(0), p.At(3), p.At(4), p.At(-1))
	}
	empty := &Power{}
	if empty.At(5) != 0 {
		t.Error("empty trace should read 0")
	}
}

func TestPowerScaleClone(t *testing.T) {
	p := &Power{Name: "x", SlotSeconds: 60, Watts: []float64{1, 2}}
	c := p.Clone()
	p.Scale(10)
	if p.Watts[0] != 10 || p.Watts[1] != 20 {
		t.Errorf("Scale: %v", p.Watts)
	}
	if c.Watts[0] != 1 || c.Watts[1] != 2 {
		t.Errorf("Clone shares storage: %v", c.Watts)
	}
	if c.Name != "x" || c.SlotSeconds != 60 {
		t.Errorf("Clone metadata: %+v", c)
	}
}

func TestGenerateArrivals(t *testing.T) {
	a, err := GenerateArrivals(ArrivalConfig{
		Name: "google", Seed: 9, Slots: 30 * 24 * 30, SlotSeconds: 120,
		BaseRate: 50, PeakRate: 150, BurstFraction: 0.15,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range a.Watts {
		if r < 0 {
			t.Fatalf("negative rate at slot %d", i)
		}
	}
	if m := stats.Mean(a.Watts); m < 60 || m > 160 {
		t.Errorf("mean rate %v implausible for base=50 peak=150", m)
	}
	// Bursts should push an appreciable fraction of slots above the diurnal
	// ceiling; with factor 1.5 the ceiling is 150, bursts reach ~225.
	above := 0
	for _, r := range a.Watts {
		if r > 160 {
			above++
		}
	}
	frac := float64(above) / float64(len(a.Watts))
	if frac < 0.02 || frac > 0.30 {
		t.Errorf("burst fraction above ceiling = %.3f, want within (0.02, 0.30)", frac)
	}
}

func TestGenerateArrivalsValidation(t *testing.T) {
	if _, err := GenerateArrivals(ArrivalConfig{Slots: 0}); err == nil {
		t.Error("zero slots should fail")
	}
	if _, err := GenerateArrivals(ArrivalConfig{Slots: 5, BaseRate: 10, PeakRate: 5}); err == nil {
		t.Error("peak<base should fail")
	}
	if _, err := GenerateArrivals(ArrivalConfig{Slots: 5, PeakRate: 5, BurstFraction: 2}); err == nil {
		t.Error("burst fraction >1 should fail")
	}
}

func TestGenerateBacklog(t *testing.T) {
	b, err := GenerateBacklog(BacklogConfig{
		Name: "batch", Seed: 5, Slots: 100000, ActiveFraction: 0.3, MeanUnits: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	active := 0
	for _, v := range b.Watts {
		if v < 0 {
			t.Fatal("negative backlog")
		}
		if v > 0 {
			active++
		}
	}
	frac := float64(active) / float64(b.Len())
	if math.Abs(frac-0.3) > 0.05 {
		t.Errorf("active fraction %.3f, want ≈0.30", frac)
	}
}

func TestGenerateBacklogValidation(t *testing.T) {
	if _, err := GenerateBacklog(BacklogConfig{Slots: 0}); err == nil {
		t.Error("zero slots should fail")
	}
	if _, err := GenerateBacklog(BacklogConfig{Slots: 5, ActiveFraction: -0.1}); err == nil {
		t.Error("negative fraction should fail")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	p := &Power{Name: "rt", SlotSeconds: 120, Watts: []float64{1.5, 2.25, 0}}
	var buf bytes.Buffer
	if err := p.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "rt" || got.SlotSeconds != 120 {
		t.Errorf("metadata: %+v", got)
	}
	if got.Len() != 3 || got.Watts[0] != 1.5 || got.Watts[1] != 2.25 || got.Watts[2] != 0 {
		t.Errorf("values: %v", got.Watts)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"0;1.5\n",
		"0,notanumber\n",
		"# slot_seconds=abc\n0,1\n",
	}
	for _, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); !errors.Is(err, ErrBadTrace) {
			t.Errorf("ReadCSV(%q) err = %v, want ErrBadTrace", in, err)
		}
	}
	// Blank lines and comments are fine.
	got, err := ReadCSV(strings.NewReader("\n# name=ok\n0,1\n\n1,2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "ok" || got.Len() != 2 {
		t.Errorf("got %+v", got)
	}
}

// Property: generated power never escapes the configured bounds and a CSV
// round trip is lossless to 1e-6.
func TestQuickPowerRoundTrip(t *testing.T) {
	f := func(seed int64, slots uint8, meanPct uint8) bool {
		n := int(slots%200) + 1
		mean := 100 + float64(meanPct%100)
		cfg := PowerConfig{
			Seed: seed, Slots: n, MeanWatts: mean,
			MinWatts: 50, MaxWatts: 250, Volatility: 0.05,
		}
		p, err := GeneratePower(cfg)
		if err != nil {
			return false
		}
		for _, w := range p.Watts {
			if w < 50 || w > 250 {
				return false
			}
		}
		var buf bytes.Buffer
		if err := p.WriteCSV(&buf); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil || got.Len() != p.Len() {
			return false
		}
		for i := range got.Watts {
			if math.Abs(got.Watts[i]-p.Watts[i]) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSlice(t *testing.T) {
	p := &Power{Name: "x", SlotSeconds: 60, Watts: []float64{1, 2, 3, 4}}
	s, err := p.Slice(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || s.Watts[0] != 2 || s.Watts[1] != 3 {
		t.Errorf("slice: %v", s.Watts)
	}
	s.Watts[0] = 99
	if p.Watts[1] != 2 {
		t.Error("slice aliases parent")
	}
	for _, bad := range [][2]int{{-1, 2}, {0, 5}, {2, 2}, {3, 1}} {
		if _, err := p.Slice(bad[0], bad[1]); !errors.Is(err, ErrBadTrace) {
			t.Errorf("Slice(%v) accepted", bad)
		}
	}
}

func TestConcat(t *testing.T) {
	a := &Power{SlotSeconds: 60, Watts: []float64{1, 2}}
	b := &Power{SlotSeconds: 60, Watts: []float64{3}}
	c, err := a.Concat(b)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 3 || c.Watts[2] != 3 {
		t.Errorf("concat: %v", c.Watts)
	}
	mismatch := &Power{SlotSeconds: 120, Watts: []float64{9}}
	if _, err := a.Concat(mismatch); !errors.Is(err, ErrBadTrace) {
		t.Error("slot mismatch accepted")
	}
}

func TestAdd(t *testing.T) {
	a := &Power{SlotSeconds: 60, Watts: []float64{1, 2, 3, 4}}
	b := &Power{SlotSeconds: 60, Watts: []float64{10, 20}}
	c := a.Add(b)
	want := []float64{11, 22, 13, 24} // b wraps
	for i, w := range want {
		if c.Watts[i] != w {
			t.Errorf("Add[%d] = %v, want %v", i, c.Watts[i], w)
		}
	}
	if a.Watts[0] != 1 {
		t.Error("Add mutated receiver")
	}
}

func TestResample(t *testing.T) {
	p := &Power{SlotSeconds: 60, Watts: []float64{10, 20, 30, 40}}
	coarse, err := p.Resample(120)
	if err != nil {
		t.Fatal(err)
	}
	if coarse.Len() != 2 || coarse.Watts[0] != 15 || coarse.Watts[1] != 35 {
		t.Errorf("coarsen: %v", coarse.Watts)
	}
	fine, err := p.Resample(30)
	if err != nil {
		t.Fatal(err)
	}
	if fine.Len() != 8 || fine.Watts[0] != 10 || fine.Watts[1] != 10 || fine.Watts[2] != 20 {
		t.Errorf("refine: %v", fine.Watts)
	}
	same, err := p.Resample(60)
	if err != nil || same.Len() != 4 {
		t.Errorf("identity resample: %v %v", same, err)
	}
	if _, err := p.Resample(0); !errors.Is(err, ErrBadTrace) {
		t.Error("zero slot accepted")
	}
	if _, err := p.Resample(90); !errors.Is(err, ErrBadTrace) {
		t.Error("non-divisible slot accepted")
	}
	// Energy conservation under coarsening: mean unchanged.
	if stats.Mean(coarse.Watts) != stats.Mean(p.Watts) {
		t.Errorf("coarsening changed the mean: %v vs %v", stats.Mean(coarse.Watts), stats.Mean(p.Watts))
	}
}
