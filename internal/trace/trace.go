// Package trace synthesizes the workload and power traces the SpotDC paper
// evaluates on but does not publish: the three-month commercial colocation
// PDU power trace (Fig. 2(b), Fig. 7(a)), the Google-cluster request-arrival
// trace used for sprinting tenants, and the university batch-processing
// trace used for opportunistic tenants.
//
// Each generator is deterministic given its seed, and the power generator is
// calibrated so that slot-to-slot PDU-level variation stays within ±2.5% for
// 99% of one-minute slots, matching the statistic the paper reports from
// production data (Section III-C).
package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
	"strings"
)

// ErrBadTrace reports a malformed serialized trace.
var ErrBadTrace = errors.New("trace: malformed trace data")

// Power is a sampled power (or load) time series with a fixed slot length.
type Power struct {
	// Name identifies the trace (e.g. "pdu1-others").
	Name string
	// SlotSeconds is the sampling interval.
	SlotSeconds int
	// Watts holds one sample per slot.
	Watts []float64
}

// Len returns the number of slots.
func (p *Power) Len() int { return len(p.Watts) }

// At returns the sample for slot i; out-of-range slots wrap around, so a
// short trace can drive an arbitrarily long simulation.
func (p *Power) At(i int) float64 {
	if len(p.Watts) == 0 {
		return 0
	}
	return p.Watts[((i%len(p.Watts))+len(p.Watts))%len(p.Watts)]
}

// Scale multiplies every sample by k in place and returns the receiver.
func (p *Power) Scale(k float64) *Power {
	for i := range p.Watts {
		p.Watts[i] *= k
	}
	return p
}

// Clone returns a deep copy.
func (p *Power) Clone() *Power {
	cp := &Power{Name: p.Name, SlotSeconds: p.SlotSeconds}
	cp.Watts = append(cp.Watts, p.Watts...)
	return cp
}

// PowerConfig parameterizes the bounded-variation AR(1) power generator.
type PowerConfig struct {
	// Name for the produced trace.
	Name string
	// Seed makes the trace reproducible.
	Seed int64
	// Slots is the number of samples.
	Slots int
	// SlotSeconds is the sampling interval (default 60).
	SlotSeconds int
	// MeanWatts is the long-run average power.
	MeanWatts float64
	// MinWatts / MaxWatts clamp the excursion. Max must be > Min.
	MinWatts, MaxWatts float64
	// Volatility is the per-slot relative noise magnitude; production PDUs
	// sit near 0.008 (≤ ±2.5%/min for 99% of slots), the deliberately
	// volatile synthetic trace in Fig. 10 uses ~0.1.
	Volatility float64
	// Diurnal, if nonzero, superimposes a day-night swing of the given
	// relative amplitude (e.g. 0.2 for ±20% of the mean).
	Diurnal float64
	// Persistence in (0,1) is the AR(1) coefficient; higher values drift
	// slower. Default 0.97.
	Persistence float64
}

// GeneratePower synthesizes a power trace.
func GeneratePower(cfg PowerConfig) (*Power, error) {
	if cfg.Slots <= 0 {
		return nil, fmt.Errorf("trace: Slots must be positive, got %d", cfg.Slots)
	}
	if cfg.MaxWatts <= cfg.MinWatts {
		return nil, fmt.Errorf("trace: MaxWatts (%v) must exceed MinWatts (%v)", cfg.MaxWatts, cfg.MinWatts)
	}
	if cfg.MeanWatts < cfg.MinWatts || cfg.MeanWatts > cfg.MaxWatts {
		return nil, fmt.Errorf("trace: MeanWatts %v outside [%v, %v]", cfg.MeanWatts, cfg.MinWatts, cfg.MaxWatts)
	}
	slotSec := cfg.SlotSeconds
	if slotSec <= 0 {
		slotSec = 60
	}
	persistence := cfg.Persistence
	if persistence == 0 {
		persistence = 0.97
	}
	if persistence <= 0 || persistence >= 1 {
		return nil, fmt.Errorf("trace: Persistence must be in (0,1), got %v", persistence)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := &Power{Name: cfg.Name, SlotSeconds: slotSec, Watts: make([]float64, cfg.Slots)}
	slotsPerDay := float64(24*3600) / float64(slotSec)
	// AR(1) around a (possibly diurnal) moving target.
	deviation := 0.0
	for i := 0; i < cfg.Slots; i++ {
		target := cfg.MeanWatts
		if cfg.Diurnal != 0 {
			phase := 2 * math.Pi * float64(i) / slotsPerDay
			// Peak in the "afternoon" (phase shifted), trough at night.
			target += cfg.MeanWatts * cfg.Diurnal * math.Sin(phase-math.Pi/2)
		}
		deviation = persistence*deviation + rng.NormFloat64()*cfg.Volatility*cfg.MeanWatts
		w := target + deviation
		if w < cfg.MinWatts {
			w = cfg.MinWatts
			deviation = w - target
		}
		if w > cfg.MaxWatts {
			w = cfg.MaxWatts
			deviation = w - target
		}
		out.Watts[i] = w
	}
	return out, nil
}

// ArrivalConfig parameterizes the request-arrival generator that stands in
// for the Google cluster trace used by sprinting tenants: a diurnal base
// rate with bursty high-traffic episodes during which the tenant needs spot
// capacity.
type ArrivalConfig struct {
	Name string
	Seed int64
	// Slots is the number of samples.
	Slots int
	// SlotSeconds is the sampling interval (default 120).
	SlotSeconds int
	// BaseRate is the off-peak request rate (requests/s).
	BaseRate float64
	// PeakRate is the top of the diurnal swing.
	PeakRate float64
	// BurstFraction is the fraction of slots hit by an extra burst on top of
	// the diurnal curve; the paper has sprinting tenants needing spot
	// capacity ~15% of the time.
	BurstFraction float64
	// BurstFactor multiplies the rate during a burst (default 1.5).
	BurstFactor float64
	// PhaseOffset shifts the diurnal curve in radians; π starts the trace
	// at the daily peak (useful for short demonstration windows).
	PhaseOffset float64
}

// GenerateArrivals synthesizes a request-rate trace (requests/s per slot).
func GenerateArrivals(cfg ArrivalConfig) (*Power, error) {
	if cfg.Slots <= 0 {
		return nil, fmt.Errorf("trace: Slots must be positive, got %d", cfg.Slots)
	}
	if cfg.PeakRate < cfg.BaseRate {
		return nil, fmt.Errorf("trace: PeakRate %v below BaseRate %v", cfg.PeakRate, cfg.BaseRate)
	}
	if cfg.BurstFraction < 0 || cfg.BurstFraction > 1 {
		return nil, fmt.Errorf("trace: BurstFraction %v outside [0,1]", cfg.BurstFraction)
	}
	slotSec := cfg.SlotSeconds
	if slotSec <= 0 {
		slotSec = 120
	}
	burstFactor := cfg.BurstFactor
	if burstFactor == 0 {
		burstFactor = 1.5
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := &Power{Name: cfg.Name, SlotSeconds: slotSec, Watts: make([]float64, cfg.Slots)}
	slotsPerDay := float64(24*3600) / float64(slotSec)
	mid := (cfg.BaseRate + cfg.PeakRate) / 2
	amp := (cfg.PeakRate - cfg.BaseRate) / 2
	// Bursts arrive in episodes of geometric length so high-traffic periods
	// are contiguous, as in real front-end traffic.
	inBurst := false
	for i := 0; i < cfg.Slots; i++ {
		phase := 2*math.Pi*float64(i)/slotsPerDay + cfg.PhaseOffset
		rate := mid + amp*math.Sin(phase-math.Pi/2)
		if inBurst {
			// Episodes end with probability 1/4 per slot (mean length 4).
			if rng.Float64() < 0.25 {
				inBurst = false
			}
		} else if cfg.BurstFraction > 0 {
			// Start probability chosen so the stationary burst fraction
			// matches cfg.BurstFraction given mean episode length 4.
			start := cfg.BurstFraction / (4 * (1 - cfg.BurstFraction))
			if rng.Float64() < start {
				inBurst = true
			}
		}
		if inBurst {
			rate *= burstFactor
		}
		rate *= 1 + 0.05*rng.NormFloat64()
		if rate < 0 {
			rate = 0
		}
		out.Watts[i] = rate
	}
	return out, nil
}

// BacklogConfig parameterizes the batch-processing backlog generator that
// stands in for the university data-center trace driving opportunistic
// tenants: job batches arrive and the tenant wants spot capacity whenever a
// backlog is pending (about 30% of slots in the paper's setup).
type BacklogConfig struct {
	Name string
	Seed int64
	// Slots is the number of samples.
	Slots int
	// SlotSeconds is the sampling interval (default 120).
	SlotSeconds int
	// ActiveFraction is the fraction of slots with pending backlog.
	ActiveFraction float64
	// MeanUnits is the mean backlog size (arbitrary work units) when active.
	MeanUnits float64
}

// GenerateBacklog synthesizes a backlog trace; a zero sample means the
// tenant has no pending batch work that slot.
func GenerateBacklog(cfg BacklogConfig) (*Power, error) {
	if cfg.Slots <= 0 {
		return nil, fmt.Errorf("trace: Slots must be positive, got %d", cfg.Slots)
	}
	if cfg.ActiveFraction < 0 || cfg.ActiveFraction > 1 {
		return nil, fmt.Errorf("trace: ActiveFraction %v outside [0,1]", cfg.ActiveFraction)
	}
	slotSec := cfg.SlotSeconds
	if slotSec <= 0 {
		slotSec = 120
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := &Power{Name: cfg.Name, SlotSeconds: slotSec, Watts: make([]float64, cfg.Slots)}
	active := false
	for i := 0; i < cfg.Slots; i++ {
		if active {
			if rng.Float64() < 0.2 { // mean active episode: 5 slots
				active = false
			}
		} else if cfg.ActiveFraction > 0 {
			start := cfg.ActiveFraction / (5 * (1 - cfg.ActiveFraction))
			if rng.Float64() < start {
				active = true
			}
		}
		if active {
			out.Watts[i] = cfg.MeanUnits * (0.5 + rng.Float64())
		}
	}
	return out, nil
}

// WriteCSV serializes the trace as "slot,value" rows preceded by a header
// carrying the name and slot length.
func (p *Power) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# name=%s slot_seconds=%d\n", p.Name, p.SlotSeconds); err != nil {
		return err
	}
	for i, v := range p.Watts {
		if _, err := fmt.Fprintf(bw, "%d,%.6f\n", i, v); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a trace previously produced by WriteCSV.
func ReadCSV(r io.Reader) (*Power, error) {
	sc := bufio.NewScanner(r)
	out := &Power{SlotSeconds: 60}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			for _, field := range strings.Fields(strings.TrimPrefix(line, "#")) {
				k, v, ok := strings.Cut(field, "=")
				if !ok {
					continue
				}
				switch k {
				case "name":
					out.Name = v
				case "slot_seconds":
					n, err := strconv.Atoi(v)
					if err != nil {
						return nil, fmt.Errorf("%w: line %d: bad slot_seconds %q", ErrBadTrace, lineNo, v)
					}
					out.SlotSeconds = n
				}
			}
			continue
		}
		_, valStr, ok := strings.Cut(line, ",")
		if !ok {
			return nil, fmt.Errorf("%w: line %d: %q", ErrBadTrace, lineNo, line)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(valStr), 64)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrBadTrace, lineNo, err)
		}
		out.Watts = append(out.Watts, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Slice returns a copy of the trace restricted to slots [from, to).
func (p *Power) Slice(from, to int) (*Power, error) {
	if from < 0 || to > len(p.Watts) || from >= to {
		return nil, fmt.Errorf("%w: slice [%d, %d) of %d slots", ErrBadTrace, from, to, len(p.Watts))
	}
	out := &Power{Name: p.Name, SlotSeconds: p.SlotSeconds}
	out.Watts = append(out.Watts, p.Watts[from:to]...)
	return out, nil
}

// Concat appends another trace with the same slot length.
func (p *Power) Concat(other *Power) (*Power, error) {
	if p.SlotSeconds != other.SlotSeconds {
		return nil, fmt.Errorf("%w: concat of %ds and %ds slots", ErrBadTrace, p.SlotSeconds, other.SlotSeconds)
	}
	out := p.Clone()
	out.Watts = append(out.Watts, other.Watts...)
	return out, nil
}

// Add sums another trace element-wise (wrapping the shorter one), keeping
// the receiver's length — how multiple background feeds combine on one PDU.
func (p *Power) Add(other *Power) *Power {
	out := p.Clone()
	for i := range out.Watts {
		out.Watts[i] += other.At(i)
	}
	return out
}

// Resample converts the trace to a different slot length by averaging
// (coarsening) or repeating (refining) samples. The new slot length must
// divide, or be divisible by, the current one.
func (p *Power) Resample(slotSeconds int) (*Power, error) {
	if slotSeconds <= 0 {
		return nil, fmt.Errorf("%w: slot length %d", ErrBadTrace, slotSeconds)
	}
	if p.SlotSeconds == slotSeconds {
		return p.Clone(), nil
	}
	out := &Power{Name: p.Name, SlotSeconds: slotSeconds}
	switch {
	case slotSeconds%p.SlotSeconds == 0:
		// Coarsen: average k consecutive samples.
		k := slotSeconds / p.SlotSeconds
		for i := 0; i+k <= len(p.Watts); i += k {
			sum := 0.0
			for j := 0; j < k; j++ {
				sum += p.Watts[i+j]
			}
			out.Watts = append(out.Watts, sum/float64(k))
		}
	case p.SlotSeconds%slotSeconds == 0:
		// Refine: repeat each sample k times (zero-order hold).
		k := p.SlotSeconds / slotSeconds
		for _, w := range p.Watts {
			for j := 0; j < k; j++ {
				out.Watts = append(out.Watts, w)
			}
		}
	default:
		return nil, fmt.Errorf("%w: cannot resample %ds to %ds", ErrBadTrace, p.SlotSeconds, slotSeconds)
	}
	return out, nil
}
