// Package capping implements the tenant-side power-capping loop the paper
// assumes throughout ("tenants with insufficient capacity reservation need
// to cap power, e.g., scaling down CPU"): a feedback controller that
// tracks a rack power budget by actuating a CPU frequency/power-limit
// knob, RAPL-style, with watt-level granularity.
//
// The controller is what lets a tenant honour a *changing* budget — its
// guaranteed capacity plus whatever spot capacity the market granted for
// the current slot — without overshooting into an involuntary power cut.
package capping

import (
	"errors"
	"fmt"
	"math"
)

// ErrController reports an invalid controller configuration.
var ErrController = errors.New("capping: invalid controller")

// ServerModel maps the actuator setting and the offered load to rack
// power: power = idle + (peak − idle) · util(load) · knob^Alpha. It is the
// plant the controller acts on.
type ServerModel struct {
	// IdleWatts and PeakWatts bound the rack draw.
	IdleWatts, PeakWatts float64
	// Alpha shapes the knob→power relation; DVFS is roughly cubic in
	// frequency for the dynamic part, but package limits behave closer to
	// linear. Default 1.5.
	Alpha float64
	// MinKnob is the lowest actuator setting (deepest cap); typical RAPL
	// limits bottom out near 0.3 of peak dynamic power. Default 0.2.
	MinKnob float64
}

// Validate checks the model.
func (m ServerModel) Validate() error {
	switch {
	case m.PeakWatts <= m.IdleWatts:
		return fmt.Errorf("%w: peak %v ≤ idle %v", ErrController, m.PeakWatts, m.IdleWatts)
	case m.IdleWatts < 0:
		return fmt.Errorf("%w: idle %v negative", ErrController, m.IdleWatts)
	case m.Alpha < 0:
		return fmt.Errorf("%w: alpha %v negative", ErrController, m.Alpha)
	case m.MinKnob < 0 || m.MinKnob > 1:
		return fmt.Errorf("%w: min knob %v outside [0,1]", ErrController, m.MinKnob)
	}
	return nil
}

// Normalized returns the model with unset (zero) fields replaced by their
// documented defaults: Alpha 1.5, MinKnob 0.2. New normalizes the model it
// stores, so a Controller's model always carries explicit values — an
// explicit zero is "unset" by contract (use a small epsilon for a
// near-zero exponent or floor).
func (m ServerModel) Normalized() ServerModel {
	if m.Alpha == 0 {
		m.Alpha = 1.5
	}
	if m.MinKnob == 0 {
		m.MinKnob = 0.2
	}
	return m
}

func (m ServerModel) alpha() float64 {
	if m.Alpha == 0 {
		return 1.5
	}
	return m.Alpha
}

func (m ServerModel) minKnob() float64 {
	if m.MinKnob == 0 {
		return 0.2
	}
	return m.MinKnob
}

// Power returns the rack draw at the given utilization (0–1, from the
// offered load) and actuator setting (MinKnob–1).
func (m ServerModel) Power(util, knob float64) float64 {
	util = clamp(util, 0, 1)
	knob = clamp(knob, m.minKnob(), 1)
	return m.IdleWatts + (m.PeakWatts-m.IdleWatts)*util*math.Pow(knob, m.alpha())
}

// KnobFor inverts Power: the highest actuator setting whose draw at the
// given utilization stays within budget. ok is false when even the deepest
// cap exceeds the budget (the controller then pins MinKnob and the rack
// still overshoots — the operator's involuntary-cut territory).
func (m ServerModel) KnobFor(util, budgetWatts float64) (knob float64, ok bool) {
	util = clamp(util, 0, 1)
	dynamic := budgetWatts - m.IdleWatts
	if util <= 0 {
		return 1, m.IdleWatts <= budgetWatts
	}
	if dynamic <= 0 {
		return m.minKnob(), false
	}
	raw := math.Pow(dynamic/((m.PeakWatts-m.IdleWatts)*util), 1/m.alpha())
	if raw >= 1 {
		return 1, true
	}
	if raw < m.minKnob() {
		return m.minKnob(), false
	}
	return raw, true
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Controller is a proportional-integral power-cap controller: each control
// tick it observes the measured draw, compares it to the budget, and nudges
// the actuator. The PI form tolerates model error between the assumed
// ServerModel and the real draw.
type Controller struct {
	model ServerModel
	// Kp and Ki are the PI gains in knob-units per watt of error.
	kp, ki float64
	// state
	knob     float64
	integral float64
	budget   float64
	// lastUtil is the most recent utilization reported to Tick; SetBudget
	// uses it to feed-forward the knob. It starts at 1 (full load), the
	// conservative guess: at full utilization the model predicts the
	// deepest knob for a given budget, so a feed-forward jump from a stale
	// utilization can only undershoot the budget, never overshoot it.
	lastUtil float64
}

// Config parameterizes a Controller.
type Config struct {
	// Model is the assumed plant.
	Model ServerModel
	// Kp is the proportional gain (default 0.002 knob/W).
	Kp float64
	// Ki is the integral gain (default 0.0005 knob/W·tick).
	Ki float64
	// InitialBudget is the starting power budget in watts.
	InitialBudget float64
}

// New builds a controller at full throttle.
func New(cfg Config) (*Controller, error) {
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	if cfg.Kp < 0 || cfg.Ki < 0 {
		return nil, fmt.Errorf("%w: negative gains", ErrController)
	}
	if cfg.InitialBudget < 0 {
		return nil, fmt.Errorf("%w: negative budget", ErrController)
	}
	kp := cfg.Kp
	if kp == 0 {
		kp = 0.002
	}
	ki := cfg.Ki
	if ki == 0 {
		ki = 0.0005
	}
	return &Controller{
		model:    cfg.Model.Normalized(),
		kp:       kp,
		ki:       ki,
		knob:     1,
		budget:   cfg.InitialBudget,
		lastUtil: 1,
	}, nil
}

// Model returns the controller's plant model with defaults normalized.
func (c *Controller) Model() ServerModel { return c.model }

// SetBudget updates the tracked power budget — called at every slot
// boundary with guaranteed + granted spot capacity. The integrator resets
// so stale error does not fight the new set point.
func (c *Controller) SetBudget(watts float64) error {
	if watts < 0 {
		return fmt.Errorf("%w: negative budget", ErrController)
	}
	c.budget = watts
	c.integral = 0
	// Feed-forward: jump near the model's predicted knob so convergence
	// takes a couple of ticks, not tens. The last reported utilization
	// stands in for the current one; PI ticks correct the residual.
	if ff, ok := c.model.KnobFor(c.lastUtil, watts); ok {
		c.knob = ff
	} else {
		c.knob = c.model.minKnob()
	}
	return nil
}

// Budget returns the tracked budget.
func (c *Controller) Budget() float64 { return c.budget }

// Knob returns the current actuator setting.
func (c *Controller) Knob() float64 { return c.knob }

// Tick runs one control period: the caller reports the measured draw and
// current utilization; the controller adjusts and returns the new actuator
// setting.
func (c *Controller) Tick(measuredWatts, util float64) float64 {
	c.lastUtil = clamp(util, 0, 1)
	err := c.budget - measuredWatts // positive error: headroom to spend
	c.integral += err
	// Anti-windup: bound the integral's contribution to a full knob swing,
	// i.e. |ki·integral| ≤ 1.
	maxI := 1 / c.ki
	c.integral = clamp(c.integral, -maxI, maxI)
	c.knob = clamp(c.knob+c.kp*err+c.ki*c.integral, c.model.minKnob(), 1)
	// Feed-forward clamp: never command a knob the model predicts would
	// overshoot the budget at current utilization.
	if ff, ok := c.model.KnobFor(util, c.budget); ok && c.knob > ff {
		c.knob = ff
	} else if !ok {
		c.knob = c.model.minKnob()
	}
	return c.knob
}

// Settle runs ticks against the model itself (no plant error) until the
// draw is within tol watts of min(budget, unconstrained draw) or maxTicks
// elapse, returning the settled power and tick count. It is the
// pure-simulation path used by tests and by slot-level simulators that do
// not model intra-slot dynamics.
func (c *Controller) Settle(util, tol float64, maxTicks int) (watts float64, ticks int) {
	watts = c.model.Power(util, c.knob)
	for ticks = 0; ticks < maxTicks; ticks++ {
		target := math.Min(c.budget, c.model.Power(util, 1))
		if math.Abs(watts-target) <= tol {
			return watts, ticks
		}
		c.Tick(watts, util)
		watts = c.model.Power(util, c.knob)
	}
	return watts, ticks
}
