package capping

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func testModel() ServerModel {
	return ServerModel{IdleWatts: 60, PeakWatts: 205, Alpha: 1.5, MinKnob: 0.2}
}

func TestServerModelValidate(t *testing.T) {
	if err := testModel().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []ServerModel{
		{IdleWatts: 100, PeakWatts: 50},
		{IdleWatts: -1, PeakWatts: 50},
		{IdleWatts: 1, PeakWatts: 50, Alpha: -1},
		{IdleWatts: 1, PeakWatts: 50, MinKnob: 1.5},
	}
	for i, m := range bad {
		if err := m.Validate(); !errors.Is(err, ErrController) {
			t.Errorf("bad model %d accepted", i)
		}
	}
}

func TestServerModelPower(t *testing.T) {
	m := testModel()
	if got := m.Power(0, 1); got != 60 {
		t.Errorf("zero util power = %v, want idle", got)
	}
	if got := m.Power(1, 1); math.Abs(got-205) > 1e-9 {
		t.Errorf("full power = %v, want peak", got)
	}
	// Monotone in both arguments.
	if m.Power(0.5, 1) <= m.Power(0.5, 0.5) {
		t.Error("power not monotone in knob")
	}
	if m.Power(1, 0.8) <= m.Power(0.5, 0.8) {
		t.Error("power not monotone in util")
	}
	// Clamping: out-of-range inputs stay in the envelope.
	if got := m.Power(2, 2); got > 205+1e-9 {
		t.Errorf("clamped power = %v", got)
	}
	if got := m.Power(-1, 0.01); got < 60-1e-9 {
		t.Errorf("clamped power = %v", got)
	}
}

func TestKnobForInvertsPower(t *testing.T) {
	m := testModel()
	for _, util := range []float64{0.2, 0.5, 0.9} {
		for _, budget := range []float64{100, 145, 180} {
			knob, ok := m.KnobFor(util, budget)
			if !ok {
				// Only acceptable if even the deepest cap overshoots.
				if m.Power(util, m.MinKnob) <= budget {
					t.Errorf("util %v budget %v: ok=false but min knob fits", util, budget)
				}
				continue
			}
			p := m.Power(util, knob)
			if p > budget+1e-6 {
				t.Errorf("util %v budget %v: knob %v draws %v", util, budget, knob, p)
			}
			// Maximal: a slightly higher knob (if allowed) would overshoot,
			// unless already at full throttle.
			if knob < 1 {
				if m.Power(util, math.Min(1, knob*1.05)) <= budget {
					t.Errorf("util %v budget %v: knob %v not maximal", util, budget, knob)
				}
			}
		}
	}
	// Idle exceeding budget can never fit.
	if _, ok := m.KnobFor(0.5, 50); ok {
		t.Error("budget below idle accepted")
	}
	if knob, ok := m.KnobFor(0, 100); !ok || knob != 1 {
		t.Errorf("zero util: %v, %v", knob, ok)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Model: ServerModel{IdleWatts: 10, PeakWatts: 5}}); err == nil {
		t.Error("bad model accepted")
	}
	if _, err := New(Config{Model: testModel(), Kp: -1}); err == nil {
		t.Error("negative gain accepted")
	}
	if _, err := New(Config{Model: testModel(), InitialBudget: -1}); err == nil {
		t.Error("negative budget accepted")
	}
	c, err := New(Config{Model: testModel(), InitialBudget: 145})
	if err != nil {
		t.Fatal(err)
	}
	if c.Knob() != 1 || c.Budget() != 145 {
		t.Errorf("initial state: knob=%v budget=%v", c.Knob(), c.Budget())
	}
}

func TestControllerSettlesUnderBudget(t *testing.T) {
	c, err := New(Config{Model: testModel(), InitialBudget: 145})
	if err != nil {
		t.Fatal(err)
	}
	// High utilization: unconstrained draw would be ~205 W; the controller
	// must cap to 145 W.
	watts, ticks := c.Settle(1.0, 1.0, 200)
	if watts > 145+1 {
		t.Errorf("settled at %v W over the 145 W budget", watts)
	}
	if watts < 135 {
		t.Errorf("settled at %v W, needlessly deep below budget", watts)
	}
	if ticks >= 200 {
		t.Errorf("did not settle in %d ticks", ticks)
	}
}

func TestControllerReleasesCapWhenBudgetRises(t *testing.T) {
	c, err := New(Config{Model: testModel(), InitialBudget: 145})
	if err != nil {
		t.Fatal(err)
	}
	if _, ticks := c.Settle(1.0, 1.0, 200); ticks >= 200 {
		t.Fatal("initial settle failed")
	}
	// Spot capacity granted: budget jumps to 195 W; the controller must
	// raise the knob and use it.
	if err := c.SetBudget(195); err != nil {
		t.Fatal(err)
	}
	watts, ticks := c.Settle(1.0, 1.0, 400)
	if watts > 195+1 {
		t.Errorf("over new budget: %v", watts)
	}
	if watts < 185 {
		t.Errorf("failed to exploit the raised budget: settled at %v W (%d ticks)", watts, ticks)
	}
	// Spot expires: budget back to 145, cap must re-engage.
	if err := c.SetBudget(145); err != nil {
		t.Fatal(err)
	}
	watts, _ = c.Settle(1.0, 1.0, 400)
	if watts > 146 {
		t.Errorf("cap did not re-engage: %v W", watts)
	}
	if err := c.SetBudget(-1); err == nil {
		t.Error("negative budget accepted")
	}
}

func TestControllerLowUtilizationUncapped(t *testing.T) {
	c, err := New(Config{Model: testModel(), InitialBudget: 145})
	if err != nil {
		t.Fatal(err)
	}
	// At 30% utilization the unconstrained draw (≈103.5 W) is below budget:
	// the controller should end near full throttle, not strangle the rack.
	watts, _ := c.Settle(0.3, 1.0, 300)
	want := testModel().Power(0.3, 1)
	if math.Abs(watts-want) > 2 {
		t.Errorf("settled at %v W, want ≈%v (no capping needed)", watts, want)
	}
}

func TestControllerImpossibleBudgetPinsMinKnob(t *testing.T) {
	c, err := New(Config{Model: testModel(), InitialBudget: 50}) // below idle
	if err != nil {
		t.Fatal(err)
	}
	watts, _ := c.Settle(1.0, 0.5, 300)
	min := testModel().Power(1.0, testModel().MinKnob)
	if math.Abs(watts-min) > 1 {
		t.Errorf("settled at %v W, want pinned at deepest cap ≈%v", watts, min)
	}
	if c.Knob() > testModel().MinKnob+1e-9 {
		t.Errorf("knob %v above min", c.Knob())
	}
}

func TestNormalizedDefaults(t *testing.T) {
	m := ServerModel{IdleWatts: 60, PeakWatts: 205}
	n := m.Normalized()
	if n.Alpha != 1.5 || n.MinKnob != 0.2 {
		t.Errorf("Normalized() = %+v, want Alpha 1.5 MinKnob 0.2", n)
	}
	// Explicit values survive normalization.
	if e := testModel().Normalized(); e != testModel() {
		t.Errorf("Normalized() altered explicit fields: %+v", e)
	}
	// The controller stores the normalized model, so its behavior is
	// identical whether the defaults were spelled out or left zero.
	c, err := New(Config{Model: m, InitialBudget: 145})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Model(); got != n {
		t.Errorf("controller model = %+v, want normalized %+v", got, n)
	}
}

// Regression: SetBudget documents a feed-forward knob jump ("convergence
// takes a couple of ticks, not tens") — a budget cut must land on the
// model's predicted knob immediately, not crawl there on PI ticks.
func TestSetBudgetFeedForwardSettlesFast(t *testing.T) {
	c, err := New(Config{Model: testModel(), InitialBudget: 195})
	if err != nil {
		t.Fatal(err)
	}
	if _, ticks := c.Settle(1.0, 1.0, 200); ticks >= 200 {
		t.Fatal("initial settle failed")
	}
	// Emergency reclaim: the budget is cut by 75 W. The feed-forward jump
	// must put the draw within tolerance of the new budget with at most a
	// couple of correction ticks.
	if err := c.SetBudget(120); err != nil {
		t.Fatal(err)
	}
	watts, ticks := c.Settle(1.0, 1.0, 200)
	if watts > 121 {
		t.Errorf("settled at %v W over the 120 W budget", watts)
	}
	if ticks > 2 {
		t.Errorf("budget cut took %d ticks to settle, want a feed-forward jump (≤2)", ticks)
	}
	// An impossible budget pins the deepest cap immediately.
	if err := c.SetBudget(10); err != nil {
		t.Fatal(err)
	}
	if got := c.Knob(); got != testModel().MinKnob {
		t.Errorf("knob after impossible budget = %v, want min knob", got)
	}
}

// Regression: Tick's anti-windup clamps the integral at 1/ki ("a full knob
// swing") — the applied term must be ki·integral, so the clamped integral
// really contributes up to one full knob swing, not 1/100th of one.
func TestTickIntegralGainMatchesAntiWindupClamp(t *testing.T) {
	c, err := New(Config{Model: testModel(), InitialBudget: 300})
	if err != nil {
		t.Fatal(err)
	}
	// Budget above peak: the feed-forward clamp resolves to knob 1 and
	// stays out of the way; the knob move is pure PI arithmetic.
	c.Tick(500, 1.0) // err = −200
	want := clamp(1+c.kp*(-200)+c.ki*(-200), testModel().MinKnob, 1)
	if got := c.Knob(); math.Abs(got-want) > 1e-12 {
		t.Errorf("knob after one tick = %v, want %v (kp·err + ki·integral applied in full)", got, want)
	}
	// Persistent error winds the integral to the clamp; its applied
	// contribution is then exactly one full knob swing.
	for i := 0; i < 50; i++ {
		c.Tick(500, 1.0)
	}
	if got := math.Abs(c.ki * c.integral); math.Abs(got-1) > 1e-12 {
		t.Errorf("clamped integral contributes %v knob, want exactly 1 (full swing)", got)
	}
}

// The PI loop must absorb plant/model mismatch: with a plant drawing a
// constant 25 W above the model's prediction, the controller still settles
// the measured draw onto the budget, and the integral stays within the
// anti-windup bound throughout.
func TestControllerEliminatesSteadyStateModelError(t *testing.T) {
	m := testModel()
	c, err := New(Config{Model: m, InitialBudget: 145})
	if err != nil {
		t.Fatal(err)
	}
	const bias = 25.0
	watts := m.Power(1.0, c.Knob()) + bias
	for tick := 0; tick < 400; tick++ {
		c.Tick(watts, 1.0)
		if math.Abs(c.integral) > 1/c.ki+1e-9 {
			t.Fatalf("tick %d: integral %v outside anti-windup bound ±%v", tick, c.integral, 1/c.ki)
		}
		watts = m.Power(1.0, c.Knob()) + bias
	}
	if math.Abs(watts-145) > 1 {
		t.Errorf("steady-state draw %v W with model bias, want within 1 W of the 145 W budget", watts)
	}
}

// Property: wherever the controller settles, it never exceeds the budget
// by more than the tolerance unless even the deepest cap cannot fit.
func TestQuickControllerRespectsBudget(t *testing.T) {
	m := testModel()
	f := func(utilRaw, budgetRaw uint8) bool {
		util := float64(utilRaw%101) / 100
		budget := 60 + float64(budgetRaw%160)
		c, err := New(Config{Model: m, InitialBudget: budget})
		if err != nil {
			return false
		}
		watts, _ := c.Settle(util, 0.5, 500)
		if watts <= budget+1 {
			return true
		}
		// Overshoot is only legal when the deepest cap still overshoots.
		return m.Power(util, m.MinKnob) > budget
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
