package audit_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"spotdc/internal/audit"
	"spotdc/internal/metrics"
	"spotdc/internal/proto"
	"spotdc/internal/sim"
)

// TestGoldenNetRunJournalReplay is the PR's acceptance run: the seeded
// 220-slot networked fault schedule (the same plan as sim's
// TestNetRunSeededFaultSchedule) journals every slot with full schema-v2
// inputs, and the offline auditor must replay every cleared slot through
// both engines bit-identically with zero violations. The degraded slot
// (the poisoned reading at slot 60) must carry no revenue and no grants.
func TestGoldenNetRunJournalReplay(t *testing.T) {
	sc, err := sim.Testbed(sim.TestbedOptions{Seed: 17, Slots: 220})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	journal := metrics.NewJournal(&buf)
	res, err := sim.NetRun(sc, sim.NetRunOptions{
		SlotLen: 15 * time.Millisecond,
		BidFaults: proto.FaultPlan{
			Seed: 1, DropProb: 0.08, DelayProb: 0.05, MaxDelay: 3 * time.Millisecond, SeverProb: 0.02,
		},
		BroadcastFaults: proto.FaultPlan{
			Seed: 2, DropProb: 0.05, DelayProb: 0.05, MaxDelay: 3 * time.Millisecond, SeverProb: 0.01,
		},
		ErrorSlots:             []int{60},
		MaxConsecutiveFailures: 5,
		Reconnect:              true,
		SessionTTL:             150 * time.Millisecond,
		Journal:                journal,
		Audit:                  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cleared != 219 || res.SlotErrors != 1 {
		t.Fatalf("cleared/errors = %d/%d, want 219/1", res.Cleared, res.SlotErrors)
	}
	if journal.Events() != 220 || !journal.HasHeader() {
		t.Fatalf("journal: %d events, header %v", journal.Events(), journal.HasHeader())
	}

	rep, err := audit.Replay(bytes.NewReader(buf.Bytes()), audit.Options{
		EngineCheck: true,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range rep.Violations {
		if i >= 10 {
			t.Errorf("... and %d more", len(rep.Violations)-10)
			break
		}
		t.Errorf("violation: %s", v)
	}
	if rep.Slots != 220 || rep.Cleared != 219 || rep.Degraded != 1 {
		t.Errorf("report slots/cleared/degraded = %d/%d/%d, want 220/219/1",
			rep.Slots, rep.Cleared, rep.Degraded)
	}
	// Every cleared slot must have replayed with full inputs — an
	// outcome-only slot means the capture path lost information.
	if rep.Replayed != rep.Cleared {
		t.Errorf("replayed %d of %d cleared slots (%d outcome-only)",
			rep.Replayed, rep.Cleared, rep.OutcomeOnly)
	}
	// The journal's books must equal the operator's: bit-for-bit is not
	// guaranteed for the *sum* (the journal is re-summed in a different
	// association), but compensated summation on both sides leaves only
	// ulp-level slack.
	if d := rep.TotalRevenue - res.SpotRevenue; d > 1e-9 || d < -1e-9 {
		t.Errorf("journal revenue $%v vs operator $%v (Δ %g)", rep.TotalRevenue, res.SpotRevenue, d)
	}
}

// TestReplayFlagsTamperedJournal proves the replay check has teeth: nudging
// one journaled outcome by a single cent must surface as a violation.
func TestReplayFlagsTamperedJournal(t *testing.T) {
	sc, err := sim.Testbed(sim.TestbedOptions{Seed: 3, Slots: 12})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	journal := metrics.NewJournal(&buf)
	if _, err := sim.NetRun(sc, sim.NetRunOptions{
		SlotLen: 15 * time.Millisecond,
		Journal: journal,
		Audit:   true,
	}); err != nil {
		t.Fatal(err)
	}
	hdr, events, err := metrics.ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	clean, err := audit.CheckJournal(hdr, events, audit.Options{EngineCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if !clean.OK() {
		t.Fatalf("clean journal reported violations: %v", clean.Violations)
	}

	tampered := false
	for i := range events {
		if !events[i].Degraded && events[i].SoldWatts > 0 {
			events[i].Price += 0.01
			tampered = true
			break
		}
	}
	if !tampered {
		t.Skip("no cleared slot with sales to tamper with")
	}
	rep, err := audit.CheckJournal(hdr, events, audit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("tampered journal passed the audit")
	}
	if err := rep.Err(); err == nil || !strings.Contains(err.Error(), "violation") {
		t.Errorf("Err() = %v", err)
	}
}

// TestReplayEmergencyJournal replays a networked run with the emergency
// loop armed: the journaled reclaim plans, suspensions, and restores must
// re-derive bit-identically from the slot inputs (PlanReclaim is pure), and
// nudging a single journaled cut must surface as a violation.
func TestReplayEmergencyJournal(t *testing.T) {
	sc, err := sim.Testbed(sim.TestbedOptions{Seed: 17, Slots: 20})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	journal := metrics.NewJournal(&buf)
	res, err := sim.NetRun(sc, sim.NetRunOptions{
		SlotLen: 20 * time.Millisecond,
		Journal: journal,
		Audit:   true,
		Emergency: &sim.NetEmergencyOptions{
			RecoverySlots:     2,
			OverloadSlots:     []int{8, 9, 10},
			OverloadRackWatts: 70,
			OverloadPDU:       0,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.EmergenciesActed == 0 {
		t.Fatal("overload schedule never fired — the replay below is vacuous")
	}

	hdr, events, err := metrics.ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if hdr == nil || !hdr.EmergencyResponder {
		t.Fatalf("journal header = %+v, want responder on", hdr)
	}
	rep, err := audit.CheckJournal(hdr, events, audit.Options{EngineCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("emergency journal flagged: %v", rep.Violations)
	}

	tampered := false
	for i := range events {
		if len(events[i].Reclaims) > 0 {
			events[i].Reclaims[0].SpotCutWatts += 1
			tampered = true
			break
		}
	}
	if !tampered {
		t.Fatal("no reclaim event journaled")
	}
	rep, err = audit.CheckJournal(hdr, events, audit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("tampered reclaim record passed the audit")
	}
}

// TestCheckJournalV1OutcomeOnly asserts the backward-compat path: a v1
// journal (no header) still gets outcome-level checks, and a degraded slot
// that carries revenue is flagged — the billing-leak class of bug this PR
// fixes.
func TestCheckJournalV1OutcomeOnly(t *testing.T) {
	events := []metrics.SlotEvent{
		{Slot: 0, Price: 0.05, SoldWatts: 100, Revenue: 0.000625, Grants: 1, Bids: 2},
		{Slot: 1, Degraded: true, Err: "poisoned reading"},
	}
	rep, err := audit.CheckJournal(nil, events, audit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("clean v1 journal flagged: %v", rep.Violations)
	}
	if rep.OutcomeOnly != 1 || rep.Replayed != 0 {
		t.Errorf("outcome-only/replayed = %d/%d, want 1/0", rep.OutcomeOnly, rep.Replayed)
	}

	// A degraded slot with a surviving spot line item is a billing leak.
	leaky := []metrics.SlotEvent{
		{Slot: 0, Degraded: true, Err: "x", Revenue: 0.001},
	}
	rep, err = audit.CheckJournal(nil, leaky, audit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("degraded slot with revenue passed the audit")
	}

	// Out-of-order slots are flagged.
	rep, err = audit.CheckJournal(nil, []metrics.SlotEvent{{Slot: 5}, {Slot: 4}}, audit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("out-of-order journal passed the audit")
	}
}
