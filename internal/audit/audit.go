// Package audit is SpotDC's offline conservation checker: it re-verifies
// the paper's settlement invariants over a slot journal after the fact.
//
// The split with the inline checker (core.Auditor, attached via
// core.Options.Audit) is a cost budget: inline auditing runs on the
// clearing path and is limited to one allocation-free O(bids) pass, while
// this package replays a schema-v2 journal through the real prediction and
// clearing code — re-running every inline invariant plus the expensive
// ones (bit-identical reproduction, exact-vs-scan engine agreement,
// journal-level revenue reconciliation) with no latency constraint.
//
// Determinism is the load-bearing property: a v2 journal records the full
// inputs of every cleared slot (bids in submission order, the power
// reading, the predicted spot capacities), and JSON's shortest round-trip
// float encoding is exact, so replaying a slot through the recorded engine
// must reproduce Price, TotalWatts, RevenueRate, Evaluations, and every
// grant bit for bit. Any difference is a real divergence — nondeterminism,
// a version skew, or a tampered journal — not rounding noise.
package audit

import (
	"fmt"
	"io"
	"math"

	"spotdc/internal/core"
	"spotdc/internal/metrics"
	"spotdc/internal/operator"
	"spotdc/internal/power"
	"spotdc/internal/stats"
)

// Tolerances. feasEps/revEps mirror the core market's internal epsilons
// (watts and $/h); relEps covers re-association error when sums are folded
// in a different order than the engine folded them (DESIGN.md §4e).
const (
	feasEps = 1e-9
	revEps  = 1e-9
	relEps  = 1e-12
)

// DefaultAgreementRel is the default cross-engine relative revenue
// tolerance: scan quantizes the price to PriceStep, so its optimum may
// trail the exact engine's by up to one step's worth of revenue; 1% covers
// every configuration the experiments run.
const DefaultAgreementRel = 0.01

// Violation is one failed invariant.
type Violation struct {
	// Slot is the market slot index, or -1 for journal-level violations.
	Slot int
	// Check names the invariant ("replay/price", "conservation/pdu", ...).
	Check string
	// Detail is the human-readable specifics.
	Detail string
}

func (v Violation) String() string {
	if v.Slot < 0 {
		return fmt.Sprintf("journal: %s: %s", v.Check, v.Detail)
	}
	return fmt.Sprintf("slot %d: %s: %s", v.Slot, v.Check, v.Detail)
}

// Options tunes a journal check.
type Options struct {
	// EngineCheck additionally clears every replayable slot through the
	// engine that did NOT produce it and asserts revenue agreement —
	// the expensive cross-engine invariant.
	EngineCheck bool
	// AgreementRel is the relative revenue tolerance for EngineCheck
	// (DefaultAgreementRel when 0).
	AgreementRel float64
	// Logf, if non-nil, narrates progress (the CLI's -v).
	Logf func(format string, args ...interface{})
}

// Report summarizes one journal check.
type Report struct {
	// Header is the journal's v2 header (nil for a v1 journal).
	Header *metrics.JournalHeader
	// Slots / Cleared / Degraded count the journal's events.
	Slots    int
	Cleared  int
	Degraded int
	// Replayed counts cleared slots re-run through the clearing engine
	// (requires a v2 journal with full-input capture); OutcomeOnly counts
	// cleared slots checked at the outcome level only (v1 journals, or
	// events with InputsTruncated).
	Replayed    int
	OutcomeOnly int
	// TornTail reports that the journal ended in a torn (partially
	// written) final line — the signature of a crashed writer — which the
	// reader dropped before checking. Not a violation: every complete
	// event still verifies, the run just ended mid-append.
	TornTail bool
	// TotalRevenue is the compensated sum of per-slot revenue in $ —
	// callers reconcile it against the operator's or simulator's books.
	TotalRevenue float64
	// Violations lists every failed invariant, in journal order.
	Violations []Violation
}

// OK reports whether every invariant held.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Err returns nil when every invariant held, otherwise an error naming the
// first violation and the total count.
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	return fmt.Errorf("audit: %d violation(s), first: %s", len(r.Violations), r.Violations[0])
}

func (r *Report) violate(slot int, check, format string, args ...interface{}) {
	r.Violations = append(r.Violations, Violation{Slot: slot, Check: check, Detail: fmt.Sprintf(format, args...)})
}

// Replay reads a slot journal and checks it (see CheckJournal). A torn
// final line — a crashed writer's partial append — is dropped and flagged
// in Report.TornTail rather than failing the read.
func Replay(in io.Reader, opts Options) (*Report, error) {
	hdr, events, torn, err := metrics.ReadJournalInfo(in)
	if err != nil {
		return nil, err
	}
	if torn && opts.Logf != nil {
		opts.Logf("audit: journal tail torn mid-append; dropped partial final line")
	}
	rep, err := CheckJournal(hdr, events, opts)
	if rep != nil {
		rep.TornTail = torn
	}
	return rep, err
}

// replayer holds the reconstructed market a v2 journal clears against.
type replayer struct {
	topo    *power.Topology
	market  *core.Market
	baseOpt core.Options
	predict power.PredictOptions
	// inline is the core.Auditor attached to the replay market; its
	// violations are folded into the report per slot.
	inline     *core.Auditor
	inlineErrs []error
	spotUsers  map[int]bool
}

// newReplayer rebuilds topology and market from a v2 header.
func newReplayer(hdr *metrics.JournalHeader) (*replayer, error) {
	pdus := make([]power.PDU, len(hdr.PDUCapacity))
	for i, c := range hdr.PDUCapacity {
		pdus[i] = power.PDU{ID: fmt.Sprintf("pdu-%d", i), Capacity: c}
	}
	racks := make([]power.Rack, len(hdr.Racks))
	for i, r := range hdr.Racks {
		racks[i] = power.Rack{ID: r.ID, Tenant: r.Tenant, PDU: r.PDU, Guaranteed: r.Guaranteed, SpotHeadroom: r.Headroom}
	}
	topo, err := power.NewTopology(hdr.UPSCapacity, pdus, racks)
	if err != nil {
		return nil, fmt.Errorf("audit: header topology: %w", err)
	}
	rp := &replayer{
		topo:      topo,
		predict:   power.PredictOptions{UnderPredictionFactor: hdr.UnderPrediction},
		spotUsers: make(map[int]bool, len(racks)),
	}
	rp.inline = &core.Auditor{OnViolation: func(err error) { rp.inlineErrs = append(rp.inlineErrs, err) }}
	cons := core.Constraints{
		RackHeadroom: make([]float64, len(racks)),
		RackPDU:      make([]int, len(racks)),
		PDUSpot:      append([]float64(nil), hdr.PDUCapacity...),
		UPSSpot:      hdr.UPSCapacity,
	}
	for i, r := range racks {
		cons.RackHeadroom[i] = r.SpotHeadroom
		cons.RackPDU[i] = r.PDU
	}
	rp.baseOpt = core.Options{
		PriceStep:    hdr.PriceStep,
		ReservePrice: hdr.ReservePrice,
		Ration:       hdr.Ration,
		Audit:        rp.inline,
	}
	rp.market, err = core.NewMarket(cons, rp.baseOpt)
	if err != nil {
		return nil, fmt.Errorf("audit: header market: %w", err)
	}
	return rp, nil
}

// bids converts a journaled bid set back to market bids.
func (rp *replayer) bids(set []metrics.BidRecord) []core.Bid {
	out := make([]core.Bid, len(set))
	for i, br := range set {
		out[i] = core.Bid{
			Rack:   br.Rack,
			Tenant: br.Tenant,
			Fn:     core.LinearBid{DMax: br.DMax, DMin: br.DMin, QMin: br.QMin, QMax: br.QMax},
		}
	}
	return out
}

// clearAs re-clears the slot's bids with a specific engine against the
// recorded spot capacities.
func (rp *replayer) clearAs(algo core.Algorithm, ev metrics.SlotEvent, bids []core.Bid) (core.Result, error) {
	opt := rp.baseOpt
	opt.Algorithm = algo
	m, err := core.NewMarket(rp.market.Constraints(), opt)
	if err != nil {
		return core.Result{}, err
	}
	if err := m.SetSpot(ev.PDUSpot, ev.UPSSpot); err != nil {
		return core.Result{}, err
	}
	return m.Clear(bids)
}

// CheckJournal runs every invariant the journal's schema supports and
// returns the report. It never fails on violations — inspect Report.Err;
// the error return is reserved for a journal too malformed to check
// (e.g. a v2 header that does not describe a valid topology).
func CheckJournal(hdr *metrics.JournalHeader, events []metrics.SlotEvent, opts Options) (*Report, error) {
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	agreeRel := opts.AgreementRel
	if agreeRel <= 0 {
		agreeRel = DefaultAgreementRel
	}
	rep := &Report{Header: hdr, Slots: len(events)}

	var rp *replayer
	if hdr != nil {
		var err error
		if rp, err = newReplayer(hdr); err != nil {
			return nil, err
		}
	}

	var revenue stats.Neumaier
	prevSlot := math.MinInt64
	for _, ev := range events {
		if ev.Slot <= prevSlot {
			rep.violate(ev.Slot, "journal/order", "slot index not increasing (previous %d)", prevSlot)
		}
		prevSlot = ev.Slot
		revenue.Add(ev.Revenue)

		if ev.Degraded {
			rep.Degraded++
			// A degraded slot is the Section III-C safe default: zero price,
			// nothing sold, nothing billed — a single surviving line item
			// would be a billing leak.
			if ev.Price != 0 || ev.SoldWatts != 0 || ev.Revenue != 0 || ev.Grants != 0 || len(ev.GrantSet) != 0 {
				rep.violate(ev.Slot, "degraded/zero",
					"degraded slot carries price %v, %v W, $%v, %d grants (want all zero)",
					ev.Price, ev.SoldWatts, ev.Revenue, ev.Grants)
			}
			continue
		}
		rep.Cleared++
		checkOutcome(rep, hdr, ev)

		if rp == nil || ev.InputsTruncated || (len(ev.BidSet) == 0 && ev.Bids > 0) {
			rep.OutcomeOnly++
			continue
		}
		rep.Replayed++
		replaySlot(rep, rp, hdr, ev, opts.EngineCheck, agreeRel)
	}

	rep.TotalRevenue = revenue.Sum()
	logf("audit: %d slots (%d cleared, %d degraded): %d replayed, %d outcome-only, %d violations",
		rep.Slots, rep.Cleared, rep.Degraded, rep.Replayed, rep.OutcomeOnly, len(rep.Violations))
	return rep, nil
}

// checkOutcome runs the outcome-level invariants available for any cleared
// event, v1 or v2.
func checkOutcome(rep *Report, hdr *metrics.JournalHeader, ev metrics.SlotEvent) {
	if ev.Price < 0 || ev.SoldWatts < 0 || ev.Revenue < 0 {
		rep.violate(ev.Slot, "outcome/sign", "negative price/watts/revenue: %v / %v / %v",
			ev.Price, ev.SoldWatts, ev.Revenue)
	}
	if ev.GrantSet != nil && ev.Grants != len(ev.GrantSet) {
		rep.violate(ev.Slot, "outcome/grants", "%d grants but %d grant records", ev.Grants, len(ev.GrantSet))
	}
	if hdr != nil {
		// Revenue == Price × SoldWatts / 1000 × SlotHours up to association
		// error (bitwise equality is asserted on the replay path, which
		// recomputes in the engine's own operation order).
		want := ev.Price * ev.SoldWatts / 1000 * hdr.SlotHours
		if d := math.Abs(ev.Revenue - want); d > revEps+relEps*math.Abs(want) {
			rep.violate(ev.Slot, "outcome/revenue",
				"revenue $%v, want price×watts/1000×hours = $%v (Δ %g)", ev.Revenue, want, d)
		}
	}
	if ev.GrantSet != nil && hdr != nil {
		// The slot's billed revenue must equal the sum of its line items:
		// price × grant × hours over the grant set.
		var billed stats.Neumaier
		for _, g := range ev.GrantSet {
			billed.Add(ev.Price * g.Watts / 1000 * hdr.SlotHours)
		}
		if d := math.Abs(billed.Sum() - ev.Revenue); d > revEps+relEps*math.Abs(ev.Revenue) {
			rep.violate(ev.Slot, "outcome/billing",
				"grant line items sum to $%v, slot billed $%v (Δ %g)", billed.Sum(), ev.Revenue, d)
		}
	}
}

// replaySlot re-runs one fully-captured slot through prediction and the
// recorded clearing engine, asserting bit-identical reproduction, then
// optionally through the other engine for the agreement invariant.
func replaySlot(rep *Report, rp *replayer, hdr *metrics.JournalHeader, ev metrics.SlotEvent, engineCheck bool, agreeRel float64) {
	// 1. Prediction: the recorded spot capacities must reproduce from the
	// recorded reading (Section III-C, Eqns. 3–4).
	if len(ev.RackWatts) == len(hdr.Racks) {
		rd := power.Reading{RackWatts: ev.RackWatts, OtherPDUWatts: ev.OtherPDUWatts}
		popt := rp.predict
		if len(ev.BidSet) > 0 {
			for k := range rp.spotUsers {
				delete(rp.spotUsers, k)
			}
			for _, b := range ev.BidSet {
				rp.spotUsers[b.Rack] = true
			}
			popt.SpotUsers = rp.spotUsers
		}
		spot, err := rp.topo.PredictSpot(rd, popt)
		if err != nil {
			rep.violate(ev.Slot, "replay/predict", "PredictSpot failed: %v", err)
			return
		}
		// Emergency suspensions: the journal records the prediction AFTER
		// the operator zeroed suspended elements out of it, alongside which
		// elements those were — apply the same zeroing before comparing.
		for _, m := range ev.SuspendedPDUs {
			if m >= 0 && m < len(spot.PDUWatts) {
				spot.PDUWatts[m] = 0
			}
		}
		if ev.SuspendedUPS {
			spot.UPSWatts = 0
		}
		if spot.UPSWatts != ev.UPSSpot {
			rep.violate(ev.Slot, "replay/predict", "UPS spot %v W, journal %v W", spot.UPSWatts, ev.UPSSpot)
		}
		for i, w := range spot.PDUWatts {
			if i < len(ev.PDUSpot) && w != ev.PDUSpot[i] {
				rep.violate(ev.Slot, "replay/predict", "PDU %d spot %v W, journal %v W", i, w, ev.PDUSpot[i])
			}
		}
		if hdr.EmergencyResponder {
			replayReclaims(rep, rp, hdr, ev, rd)
		}
	}

	// 2. Clearing: the recorded engine over the recorded bids and spot must
	// reproduce the outcome bit for bit (the recorded spot already carries
	// any suspension zeroing, so clearing replays unchanged).
	algo, err := core.ParseAlgorithm(ev.Algorithm)
	if err != nil || algo == core.AlgorithmAuto {
		rep.violate(ev.Slot, "replay/engine", "unreplayable engine %q", ev.Algorithm)
		return
	}
	bids := rp.bids(ev.BidSet)
	rp.inlineErrs = rp.inlineErrs[:0]
	res, err := rp.clearAs(algo, ev, bids)
	if err != nil {
		rep.violate(ev.Slot, "replay/clear", "re-clearing failed: %v", err)
		return
	}
	for _, ierr := range rp.inlineErrs {
		rep.violate(ev.Slot, "conservation/inline", "%v", ierr)
	}
	if res.Price != ev.Price {
		rep.violate(ev.Slot, "replay/price", "price %v, journal %v", res.Price, ev.Price)
	}
	if res.TotalWatts != ev.SoldWatts {
		rep.violate(ev.Slot, "replay/watts", "sold %v W, journal %v W", res.TotalWatts, ev.SoldWatts)
	}
	if res.Evaluations != ev.Evaluations {
		rep.violate(ev.Slot, "replay/evals", "%d evaluations, journal %d", res.Evaluations, ev.Evaluations)
	}
	if rev := res.RevenueRate * hdr.SlotHours; rev != ev.Revenue {
		rep.violate(ev.Slot, "replay/revenue", "revenue $%v, journal $%v", rev, ev.Revenue)
	}
	grants := make([]metrics.GrantRecord, 0, len(ev.GrantSet))
	for _, a := range res.Allocations {
		if a.Watts > 0 {
			grants = append(grants, metrics.GrantRecord{Rack: a.Rack, Watts: a.Watts})
		}
	}
	if len(grants) != len(ev.GrantSet) {
		rep.violate(ev.Slot, "replay/grants", "%d grants, journal %d", len(grants), len(ev.GrantSet))
	} else {
		for i, g := range grants {
			if g != ev.GrantSet[i] {
				rep.violate(ev.Slot, "replay/grants", "grant %d = %+v, journal %+v", i, g, ev.GrantSet[i])
			}
		}
	}

	// 3. Emergency reclamation — checked inside the prediction block above:
	// replayReclaims re-detects the slot's excursions from the recorded
	// reading and re-plans them through operator.PlanReclaim, asserting the
	// journaled reclaim events reproduce bit for bit.

	// 4. Demand consistency: every replayed grant must be what the bid's
	// demand function asks at the clearing price, clamped to headroom —
	// except under rationing, which scales over-demanded PDUs down.
	if !hdr.Ration {
		cons := rp.market.Constraints()
		for i, b := range bids {
			want := b.Fn.Demand(res.Price)
			if hr := cons.RackHeadroom[b.Rack]; want > hr {
				want = hr
			}
			if want < 0 {
				want = 0
			}
			if got := res.Allocations[i].Watts; math.Abs(got-want) > feasEps {
				rep.violate(ev.Slot, "replay/demand",
					"rack %d granted %v W, demand at price %v is %v W", b.Rack, got, res.Price, want)
			}
		}
	}

	// 5. Engine agreement: both engines must find (within tolerance) the
	// same revenue-optimal clearing — scan quantizes to the price grid, so
	// exact may lead by a sliver, but a larger gap means one engine is
	// wrong (the class of bug PR 1 fixed).
	if engineCheck {
		other := core.AlgorithmScan
		if algo == core.AlgorithmScan {
			other = core.AlgorithmExact
		}
		ores, err := rp.clearAs(other, ev, bids)
		if err != nil {
			rep.violate(ev.Slot, "agreement/clear", "%v engine failed: %v", other, err)
			return
		}
		exactRev, scanRev := res.RevenueRate, ores.RevenueRate
		if algo == core.AlgorithmScan {
			exactRev, scanRev = ores.RevenueRate, res.RevenueRate
		}
		if exactRev < scanRev-revEps {
			rep.violate(ev.Slot, "agreement/optimal",
				"exact revenue $%v/h below scan $%v/h (exact must never trail the grid)", exactRev, scanRev)
		}
		scale := math.Max(math.Abs(exactRev), math.Abs(scanRev))
		if d := math.Abs(exactRev - scanRev); d > revEps+agreeRel*scale {
			rep.violate(ev.Slot, "agreement/revenue",
				"engines disagree: exact $%v/h vs scan $%v/h (Δ %g > %v relative)", exactRev, scanRev, d, agreeRel)
		}
	}
}

// replayReclaims re-runs the responder's planning for one cleared slot:
// re-detect excursions from the recorded reading with the header's breaker
// tolerance, re-plan each through operator.PlanReclaim with the slot's own
// grants as weights, and assert the journaled reclaim events match bit for
// bit. PlanReclaim is a pure function and JSON round-trips float64 exactly,
// so any difference is a real divergence.
func replayReclaims(rep *Report, rp *replayer, hdr *metrics.JournalHeader, ev metrics.SlotEvent, rd power.Reading) {
	ems := rp.topo.CheckEmergencies(rd, hdr.BreakerTolerance)
	if len(ems) != len(ev.Reclaims) {
		rep.violate(ev.Slot, "replay/reclaim",
			"reading shows %d excursions, journal records %d reclaims", len(ems), len(ev.Reclaims))
		return
	}
	if len(ems) == 0 {
		return
	}
	// The responder weighted cuts by the slot's cleared grants.
	grants := make([]float64, len(hdr.Racks))
	for _, g := range ev.GrantSet {
		if g.Rack >= 0 && g.Rack < len(grants) {
			grants[g.Rack] += g.Watts
		}
	}
	for i, em := range ems {
		rec := ev.Reclaims[i]
		plan := operator.PlanReclaim(rp.topo, em, rd.RackWatts, grants, hdr.EmergencyEscalation)
		if plan.Level != rec.Level || plan.PDU != rec.PDU {
			rep.violate(ev.Slot, "replay/reclaim", "excursion %d at %s/%d, journal %s/%d",
				i, plan.Level, plan.PDU, rec.Level, rec.PDU)
			continue
		}
		if plan.Load != rec.LoadWatts || plan.Capacity != rec.CapacityWatts {
			rep.violate(ev.Slot, "replay/reclaim", "%s %d load/capacity %v/%v W, journal %v/%v W",
				plan.Level, plan.PDU, plan.Load, plan.Capacity, rec.LoadWatts, rec.CapacityWatts)
		}
		if plan.SpotReclaimed != rec.SpotCutWatts || plan.GuaranteedReclaimed != rec.GuaranteedCutWatts ||
			plan.Escalated != rec.Escalated {
			rep.violate(ev.Slot, "replay/reclaim",
				"%s %d cuts %v spot + %v guaranteed (escalated=%v), journal %v + %v (escalated=%v)",
				plan.Level, plan.PDU, plan.SpotReclaimed, plan.GuaranteedReclaimed, plan.Escalated,
				rec.SpotCutWatts, rec.GuaranteedCutWatts, rec.Escalated)
		}
		if len(plan.Targets) != len(rec.Budgets) {
			rep.violate(ev.Slot, "replay/reclaim", "%s %d plans %d budget resets, journal %d",
				plan.Level, plan.PDU, len(plan.Targets), len(rec.Budgets))
			continue
		}
		for j, t := range plan.Targets {
			b := rec.Budgets[j]
			if t.Rack != b.Rack || t.BudgetWatts != b.BudgetWatts ||
				t.SpotCut != b.SpotCut || t.GuaranteedCut != b.GuaranteedCut {
				rep.violate(ev.Slot, "replay/reclaim",
					"%s %d budget %d = rack %d → %v W (spot %v, guaranteed %v), journal rack %d → %v W (spot %v, guaranteed %v)",
					plan.Level, plan.PDU, j, t.Rack, t.BudgetWatts, t.SpotCut, t.GuaranteedCut,
					b.Rack, b.BudgetWatts, b.SpotCut, b.GuaranteedCut)
			}
		}
	}
}
