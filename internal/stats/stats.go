// Package stats provides the small statistical toolkit used throughout the
// SpotDC reproduction: empirical CDFs, percentiles, running summaries and
// time series. Everything is deterministic and allocation-conscious so the
// year-long simulations and the 15,000-rack clearing benchmarks stay cheap.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by statistics that are undefined on empty data.
var ErrEmpty = errors.New("stats: empty data set")

// Neumaier is a compensated (Kahan–Neumaier) summation accumulator: the
// running compensation term recovers the low-order bits a naive += loop
// discards, so totals stay accurate to ~1 ulp of the true sum regardless of
// term count or magnitude spread. Revenue and energy aggregation use it
// everywhere a 15,000-rack run folds tiny per-slot payments into large
// cumulative totals (where naive summation measurably drifts). The zero
// value is an empty sum; Neumaier is a plain value type, cheap to embed.
type Neumaier struct {
	sum, comp float64
}

// Add folds x into the sum.
func (n *Neumaier) Add(x float64) {
	t := n.sum + x
	if math.Abs(n.sum) >= math.Abs(x) {
		n.comp += (n.sum - t) + x
	} else {
		n.comp += (x - t) + n.sum
	}
	n.sum = t
}

// Sum returns the compensated total.
func (n Neumaier) Sum() float64 { return n.sum + n.comp }

// State exposes the accumulator internals (running sum and compensation
// term) for durable checkpointing. Restoring both via NeumaierFromState and
// replaying subsequent Adds in the original order reproduces the exact bit
// pattern an uninterrupted accumulation would have reached.
func (n Neumaier) State() (sum, comp float64) { return n.sum, n.comp }

// NeumaierFromState rebuilds an accumulator from a previously captured
// State(). It is the restore half of the checkpoint contract.
func NeumaierFromState(sum, comp float64) Neumaier { return Neumaier{sum: sum, comp: comp} }

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Sum returns the Neumaier-compensated sum of xs.
func Sum(xs []float64) float64 {
	var n Neumaier
	for _, x := range xs {
		n.Add(x)
	}
	return n.Sum()
}

// Min returns the minimum of xs. It returns ErrEmpty for empty input.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the maximum of xs. It returns ErrEmpty for empty input.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// StdDev returns the population standard deviation of xs (0 for fewer than
// two samples).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mean := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. The input is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of range [0,100]", p)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p), nil
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CDF is an empirical cumulative distribution function over a sample.
// The zero value is empty; use NewCDF or Add to populate it.
type CDF struct {
	sorted []float64
	dirty  []float64
}

// NewCDF builds a CDF from the given samples. The input is copied.
func NewCDF(xs []float64) *CDF {
	c := &CDF{}
	c.dirty = append(c.dirty, xs...)
	c.compact()
	return c
}

// Add appends samples to the distribution.
func (c *CDF) Add(xs ...float64) {
	c.dirty = append(c.dirty, xs...)
}

func (c *CDF) compact() {
	if len(c.dirty) == 0 {
		return
	}
	c.sorted = append(c.sorted, c.dirty...)
	c.dirty = c.dirty[:0]
	sort.Float64s(c.sorted)
}

// Len returns the number of samples.
func (c *CDF) Len() int { return len(c.sorted) + len(c.dirty) }

// At returns P(X ≤ x), the fraction of samples that are ≤ x.
func (c *CDF) At(x float64) float64 {
	c.compact()
	if len(c.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the sample.
func (c *CDF) Quantile(q float64) (float64, error) {
	c.compact()
	if len(c.sorted) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v out of range [0,1]", q)
	}
	return percentileSorted(c.sorted, q*100), nil
}

// Mean returns the sample mean.
func (c *CDF) Mean() float64 {
	c.compact()
	return Mean(c.sorted)
}

// Points samples the CDF at n evenly spaced values spanning [min, max] and
// returns (x, P(X≤x)) pairs, suitable for plotting the curves in Fig. 2(b)
// and Fig. 13 of the paper.
func (c *CDF) Points(n int) []Point {
	c.compact()
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	lo, hi := c.sorted[0], c.sorted[len(c.sorted)-1]
	pts := make([]Point, 0, n)
	if n == 1 || hi == lo {
		return append(pts, Point{X: hi, Y: 1})
	}
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		pts = append(pts, Point{X: x, Y: c.At(x)})
	}
	return pts
}

// Point is an (x, y) pair of a sampled curve.
type Point struct {
	X, Y float64
}

// Summary captures the descriptive statistics the experiment harness prints.
type Summary struct {
	N             int
	Mean, Std     float64
	Min, Max      float64
	P50, P90, P99 float64
}

// Summarize computes a Summary of xs. It returns ErrEmpty for empty input.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return Summary{
		N:    len(xs),
		Mean: Mean(xs),
		Std:  StdDev(xs),
		Min:  sorted[0],
		Max:  sorted[len(sorted)-1],
		P50:  percentileSorted(sorted, 50),
		P90:  percentileSorted(sorted, 90),
		P99:  percentileSorted(sorted, 99),
	}, nil
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g p50=%.4g p90=%.4g p99=%.4g max=%.4g",
		s.N, s.Mean, s.Std, s.Min, s.P50, s.P90, s.P99, s.Max)
}

// Running accumulates a mean/min/max/count incrementally without retaining
// samples; used by year-long simulations where storing every slot value for
// every tenant would be wasteful.
type Running struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Observe folds x into the accumulator.
func (r *Running) Observe(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// N returns the number of observations.
func (r *Running) N() int { return r.n }

// Mean returns the running mean (0 if no observations).
func (r *Running) Mean() float64 { return r.mean }

// Min returns the smallest observation (0 if none).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation (0 if none).
func (r *Running) Max() float64 { return r.max }

// StdDev returns the running population standard deviation.
func (r *Running) StdDev() float64 {
	if r.n < 2 {
		return 0
	}
	return math.Sqrt(r.m2 / float64(r.n))
}

// Sum returns mean*n, the total of all observations.
func (r *Running) Sum() float64 { return r.mean * float64(r.n) }

// Series is a named time series collected over simulation slots.
type Series struct {
	Name   string
	Values []float64
}

// Append adds a value to the series.
func (s *Series) Append(v float64) { s.Values = append(s.Values, v) }

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Values) }

// Normalize returns a copy of the series divided element-wise by base.
// Elements where base is zero map to zero.
func (s *Series) Normalize(base float64) Series {
	out := Series{Name: s.Name, Values: make([]float64, len(s.Values))}
	if base != 0 {
		for i, v := range s.Values {
			out.Values[i] = v / base
		}
	}
	return out
}

// Diffs returns the slot-to-slot differences v[i+1]-v[i]; used for the
// Fig. 7(a) PDU power-variation analysis.
func Diffs(xs []float64) []float64 {
	if len(xs) < 2 {
		return nil
	}
	out := make([]float64, len(xs)-1)
	for i := 1; i < len(xs); i++ {
		out[i-1] = xs[i] - xs[i-1]
	}
	return out
}

// RelDiffs returns the relative slot-to-slot changes |v[i+1]-v[i]| / v[i].
// Slots with v[i]==0 are skipped.
func RelDiffs(xs []float64) []float64 {
	if len(xs) < 2 {
		return nil
	}
	out := make([]float64, 0, len(xs)-1)
	for i := 1; i < len(xs); i++ {
		if xs[i-1] == 0 {
			continue
		}
		out = append(out, math.Abs(xs[i]-xs[i-1])/xs[i-1])
	}
	return out
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// EWMA is an exponentially weighted moving average, the classic low-cost
// online predictor (used by tenants to anticipate the clearing price from
// realized prices).
type EWMA struct {
	alpha float64
	value float64
	n     int
}

// NewEWMA builds an EWMA with smoothing factor alpha in (0, 1]; larger
// alpha weights recent samples more.
func NewEWMA(alpha float64) (*EWMA, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("stats: EWMA alpha %v outside (0,1]", alpha)
	}
	return &EWMA{alpha: alpha}, nil
}

// Observe folds a sample into the average.
func (e *EWMA) Observe(x float64) {
	if e.n == 0 {
		e.value = x
	} else {
		e.value = e.alpha*x + (1-e.alpha)*e.value
	}
	e.n++
}

// Value returns the current average and whether any sample was observed.
func (e *EWMA) Value() (float64, bool) { return e.value, e.n > 0 }
