package stats

import (
	"math"
	"testing"
)

// TestNeumaierBeatsNaiveAt15000Racks is the accumulation-drift regression
// behind the audit PR: folding 15,000 small per-rack revenue terms into a
// large cumulative total loses every one of them to rounding under naive
// summation (0.1 is far below one ulp of 1e16), while the compensated
// accumulator recovers the full amount.
func TestNeumaierBeatsNaiveAt15000Racks(t *testing.T) {
	const racks = 15000
	const big = 1e16  // cumulative revenue already on the books
	const tiny = 0.1  // one rack's per-slot payment
	want := big + tiny*racks

	naive := big
	var comp Neumaier
	comp.Add(big)
	for i := 0; i < racks; i++ {
		naive += tiny
		comp.Add(tiny)
	}

	// Naive summation provably fails: the 1500 dollars of rack payments
	// vanish entirely.
	if naiveErr := math.Abs(naive - want); naiveErr < 1 {
		t.Fatalf("naive summation unexpectedly accurate (err %v); regression test is vacuous", naiveErr)
	}
	// Compensated summation holds the total to sub-cent accuracy.
	if compErr := math.Abs(comp.Sum() - want); compErr > 1e-3 {
		t.Errorf("Neumaier sum off by %v (got %v, want %v)", compErr, comp.Sum(), want)
	}
}

// TestNeumaierCancellations checks the classic pathological sequence where
// plain Kahan (non-Neumaier) compensation also fails.
func TestNeumaierCancellations(t *testing.T) {
	var n Neumaier
	for _, x := range []float64{1, 1e100, 1, -1e100} {
		n.Add(x)
	}
	if got := n.Sum(); got != 2 {
		t.Errorf("Sum() = %v, want 2", got)
	}
}

func TestSumMeanCompensated(t *testing.T) {
	xs := make([]float64, 0, 10001)
	xs = append(xs, 1e16)
	for i := 0; i < 10000; i++ {
		xs = append(xs, 0.1)
	}
	if got, want := Sum(xs), 1e16+1000.0; math.Abs(got-want) > 1e-3 {
		t.Errorf("Sum = %v, want %v", got, want)
	}
	if got, want := Mean(xs), (1e16+1000.0)/10001; math.Abs(got-want)/want > 1e-12 {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	if Sum(nil) != 0 || Mean(nil) != 0 {
		t.Error("empty Sum/Mean not zero")
	}
}
