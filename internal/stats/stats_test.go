package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanSum(t *testing.T) {
	cases := []struct {
		in        []float64
		mean, sum float64
	}{
		{nil, 0, 0},
		{[]float64{5}, 5, 5},
		{[]float64{1, 2, 3, 4}, 2.5, 10},
		{[]float64{-1, 1}, 0, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.mean, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.mean)
		}
		if got := Sum(c.in); !almostEqual(got, c.sum, 1e-12) {
			t.Errorf("Sum(%v) = %v, want %v", c.in, got, c.sum)
		}
	}
}

func TestMinMax(t *testing.T) {
	if _, err := Min(nil); err != ErrEmpty {
		t.Fatalf("Min(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Fatalf("Max(nil) err = %v, want ErrEmpty", err)
	}
	mn, err := Min([]float64{3, -2, 7})
	if err != nil || mn != -2 {
		t.Errorf("Min = %v, %v; want -2, nil", mn, err)
	}
	mx, err := Max([]float64{3, -2, 7})
	if err != nil || mx != 7 {
		t.Errorf("Max = %v, %v; want 7, nil", mx, err)
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{4}); got != 0 {
		t.Errorf("StdDev single = %v, want 0", got)
	}
	// Population stddev of {2,4,4,4,5,5,7,9} is exactly 2.
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	p50, err := Percentile(xs, 50)
	if err != nil || !almostEqual(p50, 5.5, 1e-12) {
		t.Errorf("p50 = %v, %v; want 5.5", p50, err)
	}
	p0, _ := Percentile(xs, 0)
	if p0 != 1 {
		t.Errorf("p0 = %v, want 1", p0)
	}
	p100, _ := Percentile(xs, 100)
	if p100 != 10 {
		t.Errorf("p100 = %v, want 10", p100)
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("Percentile(101) should fail")
	}
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Errorf("Percentile(nil) err = %v, want ErrEmpty", err)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c.Len())
	}
	if got := c.At(0); got != 0 {
		t.Errorf("At(0) = %v, want 0", got)
	}
	if got := c.At(2); got != 0.5 {
		t.Errorf("At(2) = %v, want 0.5", got)
	}
	if got := c.At(4); got != 1 {
		t.Errorf("At(4) = %v, want 1", got)
	}
	if got := c.At(2.5); got != 0.5 {
		t.Errorf("At(2.5) = %v, want 0.5", got)
	}
	q, err := c.Quantile(0.5)
	if err != nil || !almostEqual(q, 2.5, 1e-12) {
		t.Errorf("Quantile(0.5) = %v, %v; want 2.5", q, err)
	}
	if _, err := c.Quantile(1.5); err == nil {
		t.Error("Quantile(1.5) should fail")
	}
}

func TestCDFAddCompacts(t *testing.T) {
	c := &CDF{}
	c.Add(3)
	c.Add(1, 2)
	if got := c.At(1); !almostEqual(got, 1.0/3, 1e-12) {
		t.Errorf("At(1) = %v, want 1/3", got)
	}
	c.Add(0)
	if got := c.At(0); !almostEqual(got, 0.25, 1e-12) {
		t.Errorf("At(0) after add = %v, want 0.25", got)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := &CDF{}
	if got := c.At(10); got != 0 {
		t.Errorf("empty At = %v, want 0", got)
	}
	if _, err := c.Quantile(0.5); err != ErrEmpty {
		t.Errorf("empty Quantile err = %v, want ErrEmpty", err)
	}
	if pts := c.Points(5); pts != nil {
		t.Errorf("empty Points = %v, want nil", pts)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	pts := c.Points(11)
	if len(pts) != 11 {
		t.Fatalf("Points len = %d, want 11", len(pts))
	}
	if pts[0].X != 0 || pts[len(pts)-1].X != 9 {
		t.Errorf("Points span [%v,%v], want [0,9]", pts[0].X, pts[len(pts)-1].X)
	}
	if pts[len(pts)-1].Y != 1 {
		t.Errorf("last Y = %v, want 1", pts[len(pts)-1].Y)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y {
			t.Errorf("CDF points not monotone at %d: %v < %v", i, pts[i].Y, pts[i-1].Y)
		}
	}
	// Degenerate single-valued distribution.
	one := NewCDF([]float64{5, 5, 5})
	p := one.Points(4)
	if len(p) != 1 || p[0].Y != 1 {
		t.Errorf("degenerate Points = %v, want single (5,1)", p)
	}
}

func TestSummarize(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Fatalf("Summarize(nil) err = %v, want ErrEmpty", err)
	}
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("Summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("String should not be empty")
	}
}

func TestRunning(t *testing.T) {
	var r Running
	if r.N() != 0 || r.Mean() != 0 || r.StdDev() != 0 {
		t.Fatal("zero Running should be all zeros")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		r.Observe(x)
	}
	if r.N() != len(xs) {
		t.Errorf("N = %d, want %d", r.N(), len(xs))
	}
	if !almostEqual(r.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", r.Mean())
	}
	if !almostEqual(r.StdDev(), 2, 1e-9) {
		t.Errorf("StdDev = %v, want 2", r.StdDev())
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", r.Min(), r.Max())
	}
	if !almostEqual(r.Sum(), 40, 1e-9) {
		t.Errorf("Sum = %v, want 40", r.Sum())
	}
}

func TestRunningMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var r Running
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
		r.Observe(xs[i])
	}
	if !almostEqual(r.Mean(), Mean(xs), 1e-9) {
		t.Errorf("running mean %v != batch %v", r.Mean(), Mean(xs))
	}
	if !almostEqual(r.StdDev(), StdDev(xs), 1e-9) {
		t.Errorf("running std %v != batch %v", r.StdDev(), StdDev(xs))
	}
}

func TestSeries(t *testing.T) {
	s := Series{Name: "power"}
	s.Append(1)
	s.Append(2)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	n := s.Normalize(2)
	if n.Values[0] != 0.5 || n.Values[1] != 1 {
		t.Errorf("Normalize = %v", n.Values)
	}
	z := s.Normalize(0)
	if z.Values[0] != 0 || z.Values[1] != 0 {
		t.Errorf("Normalize by zero = %v, want zeros", z.Values)
	}
}

func TestDiffs(t *testing.T) {
	if Diffs([]float64{1}) != nil {
		t.Error("Diffs of single element should be nil")
	}
	d := Diffs([]float64{1, 3, 2})
	if len(d) != 2 || d[0] != 2 || d[1] != -1 {
		t.Errorf("Diffs = %v", d)
	}
	rd := RelDiffs([]float64{100, 105, 0, 50})
	// 100->105 gives 0.05; 105->0 gives 1; 0->50 skipped.
	if len(rd) != 2 || !almostEqual(rd[0], 0.05, 1e-12) || !almostEqual(rd[1], 1, 1e-12) {
		t.Errorf("RelDiffs = %v", rd)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 10) != 5 || Clamp(-1, 0, 10) != 0 || Clamp(11, 0, 10) != 10 {
		t.Error("Clamp misbehaves")
	}
}

// Property: quantile is an inverse of At up to sample resolution.
func TestQuickCDFQuantileConsistent(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		c := NewCDF(xs)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
			v, err := c.Quantile(q)
			if err != nil {
				return false
			}
			// At(v) must cover at least fraction q of the sample, up to the
			// 1/n resolution lost to linear interpolation between ranks.
			if c.At(v)+1/float64(c.Len())+1e-9 < q {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p1 := float64(a % 101)
		p2 := float64(b % 101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1, err1 := Percentile(xs, p1)
		v2, err2 := Percentile(xs, p2)
		if err1 != nil || err2 != nil {
			return false
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return v1 <= v2+1e-9 && v1 >= sorted[0]-1e-9 && v2 <= sorted[len(sorted)-1]+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Running min/max/mean agree with batch on arbitrary input.
func TestQuickRunningAgreesWithBatch(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e9))
			}
		}
		if len(xs) == 0 {
			return true
		}
		var r Running
		for _, x := range xs {
			r.Observe(x)
		}
		mn, _ := Min(xs)
		mx, _ := Max(xs)
		scale := math.Max(1, math.Abs(Mean(xs)))
		return r.Min() == mn && r.Max() == mx && almostEqual(r.Mean(), Mean(xs), 1e-6*scale)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEWMA(t *testing.T) {
	if _, err := NewEWMA(0); err == nil {
		t.Error("alpha 0 accepted")
	}
	if _, err := NewEWMA(1.5); err == nil {
		t.Error("alpha >1 accepted")
	}
	e, err := NewEWMA(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Value(); ok {
		t.Error("empty EWMA reports a value")
	}
	e.Observe(10)
	if v, ok := e.Value(); !ok || v != 10 {
		t.Errorf("first sample: %v, %v", v, ok)
	}
	e.Observe(20) // 0.5*20 + 0.5*10 = 15
	if v, _ := e.Value(); v != 15 {
		t.Errorf("second sample: %v", v)
	}
	// Converges toward a constant stream.
	for i := 0; i < 50; i++ {
		e.Observe(8)
	}
	if v, _ := e.Value(); math.Abs(v-8) > 1e-3 {
		t.Errorf("converged value: %v", v)
	}
}
