// Package sim is the time-slotted simulator tying SpotDC together: it runs
// Algorithm 1 slot by slot over a scenario (power topology + tenant agents
// + background load traces), in one of three modes — SpotDC, the
// PowerCapped status quo, or the owner-operated MaxPerf upper bound — and
// collects the metrics the paper's evaluation reports.
package sim

import (
	"errors"
	"fmt"
	"math"
	"time"

	"spotdc/internal/capping"
	"spotdc/internal/core"
	"spotdc/internal/metrics"
	"spotdc/internal/operator"
	"spotdc/internal/otrace"
	"spotdc/internal/par"
	"spotdc/internal/power"
	"spotdc/internal/stats"
	"spotdc/internal/tenant"
	"spotdc/internal/trace"
	"spotdc/internal/workload"
)

// Mode selects the capacity-management scheme under simulation.
type Mode int

const (
	// ModeSpotDC runs the paper's market (Algorithm 1).
	ModeSpotDC Mode = iota
	// ModePowerCapped is the status quo: no spot capacity, tenants cap at
	// their reservations.
	ModePowerCapped
	// ModeMaxPerf is the owner-operated upper bound: the operator sees
	// tenants' true gain curves and allocates to maximize total gain.
	ModeMaxPerf
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeSpotDC:
		return "SpotDC"
	case ModePowerCapped:
		return "PowerCapped"
	case ModeMaxPerf:
		return "MaxPerf"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Scenario describes one simulation run.
type Scenario struct {
	// Name labels the run.
	Name string
	// Topo is the power hierarchy; agents reference its rack indices.
	Topo *power.Topology
	// Agents are the participating tenants.
	Agents []tenant.Agent
	// OtherLoad is one power trace per PDU for the non-participating
	// ("Other" in Table I) tenants.
	OtherLoad []*trace.Power
	// OtherLeasedWatts is the guaranteed capacity leased by the
	// non-participating tenants (enters the operator's revenue baseline).
	OtherLeasedWatts float64
	// Slots is the number of time slots to simulate.
	Slots int
	// SlotSeconds is the slot length (the paper uses 1–5 minutes).
	SlotSeconds int
	// MarketOptions tunes the clearing search.
	MarketOptions core.Options
	// Pricing carries the monetary parameters (DefaultPricing if zero).
	Pricing operator.Pricing
	// Predict tunes spot prediction (Fig. 17's under-prediction factor).
	Predict power.PredictOptions
	// BreakerTolerance is the excursion fraction breakers ride through.
	BreakerTolerance float64
	// Hint, if non-nil, supplies strategic bidders' market information per
	// slot (Fig. 16).
	Hint func(slot int) tenant.MarketHint
	// PriceFeedback, if non-nil, is called after every clearing with the
	// slot's price (0 when no market ran); lets Hint implementations build
	// online predictors (e.g. an EWMA) from realized prices.
	PriceFeedback func(slot int, price float64)
	// Emergency, if non-nil, injects capacity excursions and (optionally)
	// enables the operator's emergency responder. Nil keeps the run
	// bit-identical to a simulator without the emergency subsystem.
	Emergency *EmergencyScenario
	// BidLossProb drops each agent's bid submission with this probability,
	// emulating the Section III-C communication-loss exception: an affected
	// tenant silently falls back to no spot capacity for the slot.
	BidLossProb float64
	// FaultSeed drives the bid-loss process. Every agent derives its own
	// splitmix64 stream from (FaultSeed, agent index), so the randomness an
	// agent consumes is independent of iteration order (see rng.go).
	FaultSeed int64
	// Parallel runs the per-agent work of every slot — PlanBids /
	// MaxPerfRequests, Execute, and per-tenant stats accumulation — on a
	// GOMAXPROCS-bounded worker pool instead of a serial loop. Results are
	// bit-identical to a serial run: each agent's slot work is independent
	// (per-agent fault streams, agent-owned scratch), and every cross-agent
	// merge (bid order, rack readings, slot series, billing) happens
	// serially in agent order either way.
	Parallel bool
}

// EmergencyScenario parameterizes the simulator's emergency-loop harness:
// a deterministic overload schedule that pushes one PDU past its breaker
// tolerance, and the operator-side responder that reclaims spot capacity by
// power-capping the overloading racks (Section III-C).
type EmergencyScenario struct {
	// Responder enables the operator's emergency loop: reclaim planning,
	// spot-sale suspension, and budget restoration (operator.ResponderConfig).
	// Off, excursions are only counted — the historical behavior — so an
	// A/B pair isolates exactly the responder's effect.
	Responder bool
	// EscalationSeverity and RecoverySlots configure the responder (see
	// operator.ResponderConfig; zeros take its defaults).
	EscalationSeverity float64
	RecoverySlots      int
	// OverloadEvery > 0 injects a recurring surge: during the last
	// OverloadDuration slots of every OverloadEvery-slot period, each rack
	// under OverloadPDU draws OverloadRackWatts extra (uncapped tenant
	// sprinting — the overload the responder exists to contain).
	OverloadEvery     int
	OverloadDuration  int
	OverloadRackWatts float64
	OverloadPDU       int
}

func (e *EmergencyScenario) validate(topo *power.Topology) error {
	switch {
	case e.EscalationSeverity < 0:
		return fmt.Errorf("sim: emergency escalation severity %v negative", e.EscalationSeverity)
	case e.RecoverySlots < 0:
		return fmt.Errorf("sim: emergency recovery slots %d negative", e.RecoverySlots)
	case e.OverloadEvery < 0:
		return fmt.Errorf("sim: OverloadEvery %d negative", e.OverloadEvery)
	case e.OverloadRackWatts < 0:
		return fmt.Errorf("sim: OverloadRackWatts %v negative", e.OverloadRackWatts)
	}
	if e.OverloadEvery > 0 {
		if e.OverloadDuration <= 0 || e.OverloadDuration > e.OverloadEvery {
			return fmt.Errorf("sim: OverloadDuration %d outside (0, OverloadEvery=%d]", e.OverloadDuration, e.OverloadEvery)
		}
		if e.OverloadPDU < 0 || e.OverloadPDU >= len(topo.PDUs) {
			return fmt.Errorf("sim: OverloadPDU %d of %d", e.OverloadPDU, len(topo.PDUs))
		}
	}
	return nil
}

func (sc *Scenario) validate() error {
	switch {
	case sc.Topo == nil:
		return errors.New("sim: scenario has nil topology")
	case sc.Slots <= 0:
		return fmt.Errorf("sim: Slots %d must be positive", sc.Slots)
	case sc.SlotSeconds <= 0:
		return fmt.Errorf("sim: SlotSeconds %d must be positive", sc.SlotSeconds)
	case len(sc.OtherLoad) != len(sc.Topo.PDUs):
		return fmt.Errorf("sim: %d other-load traces for %d PDUs", len(sc.OtherLoad), len(sc.Topo.PDUs))
	case sc.BidLossProb < 0 || sc.BidLossProb > 1:
		return fmt.Errorf("sim: BidLossProb %v outside [0,1]", sc.BidLossProb)
	}
	for _, a := range sc.Agents {
		for _, r := range a.Racks() {
			if r < 0 || r >= len(sc.Topo.Racks) {
				return fmt.Errorf("sim: agent %s references rack %d of %d", a.Name(), r, len(sc.Topo.Racks))
			}
		}
	}
	if sc.Emergency != nil {
		if err := sc.Emergency.validate(sc.Topo); err != nil {
			return err
		}
	}
	return nil
}

// TenantStats accumulates one agent's metrics over a run.
type TenantStats struct {
	// Name and Class identify the tenant.
	Name  string
	Class workload.Class
	// Reserved is the agent's total guaranteed capacity in watts.
	Reserved float64
	// NeedSlots counts slots where the tenant needed spot capacity
	// (policy-independent, from its true gain curves); the paper averages
	// performance over exactly these slots.
	NeedSlots int
	// GrantSlots counts slots with a positive spot grant.
	GrantSlots int
	// SLOViolations counts missed-SLO slots (sprinting agents).
	SLOViolations int
	// PerfNeed averages the performance score over need slots.
	PerfNeed stats.Running
	// LatencyNeed averages tail latency over need slots (sprinting).
	LatencyNeed stats.Running
	// GrantFrac tracks the spot grant as a fraction of the guaranteed
	// capacity over need slots (Fig. 12(c)).
	GrantFrac stats.Running
	// Payment is the cumulative spot payment in $.
	Payment float64
	// EnergyKWh is the cumulative energy drawn.
	EnergyKWh float64
	// SpotKWh is the cumulative granted spot energy.
	SpotKWh float64
}

// Result is the outcome of one simulation run.
type Result struct {
	// Name and Mode echo the scenario.
	Name string
	Mode Mode
	// Slots and SlotSeconds echo the horizon.
	Slots       int
	SlotSeconds int
	// Prices holds the clearing price of every slot that sold capacity
	// (Fig. 13(a)).
	Prices []float64
	// PriceSeries holds the clearing price of every slot (zero when no
	// market ran), aligned with the other series (Fig. 10).
	PriceSeries []float64
	// SpotAvailable and SpotSold are UPS-level watts per slot (Fig. 10).
	SpotAvailable []float64
	SpotSold      []float64
	// UPSPower is the realized UPS draw per slot in watts (Fig. 13(b)).
	UPSPower []float64
	// PDUPower is the realized per-PDU draw per slot (Fig. 7(a)).
	PDUPower [][]float64
	// Tenants maps agent name to its accumulated stats.
	Tenants map[string]*TenantStats
	// TenantTraces holds per-slot performance scores per agent (Fig. 11);
	// populated only when Record is set on Run.
	TenantTraces map[string][]float64
	// SpotRevenue is the operator's cumulative spot revenue in $.
	SpotRevenue float64
	// EmergencySlots counts slots with a capacity excursion beyond breaker
	// tolerance.
	EmergencySlots int
	// LongestEmergencyRun is the longest streak of consecutive emergency
	// slots — the excursion duration the responder exists to bound
	// (populated only with Scenario.Emergency set).
	LongestEmergencyRun int
	// EmergenciesActed, ReclaimedWatts, GuaranteedCutWatts, and
	// InvoluntaryCuts mirror the operator's responder totals (all zero when
	// the responder is off): excursions acted on, budget watts reclaimed,
	// guaranteed watts curtailed under escalation, and budget resets that
	// invaded a guarantee.
	EmergenciesActed   int
	ReclaimedWatts     float64
	GuaranteedCutWatts float64
	InvoluntaryCuts    int
	// LostBids counts bid submissions dropped by fault injection.
	LostBids int
	// ClearingTime is the total wall time spent in market clearing, and
	// Clearings the number of clearing rounds (Fig. 7(b)).
	ClearingTime time.Duration
	Clearings    int
	// Operator exposes the operator for profit reporting.
	Operator *operator.Operator
}

// Hours returns the simulated duration in hours.
func (r *Result) Hours() float64 {
	return float64(r.Slots) * float64(r.SlotSeconds) / 3600
}

// Profit returns the operator's profit report for the run.
func (r *Result) Profit(otherLeasedWatts float64) operator.ProfitReport {
	return r.Operator.Profit(r.Hours(), otherLeasedWatts)
}

// RunOptions tunes a simulation run.
type RunOptions struct {
	// Mode selects the scheme (default ModeSpotDC).
	Mode Mode
	// Record enables per-slot tenant performance traces (Fig. 10/11);
	// leave off for year-long runs.
	Record bool
	// Registry, if non-nil, instruments the run: the market core and
	// operator register their families on it (registration is idempotent,
	// so a parallel scenario fan-out may share one registry — counters then
	// aggregate across scenarios) and the simulator counts slots on
	// spotdc_sim_slots_total. Instrumentation never perturbs results: every
	// observation is an atomic side effect of values already computed.
	Registry *metrics.Registry
	// Audit attaches a conservation auditor to the market core (see
	// core.Auditor) and, after the run, reconciles the operator's books
	// (payments vs. revenue) and the simulator's per-tenant payment mirror
	// against the operator's ledger. Any violation fails the run with a
	// descriptive error. Overhead is one O(bids) pass per slot.
	Audit bool
	// Tracer, if non-nil, opens one root span per simulated slot (ModeSpotDC
	// only) with the operator's predict/clear/audit children underneath —
	// the in-process twin of NetRunOptions.Tracer, minus the wire spans.
	Tracer *otrace.Tracer
}

// Run simulates the scenario.
func Run(sc Scenario, opts RunOptions) (*Result, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	var slotsTotal *metrics.Counter
	var opMetrics *operator.Metrics
	if opts.Registry != nil {
		// sc is a by-value copy, so wiring market instrumentation here never
		// mutates the caller's scenario.
		sc.MarketOptions.Metrics = core.NewMarketMetrics(opts.Registry)
		opMetrics = operator.NewMetrics(opts.Registry)
		slotsTotal = opts.Registry.Counter("spotdc_sim_slots_total",
			"Simulated market slots completed, across all scenarios sharing the registry.")
	}
	var aud *core.Auditor
	if opts.Audit {
		// sc is a by-value copy (see the Metrics wiring above), so the
		// auditor never leaks into the caller's scenario.
		aud = &core.Auditor{}
		sc.MarketOptions.Audit = aud
	}
	opCfg := operator.Config{
		Topology:      sc.Topo,
		MarketOptions: sc.MarketOptions,
		Pricing:       sc.Pricing,
		Predict:       sc.Predict,
		Metrics:       opMetrics,
		Tracer:        opts.Tracer,
	}
	var emr *emergencyRunner
	if sc.Emergency != nil {
		if sc.Emergency.Responder {
			// The simulator drives tenant capping controllers directly from
			// op.LastReclaims(), so the operator needs no SetBudget hook.
			opCfg.Emergency = &operator.ResponderConfig{
				EscalationSeverity: sc.Emergency.EscalationSeverity,
				RecoverySlots:      sc.Emergency.RecoverySlots,
			}
		}
		var err error
		emr, err = newEmergencyRunner(sc.Topo, *sc.Emergency)
		if err != nil {
			return nil, err
		}
	}
	op, err := operator.New(opCfg)
	if err != nil {
		return nil, err
	}
	slotHours := float64(sc.SlotSeconds) / 3600
	res := &Result{
		Name:          sc.Name,
		Mode:          opts.Mode,
		Slots:         sc.Slots,
		SlotSeconds:   sc.SlotSeconds,
		PriceSeries:   make([]float64, 0, sc.Slots),
		SpotAvailable: make([]float64, 0, sc.Slots),
		SpotSold:      make([]float64, 0, sc.Slots),
		UPSPower:      make([]float64, 0, sc.Slots),
		PDUPower:      make([][]float64, len(sc.Topo.PDUs)),
		Tenants:       make(map[string]*TenantStats, len(sc.Agents)),
		Operator:      op,
	}
	if opts.Record {
		res.TenantTraces = make(map[string][]float64, len(sc.Agents))
	}
	for _, a := range sc.Agents {
		ts := &TenantStats{Name: a.Name(), Class: a.Class()}
		for _, r := range a.Racks() {
			ts.Reserved += a.ReservedWatts(r)
		}
		if _, dup := res.Tenants[a.Name()]; dup {
			return nil, fmt.Errorf("sim: duplicate agent name %q", a.Name())
		}
		res.Tenants[a.Name()] = ts
	}

	// The reference reading for slot 0: every rack at its guaranteed
	// capacity, others at their first trace point.
	reading := power.Reading{
		RackWatts:     make([]float64, len(sc.Topo.Racks)),
		OtherPDUWatts: make([]float64, len(sc.Topo.PDUs)),
	}
	for i, r := range sc.Topo.Racks {
		reading.RackWatts[i] = r.Guaranteed
	}
	for m := range sc.Topo.PDUs {
		reading.OtherPDUWatts[m] = sc.OtherLoad[m].At(0)
	}

	// Per-agent fault streams: agent i's bid-loss randomness is a pure
	// function of (FaultSeed, i, slot), independent of iteration order.
	var faults []faultStream
	if sc.BidLossProb > 0 {
		faults = make([]faultStream, len(sc.Agents))
		for i := range faults {
			faults[i] = newFaultStream(sc.FaultSeed, i)
		}
	}
	// workers for the per-agent phases: 1 pins the pool to the calling
	// goroutine (a plain loop), 0 resolves to GOMAXPROCS.
	workers := 1
	if sc.Parallel {
		workers = 0
	}
	// Per-agent slot scratch, reused across slots: the parallel phases
	// write each agent's results into its own slot, and the serial merge
	// reads them back in agent order.
	perAgent := make([]agentSlot, len(sc.Agents))
	tsByIdx := make([]*TenantStats, len(sc.Agents))
	for i, a := range sc.Agents {
		tsByIdx[i] = res.Tenants[a.Name()]
	}
	var traces [][]float64
	if opts.Record {
		traces = make([][]float64, len(sc.Agents))
		for i := range traces {
			traces[i] = make([]float64, 0, sc.Slots)
		}
	}
	bids := make([]core.Bid, 0, len(sc.Agents))
	reqs := make([]core.MaxPerfRequest, 0, len(sc.Agents))

	grants := make(map[int]float64)
	for slot := 0; slot < sc.Slots; slot++ {
		hint := tenant.MarketHint{}
		if sc.Hint != nil {
			hint = sc.Hint(slot)
		}
		for k := range grants {
			delete(grants, k)
		}
		price, sold, avail := 0.0, 0.0, 0.0

		switch opts.Mode {
		case ModeSpotDC:
			// Plan phase (parallel across agents): draw the agent's fault
			// variate and plan its bids. The merge below is serial in agent
			// order, so the submitted bid order matches a serial run.
			par.For(workers, len(sc.Agents), func(i int) {
				as := &perAgent[i]
				as.bids, as.lost = nil, false
				if faults != nil && faults[i].Float64() < sc.BidLossProb {
					// Communication loss: the submission never arrives and
					// the tenant defaults to no spot capacity this slot.
					as.lost = true
					return
				}
				as.bids = sc.Agents[i].PlanBids(slot, hint)
			})
			bids = bids[:0]
			for i := range perAgent {
				if perAgent[i].lost {
					res.LostBids++
					continue
				}
				bids = append(bids, perAgent[i].bids...)
			}
			root := opts.Tracer.StartRoot("slot", slot)
			if root != nil {
				root.SetInt("bids", int64(len(bids)))
				op.SetTraceParent(root)
			}
			out, err := op.RunSlot(bids, reading, slotHours)
			if root != nil {
				op.SetTraceParent(nil)
				if err != nil {
					root.ForceSample()
					root.SetStr("error", err.Error())
				} else {
					root.SetFloat("price", out.Result.Price)
					root.SetFloat("sold_watts", out.Result.TotalWatts)
				}
				root.End()
			}
			if err != nil {
				return nil, fmt.Errorf("sim: slot %d: %w", slot, err)
			}
			// Time only the market clearing itself (out.ClearDuration), not
			// prediction + feasibility + billing: Fig. 7(b) measures the
			// clearing algorithm's scaling.
			res.ClearingTime += out.ClearDuration
			res.Clearings++
			for _, a := range out.Result.Allocations {
				if a.Watts > 0 {
					grants[a.Rack] += a.Watts
				}
			}
			price, sold, avail = out.Result.Price, out.Result.TotalWatts, out.Spot.UPSWatts
			if sold > 0 {
				res.Prices = append(res.Prices, price)
			}
			// Per-tenant billing for this slot.
			for _, alloc := range out.Result.Allocations {
				if alloc.Watts > 0 && alloc.Tenant != "" {
					if ts := res.Tenants[alloc.Tenant]; ts != nil {
						ts.Payment += out.Result.Price * alloc.Watts / 1000 * slotHours
					}
				}
			}
		case ModeMaxPerf:
			par.For(workers, len(sc.Agents), func(i int) {
				perAgent[i].reqs = sc.Agents[i].MaxPerfRequests(slot)
			})
			reqs = reqs[:0]
			for i := range perAgent {
				reqs = append(reqs, perAgent[i].reqs...)
			}
			allocs, spot, err := op.MaxPerfSlot(reqs, reading)
			if err != nil {
				return nil, fmt.Errorf("sim: slot %d: %w", slot, err)
			}
			for _, a := range allocs {
				if a.Watts > 0 {
					grants[a.Rack] += a.Watts
					sold += a.Watts
				}
			}
			avail = spot.UPSWatts
		case ModePowerCapped:
			// No market, no grants.
		default:
			return nil, fmt.Errorf("sim: unknown mode %v", opts.Mode)
		}

		// Execute phase (parallel across agents): run every agent's slot and
		// accumulate its per-tenant stats — each agent touches only its own
		// TenantStats and trace row, so the accumulation order (and hence
		// every floating-point sum) is identical to a serial run.
		for m := range sc.Topo.PDUs {
			reading.OtherPDUWatts[m] = sc.OtherLoad[m].At(slot)
		}
		par.For(workers, len(sc.Agents), func(i int) {
			a := sc.Agents[i]
			needed := len(a.MaxPerfRequests(slot)) > 0
			slotRes := a.Execute(slot, grants) // grants is read-only here
			perAgent[i].res = slotRes
			ts := tsByIdx[i]
			ts.EnergyKWh += slotRes.PowerWatts / 1000 * slotHours
			ts.SpotKWh += slotRes.SpotGrantWatts / 1000 * slotHours
			if slotRes.SpotGrantWatts > 0 {
				ts.GrantSlots++
			}
			if slotRes.SLOViolated {
				ts.SLOViolations++
			}
			if needed {
				ts.NeedSlots++
				ts.PerfNeed.Observe(slotRes.PerfScore)
				if a.Class() == workload.Sprinting {
					ts.LatencyNeed.Observe(slotRes.LatencyMS)
				}
				if ts.Reserved > 0 {
					ts.GrantFrac.Observe(slotRes.SpotGrantWatts / ts.Reserved)
				}
			}
			if opts.Record {
				traces[i] = append(traces[i], slotRes.PerfScore)
			}
		})
		// Serial merge in agent order: assemble the realized rack reading
		// (later agents win shared racks, exactly as the serial loop did).
		for i := range perAgent {
			for rack, w := range perAgent[i].res.PowerByRack {
				reading.RackWatts[rack] = w
			}
		}

		if sc.PriceFeedback != nil {
			sc.PriceFeedback(slot, price)
		}
		if emr != nil {
			// Overload surge and tenant-side capping run on the slot
			// goroutine, so serial and parallel runs stay bit-identical.
			emr.apply(slot, reading)
		}
		if em := op.ObserveEmergencies(reading, sc.BreakerTolerance); len(em) > 0 {
			res.EmergencySlots++
			if emr != nil {
				emr.run++
				if emr.run > res.LongestEmergencyRun {
					res.LongestEmergencyRun = emr.run
				}
			}
		} else if emr != nil {
			emr.run = 0
		}
		if emr != nil {
			emr.absorb(op)
		}
		res.PriceSeries = append(res.PriceSeries, price)
		res.SpotSold = append(res.SpotSold, sold)
		res.SpotAvailable = append(res.SpotAvailable, avail)
		res.UPSPower = append(res.UPSPower, sc.Topo.UPSPower(reading))
		for m := range sc.Topo.PDUs {
			res.PDUPower[m] = append(res.PDUPower[m], sc.Topo.PDUPower(reading, m))
		}
		slotsTotal.Inc() // nil-safe: no-op when uninstrumented
	}
	if opts.Record {
		for i, a := range sc.Agents {
			res.TenantTraces[a.Name()] = traces[i]
		}
	}
	res.SpotRevenue = op.SpotRevenue()
	res.EmergenciesActed = op.EmergenciesActed()
	res.ReclaimedWatts = op.ReclaimedWatts()
	res.GuaranteedCutWatts = op.GuaranteedCutWatts()
	res.InvoluntaryCuts = op.InvoluntaryCuts()
	if opts.Audit {
		if err := auditRun(aud, op, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// auditRun applies the post-run conservation checks of RunOptions.Audit:
// the inline auditor must be clean, the operator's books must reconcile,
// and the simulator's per-tenant payment mirror must match the operator's
// ledger (they are accumulated independently, so a drift means one of the
// two billing paths dropped or double-counted a line item).
func auditRun(aud *core.Auditor, op *operator.Operator, res *Result) error {
	if n := aud.Violations(); n > 0 {
		return fmt.Errorf("sim: audit found %d clearing violation(s): %w", n, aud.Err())
	}
	if err := op.ReconcileAccounts(); err != nil {
		return fmt.Errorf("sim: audit: %w", err)
	}
	for name, ts := range res.Tenants {
		want := op.PaymentOf(name)
		if d := math.Abs(ts.Payment - want); d > 1e-9*(1+math.Abs(want)) {
			return fmt.Errorf("sim: audit: tenant %s paid $%v in sim books, $%v in operator ledger (Δ %g)",
				name, ts.Payment, want, d)
		}
	}
	return nil
}

// emergencyRunner holds the per-run state of the emergency harness: the
// overload schedule and, with the responder on, one capping controller per
// rack modelling the tenant side of the loop — it tracks whatever budget
// the operator's reclaim plans push down, with PI settle dynamics instead
// of an instantaneous cut.
type emergencyRunner struct {
	cfg   EmergencyScenario
	topo  *power.Topology
	ctrls []*capping.Controller // per rack; nil without the responder
	peaks []float64             // per-rack model peak (guaranteed + headroom + surge)
	caped []bool                // racks under an active reclaim budget
	run   int                   // consecutive emergency slots
}

func newEmergencyRunner(topo *power.Topology, cfg EmergencyScenario) (*emergencyRunner, error) {
	e := &emergencyRunner{
		cfg:   cfg,
		topo:  topo,
		peaks: make([]float64, len(topo.Racks)),
		caped: make([]bool, len(topo.Racks)),
	}
	for i, r := range topo.Racks {
		e.peaks[i] = r.Guaranteed + r.SpotHeadroom + cfg.OverloadRackWatts
	}
	if !cfg.Responder {
		return e, nil
	}
	e.ctrls = make([]*capping.Controller, len(topo.Racks))
	for i := range topo.Racks {
		c, err := capping.New(capping.Config{
			Model:         capping.ServerModel{IdleWatts: 0, PeakWatts: e.peaks[i]},
			InitialBudget: e.peaks[i],
		})
		if err != nil {
			return nil, fmt.Errorf("sim: emergency controller for rack %d: %v", i, err)
		}
		e.ctrls[i] = c
	}
	return e, nil
}

// overloadActive reports whether the surge schedule is on for the slot.
func (e *emergencyRunner) overloadActive(slot int) bool {
	return e.cfg.OverloadEvery > 0 &&
		slot%e.cfg.OverloadEvery >= e.cfg.OverloadEvery-e.cfg.OverloadDuration
}

// apply mutates the merged slot reading: first the injected surge (the
// uncapped demand), then the standing caps — racks under a reclaim budget
// settle their capping controller against the offered load and report the
// capped draw instead.
func (e *emergencyRunner) apply(slot int, reading power.Reading) {
	if e.overloadActive(slot) {
		for _, r := range e.topo.RacksOfPDU(e.cfg.OverloadPDU) {
			reading.RackWatts[r] += e.cfg.OverloadRackWatts
		}
	}
	for r, c := range e.ctrls {
		if c == nil || !e.caped[r] {
			continue
		}
		raw := reading.RackWatts[r]
		watts, _ := c.Settle(raw/e.peaks[r], 0.1, 50)
		if watts < raw {
			reading.RackWatts[r] = watts
		}
	}
}

// absorb folds the operator's slot outcome into tenant-side state: reclaim
// plans arm a rack's controller at the reduced budget, restores lift it.
func (e *emergencyRunner) absorb(op *operator.Operator) {
	if e.ctrls == nil {
		return
	}
	for _, plan := range op.LastReclaims() {
		for _, t := range plan.Targets {
			if c := e.ctrls[t.Rack]; c != nil {
				_ = c.SetBudget(t.BudgetWatts)
				e.caped[t.Rack] = true
			}
		}
	}
	for _, plan := range op.LastRestores() {
		for _, t := range plan.Targets {
			if c := e.ctrls[t.Rack]; c != nil {
				_ = c.SetBudget(t.BudgetWatts)
				e.caped[t.Rack] = false
			}
		}
	}
}

// agentSlot is one agent's per-slot scratch: the parallel phases write
// into it, the serial merges read it back in agent order.
type agentSlot struct {
	// bids / lost carry the plan phase (ModeSpotDC).
	bids []core.Bid
	lost bool
	// reqs carries the MaxPerf plan phase.
	reqs []core.MaxPerfRequest
	// res carries the execute phase.
	res tenant.SlotResult
}

// TenantCost computes a tenant's total cost over the run in dollars:
// guaranteed-capacity subscription + metered energy + spot payments
// (Fig. 12(a)).
func TenantCost(r *Result, pricing operator.Pricing, name string) (float64, error) {
	ts, ok := r.Tenants[name]
	if !ok {
		return 0, fmt.Errorf("sim: unknown tenant %q", name)
	}
	hours := r.Hours()
	subscription := pricing.GuaranteedRevenueRate(ts.Reserved) * hours
	energy := ts.EnergyKWh * pricing.EnergyPerKWh
	return subscription + energy + ts.Payment, nil
}
