package sim

import (
	"reflect"
	"runtime"
	"testing"
)

// scrub zeroes the fields that are legitimately allowed to differ between a
// serial and a parallel run: ClearingTime is wall time, and Operator is a
// live object whose observable outputs (revenue, prices, grants) are already
// captured in the Result series.
func scrub(r *Result) {
	r.ClearingTime = 0
	r.Operator = nil
}

// TestParallelMatchesSerial is the bit-reproducibility contract of
// Scenario.Parallel: with per-agent fault streams derived from (FaultSeed,
// agent index), a parallel run must produce exactly the same Result — every
// price, grant, payment and lost bid — as a serial run of the same scenario.
// It forces GOMAXPROCS >= 4 so the parallel phases really fan out even on a
// single-core CI machine.
func TestParallelMatchesSerial(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	for _, seed := range []int64{1, 7, 42} {
		for _, mode := range []Mode{ModeSpotDC, ModeMaxPerf} {
			opt := TestbedOptions{Seed: seed, Slots: 120}
			run := func(parallel bool) *Result {
				t.Helper()
				sc := testbedScenario(t, opt)
				sc.Parallel = parallel
				// Fault injection exercises the per-agent RNG streams, the
				// part that historically made parallel runs diverge.
				sc.BidLossProb = 0.10
				sc.FaultSeed = seed + 99
				res, err := Run(sc, RunOptions{Mode: mode, Record: true})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			serial, parallel := run(false), run(true)
			if serial.LostBids == 0 && mode == ModeSpotDC {
				t.Errorf("seed %d: fault injection inert (0 lost bids); test not exercising RNG streams", seed)
			}
			wantRevenue, gotRevenue := serial.SpotRevenue, parallel.SpotRevenue
			scrub(serial)
			scrub(parallel)
			if !reflect.DeepEqual(serial, parallel) {
				t.Errorf("seed %d mode %v: parallel run diverged from serial (revenue %v vs %v)",
					seed, mode, wantRevenue, gotRevenue)
			}
		}
	}
}

// TestParallelMatchesSerialScaled repeats the contract on the scaled
// scenario (more racks per agent, rationing path), which stresses the
// reusable per-slot buffers under a different topology.
func TestParallelMatchesSerialScaled(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	opt := ScaledOptions{Testbed: TestbedOptions{Seed: 3, Slots: 60}, Tenants: 48}
	run := func(parallel bool) *Result {
		t.Helper()
		opt.Testbed.Parallel = parallel
		sc, err := Scaled(opt)
		if err != nil {
			t.Fatal(err)
		}
		sc.BidLossProb = 0.05
		sc.FaultSeed = 17
		res, err := Run(sc, RunOptions{Mode: ModeSpotDC})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, parallel := run(false), run(true)
	scrub(serial)
	scrub(parallel)
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("scaled parallel run diverged from serial")
	}
}
