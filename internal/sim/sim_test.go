package sim

import (
	"strings"
	"testing"

	"spotdc/internal/operator"
	"spotdc/internal/stats"
	"spotdc/internal/tenant"
	"spotdc/internal/workload"
)

func testbedScenario(t *testing.T, opt TestbedOptions) Scenario {
	t.Helper()
	sc, err := Testbed(opt)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestModeString(t *testing.T) {
	if ModeSpotDC.String() != "SpotDC" || ModePowerCapped.String() != "PowerCapped" || ModeMaxPerf.String() != "MaxPerf" {
		t.Error("mode strings wrong")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode should print")
	}
}

func TestScenarioValidation(t *testing.T) {
	sc := testbedScenario(t, TestbedOptions{Seed: 1, Slots: 5})
	bad := sc
	bad.Topo = nil
	if _, err := Run(bad, RunOptions{}); err == nil {
		t.Error("nil topo accepted")
	}
	bad = sc
	bad.Slots = 0
	if _, err := Run(bad, RunOptions{}); err == nil {
		t.Error("zero slots accepted")
	}
	bad = sc
	bad.SlotSeconds = 0
	if _, err := Run(bad, RunOptions{}); err == nil {
		t.Error("zero slot seconds accepted")
	}
	bad = sc
	bad.OtherLoad = bad.OtherLoad[:1]
	if _, err := Run(bad, RunOptions{}); err == nil {
		t.Error("trace/PDU mismatch accepted")
	}
	bad = sc
	bad.Agents = append([]tenant.Agent{}, bad.Agents...)
	bad.Agents[0] = &tenant.Opp{TenantName: "ghost", RackIndex: 99, Model: workload.GraphModel(),
		Backlog: bad.OtherLoad[0], Reserved: 10, Headroom: 10}
	if _, err := Run(bad, RunOptions{}); err == nil {
		t.Error("out-of-range rack accepted")
	}
}

func TestTestbedTopologyMatchesTableI(t *testing.T) {
	sc := testbedScenario(t, TestbedOptions{Seed: 1, Slots: 5})
	topo := sc.Topo
	if len(topo.PDUs) != 2 || topo.PDUs[0].Capacity != 715 || topo.PDUs[1].Capacity != 724 {
		t.Errorf("PDUs = %+v", topo.PDUs)
	}
	if topo.UPSCapacity != 1370 {
		t.Errorf("UPS = %v", topo.UPSCapacity)
	}
	if len(topo.Racks) != 8 || len(sc.Agents) != 8 {
		t.Errorf("racks=%d agents=%d, want 8/8", len(topo.Racks), len(sc.Agents))
	}
	// Table I subscriptions: 500 W participating on PDU#1, 510 W on PDU#2.
	if got := topo.GuaranteedOfPDU(0); got != 500 {
		t.Errorf("PDU#1 guaranteed = %v", got)
	}
	if got := topo.GuaranteedOfPDU(1); got != 510 {
		t.Errorf("PDU#2 guaranteed = %v", got)
	}
	// 5% oversubscription at each PDU including the 250 W "Other" leases.
	if os := (500.0 + 250) / 715; os < 1.04 || os > 1.06 {
		t.Errorf("PDU#1 oversubscription = %v", os)
	}
	classes := map[workload.Class]int{}
	for _, a := range sc.Agents {
		classes[a.Class()]++
	}
	if classes[workload.Sprinting] != 3 || classes[workload.Opportunistic] != 5 {
		t.Errorf("composition = %v, want 3 sprinting / 5 opportunistic", classes)
	}
}

func TestRunSpotDCShortTrace(t *testing.T) {
	sc := testbedScenario(t, TestbedOptions{Seed: 7, Slots: 10, OtherVolatility: 0.08})
	res, err := Run(sc, RunOptions{Mode: ModeSpotDC, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots != 10 || len(res.PriceSeries) != 10 || len(res.UPSPower) != 10 {
		t.Fatalf("series lengths: %d %d %d", res.Slots, len(res.PriceSeries), len(res.UPSPower))
	}
	if len(res.PDUPower) != 2 || len(res.PDUPower[0]) != 10 {
		t.Fatalf("PDU series: %d", len(res.PDUPower))
	}
	if len(res.Tenants) != 8 {
		t.Fatalf("tenants = %d", len(res.Tenants))
	}
	for name, traceVals := range res.TenantTraces {
		if len(traceVals) != 10 {
			t.Errorf("trace %s has %d points", name, len(traceVals))
		}
	}
	// Spot sold never exceeds spot available.
	for i := range res.SpotSold {
		if res.SpotSold[i] > res.SpotAvailable[i]+1e-6 {
			t.Errorf("slot %d sold %v > available %v", i, res.SpotSold[i], res.SpotAvailable[i])
		}
	}
	if res.Hours() != 10*120.0/3600 {
		t.Errorf("Hours = %v", res.Hours())
	}
}

func TestRunYearLikeHorizonSellsSpot(t *testing.T) {
	// A week of 2-minute slots: long enough for bursts and backlog episodes
	// to appear at their configured rates.
	sc := testbedScenario(t, TestbedOptions{Seed: 3, Slots: 7 * 24 * 30})
	res, err := Run(sc, RunOptions{Mode: ModeSpotDC})
	if err != nil {
		t.Fatal(err)
	}
	if res.SpotRevenue <= 0 {
		t.Fatal("no spot revenue over a week")
	}
	if len(res.Prices) == 0 {
		t.Fatal("no clearing prices recorded")
	}
	// Participation rates should be in the neighbourhood of the configured
	// 15% (sprinting) and 30% (opportunistic).
	for name, ts := range res.Tenants {
		frac := float64(ts.NeedSlots) / float64(res.Slots)
		switch ts.Class {
		case workload.Sprinting:
			if frac < 0.03 || frac > 0.4 {
				t.Errorf("%s need fraction %.3f implausible for burst-driven sprinting", name, frac)
			}
		case workload.Opportunistic:
			if frac < 0.15 || frac > 0.45 {
				t.Errorf("%s need fraction %.3f implausible for 30%% backlog", name, frac)
			}
		}
		if ts.EnergyKWh <= 0 {
			t.Errorf("%s consumed no energy", name)
		}
	}
	// Opportunistic tenants pay no more than their max price implies.
	for _, p := range res.Prices {
		if p < 0 {
			t.Errorf("negative price %v", p)
		}
	}
}

func TestRunModesOrdering(t *testing.T) {
	// The paper's central comparison (Fig. 12(b)): PowerCapped ≤ SpotDC ≤
	// MaxPerf in performance for participating tenants, and only SpotDC
	// produces operator revenue.
	opt := TestbedOptions{Seed: 11, Slots: 2000}
	scCap := testbedScenario(t, opt)
	scSpot := testbedScenario(t, opt)
	scMax := testbedScenario(t, opt)

	capped, err := Run(scCap, RunOptions{Mode: ModePowerCapped})
	if err != nil {
		t.Fatal(err)
	}
	spot, err := Run(scSpot, RunOptions{Mode: ModeSpotDC})
	if err != nil {
		t.Fatal(err)
	}
	maxperf, err := Run(scMax, RunOptions{Mode: ModeMaxPerf})
	if err != nil {
		t.Fatal(err)
	}
	if capped.SpotRevenue != 0 || maxperf.SpotRevenue != 0 {
		t.Errorf("baselines billed: capped=%v maxperf=%v", capped.SpotRevenue, maxperf.SpotRevenue)
	}
	if spot.SpotRevenue <= 0 {
		t.Fatal("SpotDC earned nothing")
	}
	better, total := 0, 0
	for name, ts := range spot.Tenants {
		base := capped.Tenants[name]
		mp := maxperf.Tenants[name]
		if ts.NeedSlots == 0 {
			continue
		}
		total++
		if ts.PerfNeed.Mean() >= base.PerfNeed.Mean()-1e-9 {
			better++
		}
		// MaxPerf should not be materially worse than SpotDC on average.
		if mp.PerfNeed.Mean() < ts.PerfNeed.Mean()*0.9 {
			t.Errorf("%s: MaxPerf perf %v well below SpotDC %v", name, mp.PerfNeed.Mean(), ts.PerfNeed.Mean())
		}
	}
	if total == 0 {
		t.Fatal("no tenant ever needed spot capacity")
	}
	if better < total {
		t.Errorf("only %d/%d tenants at least as good under SpotDC as capped", better, total)
	}
	// PowerCapped must show SLO violations that SpotDC reduces.
	capViol, spotViol := 0, 0
	for name, ts := range capped.Tenants {
		if ts.Class == workload.Sprinting {
			capViol += ts.SLOViolations
			spotViol += spot.Tenants[name].SLOViolations
		}
	}
	if capViol == 0 {
		t.Error("premise: PowerCapped should violate SLOs sometimes")
	}
	if spotViol >= capViol {
		t.Errorf("SpotDC violations %d not below PowerCapped %d", spotViol, capViol)
	}
}

func TestRunDeterministic(t *testing.T) {
	opt := TestbedOptions{Seed: 5, Slots: 200}
	a, err := Run(testbedScenario(t, opt), RunOptions{Mode: ModeSpotDC})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testbedScenario(t, opt), RunOptions{Mode: ModeSpotDC})
	if err != nil {
		t.Fatal(err)
	}
	if a.SpotRevenue != b.SpotRevenue {
		t.Errorf("revenue differs: %v vs %v", a.SpotRevenue, b.SpotRevenue)
	}
	for i := range a.PriceSeries {
		if a.PriceSeries[i] != b.PriceSeries[i] {
			t.Fatalf("price series differs at %d", i)
		}
	}
}

func TestTenantCost(t *testing.T) {
	sc := testbedScenario(t, TestbedOptions{Seed: 5, Slots: 500})
	res, err := Run(sc, RunOptions{Mode: ModeSpotDC})
	if err != nil {
		t.Fatal(err)
	}
	pricing := operator.DefaultPricing()
	cost, err := TenantCost(res, pricing, "Search-1")
	if err != nil {
		t.Fatal(err)
	}
	ts := res.Tenants["Search-1"]
	// Subscription dominates: spot payments are a marginal addition.
	subscription := pricing.GuaranteedRevenueRate(ts.Reserved) * res.Hours()
	if cost < subscription {
		t.Errorf("cost %v below subscription %v", cost, subscription)
	}
	if ts.Payment > 0.05*cost {
		t.Errorf("spot payment %v is %.1f%% of cost %v; paper says marginal", ts.Payment, 100*ts.Payment/cost, cost)
	}
	if _, err := TenantCost(res, pricing, "nobody"); err == nil {
		t.Error("unknown tenant accepted")
	}
}

func TestEmergenciesDoNotIncreaseWithSpot(t *testing.T) {
	// Section V-B2: spot capacity must not introduce additional
	// emergencies, because it is only sold out of measured headroom.
	opt := TestbedOptions{Seed: 13, Slots: 3000, OtherVolatility: 0.03}
	capped, err := Run(testbedScenario(t, opt), RunOptions{Mode: ModePowerCapped})
	if err != nil {
		t.Fatal(err)
	}
	spot, err := Run(testbedScenario(t, opt), RunOptions{Mode: ModeSpotDC})
	if err != nil {
		t.Fatal(err)
	}
	// Allow a tiny slack: spot users run hotter within their grants, so a
	// coincident other-load spike can differ by a slot or two.
	if spot.EmergencySlots > capped.EmergencySlots+int(0.002*float64(opt.Slots))+1 {
		t.Errorf("SpotDC emergencies %d well above PowerCapped %d", spot.EmergencySlots, capped.EmergencySlots)
	}
}

func TestScaledScenario(t *testing.T) {
	sc, err := Scaled(ScaledOptions{
		Testbed:    TestbedOptions{Seed: 2, Slots: 50},
		Tenants:    40,
		JitterFrac: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Agents) != 40 {
		t.Fatalf("agents = %d", len(sc.Agents))
	}
	if len(sc.Topo.PDUs) != 10 { // 5 replicas × 2 PDUs
		t.Errorf("PDUs = %d", len(sc.Topo.PDUs))
	}
	if len(sc.Topo.Racks) != 40 {
		t.Errorf("racks = %d", len(sc.Topo.Racks))
	}
	// Jitter must hold reservations within ±20% of the Table I values.
	for _, r := range sc.Topo.Racks {
		base := 0.0
		switch {
		case strings.HasPrefix(r.ID, "S-1/") || strings.HasPrefix(r.ID, "S-3/"):
			base = 145
		case strings.HasPrefix(r.ID, "S-2/") || strings.HasPrefix(r.ID, "O-2/") || strings.HasPrefix(r.ID, "O-5/"):
			base = 115
		default:
			base = 125
		}
		if r.Guaranteed < base*0.79 || r.Guaranteed > base*1.21 {
			t.Errorf("rack %s guaranteed %v outside ±20%% of %v", r.ID, r.Guaranteed, base)
		}
	}
	res, err := Run(sc, RunOptions{Mode: ModeSpotDC})
	if err != nil {
		t.Fatal(err)
	}
	if res.SpotRevenue <= 0 {
		t.Error("scaled run earned nothing")
	}
	if res.Clearings != 50 {
		t.Errorf("clearings = %d", res.Clearings)
	}
}

func TestScaledValidation(t *testing.T) {
	if _, err := Scaled(ScaledOptions{Tenants: 0}); err == nil {
		t.Error("zero tenants accepted")
	}
	if _, err := Scaled(ScaledOptions{Tenants: 8, JitterFrac: 1.5}); err == nil {
		t.Error("bad jitter accepted")
	}
}

func TestUnderPredictionReducesOfferedSpot(t *testing.T) {
	opt := TestbedOptions{Seed: 9, Slots: 300}
	plain, err := Run(testbedScenario(t, opt), RunOptions{Mode: ModeSpotDC})
	if err != nil {
		t.Fatal(err)
	}
	optU := opt
	optU.UnderPrediction = 0.5
	under, err := Run(testbedScenario(t, optU), RunOptions{Mode: ModeSpotDC})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Mean(under.SpotAvailable) >= stats.Mean(plain.SpotAvailable) {
		t.Errorf("under-prediction did not reduce offered spot: %v vs %v",
			stats.Mean(under.SpotAvailable), stats.Mean(plain.SpotAvailable))
	}
}

func TestHintReachesAgents(t *testing.T) {
	called := 0
	opt := TestbedOptions{Seed: 4, Slots: 20, Policy: tenant.PolicyPricePredict,
		Hint: func(slot int) tenant.MarketHint {
			called++
			return tenant.MarketHint{PredictedPrice: 0.2, HavePrediction: true}
		}}
	sc := testbedScenario(t, opt)
	if _, err := Run(sc, RunOptions{Mode: ModeSpotDC}); err != nil {
		t.Fatal(err)
	}
	if called != 20 {
		t.Errorf("hint called %d times, want 20", called)
	}
}
