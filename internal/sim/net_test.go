package sim

import (
	"strings"
	"testing"
	"time"

	"spotdc/internal/proto"
)

func TestNetRunCleanFaultFree(t *testing.T) {
	sc := testbedScenario(t, TestbedOptions{Seed: 21, Slots: 40})
	res, err := NetRun(sc, NetRunOptions{SlotLen: 15 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cleared != 40 || res.SlotErrors != 0 {
		t.Errorf("cleared=%d errors=%d, want 40/0", res.Cleared, res.SlotErrors)
	}
	if res.BreakerTripped {
		t.Error("breaker tripped on a fault-free run")
	}
	if res.InfeasibleSlots != 0 {
		t.Errorf("%d infeasible allocations on a fault-free run", res.InfeasibleSlots)
	}
	var zero proto.FaultStats
	if res.BidFaults != zero || res.BroadcastFaults != zero {
		t.Errorf("faults injected without a plan: bid=%+v bcast=%+v", res.BidFaults, res.BroadcastFaults)
	}
	if len(res.Tenants) != 8 {
		t.Fatalf("tenants = %d", len(res.Tenants))
	}
	grants, bidSlots := 0, 0
	for name, ts := range res.Tenants {
		if ts.DialFailed {
			t.Errorf("%s never joined without faults", name)
		}
		if ts.SubmitFailures != 0 {
			t.Errorf("%s: %d submit failures without faults", name, ts.SubmitFailures)
		}
		if ts.Reconnects != 0 {
			t.Errorf("%s reconnected %d times without faults", name, ts.Reconnects)
		}
		grants += ts.GrantSlots
		bidSlots += ts.BidSlots
	}
	if bidSlots == 0 {
		t.Fatal("no tenant ever bid")
	}
	if grants == 0 {
		t.Error("no spot granted over the whole clean run")
	}
	if res.SpotRevenue <= 0 {
		t.Error("clean networked run earned nothing")
	}
	if s := res.String(); !strings.Contains(s, "40/40 slots cleared") {
		t.Errorf("String() = %q", s)
	}
}

// TestNetRunSeededFaultSchedule is the Section III-C acceptance run: 220
// slots over real TCP with seeded bid loss, broadcast loss, connection
// severing, and one forced RunSlot failure. The market must complete every
// slot, keep every broadcast allocation feasible, and degrade affected
// tenants to the no-spot default instead of stalling.
func TestNetRunSeededFaultSchedule(t *testing.T) {
	sc := testbedScenario(t, TestbedOptions{Seed: 17, Slots: 220})
	res, err := NetRun(sc, NetRunOptions{
		SlotLen: 15 * time.Millisecond,
		BidFaults: proto.FaultPlan{
			Seed: 1, DropProb: 0.08, DelayProb: 0.05, MaxDelay: 3 * time.Millisecond, SeverProb: 0.02,
		},
		BroadcastFaults: proto.FaultPlan{
			Seed: 2, DropProb: 0.05, DelayProb: 0.05, MaxDelay: 3 * time.Millisecond, SeverProb: 0.01,
		},
		ErrorSlots:             []int{60},
		MaxConsecutiveFailures: 5,
		Reconnect:              true,
		SessionTTL:             150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every slot completes: 219 clear, the poisoned slot degrades.
	if res.Cleared != 219 {
		t.Errorf("cleared = %d, want 219", res.Cleared)
	}
	if res.SlotErrors != 1 {
		t.Errorf("slot errors = %d, want 1 (the poisoned reading)", res.SlotErrors)
	}
	if res.BreakerTripped {
		t.Error("a single failure tripped the breaker (max 5)")
	}
	// The invariant of the paper: no broadcast allocation is ever
	// infeasible, no matter what the transport does.
	if res.InfeasibleSlots != 0 {
		t.Errorf("%d infeasible allocations under faults", res.InfeasibleSlots)
	}
	// The schedule actually fired in both directions.
	if res.BidFaults.Drops == 0 || res.BidFaults.Severs == 0 {
		t.Errorf("bid faults never fired: %+v", res.BidFaults)
	}
	if res.BroadcastFaults.Drops == 0 {
		t.Errorf("broadcast faults never fired: %+v", res.BroadcastFaults)
	}
	grants, noSpot, reconnects := 0, 0, 0
	for name, ts := range res.Tenants {
		if ts.DialFailed {
			t.Errorf("%s never joined despite dial retries", name)
		}
		grants += ts.GrantSlots
		noSpot += ts.NoSpotSlots
		reconnects += ts.Reconnects
	}
	// Affected tenants default to no spot capacity…
	if noSpot == 0 {
		t.Error("no tenant ever hit the no-spot default under this schedule")
	}
	// …but the market still functions: grants flow and severed tenants
	// rejoin via auto-reconnect.
	if grants == 0 {
		t.Error("no spot granted across the faulty run")
	}
	if reconnects == 0 {
		t.Error("no client ever reconnected despite injected severs")
	}
	if res.SpotRevenue <= 0 {
		t.Error("faulty run earned nothing")
	}
}

func TestNetRunValidation(t *testing.T) {
	sc := testbedScenario(t, TestbedOptions{Seed: 1, Slots: 5})
	if _, err := NetRun(sc, NetRunOptions{BidFaults: proto.FaultPlan{DropProb: 2}}); err == nil {
		t.Error("invalid bid fault plan accepted")
	}
	if _, err := NetRun(sc, NetRunOptions{BroadcastFaults: proto.FaultPlan{SeverProb: -1}}); err == nil {
		t.Error("invalid broadcast fault plan accepted")
	}
	bad := sc
	bad.Slots = 0
	if _, err := NetRun(bad, NetRunOptions{}); err == nil {
		t.Error("invalid scenario accepted")
	}
}
