package sim

// Per-agent deterministic randomness for fault injection.
//
// The slot loop used to draw bid-loss variates from one shared *rand.Rand
// in agent order, which welds the random sequence to the iteration order —
// exactly what intra-slot agent parallelism breaks. Instead, every agent
// owns an independent splitmix64 stream derived from the scenario
// FaultSeed and the agent's index, and draws exactly one variate per
// SpotDC slot. The randomness an agent consumes is then a pure function of
// (FaultSeed, agent index, slot), so parallel and serial slot loops are
// bit-identical regardless of goroutine scheduling.

// splitmix64Gamma is Steele et al.'s golden-ratio increment.
const splitmix64Gamma = 0x9E3779B97F4A7C15

// mix64 is the splitmix64 output finalizer (Steele, Lea & Flood,
// "Fast Splittable Pseudorandom Number Generators", OOPSLA'14).
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// faultStream is one agent's bid-loss RNG stream.
type faultStream struct{ state uint64 }

// newFaultStream derives agent i's stream from the scenario seed: the
// (seed, agent) pair is folded through two finalizer rounds so streams of
// adjacent agents (and adjacent seeds) are statistically independent.
func newFaultStream(seed int64, agent int) faultStream {
	s := mix64(uint64(seed) + splitmix64Gamma*uint64(agent+1))
	return faultStream{state: mix64(s)}
}

// next advances the stream.
func (f *faultStream) next() uint64 {
	f.state += splitmix64Gamma
	return mix64(f.state)
}

// Float64 returns a uniform variate in [0, 1) with 53 random bits.
func (f *faultStream) Float64() float64 {
	return float64(f.next()>>11) / (1 << 53)
}
