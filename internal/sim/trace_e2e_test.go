package sim

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"spotdc/internal/metrics"
	"spotdc/internal/otrace"
	"spotdc/internal/proto"
	"spotdc/internal/wal"
)

// trace_e2e_test.go pins the slot-lifecycle tracing end to end (DESIGN
// §4i): a seeded 220-slot networked run at 100% sampling must yield
// exactly one root span per journaled slot, stage children covering
// predict/clear/WAL/broadcast on every cleared slot, the degraded-slot
// shape on the fault-schedule slot, and tenant submit spans adopted into
// the operator's slot trace across both wire encodings.

// spanIndex groups one journal's records for assertion.
type spanIndex struct {
	all     []otrace.SpanRecord
	bySpan  map[string]otrace.SpanRecord   // span ID -> record
	byTrace map[string][]otrace.SpanRecord // trace ID -> records
}

func indexSpans(t *testing.T, r *bytes.Buffer) spanIndex {
	t.Helper()
	recs, err := otrace.ReadSpans(bytes.NewReader(r.Bytes()))
	if err != nil {
		t.Fatalf("ReadSpans: %v", err)
	}
	ix := spanIndex{all: recs, bySpan: map[string]otrace.SpanRecord{}, byTrace: map[string][]otrace.SpanRecord{}}
	for _, rec := range recs {
		ix.bySpan[rec.Span] = rec
		ix.byTrace[rec.Trace] = append(ix.byTrace[rec.Trace], rec)
	}
	return ix
}

// childNames returns the names of a root's direct children within its trace.
func (ix spanIndex) childNames(root otrace.SpanRecord) map[string]int {
	names := map[string]int{}
	for _, rec := range ix.byTrace[root.Trace] {
		if rec.Parent == root.Span {
			names[rec.Name]++
		}
	}
	return names
}

func TestNetRunSpansMatchFaultSchedule(t *testing.T) {
	sc := testbedScenario(t, TestbedOptions{Seed: 17, Slots: 220})

	var opSpans, tenSpans, journal bytes.Buffer
	// SlowPercentile off keeps the span set a pure function of the fault
	// schedule (no wall-clock-dependent latency upgrades); SampleEvery 1
	// is the acceptance regime — every slot's trace publishes.
	opTracer := otrace.NewTracer(otrace.Options{
		SampleEvery: 1, Seed: 41, SlowPercentile: -1, RingCapacity: 8192, Journal: &opSpans,
	})
	tenTracer := otrace.NewTracer(otrace.Options{
		SampleEvery: 1, Seed: 43, SlowPercentile: -1, RingCapacity: 8192, Journal: &tenSpans,
	})

	log, _, err := wal.Open(wal.Options{Dir: t.TempDir(), Policy: wal.SyncEverySlot})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()

	const degradedSlot = 60
	res, err := NetRun(sc, NetRunOptions{
		SlotLen:    15 * time.Millisecond,
		ErrorSlots: []int{degradedSlot},
		// Half the tenants speak binary frames (v2 trace negotiation),
		// half JSON: adoption must work identically over both.
		WireFor: func(i int) proto.Encoding {
			if i%2 == 0 {
				return proto.WireBinary
			}
			return proto.WireJSON
		},
		Journal:      metrics.NewJournal(&journal),
		Tracer:       opTracer,
		TenantTracer: tenTracer,
		Durable:      &proto.Durable{Log: log, SnapshotEvery: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cleared != sc.Slots-1 || res.SlotErrors != 1 {
		t.Fatalf("cleared %d / errors %d, want %d / 1", res.Cleared, res.SlotErrors, sc.Slots-1)
	}

	hdr, events, err := metrics.ReadJournal(strings.NewReader(journal.String()))
	if err != nil {
		t.Fatal(err)
	}
	if hdr == nil || hdr.Schema != metrics.JournalSchemaV2 {
		t.Fatalf("journal header = %+v, want schema %s", hdr, metrics.JournalSchemaV2)
	}
	if len(events) != sc.Slots {
		t.Fatalf("journal has %d events, want %d", len(events), sc.Slots)
	}
	degraded := map[int]bool{}
	for _, ev := range events {
		if ev.Degraded {
			degraded[ev.Slot] = true
		}
	}
	if !degraded[degradedSlot] || len(degraded) != 1 {
		t.Fatalf("degraded slots = %v, want exactly {%d}", degraded, degradedSlot)
	}

	op := indexSpans(t, &opSpans)

	// Acceptance: span slot IDs join 1:1 with the v2 journal — exactly one
	// "slot" root per journaled slot, and no roots for unjournaled slots.
	roots := map[int]otrace.SpanRecord{}
	for _, rec := range op.all {
		if rec.Name != "slot" || !rec.Root() {
			continue
		}
		if prev, dup := roots[rec.Slot]; dup {
			t.Fatalf("slot %d has two root spans (%s and %s)", rec.Slot, prev.Span, rec.Span)
		}
		roots[rec.Slot] = rec
	}
	if len(roots) != len(events) {
		t.Fatalf("%d slot roots, want %d (one per journaled slot)", len(roots), len(events))
	}
	for _, ev := range events {
		if _, ok := roots[ev.Slot]; !ok {
			t.Fatalf("journaled slot %d has no root span", ev.Slot)
		}
	}

	// Acceptance: every cleared slot's children cover the full lifecycle;
	// the degraded slot keeps the drain/predict/commit/broadcast skeleton
	// but never clears or audits, and its root is marked.
	for slot, root := range roots {
		kids := op.childNames(root)
		if degraded[slot] {
			if root.Attrs["degraded"] != true {
				t.Errorf("slot %d root missing degraded attr: %v", slot, root.Attrs)
			}
			if e, _ := root.Attrs["error"].(string); e == "" {
				t.Errorf("slot %d degraded root has no error attr", slot)
			}
			for _, want := range []string{"bid_drain", "predict", "wal_commit", "broadcast"} {
				if kids[want] != 1 {
					t.Errorf("degraded slot %d: %d %q children, want 1 (have %v)", slot, kids[want], want, kids)
				}
			}
			if kids["clear"] != 0 || kids["audit"] != 0 {
				t.Errorf("degraded slot %d traced clear/audit: %v", slot, kids)
			}
			continue
		}
		for _, want := range []string{"bid_drain", "predict", "clear", "audit", "wal_commit", "broadcast"} {
			if kids[want] != 1 {
				t.Errorf("slot %d: %d %q children, want 1 (have %v)", slot, kids[want], want, kids)
			}
		}
		if root.Attrs["degraded"] != nil {
			t.Errorf("cleared slot %d marked degraded", slot)
		}
	}

	// Broadcast fan-out: each slot's broadcast span fathers per-session
	// send spans (writer goroutines, StartRemote). With all eight sessions
	// healthy, at least one send must land in every slot's trace.
	for slot, root := range roots {
		sends := 0
		for _, rec := range op.byTrace[root.Trace] {
			if rec.Name != "send" {
				continue
			}
			parent, ok := op.bySpan[rec.Parent]
			if !ok || parent.Name != "broadcast" {
				t.Errorf("slot %d send span parents under %q, want broadcast", slot, parent.Name)
			}
			sends++
		}
		if sends == 0 {
			t.Errorf("slot %d trace has no send spans", slot)
		}
	}

	// Tenant plane: every await_price that actually received a price was
	// adopted into the operator's slot trace — its whole trace (root,
	// bid_decision, submit, await_price) republishes under the operator's
	// trace ID, with the root parented under the slot's broadcast span.
	ten := indexSpans(t, &tenSpans)
	adoptedTenants := map[string]bool{}
	adopted, awaited := 0, 0
	for _, rec := range ten.all {
		if rec.Name != "await_price" {
			continue
		}
		if _, failed := rec.Attrs["error"]; failed {
			continue
		}
		awaited++
		root, ok := roots[rec.Slot]
		if !ok {
			t.Fatalf("tenant await_price for slot %d with no operator root", rec.Slot)
		}
		if rec.Trace != root.Trace {
			t.Fatalf("slot %d tenant trace %s != operator trace %s", rec.Slot, rec.Trace, root.Trace)
		}
		tenRoot, ok := ten.bySpan[rec.Parent]
		if !ok || tenRoot.Name != "tenant_slot" {
			t.Fatalf("slot %d await_price parents under %+v, want tenant_slot", rec.Slot, tenRoot)
		}
		if bcast, ok := op.bySpan[tenRoot.Parent]; !ok || bcast.Name != "broadcast" || bcast.Slot != rec.Slot {
			t.Fatalf("slot %d tenant_slot parents under %+v, want that slot's broadcast span", rec.Slot, bcast)
		}
		// The submit sibling rode the same adoption.
		for _, sib := range ten.byTrace[rec.Trace] {
			if sib.Parent == tenRoot.Span && sib.Name == "submit" {
				adopted++
				if name, _ := tenRoot.Attrs["tenant"].(string); name != "" {
					adoptedTenants[name] = true
				}
			}
		}
	}
	if awaited == 0 || adopted == 0 {
		t.Fatalf("no adopted tenant traces (awaited %d, adopted submits %d)", awaited, adopted)
	}
	// WireFor splits the agents half-binary, half-JSON; adoption must be
	// proven over both encodings (binary via v2 frames, JSON via the trace
	// key). Sprint tenants only bid when load outruns their reservation,
	// so coverage is per encoding group, not per tenant.
	byEncoding := map[proto.Encoding]int{}
	for i, a := range sc.Agents {
		if adoptedTenants[a.Name()] {
			if i%2 == 0 {
				byEncoding[proto.WireBinary]++
			} else {
				byEncoding[proto.WireJSON]++
			}
		}
	}
	if byEncoding[proto.WireBinary] == 0 || byEncoding[proto.WireJSON] == 0 {
		t.Fatalf("adopted submits per encoding = %v (tenants %v), want both covered", byEncoding, adoptedTenants)
	}
}

// TestSmokeSpans is the CI smoke (make smoke-spans): a small in-process
// run traced at 1-in-4 head sampling, its span journal parsed back and
// converted to Chrome trace-event JSON that must validate — the same
// pipeline spotdc-spans -check runs.
func TestSmokeSpans(t *testing.T) {
	sc := testbedScenario(t, TestbedOptions{Seed: 5, Slots: 40})
	var spans bytes.Buffer
	tr := otrace.NewTracer(otrace.Options{SampleEvery: 4, Seed: 7, SlowPercentile: -1, Journal: &spans})
	if _, err := Run(sc, RunOptions{Tracer: tr, Audit: true}); err != nil {
		t.Fatal(err)
	}

	recs, err := otrace.ReadSpans(bytes.NewReader(spans.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	roots := 0
	for _, rec := range recs {
		if rec.Root() {
			if rec.Name != "slot" || rec.Slot%4 != 0 {
				t.Fatalf("unexpected root %+v under 1-in-4 head sampling", rec)
			}
			roots++
		}
	}
	if want := sc.Slots / 4; roots != want {
		t.Fatalf("%d sampled roots, want %d", roots, want)
	}

	var chrome bytes.Buffer
	if err := otrace.WriteChromeTrace(&chrome, recs); err != nil {
		t.Fatal(err)
	}
	if err := otrace.ValidateChromeTrace(chrome.Bytes()); err != nil {
		t.Fatalf("produced trace fails validation: %v", err)
	}
}
