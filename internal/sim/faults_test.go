package sim

import (
	"testing"

	"spotdc/internal/tenant"
	"spotdc/internal/workload"
)

func TestBidLossValidation(t *testing.T) {
	sc := testbedScenario(t, TestbedOptions{Seed: 1, Slots: 5})
	sc.BidLossProb = -0.1
	if _, err := Run(sc, RunOptions{}); err == nil {
		t.Error("negative loss prob accepted")
	}
	sc.BidLossProb = 1.5
	if _, err := Run(sc, RunOptions{}); err == nil {
		t.Error("loss prob >1 accepted")
	}
}

func TestBidLossDegradesGracefully(t *testing.T) {
	opt := TestbedOptions{Seed: 21, Slots: 1500}
	clean, err := Run(testbedScenario(t, opt), RunOptions{Mode: ModeSpotDC})
	if err != nil {
		t.Fatal(err)
	}
	lossy := testbedScenario(t, opt)
	lossy.BidLossProb = 0.5
	lossy.FaultSeed = 7
	faulty, err := Run(lossy, RunOptions{Mode: ModeSpotDC})
	if err != nil {
		t.Fatal(err)
	}
	if faulty.LostBids == 0 {
		t.Fatal("no bids lost at 50% loss probability")
	}
	if clean.LostBids != 0 {
		t.Errorf("clean run lost %d bids", clean.LostBids)
	}
	// Revenue degrades but the system never errors and reliability holds.
	if faulty.SpotRevenue >= clean.SpotRevenue {
		t.Errorf("lossy revenue %v not below clean %v", faulty.SpotRevenue, clean.SpotRevenue)
	}
	if faulty.SpotRevenue <= 0 {
		t.Error("half the bids still arrive; revenue should not vanish")
	}
	if faulty.EmergencySlots > clean.EmergencySlots+2 {
		t.Errorf("bid loss increased emergencies: %d vs %d", faulty.EmergencySlots, clean.EmergencySlots)
	}
	// Deterministic given the fault seed.
	lossy2 := testbedScenario(t, opt)
	lossy2.BidLossProb = 0.5
	lossy2.FaultSeed = 7
	faulty2, err := Run(lossy2, RunOptions{Mode: ModeSpotDC})
	if err != nil {
		t.Fatal(err)
	}
	if faulty2.LostBids != faulty.LostBids || faulty2.SpotRevenue != faulty.SpotRevenue {
		t.Error("fault injection not deterministic")
	}
}

func TestPriceFeedbackObservesEveryClearing(t *testing.T) {
	sc := testbedScenario(t, TestbedOptions{Seed: 3, Slots: 60})
	var calls int
	var positives int
	sc.PriceFeedback = func(slot int, price float64) {
		if slot != calls {
			t.Errorf("feedback slot %d out of order (want %d)", slot, calls)
		}
		calls++
		if price > 0 {
			positives++
		}
	}
	res, err := Run(sc, RunOptions{Mode: ModeSpotDC})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 60 {
		t.Errorf("feedback called %d times, want 60", calls)
	}
	if positives == 0 && len(res.Prices) > 0 {
		t.Error("positive prices cleared but feedback never saw one")
	}
}

func TestBundledAgentInSimulation(t *testing.T) {
	// Integration: a two-tier bundled tenant replaces two single-rack
	// agents and the simulation runs end to end with multi-rack grants.
	sc := testbedScenario(t, TestbedOptions{Seed: 5, Slots: 400})
	// Replace the two PDU#1 sprinting agents (racks of S-1 and S-2) with
	// one bundle spanning those racks.
	s1, ok1 := sc.Topo.RackByID("S-1")
	s2, ok2 := sc.Topo.RackByID("S-2")
	if !ok1 || !ok2 {
		t.Fatal("testbed racks missing")
	}
	var kept []tenant.Agent
	var load = sc.Agents[0].(*tenant.Sprint).Load
	for _, a := range sc.Agents {
		if a.Name() == "Search-1" || a.Name() == "Web" {
			continue
		}
		kept = append(kept, a)
	}
	front := workload.WebModel()
	back := workload.WebModel()
	back.Name = "web-db"
	bundle := &tenant.BundledSprint{
		TenantName: "WebPair",
		Tiers: []tenant.Tier{
			{Rack: s1, Model: front, Reserved: 115, Headroom: 50},
			{Rack: s2, Model: back, Reserved: 115, Headroom: 50},
		},
		Cost: workload.SprintCost{A: 1e-9, B: 6e-12, SLOms: 200},
		Load: load,
		QMin: 0.1,
		QMax: 0.4,
	}
	sc.Agents = append(kept, bundle)
	res, err := Run(sc, RunOptions{Mode: ModeSpotDC})
	if err != nil {
		t.Fatal(err)
	}
	ts, ok := res.Tenants["WebPair"]
	if !ok {
		t.Fatal("bundle stats missing")
	}
	if ts.Reserved != 230 {
		t.Errorf("bundle reserved = %v, want 230", ts.Reserved)
	}
	if ts.EnergyKWh <= 0 {
		t.Error("bundle consumed no energy")
	}
	if res.EmergencySlots > 3 {
		t.Errorf("bundled run caused %d emergencies", res.EmergencySlots)
	}
}
