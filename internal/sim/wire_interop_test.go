package sim

import (
	"bytes"
	"reflect"
	"sort"
	"testing"
	"time"

	"spotdc/internal/audit"
	"spotdc/internal/metrics"
	"spotdc/internal/proto"
)

// wiredRun executes one fault-free seeded networked run with the given wire
// selection, capturing the journal and the full metrics plane.
func wiredRun(t *testing.T, wire proto.Encoding, wireFor func(int) proto.Encoding) (*NetResult, *metrics.JournalHeader, []metrics.SlotEvent, *metrics.Registry) {
	t.Helper()
	// 75ms slots, not the 15ms the market smokes use: under -race on a
	// small box, instrumented JSON encode/decode for a full fleet can
	// overrun a short slot, and then the comparison measures CPU headroom
	// instead of cross-encoding determinism.
	sc := testbedScenario(t, TestbedOptions{Seed: 17, Slots: 40})
	reg := metrics.NewRegistry()
	var buf bytes.Buffer
	res, err := NetRun(sc, NetRunOptions{
		SlotLen:   75 * time.Millisecond,
		Reconnect: true,
		Wire:      wire,
		WireFor:   wireFor,
		Registry:  reg,
		Journal:   metrics.NewJournal(&buf),
		Audit:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	hdr, events, err := metrics.ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Wall-clock stamps and bid arrival order are the only legitimately
	// run-dependent fields: concurrent tenants race to submit within a
	// slot, so BidSet/GrantSet are journaled in arrival order even between
	// two runs of the same encoding. Values must still match exactly.
	for i := range events {
		ev := &events[i]
		ev.UnixMicros = 0
		ev.ClearMicros = 0
		sort.Slice(ev.BidSet, func(a, b int) bool { return ev.BidSet[a].Rack < ev.BidSet[b].Rack })
		sort.Slice(ev.GrantSet, func(a, b int) bool { return ev.GrantSet[a].Rack < ev.GrantSet[b].Rack })
	}
	return res, hdr, events, reg
}

// interopCounters is the metric subset that must be bit-identical across
// wire encodings on a fault-free run: structural counters only, nothing
// downstream of wall-clock timing (bids_accepted tracks bid arrival, and
// broadcast ok/failed can tip on a send racing a timed-out tenant's
// teardown — those get per-run accounting checks instead).
func interopCounters(t *testing.T, reg *metrics.Registry) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	read := func(key, name string, labels ...string) {
		v, ok := reg.Value(name, labels...)
		if !ok {
			t.Fatalf("metric %s %v not registered", name, labels)
		}
		out[key] = v
	}
	read("sessions_opened", "spotdc_proto_sessions_opened_total")
	read("queue_drops_full", "spotdc_proto_outbound_drops_total", "full")
	read("slots_cleared", "spotdc_operator_slots_total", "cleared")
	return out
}

// checkBroadcastAccounting pins the fan-out's delivery bounds on one run:
// every slot enqueues one outbound price per session, each landing as
// sent-ok, failed, or dropped — never more than enqueued, and at most the
// final slot's worth may be lost to tenants tearing down as it is sent.
func checkBroadcastAccounting(t *testing.T, name string, reg *metrics.Registry, slots, sessions int) {
	t.Helper()
	ok, _ := reg.Value("spotdc_proto_broadcasts_total", "ok")
	failed, _ := reg.Value("spotdc_proto_broadcasts_total", "failed")
	dropFull, _ := reg.Value("spotdc_proto_outbound_drops_total", "full")
	dropErr, _ := reg.Value("spotdc_proto_outbound_drops_total", "error")
	if got, max := ok+failed+dropFull+dropErr, float64(slots*sessions); got > max {
		t.Errorf("%s fleet: broadcast accounting ok(%v)+failed(%v)+dropped(%v+%v) = %v, more than the %v enqueued",
			name, ok, failed, dropFull, dropErr, got, max)
	}
	if ok < float64((slots-1)*sessions) {
		t.Errorf("%s fleet: only %v of %d broadcasts delivered", name, ok, slots*sessions)
	}
}

// TestMixedFleetInteropMatchesAllJSON is the mixed-fleet e2e: legacy JSON
// tenants and binary tenants share one seeded market, and the run must be
// bit-identical — grants, revenue, journal, throughput metrics — to the
// same scenario on an all-JSON fleet, and to an all-binary one. The wire
// encoding must be invisible to the market.
func TestMixedFleetInteropMatchesAllJSON(t *testing.T) {
	jsonRes, jsonHdr, jsonEvents, jsonReg := wiredRun(t, proto.WireJSON, nil)
	mixedRes, mixedHdr, mixedEvents, mixedReg := wiredRun(t, proto.WireJSON, func(i int) proto.Encoding {
		if i%2 == 1 {
			return proto.WireBinary
		}
		return proto.WireJSON
	})
	binRes, binHdr, binEvents, binReg := wiredRun(t, proto.WireBinary, nil)

	if jsonRes.Cleared != jsonRes.Slots || jsonRes.SlotErrors != 0 {
		t.Fatalf("baseline run degraded: cleared %d/%d, errors %d — the comparison below would be vacuous",
			jsonRes.Cleared, jsonRes.Slots, jsonRes.SlotErrors)
	}
	checkBroadcastAccounting(t, "json", jsonReg, jsonRes.Slots, len(jsonRes.Tenants))
	// The contract under test is the encoding's: with the same bids on the
	// table, the market's outcome — price, grants, revenue, predictions —
	// is bit-identical whatever wire the bids and broadcasts rode. Which
	// slot a bid *arrives* in is a wall-clock property of the real-TCP
	// harness, not of the encoding: under the race detector on a small box
	// a submission can slip past its slot in any run, JSON or binary. So
	// slots whose (sorted) bid sets differ between runs are tolerated up to
	// a small cap, and every slot with matching bid sets must match
	// bit-for-bit across the board.
	for name, run := range map[string]struct {
		res    *NetResult
		hdr    *metrics.JournalHeader
		events []metrics.SlotEvent
		reg    *metrics.Registry
	}{
		"mixed":  {mixedRes, mixedHdr, mixedEvents, mixedReg},
		"binary": {binRes, binHdr, binEvents, binReg},
	} {
		if run.res.Cleared != jsonRes.Cleared || run.res.SlotErrors != jsonRes.SlotErrors {
			t.Errorf("%s fleet: cleared/errors %d/%d, json fleet %d/%d",
				name, run.res.Cleared, run.res.SlotErrors, jsonRes.Cleared, jsonRes.SlotErrors)
		}
		if !reflect.DeepEqual(run.hdr, jsonHdr) {
			t.Errorf("%s fleet: journal header diverges", name)
		}
		if len(run.events) != len(jsonEvents) {
			t.Fatalf("%s fleet: %d journal events, json fleet %d", name, len(run.events), len(jsonEvents))
		}
		timingMisses := 0
		for i := range jsonEvents {
			if !reflect.DeepEqual(run.events[i].BidSet, jsonEvents[i].BidSet) {
				timingMisses++
				continue
			}
			if !reflect.DeepEqual(run.events[i], jsonEvents[i]) {
				t.Errorf("%s fleet: slot %d took the same bids but diverged:\n json %+v\n %s %+v",
					name, i, jsonEvents[i], name, run.events[i])
			}
		}
		// More than a third of slots diverging is not scheduling jitter.
		if max := len(jsonEvents) / 3; timingMisses > max {
			t.Errorf("%s fleet: %d of %d slots took different bid sets than the json fleet (allow ≤%d)",
				name, timingMisses, len(jsonEvents), max)
		}
		checkBroadcastAccounting(t, name, run.reg, jsonRes.Slots, len(jsonRes.Tenants))
		for _, tn := range jsonRes.Tenants {
			other, ok := run.res.Tenants[tn.Name]
			if !ok {
				t.Errorf("%s fleet: tenant %s missing", name, tn.Name)
				continue
			}
			// BidSlots is trace-driven and SubmitFailures needs a dead
			// session — both deterministic. GrantSlots/NoSpotSlots split on
			// receipt timing, so only their sum is pinned.
			if other.BidSlots != tn.BidSlots || other.SubmitFailures != tn.SubmitFailures {
				t.Errorf("%s fleet: tenant %s stats %+v, json fleet %+v", name, tn.Name, other, tn)
			}
			if other.GrantSlots+other.NoSpotSlots != tn.GrantSlots+tn.NoSpotSlots {
				t.Errorf("%s fleet: tenant %s awaited %d slots, json fleet %d", name, tn.Name,
					other.GrantSlots+other.NoSpotSlots, tn.GrantSlots+tn.NoSpotSlots)
			}
		}
		got, want := interopCounters(t, run.reg), interopCounters(t, jsonReg)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s fleet: metrics %v, json fleet %v", name, got, want)
		}
	}

	// The encoding split itself must be visible in the observability plane:
	// the per-encoding broadcast counters partition the successful sends.
	jsonSends, _ := mixedReg.Value("spotdc_proto_broadcasts_by_encoding_total", "json")
	binSends, _ := mixedReg.Value("spotdc_proto_broadcasts_by_encoding_total", "binary")
	allOK, _ := mixedReg.Value("spotdc_proto_broadcasts_total", "ok")
	if jsonSends == 0 || binSends == 0 || jsonSends+binSends != allOK {
		t.Errorf("mixed fleet broadcasts by encoding: json %v + binary %v != ok %v", jsonSends, binSends, allOK)
	}
}

// TestSmokeWire is the binary-wire acceptance smoke (make smoke-wire): the
// seeded 220-slot golden fault schedule runs entirely on the binary
// encoding, journals every slot, and the offline auditor replays every
// cleared slot bit-identically through both engines.
func TestSmokeWire(t *testing.T) {
	sc := testbedScenario(t, TestbedOptions{Seed: 17, Slots: 220})
	var buf bytes.Buffer
	journal := metrics.NewJournal(&buf)
	res, err := NetRun(sc, NetRunOptions{
		SlotLen: 15 * time.Millisecond,
		BidFaults: proto.FaultPlan{
			Seed: 1, DropProb: 0.08, DelayProb: 0.05, MaxDelay: 3 * time.Millisecond, SeverProb: 0.02,
		},
		BroadcastFaults: proto.FaultPlan{
			Seed: 2, DropProb: 0.05, DelayProb: 0.05, MaxDelay: 3 * time.Millisecond, SeverProb: 0.01,
		},
		ErrorSlots:             []int{60},
		MaxConsecutiveFailures: 5,
		Reconnect:              true,
		SessionTTL:             150 * time.Millisecond,
		Wire:                   proto.WireBinary,
		Journal:                journal,
		Audit:                  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cleared != 219 || res.SlotErrors != 1 {
		t.Fatalf("cleared/errors = %d/%d, want 219/1", res.Cleared, res.SlotErrors)
	}
	if journal.Events() != 220 || !journal.HasHeader() {
		t.Fatalf("journal: %d events, header %v", journal.Events(), journal.HasHeader())
	}
	rep, err := audit.Replay(bytes.NewReader(buf.Bytes()), audit.Options{EngineCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range rep.Violations {
		if i >= 10 {
			t.Errorf("... and %d more", len(rep.Violations)-10)
			break
		}
		t.Errorf("violation: %s", v)
	}
	if rep.Slots != 220 || rep.Cleared != 219 || rep.Degraded != 1 {
		t.Errorf("report slots/cleared/degraded = %d/%d/%d, want 220/219/1", rep.Slots, rep.Cleared, rep.Degraded)
	}
	if rep.Replayed != rep.Cleared {
		t.Errorf("replayed %d of %d cleared slots", rep.Replayed, rep.Cleared)
	}
}
