package sim

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"spotdc/internal/metrics"
)

// emergencyTestbed is the shared overload schedule: every 10 slots, the
// last 4 slots surge every PDU#1 rack by 70 W — enough to push the PDU past
// its 750.75 W breaker threshold regardless of the agents' own draw.
func emergencyTestbed(t *testing.T, responder bool) Scenario {
	t.Helper()
	sc := testbedScenario(t, TestbedOptions{Seed: 5, Slots: 40})
	sc.Emergency = &EmergencyScenario{
		Responder:         responder,
		RecoverySlots:     2,
		OverloadEvery:     10,
		OverloadDuration:  4,
		OverloadRackWatts: 70,
		OverloadPDU:       0,
	}
	return sc
}

func TestEmergencyScenarioValidation(t *testing.T) {
	base := testbedScenario(t, TestbedOptions{Seed: 1, Slots: 5})
	bad := []EmergencyScenario{
		{EscalationSeverity: -1},
		{RecoverySlots: -1},
		{OverloadEvery: -1},
		{OverloadEvery: 5, OverloadDuration: 0},
		{OverloadEvery: 5, OverloadDuration: 6},
		{OverloadEvery: 5, OverloadDuration: 2, OverloadPDU: 9},
	}
	for i, e := range bad {
		sc := base
		e := e
		sc.Emergency = &e
		if _, err := Run(sc, RunOptions{}); err == nil {
			t.Errorf("bad emergency scenario %d accepted: %+v", i, e)
		}
	}
}

// TestEmergencyResponderContainsOverload is the tentpole's closed-loop
// check: with the responder on, every injected excursion is detected, spot
// capacity is reclaimed, the overloading racks are capped, and the element
// recovers within the control budget — without a single guaranteed watt
// cut. With the responder off, the same surge rides through the whole
// overload window uncontained.
func TestEmergencyResponderContainsOverload(t *testing.T) {
	off, err := Run(emergencyTestbed(t, false), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	on, err := Run(emergencyTestbed(t, true), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// The schedule must actually fire, or everything below is vacuous.
	if off.EmergencySlots == 0 {
		t.Fatal("overload schedule produced no emergencies with the responder off")
	}
	// Uncontained, the surge lasts its full 4-slot window.
	if off.LongestEmergencyRun < 4 {
		t.Errorf("responder-off longest run = %d, want the full 4-slot window", off.LongestEmergencyRun)
	}
	if off.EmergenciesActed != 0 || off.ReclaimedWatts != 0 {
		t.Errorf("responder off but acted=%d reclaimed=%v", off.EmergenciesActed, off.ReclaimedWatts)
	}

	// Contained: capping ends each excursion after the detection slot.
	if on.EmergenciesActed == 0 || on.ReclaimedWatts <= 0 {
		t.Fatalf("responder never acted: %+v", on)
	}
	if on.LongestEmergencyRun > 2 {
		t.Errorf("responder-on longest run = %d, want ≤ 2 (detect, settle)", on.LongestEmergencyRun)
	}
	if on.EmergencySlots >= off.EmergencySlots {
		t.Errorf("responder did not reduce emergency slots: on=%d off=%d", on.EmergencySlots, off.EmergencySlots)
	}
	// Spot users first, guaranteed tenants untouched.
	if on.GuaranteedCutWatts != 0 || on.InvoluntaryCuts != 0 {
		t.Errorf("guaranteed capacity cut: %v W across %d cuts", on.GuaranteedCutWatts, on.InvoluntaryCuts)
	}
}

// TestEmergencyNilIsBitIdentical pins the opt-in contract: a nil Emergency
// and an inert one (no overload, no responder) produce identical runs.
func TestEmergencyNilIsBitIdentical(t *testing.T) {
	base := testbedScenario(t, TestbedOptions{Seed: 7, Slots: 20})
	plain, err := Run(base, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	inert := base
	inert.Emergency = &EmergencyScenario{}
	armed, err := Run(inert, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.SpotRevenue != armed.SpotRevenue || plain.EmergencySlots != armed.EmergencySlots {
		t.Errorf("inert emergency scenario changed the run: revenue %v vs %v, emergencies %d vs %d",
			plain.SpotRevenue, armed.SpotRevenue, plain.EmergencySlots, armed.EmergencySlots)
	}
	for i := range plain.UPSPower {
		if plain.UPSPower[i] != armed.UPSPower[i] {
			t.Fatalf("slot %d UPS power %v vs %v", i, plain.UPSPower[i], armed.UPSPower[i])
		}
	}
}

// TestEmergencyParallelMatchesSerial extends the bit-identity guarantee of
// Scenario.Parallel to the emergency path: surge injection, capping, and
// responder state all run on the slot goroutine.
func TestEmergencyParallelMatchesSerial(t *testing.T) {
	serial, err := Run(emergencyTestbed(t, true), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	psc := emergencyTestbed(t, true)
	psc.Parallel = true
	parallel, err := Run(psc, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if serial.EmergencySlots != parallel.EmergencySlots ||
		serial.EmergenciesActed != parallel.EmergenciesActed ||
		serial.ReclaimedWatts != parallel.ReclaimedWatts ||
		serial.LongestEmergencyRun != parallel.LongestEmergencyRun {
		t.Errorf("parallel diverged: %d/%d/%v/%d vs %d/%d/%v/%d",
			serial.EmergencySlots, serial.EmergenciesActed, serial.ReclaimedWatts, serial.LongestEmergencyRun,
			parallel.EmergencySlots, parallel.EmergenciesActed, parallel.ReclaimedWatts, parallel.LongestEmergencyRun)
	}
	for i := range serial.UPSPower {
		if serial.UPSPower[i] != parallel.UPSPower[i] {
			t.Fatalf("slot %d UPS power %v vs %v", i, serial.UPSPower[i], parallel.UPSPower[i])
		}
	}
}

// TestNetRunEmergencyReclaimsAndRecovers drives the whole emergency loop
// over real TCP: an injected three-slot overload at PDU#1 must trigger
// exactly one detected excursion, budget resets must land in the emulated
// rack PDUs (physically capping the next readings back under tolerance),
// budget-reset broadcasts must reach the affected tenants, spot sales at
// the element must resume after recovery — and not one guaranteed watt may
// be cut. The scraped emergency metrics and the slot journal must agree
// with the injected schedule exactly.
func TestNetRunEmergencyReclaimsAndRecovers(t *testing.T) {
	reg := metrics.NewRegistry()
	var journal bytes.Buffer
	sc := testbedScenario(t, TestbedOptions{Seed: 17, Slots: 20})
	res, err := NetRun(sc, NetRunOptions{
		SlotLen:  20 * time.Millisecond,
		Registry: reg,
		Journal:  metrics.NewJournal(&journal),
		Audit:    true,
		Emergency: &NetEmergencyOptions{
			RecoverySlots:     2,
			OverloadSlots:     []int{8, 9, 10},
			OverloadRackWatts: 70,
			OverloadPDU:       0,
			ResetDelay:        time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cleared != 20 {
		t.Fatalf("cleared = %d, want 20 (emergencies degrade nothing)", res.Cleared)
	}

	// Slot 8 overloads PDU#1 (≈835 W > 750.75 W); the reclaim budgets cap
	// slots 9–10 back under tolerance, so exactly one slot reads as an
	// emergency and the responder acts exactly once.
	if res.EmergencySlots != 1 || res.EmergenciesActed != 1 {
		t.Errorf("emergency slots = %d, acted = %d, want 1/1", res.EmergencySlots, res.EmergenciesActed)
	}
	if res.ReclaimedWatts <= 0 {
		t.Errorf("reclaimed %v W, want > 0", res.ReclaimedWatts)
	}
	if res.GuaranteedCutWatts != 0 || res.InvoluntaryCuts != 0 {
		t.Errorf("guaranteed tenants lost %v W across %d cuts, want zero", res.GuaranteedCutWatts, res.InvoluntaryCuts)
	}
	// One reclaim (4 racks) + one restore (4 racks) = 8 rack-PDU resets.
	if res.BudgetResets != 8 {
		t.Errorf("rack-PDU budget resets = %d, want 8", res.BudgetResets)
	}
	// The budget-reset broadcasts reached live tenants.
	tenantResets := 0
	for _, ts := range res.Tenants {
		tenantResets += ts.BudgetResets
	}
	if tenantResets == 0 {
		t.Errorf("no tenant observed a budget-reset broadcast")
	}

	// Scrape surface agrees with the run exactly.
	if v, _ := reg.Value("spotdc_operator_emergency_slots_total"); int(v) != res.EmergencySlots {
		t.Errorf("emergency_slots_total = %v, want %d", v, res.EmergencySlots)
	}
	if v, _ := reg.Value("spotdc_operator_emergencies_acted_total"); int(v) != res.EmergenciesActed {
		t.Errorf("emergencies_acted_total = %v, want %d", v, res.EmergenciesActed)
	}
	if v, _ := reg.Value("spotdc_operator_reclaimed_watts_total"); v != res.ReclaimedWatts {
		t.Errorf("reclaimed_watts_total = %v, want %v", v, res.ReclaimedWatts)
	}
	if v, ok := reg.Value("spotdc_operator_involuntary_cuts_total"); ok && v != 0 {
		t.Errorf("involuntary_cuts_total = %v, want 0", v)
	}
	if v, _ := reg.Value("spotdc_rackpdu_budget_resets_total"); int(v) != res.BudgetResets {
		t.Errorf("rackpdu resets scraped = %v, want %d", v, res.BudgetResets)
	}

	// The journal carries the responder configuration and the reclaim /
	// suspension / restore record for deterministic replay.
	hdr, events, err := metrics.ReadJournal(strings.NewReader(journal.String()))
	if err != nil {
		t.Fatal(err)
	}
	if hdr == nil || !hdr.EmergencyResponder || hdr.BreakerTolerance != 0.05 {
		t.Fatalf("journal header = %+v, want responder on at tolerance 0.05", hdr)
	}
	var reclaimSlots, restoreSlots, suspendedSlots []int
	for _, ev := range events {
		if len(ev.Reclaims) > 0 {
			reclaimSlots = append(reclaimSlots, ev.Slot)
		}
		if len(ev.RestoredPDUs) > 0 {
			restoreSlots = append(restoreSlots, ev.Slot)
		}
		if len(ev.SuspendedPDUs) > 0 {
			suspendedSlots = append(suspendedSlots, ev.Slot)
		}
	}
	if len(reclaimSlots) != 1 || reclaimSlots[0] != 8 {
		t.Errorf("journal reclaim slots = %v, want [8]", reclaimSlots)
	}
	if len(restoreSlots) != 1 || restoreSlots[0] != 10 {
		t.Errorf("journal restore slots = %v, want [10]", restoreSlots)
	}
	// Suspension zeroes the element's spot in the following slots'
	// predictions until the restore lands.
	if len(suspendedSlots) != 2 || suspendedSlots[0] != 9 || suspendedSlots[1] != 10 {
		t.Errorf("journal suspended slots = %v, want [9 10]", suspendedSlots)
	}
	ev8 := events[8]
	if len(ev8.Reclaims) != 1 || len(ev8.Reclaims[0].Budgets) != 4 {
		t.Fatalf("slot 8 reclaims = %+v, want one 4-rack plan", ev8.Reclaims)
	}
	if ev8.Reclaims[0].GuaranteedCutWatts != 0 || ev8.Reclaims[0].Escalated {
		t.Errorf("slot 8 plan touched guarantees: %+v", ev8.Reclaims[0])
	}
}

// TestNetRunEmergencyOffIsDefault asserts the emergency plane is strictly
// opt-in on the wire: without NetEmergencyOptions nothing is checked,
// reset, or counted.
func TestNetRunEmergencyOffIsDefault(t *testing.T) {
	sc := testbedScenario(t, TestbedOptions{Seed: 21, Slots: 10})
	res, err := NetRun(sc, NetRunOptions{SlotLen: 15 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cleared != 10 {
		t.Errorf("cleared = %d, want 10", res.Cleared)
	}
	if res.EmergencySlots != 0 || res.EmergenciesActed != 0 || res.BudgetResets != 0 {
		t.Errorf("emergency plane active by default: %+v", res)
	}
}
