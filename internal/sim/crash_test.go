package sim

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"spotdc/internal/audit"
	"spotdc/internal/metrics"
	"spotdc/internal/proto"
	"spotdc/internal/wal"
)

func TestCrashRunValidation(t *testing.T) {
	sc := testbedScenario(t, TestbedOptions{Seed: 1, Slots: 5})
	if _, err := CrashNetRun(sc, NetRunOptions{}, CrashRunOptions{}); err == nil {
		t.Error("missing StateDir accepted")
	}
	dir := t.TempDir()
	if _, err := CrashNetRun(sc, NetRunOptions{
		BidFaults: proto.FaultPlan{Seed: 1, DropProb: 0.5},
	}, CrashRunOptions{StateDir: dir}); err == nil {
		t.Error("fault plan accepted (injector schedules cannot resume)")
	}
	if _, err := CrashNetRun(sc, NetRunOptions{}, CrashRunOptions{
		StateDir: dir,
		Kills:    []CrashKill{{AfterSlot: 3}, {AfterSlot: 3}},
	}); err == nil {
		t.Error("non-increasing kill slots accepted")
	}
	if _, err := CrashNetRun(sc, NetRunOptions{}, CrashRunOptions{
		StateDir: dir,
		Kills:    []CrashKill{{AfterSlot: 4}},
	}); err == nil {
		t.Error("kill at the final slot accepted (nothing left to recover)")
	}
}

// crashJournal reads and normalizes a crash run's journal for cross-run
// comparison: wall-clock stamps are the only legitimately run-dependent
// fields. Bid and grant order is NOT normalized — TakeBids drains in
// canonical rack order, so the raw journal must already match.
func crashJournal(t *testing.T, path string) (*metrics.JournalHeader, []metrics.SlotEvent) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	hdr, events, torn, err := metrics.ReadJournalInfo(f)
	if err != nil {
		t.Fatal(err)
	}
	if torn {
		t.Fatalf("%s: torn final line (kills stop at slot boundaries; the journal must be whole)", path)
	}
	for i := range events {
		events[i].UnixMicros = 0
		events[i].ClearMicros = 0
	}
	return hdr, events
}

// TestCrashSmokeBitIdenticalRecovery is the crash-injection acceptance
// smoke (make smoke-crash): the seeded 220-slot networked testbed run —
// emergency responder armed, one poisoned slot — killed at three
// randomized points (one leaving a torn WAL record, one mid-suspension)
// and recovered from the state directory each time, must end with books,
// responder state, and a slot journal bit-identical to the same scenario
// run without interruption, and the journal must replay cleanly through
// the offline auditor.
func TestCrashSmokeBitIdenticalRecovery(t *testing.T) {
	const slots = 220
	rng := rand.New(rand.NewSource(29))
	k1 := 20 + rng.Intn(25)  // early, placed at the start of a suspension window
	k2 := 80 + rng.Intn(40)  // mid-run, dies leaving a torn record behind
	k3 := 150 + rng.Intn(40) // late, inside the responder's recovery countdown
	kills := []CrashKill{{AfterSlot: k1}, {AfterSlot: k2, TearTail: true}, {AfterSlot: k3}}

	opts := NetRunOptions{
		SlotLen: 20 * time.Millisecond,
		// Poison one reading mid-run: degraded slots must commit and
		// recover like any other.
		ErrorSlots: []int{60},
		Audit:      true,
		Emergency: &NetEmergencyOptions{
			RecoverySlots:     4,
			OverloadSlots:     []int{k1, k1 + 1, k1 + 2, k3 - 1, k3},
			OverloadRackWatts: 70,
			OverloadPDU:       0,
		},
	}

	run := func(name string, kills []CrashKill) (*CrashResult, string) {
		dir := t.TempDir()
		journal := filepath.Join(dir, "journal.jsonl")
		res, err := CrashNetRun(
			testbedScenario(t, TestbedOptions{Seed: 17, Slots: slots}),
			opts,
			CrashRunOptions{
				StateDir:      filepath.Join(dir, "state"),
				JournalPath:   journal,
				Policy:        wal.SyncEverySlot,
				SegmentBytes:  1 << 15,
				SnapshotEvery: 48,
				Kills:         kills,
			})
		if err != nil {
			t.Fatalf("%s run: %v", name, err)
		}
		return res, journal
	}

	golden, goldenJournal := run("uninterrupted", nil)
	crashed, crashedJournal := run("crashed", kills)

	if golden.Cleared != slots-1 || golden.SlotErrors != 1 {
		t.Fatalf("uninterrupted run cleared/errors = %d/%d, want %d/1",
			golden.Cleared, golden.SlotErrors, slots-1)
	}
	if crashed.Segments != 4 {
		t.Fatalf("crashed run had %d lifetimes, want 4", crashed.Segments)
	}
	if crashed.Cleared != golden.Cleared || crashed.SlotErrors != golden.SlotErrors {
		t.Fatalf("crashed run cleared/errors = %d/%d, uninterrupted %d/%d (a slot re-ran or was lost)",
			crashed.Cleared, crashed.SlotErrors, golden.Cleared, golden.SlotErrors)
	}
	if crashed.Truncations != 1 {
		t.Errorf("crashed run repaired %d torn tails, want exactly 1 (the TearTail kill)", crashed.Truncations)
	}
	if crashed.Replayed == 0 {
		t.Error("crashed run replayed no slot records — recovery was vacuous")
	}
	if golden.InfeasibleSlots != 0 || crashed.InfeasibleSlots != 0 {
		t.Errorf("infeasible slots: uninterrupted %d, crashed %d", golden.InfeasibleSlots, crashed.InfeasibleSlots)
	}

	// The books: bit-identical, compensation terms and responder state
	// included.
	if golden.SpotRevenue != crashed.SpotRevenue {
		t.Errorf("spot revenue %v (uninterrupted) != %v (crashed)", golden.SpotRevenue, crashed.SpotRevenue)
	}
	if !reflect.DeepEqual(golden.Checkpoint, crashed.Checkpoint) {
		t.Errorf("final checkpoints diverge:\nuninterrupted %+v\ncrashed       %+v",
			golden.Checkpoint, crashed.Checkpoint)
	}

	// The journal: every slot present exactly once, bit-identical modulo
	// wall-clock stamps, across a file that three dying processes appended
	// to.
	goldenHdr, goldenEvents := crashJournal(t, goldenJournal)
	crashedHdr, crashedEvents := crashJournal(t, crashedJournal)
	if !reflect.DeepEqual(goldenHdr, crashedHdr) {
		t.Error("journal headers diverge")
	}
	if len(crashedEvents) != slots || len(goldenEvents) != slots {
		t.Fatalf("journal events: uninterrupted %d, crashed %d, want %d",
			len(goldenEvents), len(crashedEvents), slots)
	}
	for i := range goldenEvents {
		if !reflect.DeepEqual(goldenEvents[i], crashedEvents[i]) {
			t.Fatalf("journal slot %d diverges:\nuninterrupted %+v\ncrashed       %+v",
				i, goldenEvents[i], crashedEvents[i])
		}
	}

	// And the crashed journal must satisfy the offline auditor end to end.
	f, err := os.Open(crashedJournal)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rep, err := audit.Replay(f, audit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range rep.Violations {
		if i >= 10 {
			t.Errorf("... and %d more", len(rep.Violations)-10)
			break
		}
		t.Errorf("audit violation: %s", v)
	}
	if rep.Slots != slots || rep.Degraded != 1 {
		t.Errorf("audit saw %d slots (%d degraded), want %d (1)", rep.Slots, rep.Degraded, slots)
	}
}
