// Crash-injection harness: the networked scenario runner with an operator
// that dies and recovers mid-horizon. A CrashNetRun is the same seeded
// market as NetRun — real TCP tenants, real MarketLoop — but segmented
// into operator lifetimes: at each configured kill point the market loop
// stops at a slot boundary, the WAL's file descriptors are yanked
// (wal.Log.Kill — no flush, no close), the server goes away, and a fresh
// "process" (new operator, new server, new rack-PDU emulations, new tenant
// sessions) recovers from the state directory and resumes. The harness
// exists to prove the PR's durability claim end to end: a killed-and-
// recovered run must produce invoices, responder state, and a journal
// bit-identical to an uninterrupted run of the same seed.
//
// Determinism discipline: crash runs take no protocol faults (injectors
// are seed-positional and cannot resume mid-schedule), the loop's
// BeforeBids barrier waits for every expected bid to arrive before the
// drain (so scheduling jitter cannot slip a bid to the no-spot default in
// one run but not the other), and Server.TakeBids hands bids over in
// canonical rack order. Everything else — readings, traces, overloads —
// is already a pure function of the slot index.
package sim

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"spotdc/internal/core"
	"spotdc/internal/metrics"
	"spotdc/internal/operator"
	"spotdc/internal/power"
	"spotdc/internal/proto"
	"spotdc/internal/rackpdu"
	"spotdc/internal/tenant"
	"spotdc/internal/wal"
)

// CrashKill is one injected operator death.
type CrashKill struct {
	// AfterSlot kills the operator once this slot has committed and
	// broadcast (the loop stops cleanly at the boundary, then the WAL's
	// descriptors are yanked without flush or close).
	AfterSlot int
	// TearTail additionally appends a partial frame to the newest WAL
	// segment after the kill — the torn write of a slot record the dying
	// process never finished. Recovery must truncate it and resume at the
	// same slot as a clean kill.
	TearTail bool
}

// CrashRunOptions configures the kill schedule and the durable plumbing.
type CrashRunOptions struct {
	// StateDir is the WAL directory shared by every operator lifetime
	// (required).
	StateDir string
	// JournalPath, if non-empty, writes the slot journal to this file:
	// created on the first lifetime, reopened in append mode (header
	// already on disk) by every recovery — exactly what spotdc-operator
	// -events does across restarts.
	JournalPath string
	// JournalSyncEvery fsyncs the journal every N events (0: no fsync).
	JournalSyncEvery int
	// Policy is the WAL fsync discipline (zero value: every record).
	Policy wal.SyncPolicy
	// SegmentBytes / SnapshotEvery tune WAL rotation and snapshot cadence
	// (zeros take the wal/proto defaults).
	SegmentBytes  int64
	SnapshotEvery int
	// Kills is the schedule of operator deaths, strictly increasing by
	// AfterSlot; each must leave at least one slot to run afterwards.
	Kills []CrashKill

	// The four caller-state hooks thread higher-layer durable state (e.g. a
	// billing ledger) through the WAL without this package importing it.
	// OnCommit folds a cleared slot into the caller's state right before
	// the commit captures it; ExtraSlot/ExtraSnapshot serialize that state
	// into slot records and snapshots; RestoreSnapshot/ReplaySlot rebuild
	// it during recovery (snapshot first, then each replayed slot in
	// order). All optional.
	OnCommit        func(slot int, out operator.SlotOutcome)
	ExtraSlot       func(slot int) ([]byte, error)
	ExtraSnapshot   func() ([]byte, error)
	RestoreSnapshot func(data []byte) error
	ReplaySlot      func(data []byte) error
	// OnRestart observes each recovery (restart = 1 for the first
	// post-kill lifetime) after the restore hooks have run.
	OnRestart func(restart int, rec *proto.Recovered)
}

// CrashResult summarizes a segmented run.
type CrashResult struct {
	// Segments counts operator lifetimes (kills + 1).
	Segments int
	// Truncations / Replayed total the WAL repairs and slot records
	// replayed across every recovery.
	Truncations int
	Replayed    int
	// Cleared / SlotErrors / InfeasibleSlots sum the live (non-replayed)
	// slot counters over all lifetimes.
	Cleared         int
	SlotErrors      int
	InfeasibleSlots int
	// SpotRevenue and Checkpoint are the final operator's books — the
	// bit-identity handle the crash tests compare against an
	// uninterrupted run.
	SpotRevenue float64
	Checkpoint  operator.Checkpoint
}

// crashExtra is the sim-owned durable payload piggy-backed on every slot
// record and snapshot: the emulated rack PDUs' power budgets (physical
// state the next lifetime's readings depend on) plus the caller's opaque
// state.
type crashExtra struct {
	Budgets []float64       `json:"budgets,omitempty"`
	Caller  json.RawMessage `json:"caller,omitempty"`
}

func (c *CrashRunOptions) validate(sc Scenario, opts NetRunOptions) error {
	if c.StateDir == "" {
		return fmt.Errorf("sim: crash run needs a StateDir")
	}
	if opts.Journal != nil {
		return fmt.Errorf("sim: crash runs own their journal; use CrashRunOptions.JournalPath")
	}
	if opts.Registry != nil {
		return fmt.Errorf("sim: crash runs do not support a metrics registry (families would re-register per lifetime)")
	}
	if opts.BidFaults != (proto.FaultPlan{}) || opts.BroadcastFaults != (proto.FaultPlan{}) {
		return fmt.Errorf("sim: crash runs take no protocol faults (injector schedules are seed-positional and cannot resume)")
	}
	prev := -1
	for _, k := range c.Kills {
		if k.AfterSlot <= prev {
			return fmt.Errorf("sim: kill slots must be strictly increasing (%d after %d)", k.AfterSlot, prev)
		}
		if k.AfterSlot >= sc.Slots-1 {
			return fmt.Errorf("sim: kill after slot %d leaves nothing to recover (horizon %d)", k.AfterSlot, sc.Slots)
		}
		prev = k.AfterSlot
	}
	return nil
}

// expectedBids precomputes how many rack-level bids land per slot. Agents'
// PlanBids is a pure function of the slot (trace-driven), so walking the
// horizon up front tells the BeforeBids barrier exactly how many arrivals
// to wait for.
func expectedBids(sc Scenario) []int {
	expect := make([]int, sc.Slots)
	for slot := range expect {
		for _, a := range sc.Agents {
			// The empty hint mirrors runNetTenant's live call exactly.
			expect[slot] += len(netBids(sc.Topo, a.PlanBids(slot, tenant.MarketHint{})))
		}
	}
	return expect
}

// tearWALTail appends a partial frame to the newest WAL segment: a valid
// header claiming a 64-byte payload followed by only 8 bytes of it — the
// on-disk signature of a process dying mid-write. The bytes are built by
// hand on purpose: the harness simulates a torn write, it does not go
// through the log's API.
func tearWALTail(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	newest := ""
	for _, e := range entries {
		name := e.Name()
		// Fixed-width hex sequence names sort lexicographically.
		if strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".seg") && name > newest {
			newest = name
		}
	}
	if newest == "" {
		return fmt.Errorf("sim: no WAL segment to tear in %s", dir)
	}
	f, err := os.OpenFile(filepath.Join(dir, newest), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	torn := append([]byte{0xD7, 0x01, 0x01, 0x00, 0x00, 0x40}, make([]byte, 8)...)
	if _, err := f.Write(torn); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// CrashNetRun executes the scenario as a sequence of operator lifetimes
// separated by the configured kills, recovering each lifetime from the
// StateDir. See the package comment in this file for the determinism
// contract.
func CrashNetRun(sc Scenario, opts NetRunOptions, crash CrashRunOptions) (*CrashResult, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	opts.setDefaults()
	if err := crash.validate(sc, opts); err != nil {
		return nil, err
	}
	expect := expectedBids(sc)
	res := &CrashResult{}
	resume := 0
	for seg := 0; seg <= len(crash.Kills); seg++ {
		var kill *CrashKill
		end := sc.Slots
		if seg < len(crash.Kills) {
			kill = &crash.Kills[seg]
			end = kill.AfterSlot + 1
		}
		if err := runCrashSegment(sc, opts, crash, res, seg, resume, end, kill, expect); err != nil {
			return nil, fmt.Errorf("sim: crash segment %d (slots %d..%d): %w", seg, resume, end-1, err)
		}
		resume = end
		res.Segments++
	}
	return res, nil
}

// runCrashSegment is one operator lifetime: recover from the state dir,
// run slots [resume, end), then either shut down cleanly (final segment)
// or die per the kill.
func runCrashSegment(sc Scenario, opts NetRunOptions, crash CrashRunOptions, res *CrashResult,
	seg, resume, end int, kill *CrashKill, expect []int) error {
	topo := sc.Topo
	var aud *core.Auditor
	if opts.Audit {
		aud = &core.Auditor{}
		sc.MarketOptions.Audit = aud
	}
	opCfg := operator.Config{
		Topology:      topo,
		MarketOptions: sc.MarketOptions,
		Pricing:       sc.Pricing,
		Predict:       sc.Predict,
	}
	var units []*rackpdu.PDU
	if em := opts.Emergency; em != nil {
		if em.OverloadPDU < 0 || em.OverloadPDU >= len(topo.PDUs) {
			return fmt.Errorf("emergency OverloadPDU %d of %d", em.OverloadPDU, len(topo.PDUs))
		}
		units = make([]*rackpdu.PDU, len(topo.Racks))
		for i, r := range topo.Racks {
			unit, err := rackpdu.New(rackpdu.Config{
				ID:          r.ID,
				BudgetWatts: r.Guaranteed + r.SpotHeadroom,
				ResetDelay:  em.ResetDelay,
			})
			if err != nil {
				return err
			}
			units[i] = unit
		}
		opCfg.Emergency = &operator.ResponderConfig{
			EscalationSeverity: em.EscalationSeverity,
			RecoverySlots:      em.RecoverySlots,
			SetBudget: func(rack int, budgetWatts float64) error {
				return units[rack].SetBudget(budgetWatts)
			},
		}
	}
	op, err := operator.New(opCfg)
	if err != nil {
		return err
	}
	srv, err := proto.NewServerOpts("127.0.0.1:0", func(id string) (int, bool) {
		return topo.RackByID(id)
	}, proto.ServerOptions{
		SessionTTL: opts.SessionTTL,
		BidWindow:  opts.BidWindow,
		OwnerOf:    func(i int) string { return topo.Racks[i].Tenant },
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	log, rec, err := wal.Open(wal.Options{
		Dir:          crash.StateDir,
		Policy:       crash.Policy,
		SegmentBytes: crash.SegmentBytes,
	})
	if err != nil {
		return err
	}
	recovered, err := proto.RecoverDurable(rec, op, srv)
	if err != nil {
		log.Close()
		return err
	}
	res.Truncations += recovered.Truncations
	res.Replayed += recovered.SlotsReplayed
	if recovered.NextSlot != resume {
		log.Close()
		return fmt.Errorf("recovered to slot %d, harness expected %d", recovered.NextSlot, resume)
	}
	// Rebuild the caller's state (snapshot, then replayed slots in order)
	// and the rack PDUs' budgets (the newest capture wins — it is the
	// physical state the next reading depends on).
	var lastBudgets []float64
	restoreExtra := func(raw []byte, snapshot bool) error {
		if len(raw) == 0 {
			return nil
		}
		var e crashExtra
		if err := json.Unmarshal(raw, &e); err != nil {
			return fmt.Errorf("corrupt harness extra: %w", err)
		}
		if e.Budgets != nil {
			lastBudgets = e.Budgets
		}
		if snapshot && crash.RestoreSnapshot != nil && e.Caller != nil {
			return crash.RestoreSnapshot(e.Caller)
		}
		if !snapshot && crash.ReplaySlot != nil && e.Caller != nil {
			return crash.ReplaySlot(e.Caller)
		}
		return nil
	}
	if err := restoreExtra(recovered.ExtraSnapshot, true); err != nil {
		log.Close()
		return err
	}
	for _, raw := range recovered.ExtraSlots {
		if err := restoreExtra(raw, false); err != nil {
			log.Close()
			return err
		}
	}
	if units != nil && lastBudgets != nil {
		if len(lastBudgets) != len(units) {
			log.Close()
			return fmt.Errorf("recovered %d rack budgets for %d racks", len(lastBudgets), len(units))
		}
		for i, b := range lastBudgets {
			if err := units[i].SetBudget(b); err != nil {
				log.Close()
				return err
			}
		}
	}
	if seg > 0 && crash.OnRestart != nil {
		crash.OnRestart(seg, recovered)
	}

	// The journal survives the crash as a plain append-only file; recovered
	// lifetimes reopen it with the header already on disk.
	var journal *metrics.Journal
	if crash.JournalPath != "" {
		flags := os.O_CREATE | os.O_WRONLY
		if seg == 0 {
			flags |= os.O_TRUNC
		} else {
			flags |= os.O_APPEND
		}
		jf, err := os.OpenFile(crash.JournalPath, flags, 0o644)
		if err != nil {
			log.Close()
			return err
		}
		defer jf.Close()
		journal = metrics.NewJournalOpts(jf, metrics.JournalOptions{
			SyncEvery: crash.JournalSyncEvery,
			Resumed:   seg > 0,
		})
	}

	clock, err := proto.NewSlotClock(
		time.Now().Add(2*opts.SlotLen).Add(-time.Duration(resume)*opts.SlotLen), opts.SlotLen)
	if err != nil {
		log.Close()
		return err
	}

	// Reference reading, as in NetRun: racks at 75% of guarantee (capped at
	// their rack PDU's budget when the emergency loop is armed), with
	// NaN poisoning and overload surges on their scheduled slots.
	errorSlot := make(map[int]bool, len(opts.ErrorSlots))
	for _, s := range opts.ErrorSlots {
		errorSlot[s] = true
	}
	surgeSlot := make(map[int]bool)
	if opts.Emergency != nil {
		for _, s := range opts.Emergency.OverloadSlots {
			surgeSlot[s] = true
		}
	}
	rackWatts := make([]float64, len(topo.Racks))
	otherWatts := make([]float64, len(topo.PDUs))
	reading := func(slot int) power.Reading {
		if errorSlot[slot] {
			return power.Reading{
				RackWatts:     []float64{math.NaN()},
				OtherPDUWatts: otherWatts,
			}
		}
		for m := range otherWatts {
			otherWatts[m] = sc.OtherLoad[m].At(slot)
		}
		for i, r := range topo.Racks {
			w := 0.75 * r.Guaranteed
			if em := opts.Emergency; em != nil {
				if surgeSlot[slot] && r.PDU == em.OverloadPDU {
					w += em.OverloadRackWatts
				}
				if b := units[i].Budget(); w > b {
					w = b
				}
			}
			rackWatts[i] = w
		}
		return power.Reading{RackWatts: rackWatts, OtherPDUWatts: otherWatts}
	}

	slotLen := opts.SlotLen
	loop := proto.MarketLoop{
		Server:                 srv,
		Operator:               op,
		Clock:                  clock,
		Reading:                reading,
		RackID:                 func(i int) string { return topo.Racks[i].ID },
		MaxConsecutiveFailures: opts.MaxConsecutiveFailures,
		BreakerCooldownSlots:   opts.BreakerCooldownSlots,
		Journal:                journal,
		Durable: &proto.Durable{
			Log:           log,
			SnapshotEvery: crash.SnapshotEvery,
			OnCommit:      crash.OnCommit,
			ExtraSlot: func(slot int) ([]byte, error) {
				return marshalCrashExtra(units, func() ([]byte, error) {
					if crash.ExtraSlot == nil {
						return nil, nil
					}
					return crash.ExtraSlot(slot)
				})
			},
			ExtraSnapshot: func() ([]byte, error) {
				return marshalCrashExtra(units, func() ([]byte, error) {
					if crash.ExtraSnapshot == nil {
						return nil, nil
					}
					return crash.ExtraSnapshot()
				})
			},
		},
		// Bid-arrival barrier: every run, interrupted or not, must drain
		// the same bid set per slot. Bounded by a quarter slot so a dead
		// tenant cannot stall the market.
		BeforeBids: func(slot int) {
			deadline := clock.StartOf(slot).Add(slotLen / 4)
			for srv.BufferedBids(slot) < expect[slot] && time.Now().Before(deadline) {
				time.Sleep(200 * time.Microsecond)
			}
		},
		OnSlot: func(slot int, out operator.SlotOutcome, bids int) {
			if err := op.VerifyFeasible(out.Result.Allocations); err != nil {
				res.InfeasibleSlots++
			}
		},
	}
	if em := opts.Emergency; em != nil {
		tol := em.BreakerTolerance
		if tol == 0 {
			tol = sc.BreakerTolerance
		}
		if tol == 0 {
			tol = 0.05
		}
		loop.CheckEmergencies = true
		loop.BreakerTolerance = tol
	}

	inj, err := proto.NewFaultInjector(proto.FaultPlan{})
	if err != nil {
		log.Close()
		return err
	}
	var wg sync.WaitGroup
	for idx := range sc.Agents {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			runNetTenant(sc.Agents[idx], topo, srv.Addr(), clock, resume, end, inj, nil, opts, int64(idx))
		}(idx)
	}

	cleared, runErr := loop.RunSlots(resume, end-resume)
	wg.Wait()
	if runErr != nil {
		log.Close()
		return runErr
	}
	res.Cleared += cleared
	res.SlotErrors += loop.SlotErrors()

	if kill != nil {
		// Die: yank the WAL's descriptors without flushing, optionally
		// leave a torn record behind. The journal file closes via defer —
		// a plain fd close loses nothing already written.
		srv.Close()
		log.Kill()
		if kill.TearTail {
			return tearWALTail(crash.StateDir)
		}
		return nil
	}
	// Final lifetime: orderly shutdown, then surface the books.
	if err := log.Close(); err != nil {
		return err
	}
	if journal != nil {
		if err := journal.Sync(); err != nil {
			return err
		}
	}
	if opts.Audit {
		if n := aud.Violations(); n > 0 {
			return fmt.Errorf("audit found %d clearing violation(s): %w", n, aud.Err())
		}
		if err := op.ReconcileAccounts(); err != nil {
			return fmt.Errorf("audit: %w", err)
		}
	}
	res.SpotRevenue = op.SpotRevenue()
	res.Checkpoint = op.Checkpoint()
	return nil
}

// marshalCrashExtra builds one slot/snapshot extra payload: current rack
// PDU budgets (when armed) plus the caller's opaque state.
func marshalCrashExtra(units []*rackpdu.PDU, caller func() ([]byte, error)) ([]byte, error) {
	var e crashExtra
	if units != nil {
		e.Budgets = make([]float64, len(units))
		for i, u := range units {
			e.Budgets[i] = u.Budget()
		}
	}
	raw, err := caller()
	if err != nil {
		return nil, err
	}
	e.Caller = raw
	return json.Marshal(e)
}
