package sim

import (
	"fmt"
	"math/rand"

	"spotdc/internal/core"
	"spotdc/internal/operator"
	"spotdc/internal/power"
	"spotdc/internal/tenant"
	"spotdc/internal/trace"
	"spotdc/internal/workload"
)

// TestbedOptions parameterizes the Table I scaled-down testbed scenario.
type TestbedOptions struct {
	// Seed drives every synthetic trace.
	Seed int64
	// Slots is the horizon (default 10 — the paper's 20-minute run).
	Slots int
	// SlotSeconds is the slot length (default 120 s).
	SlotSeconds int
	// OtherVolatility is the per-slot relative noise of the
	// non-participating tenants' power. The Fig. 10 run deliberately uses a
	// volatile synthetic trace (~0.08); long runs use the production-like
	// 0.008.
	OtherVolatility float64
	// OtherMeanFrac is the mean "Other" draw as a fraction of its 250 W
	// lease (default 0.72).
	OtherMeanFrac float64
	// SprintBurstFraction is the fraction of slots with sprinting-tenant
	// traffic bursts (default 0.15, the paper's "around 15% of the times").
	SprintBurstFraction float64
	// OppActiveFraction is the fraction of slots with opportunistic backlog
	// (default 0.30).
	OppActiveFraction float64
	// Policy selects every participating tenant's bidding policy.
	Policy tenant.BidPolicy
	// SprintPhase shifts the sprinting tenants' diurnal arrival curve in
	// radians; π starts the run at the daily traffic peak (used by the
	// short Fig. 10 demonstration window).
	SprintPhase float64
	// CapacityScale multiplies the PDU and UPS capacities, the knob the
	// paper turns to vary spot-capacity availability (Figs. 14, 15).
	// Default 1.
	CapacityScale float64
	// PriceStep is the clearing scan granularity (default 0.001 $/kW·h).
	PriceStep float64
	// Algorithm selects the clearing engine (default core.AlgorithmAuto:
	// exact breakpoint-driven clearing, with the grid scan as fallback).
	Algorithm core.Algorithm
	// UnderPrediction is the Fig. 17 conservative prediction factor.
	UnderPrediction float64
	// Hint supplies strategic bidders' market information (Fig. 16).
	Hint func(slot int) tenant.MarketHint
	// Parallel enables the simulator's intra-slot agent parallelism
	// (Scenario.Parallel): bit-identical to serial, faster on multi-core.
	Parallel bool
}

func (o *TestbedOptions) setDefaults() {
	if o.Slots == 0 {
		o.Slots = 10
	}
	if o.SlotSeconds == 0 {
		o.SlotSeconds = 120
	}
	if o.OtherVolatility == 0 {
		o.OtherVolatility = 0.008
	}
	if o.OtherMeanFrac == 0 {
		o.OtherMeanFrac = 0.72
	}
	if o.SprintBurstFraction == 0 {
		o.SprintBurstFraction = 0.15
	}
	if o.OppActiveFraction == 0 {
		o.OppActiveFraction = 0.30
	}
	if o.CapacityScale == 0 {
		o.CapacityScale = 1
	}
	if o.PriceStep == 0 {
		o.PriceStep = 0.001
	}
}

// Sprinting tenants bid well above the amortized guaranteed rate
// (≈0.164 $/kW·h at $120/kW/month); opportunistic tenants never exceed it.
const (
	sprintQMin = 0.18
	sprintQMax = 0.45
	webQMin    = 0.12
	webQMax    = 0.35
	oppQMin    = 0.02
	oppQMax    = 0.18
)

// Testbed builds the paper's Table I scenario: two 715/724 W PDUs (5%
// oversubscribed) under a 1370 W UPS, four participating tenants per PDU
// plus 250 W of non-participating "Other" load each.
func Testbed(opt TestbedOptions) (Scenario, error) {
	opt.setDefaults()
	topo, err := power.NewTopology(1370*opt.CapacityScale,
		[]power.PDU{
			{ID: "PDU#1", Capacity: 715 * opt.CapacityScale},
			{ID: "PDU#2", Capacity: 724 * opt.CapacityScale},
		},
		[]power.Rack{
			{ID: "S-1", Tenant: "Search-1", PDU: 0, Guaranteed: 145, SpotHeadroom: 60},
			{ID: "S-2", Tenant: "Web", PDU: 0, Guaranteed: 115, SpotHeadroom: 50},
			{ID: "O-1", Tenant: "Count-1", PDU: 0, Guaranteed: 125, SpotHeadroom: 60},
			{ID: "O-2", Tenant: "Graph-1", PDU: 0, Guaranteed: 115, SpotHeadroom: 50},
			{ID: "S-3", Tenant: "Search-2", PDU: 1, Guaranteed: 145, SpotHeadroom: 60},
			{ID: "O-3", Tenant: "Count-2", PDU: 1, Guaranteed: 125, SpotHeadroom: 60},
			{ID: "O-4", Tenant: "Sort", PDU: 1, Guaranteed: 125, SpotHeadroom: 60},
			{ID: "O-5", Tenant: "Graph-2", PDU: 1, Guaranteed: 115, SpotHeadroom: 50},
		})
	if err != nil {
		return Scenario{}, err
	}
	agents, err := testbedAgents(topo, opt, 1.0, "")
	if err != nil {
		return Scenario{}, err
	}
	others, err := otherTraces(opt, 2, 250, 0)
	if err != nil {
		return Scenario{}, err
	}
	return Scenario{
		Name:             "testbed",
		Topo:             topo,
		Agents:           agents,
		OtherLoad:        others,
		OtherLeasedWatts: 500,
		Slots:            opt.Slots,
		SlotSeconds:      opt.SlotSeconds,
		MarketOptions:    core.Options{PriceStep: opt.PriceStep, Ration: true, Algorithm: opt.Algorithm},
		Pricing:          operator.DefaultPricing(),
		Predict:          power.PredictOptions{UnderPredictionFactor: opt.UnderPrediction},
		BreakerTolerance: 0.05,
		Hint:             opt.Hint,
		Parallel:         opt.Parallel,
	}, nil
}

// testbedAgents builds the eight Table I participating tenants. scale
// jitters model magnitudes and suffix disambiguates rack IDs and names
// across scaled replicas.
func testbedAgents(topo *power.Topology, opt TestbedOptions, scale float64, suffix string) ([]tenant.Agent, error) {
	rackIdx := func(id string) (int, error) {
		i, ok := topo.RackByID(id + suffix)
		if !ok {
			return 0, fmt.Errorf("sim: rack %q missing from topology", id+suffix)
		}
		return i, nil
	}
	seedBase := opt.Seed*1000 + int64(len(suffix))
	mkSprintLoad := func(seed int64, base, peak float64) (*trace.Power, error) {
		return trace.GenerateArrivals(trace.ArrivalConfig{
			Name: "load", Seed: seed, Slots: opt.Slots, SlotSeconds: opt.SlotSeconds,
			BaseRate: base * scale, PeakRate: peak * scale,
			// Bursts push the load modestly past what the reservation
			// sustains: the paper notes Search-1 would need only ~10% more
			// guaranteed capacity to ride them out (Section V-B1).
			BurstFraction: opt.SprintBurstFraction, BurstFactor: 1.15,
			PhaseOffset: opt.SprintPhase,
		})
	}
	mkBacklog := func(seed int64) (*trace.Power, error) {
		return trace.GenerateBacklog(trace.BacklogConfig{
			Name: "backlog", Seed: seed, Slots: opt.Slots, SlotSeconds: opt.SlotSeconds,
			ActiveFraction: opt.OppActiveFraction, MeanUnits: 10,
		})
	}

	scaleLatency := func(m workload.LatencyModel) workload.LatencyModel {
		m.MaxRate *= scale
		return m
	}
	scaleThroughput := func(m workload.ThroughputModel) workload.ThroughputModel {
		m.MaxUnits *= scale
		return m
	}

	var agents []tenant.Agent
	// Sprinting tenants: loads sized so the diurnal peak sits at the edge
	// of what the reservation sustains at the 100 ms SLO, and 1.5× bursts
	// push past it (Search at 145 W sustains ≈72 req/s at SLO; Web at
	// 115 W ≈49 req/s).
	type sprintSpec struct {
		alias, rack string
		model       workload.LatencyModel
		cost        workload.SprintCost
		reserved    float64
		base, peak  float64
		qMin, qMax  float64
	}
	sprints := []sprintSpec{
		{"Search-1", "S-1", scaleLatency(workload.SearchModel()), workload.DefaultSprintCost(), 145, 40, 68, sprintQMin, sprintQMax},
		{"Web", "S-2", scaleLatency(workload.WebModel()), workload.WebSprintCost(), 115, 28, 46, webQMin, webQMax},
		{"Search-2", "S-3", scaleLatency(workload.SearchModel()), workload.DefaultSprintCost(), 145, 42, 70, sprintQMin, sprintQMax},
	}
	for i, s := range sprints {
		rack, err := rackIdx(s.rack)
		if err != nil {
			return nil, err
		}
		load, err := mkSprintLoad(seedBase+int64(i)+1, s.base, s.peak)
		if err != nil {
			return nil, err
		}
		agents = append(agents, &tenant.Sprint{
			TenantName: s.alias + suffix,
			RackIndex:  rack,
			Model:      s.model,
			Cost:       s.cost,
			Reserved:   s.reserved,
			Headroom:   topo.Racks[rack].SpotHeadroom,
			Load:       load,
			QMin:       s.qMin,
			QMax:       s.qMax,
			Policy:     opt.Policy,
		})
	}
	type oppSpec struct {
		alias, rack string
		model       workload.ThroughputModel
		reserved    float64
	}
	opps := []oppSpec{
		{"Count-1", "O-1", scaleThroughput(workload.WordCountModel()), 125},
		{"Graph-1", "O-2", scaleThroughput(workload.GraphModel()), 115},
		{"Count-2", "O-3", scaleThroughput(workload.WordCountModel()), 125},
		{"Sort", "O-4", scaleThroughput(workload.TeraSortModel()), 125},
		{"Graph-2", "O-5", scaleThroughput(workload.GraphModel()), 115},
	}
	for i, o := range opps {
		rack, err := rackIdx(o.rack)
		if err != nil {
			return nil, err
		}
		backlog, err := mkBacklog(seedBase + int64(i) + 100)
		if err != nil {
			return nil, err
		}
		agents = append(agents, &tenant.Opp{
			TenantName: o.alias + suffix,
			RackIndex:  rack,
			Model:      o.model,
			Cost:       workload.DefaultOppCost(),
			Reserved:   o.reserved,
			Headroom:   topo.Racks[rack].SpotHeadroom,
			Backlog:    backlog,
			QMin:       oppQMin,
			QMax:       oppQMax,
			Policy:     opt.Policy,
		})
	}
	return agents, nil
}

func otherTraces(opt TestbedOptions, pdus int, leasedPerPDU float64, seedOffset int64) ([]*trace.Power, error) {
	out := make([]*trace.Power, pdus)
	for m := 0; m < pdus; m++ {
		tr, err := trace.GeneratePower(trace.PowerConfig{
			Name: fmt.Sprintf("other-pdu%d", m), Seed: opt.Seed + seedOffset + int64(m)*7 + 11,
			Slots: opt.Slots, SlotSeconds: opt.SlotSeconds,
			MeanWatts:  leasedPerPDU * opt.OtherMeanFrac,
			MinWatts:   leasedPerPDU * 0.35,
			MaxWatts:   leasedPerPDU,
			Volatility: opt.OtherVolatility,
		})
		if err != nil {
			return nil, err
		}
		out[m] = tr
	}
	return out, nil
}

// ScaledOptions parameterizes the Fig. 18 / Fig. 7(b) large-scale
// scenario.
type ScaledOptions struct {
	// Testbed carries the shared knobs.
	Testbed TestbedOptions
	// Tenants is the number of participating tenants; the composition of
	// Table I (8 participating tenants per 2-PDU cluster) is replicated and
	// the spare tenants of the last replica are dropped.
	Tenants int
	// JitterFrac randomly scales each replica's workloads and cost models
	// up/down by up to this fraction (paper: 20%).
	JitterFrac float64
}

// Scaled builds a large data center by replicating the Table I cluster.
// Every replica gets its own pair of PDUs; the UPS is sized to keep the 5%
// oversubscription of the testbed.
func Scaled(opt ScaledOptions) (Scenario, error) {
	opt.Testbed.setDefaults()
	if opt.Tenants <= 0 {
		return Scenario{}, fmt.Errorf("sim: Tenants %d must be positive", opt.Tenants)
	}
	if opt.JitterFrac < 0 || opt.JitterFrac >= 1 {
		return Scenario{}, fmt.Errorf("sim: JitterFrac %v outside [0,1)", opt.JitterFrac)
	}
	replicas := (opt.Tenants + 7) / 8
	rng := rand.New(rand.NewSource(opt.Testbed.Seed + 17))

	var pdus []power.PDU
	var racks []power.Rack
	rackSpecs := []struct {
		id, tenant string
		pdu        int
		guaranteed float64
		headroom   float64
	}{
		{"S-1", "Search-1", 0, 145, 60},
		{"S-2", "Web", 0, 115, 50},
		{"O-1", "Count-1", 0, 125, 60},
		{"O-2", "Graph-1", 0, 115, 50},
		{"S-3", "Search-2", 1, 145, 60},
		{"O-3", "Count-2", 1, 125, 60},
		{"O-4", "Sort", 1, 125, 60},
		{"O-5", "Graph-2", 1, 115, 50},
	}
	scales := make([]float64, replicas)
	for rep := 0; rep < replicas; rep++ {
		scale := 1.0
		if opt.JitterFrac > 0 {
			scale = 1 + (rng.Float64()*2-1)*opt.JitterFrac
		}
		scales[rep] = scale
		suffix := fmt.Sprintf("/%d", rep)
		base := len(pdus)
		cs := opt.Testbed.CapacityScale * scale
		pdus = append(pdus,
			power.PDU{ID: fmt.Sprintf("PDU#1%s", suffix), Capacity: 715 * cs},
			power.PDU{ID: fmt.Sprintf("PDU#2%s", suffix), Capacity: 724 * cs},
		)
		for _, rs := range rackSpecs {
			racks = append(racks, power.Rack{
				ID:           rs.id + suffix,
				Tenant:       rs.tenant + suffix,
				PDU:          base + rs.pdu,
				Guaranteed:   rs.guaranteed * scale,
				SpotHeadroom: rs.headroom * scale,
			})
		}
	}
	upsCapacity := 0.0
	for _, p := range pdus {
		upsCapacity += p.Capacity
	}
	upsCapacity /= 1.05
	topo, err := power.NewTopology(upsCapacity, pdus, racks)
	if err != nil {
		return Scenario{}, err
	}

	var agents []tenant.Agent
	var others []*trace.Power
	kept := 0
	for rep := 0; rep < replicas; rep++ {
		suffix := fmt.Sprintf("/%d", rep)
		repOpt := opt.Testbed
		repOpt.Seed += int64(rep) * 31
		repAgents, err := testbedAgents(topo, repOpt, scales[rep], suffix)
		if err != nil {
			return Scenario{}, err
		}
		// The last replica's spare tenants are dropped; their racks remain
		// in the topology as static leases at their reference power.
		for _, a := range repAgents {
			if kept < opt.Tenants {
				agents = append(agents, a)
				kept++
			}
		}
		// Reserved capacities of replica racks are jittered; size the
		// "Other" load accordingly.
		repOthers, err := otherTraces(repOpt, 2, 250*scales[rep], int64(rep)*101)
		if err != nil {
			return Scenario{}, err
		}
		others = append(others, repOthers...)
	}

	sc := Scenario{
		Name:             fmt.Sprintf("scaled-%d", opt.Tenants),
		Topo:             topo,
		Agents:           agents,
		OtherLoad:        others,
		OtherLeasedWatts: 500 * float64(replicas),
		Slots:            opt.Testbed.Slots,
		SlotSeconds:      opt.Testbed.SlotSeconds,
		MarketOptions:    core.Options{PriceStep: opt.Testbed.PriceStep, Ration: true, Algorithm: opt.Testbed.Algorithm},
		Pricing:          operator.DefaultPricing(),
		Predict:          power.PredictOptions{UnderPredictionFactor: opt.Testbed.UnderPrediction},
		BreakerTolerance: 0.05,
		Hint:             opt.Testbed.Hint,
		Parallel:         opt.Testbed.Parallel,
	}
	return sc, nil
}
