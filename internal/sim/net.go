// Networked scenario runner: drives a Scenario's tenants against the real
// internal/proto transport (Fig. 5) instead of in-process calls, with
// protocol-level fault injection. This is the harness behind the Section
// III-C robustness claim: under any injected fault schedule — lost bids,
// missed broadcasts, severed connections, operator slot failures — the
// market keeps clearing, allocations stay feasible, and affected tenants
// fall back to the no-spot default.
package sim

import (
	"fmt"
	"math"
	"sync"
	"time"

	"spotdc/internal/core"
	"spotdc/internal/metrics"
	"spotdc/internal/operator"
	"spotdc/internal/otrace"
	"spotdc/internal/power"
	"spotdc/internal/proto"
	"spotdc/internal/rackpdu"
	"spotdc/internal/tenant"
)

// NetEmergencyOptions arms the emergency loop end to end over the wire:
// the operator's market loop checks every cleared reading for excursions,
// the responder plans reclamation and pushes budget resets into emulated
// rack PDUs (the authoritative physical cap on each rack's draw), budget
// resets are broadcast to the affected tenants, and spot sales at the
// element stay suspended until readings recover.
type NetEmergencyOptions struct {
	// BreakerTolerance is the excursion fraction breakers ride through
	// (default: the scenario's, or 0.05 — the testbed breakers').
	BreakerTolerance float64
	// EscalationSeverity and RecoverySlots configure the responder (see
	// operator.ResponderConfig; zeros take its defaults).
	EscalationSeverity float64
	RecoverySlots      int
	// OverloadSlots lists the slots during which every rack under
	// OverloadPDU draws OverloadRackWatts beyond its 75%-of-guarantee
	// reference — the injected excursion the responder must contain.
	OverloadSlots     []int
	OverloadRackWatts float64
	OverloadPDU       int
	// ResetDelay emulates the rack PDUs' budget-reset firmware latency
	// (see rackpdu.Config; the AP8632 sustains 20+ resets/s).
	ResetDelay time.Duration
}

// NetRunOptions configures a networked scenario run.
type NetRunOptions struct {
	// SlotLen is the wall-clock slot length (default 40ms; the scenario's
	// SlotSeconds still sets the *billed* slot duration so revenue matches
	// the in-process simulator's economics).
	SlotLen time.Duration
	// BidFaults injects faults into tenant→operator writes (hellos and
	// bids): the paper's "lost bid" exception.
	BidFaults proto.FaultPlan
	// BroadcastFaults injects faults into operator→tenant writes (price
	// broadcasts, acks): the paper's "missed broadcast" exception.
	BroadcastFaults proto.FaultPlan
	// ErrorSlots poisons the operator's power reading (NaN watts) for the
	// listed slots, forcing RunSlot to fail so the loop's degradation path
	// is exercised end to end.
	ErrorSlots []int
	// MaxConsecutiveFailures / BreakerCooldownSlots configure the market
	// loop's circuit breaker (see proto.MarketLoop).
	MaxConsecutiveFailures int
	BreakerCooldownSlots   int
	// Reconnect enables tenant auto-reconnect with backoff (see
	// proto.ClientOptions).
	Reconnect bool
	// Wire selects every tenant client's wire encoding (default
	// proto.WireJSON). The server accepts both encodings regardless — it
	// answers each client in whichever encoding it opened with.
	Wire proto.Encoding
	// WireFor, if non-nil, selects the wire encoding per agent index,
	// overriding Wire — the mixed-fleet interop hook (some tenants on
	// legacy JSON, some on binary, one market).
	WireFor func(agentIdx int) proto.Encoding
	// SessionTTL is the server-side half-open session expiry (default
	// 10×SlotLen).
	SessionTTL time.Duration
	// BidWindow is the server's bid acceptance window in slots (default
	// proto's 16).
	BidWindow int
	// Registry, if non-nil, instruments the whole networked plane on one
	// registry: the market core and operator families (as in Run), plus one
	// shared proto.Metrics wired into the server, every tenant client, and
	// both fault injectors — so /metrics shows sessions, bid rejections,
	// broadcast outcomes, and injected faults live.
	Registry *metrics.Registry
	// Journal, if non-nil, receives one structured SlotEvent JSON line per
	// market slot (cleared or degraded), stamped with the cumulative
	// injected-fault counts of both directions. The journal opens with a
	// schema-v2 header, making the run deterministically replayable by
	// internal/audit and cmd/spotdc-audit.
	Journal *metrics.Journal
	// Audit attaches a conservation auditor to the market core and, after
	// the run, reconciles the operator's books; any violation fails the run
	// with a descriptive error (see RunOptions.Audit).
	Audit bool
	// Emergency, if non-nil, arms the emergency loop (see
	// NetEmergencyOptions). Nil keeps the networked run bit-identical to a
	// harness without the emergency subsystem.
	Emergency *NetEmergencyOptions
	// Tracer, if non-nil, traces the operator plane: the market loop opens
	// one root span per slot with children for bid drain, predict, clear,
	// audit, emergencies, WAL commit, and broadcast (including per-session
	// send spans). The same tracer is wired into the server and operator.
	Tracer *otrace.Tracer
	// TenantTracer, if non-nil, traces every tenant client (bid decision,
	// submit, await-price) and upgrades their binary sessions to the
	// trace-carrying v2 framing. Use a separate tracer (and journal) from
	// the operator's so the two planes' rings don't contend.
	TenantTracer *otrace.Tracer
	// Durable, if non-nil, is threaded into the market loop so every
	// cleared slot commits to the write-ahead log before its broadcast
	// (see proto.Durable); with Tracer set, the commit is visible as a
	// wal_commit child span.
	Durable *proto.Durable
}

func (o *NetRunOptions) setDefaults() {
	if o.SlotLen <= 0 {
		o.SlotLen = 40 * time.Millisecond
	}
	if o.SessionTTL <= 0 {
		o.SessionTTL = 10 * o.SlotLen
	}
}

// NetTenantStats reports one tenant's view of a networked run.
type NetTenantStats struct {
	// Name is the tenant name.
	Name string
	// BidSlots counts slots the agent submitted (or tried to submit) bids
	// for.
	BidSlots int
	// SubmitFailures counts bid submissions that failed even after
	// reconnect: the tenant ran those slots without spot capacity.
	SubmitFailures int
	// GrantSlots counts slots with a positive spot grant received.
	GrantSlots int
	// NoSpotSlots counts awaited slots that ended in the no-spot default
	// (missed broadcast, rejected bid, or degraded zero-price slot).
	NoSpotSlots int
	// Reconnects counts restored connections.
	Reconnects int
	// BudgetResets counts emergency budget-reset broadcasts this tenant
	// received and applied (Emergency runs only).
	BudgetResets int
	// DialFailed marks a tenant that never established its session.
	DialFailed bool
}

// NetResult is the outcome of a networked scenario run.
type NetResult struct {
	// Slots echoes the horizon; Cleared counts slots that cleared and
	// SlotErrors slots that degraded to the no-spot default.
	Slots      int
	Cleared    int
	SlotErrors int
	// BreakerTripped reports whether the loop ended with the circuit
	// breaker open.
	BreakerTripped bool
	// InfeasibleSlots counts broadcast allocations that failed an
	// independent VerifyFeasible re-check — any value but zero is a
	// reliability violation.
	InfeasibleSlots int
	// BidFaults / BroadcastFaults are the injected-fault counts for each
	// direction.
	BidFaults       proto.FaultStats
	BroadcastFaults proto.FaultStats
	// ReapedSessions counts server-side session expirations/evictions.
	ReapedSessions int
	// SpotRevenue is the operator's cumulative spot revenue in $.
	SpotRevenue float64
	// EmergencySlots counts cleared slots whose reading exceeded breaker
	// tolerance somewhere in the hierarchy (Emergency runs only); the
	// responder totals below mirror the operator's accessors.
	EmergencySlots     int
	EmergenciesActed   int
	ReclaimedWatts     float64
	GuaranteedCutWatts float64
	InvoluntaryCuts    int
	// BudgetResets totals the budget resets applied across all emulated
	// rack PDUs (reclaims and restores alike).
	BudgetResets int
	// Tenants maps tenant name to its networked stats.
	Tenants map[string]*NetTenantStats
}

// netBids converts an agent's market bids to wire form. Only piece-wise
// linear bids have a four-parameter wire encoding (Eqn. 5); others are
// dropped (the wire protocol is exactly the paper's).
func netBids(topo *power.Topology, bids []core.Bid) []proto.RackBid {
	out := make([]proto.RackBid, 0, len(bids))
	for _, b := range bids {
		lb, ok := b.Fn.(core.LinearBid)
		if !ok {
			continue
		}
		out = append(out, proto.RackBid{
			Rack: topo.Racks[b.Rack].ID,
			DMax: lb.DMax, DMin: lb.DMin, QMin: lb.QMin, QMax: lb.QMax,
		})
	}
	return out
}

// NetRun executes the scenario's market over real TCP connections with the
// given fault schedule. The operator side runs proto.MarketLoop (with its
// degradation semantics); each agent runs a tenant goroutine that bids per
// slot and awaits the price broadcast, pacing itself by the shared slot
// clock so a missed broadcast costs exactly one slot. Agents' Execute
// feedback is not replayed into the readings — racks are referenced at 75%
// of their guarantee, as in the spotdc-operator demo — because the harness
// exists to stress the transport, not the workload models.
func NetRun(sc Scenario, opts NetRunOptions) (*NetResult, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	opts.setDefaults()
	var opMetrics *operator.Metrics
	var protoMetrics *proto.Metrics
	if opts.Registry != nil {
		sc.MarketOptions.Metrics = core.NewMarketMetrics(opts.Registry)
		opMetrics = operator.NewMetrics(opts.Registry)
		protoMetrics = proto.NewMetrics(opts.Registry)
	}
	var aud *core.Auditor
	if opts.Audit {
		aud = &core.Auditor{}
		sc.MarketOptions.Audit = aud
	}
	topo := sc.Topo
	opCfg := operator.Config{
		Topology:      topo,
		MarketOptions: sc.MarketOptions,
		Pricing:       sc.Pricing,
		Predict:       sc.Predict,
		Metrics:       opMetrics,
		Tracer:        opts.Tracer,
	}
	// With the emergency loop armed, every rack gets an emulated intelligent
	// PDU: the responder's budget resets land there, and the unit's budget is
	// the authoritative physical cap on what the rack can draw.
	var units []*rackpdu.PDU
	if em := opts.Emergency; em != nil {
		if em.OverloadPDU < 0 || em.OverloadPDU >= len(topo.PDUs) {
			return nil, fmt.Errorf("sim: emergency OverloadPDU %d of %d", em.OverloadPDU, len(topo.PDUs))
		}
		var rpm *rackpdu.Metrics
		if opts.Registry != nil {
			rpm = rackpdu.NewMetrics(opts.Registry)
		}
		units = make([]*rackpdu.PDU, len(topo.Racks))
		for i, r := range topo.Racks {
			unit, err := rackpdu.New(rackpdu.Config{
				ID:          r.ID,
				BudgetWatts: r.Guaranteed + r.SpotHeadroom,
				ResetDelay:  em.ResetDelay,
				Metrics:     rpm,
			})
			if err != nil {
				return nil, err
			}
			units[i] = unit
		}
		opCfg.Emergency = &operator.ResponderConfig{
			EscalationSeverity: em.EscalationSeverity,
			RecoverySlots:      em.RecoverySlots,
			SetBudget: func(rack int, budgetWatts float64) error {
				return units[rack].SetBudget(budgetWatts)
			},
		}
	}
	op, err := operator.New(opCfg)
	if err != nil {
		return nil, err
	}
	bidInj, err := proto.NewFaultInjector(opts.BidFaults)
	if err != nil {
		return nil, err
	}
	bcastInj, err := proto.NewFaultInjector(opts.BroadcastFaults)
	if err != nil {
		return nil, err
	}
	bidInj.SetMetrics(protoMetrics)
	bcastInj.SetMetrics(protoMetrics)
	srv, err := proto.NewServerOpts("127.0.0.1:0", func(id string) (int, bool) {
		return topo.RackByID(id)
	}, proto.ServerOptions{
		SessionTTL: opts.SessionTTL,
		BidWindow:  opts.BidWindow,
		// Rack ownership: a tenant may only register (and bid for) its own
		// racks — without this, any connected tenant could claim another's
		// headroom.
		OwnerOf:  func(i int) string { return topo.Racks[i].Tenant },
		WrapConn: bcastInj.Wrap,
		Metrics:  protoMetrics,
		Tracer:   opts.Tracer,
		// Logf stays nil: faults are expected here, the server is quiet by
		// default, and the metrics above carry the signal.
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	clock, err := proto.NewSlotClock(time.Now().Add(2*opts.SlotLen), opts.SlotLen)
	if err != nil {
		return nil, err
	}

	// Reference reading: racks at 75% of their guarantee, non-participants
	// from their traces; ErrorSlots poison the snapshot with NaN so
	// RunSlot fails and the loop must degrade.
	errorSlot := make(map[int]bool, len(opts.ErrorSlots))
	for _, s := range opts.ErrorSlots {
		errorSlot[s] = true
	}
	surgeSlot := make(map[int]bool)
	if opts.Emergency != nil {
		for _, s := range opts.Emergency.OverloadSlots {
			surgeSlot[s] = true
		}
	}
	rackWatts := make([]float64, len(topo.Racks))
	for i, r := range topo.Racks {
		rackWatts[i] = 0.75 * r.Guaranteed
	}
	otherWatts := make([]float64, len(topo.PDUs))
	reading := func(slot int) power.Reading {
		if errorSlot[slot] {
			return power.Reading{
				RackWatts:     []float64{math.NaN()},
				OtherPDUWatts: otherWatts,
			}
		}
		for m := range otherWatts {
			otherWatts[m] = sc.OtherLoad[m].At(slot)
		}
		if em := opts.Emergency; em != nil {
			// Offered load (reference + surge), capped at the rack PDU's
			// current budget — the physical enforcement of a reclaim plan.
			for i, r := range topo.Racks {
				w := 0.75 * r.Guaranteed
				if surgeSlot[slot] && r.PDU == em.OverloadPDU {
					w += em.OverloadRackWatts
				}
				if b := units[i].Budget(); w > b {
					w = b
				}
				rackWatts[i] = w
			}
		}
		return power.Reading{RackWatts: rackWatts, OtherPDUWatts: otherWatts}
	}

	res := &NetResult{
		Slots:   sc.Slots,
		Tenants: make(map[string]*NetTenantStats, len(sc.Agents)),
	}
	loop := proto.MarketLoop{
		Server:                 srv,
		Operator:               op,
		Clock:                  clock,
		Reading:                reading,
		RackID:                 func(i int) string { return topo.Racks[i].ID },
		MaxConsecutiveFailures: opts.MaxConsecutiveFailures,
		BreakerCooldownSlots:   opts.BreakerCooldownSlots,
		Journal:                opts.Journal,
		Durable:                opts.Durable,
		Tracer:                 opts.Tracer,
		FaultCounts: func() (drops, delays, severs int64) {
			b, c := bidInj.Stats(), bcastInj.Stats()
			return b.Drops + c.Drops, b.Delays + c.Delays, b.Severs + c.Severs
		},
		OnSlot: func(slot int, out operator.SlotOutcome, bids int) {
			if err := op.VerifyFeasible(out.Result.Allocations); err != nil {
				res.InfeasibleSlots++
			}
		},
		OnSlotError: func(slot int, err error) {},
	}
	if em := opts.Emergency; em != nil {
		tol := em.BreakerTolerance
		if tol == 0 {
			tol = sc.BreakerTolerance
		}
		if tol == 0 {
			tol = 0.05
		}
		loop.CheckEmergencies = true
		loop.BreakerTolerance = tol
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	for idx, a := range sc.Agents {
		wg.Add(1)
		go func(idx int, a tenant.Agent) {
			defer wg.Done()
			st := runNetTenant(a, topo, srv.Addr(), clock, 0, sc.Slots, bidInj, protoMetrics, opts, int64(idx))
			mu.Lock()
			res.Tenants[st.Name] = st
			mu.Unlock()
		}(idx, a)
	}

	cleared, runErr := loop.RunSlots(0, sc.Slots)
	wg.Wait()
	if runErr != nil {
		return nil, runErr
	}
	res.Cleared = cleared
	res.SlotErrors = loop.SlotErrors()
	res.BreakerTripped = loop.BreakerTripped()
	res.BidFaults = bidInj.Stats()
	res.BroadcastFaults = bcastInj.Stats()
	res.ReapedSessions = srv.ReapedSessions()
	res.SpotRevenue = op.SpotRevenue()
	if opts.Emergency != nil {
		res.EmergencySlots = op.EmergencySlots()
		res.EmergenciesActed = op.EmergenciesActed()
		res.ReclaimedWatts = op.ReclaimedWatts()
		res.GuaranteedCutWatts = op.GuaranteedCutWatts()
		res.InvoluntaryCuts = op.InvoluntaryCuts()
		for _, u := range units {
			res.BudgetResets += u.Resets()
		}
	}
	if opts.Audit {
		if n := aud.Violations(); n > 0 {
			return nil, fmt.Errorf("sim: audit found %d clearing violation(s): %w", n, aud.Err())
		}
		if err := op.ReconcileAccounts(); err != nil {
			return nil, fmt.Errorf("sim: audit: %w", err)
		}
	}
	return res, nil
}

// runNetTenant is one tenant's bidding loop over the wire for slots
// [from, to): submit during the preceding slot, await the price just after
// the boundary, and treat every failure as "no spot capacity this slot".
// A non-zero from is the restart path — a tenant reconnecting to an
// operator that recovered mid-horizon picks up bidding at the recovered
// market position (the server rejects anything earlier as stale).
func runNetTenant(a tenant.Agent, topo *power.Topology, addr string, clock *proto.SlotClock,
	from, to int, inj *proto.FaultInjector, pm *proto.Metrics, opts NetRunOptions, seed int64) *NetTenantStats {
	st := &NetTenantStats{Name: a.Name()}
	rackIDs := make([]string, 0, len(a.Racks()))
	for _, r := range a.Racks() {
		rackIDs = append(rackIDs, topo.Racks[r].ID)
	}
	wire := opts.Wire
	if opts.WireFor != nil {
		// seed is the agent index (see the NetRun fan-out), so WireFor can
		// mix encodings per tenant within one market.
		wire = opts.WireFor(int(seed))
	}
	copts := proto.ClientOptions{
		Reconnect:        opts.Reconnect,
		BackoffBase:      opts.SlotLen / 8,
		BackoffMax:       opts.SlotLen,
		MaxAttempts:      12,
		Seed:             seed,
		HandshakeTimeout: 2 * opts.SlotLen,
		Dialer:           inj.Dial,
		Wire:             wire,
		Metrics:          pm,
		Tracer:           opts.TenantTracer,
	}
	if opts.Emergency != nil {
		// Count delivered emergency budget resets; the callback runs on this
		// goroutine (inside AwaitPrice), so no locking is needed.
		copts.OnBudgetReset = func(slot int, budgets []proto.Grant) {
			st.BudgetResets++
		}
	}
	// The initial dial itself may be hit by injected faults; retry a few
	// times before conceding the tenant never joins the market.
	var client *proto.Client
	var err error
	for attempt := 0; attempt < 10; attempt++ {
		client, err = proto.DialOpts(addr, a.Name(), rackIDs, copts)
		if err == nil {
			break
		}
		time.Sleep(opts.SlotLen / 4)
	}
	if err != nil {
		st.DialFailed = true
		return st
	}
	defer client.Close()

	slotLen := clock.SlotLen()
	for slot := from; slot < to; slot++ {
		// Bid midway through the preceding slot (Fig. 6 discipline).
		if wait := time.Until(clock.StartOf(slot).Add(-slotLen / 2)); wait > 0 {
			time.Sleep(wait)
		}
		bd := opts.TenantTracer.StartChild("bid_decision", client.SlotSpan(slot))
		bids := netBids(topo, a.PlanBids(slot, tenant.MarketHint{}))
		if bd != nil {
			bd.SetInt("bids", int64(len(bids)))
			bd.End()
		}
		if len(bids) > 0 {
			st.BidSlots++
			if err := client.SubmitBids(slot, bids); err != nil {
				// Lost bid: the Section III-C default applies — the
				// tenant simply has no spot capacity this slot.
				st.SubmitFailures++
			}
		} else {
			// Idle slots still heartbeat (Fig. 5) so the server's
			// half-open reaper doesn't expire a quiet-but-live tenant.
			_ = client.HeartBeat(slot)
		}
		// Await the broadcast fired at the slot boundary, but never past
		// 3/4 of the slot: the tenant paces itself by the clock, so one
		// missed broadcast costs one slot, not the rest of the run.
		timeout := time.Until(clock.StartOf(slot).Add(3 * slotLen / 4))
		if timeout <= 0 {
			st.NoSpotSlots++
			continue
		}
		_, grants, err := client.AwaitPrice(slot, timeout)
		total := 0.0
		for _, g := range grants {
			total += g.Watts
		}
		switch {
		case err != nil, total <= 0:
			st.NoSpotSlots++
		default:
			st.GrantSlots++
		}
	}
	st.Reconnects = client.Reconnects()
	return st
}

// String summarizes a networked run.
func (r *NetResult) String() string {
	return fmt.Sprintf("net: %d/%d slots cleared (%d degraded, breaker=%v), %d infeasible, revenue $%.6f, faults bid=%+v bcast=%+v",
		r.Cleared, r.Slots, r.SlotErrors, r.BreakerTripped, r.InfeasibleSlots, r.SpotRevenue, r.BidFaults, r.BroadcastFaults)
}
