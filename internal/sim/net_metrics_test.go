package sim

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"spotdc/internal/metrics"
	"spotdc/internal/proto"
)

// TestNetRunMetricsMatchFaultSchedule runs the seeded Section III-C fault
// schedule with a metrics registry attached and asserts the scrape-surface
// fault counters agree EXACTLY with the injectors' own statistics (and that
// both are non-zero, so the assertion has teeth). The fault schedule is a
// pure function of its seeds, so this pins the protocol instrumentation to
// the ground truth: every injected drop/delay/sever is counted once.
func TestNetRunMetricsMatchFaultSchedule(t *testing.T) {
	reg := metrics.NewRegistry()
	var journal bytes.Buffer
	sc := testbedScenario(t, TestbedOptions{Seed: 17, Slots: 220})
	res, err := NetRun(sc, NetRunOptions{
		SlotLen: 15 * time.Millisecond,
		BidFaults: proto.FaultPlan{
			Seed: 1, DropProb: 0.08, DelayProb: 0.05, MaxDelay: 3 * time.Millisecond, SeverProb: 0.02,
		},
		BroadcastFaults: proto.FaultPlan{
			Seed: 2, DropProb: 0.05, DelayProb: 0.05, MaxDelay: 3 * time.Millisecond, SeverProb: 0.01,
		},
		ErrorSlots:             []int{60},
		MaxConsecutiveFailures: 5,
		Reconnect:              true,
		SessionTTL:             150 * time.Millisecond,
		Registry:               reg,
		Journal:                metrics.NewJournal(&journal),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Ground truth from the injectors themselves.
	wantDrops := res.BidFaults.Drops + res.BroadcastFaults.Drops
	wantDelays := res.BidFaults.Delays + res.BroadcastFaults.Delays
	wantSevers := res.BidFaults.Severs + res.BroadcastFaults.Severs
	if wantDrops == 0 || wantSevers == 0 {
		t.Fatalf("fault schedule never fired (drops=%d severs=%d) — the match below would be vacuous",
			wantDrops, wantSevers)
	}
	for _, tc := range []struct {
		kind string
		want int64
	}{
		{"drop", wantDrops},
		{"delay", wantDelays},
		{"sever", wantSevers},
	} {
		got, ok := reg.Value("spotdc_proto_faults_injected_total", tc.kind)
		if tc.want == 0 {
			// A kind that never fired may legitimately have no child yet.
			if ok && got != 0 {
				t.Errorf("faults_injected{kind=%q} = %v, want 0", tc.kind, got)
			}
			continue
		}
		if !ok || int64(got) != tc.want {
			t.Errorf("faults_injected{kind=%q} = %v (ok=%v), want exactly %d", tc.kind, got, ok, tc.want)
		}
	}

	// The slot counters must account for every slot of the run.
	cleared, _ := reg.Value("spotdc_operator_slots_total", "cleared")
	degraded, _ := reg.Value("spotdc_operator_slots_total", "degraded")
	breakerOpen, _ := reg.Value("spotdc_operator_slots_total", "breaker_open")
	if int(cleared) != res.Cleared {
		t.Errorf("slots_total{cleared} = %v, want %d", cleared, res.Cleared)
	}
	if int(degraded)+int(breakerOpen) != res.SlotErrors {
		t.Errorf("slots_total{degraded}+{breaker_open} = %v+%v, want %d",
			degraded, breakerOpen, res.SlotErrors)
	}

	// Market clearings: one per cleared slot, none lost.
	clears := 0.0
	for _, engine := range []string{"scan", "exact"} {
		if v, ok := reg.Value("spotdc_market_clears_total", engine); ok {
			clears += v
		}
	}
	if int(clears) != res.Cleared {
		t.Errorf("market_clears_total = %v, want %d", clears, res.Cleared)
	}

	// Reconnects: the registry total equals the per-tenant sum.
	wantReconnects := 0
	for _, ts := range res.Tenants {
		wantReconnects += ts.Reconnects
	}
	gotReconnects, _ := reg.Value("spotdc_proto_client_reconnects_total")
	if int(gotReconnects) != wantReconnects {
		t.Errorf("client_reconnects_total = %v, want %d", gotReconnects, wantReconnects)
	}

	// The journal opens with a schema-v2 header line, then carries one line
	// per slot; its fault counters end at the injector totals.
	hdr, events, err := metrics.ReadJournal(strings.NewReader(journal.String()))
	if err != nil {
		t.Fatal(err)
	}
	if hdr == nil || hdr.Schema != metrics.JournalSchemaV2 {
		t.Fatalf("journal header = %+v, want schema %s", hdr, metrics.JournalSchemaV2)
	}
	if len(events) != 220 {
		t.Fatalf("journal has %d events, want 220", len(events))
	}
	last := events[len(events)-1]
	if last.Slot != 219 {
		t.Errorf("last journal slot = %d, want 219", last.Slot)
	}
	// The last line's cumulative fault counts are stamped at broadcast
	// time; a reconnect racing the shutdown can add a handful of writes
	// after that, so the journal trails the injector totals by at most
	// those stragglers — never exceeds them, and is never zero here.
	if last.FaultDrops == 0 || last.FaultDrops > wantDrops ||
		last.FaultDelays > wantDelays || last.FaultSevers > wantSevers {
		t.Errorf("journal final fault counts = %d/%d/%d, want >0 and <= %d/%d/%d",
			last.FaultDrops, last.FaultDelays, last.FaultSevers, wantDrops, wantDelays, wantSevers)
	}
	degradedLines := 0
	for _, ev := range events {
		if ev.Degraded {
			degradedLines++
		}
	}
	if degradedLines != res.SlotErrors {
		t.Errorf("journal degraded lines = %d, want %d", degradedLines, res.SlotErrors)
	}
}

// TestNetRunMetricsOffIsDefault asserts an uninstrumented run works exactly
// as before — the registry and journal are strictly opt-in.
func TestNetRunMetricsOffIsDefault(t *testing.T) {
	sc := testbedScenario(t, TestbedOptions{Seed: 21, Slots: 10})
	res, err := NetRun(sc, NetRunOptions{SlotLen: 15 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cleared != 10 {
		t.Errorf("cleared = %d, want 10", res.Cleared)
	}
}
