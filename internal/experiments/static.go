package experiments

import (
	"fmt"
	"time"

	"spotdc/internal/core"
	"spotdc/internal/stats"
	"spotdc/internal/tenant"
	"spotdc/internal/trace"
	"spotdc/internal/workload"
)

func init() {
	register("table1", "Testbed configuration (Table I)", table1)
	register("fig2b", "CDF of tenants' aggregate power: oversubscription and spot capacity", fig2b)
	register("fig3", "Demand-function shapes and 10-rack aggregate", fig3)
	register("fig7a", "PDU power variation across consecutive slots", fig7a)
	register("fig7b", "Market clearing time at scale", fig7b)
	register("fig8", "Power-performance relation at different workload levels", fig8)
	register("fig9", "Performance gain ($/h) vs spot capacity", fig9)
}

func table1(opt Options) (*Report, error) {
	r := &Report{
		ID:     "table1",
		Title:  "Testbed configuration",
		Header: []string{"PDU", "Tenant", "Type", "Alias", "Workload", "Subscription"},
	}
	rows := [][]string{
		{"#1", "Search-1", "Sprinting", "S-1", "Search", "145W"},
		{"#1", "Web", "Sprinting", "S-2", "Web Serving", "115W"},
		{"#1", "Count-1", "Opportunistic", "O-1", "Word Count", "125W"},
		{"#1", "Graph-1", "Opportunistic", "O-2", "Graph Anal.", "115W"},
		{"#1", "Other", "-", "-", "-", "250W"},
		{"#2", "Search-2", "Sprinting", "S-3", "Search", "145W"},
		{"#2", "Count-2", "Opportunistic", "O-3", "Word Count", "125W"},
		{"#2", "Sort", "Opportunistic", "O-4", "TeraSort", "125W"},
		{"#2", "Graph-2", "Opportunistic", "O-5", "Graph Anal.", "115W"},
		{"#2", "Other", "-", "-", "-", "250W"},
	}
	r.Rows = rows
	r.Notes = append(r.Notes,
		"PDU#1 capacity 715 W, PDU#2 capacity 724 W (5% oversubscribed), UPS cap 1370 W")
	return r, nil
}

func fig2b(opt Options) (*Report, error) {
	// Five tenants sized so their sum rarely reaches the PDU capacity; then
	// two more are added (oversubscription) on the same capacity.
	mk := func(n int, seedOff int64) (*trace.Power, error) {
		agg := &trace.Power{Name: "agg", SlotSeconds: 60}
		for i := 0; i < n; i++ {
			cfg := trace.PowerConfig{
				Seed: opt.Seed + seedOff + int64(i), Slots: 3 * 30 * 24 * 60,
				MeanWatts: 140, MinWatts: 60, MaxWatts: 250,
				Volatility: 0.01, Diurnal: 0.25,
			}
			if i >= 5 {
				// The two tenants added for oversubscription are smaller
				// and peak off-phase, so the aggregate peak barely moves —
				// that is what makes oversubscription safe in practice.
				cfg.MeanWatts, cfg.MinWatts, cfg.MaxWatts = 50, 20, 100
				cfg.Diurnal = -0.25
			}
			tr, err := trace.GeneratePower(cfg)
			if err != nil {
				return nil, err
			}
			if agg.Watts == nil {
				agg.Watts = make([]float64, tr.Len())
			}
			for s, w := range tr.Watts {
				agg.Watts[s] += w
			}
		}
		return agg, nil
	}
	five, err := mk(5, 0)
	if err != nil {
		return nil, err
	}
	seven, err := mk(7, 0)
	if err != nil {
		return nil, err
	}
	capacity, err := stats.Max(five.Watts)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:     "fig2b",
		Title:  "CDF of aggregate power normalized to PDU capacity",
		Header: []string{"norm. power", "CDF 5 tenants", "CDF 7 tenants (oversub.)"},
	}
	c5 := stats.NewCDF(five.Watts)
	c7 := stats.NewCDF(seven.Watts)
	over := 0 // slots where the oversubscribed PDU exceeds capacity (area B)
	for _, w := range seven.Watts {
		if w > capacity {
			over++
		}
	}
	for _, frac := range []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0} {
		x := frac * capacity
		r.AddRow(F(frac), F(c5.At(x)), F(c7.At(x)))
	}
	util5 := stats.Mean(five.Watts) / capacity
	util7 := stats.Mean(seven.Watts) / capacity
	r.Notes = append(r.Notes,
		fmt.Sprintf("mean utilization: %s (5 tenants) -> %s (7 tenants); emergency slots (area B): %s",
			Pct(util5), Pct(util7), Pct(float64(over)/float64(seven.Len()))),
		"the gap below CDF=1 at norm. power 1.0 is the spot capacity (area C)")
	return r, nil
}

func fig3(opt Options) (*Report, error) {
	// A single search rack's demand functions: the tenant's true
	// ("Reference") curve and its LinearBid / StepBid approximations.
	load := constTrace(95, 4)
	agent := &tenant.Sprint{
		TenantName: "S-1", RackIndex: 0,
		Model: workload.SearchModel(), Cost: workload.DefaultSprintCost(),
		Reserved: 145, Headroom: 60, Load: load,
		QMin: 0.05, QMax: 0.45,
	}
	curve := agent.TrueDemand(0)
	// PlanBids returns agent-owned scratch (valid until the next call);
	// copy because both policies' bids are compared side by side below.
	elastic := append([]core.Bid(nil), agent.PlanBids(0, tenant.MarketHint{})...)
	agent.Policy = tenant.PolicyStep
	stepBids := append([]core.Bid(nil), agent.PlanBids(0, tenant.MarketHint{})...)
	if len(elastic) != 1 || len(stepBids) != 1 {
		return nil, fmt.Errorf("fig3: expected bids at load 95, got %d/%d", len(elastic), len(stepBids))
	}
	r := &Report{
		ID:     "fig3",
		Title:  "Demand functions: reference curve, LinearBid, StepBid",
		Header: []string{"price $/kWh", "reference W", "linear W", "step W", "aggregate-10 W"},
	}
	// Aggregate of ten racks with staggered price ranges (Fig. 3(b)).
	var agg []core.Bid
	for i := 0; i < 10; i++ {
		shift := 0.03 * float64(i)
		agg = append(agg, core.Bid{Rack: i, Fn: core.LinearBid{
			DMax: curve(0.05), DMin: curve(0.45), QMin: 0.05 + shift, QMax: 0.45 + shift}})
	}
	for q := 0.0; q <= 0.8001; q += 0.1 {
		r.AddRow(F(q), F(curve(q)), F(elastic[0].Fn.Demand(q)), F(stepBids[0].Fn.Demand(q)),
			F(core.AggregateDemand(agg, q)))
	}
	r.Notes = append(r.Notes, fmt.Sprintf("linear bid parameters: (Dmax=%s, qmin=0.05), (Dmin=%s, qmax=0.45)",
		F(curve(0.05)), F(curve(0.45))))
	return r, nil
}

// constTrace builds a flat trace for model-probing experiments.
func constTrace(v float64, n int) *trace.Power {
	w := make([]float64, n)
	for i := range w {
		w[i] = v
	}
	return &trace.Power{Name: "const", SlotSeconds: 120, Watts: w}
}

func fig7a(opt Options) (*Report, error) {
	tr, err := trace.GeneratePower(trace.PowerConfig{
		Seed: opt.Seed, Slots: 30 * 24 * 60, SlotSeconds: 60,
		MeanWatts: 250e3, MinWatts: 120e3, MaxWatts: 300e3,
		Volatility: 0.008, Diurnal: 0.15,
	})
	if err != nil {
		return nil, err
	}
	rel := stats.RelDiffs(tr.Watts)
	r := &Report{
		ID:     "fig7a",
		Title:  "PDU-level power variation between consecutive 1-minute slots",
		Header: []string{"|Δpower| ≤", "fraction of slots"},
	}
	within := func(th float64) float64 {
		n := 0
		for _, v := range rel {
			if v <= th {
				n++
			}
		}
		return float64(n) / float64(len(rel))
	}
	for _, th := range []float64{0.005, 0.01, 0.025, 0.05, 0.1} {
		r.AddRow(Pct(th), F(within(th)))
	}
	r.Notes = append(r.Notes, fmt.Sprintf(
		"paper (and [7]): ≤ ±2.5%% for 99%% of slots; measured %s", Pct(within(0.025))))
	return r, nil
}

func fig7b(opt Options) (*Report, error) {
	r := &Report{
		ID:     "fig7b",
		Title:  "Average market clearing time vs number of racks, price step and algorithm",
		Header: []string{"racks", "step $/kWh", "algorithm", "mean clearing time", "demand evals"},
	}
	for _, racks := range opt.ClearingRacks {
		for _, step := range []float64{0.001, 0.01} { // 0.1 and 1 cents/kW
			for _, algo := range []core.Algorithm{core.AlgorithmScan, core.AlgorithmExact} {
				dur, evals, err := clearingTime(opt.Seed, racks, step, algo, 3)
				if err != nil {
					return nil, err
				}
				r.AddRow(fmt.Sprint(racks), F(step), algo.String(), dur.String(), fmt.Sprint(evals))
			}
		}
	}
	r.Notes = append(r.Notes,
		"paper: <1 s at 15,000 racks with 0.1 cents/kW step; <100 ms at 1 cent/kW",
		"exact is breakpoint-driven (step-independent); scan is the paper's grid search")
	return r, nil
}

// clearingTime builds a synthetic market of the given size and measures
// Clear latency with the chosen algorithm, averaged over rounds.
func clearingTime(seed int64, racks int, step float64, algo core.Algorithm, rounds int) (time.Duration, int, error) {
	cons, bids := syntheticMarket(seed, racks)
	mkt, err := core.NewMarket(cons, core.Options{PriceStep: step, Algorithm: algo})
	if err != nil {
		return 0, 0, err
	}
	var total time.Duration
	evals := 0
	for i := 0; i < rounds; i++ {
		start := time.Now()
		res, err := mkt.Clear(bids)
		if err != nil {
			return 0, 0, err
		}
		total += time.Since(start)
		evals = res.Evaluations
	}
	return total / time.Duration(rounds), evals, nil
}

// syntheticMarket fabricates a large data center: 50 racks per PDU, one
// elastic bid per rack with testbed-like parameters.
func syntheticMarket(seed int64, racks int) (core.Constraints, []core.Bid) {
	pdus := (racks + 49) / 50
	cons := core.Constraints{
		RackHeadroom: make([]float64, racks),
		RackPDU:      make([]int, racks),
		PDUSpot:      make([]float64, pdus),
		UPSSpot:      float64(racks) * 20,
	}
	bids := make([]core.Bid, 0, racks)
	for i := 0; i < racks; i++ {
		cons.RackHeadroom[i] = 60
		cons.RackPDU[i] = i / 50
		cons.PDUSpot[i/50] += 25
		// Deterministic pseudo-variety without RNG overhead.
		v := float64((seed+int64(i)*2654435761)%97) / 97
		bids = append(bids, core.Bid{Rack: i, Tenant: fmt.Sprintf("t%d", i), Fn: core.LinearBid{
			DMax: 20 + 40*v,
			DMin: 5 * v,
			QMin: 0.02 + 0.1*v,
			QMax: 0.16 + 0.5*v,
		}})
	}
	return cons, bids
}

func fig8(opt Options) (*Report, error) {
	r := &Report{
		ID:     "fig8",
		Title:  "Power-performance relation at different workload levels",
		Header: []string{"workload", "level", "120W", "145W", "170W", "205W"},
	}
	search := workload.SearchModel()
	for _, load := range []float64{50, 75, 95} {
		row := []string{"search p99 ms", fmt.Sprintf("%.0f req/s", load)}
		for _, w := range []float64{120, 145, 170, 205} {
			row = append(row, F(search.LatencyMS(load, w)))
		}
		r.Rows = append(r.Rows, row)
	}
	web := workload.WebModel()
	for _, load := range []float64{30, 45, 60} {
		row := []string{"web p90 ms", fmt.Sprintf("%.0f req/s", load)}
		for _, w := range []float64{120, 145, 170, 205} {
			row = append(row, F(web.LatencyMS(load, w)))
		}
		r.Rows = append(r.Rows, row)
	}
	wc := workload.WordCountModel()
	row := []string{"wordcount MB/s", "batch"}
	for _, w := range []float64{120, 145, 170, 205} {
		row = append(row, F(wc.Throughput(w)))
	}
	r.Rows = append(r.Rows, row)
	r.Notes = append(r.Notes, "latency falls and throughput rises monotonically with the power budget, as in the paper's measured curves")
	return r, nil
}

func fig9(opt Options) (*Report, error) {
	r := &Report{
		ID:     "fig9",
		Title:  "Performance gain in $/h of using spot capacity",
		Header: []string{"spot W", "Search-1", "Web", "Count-1"},
	}
	searchGain := workload.SprintGainCurve(workload.SearchModel(), workload.DefaultSprintCost(), 95, 145)
	webGain := workload.SprintGainCurve(workload.WebModel(), workload.WebSprintCost(), 58, 115)
	countGain := workload.OppGainCurve(workload.WordCountModel(), workload.DefaultOppCost(), 125)
	for _, w := range []float64{0, 10, 20, 30, 40, 50, 60} {
		r.AddRow(F(w), F(searchGain(w)), F(webGain(w)), F(countGain(w)))
	}
	r.Notes = append(r.Notes, "values are small because the setup is scaled down, exactly as the paper notes")
	return r, nil
}
