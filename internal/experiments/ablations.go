package experiments

import (
	"fmt"

	"spotdc/internal/core"
	"spotdc/internal/par"
	"spotdc/internal/sim"
)

func init() {
	register("abl-pricing", "Ablation: uniform clearing price vs per-PDU prices", ablPricing)
	register("abl-granularity", "Ablation: rack-level vs tenant-level spot allocation (Section III-A)", ablGranularity)
	register("abl-ration", "Ablation: strict feasibility pricing vs best-effort rationing at scale", ablRation)
	register("abl-step", "Ablation: clearing-price step size vs profit and search cost", ablStep)
	register("abl-reserve", "Ablation: reserve (floor) price vs revenue and volume", ablReserve)
}

// ablPricing compares the paper's single uniform clearing price against
// clearing each PDU at its own price, on synthetic markets of growing
// size. Per-PDU pricing can extract more revenue from heterogeneous PDUs
// but requires per-PDU coordination; the paper chooses uniform pricing for
// simplicity and fairness.
func ablPricing(opt Options) (*Report, error) {
	r := &Report{
		ID:     "abl-pricing",
		Title:  "Uniform vs per-PDU clearing prices (revenue $/h, same bids)",
		Header: []string{"racks", "uniform $/h", "per-PDU $/h", "per-PDU gain"},
	}
	for _, racks := range []int{100, 500, 2000} {
		cons, bids := syntheticMarket(opt.Seed, racks)
		mkt, err := core.NewMarket(cons, core.Options{PriceStep: 0.002})
		if err != nil {
			return nil, err
		}
		uni, err := mkt.Clear(bids)
		if err != nil {
			return nil, err
		}
		per, err := mkt.ClearPerPDU(bids)
		if err != nil {
			return nil, err
		}
		perRev := 0.0
		for _, p := range per {
			perRev += p.RevenueRate
		}
		gain := 0.0
		if uni.RevenueRate > 0 {
			gain = perRev/uni.RevenueRate - 1
		}
		r.AddRow(fmt.Sprint(racks), F(uni.RevenueRate), F(perRev), Pct(gain))
	}
	r.Notes = append(r.Notes,
		"per-PDU pricing exploits PDU heterogeneity; SpotDC accepts the gap for a single simple market")
	return r, nil
}

// ablGranularity quantifies Section III-A's argument for rack-level
// allocation: with tenant-level grants the operator cannot control where a
// tenant concentrates its received power, so a tenant can overload one
// PDU. We model the worst case: each multi-rack tenant funnels its whole
// tenant-level grant into its single most-loaded PDU.
func ablGranularity(opt Options) (*Report, error) {
	// Two PDUs with 60 W spot each; one tenant owning one rack on each PDU
	// is granted 100 W at tenant level and concentrates it on PDU 0.
	cons := core.Constraints{
		RackHeadroom: []float64{80, 80},
		RackPDU:      []int{0, 1},
		PDUSpot:      []float64{60, 60},
		UPSSpot:      120,
	}
	mkt, err := core.NewMarket(cons, core.Options{PriceStep: 0.001})
	if err != nil {
		return nil, err
	}
	bids := []core.Bid{
		{Rack: 0, Tenant: "t", Fn: core.LinearBid{DMax: 60, DMin: 10, QMin: 0.02, QMax: 0.2}},
		{Rack: 1, Tenant: "t", Fn: core.LinearBid{DMax: 60, DMin: 10, QMin: 0.02, QMax: 0.2}},
	}
	res, err := mkt.Clear(bids)
	if err != nil {
		return nil, err
	}
	rackLevelWorst := 0.0
	for _, a := range res.Allocations {
		if a.Watts > rackLevelWorst {
			rackLevelWorst = a.Watts
		}
	}
	tenantTotal := res.TotalWatts // a tenant-level grant of the same size
	r := &Report{
		ID:     "abl-granularity",
		Title:  "Worst-case PDU overload under tenant-level allocation",
		Header: []string{"allocation", "worst single-PDU spot draw", "PDU spot", "overload"},
	}
	r.AddRow("rack-level (SpotDC)", F(rackLevelWorst), "60", Pct(rackLevelWorst/60-1))
	r.AddRow("tenant-level, concentrated", F(tenantTotal), "60", Pct(tenantTotal/60-1))
	r.Notes = append(r.Notes,
		"rack-level grants are individually capped by Eqns. (2)-(3); a tenant-level grant concentrated on one PDU exceeds its spot capacity — the Section III-A overload argument")
	return r, nil
}

// ablRation shows why the operator clears with best-effort rationing at
// scale: strict feasibility pricing lets the single most congested PDU
// floor the uniform price for the entire data center.
func ablRation(opt Options) (*Report, error) {
	r := &Report{
		ID:     "abl-ration",
		Title:  "Strict feasibility pricing vs best-effort rationing (extra profit)",
		Header: []string{"tenants", "strict", "rationed"},
	}
	// The (tenant count × ration) grid is independent scenarios; fan out
	// all cells and assemble rows by index.
	counts := opt.ScaleTenants
	cells := make([]string, 2*len(counts)) // [2i] strict, [2i+1] rationed
	err := par.ForErr(opt.Workers, len(cells), func(k int) error {
		n := counts[k/2]
		tb := sim.TestbedOptions{Seed: opt.Seed, Slots: opt.ScaleSlots, Parallel: opt.Parallel}
		sc, e := sim.Scaled(sim.ScaledOptions{Testbed: tb, Tenants: n, JitterFrac: 0.2})
		if e != nil {
			return e
		}
		sc.MarketOptions.Ration = k%2 == 1
		res, e := sim.Run(sc, sim.RunOptions{Mode: sim.ModeSpotDC, Registry: opt.Registry, Audit: opt.Audit, Tracer: opt.Tracer})
		if e != nil {
			return e
		}
		otherLeased := 500.0 * float64((n+7)/8)
		cells[k] = Pct(res.Profit(otherLeased).ExtraProfitFraction)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, n := range counts {
		r.Rows = append(r.Rows, []string{fmt.Sprint(n), cells[2*i], cells[2*i+1]})
	}
	r.Notes = append(r.Notes,
		"under strict pricing the most congested of ~2N/8 PDUs sets a global price floor; rationing keeps the market liquid (DESIGN.md)")
	return r, nil
}

// ablStep sweeps the clearing-price step size: coarser steps clear faster
// (Fig. 7(b)) but can miss the revenue peak.
func ablStep(opt Options) (*Report, error) {
	r := &Report{
		ID:     "abl-step",
		Title:  "Clearing-price step size vs revenue found and price evaluations",
		Header: []string{"step $/kWh", "revenue $/h", "revenue vs finest", "price evals"},
	}
	cons, bids := syntheticMarket(opt.Seed, 2000)
	// The step-size trade-off belongs to the paper's grid scan, so the
	// sweep pins AlgorithmScan; the default AlgorithmAuto resolves to the
	// exact breakpoint engine, whose work is step-independent (last row).
	finest := -1.0
	for _, step := range []float64{0.0005, 0.001, 0.005, 0.01, 0.05} {
		mkt, err := core.NewMarket(cons, core.Options{PriceStep: step, Algorithm: core.AlgorithmScan})
		if err != nil {
			return nil, err
		}
		res, err := mkt.Clear(bids)
		if err != nil {
			return nil, err
		}
		if finest < 0 {
			finest = res.RevenueRate
		}
		rel := 0.0
		if finest > 0 {
			rel = res.RevenueRate / finest
		}
		r.AddRow(F(step)+" (scan)", F(res.RevenueRate), F(rel), fmt.Sprint(res.Evaluations))
	}
	mkt, err := core.NewMarket(cons, core.Options{PriceStep: 0.001})
	if err != nil {
		return nil, err
	}
	res, err := mkt.Clear(bids)
	if err != nil {
		return nil, err
	}
	rel := 0.0
	if finest > 0 {
		rel = res.RevenueRate / finest
	}
	r.AddRow("any (exact)", F(res.RevenueRate), F(rel), fmt.Sprint(res.Evaluations))
	r.Notes = append(r.Notes,
		"even a 1 cent/kW step loses almost no revenue — the paper's fast scan is safe",
		"the exact engine's evaluation count is step-independent (candidate verification only)")
	return r, nil
}

// ablReserve sweeps the operator's reserve (floor) price: the knob the
// paper mentions for recouping metered-energy costs. A floor above the
// revenue-optimal price sacrifices volume for nothing.
func ablReserve(opt Options) (*Report, error) {
	r := &Report{
		ID:     "abl-reserve",
		Title:  "Reserve (floor) price vs revenue and volume",
		Header: []string{"reserve $/kWh", "revenue $/h", "sold W", "price $/kWh"},
	}
	cons, bids := syntheticMarket(opt.Seed, 1000)
	for _, reserve := range []float64{0, 0.02, 0.05, 0.10, 0.20, 0.40} {
		mkt, err := core.NewMarket(cons, core.Options{PriceStep: 0.002, ReservePrice: reserve, Ration: true})
		if err != nil {
			return nil, err
		}
		res, err := mkt.Clear(bids)
		if err != nil {
			return nil, err
		}
		r.AddRow(F(reserve), F(res.RevenueRate), F(res.TotalWatts), F(res.Price))
	}
	r.Notes = append(r.Notes,
		"floors below the revenue-optimal price are free; above it they trade volume for price and revenue falls")
	return r, nil
}
