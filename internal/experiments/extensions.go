package experiments

import (
	"fmt"
	"math"

	"spotdc/internal/core"
	"spotdc/internal/par"
	"spotdc/internal/sim"
	"spotdc/internal/stats"
	"spotdc/internal/tenant"
	"spotdc/internal/workload"
)

func init() {
	register("ext-predictor", "Extension: EWMA price prediction vs oracle vs default bidding", extPredictor)
	register("ext-bestresponse", "Extension: best-response bidding dynamics (the paper's future work)", extBestResponse)
	register("ext-faults", "Extension: communication loss → no-spot fallback (Section III-C)", extFaults)
	register("ext-batch", "Extension: batch job completion time (T_job) with and without spot capacity", extBatch)
	register("ext-emergency", "Extension: emergency response — spot reclamation and tenant capping (Section III-C)", extEmergency)
}

// extEmergency measures the closed emergency loop: a recurring PDU overload
// is injected into the testbed and the run is repeated with the operator's
// responder off (excursions merely counted, the historical behavior) and on
// (spot reclaimed, overloading racks capped, spot sales suspended until
// recovery). The responder should bound every excursion to the detection
// slot plus controller settling, reclaim only draw above guarantees, and
// cost a small slice of spot profit while suspended elements sell nothing.
func extEmergency(opt Options) (*Report, error) {
	r := &Report{
		ID:     "ext-emergency",
		Title:  "Emergency response: operator-driven spot reclamation with tenant power capping",
		Header: []string{"responder", "emergency slots", "longest excursion", "acted", "reclaimed W", "guaranteed cut W", "extra profit"},
	}
	slots := opt.LongSlots / 8
	emergency := func(responder bool) *sim.EmergencyScenario {
		return &sim.EmergencyScenario{
			Responder:         responder,
			RecoverySlots:     2,
			OverloadEvery:     60,
			OverloadDuration:  5,
			OverloadRackWatts: 70,
			OverloadPDU:       0,
		}
	}
	results := make([]*sim.Result, 2)
	err := par.ForErr(opt.Workers, 2, func(i int) error {
		sc, e := sim.Testbed(sim.TestbedOptions{Seed: opt.Seed, Slots: slots, Parallel: opt.Parallel})
		if e != nil {
			return e
		}
		sc.Emergency = emergency(i == 1)
		res, e := sim.Run(sc, sim.RunOptions{Mode: sim.ModeSpotDC, Registry: opt.Registry, Audit: opt.Audit, Tracer: opt.Tracer})
		results[i] = res
		return e
	})
	if err != nil {
		return nil, err
	}
	for i, label := range []string{"off", "on"} {
		res := results[i]
		r.AddRow(label, fmt.Sprint(res.EmergencySlots), fmt.Sprint(res.LongestEmergencyRun),
			fmt.Sprint(res.EmergenciesActed), F(res.ReclaimedWatts), F(res.GuaranteedCutWatts),
			Pct(res.Profit(500).ExtraProfitFraction))
	}
	r.Notes = append(r.Notes,
		"spot users are capped first, proportionally to granted spot capacity; guaranteed capacity is untouchable below the escalation severity",
		"suspended elements sell no spot until readings stay healthy for the recovery window, so the responder trades a slice of spot profit for bounded excursions")
	return r, nil
}

// extPredictor compares three sprinting-tenant information regimes: the
// default elastic bid (no prediction), a realistic EWMA predictor built
// from realized prices, and the oracle fixed point of fig16.
func extPredictor(opt Options) (*Report, error) {
	slots := opt.LongSlots / 4
	base := sim.TestbedOptions{Seed: opt.Seed, Slots: slots}
	// The capped baseline, the plain SpotDC run and the EWMA regime are
	// three independent scenarios — fan them out; only the oracle fixed
	// point below is inherently serial (each pass consumes the previous
	// pass's prices).
	var capped, plain, ewma *sim.Result
	err := par.ForErr(opt.Workers, 3, func(i int) error {
		switch i {
		case 0:
			res, e := runTestbed(opt, base, sim.ModePowerCapped, false)
			capped = res
			return e
		case 1:
			res, e := runTestbed(opt, base, sim.ModeSpotDC, false)
			plain = res
			return e
		}
		// EWMA regime: tenants predict the next price from realized
		// prices. The predictor state is private to this scenario; the
		// simulator calls Hint/PriceFeedback once per slot on the slot
		// loop's goroutine, so intra-slot agent parallelism never races it.
		ewmaTB := base
		ewmaTB.Policy = tenant.PolicyPricePredict
		ewmaTB.Parallel = opt.Parallel
		sc, e := sim.Testbed(ewmaTB)
		if e != nil {
			return e
		}
		predictor, e := stats.NewEWMA(0.3)
		if e != nil {
			return e
		}
		sc.Hint = func(slot int) tenant.MarketHint {
			if v, ok := predictor.Value(); ok && v > 0 {
				return tenant.MarketHint{PredictedPrice: v, HavePrediction: true}
			}
			return tenant.MarketHint{}
		}
		sc.PriceFeedback = func(slot int, price float64) {
			if price > 0 {
				predictor.Observe(price)
			}
		}
		res, e := sim.Run(sc, sim.RunOptions{Mode: sim.ModeSpotDC, Registry: opt.Registry, Audit: opt.Audit, Tracer: opt.Tracer})
		ewma = res
		return e
	})
	if err != nil {
		return nil, err
	}

	// Oracle regime: fig16's fixed point.
	prices := plain.PriceSeries
	var oracle *sim.Result
	for pass := 0; pass < 3; pass++ {
		ot := base
		ot.Policy = tenant.PolicyPricePredict
		captured := prices
		ot.Hint = func(slot int) tenant.MarketHint {
			if slot < len(captured) && captured[slot] > 0 {
				return tenant.MarketHint{PredictedPrice: captured[slot], HavePrediction: true}
			}
			return tenant.MarketHint{}
		}
		oracle, err = runTestbed(opt, ot, sim.ModeSpotDC, false)
		if err != nil {
			return nil, err
		}
		prices = oracle.PriceSeries
	}

	r := &Report{
		ID:     "ext-predictor",
		Title:  "Sprinting-tenant outcomes by price-information regime",
		Header: []string{"metric", "default", "EWMA", "oracle"},
	}
	sprintMetric := func(f func(ts *sim.TenantStats) float64, res *sim.Result) float64 {
		var vals []float64
		for _, name := range sortedNames(res.Tenants) {
			if ts := res.Tenants[name]; ts.Class == workload.Sprinting {
				vals = append(vals, f(ts))
			}
		}
		return stats.Mean(vals)
	}
	grant := func(res *sim.Result) float64 {
		return sprintMetric(func(ts *sim.TenantStats) float64 { return ts.GrantFrac.Mean() }, res)
	}
	perf := func(res *sim.Result) float64 {
		var vals []float64
		for _, name := range sortedNames(res.Tenants) {
			ts := res.Tenants[name]
			if ts.Class == workload.Sprinting && capped.Tenants[name].PerfNeed.Mean() > 0 {
				vals = append(vals, ts.PerfNeed.Mean()/capped.Tenants[name].PerfNeed.Mean())
			}
		}
		return stats.Mean(vals)
	}
	viol := func(res *sim.Result) float64 {
		return sprintMetric(func(ts *sim.TenantStats) float64 { return float64(ts.SLOViolations) }, res)
	}
	r.AddRow("avg spot grant (%res)", Pct(grant(plain)), Pct(grant(ewma)), Pct(grant(oracle)))
	r.AddRow("perf vs capped", F(perf(plain)), F(perf(ewma)), F(perf(oracle)))
	r.AddRow("SLO violations (avg/tenant)", F(viol(plain)), F(viol(ewma)), F(viol(oracle)))
	r.AddRow("operator extra profit", Pct(plain.Profit(500).ExtraProfitFraction),
		Pct(ewma.Profit(500).ExtraProfitFraction), Pct(oracle.Profit(500).ExtraProfitFraction))
	r.Notes = append(r.Notes, "an online EWMA gets most of the oracle's effect without operator-side disclosure")
	return r, nil
}

// brTenant is one participant of the best-response dynamics: a true gain
// curve plus its current two-point linear bid.
type brTenant struct {
	name     string
	rack     int
	gain     func(float64) float64
	maxWatts float64
	qMin     float64 // fixed anchor
	// strategy variable: the bid's maximum price.
	qMax float64
}

func (b *brTenant) bid() core.Bid {
	dMax := tenant.OptimalDemand(b.gain, b.qMin, b.maxWatts, 1)
	dMin := tenant.OptimalDemand(b.gain, b.qMax, b.maxWatts, 1)
	if dMin > dMax {
		dMin = dMax
	}
	return core.Bid{Rack: b.rack, Tenant: b.name, Fn: core.LinearBid{
		DMax: dMax, DMin: dMin, QMin: b.qMin, QMax: b.qMax}}
}

// extBestResponse runs the equilibrium analysis the paper leaves as future
// work: tenants iteratively best-respond in their bid's maximum price
// (their single strategic lever here) to maximize net benefit
// gain(grant) − payment, given the other tenants' bids fixed. We report
// whether the dynamics settle and what happens to welfare and revenue.
func extBestResponse(opt Options) (*Report, error) {
	cons := core.Constraints{
		RackHeadroom: []float64{60, 60, 60, 60},
		RackPDU:      []int{0, 0, 0, 0},
		PDUSpot:      []float64{120},
		UPSSpot:      120,
	}
	mkt, err := core.NewMarket(cons, core.Options{PriceStep: 0.002})
	if err != nil {
		return nil, err
	}
	mkGain := func(scale float64) func(float64) float64 {
		return func(w float64) float64 {
			if w <= 0 {
				return 0
			}
			return scale * (1 - math.Exp(-w/25))
		}
	}
	tenants := []*brTenant{
		{name: "t0", rack: 0, gain: mkGain(0.020), maxWatts: 60, qMin: 0.02, qMax: 0.30},
		{name: "t1", rack: 1, gain: mkGain(0.014), maxWatts: 60, qMin: 0.02, qMax: 0.30},
		{name: "t2", rack: 2, gain: mkGain(0.010), maxWatts: 60, qMin: 0.02, qMax: 0.30},
		{name: "t3", rack: 3, gain: mkGain(0.006), maxWatts: 60, qMin: 0.02, qMax: 0.30},
	}
	clear := func() (core.Result, error) {
		bids := make([]core.Bid, len(tenants))
		for i, t := range tenants {
			bids[i] = t.bid()
		}
		return mkt.Clear(bids)
	}
	netOf := func(res core.Result, i int) float64 {
		grant := res.Allocations[i].Watts
		return tenants[i].gain(grant) - res.Price*grant/1000
	}

	r := &Report{
		ID:     "ext-bestresponse",
		Title:  "Best-response dynamics over tenants' maximum bid price",
		Header: []string{"round", "price $/kWh", "sold W", "revenue $/h", "total net benefit $/h", "moved"},
	}
	candidates := []float64{0.06, 0.10, 0.14, 0.18, 0.22, 0.26, 0.30}
	converged := -1
	for round := 0; round < 12; round++ {
		moved := 0
		for i, t := range tenants {
			orig := t.qMax
			bestQ, bestNet := orig, math.Inf(-1)
			for _, q := range candidates {
				t.qMax = q
				res, err := clear()
				if err != nil {
					return nil, err
				}
				if net := netOf(res, i); net > bestNet+1e-12 {
					bestNet, bestQ = net, q
				}
			}
			t.qMax = bestQ
			if bestQ != orig {
				moved++
			}
		}
		res, err := clear()
		if err != nil {
			return nil, err
		}
		totalNet := 0.0
		for i := range tenants {
			totalNet += netOf(res, i)
		}
		r.AddRow(fmt.Sprint(round), F(res.Price), F(res.TotalWatts), F(res.RevenueRate), F(totalNet), fmt.Sprint(moved))
		if moved == 0 {
			converged = round
			break
		}
	}
	if converged >= 0 {
		r.Notes = append(r.Notes, fmt.Sprintf("best-response dynamics reached a fixed point after %d rounds", converged))
	} else {
		r.Notes = append(r.Notes, "best-response dynamics did not settle within 12 rounds (cycling is possible, as the paper anticipates)")
	}
	r.Notes = append(r.Notes, "strategic price-shading lowers the clearing price relative to truthful qMax=0.30 bids")
	return r, nil
}

// extFaults sweeps the bid-loss probability: lost submissions silently
// fall back to no spot capacity, degrading revenue gracefully. The market
// itself never oversells — every grant stays within the measured headroom
// of the prediction reading — but bid loss can still produce rare,
// breaker-tolerable excursions through the Section III-C reference rule:
// a rack that bursts from idle in the same slot its bid is lost is
// referenced at its (idle) instantaneous draw rather than its guaranteed
// capacity, so the operator momentarily sells slack the tenant is entitled
// to take back. The information needed to avoid this was exactly what the
// fault destroyed — no operator-side rule can recover it without
// forfeiting the oversubscription upside — so such slots are counted
// honestly and absorbed by breaker ride-through in practice.
func extFaults(opt Options) (*Report, error) {
	r := &Report{
		ID:     "ext-faults",
		Title:  "Communication loss: lost bid submissions → no-spot fallback",
		Header: []string{"loss prob", "lost bids", "extra profit", "mean perf vs capped", "emergencies"},
	}
	slots := opt.LongSlots / 8
	// One batch: the PowerCapped baseline (index 0) plus each loss
	// probability. Bid-loss draws come from per-agent splitmix streams, so
	// the fault pattern at a given probability is identical however the
	// batch is scheduled.
	probs := []float64{0, 0.05, 0.20, 0.50}
	var capped *sim.Result
	results := make([]*sim.Result, len(probs))
	err := par.ForErr(opt.Workers, len(probs)+1, func(i int) error {
		if i == 0 {
			res, e := runTestbed(opt, sim.TestbedOptions{Seed: opt.Seed, Slots: slots}, sim.ModePowerCapped, false)
			capped = res
			return e
		}
		sc, e := sim.Testbed(sim.TestbedOptions{Seed: opt.Seed, Slots: slots, Parallel: opt.Parallel})
		if e != nil {
			return e
		}
		sc.BidLossProb = probs[i-1]
		sc.FaultSeed = opt.Seed + 99
		res, e := sim.Run(sc, sim.RunOptions{Mode: sim.ModeSpotDC, Registry: opt.Registry, Audit: opt.Audit, Tracer: opt.Tracer})
		results[i-1] = res
		return e
	})
	if err != nil {
		return nil, err
	}
	for i, p := range probs {
		res := results[i]
		r.AddRow(Pct(p), fmt.Sprint(res.LostBids), Pct(res.Profit(500).ExtraProfitFraction),
			F(meanPerfRatio(res, capped)), fmt.Sprint(res.EmergencySlots))
	}
	r.Notes = append(r.Notes,
		"losing bids only forgoes upside: spot is sold out of measured headroom, so the market never oversells",
		"rare burst-onset excursions (a rack bursting from idle in the very slot its bid is lost) remain possible and stay within breaker ride-through")
	return r, nil
}

// extBatch measures the paper's opportunistic metric T_job directly: a
// WordCount tenant's jobs drain through a FIFO batch queue at whatever
// throughput its slot-by-slot power budget (reservation, or reservation +
// market grants) sustains, and the mean completion time is compared.
func extBatch(opt Options) (*Report, error) {
	slots := opt.LongSlots / 8
	tb := sim.TestbedOptions{Seed: opt.Seed, Slots: slots}
	capped, spot, err := twoModes(opt, tb, sim.ModePowerCapped, sim.ModeSpotDC, true)
	if err != nil {
		return nil, err
	}
	const tenantName = "Count-1"
	jobUnits := workload.WordCountModel().Throughput(125) * 120 * 2 // ~2 capped slots of work

	tJob := func(res *sim.Result) (float64, int, error) {
		tp := res.TenantTraces[tenantName] // units/s per slot (PerfScore)
		var q workload.BatchQueue
		for slot := 0; slot < len(tp); slot++ {
			// A job lands at the start of every active stretch and every
			// 3 slots within one.
			if tp[slot] > 0 && (slot == 0 || tp[slot-1] == 0 || slot%3 == 0) {
				if _, err := q.Submit(slot, jobUnits); err != nil {
					return 0, 0, err
				}
			}
			if _, err := q.Drain(slot, tp[slot], res.SlotSeconds); err != nil {
				return 0, 0, err
			}
		}
		return q.MeanCompletionSlots(), len(q.Completed()), nil
	}
	tCapped, nCapped, err := tJob(capped)
	if err != nil {
		return nil, err
	}
	tSpot, nSpot, err := tJob(spot)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:     "ext-batch",
		Title:  "Batch job completion time (T_job) with and without spot capacity",
		Header: []string{"scheme", "jobs finished", "mean T_job (slots)"},
	}
	r.AddRow("PowerCapped", fmt.Sprint(nCapped), F(tCapped))
	r.AddRow("SpotDC", fmt.Sprint(nSpot), F(tSpot))
	if tSpot > 0 {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"spot capacity cuts T_job by %.2fx — the direct form of the paper's c = ρ·T_job improvement", tCapped/tSpot))
	}
	return r, nil
}
