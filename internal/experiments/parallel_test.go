package experiments

import (
	"reflect"
	"runtime"
	"testing"
)

// benchSizedOptions shrinks every horizon so the full suite runs in seconds
// while still exercising the same fan-out code paths as the real runs.
func benchSizedOptions() Options {
	return Options{
		Seed:          42,
		LongSlots:     1200,
		ScaleTenants:  []int{8, 50},
		ScaleSlots:    60,
		ClearingRacks: []int{1500},
	}
}

// TestFanOutDeterminism is the reproducibility contract of the scenario
// fan-out: for the same seed, every report must be cell-for-cell identical
// whether its scenarios run serially (Workers=1) or concurrently
// (Workers=4, with intra-slot agent parallelism on top). fig7b is excluded
// because its rows record wall-clock clearing times.
func TestFanOutDeterminism(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	serialOpt := benchSizedOptions()
	serialOpt.Workers = 1
	parOpt := benchSizedOptions()
	parOpt.Workers = 4
	parOpt.Parallel = true

	reports, err := RunAll(parOpt)
	if err != nil {
		t.Fatal(err)
	}
	ids := IDs()
	if len(reports) != len(ids) {
		t.Fatalf("RunAll returned %d reports for %d ids", len(reports), len(ids))
	}
	for i, rep := range reports {
		if rep.ID != ids[i] {
			t.Fatalf("RunAll order: report %d is %q, want %q", i, rep.ID, ids[i])
		}
	}
	for _, rep := range reports {
		if rep.ID == "fig7b" {
			continue // rows are wall-clock timings
		}
		serial, err := Run(rep.ID, serialOpt)
		if err != nil {
			t.Fatalf("%s: %v", rep.ID, err)
		}
		if !reflect.DeepEqual(serial.Rows, rep.Rows) {
			t.Errorf("%s: rows differ between Workers=1 and Workers=4", rep.ID)
			for r := range serial.Rows {
				if r < len(rep.Rows) && !reflect.DeepEqual(serial.Rows[r], rep.Rows[r]) {
					t.Errorf("%s: first diverging row %d:\n  serial:   %v\n  parallel: %v",
						rep.ID, r, serial.Rows[r], rep.Rows[r])
					break
				}
			}
		}
		if !reflect.DeepEqual(serial.Notes, rep.Notes) {
			t.Errorf("%s: notes differ between Workers=1 and Workers=4:\n  serial:   %v\n  parallel: %v",
				rep.ID, serial.Notes, rep.Notes)
		}
	}
}
