package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// fastOpt shrinks horizons so the full experiment suite runs in seconds.
func fastOpt() Options {
	return Options{
		Seed:          42,
		LongSlots:     1600,
		ScaleTenants:  []int{8, 24},
		ScaleSlots:    80,
		ClearingRacks: []int{500},
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "fig2b", "fig3", "fig7a", "fig7b", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
	}
	ids := IDs()
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
		if title, ok := Title(id); !ok || title == "" {
			t.Errorf("experiment %s has no title", id)
		}
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if _, ok := Title("bogus"); ok {
		t.Error("bogus title found")
	}
	if _, err := Run("bogus", Options{}); err == nil {
		t.Error("bogus experiment ran")
	}
}

// pct parses a report percentage cell like "9.7%".
func pct(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		t.Fatalf("bad percentage cell %q: %v", cell, err)
	}
	return v
}

func num(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("bad numeric cell %q: %v", cell, err)
	}
	return v
}

func TestEveryExperimentProducesRowsAndPrints(t *testing.T) {
	opt := fastOpt()
	for _, id := range IDs() {
		rep, err := Run(id, opt)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if rep.ID != id {
			t.Errorf("%s: report has ID %s", id, rep.ID)
		}
		if len(rep.Rows) == 0 {
			t.Errorf("%s: no rows", id)
		}
		var buf bytes.Buffer
		if err := rep.Fprint(&buf); err != nil {
			t.Errorf("%s: print: %v", id, err)
		}
		if !strings.Contains(buf.String(), id) {
			t.Errorf("%s: printout missing ID", id)
		}
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	rep, err := Run("table1", fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(rep.Rows))
	}
	subs := map[string]string{"Search-1": "145W", "Web": "115W", "Count-1": "125W", "Sort": "125W"}
	seen := 0
	for _, row := range rep.Rows {
		if want, ok := subs[row[1]]; ok {
			seen++
			if row[5] != want {
				t.Errorf("%s subscription = %s, want %s", row[1], row[5], want)
			}
		}
	}
	if seen != 4 {
		t.Errorf("only matched %d known tenants", seen)
	}
}

func TestFig2bShowsOversubscriptionEffect(t *testing.T) {
	rep, err := Run("fig2b", fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	// At every sampled normalized power, the oversubscribed (7-tenant) CDF
	// must sit at or below the 5-tenant CDF (higher utilization).
	for _, row := range rep.Rows {
		c5, c7 := num(t, row[1]), num(t, row[2])
		if c7 > c5+1e-9 {
			t.Errorf("at %s: 7-tenant CDF %v above 5-tenant %v", row[0], c7, c5)
		}
	}
}

func TestFig3DemandShapes(t *testing.T) {
	rep, err := Run("fig3", fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	prevRef, prevAgg := 1e18, 1e18
	for _, row := range rep.Rows {
		ref, lin, step, agg := num(t, row[1]), num(t, row[2]), num(t, row[3]), num(t, row[4])
		if ref > prevRef+1e-9 || agg > prevAgg+1e-9 {
			t.Errorf("demand not monotone at price %s", row[0])
		}
		prevRef, prevAgg = ref, agg
		if lin < 0 || step < 0 {
			t.Errorf("negative demand at price %s", row[0])
		}
	}
	// Step bid must be flat at the maximum demand until it drops to zero.
	first := num(t, rep.Rows[0][3])
	sawZero := false
	for _, row := range rep.Rows {
		s := num(t, row[3])
		if s != 0 && sawZero {
			t.Error("step bid recovered after dropping to zero")
		}
		if s == 0 {
			sawZero = true
		} else if s != first {
			t.Errorf("step bid not flat: %v vs %v", s, first)
		}
	}
}

func TestFig7aVariationWithinPaperBound(t *testing.T) {
	rep, err := Run("fig7a", fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	// Row with threshold 2.5% must be ≥ 0.99 (Section III-C's statistic).
	for _, row := range rep.Rows {
		if row[0] == "2.5%" {
			if frac := num(t, row[1]); frac < 0.99 {
				t.Errorf("only %v of slots within ±2.5%%", frac)
			}
			return
		}
	}
	t.Fatal("2.5% row missing")
}

func TestFig7bClearingFast(t *testing.T) {
	rep, err := Run("fig7b", fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 { // one rack count × two step sizes × two algorithms
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// Rows alternate scan/exact; the exact engine must never be slower than
	// the scan by more than noise on the same market (it does O(B log B)
	// work instead of O(prices × bids)).
	for _, row := range rep.Rows {
		if row[2] != "scan" && row[2] != "exact" {
			t.Fatalf("unexpected algorithm column %q", row[2])
		}
	}
}

func TestFig9GainsOrdered(t *testing.T) {
	rep, err := Run("fig9", fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	// Gains are non-decreasing in spot watts for every tenant, and the
	// Search tenant values spot capacity the most (it bids highest).
	prev := []float64{-1, -1, -1}
	for _, row := range rep.Rows {
		for c := 1; c <= 3; c++ {
			g := num(t, row[c])
			if g < prev[c-1]-1e-9 {
				t.Errorf("gain column %d decreases at %s W", c, row[0])
			}
			prev[c-1] = g
		}
	}
	last := rep.Rows[len(rep.Rows)-1]
	if num(t, last[1]) <= num(t, last[3]) {
		t.Errorf("search gain %s not above opportunistic %s", last[1], last[3])
	}
}

func TestFig10AllocationWithinAvailability(t *testing.T) {
	rep, err := Run("fig10", fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 10 {
		t.Fatalf("rows = %d, want 10 slots", len(rep.Rows))
	}
	soldAny := false
	for _, row := range rep.Rows {
		avail, sold := num(t, row[2]), num(t, row[3])
		if sold > avail+1e-6 {
			t.Errorf("slot %s sold %v of %v available", row[0], sold, avail)
		}
		if sold > 0 {
			soldAny = true
		}
	}
	if !soldAny {
		t.Error("demo trace sold nothing")
	}
}

func TestFig11SpotDCBeatsCapped(t *testing.T) {
	rep, err := Run("fig11", fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	// Search-1's perf under SpotDC must dominate the capped trace.
	wins, active := 0, 0
	for _, row := range rep.Rows {
		spot, capped := num(t, row[1]), num(t, row[2])
		if spot == 0 && capped == 0 {
			continue
		}
		active++
		if spot >= capped-1e-9 {
			wins++
		}
	}
	if active == 0 || wins < active {
		t.Errorf("SpotDC won only %d of %d active slots", wins, active)
	}
}

func TestFig12PaperHeadlines(t *testing.T) {
	rep, err := Run("fig12", fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 tenants", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		cost := num(t, row[1])
		if cost < 1-1e-9 || cost > 1.15 {
			t.Errorf("%s cost ratio %v outside (1, 1.15): spot must cost something but stay marginal", row[0], cost)
		}
		perf := num(t, row[2])
		if perf < 1 || perf > 4 {
			t.Errorf("%s perf ratio %v implausible", row[0], perf)
		}
		perfMax := num(t, row[3])
		if perfMax < perf*0.8 {
			t.Errorf("%s MaxPerf %v well below SpotDC %v", row[0], perfMax, perf)
		}
	}
}

func TestFig13UtilizationImproves(t *testing.T) {
	rep, err := Run("fig13", fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	// At every sampled utilization level, SpotDC's UPS-power CDF sits at or
	// below PowerCapped's: SpotDC shifts power upward (more utilization).
	leq := 0
	for _, row := range rep.Rows {
		s, c := num(t, row[2]), num(t, row[3])
		if s <= c+1e-9 {
			leq++
		}
	}
	if leq < len(rep.Rows)-1 {
		t.Errorf("SpotDC CDF above PowerCapped at %d of %d points", len(rep.Rows)-leq, len(rep.Rows))
	}
}

func TestFig14LinearBeatsStepApproachesFull(t *testing.T) {
	rep, err := Run("fig14", fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	linWins := 0
	for _, row := range rep.Rows {
		step, lin, full := pct(t, row[2]), pct(t, row[3]), pct(t, row[4])
		if lin >= step-0.2 {
			linWins++
		}
		if lin > full+1.0 {
			t.Errorf("linear profit %v%% above full-curve %v%% at scale %s", lin, full, row[0])
		}
	}
	if linWins < len(rep.Rows) {
		t.Errorf("LinearBid beat StepBid at only %d of %d availabilities", linWins, len(rep.Rows))
	}
}

func TestFig15ProfitGrowsWithAvailability(t *testing.T) {
	rep, err := Run("fig15", fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	first := pct(t, rep.Rows[0][2])
	last := pct(t, rep.Rows[len(rep.Rows)-1][2])
	if last <= first {
		t.Errorf("profit did not grow with availability: %v%% → %v%%", first, last)
	}
	pFirst := num(t, rep.Rows[0][3])
	pLast := num(t, rep.Rows[len(rep.Rows)-1][3])
	if pLast < pFirst-0.05 {
		t.Errorf("performance fell with availability: %v → %v", pFirst, pLast)
	}
}

func TestFig16StrategicBiddersGainSpot(t *testing.T) {
	rep, err := Run("fig16", fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	byMetric := map[string][2]float64{}
	for _, row := range rep.Rows {
		var a, b float64
		if strings.HasSuffix(row[1], "%") {
			a, b = pct(t, row[1]), pct(t, row[2])
		} else {
			a, b = num(t, row[1]), num(t, row[2])
		}
		byMetric[row[0]] = [2]float64{a, b}
	}
	grant := byMetric["sprinting avg spot grant (%res)"]
	if grant[1] < grant[0]-1.0 {
		t.Errorf("price-predicting sprinters got less spot: %v vs %v", grant[1], grant[0])
	}
	// The paper reports the operator's profit barely moves. Our endogenous
	// revenue-maximizing pricing extracts more from the inelastic strategic
	// bids, so the profit shifts upward — a documented divergence
	// (EXPERIMENTS.md); it must not *fall*, and sprinters must not pay
	// disproportionately more.
	profit := byMetric["operator extra profit"]
	if diff := profit[1] - profit[0]; diff < -2 || diff > 12 {
		t.Errorf("operator profit shift implausible under strategic bidding: %v", diff)
	}
	pay := byMetric["sprinting payments $"]
	if pay[1] > pay[0]*1.25+1e-9 {
		t.Errorf("strategic sprinters paid %v, way above default %v", pay[1], pay[0])
	}
}

func TestFig17UnderPredictionNearlyFlat(t *testing.T) {
	rep, err := Run("fig17", fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	base := pct(t, rep.Rows[0][1])
	for _, row := range rep.Rows {
		p := pct(t, row[1])
		if base != 0 && (p < base*0.5 || p > base*1.5) {
			t.Errorf("under-prediction %s moved profit from %v%% to %v%%; paper says nearly no impact",
				row[0], base, p)
		}
	}
}

func TestFig18StableAcrossScale(t *testing.T) {
	rep, err := Run("fig18", fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if p := pct(t, row[1]); p <= 0 {
			t.Errorf("%s tenants: extra profit %v%% not positive", row[0], p)
		}
		if perf := num(t, row[3]); perf < 1.05 {
			t.Errorf("%s tenants: perf %v barely above capped", row[0], perf)
		}
	}
}

func TestReportHelpers(t *testing.T) {
	r := &Report{ID: "x", Title: "t", Header: []string{"a", "b"}}
	r.AddRow("1", "2")
	r.AddRowf(3, 4.5)
	if len(r.Rows) != 2 || r.Rows[1][0] != "3" || r.Rows[1][1] != "4.5" {
		t.Errorf("rows = %v", r.Rows)
	}
	if F(1.23456) != "1.235" {
		t.Errorf("F = %s", F(1.23456))
	}
	if Pct(0.097) != "9.7%" {
		t.Errorf("Pct = %s", Pct(0.097))
	}
	var buf bytes.Buffer
	if err := r.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "== x: t ==") {
		t.Errorf("printout: %s", buf.String())
	}
}

func TestAblationAndExtensionRegistry(t *testing.T) {
	want := []string{"abl-pricing", "abl-granularity", "abl-ration", "abl-step",
		"ext-predictor", "ext-bestresponse", "ext-faults", "ext-batch", "ext-emergency", "headline"}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("%s not registered", id)
		}
	}
}

func TestAblRationFixesScaling(t *testing.T) {
	opt := fastOpt()
	opt.ScaleTenants = []int{48}
	opt.ScaleSlots = 150
	rep, err := Run("abl-ration", opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		strict, rationed := pct(t, row[1]), pct(t, row[2])
		if rationed < strict-0.5 {
			t.Errorf("%s tenants: rationing (%v%%) below strict (%v%%)", row[0], rationed, strict)
		}
	}
}

func TestExtBatchSpotCutsTJob(t *testing.T) {
	rep, err := Run("ext-batch", fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	tCapped := num(t, rep.Rows[0][2])
	tSpot := num(t, rep.Rows[1][2])
	if tSpot >= tCapped {
		t.Errorf("spot T_job %v not below capped %v", tSpot, tCapped)
	}
}

func TestExtEmergencyBoundsExcursions(t *testing.T) {
	rep, err := Run("ext-emergency", fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	off, on := rep.Rows[0], rep.Rows[1]
	offSlots, onSlots := num(t, off[1]), num(t, on[1])
	offRun, onRun := num(t, off[2]), num(t, on[2])
	if offSlots == 0 {
		t.Fatal("overload schedule never fired with the responder off")
	}
	if offRun < 5 {
		t.Errorf("responder-off longest excursion %v, want the full 5-slot window", offRun)
	}
	if acted := num(t, on[3]); acted == 0 {
		t.Error("responder never acted")
	}
	if onRun > 2 {
		t.Errorf("responder-on longest excursion %v, want ≤ 2", onRun)
	}
	if onSlots >= offSlots {
		t.Errorf("responder did not reduce emergency slots: %v vs %v", onSlots, offSlots)
	}
	if gcut := num(t, on[5]); gcut != 0 {
		t.Errorf("guaranteed capacity cut: %v W", gcut)
	}
}

func TestExtFaultsMonotone(t *testing.T) {
	opt := fastOpt()
	rep, err := Run("ext-faults", opt)
	if err != nil {
		t.Fatal(err)
	}
	// With no faults the market must add zero emergencies. Under bid loss,
	// a rack bursting from idle in the very slot its submission is lost is
	// referenced at its idle draw (Section III-C), so the operator can
	// momentarily sell slack the tenant takes back — a coincidence of three
	// independent rare events. Such excursions must stay rare (≤2% of
	// slots); asserting exactly zero would just encode one lucky RNG
	// sequence, not a property of the mechanism.
	slots := opt.LongSlots / 8
	maxEm := slots / 50
	if maxEm < 1 {
		maxEm = 1
	}
	prevProfit := 1e18
	for i, row := range rep.Rows {
		p := pct(t, row[2])
		if p > prevProfit+0.5 {
			t.Errorf("profit rose with more bid loss: %v after %v", p, prevProfit)
		}
		prevProfit = p
		em := int(num(t, row[4]))
		if i == 0 && em != 0 {
			t.Errorf("emergencies without bid loss: %d", em)
		}
		if em > maxEm {
			t.Errorf("bid loss caused %d emergency slots of %d (max %d)", em, slots, maxEm)
		}
	}
}

func TestHeadlineShape(t *testing.T) {
	rep, err := Run("headline", fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 5 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	if p := pct(t, rep.Rows[0][2]); p < 3 || p > 25 {
		t.Errorf("headline profit %v%% outside plausible band", p)
	}
	if rep.Rows[4][2] != "0" {
		t.Errorf("spot added emergencies: %s", rep.Rows[4][2])
	}
}

func TestExtBestResponseConverges(t *testing.T) {
	rep, err := Run("ext-bestresponse", fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	last := rep.Rows[len(rep.Rows)-1]
	if last[5] != "0" {
		t.Errorf("dynamics still moving at the last round: %v", last)
	}
}
