// Package experiments regenerates every table and figure of the SpotDC
// paper's evaluation (Section V) from the reproduction's own modules. Each
// experiment is a function returning a Report whose rows mirror what the
// paper plots; cmd/spotdc-experiments and the repository-level benchmarks
// drive them by ID.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"spotdc/internal/metrics"
	"spotdc/internal/otrace"
	"spotdc/internal/par"
)

// Report is a printable experiment result.
type Report struct {
	// ID is the experiment identifier ("fig12", "table1", ...).
	ID string
	// Title describes what the paper's figure/table shows.
	Title string
	// Header names the columns.
	Header []string
	// Rows holds the data, one row per line of the figure/table.
	Rows [][]string
	// Notes carries free-form observations (e.g. headline numbers).
	Notes []string
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// AddRowf appends a row formatting each value with %v-style verbs already
// applied by the caller via F.
func (r *Report) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	r.Rows = append(r.Rows, row)
}

// F formats a float compactly for report cells.
func F(v float64) string { return fmt.Sprintf("%.4g", v) }

// Pct formats a fraction as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// Fprint renders the report as an aligned text table.
func (r *Report) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title); err != nil {
		return err
	}
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad+2))
			}
		}
		return b.String()
	}
	if len(r.Header) > 0 {
		if _, err := fmt.Fprintln(w, line(r.Header)); err != nil {
			return err
		}
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Runner is an experiment entry point.
type Runner func(opt Options) (*Report, error)

// Options tunes every experiment; the zero value gives defaults sized so
// the full suite runs in minutes on a laptop.
type Options struct {
	// Seed drives all synthetic traces.
	Seed int64
	// LongSlots is the horizon of the "extended" (paper: one-year)
	// simulations; default 21600 two-minute slots (30 days).
	LongSlots int
	// ScaleTenants lists the Fig. 18 tenant counts.
	ScaleTenants []int
	// ScaleSlots is the horizon of the Fig. 18 runs (default 720).
	ScaleSlots int
	// ClearingRacks lists the Fig. 7(b) rack counts.
	ClearingRacks []int
	// Workers caps the scenario fan-out pool each experiment uses for its
	// independent (mode × sweep-point) simulation runs: 0 means
	// runtime.GOMAXPROCS(0), 1 forces the historical serial execution.
	// Result ordering is deterministic regardless of the setting — every
	// runner writes results by index, never by completion order.
	Workers int
	// Parallel additionally enables the simulator's intra-slot agent
	// parallelism (sim.Scenario.Parallel) for every scenario an experiment
	// builds. Parallel runs are bit-identical to serial ones.
	Parallel bool
	// Registry, if non-nil, instruments every simulation an experiment
	// runs on one shared metrics registry (registration is idempotent, so
	// the concurrent suite fan-out aggregates onto the same families).
	// Wired by cmd/spotdc-experiments -metrics-addr; instrumentation never
	// changes report contents.
	Registry *metrics.Registry
	// Audit attaches the conservation auditor to every simulation an
	// experiment runs (sim.RunOptions.Audit): clearing invariants are
	// re-verified inline and the books reconciled after each run, failing
	// the experiment on any violation. Wired by cmd/spotdc-experiments
	// -audit; auditing never changes report contents.
	Audit bool
	// Tracer, if non-nil, traces every simulation an experiment runs
	// (sim.RunOptions.Tracer): one root span per slot with the operator's
	// predict/clear/audit children. The tracer is concurrency-safe, so the
	// scenario fan-out shares it — spans from concurrent runs interleave in
	// the ring/journal but each keeps its own trace ID. Wired by
	// cmd/spotdc-experiments -trace-spans.
	Tracer *otrace.Tracer
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.LongSlots == 0 {
		o.LongSlots = 21600
	}
	if len(o.ScaleTenants) == 0 {
		o.ScaleTenants = []int{8, 50, 100, 500, 1000}
	}
	if o.ScaleSlots == 0 {
		o.ScaleSlots = 720
	}
	if len(o.ClearingRacks) == 0 {
		o.ClearingRacks = []int{1500, 3000, 6000, 9000, 12000, 15000}
	}
	return o
}

// registry maps experiment IDs to runners.
var registry = map[string]struct {
	runner Runner
	title  string
}{}

func register(id, title string, r Runner) {
	registry[id] = struct {
		runner Runner
		title  string
	}{r, title}
}

// IDs returns every registered experiment ID in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Title returns an experiment's description.
func Title(id string) (string, bool) {
	e, ok := registry[id]
	return e.title, ok
}

// Run executes one experiment by ID.
func Run(id string, opt Options) (*Report, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return e.runner(opt.withDefaults())
}

// RunAll executes every registered experiment and returns the reports in
// sorted-ID order. The experiments themselves run concurrently on a pool of
// opt.Workers goroutines (0 ⇒ GOMAXPROCS); to keep the total concurrency
// bounded by that single knob, each experiment's own scenario fan-out is
// forced serial here (Run on a single ID is where the intra-experiment
// fan-out applies). The returned slice is ordered by IDs(), independent of
// completion order, so the same seed always yields the same report sequence.
//
// Note that fig7b reports wall-clock clearing times; under a concurrent
// suite those timings share cores with other experiments and are indicative
// rather than benchmark-grade (use scripts/bench.sh for the latter).
func RunAll(opt Options) ([]*Report, error) {
	opt = opt.withDefaults()
	inner := opt
	inner.Workers = 1
	ids := IDs()
	reports := make([]*Report, len(ids))
	err := par.ForErr(opt.Workers, len(ids), func(i int) error {
		rep, e := registry[ids[i]].runner(inner)
		if e != nil {
			return fmt.Errorf("%s: %w", ids[i], e)
		}
		reports[i] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}
	return reports, nil
}
