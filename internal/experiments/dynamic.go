package experiments

import (
	"fmt"
	"math"
	"sort"

	"spotdc/internal/par"
	"spotdc/internal/sim"
	"spotdc/internal/stats"
	"spotdc/internal/tenant"
	"spotdc/internal/workload"
)

func init() {
	register("fig10", "20-minute trace of spot capacity allocation and market price", fig10)
	register("fig11", "Tenant performance over the 20-minute trace", fig11)
	register("fig12", "Tenant cost, performance and spot usage vs PowerCapped / MaxPerf", fig12)
	register("fig13", "CDFs of market price and UPS power utilization", fig13)
	register("fig14", "Operator profit under StepBid / LinearBid / FullBid vs spot availability", fig14)
	register("fig15", "Impact of spot capacity availability on profit and performance", fig15)
	register("fig16", "Impact of strategic (price-predicting) bidding", fig16)
	register("fig17", "Impact of spot capacity under-prediction", fig17)
	register("fig18", "Scaling to up to 1,000 tenants", fig18)
	register("headline", "Section V headline numbers (paper vs measured)", headline)
}

// demoTrace mirrors the paper's 20-minute demonstration setup: a
// deliberately volatile background trace and a high-traffic period for the
// sprinting tenants, so that all the Fig. 10 dynamics appear within ten
// slots.
func demoTrace(opt Options) sim.TestbedOptions {
	return sim.TestbedOptions{
		Seed: opt.Seed, Slots: 10,
		OtherVolatility:     0.08,
		SprintBurstFraction: 0.5,
		SprintPhase:         math.Pi, // start at the daily traffic peak
	}
}

// runTestbed runs the Table I scenario in the given mode, threading the
// suite-level intra-slot parallelism knob (Options.Parallel) into the
// simulator. Parallel simulation is bit-identical to serial, so enabling it
// never changes a report.
func runTestbed(opt Options, tb sim.TestbedOptions, mode sim.Mode, record bool) (*sim.Result, error) {
	tb.Parallel = tb.Parallel || opt.Parallel
	sc, err := sim.Testbed(tb)
	if err != nil {
		return nil, err
	}
	return sim.Run(sc, sim.RunOptions{Mode: mode, Record: record, Registry: opt.Registry, Audit: opt.Audit, Tracer: opt.Tracer})
}

func fig10(opt Options) (*Report, error) {
	tb := demoTrace(opt)
	res, err := runTestbed(opt, tb, sim.ModeSpotDC, true)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:     "fig10",
		Title:  "Spot capacity (UPS level) and market price per 2-minute slot",
		Header: []string{"slot", "t (s)", "available W", "allocated W", "price $/kWh"},
	}
	for s := 0; s < res.Slots; s++ {
		r.AddRow(fmt.Sprint(s), fmt.Sprint(s*res.SlotSeconds),
			F(res.SpotAvailable[s]), F(res.SpotSold[s]), F(res.PriceSeries[s]))
	}
	sold := stats.Sum(res.SpotSold)
	avail := stats.Sum(res.SpotAvailable)
	if avail > 0 {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"allocation stays below availability (%s used) due to multi-level constraints and profit-maximizing pricing",
			Pct(sold/avail)))
	}
	return r, nil
}

func fig11(opt Options) (*Report, error) {
	tb := demoTrace(opt)
	spot, capped, err := twoModes(opt, tb, sim.ModeSpotDC, sim.ModePowerCapped, true)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:     "fig11",
		Title:  "Per-slot tenant performance (perf score: 1000/latency or units/s)",
		Header: []string{"slot", "Search-1", "Search-1 capped", "Web", "Count-1", "Graph-1"},
	}
	for s := 0; s < spot.Slots; s++ {
		r.AddRow(fmt.Sprint(s),
			F(spot.TenantTraces["Search-1"][s]),
			F(capped.TenantTraces["Search-1"][s]),
			F(spot.TenantTraces["Web"][s]),
			F(spot.TenantTraces["Count-1"][s]),
			F(spot.TenantTraces["Graph-1"][s]))
	}
	sv, cv := 0, 0
	for _, n := range []string{"Search-1", "Web", "Search-2"} {
		sv += spot.Tenants[n].SLOViolations
		cv += capped.Tenants[n].SLOViolations
	}
	r.Notes = append(r.Notes, fmt.Sprintf("SLO violations over the trace: %d with SpotDC vs %d PowerCapped", sv, cv))
	return r, nil
}

// twoModes runs the same testbed under two modes as independent scenarios
// on the fan-out pool.
func twoModes(opt Options, tb sim.TestbedOptions, a, b sim.Mode, record bool) (*sim.Result, *sim.Result, error) {
	modes := [2]sim.Mode{a, b}
	var out [2]*sim.Result
	err := par.ForErr(opt.Workers, 2, func(i int) error {
		res, e := runTestbed(opt, tb, modes[i], record)
		out[i] = res
		return e
	})
	if err != nil {
		return nil, nil, err
	}
	return out[0], out[1], nil
}

// longRun runs the extended evaluation in all three modes over the same
// scenario seed. The three runs are independent simulations and execute
// concurrently on the Options.Workers pool; results are returned by mode,
// never by completion order.
func longRun(opt Options, tb sim.TestbedOptions) (capped, spot, maxperf *sim.Result, err error) {
	if tb.Slots == 0 {
		tb.Slots = opt.LongSlots
	}
	if tb.Seed == 0 {
		tb.Seed = opt.Seed
	}
	modes := [3]sim.Mode{sim.ModePowerCapped, sim.ModeSpotDC, sim.ModeMaxPerf}
	var out [3]*sim.Result
	err = par.ForErr(opt.Workers, len(modes), func(i int) error {
		res, e := runTestbed(opt, tb, modes[i], false)
		out[i] = res
		return e
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return out[0], out[1], out[2], nil
}

func fig12(opt Options) (*Report, error) {
	capped, spot, maxperf, err := longRun(opt, sim.TestbedOptions{})
	if err != nil {
		return nil, err
	}
	pricing := spot.Operator.Pricing()
	r := &Report{
		ID:    "fig12",
		Title: "Normalized tenant cost and performance; spot usage",
		Header: []string{"tenant", "cost (SpotDC/Capped)", "perf SpotDC", "perf MaxPerf",
			"max spot %res", "avg spot %res"},
	}
	var names []string
	for _, a := range []string{"Search-1", "Web", "Search-2", "Count-1", "Graph-1", "Count-2", "Sort", "Graph-2"} {
		names = append(names, a)
	}
	perfRatios := make([]float64, 0, len(names))
	for _, name := range names {
		ts := spot.Tenants[name]
		base := capped.Tenants[name]
		mp := maxperf.Tenants[name]
		costSpot, err := sim.TenantCost(spot, pricing, name)
		if err != nil {
			return nil, err
		}
		costCap, err := sim.TenantCost(capped, pricing, name)
		if err != nil {
			return nil, err
		}
		perfSpot, perfMax := 1.0, 1.0
		if base.PerfNeed.Mean() > 0 {
			perfSpot = ts.PerfNeed.Mean() / base.PerfNeed.Mean()
			perfMax = mp.PerfNeed.Mean() / base.PerfNeed.Mean()
		}
		perfRatios = append(perfRatios, perfSpot)
		r.AddRow(name, F(costSpot/costCap), F(perfSpot), F(perfMax),
			Pct(ts.GrantFrac.Max()), Pct(ts.GrantFrac.Mean()))
	}
	profit := spot.Profit(500)
	r.Notes = append(r.Notes,
		fmt.Sprintf("operator extra profit: %s (paper: 9.7%%)", Pct(profit.ExtraProfitFraction)),
		fmt.Sprintf("tenant performance improvement: %s–%s (paper: 1.2–1.8x)",
			F(minOf(perfRatios)), F(maxOf(perfRatios))))
	return r, nil
}

func minOf(xs []float64) float64 { m, _ := stats.Min(xs); return m }
func maxOf(xs []float64) float64 { m, _ := stats.Max(xs); return m }

func fig13(opt Options) (*Report, error) {
	tb := sim.TestbedOptions{Seed: opt.Seed, Slots: opt.LongSlots}
	spot, capped, err := twoModes(opt, tb, sim.ModeSpotDC, sim.ModePowerCapped, false)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:     "fig13",
		Title:  "CDF of market price; CDF of UPS power (normalized to capacity)",
		Header: []string{"x", "P(price ≤ x $/kWh)", "P(UPS power ≤ x·cap) SpotDC", "same, PowerCapped"},
	}
	prices := stats.NewCDF(spot.Prices)
	upsSpot := stats.NewCDF(spot.UPSPower)
	upsCap := stats.NewCDF(capped.UPSPower)
	capW := spot.Operator.Topology().UPSCapacity
	for _, x := range []float64{0.05, 0.1, 0.15, 0.2, 0.3, 0.45, 0.7, 0.8, 0.9, 0.95, 1.0} {
		r.AddRow(F(x), F(prices.At(x)), F(upsSpot.At(x*capW)), F(upsCap.At(x*capW)))
	}
	mSpot := stats.Mean(spot.UPSPower) / capW
	mCap := stats.Mean(capped.UPSPower) / capW
	r.Notes = append(r.Notes,
		fmt.Sprintf("mean UPS utilization: %s (SpotDC) vs %s (PowerCapped)", Pct(mSpot), Pct(mCap)),
		fmt.Sprintf("median clearing price %s $/kWh over %d sold slots", F(median(prices)), prices.Len()))
	return r, nil
}

func median(c *stats.CDF) float64 {
	v, err := c.Quantile(0.5)
	if err != nil {
		return 0
	}
	return v
}

// sweepPoint runs one (policy, capacity-scale) cell of the Fig. 14/15
// availability sweep and reports the measured average spot availability
// (as % of subscriptions) alongside the run.
func sweepPoint(opt Options, policy tenant.BidPolicy, scale float64) (float64, *sim.Result, error) {
	tb := sim.TestbedOptions{
		Seed: opt.Seed, Slots: opt.LongSlots / 4, CapacityScale: scale, Policy: policy,
	}
	res, err := runTestbed(opt, tb, sim.ModeSpotDC, false)
	if err != nil {
		return 0, nil, err
	}
	subs := res.Operator.Topology().TotalGuaranteed() + 500
	return stats.Mean(res.SpotAvailable) / subs, res, nil
}

// availabilitySweep runs the testbed at several capacity scales — each an
// independent scenario, fanned out on the Options.Workers pool — and
// returns availability and per-scale results indexed like scales.
func availabilitySweep(opt Options, policy tenant.BidPolicy, scales []float64) ([]float64, []*sim.Result, error) {
	avail := make([]float64, len(scales))
	results := make([]*sim.Result, len(scales))
	err := par.ForErr(opt.Workers, len(scales), func(i int) error {
		a, res, e := sweepPoint(opt, policy, scales[i])
		if e != nil {
			return e
		}
		avail[i], results[i] = a, res
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return avail, results, nil
}

// sweepScales spans the paper's Fig. 14/15 x-axis: from scarce spot
// capacity (well below the aggregate demand) to abundance where (almost)
// all demand is met.
var sweepScales = []float64{0.92, 0.95, 0.97, 1.0, 1.06}

func fig14(opt Options) (*Report, error) {
	r := &Report{
		ID:     "fig14",
		Title:  "Operator extra profit by demand function vs average spot availability",
		Header: []string{"capacity scale", "avg spot %subs", "StepBid", "LinearBid (SpotDC)", "FullBid"},
	}
	// The full (policy × scale) grid is one flat batch of independent
	// scenarios, so the fan-out pool stays saturated across policy
	// boundaries instead of draining between sweeps.
	policies := []tenant.BidPolicy{tenant.PolicyStep, tenant.PolicyElastic, tenant.PolicyFull}
	profits := make([][]float64, len(policies))
	for pi := range profits {
		profits[pi] = make([]float64, len(sweepScales))
	}
	avail := make([]float64, len(sweepScales))
	err := par.ForErr(opt.Workers, len(policies)*len(sweepScales), func(k int) error {
		pi, si := k/len(sweepScales), k%len(sweepScales)
		a, res, e := sweepPoint(opt, policies[pi], sweepScales[si])
		if e != nil {
			return e
		}
		profits[pi][si] = res.Profit(500).ExtraProfitFraction
		if pi == len(policies)-1 { // availability column: last policy, as before
			avail[si] = a
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, cs := range sweepScales {
		r.AddRow(F(cs), Pct(avail[i]), Pct(profits[0][i]), Pct(profits[1][i]), Pct(profits[2][i]))
	}
	r.Notes = append(r.Notes,
		"LinearBid should beat StepBid (especially when spot is scarce) and approach FullBid, as in the paper")
	return r, nil
}

func fig15(opt Options) (*Report, error) {
	r := &Report{
		ID:     "fig15",
		Title:  "Operator profit and tenant performance vs spot availability",
		Header: []string{"capacity scale", "avg spot %subs", "extra profit", "mean perf vs capped", "median price"},
	}
	avail, results, err := availabilitySweep(opt, tenant.PolicyElastic, sweepScales)
	if err != nil {
		return nil, err
	}
	// The per-scale PowerCapped baselines are independent too.
	cappedRes := make([]*sim.Result, len(sweepScales))
	err = par.ForErr(opt.Workers, len(sweepScales), func(i int) error {
		tb := sim.TestbedOptions{Seed: opt.Seed, Slots: opt.LongSlots / 4, CapacityScale: sweepScales[i]}
		res, e := runTestbed(opt, tb, sim.ModePowerCapped, false)
		cappedRes[i] = res
		return e
	})
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		perf := meanPerfRatio(res, cappedRes[i])
		r.AddRow(F(sweepScales[i]), Pct(avail[i]),
			Pct(res.Profit(500).ExtraProfitFraction), F(perf), F(median(stats.NewCDF(res.Prices))))
	}
	r.Notes = append(r.Notes, "more spot capacity: price goes down, profit and performance go up (saturating)")
	return r, nil
}

// sortedNames returns a result's tenant names in lexicographic order.
// Aggregations over tenants must accumulate floats in a fixed order — map
// iteration order would make report cells jitter in their last digits from
// run to run, defeating the suite's bit-reproducibility guarantee (the
// fan-out determinism tests compare reports cell-for-cell).
func sortedNames(tenants map[string]*sim.TenantStats) []string {
	names := make([]string, 0, len(tenants))
	for name := range tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// meanPerfRatio averages, across tenants that ever needed spot, the ratio
// of mean performance (over need slots) to the PowerCapped baseline.
func meanPerfRatio(res, capped *sim.Result) float64 {
	var ratios []float64
	for _, name := range sortedNames(res.Tenants) {
		ts := res.Tenants[name]
		base := capped.Tenants[name]
		if base == nil || ts.NeedSlots == 0 || base.PerfNeed.Mean() <= 0 {
			continue
		}
		ratios = append(ratios, ts.PerfNeed.Mean()/base.PerfNeed.Mean())
	}
	return stats.Mean(ratios)
}

func fig16(opt Options) (*Report, error) {
	slots := opt.LongSlots / 4
	base := sim.TestbedOptions{Seed: opt.Seed, Slots: slots}
	plain, err := runTestbed(opt, base, sim.ModeSpotDC, false)
	if err != nil {
		return nil, err
	}
	// Strategic run: sprinting tenants know the clearing price
	// (Fig. 16(a)). "Perfect knowledge" must be self-consistent — the
	// price they anticipate is the one their own strategic bids produce —
	// so the prediction is iterated to a fixed point. Each pass feeds on
	// the previous pass's prices, so this loop is inherently serial (the
	// fan-out pool cannot help here).
	prices := plain.PriceSeries
	var stratRes *sim.Result
	for pass := 0; pass < 3; pass++ {
		strat := base
		strat.Policy = tenant.PolicyPricePredict
		captured := prices
		strat.Hint = func(slot int) tenant.MarketHint {
			if slot < len(captured) && captured[slot] > 0 {
				return tenant.MarketHint{PredictedPrice: captured[slot], HavePrediction: true}
			}
			return tenant.MarketHint{}
		}
		stratRes, err = runTestbed(opt, strat, sim.ModeSpotDC, false)
		if err != nil {
			return nil, err
		}
		prices = stratRes.PriceSeries
	}
	capped, err := runTestbed(opt, base, sim.ModePowerCapped, false)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:     "fig16",
		Title:  "Default bidding vs price-predicting sprinting tenants",
		Header: []string{"metric", "default", "price-predict"},
	}
	grant := func(res *sim.Result) float64 {
		var g []float64
		for _, name := range sortedNames(res.Tenants) {
			if ts := res.Tenants[name]; ts.Class == workload.Sprinting {
				g = append(g, ts.GrantFrac.Mean())
			}
		}
		return stats.Mean(g)
	}
	perf := func(res *sim.Result) float64 {
		var g []float64
		for _, name := range sortedNames(res.Tenants) {
			ts := res.Tenants[name]
			if ts.Class == workload.Sprinting && capped.Tenants[name].PerfNeed.Mean() > 0 {
				g = append(g, ts.PerfNeed.Mean()/capped.Tenants[name].PerfNeed.Mean())
			}
		}
		return stats.Mean(g)
	}
	pay := func(res *sim.Result) float64 {
		t := 0.0
		for _, name := range sortedNames(res.Tenants) {
			if ts := res.Tenants[name]; ts.Class == workload.Sprinting {
				t += ts.Payment
			}
		}
		return t
	}
	r.AddRow("sprinting avg spot grant (%res)", Pct(grant(plain)), Pct(grant(stratRes)))
	r.AddRow("sprinting perf vs capped", F(perf(plain)), F(perf(stratRes)))
	r.AddRow("sprinting payments $", F(pay(plain)), F(pay(stratRes)))
	r.AddRow("operator extra profit", Pct(plain.Profit(500).ExtraProfitFraction), Pct(stratRes.Profit(500).ExtraProfitFraction))
	r.Notes = append(r.Notes, "paper: strategic sprinters gain spot capacity and performance; operator profit barely moves (within 0.05%)")
	return r, nil
}

func fig17(opt Options) (*Report, error) {
	r := &Report{
		ID:     "fig17",
		Title:  "Impact of spot capacity under-prediction",
		Header: []string{"under-prediction", "extra profit", "mean perf vs capped", "spot sold kWh"},
	}
	slots := opt.LongSlots / 4
	// The PowerCapped baseline and every under-prediction factor are
	// independent scenarios: run all six as one batch (index 0 is the
	// baseline, index i ≥ 1 is factors[i-1]).
	factors := []float64{0, 0.05, 0.10, 0.15, 0.20}
	var capped *sim.Result
	results := make([]*sim.Result, len(factors))
	err := par.ForErr(opt.Workers, len(factors)+1, func(i int) error {
		if i == 0 {
			res, e := runTestbed(opt, sim.TestbedOptions{Seed: opt.Seed, Slots: slots}, sim.ModePowerCapped, false)
			capped = res
			return e
		}
		tb := sim.TestbedOptions{Seed: opt.Seed, Slots: slots, UnderPrediction: factors[i-1]}
		res, e := runTestbed(opt, tb, sim.ModeSpotDC, false)
		results[i-1] = res
		return e
	})
	if err != nil {
		return nil, err
	}
	for i, f := range factors {
		res := results[i]
		r.AddRow(Pct(f), Pct(res.Profit(500).ExtraProfitFraction),
			F(meanPerfRatio(res, capped)), F(res.Operator.SpotEnergyKWh()))
	}
	r.Notes = append(r.Notes, "paper: under-prediction has nearly no impact, since profit-maximizing prices rarely sell all spot capacity anyway")
	return r, nil
}

func fig18(opt Options) (*Report, error) {
	r := &Report{
		ID:     "fig18",
		Title:  "Scaling the number of tenants (Table I composition, ±20% jitter)",
		Header: []string{"tenants", "extra profit", "mean cost vs capped", "mean perf vs capped"},
	}
	// Every (tenant count × mode) run is an independent scenario; fan out
	// the whole grid and assemble rows by index afterwards.
	counts := opt.ScaleTenants
	rows := make([][]string, len(counts))
	runs := make([]*sim.Result, 2*len(counts)) // [2i] spot, [2i+1] capped
	err := par.ForErr(opt.Workers, 2*len(counts), func(k int) error {
		n := counts[k/2]
		tb := sim.TestbedOptions{Seed: opt.Seed, Slots: opt.ScaleSlots, Parallel: opt.Parallel}
		sc, e := sim.Scaled(sim.ScaledOptions{Testbed: tb, Tenants: n, JitterFrac: 0.2})
		if e != nil {
			return e
		}
		mode := sim.ModeSpotDC
		if k%2 == 1 {
			mode = sim.ModePowerCapped
		}
		res, e := sim.Run(sc, sim.RunOptions{Mode: mode, Registry: opt.Registry, Audit: opt.Audit, Tracer: opt.Tracer})
		runs[k] = res
		return e
	})
	if err != nil {
		return nil, err
	}
	for i, n := range counts {
		spot, capped := runs[2*i], runs[2*i+1]
		otherLeased := 500.0 * float64((n+7)/8)
		pricing := spot.Operator.Pricing()
		var costRatios []float64
		for _, name := range sortedNames(spot.Tenants) {
			cs, err := sim.TenantCost(spot, pricing, name)
			if err != nil {
				return nil, err
			}
			cc, err := sim.TenantCost(capped, pricing, name)
			if err != nil {
				return nil, err
			}
			if cc > 0 {
				costRatios = append(costRatios, cs/cc)
			}
		}
		rows[i] = []string{fmt.Sprint(n),
			Pct(spot.Profit(otherLeased).ExtraProfitFraction),
			F(stats.Mean(costRatios)),
			F(meanPerfRatio(spot, capped))}
	}
	r.Rows = append(r.Rows, rows...)
	r.Notes = append(r.Notes, "paper: results stabilize with scale at ≈+9.7% profit and ≈1.4x performance")
	return r, nil
}

// headline reproduces the Section V summary box: the numbers the paper's
// abstract quotes.
func headline(opt Options) (*Report, error) {
	capped, spot, _, err := longRun(opt, sim.TestbedOptions{})
	if err != nil {
		return nil, err
	}
	var perfs, costs []float64
	pricing := spot.Operator.Pricing()
	for _, name := range sortedNames(spot.Tenants) {
		ts := spot.Tenants[name]
		base := capped.Tenants[name]
		if ts.NeedSlots > 0 && base.PerfNeed.Mean() > 0 {
			perfs = append(perfs, ts.PerfNeed.Mean()/base.PerfNeed.Mean())
		}
		cs, err := sim.TenantCost(spot, pricing, name)
		if err != nil {
			return nil, err
		}
		cc, err := sim.TenantCost(capped, pricing, name)
		if err != nil {
			return nil, err
		}
		if cc > 0 {
			costs = append(costs, cs/cc-1)
		}
	}
	r := &Report{
		ID:     "headline",
		Title:  "Section V headline: operator profit, tenant performance and cost",
		Header: []string{"metric", "paper", "measured"},
	}
	r.AddRow("operator extra profit", "9.7%", Pct(spot.Profit(500).ExtraProfitFraction))
	r.AddRow("tenant perf improvement", "1.2-1.8x avg", fmt.Sprintf("%s-%sx", F(minOf(perfs)), F(maxOf(perfs))))
	r.AddRow("tenant extra cost (min)", "as low as 0.3-0.5%", Pct(minOf(costs)))
	r.AddRow("tenant extra cost (max)", "higher for opportunistic", Pct(maxOf(costs)))
	r.AddRow("emergency slots added by spot", "0", fmt.Sprint(spot.EmergencySlots-capped.EmergencySlots))
	return r, nil
}
