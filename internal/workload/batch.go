package workload

import (
	"errors"
	"fmt"
)

// ErrQueue reports invalid batch-queue input.
var ErrQueue = errors.New("workload: invalid batch queue input")

// BatchQueue tracks a delay-tolerant tenant's pending work at job
// granularity so job completion time — the T_job of the paper's
// opportunistic cost model c = ρ·T_job — can be measured directly rather
// than inferred from throughput. Jobs drain in FIFO order at whatever
// processing rate the current power budget sustains.
type BatchQueue struct {
	jobs     []batchJob
	nextID   int
	finished []CompletedJob
	// drainedUnits accumulates total processed work.
	drainedUnits float64
}

type batchJob struct {
	id        int
	arrival   int // slot index
	remaining float64
	size      float64
}

// CompletedJob records one finished batch job.
type CompletedJob struct {
	// ID is the submission order (0-based).
	ID int
	// ArrivalSlot and FinishSlot bound the job's time in system.
	ArrivalSlot, FinishSlot int
	// Units is the job's total work.
	Units float64
	// CompletionSlots is FinishSlot − ArrivalSlot + 1: the paper's T_job in
	// slot units.
	CompletionSlots int
}

// Submit enqueues a job of the given work units arriving at the slot.
func (q *BatchQueue) Submit(arrivalSlot int, units float64) (int, error) {
	if units <= 0 {
		return 0, fmt.Errorf("%w: job of %v units", ErrQueue, units)
	}
	if n := len(q.jobs); n > 0 && q.jobs[n-1].arrival > arrivalSlot {
		return 0, fmt.Errorf("%w: arrival slot %d before queued job at %d", ErrQueue, arrivalSlot, q.jobs[n-1].arrival)
	}
	id := q.nextID
	q.nextID++
	q.jobs = append(q.jobs, batchJob{id: id, arrival: arrivalSlot, remaining: units, size: units})
	return id, nil
}

// Drain processes the queue for one slot at the given throughput
// (units/s) and slot length, returning the jobs finished during the slot.
func (q *BatchQueue) Drain(slot int, unitsPerSec float64, slotSeconds int) ([]CompletedJob, error) {
	if unitsPerSec < 0 {
		return nil, fmt.Errorf("%w: negative throughput", ErrQueue)
	}
	if slotSeconds <= 0 {
		return nil, fmt.Errorf("%w: slot length %d", ErrQueue, slotSeconds)
	}
	budget := unitsPerSec * float64(slotSeconds)
	var done []CompletedJob
	for len(q.jobs) > 0 && budget > 0 {
		j := &q.jobs[0]
		if j.arrival > slot {
			break // not yet arrived
		}
		if j.remaining > budget {
			j.remaining -= budget
			q.drainedUnits += budget
			budget = 0
			break
		}
		budget -= j.remaining
		q.drainedUnits += j.remaining
		cj := CompletedJob{
			ID: j.id, ArrivalSlot: j.arrival, FinishSlot: slot,
			Units: j.size, CompletionSlots: slot - j.arrival + 1,
		}
		done = append(done, cj)
		q.finished = append(q.finished, cj)
		q.jobs = q.jobs[1:]
	}
	return done, nil
}

// Pending returns the number of queued (unfinished) jobs.
func (q *BatchQueue) Pending() int { return len(q.jobs) }

// Backlog returns the total remaining work units of jobs that have arrived
// by the slot.
func (q *BatchQueue) Backlog(slot int) float64 {
	sum := 0.0
	for _, j := range q.jobs {
		if j.arrival <= slot {
			sum += j.remaining
		}
	}
	return sum
}

// Completed returns every finished job in completion order.
func (q *BatchQueue) Completed() []CompletedJob {
	return append([]CompletedJob(nil), q.finished...)
}

// DrainedUnits returns the total work processed so far.
func (q *BatchQueue) DrainedUnits() float64 { return q.drainedUnits }

// MeanCompletionSlots returns the average T_job over finished jobs (0 when
// none finished).
func (q *BatchQueue) MeanCompletionSlots() float64 {
	if len(q.finished) == 0 {
		return 0
	}
	sum := 0.0
	for _, j := range q.finished {
		sum += float64(j.CompletionSlots)
	}
	return sum / float64(len(q.finished))
}
