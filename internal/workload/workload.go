// Package workload models the power-performance behaviour of the five
// benchmark workloads the SpotDC paper runs on its testbed (Section IV-B):
// CloudSuite Search and Web Serving (tail-latency sensitive, "sprinting"
// tenants), Hadoop WordCount and TeraSort, and PowerGraph graph analytics
// (throughput oriented, "opportunistic" tenants).
//
// The paper's physical servers are replaced by calibrated analytical
// models that reproduce the Fig. 8 power-performance relation:
//
//   - Latency workloads behave like a power-scaled queueing system. More
//     power raises the service rate; latency is the base service time plus
//     the queueing term and explodes as load approaches the rate the
//     current power budget can sustain.
//   - Throughput workloads deliver work at a concave, diminishing-returns
//     rate in power above idle.
//
// The package also implements Section IV-C's monetization: the linear +
// quadratic-beyond-SLO cost model for sprinting tenants and the linear
// completion-time cost model for opportunistic tenants, and builds the
// dollar-valued performance-gain curves of Fig. 9 consumed by bidding and
// by the MaxPerf baseline.
package workload

import (
	"errors"
	"fmt"
	"math"
)

// ErrModel reports an invalid model configuration.
var ErrModel = errors.New("workload: invalid model")

// Class distinguishes the two tenant behaviours of the paper.
type Class int

const (
	// Sprinting tenants run delay-sensitive workloads (Search, Web) and use
	// spot capacity to avoid SLO violations.
	Sprinting Class = iota
	// Opportunistic tenants run delay-tolerant workloads (WordCount,
	// TeraSort, GraphAnalytics) and use spot capacity to speed up
	// processing.
	Opportunistic
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Sprinting:
		return "sprinting"
	case Opportunistic:
		return "opportunistic"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// LatencyModel captures a tail-latency-sensitive workload on one rack.
type LatencyModel struct {
	// Name labels the workload ("search", "web").
	Name string
	// IdleWatts and PeakWatts bound the rack's power draw.
	IdleWatts, PeakWatts float64
	// MaxRate is the sustainable request rate (req/s) at PeakWatts.
	MaxRate float64
	// BaseMS is the intrinsic per-request service latency in milliseconds
	// at negligible load.
	BaseMS float64
	// CapMS is the reported latency when the workload is saturated (the
	// load generator's timeout); keeps the model bounded past overload.
	CapMS float64
	// Exponent shapes the power→service-rate curve; 1 is linear, <1 gives
	// diminishing returns. Default 1.
	Exponent float64
}

// Validate checks the configuration.
func (m LatencyModel) Validate() error {
	switch {
	case m.PeakWatts <= m.IdleWatts:
		return fmt.Errorf("%w: %s peak %v ≤ idle %v", ErrModel, m.Name, m.PeakWatts, m.IdleWatts)
	case m.IdleWatts < 0:
		return fmt.Errorf("%w: %s idle %v negative", ErrModel, m.Name, m.IdleWatts)
	case m.MaxRate <= 0:
		return fmt.Errorf("%w: %s max rate %v", ErrModel, m.Name, m.MaxRate)
	case m.BaseMS <= 0:
		return fmt.Errorf("%w: %s base latency %v", ErrModel, m.Name, m.BaseMS)
	case m.CapMS <= m.BaseMS:
		return fmt.Errorf("%w: %s cap %v ≤ base %v", ErrModel, m.Name, m.CapMS, m.BaseMS)
	case m.Exponent < 0:
		return fmt.Errorf("%w: %s exponent %v negative", ErrModel, m.Name, m.Exponent)
	}
	return nil
}

func (m LatencyModel) exponent() float64 {
	if m.Exponent == 0 {
		return 1
	}
	return m.Exponent
}

// Rate returns the service rate (req/s) sustainable at the given power
// budget. Below idle power the rack cannot serve at all.
func (m LatencyModel) Rate(watts float64) float64 {
	if watts <= m.IdleWatts {
		return 0
	}
	frac := (watts - m.IdleWatts) / (m.PeakWatts - m.IdleWatts)
	if frac > 1 {
		frac = 1
	}
	return m.MaxRate * math.Pow(frac, m.exponent())
}

// LatencyMS returns the tail latency (ms) at request rate load (req/s)
// under the given power budget, clamped to CapMS when saturated.
func (m LatencyModel) LatencyMS(load, watts float64) float64 {
	if load <= 0 {
		return m.BaseMS
	}
	mu := m.Rate(watts)
	if mu <= load {
		return m.CapMS
	}
	l := m.BaseMS + 1000/(mu-load)
	if l > m.CapMS {
		return m.CapMS
	}
	return l
}

// PowerForLatency returns the minimum power budget that keeps latency at or
// below targetMS under the given load. ok is false when even PeakWatts
// cannot achieve the target (the returned power is then PeakWatts).
func (m LatencyModel) PowerForLatency(load, targetMS float64) (watts float64, ok bool) {
	if targetMS <= m.BaseMS {
		return m.PeakWatts, false
	}
	if load <= 0 {
		return m.IdleWatts, true
	}
	needMu := load + 1000/(targetMS-m.BaseMS)
	if needMu > m.MaxRate {
		return m.PeakWatts, false
	}
	frac := math.Pow(needMu/m.MaxRate, 1/m.exponent())
	return m.IdleWatts + frac*(m.PeakWatts-m.IdleWatts), true
}

// ThroughputModel captures a delay-tolerant batch workload on one rack.
type ThroughputModel struct {
	// Name labels the workload ("wordcount", "terasort", "graph").
	Name string
	// IdleWatts and PeakWatts bound the rack's power draw.
	IdleWatts, PeakWatts float64
	// MaxUnits is the processing rate (work units/s — MB/s for Hadoop,
	// knodes/s for graph analytics) at PeakWatts.
	MaxUnits float64
	// Exponent in (0,1] shapes the concave power→throughput curve.
	// Default 0.8.
	Exponent float64
}

// Validate checks the configuration.
func (m ThroughputModel) Validate() error {
	switch {
	case m.PeakWatts <= m.IdleWatts:
		return fmt.Errorf("%w: %s peak %v ≤ idle %v", ErrModel, m.Name, m.PeakWatts, m.IdleWatts)
	case m.IdleWatts < 0:
		return fmt.Errorf("%w: %s idle %v negative", ErrModel, m.Name, m.IdleWatts)
	case m.MaxUnits <= 0:
		return fmt.Errorf("%w: %s max units %v", ErrModel, m.Name, m.MaxUnits)
	case m.Exponent < 0 || m.Exponent > 1:
		return fmt.Errorf("%w: %s exponent %v outside (0,1]", ErrModel, m.Name, m.Exponent)
	}
	return nil
}

func (m ThroughputModel) exponent() float64 {
	if m.Exponent == 0 {
		return 0.8
	}
	return m.Exponent
}

// Throughput returns the processing rate (units/s) at the given power
// budget.
func (m ThroughputModel) Throughput(watts float64) float64 {
	if watts <= m.IdleWatts {
		return 0
	}
	frac := (watts - m.IdleWatts) / (m.PeakWatts - m.IdleWatts)
	if frac > 1 {
		frac = 1
	}
	return m.MaxUnits * math.Pow(frac, m.exponent())
}

// PowerForThroughput returns the minimum power budget achieving the target
// rate; ok is false when the target exceeds MaxUnits (power is then
// PeakWatts).
func (m ThroughputModel) PowerForThroughput(units float64) (watts float64, ok bool) {
	if units <= 0 {
		return m.IdleWatts, true
	}
	if units > m.MaxUnits {
		return m.PeakWatts, false
	}
	frac := math.Pow(units/m.MaxUnits, 1/m.exponent())
	return m.IdleWatts + frac*(m.PeakWatts-m.IdleWatts), true
}

// SprintCost is the Section IV-C cost model for sprinting tenants:
// c = a·d below the SLO and c = a·d + b·(d − d_th)² above it, where d is
// the tail latency in ms.
type SprintCost struct {
	// A is the linear $/job/ms coefficient.
	A float64
	// B is the quadratic SLO-violation penalty coefficient ($/job/ms²).
	B float64
	// SLOms is d_th, 100 ms for every sprinting tenant in the paper.
	SLOms float64
}

// PerJob returns the equivalent monetary cost of one request served at the
// given tail latency.
func (c SprintCost) PerJob(latencyMS float64) float64 {
	cost := c.A * latencyMS
	if latencyMS > c.SLOms {
		over := latencyMS - c.SLOms
		cost += c.B * over * over
	}
	return cost
}

// RatePerHour converts the per-job cost into a $/h cost rate at the given
// request rate (req/s).
func (c SprintCost) RatePerHour(latencyMS, load float64) float64 {
	return c.PerJob(latencyMS) * load * 3600
}

// OppCost is the Section IV-C cost model for opportunistic tenants:
// c = ρ·T_job, i.e. a linear cost in job completion time, equivalently a
// dollar value ρ per unit of work throughput forgone.
type OppCost struct {
	// DollarPerUnit values one processed work unit.
	DollarPerUnit float64
}

// RatePerHour returns the value rate ($/h) of processing at the given
// throughput (units/s).
func (c OppCost) RatePerHour(unitsPerSec float64) float64 {
	return c.DollarPerUnit * unitsPerSec * 3600
}

// SprintGainCurve builds the Fig. 9 performance-gain curve for a sprinting
// rack: the $/h saved by adding spot watts on top of reservedWatts at the
// given load. The curve is non-decreasing (more power never hurts) and is
// suitable for core.MaxPerf.
func SprintGainCurve(m LatencyModel, c SprintCost, load, reservedWatts float64) func(spotWatts float64) float64 {
	base := c.RatePerHour(m.LatencyMS(load, reservedWatts), load)
	return func(spot float64) float64 {
		if spot < 0 {
			spot = 0
		}
		with := c.RatePerHour(m.LatencyMS(load, reservedWatts+spot), load)
		g := base - with
		if g < 0 {
			return 0
		}
		return g
	}
}

// OppGainCurve builds the performance-gain curve for an opportunistic rack:
// the extra $/h of work value unlocked by spot watts on top of
// reservedWatts.
func OppGainCurve(m ThroughputModel, c OppCost, reservedWatts float64) func(spotWatts float64) float64 {
	base := c.RatePerHour(m.Throughput(reservedWatts))
	return func(spot float64) float64 {
		if spot < 0 {
			spot = 0
		}
		g := c.RatePerHour(m.Throughput(reservedWatts+spot)) - base
		if g < 0 {
			return 0
		}
		return g
	}
}
