package workload

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestClassString(t *testing.T) {
	if Sprinting.String() != "sprinting" || Opportunistic.String() != "opportunistic" {
		t.Error("Class strings wrong")
	}
	if Class(9).String() == "" {
		t.Error("unknown class should still print")
	}
}

func TestLatencyModelValidate(t *testing.T) {
	ok := SearchModel()
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []LatencyModel{
		{Name: "x", IdleWatts: 100, PeakWatts: 50, MaxRate: 1, BaseMS: 1, CapMS: 2},
		{Name: "x", IdleWatts: -1, PeakWatts: 50, MaxRate: 1, BaseMS: 1, CapMS: 2},
		{Name: "x", IdleWatts: 1, PeakWatts: 50, MaxRate: 0, BaseMS: 1, CapMS: 2},
		{Name: "x", IdleWatts: 1, PeakWatts: 50, MaxRate: 1, BaseMS: 0, CapMS: 2},
		{Name: "x", IdleWatts: 1, PeakWatts: 50, MaxRate: 1, BaseMS: 5, CapMS: 4},
		{Name: "x", IdleWatts: 1, PeakWatts: 50, MaxRate: 1, BaseMS: 1, CapMS: 2, Exponent: -1},
	}
	for i, m := range bad {
		if err := m.Validate(); !errors.Is(err, ErrModel) {
			t.Errorf("bad model %d accepted", i)
		}
	}
}

func TestLatencyModelRate(t *testing.T) {
	m := SearchModel()
	if got := m.Rate(m.IdleWatts); got != 0 {
		t.Errorf("Rate at idle = %v, want 0", got)
	}
	if got := m.Rate(m.IdleWatts - 10); got != 0 {
		t.Errorf("Rate below idle = %v, want 0", got)
	}
	if got := m.Rate(m.PeakWatts); math.Abs(got-m.MaxRate) > 1e-9 {
		t.Errorf("Rate at peak = %v, want %v", got, m.MaxRate)
	}
	if got := m.Rate(m.PeakWatts + 100); math.Abs(got-m.MaxRate) > 1e-9 {
		t.Errorf("Rate above peak = %v, want clamped to %v", got, m.MaxRate)
	}
	mid := (m.IdleWatts + m.PeakWatts) / 2
	if got := m.Rate(mid); math.Abs(got-m.MaxRate/2) > 1e-9 {
		t.Errorf("linear Rate at midpoint = %v, want %v", got, m.MaxRate/2)
	}
}

func TestLatencyModelLatency(t *testing.T) {
	m := SearchModel()
	if got := m.LatencyMS(0, m.PeakWatts); got != m.BaseMS {
		t.Errorf("zero load latency = %v, want base %v", got, m.BaseMS)
	}
	// Saturated: load above what the budget sustains.
	if got := m.LatencyMS(m.MaxRate+1, m.PeakWatts); got != m.CapMS {
		t.Errorf("overload latency = %v, want cap %v", got, m.CapMS)
	}
	if got := m.LatencyMS(10, m.IdleWatts); got != m.CapMS {
		t.Errorf("no-headroom latency = %v, want cap", got)
	}
	// Monotone: more power → lower latency at fixed load.
	load := 80.0
	l1 := m.LatencyMS(load, 140)
	l2 := m.LatencyMS(load, 180)
	if l2 >= l1 {
		t.Errorf("latency did not improve with power: %v → %v", l1, l2)
	}
	// Monotone: more load → higher latency at fixed power.
	if m.LatencyMS(100, 180) <= m.LatencyMS(50, 180) {
		t.Error("latency did not rise with load")
	}
}

func TestPowerForLatency(t *testing.T) {
	m := SearchModel()
	load := 90.0
	target := 100.0
	w, ok := m.PowerForLatency(load, target)
	if !ok {
		t.Fatalf("target should be achievable, got power %v", w)
	}
	// The returned budget must actually achieve the target.
	if got := m.LatencyMS(load, w); got > target+1e-6 {
		t.Errorf("LatencyMS at returned power = %v > target %v", got, target)
	}
	// And be minimal: a watt less should miss it.
	if got := m.LatencyMS(load, w-1); got <= target {
		t.Errorf("power not minimal: %v still meets target at 1 W less", got)
	}
	if _, ok := m.PowerForLatency(load, m.BaseMS); ok {
		t.Error("sub-base-latency target should be unachievable")
	}
	if _, ok := m.PowerForLatency(m.MaxRate*2, 100); ok {
		t.Error("load beyond max rate should be unachievable")
	}
	if w, ok := m.PowerForLatency(0, 100); !ok || w != m.IdleWatts {
		t.Errorf("zero load power = %v, %v; want idle, true", w, ok)
	}
}

func TestThroughputModelValidate(t *testing.T) {
	if err := WordCountModel().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []ThroughputModel{
		{Name: "x", IdleWatts: 100, PeakWatts: 50, MaxUnits: 1},
		{Name: "x", IdleWatts: -1, PeakWatts: 50, MaxUnits: 1},
		{Name: "x", IdleWatts: 1, PeakWatts: 50, MaxUnits: 0},
		{Name: "x", IdleWatts: 1, PeakWatts: 50, MaxUnits: 1, Exponent: 1.5},
	}
	for i, m := range bad {
		if err := m.Validate(); !errors.Is(err, ErrModel) {
			t.Errorf("bad model %d accepted", i)
		}
	}
}

func TestThroughputModel(t *testing.T) {
	m := WordCountModel()
	if got := m.Throughput(m.IdleWatts); got != 0 {
		t.Errorf("Throughput at idle = %v", got)
	}
	if got := m.Throughput(m.PeakWatts); math.Abs(got-m.MaxUnits) > 1e-9 {
		t.Errorf("Throughput at peak = %v, want %v", got, m.MaxUnits)
	}
	if got := m.Throughput(m.PeakWatts + 50); math.Abs(got-m.MaxUnits) > 1e-9 {
		t.Errorf("Throughput above peak = %v, want clamped", got)
	}
	// Concavity: first 30 W above idle buy more than the next 30 W.
	d1 := m.Throughput(m.IdleWatts+30) - m.Throughput(m.IdleWatts)
	d2 := m.Throughput(m.IdleWatts+60) - m.Throughput(m.IdleWatts+30)
	if d2 >= d1 {
		t.Errorf("throughput curve not concave: %v then %v", d1, d2)
	}
}

func TestPowerForThroughput(t *testing.T) {
	m := TeraSortModel()
	w, ok := m.PowerForThroughput(20)
	if !ok {
		t.Fatal("20 units should be achievable")
	}
	if got := m.Throughput(w); math.Abs(got-20) > 1e-6 {
		t.Errorf("round trip: Throughput(PowerForThroughput(20)) = %v", got)
	}
	if w, ok := m.PowerForThroughput(0); !ok || w != m.IdleWatts {
		t.Errorf("zero target = %v, %v", w, ok)
	}
	if w, ok := m.PowerForThroughput(m.MaxUnits + 1); ok || w != m.PeakWatts {
		t.Errorf("unachievable target = %v, %v; want peak, false", w, ok)
	}
}

func TestSprintCost(t *testing.T) {
	c := SprintCost{A: 1, B: 2, SLOms: 100}
	if got := c.PerJob(50); got != 50 {
		t.Errorf("below SLO: %v, want 50 (linear)", got)
	}
	if got := c.PerJob(100); got != 100 {
		t.Errorf("at SLO: %v, want 100", got)
	}
	// 10 ms over: 110 + 2·100 = 310.
	if got := c.PerJob(110); got != 310 {
		t.Errorf("above SLO: %v, want 310 (quadratic penalty)", got)
	}
	if got := c.RatePerHour(50, 2); got != 50*2*3600 {
		t.Errorf("RatePerHour = %v", got)
	}
}

func TestOppCost(t *testing.T) {
	c := OppCost{DollarPerUnit: 0.5}
	if got := c.RatePerHour(2); got != 0.5*2*3600 {
		t.Errorf("RatePerHour = %v", got)
	}
}

func TestSprintGainCurve(t *testing.T) {
	m := SearchModel()
	c := DefaultSprintCost()
	// Load high enough that the 145 W reservation misses the SLO.
	load := 100.0
	if m.LatencyMS(load, 145) <= c.SLOms {
		t.Fatalf("test premise broken: latency %v at reservation should violate SLO", m.LatencyMS(load, 145))
	}
	gain := SprintGainCurve(m, c, load, 145)
	if got := gain(0); got != 0 {
		t.Errorf("gain(0) = %v, want 0", got)
	}
	if got := gain(-5); got != 0 {
		t.Errorf("gain(-5) = %v, want 0", got)
	}
	g30 := gain(30)
	g60 := gain(60)
	if g30 <= 0 {
		t.Errorf("gain(30) = %v, want positive (SLO restored)", g30)
	}
	if g60 < g30 {
		t.Errorf("gain not non-decreasing: %v then %v", g30, g60)
	}
}

func TestOppGainCurve(t *testing.T) {
	m := GraphModel()
	c := DefaultOppCost()
	gain := OppGainCurve(m, c, 115)
	if got := gain(0); got != 0 {
		t.Errorf("gain(0) = %v", got)
	}
	g20 := gain(20)
	g40 := gain(40)
	if g20 <= 0 || g40 < g20 {
		t.Errorf("gain curve: g(20)=%v g(40)=%v", g20, g40)
	}
	// Concavity (diminishing returns) — required by MaxPerf.
	if g40-g20 >= g20 {
		t.Errorf("gain curve not concave: increments %v then %v", g20, g40-g20)
	}
}

func TestPresetsValidateAndPerformanceBand(t *testing.T) {
	// All latency presets validate and their guaranteed-vs-peak speedups
	// fall in the paper's 1.2–1.8× band (Fig. 12(b)) at representative high
	// load.
	type pair struct {
		m        LatencyModel
		reserved float64
		load     float64
	}
	// Loads chosen so the reservation is stressed but not saturated; the
	// queueing nonlinearity means saturated slots clamp at CapMS and the
	// ratio is then governed by the load generator's timeout, not the model.
	lat := []pair{
		{SearchModel(), 145, 70},
		{WebModel(), 115, 55},
	}
	for _, p := range lat {
		if err := p.m.Validate(); err != nil {
			t.Fatalf("%s: %v", p.m.Name, err)
		}
		capped := p.m.LatencyMS(p.load, p.reserved)
		full := p.m.LatencyMS(p.load, p.m.PeakWatts)
		ratio := capped / full // inverse-latency performance ratio
		if ratio < 1.2 || ratio > 5 {
			t.Errorf("%s speedup %.2f outside plausible band (capped %v ms, full %v ms)",
				p.m.Name, ratio, capped, full)
		}
	}
	type tpair struct {
		m        ThroughputModel
		reserved float64
	}
	thr := []tpair{
		{WordCountModel(), 125},
		{TeraSortModel(), 125},
		{GraphModel(), 115},
	}
	for _, p := range thr {
		if err := p.m.Validate(); err != nil {
			t.Fatalf("%s: %v", p.m.Name, err)
		}
		ratio := p.m.Throughput(p.m.PeakWatts) / p.m.Throughput(p.reserved)
		if ratio < 1.2 || ratio > 1.8 {
			t.Errorf("%s peak/reserved throughput ratio %.2f outside paper band [1.2, 1.8]", p.m.Name, ratio)
		}
	}
}

// Property: latency is non-increasing in power and non-decreasing in load;
// throughput is non-decreasing in power. These monotonicity properties are
// what make the demand and gain curves well-behaved.
func TestQuickModelMonotonicity(t *testing.T) {
	m := SearchModel()
	tm := WordCountModel()
	f := func(loadRaw, p1Raw, p2Raw uint16) bool {
		load := float64(loadRaw % 200)
		p1 := float64(p1Raw % 250)
		p2 := p1 + float64(p2Raw%100)
		if m.LatencyMS(load, p2) > m.LatencyMS(load, p1)+1e-9 {
			return false
		}
		if m.LatencyMS(load+10, p1) < m.LatencyMS(load, p1)-1e-9 {
			return false
		}
		return tm.Throughput(p2) >= tm.Throughput(p1)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: PowerForLatency and PowerForThroughput are consistent inverses
// of their forward models wherever they report ok.
func TestQuickInverseConsistency(t *testing.T) {
	m := WebModel()
	tm := GraphModel()
	f := func(loadRaw, targetRaw, unitsRaw uint16) bool {
		load := float64(loadRaw % 130)
		target := 50 + float64(targetRaw%300)
		if w, ok := m.PowerForLatency(load, target); ok {
			if m.LatencyMS(load, w) > target+1e-6 {
				return false
			}
		}
		units := float64(unitsRaw%35) * 0.9
		if w, ok := tm.PowerForThroughput(units); ok {
			if math.Abs(tm.Throughput(w)-units) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
