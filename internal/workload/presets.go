package workload

// Presets calibrated to the paper's scaled-down testbed (Table I). Each
// "rack" is one server; guaranteed subscriptions are chosen per Table I and
// the models are tuned so that (a) the guaranteed budget sustains normal
// load at the SLO, (b) high-load slots violate the SLO without spot
// capacity, and (c) full power yields the paper's 1.2–1.8× performance
// band over the capped baseline.

// SearchModel reproduces the CloudSuite web-search tenant (aliases S-1,
// S-3; 145 W subscription; p99 SLO 100 ms).
func SearchModel() LatencyModel {
	return LatencyModel{
		Name:      "search",
		IdleWatts: 60,
		PeakWatts: 205,
		MaxRate:   150,
		BaseMS:    35,
		CapMS:     400,
		Exponent:  1,
	}
}

// WebModel reproduces the CloudSuite web-serving tenant (alias S-2; 115 W
// subscription; p90 SLO 100 ms).
func WebModel() LatencyModel {
	return LatencyModel{
		Name:      "web",
		IdleWatts: 55,
		PeakWatts: 165,
		MaxRate:   120,
		BaseMS:    40,
		CapMS:     400,
		Exponent:  1,
	}
}

// WordCountModel reproduces the Hadoop WordCount tenant (aliases O-1, O-3;
// 125 W subscription; throughput in MB/s of input processed).
func WordCountModel() ThroughputModel {
	return ThroughputModel{
		Name:      "wordcount",
		IdleWatts: 55,
		PeakWatts: 185,
		MaxUnits:  50,
		Exponent:  0.8,
	}
}

// TeraSortModel reproduces the Hadoop TeraSort tenant (alias O-4; 125 W
// subscription; throughput in MB/s sorted).
func TeraSortModel() ThroughputModel {
	return ThroughputModel{
		Name:      "terasort",
		IdleWatts: 55,
		PeakWatts: 185,
		MaxUnits:  40,
		Exponent:  0.8,
	}
}

// GraphModel reproduces the PowerGraph analytics tenant (aliases O-2, O-5;
// 115 W subscription; throughput in thousands of nodes processed per
// second).
func GraphModel() ThroughputModel {
	return ThroughputModel{
		Name:      "graph",
		IdleWatts: 50,
		PeakWatts: 165,
		MaxUnits:  30,
		Exponent:  0.8,
	}
}

// DefaultSprintCost returns the Section IV-C cost parameters used for the
// Search tenants (highest bidders). The scale is small — sub-dollar
// hourly gains — because the testbed is scaled down, exactly as the paper
// notes for Fig. 9.
// The quadratic SLO-violation penalty dominates the linear term: tenants
// buy enough spot capacity to restore the SLO but little beyond it, which
// keeps their cost increase marginal (Fig. 12(a)) and makes sprinting
// tenants take *less* spot (in % of reservation) than opportunistic ones
// (Fig. 12(c)).
func DefaultSprintCost() SprintCost {
	return SprintCost{A: 1e-9, B: 1.2e-11, SLOms: 100}
}

// WebSprintCost returns the cost parameters for the Web tenant, which bids
// a medium price.
func WebSprintCost() SprintCost {
	return SprintCost{A: 1e-9, B: 6e-12, SLOms: 100}
}

// DefaultOppCost returns the cost parameters for opportunistic tenants,
// who bid the lowest prices (never above the amortized guaranteed-capacity
// rate of ≈$0.2/kW·h).
func DefaultOppCost() OppCost {
	return OppCost{DollarPerUnit: 2e-6}
}
