package workload

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestBatchQueueSubmitValidation(t *testing.T) {
	var q BatchQueue
	if _, err := q.Submit(0, 0); !errors.Is(err, ErrQueue) {
		t.Error("zero-unit job accepted")
	}
	if _, err := q.Submit(5, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(3, 10); !errors.Is(err, ErrQueue) {
		t.Error("out-of-order arrival accepted")
	}
}

func TestBatchQueueDrainValidation(t *testing.T) {
	var q BatchQueue
	if _, err := q.Drain(0, -1, 60); !errors.Is(err, ErrQueue) {
		t.Error("negative throughput accepted")
	}
	if _, err := q.Drain(0, 1, 0); !errors.Is(err, ErrQueue) {
		t.Error("zero slot length accepted")
	}
}

func TestBatchQueueFIFOCompletion(t *testing.T) {
	var q BatchQueue
	// Two jobs of 120 units each arriving at slot 0; throughput 1 unit/s on
	// 60 s slots drains 60 units per slot.
	id0, err := q.Submit(0, 120)
	if err != nil {
		t.Fatal(err)
	}
	id1, err := q.Submit(0, 120)
	if err != nil {
		t.Fatal(err)
	}
	if q.Pending() != 2 || q.Backlog(0) != 240 {
		t.Fatalf("pending=%d backlog=%v", q.Pending(), q.Backlog(0))
	}
	var all []CompletedJob
	for slot := 0; slot < 4; slot++ {
		done, err := q.Drain(slot, 1, 60)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, done...)
	}
	if len(all) != 2 {
		t.Fatalf("completed %d jobs", len(all))
	}
	// Job 0 needs slots 0-1 (T=2); job 1 finishes at slot 3 (T=4).
	if all[0].ID != id0 || all[0].FinishSlot != 1 || all[0].CompletionSlots != 2 {
		t.Errorf("job0: %+v", all[0])
	}
	if all[1].ID != id1 || all[1].FinishSlot != 3 || all[1].CompletionSlots != 4 {
		t.Errorf("job1: %+v", all[1])
	}
	if q.Pending() != 0 {
		t.Errorf("pending = %d", q.Pending())
	}
	if math.Abs(q.MeanCompletionSlots()-3) > 1e-9 {
		t.Errorf("mean T_job = %v, want 3", q.MeanCompletionSlots())
	}
	if math.Abs(q.DrainedUnits()-240) > 1e-9 {
		t.Errorf("drained = %v", q.DrainedUnits())
	}
}

func TestBatchQueueFutureArrivalsWait(t *testing.T) {
	var q BatchQueue
	if _, err := q.Submit(5, 30); err != nil {
		t.Fatal(err)
	}
	done, err := q.Drain(0, 10, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 0 {
		t.Error("future job drained early")
	}
	if q.Backlog(0) != 0 || q.Backlog(5) != 30 {
		t.Errorf("backlog: %v / %v", q.Backlog(0), q.Backlog(5))
	}
	done, err = q.Drain(5, 10, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 1 || done[0].CompletionSlots != 1 {
		t.Errorf("done: %+v", done)
	}
}

// The headline behaviour spot capacity buys: faster draining cuts T_job by
// roughly the throughput ratio under sustained backlog.
func TestBatchQueueSpotSpeedup(t *testing.T) {
	m := WordCountModel()
	// Identical job sizes for both runs (sized to ~3 slots of capped work);
	// only the power budget differs.
	runFixed := func(watts float64) float64 {
		var q BatchQueue
		tp := m.Throughput(watts)
		units := m.Throughput(125) * 120 * 3
		for slot := 0; slot < 200; slot++ {
			if slot%4 == 0 {
				if _, err := q.Submit(slot, units); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := q.Drain(slot, tp, 120); err != nil {
				t.Fatal(err)
			}
		}
		return q.MeanCompletionSlots()
	}
	tCapped := runFixed(125)
	tSpot := runFixed(185)
	if tSpot >= tCapped {
		t.Fatalf("spot T_job %v not below capped %v", tSpot, tCapped)
	}
	ratio := tCapped / tSpot
	if ratio < 1.2 || ratio > 2.5 {
		t.Errorf("T_job speedup %v implausible", ratio)
	}
}

// Property: work is conserved — drained + remaining backlog equals
// submitted for any drain schedule.
func TestQuickBatchQueueConservation(t *testing.T) {
	f := func(sizes []uint8, rates []uint8) bool {
		var q BatchQueue
		submitted := 0.0
		slot := 0
		for i, s := range sizes {
			u := float64(s%50) + 1
			if _, err := q.Submit(slot, u); err != nil {
				return false
			}
			submitted += u
			if i%2 == 1 {
				slot++
			}
		}
		for i, r := range rates {
			if _, err := q.Drain(slot+i, float64(r%20), 30); err != nil {
				return false
			}
		}
		final := q.Backlog(slot + len(rates) + 10)
		return math.Abs(q.DrainedUnits()+final-submitted) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
