// Package wal is SpotDC's durable-state subsystem: an append-only,
// segmented write-ahead log with periodic snapshots and crash recovery.
// The operator's market obligations outlive any single slot — invoices
// accumulate for a month, an emergency suspension must persist until the
// element recovers — so the market loop commits one record per slot
// boundary here before broadcasting, and a restarted operator replays the
// log to land exactly where it died.
//
// The subsystem is deliberately generic: records are opaque (type byte +
// payload), so the packages that own the state (operator, proto, billing)
// serialize themselves and wal stays import-cycle-free and stdlib-only.
//
// On-disk format. Every record is one frame, reusing the wire codec's
// framing conventions (internal/proto binary codec): a 6-byte header
// [magic 0xD7][version 0x01][type][u24 BE payload length], the payload,
// then a u32 BE CRC32C (Castagnoli) over header+payload. Frames are
// concatenated into segment files named wal-<first seq, %016x>.seg; a
// snapshot is a single frame in its own snap-<covered seq>.snap file,
// written atomically (tmp + fsync + rename + directory fsync). Recovery
// loads the newest valid snapshot and replays every record at or after
// its sequence; the first torn or CRC-failing record truncates the log
// there — a crash mid-write must cost the tail record, never the run.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

const (
	frameMagic   = 0xD7
	frameVersion = 0x01
	headerSize   = 6
	crcSize      = 4

	// MaxRecord bounds one record's payload (the u24 length field). A
	// 15,000-rack slot record or operator checkpoint is single-digit
	// megabytes of JSON, comfortably inside it.
	MaxRecord = 1<<24 - 1

	segPrefix  = "wal-"
	segSuffix  = ".seg"
	snapPrefix = "snap-"
	snapSuffix = ".snap"

	// snapFrameType tags the single frame inside a snapshot file; record
	// types passed to Append are caller-defined and must not collide with
	// it, so they are capped below it.
	snapFrameType = 0xFF

	// retainSnapshots keeps this many newest snapshots (and the segments
	// needed to replay from the oldest retained one), so a snapshot file
	// corrupted at rest still leaves a recoverable older restore point.
	retainSnapshots = 2
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed reports an operation on a closed log.
var ErrClosed = errors.New("wal: log closed")

// SyncPolicy selects when appended records are fsynced to stable storage.
type SyncPolicy int

const (
	// SyncEveryRecord fsyncs after every Append: nothing acknowledged is
	// ever lost, at one fsync per record.
	SyncEveryRecord SyncPolicy = iota
	// SyncEverySlot leaves fsync to the caller's SlotSync at each slot
	// boundary: one fsync per market slot, the natural commit point of the
	// slot loop (a crash costs at most the in-flight slot, which the
	// restarted market re-runs deterministically).
	SyncEverySlot
	// SyncTimer fsyncs from a background timer (Options.TimerInterval):
	// cheapest, but a crash may lose every record since the last tick.
	SyncTimer
)

// String names the policy (the -fsync flag values).
func (p SyncPolicy) String() string {
	switch p {
	case SyncEveryRecord:
		return "record"
	case SyncEverySlot:
		return "slot"
	case SyncTimer:
		return "timer"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy parses a -fsync flag value ("record", "slot" or "timer").
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "", "slot":
		return SyncEverySlot, nil
	case "record":
		return SyncEveryRecord, nil
	case "timer":
		return SyncTimer, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want record, slot or timer)", s)
	}
}

// Options configures a log.
type Options struct {
	// Dir is the state directory; created if missing. One log per dir.
	Dir string
	// Policy selects the fsync discipline (default SyncEverySlot).
	Policy SyncPolicy
	// TimerInterval is the SyncTimer tick (default 100ms).
	TimerInterval time.Duration
	// SegmentBytes rotates the active segment once it grows past this many
	// bytes (default 8 MiB).
	SegmentBytes int64
	// Metrics, if non-nil, receives wal_* instrumentation.
	Metrics *Metrics
}

func (o *Options) setDefaults() {
	if o.TimerInterval <= 0 {
		o.TimerInterval = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
}

// Record is one recovered log entry.
type Record struct {
	// Seq is the record's log-wide sequence number.
	Seq uint64
	// Type is the caller-defined record type byte from Append.
	Type byte
	// Data is the payload.
	Data []byte
}

// Recovery is what Open found on disk: the newest valid snapshot (nil if
// none) and every durable record at or after it, in sequence order. The
// truncation counters report how much a crash (or corruption) cost.
type Recovery struct {
	// Snapshot is the newest valid snapshot payload, or nil.
	Snapshot []byte
	// SnapshotSeq is the sequence the snapshot covers: records with
	// Seq >= SnapshotSeq are returned in Records, everything earlier is
	// folded into the snapshot.
	SnapshotSeq uint64
	// Records are the replayable records, ascending by Seq.
	Records []Record
	// Truncations counts torn/CRC-failing tails cut off during recovery
	// (0 after a clean shutdown, 1 after a typical crash).
	Truncations int
	// TruncatedBytes is how many trailing bytes those truncations dropped.
	TruncatedBytes int64
	// DroppedSegments counts post-corruption segment files removed outright.
	DroppedSegments int
	// CorruptSnapshots counts snapshot files that failed validation and
	// were skipped in favor of an older one.
	CorruptSnapshots int
}

// Empty reports a fresh log: no snapshot and nothing to replay.
func (r *Recovery) Empty() bool {
	return r == nil || (r.Snapshot == nil && len(r.Records) == 0)
}

// Log is an append-only segmented write-ahead log. All methods are safe
// for concurrent use; the append path is allocation-free apart from the
// OS write itself (the frame header is built in a scratch buffer).
type Log struct {
	opts Options
	met  *Metrics

	mu      sync.Mutex
	seg     *os.File // active segment
	segBase uint64   // sequence of the active segment's first record
	segLen  int64    // bytes written to the active segment
	segs    []uint64 // all segment base sequences, ascending (incl. active)
	snaps   []uint64 // all snapshot sequences, ascending
	nextSeq uint64
	dirty   bool // unsynced bytes in the active segment
	closed  bool
	err     error // sticky I/O error

	hdr [headerSize]byte
	crc [crcSize]byte

	timerStop chan struct{}
	timerWG   sync.WaitGroup
}

// Open opens (or creates) the log in opts.Dir and recovers its durable
// state. The returned Recovery is complete before any new Append: callers
// restore their in-memory state from it, then resume appending.
func Open(opts Options) (*Log, *Recovery, error) {
	if opts.Dir == "" {
		return nil, nil, errors.New("wal: empty state dir")
	}
	opts.setDefaults()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{opts: opts, met: opts.Metrics}
	rec, err := l.recover()
	if err != nil {
		return nil, nil, err
	}
	if l.opts.Policy == SyncTimer {
		l.timerStop = make(chan struct{})
		l.timerWG.Add(1)
		go l.timerLoop()
	}
	return l, rec, nil
}

// segPath / snapPath name the on-disk files; sequences are zero-padded hex
// so lexical order is numeric order.
func (l *Log) segPath(base uint64) string {
	return filepath.Join(l.opts.Dir, fmt.Sprintf("%s%016x%s", segPrefix, base, segSuffix))
}

func (l *Log) snapPath(seq uint64) string {
	return filepath.Join(l.opts.Dir, fmt.Sprintf("%s%016x%s", snapPrefix, seq, snapSuffix))
}

func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	v, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 16, 64)
	return v, err == nil
}

// scannedRec is one frame parsed out of a segment.
type scannedRec struct {
	typ  byte
	data []byte
}

// scanFrames parses concatenated frames out of data, returning the parsed
// records, the byte length of the valid prefix, and whether a torn or
// corrupt tail was found after it.
func scanFrames(data []byte) (recs []scannedRec, validLen int, torn bool) {
	off := 0
	for off < len(data) {
		if len(data)-off < headerSize {
			return recs, off, true
		}
		if data[off] != frameMagic || data[off+1] != frameVersion {
			return recs, off, true
		}
		n := int(data[off+3])<<16 | int(data[off+4])<<8 | int(data[off+5])
		end := off + headerSize + n + crcSize
		if end > len(data) {
			return recs, off, true
		}
		want := binary.BigEndian.Uint32(data[end-crcSize : end])
		if crc32.Checksum(data[off:end-crcSize], castagnoli) != want {
			return recs, off, true
		}
		payload := make([]byte, n)
		copy(payload, data[off+headerSize:end-crcSize])
		recs = append(recs, scannedRec{typ: data[off+2], data: payload})
		off = end
	}
	return recs, off, false
}

// recover scans the directory, truncates any torn tail, and leaves the log
// positioned to append after the last durable record.
func (l *Log) recover() (*Recovery, error) {
	entries, err := os.ReadDir(l.opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs, snaps []uint64
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), segPrefix, segSuffix); ok {
			segs = append(segs, seq)
		} else if seq, ok := parseSeq(e.Name(), snapPrefix, snapSuffix); ok {
			snaps = append(snaps, seq)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })

	rec := &Recovery{}
	var startSeq uint64
	for i := len(snaps) - 1; i >= 0; i-- {
		data, ok := readSnapshotFile(l.snapPath(snaps[i]))
		if !ok {
			rec.CorruptSnapshots++
			continue
		}
		rec.Snapshot = data
		rec.SnapshotSeq = snaps[i]
		startSeq = snaps[i]
		break
	}

	// Replay segments in order. After the first torn record every later
	// segment is a post-corruption remnant and is removed: appending past a
	// truncation point must not resurrect stale future records.
	var nextSeq uint64
	kept := segs[:0]
	truncated := false
	for i, base := range segs {
		path := l.segPath(base)
		if truncated || (i > 0 && base != nextSeq) {
			// Either past a truncation point, or a sequence gap (a missing
			// or foreign segment file): nothing after it can be trusted.
			if err := os.Remove(path); err != nil {
				return nil, fmt.Errorf("wal: dropping segment: %w", err)
			}
			rec.DroppedSegments++
			truncated = true
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		frames, validLen, torn := scanFrames(data)
		if torn {
			rec.Truncations++
			rec.TruncatedBytes += int64(len(data) - validLen)
			if err := os.Truncate(path, int64(validLen)); err != nil {
				return nil, fmt.Errorf("wal: truncating torn tail: %w", err)
			}
			truncated = true
		}
		for j, fr := range frames {
			seq := base + uint64(j)
			if seq >= startSeq {
				rec.Records = append(rec.Records, Record{Seq: seq, Type: fr.typ, Data: fr.data})
			}
		}
		nextSeq = base + uint64(len(frames))
		kept = append(kept, base)
	}
	if nextSeq < startSeq {
		// All segments covered by the snapshot were compacted away.
		nextSeq = startSeq
	}
	l.segs = kept
	l.snaps = snaps
	l.nextSeq = nextSeq
	if l.met != nil {
		l.met.truncations.Add(uint64(rec.Truncations))
	}

	// Open (or create) the active segment.
	if len(l.segs) > 0 {
		base := l.segs[len(l.segs)-1]
		f, err := os.OpenFile(l.segPath(base), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: %w", err)
		}
		l.seg = f
		l.segBase = base
		l.segLen = st.Size()
	} else {
		if err := l.openSegmentLocked(nextSeq); err != nil {
			return nil, err
		}
	}
	l.observeSegments()
	return rec, nil
}

// readSnapshotFile validates a snapshot file: exactly one intact frame of
// the snapshot type.
func readSnapshotFile(path string) ([]byte, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	frames, _, torn := scanFrames(data)
	if torn || len(frames) != 1 || frames[0].typ != snapFrameType {
		return nil, false
	}
	return frames[0].data, true
}

// openSegmentLocked creates a fresh segment whose first record will carry
// sequence base, and fsyncs the directory so the file itself is durable.
func (l *Log) openSegmentLocked(base uint64) error {
	f, err := os.OpenFile(l.segPath(base), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.seg = f
	l.segBase = base
	l.segLen = 0
	l.segs = append(l.segs, base)
	l.observeSegments()
	return syncDir(l.opts.Dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: dir fsync: %w", err)
	}
	return nil
}

func (l *Log) observeSegments() {
	if l.met != nil {
		l.met.segments.Set(float64(len(l.segs)))
	}
}

// fail records the first I/O error; every later call returns it. A durable
// log that cannot write must not silently pretend it did.
func (l *Log) fail(err error) error {
	if l.err == nil {
		l.err = err
	}
	return l.err
}

// Append writes one record and returns its sequence number. Under
// SyncEveryRecord the record is durable on return; under the other
// policies durability arrives at the next SlotSync / timer tick / Close.
func (l *Log) Append(typ byte, data []byte) (uint64, error) {
	if typ >= snapFrameType {
		return 0, fmt.Errorf("wal: record type %#x reserved", typ)
	}
	if len(data) > MaxRecord {
		return 0, fmt.Errorf("wal: record %d bytes exceeds %d", len(data), MaxRecord)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.err != nil {
		return 0, l.err
	}
	l.hdr = [headerSize]byte{frameMagic, frameVersion, typ,
		byte(len(data) >> 16), byte(len(data) >> 8), byte(len(data))}
	crc := crc32.Update(0, castagnoli, l.hdr[:])
	crc = crc32.Update(crc, castagnoli, data)
	binary.BigEndian.PutUint32(l.crc[:], crc)
	if _, err := l.seg.Write(l.hdr[:]); err != nil {
		return 0, l.fail(fmt.Errorf("wal: %w", err))
	}
	if _, err := l.seg.Write(data); err != nil {
		return 0, l.fail(fmt.Errorf("wal: %w", err))
	}
	if _, err := l.seg.Write(l.crc[:]); err != nil {
		return 0, l.fail(fmt.Errorf("wal: %w", err))
	}
	seq := l.nextSeq
	l.nextSeq++
	l.segLen += int64(headerSize + len(data) + crcSize)
	l.dirty = true
	if l.met != nil {
		l.met.appends.Inc()
		l.met.appendBytes.Add(uint64(headerSize + len(data) + crcSize))
	}
	if l.opts.Policy == SyncEveryRecord {
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	}
	if l.segLen >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// syncLocked fsyncs the active segment if it holds unsynced bytes.
func (l *Log) syncLocked() error {
	if l.err != nil {
		return l.err
	}
	if !l.dirty {
		return nil
	}
	start := time.Now()
	if err := l.seg.Sync(); err != nil {
		return l.fail(fmt.Errorf("wal: fsync: %w", err))
	}
	l.dirty = false
	if l.met != nil {
		l.met.fsyncs.Inc()
		l.met.fsyncSeconds.Observe(time.Since(start).Seconds())
	}
	return nil
}

// Sync forces everything appended so far to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

// SlotSync is the market loop's per-slot commit barrier: under
// SyncEverySlot it fsyncs, under the other policies it is a no-op (the
// record policy already synced, the timer policy accepts the risk).
func (l *Log) SlotSync() error {
	if l.opts.Policy != SyncEverySlot {
		return nil
	}
	return l.Sync()
}

// rotateLocked seals the active segment (flush + fsync) and opens a fresh
// one starting at the next sequence.
func (l *Log) rotateLocked() error {
	if l.segLen == 0 && l.segBase == l.nextSeq {
		return nil // already fresh
	}
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.seg.Close(); err != nil {
		return l.fail(fmt.Errorf("wal: %w", err))
	}
	if err := l.openSegmentLocked(l.nextSeq); err != nil {
		return l.fail(err)
	}
	return nil
}

// Snapshot atomically persists a full-state snapshot covering every record
// appended so far, then compacts: segments fully covered by the oldest
// retained snapshot are deleted, as are snapshots older than the retention
// window. After Snapshot returns, recovery needs only the snapshot plus
// records appended after this call.
func (l *Log) Snapshot(data []byte) error {
	if len(data) > MaxRecord {
		return fmt.Errorf("wal: snapshot %d bytes exceeds %d", len(data), MaxRecord)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	// Seal the segment first: a snapshot must never cover records that are
	// not themselves durable yet.
	if err := l.syncLocked(); err != nil {
		return err
	}
	seq := l.nextSeq
	path := l.snapPath(seq)
	tmp := path + ".tmp"
	frame := make([]byte, 0, headerSize+len(data)+crcSize)
	frame = append(frame, frameMagic, frameVersion, snapFrameType,
		byte(len(data)>>16), byte(len(data)>>8), byte(len(data)))
	frame = append(frame, data...)
	var crcb [crcSize]byte
	binary.BigEndian.PutUint32(crcb[:], crc32.Checksum(frame, castagnoli))
	frame = append(frame, crcb[:]...)
	if err := writeFileSync(tmp, frame); err != nil {
		return l.fail(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return l.fail(fmt.Errorf("wal: %w", err))
	}
	if err := syncDir(l.opts.Dir); err != nil {
		return l.fail(err)
	}
	l.snaps = append(l.snaps, seq)
	if l.met != nil {
		l.met.snapshots.Inc()
		l.met.snapshotBytes.Set(float64(len(data)))
	}
	// Rotate so every earlier segment is fully covered by this snapshot,
	// then compact behind the retention window.
	if err := l.rotateLocked(); err != nil {
		return err
	}
	return l.compactLocked()
}

// compactLocked deletes snapshots older than the retention window and
// segments whose entire sequence range is below the oldest retained
// snapshot. Best-effort removals never fail the log: leftover files only
// cost disk, and the next compaction retries.
func (l *Log) compactLocked() error {
	if len(l.snaps) > retainSnapshots {
		for _, seq := range l.snaps[:len(l.snaps)-retainSnapshots] {
			_ = os.Remove(l.snapPath(seq))
		}
		l.snaps = append(l.snaps[:0], l.snaps[len(l.snaps)-retainSnapshots:]...)
	}
	floor := l.snaps[0] // oldest retained; Snapshot just appended, so non-empty
	kept := l.segs[:0]
	for i, base := range l.segs {
		// A segment's range ends where the next one begins; the active
		// (last) segment is never removed.
		if i+1 < len(l.segs) && l.segs[i+1] <= floor {
			_ = os.Remove(l.segPath(base))
			continue
		}
		kept = append(kept, base)
	}
	l.segs = kept
	l.observeSegments()
	return nil
}

// NextSeq returns the sequence the next Append will get.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// Policy returns the log's fsync policy.
func (l *Log) Policy() SyncPolicy { return l.opts.Policy }

// Err returns the sticky I/O error, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

func (l *Log) timerLoop() {
	defer l.timerWG.Done()
	t := time.NewTicker(l.opts.TimerInterval)
	defer t.Stop()
	for {
		select {
		case <-l.timerStop:
			return
		case <-t.C:
			_ = l.Sync()
		}
	}
}

func (l *Log) stopTimer() {
	if l.timerStop != nil {
		close(l.timerStop)
		l.timerWG.Wait()
		l.timerStop = nil
	}
}

// Close flushes, fsyncs, and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	err := l.syncLocked()
	if cerr := l.seg.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wal: %w", cerr)
	}
	l.mu.Unlock()
	l.stopTimer()
	return err
}

// Kill abruptly closes the log's file descriptors without the final fsync
// — the crash-injection hook: whatever the OS had not persisted is exactly
// what a process kill would have lost. Test harnesses only.
func (l *Log) Kill() {
	l.mu.Lock()
	if !l.closed {
		l.closed = true
		_ = l.seg.Close()
	}
	l.mu.Unlock()
	l.stopTimer()
}

// writeFileSync writes data to path and fsyncs it before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}
