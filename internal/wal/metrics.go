package wal

import "spotdc/internal/metrics"

// Metrics is the wal_* instrumentation family set. A nil Options.Metrics
// runs the log uninstrumented at zero cost.
type Metrics struct {
	appends       *metrics.Counter
	appendBytes   *metrics.Counter
	fsyncs        *metrics.Counter
	fsyncSeconds  *metrics.Histogram
	truncations   *metrics.Counter
	snapshots     *metrics.Counter
	snapshotBytes *metrics.Gauge
	segments      *metrics.Gauge
}

// fsyncBounds buckets fsync latency: sub-100µs page-cache hits through
// spinning-rust worst cases.
var fsyncBounds = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25}

// NewMetrics registers the wal_* families on r.
func NewMetrics(r *metrics.Registry) *Metrics {
	return &Metrics{
		appends: r.Counter("spotdc_wal_appends_total",
			"Records appended to the write-ahead log."),
		appendBytes: r.Counter("spotdc_wal_append_bytes_total",
			"Framed bytes appended to the write-ahead log (headers and checksums included)."),
		fsyncs: r.Counter("spotdc_wal_fsyncs_total",
			"fsync calls issued by the write-ahead log."),
		fsyncSeconds: r.Histogram("spotdc_wal_fsync_seconds",
			"Write-ahead log fsync latency in seconds.", fsyncBounds),
		truncations: r.Counter("spotdc_wal_recovery_truncations_total",
			"Torn or corrupt record tails truncated during recovery."),
		snapshots: r.Counter("spotdc_wal_snapshots_total",
			"State snapshots persisted."),
		snapshotBytes: r.Gauge("spotdc_wal_snapshot_bytes",
			"Size of the most recent state snapshot in bytes."),
		segments: r.Gauge("spotdc_wal_segments",
			"Live write-ahead log segment files."),
	}
}
