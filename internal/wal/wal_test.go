package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"spotdc/internal/metrics"
)

func openT(t *testing.T, opts Options) (*Log, *Recovery) {
	t.Helper()
	l, rec, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := openT(t, Options{Dir: dir, Policy: SyncEveryRecord})
	if !rec.Empty() {
		t.Fatalf("fresh dir not empty: %+v", rec)
	}
	for i := 0; i < 10; i++ {
		seq, err := l.Append(1, []byte(fmt.Sprintf("record-%d", i)))
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if seq != uint64(i) {
			t.Fatalf("seq = %d, want %d", seq, i)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rec2 := openT(t, Options{Dir: dir})
	defer l2.Close()
	if len(rec2.Records) != 10 {
		t.Fatalf("recovered %d records, want 10", len(rec2.Records))
	}
	for i, r := range rec2.Records {
		if r.Seq != uint64(i) || r.Type != 1 || string(r.Data) != fmt.Sprintf("record-%d", i) {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	if got := l2.NextSeq(); got != 10 {
		t.Fatalf("NextSeq = %d, want 10", got)
	}
}

func TestRecoveryTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, Options{Dir: dir, Policy: SyncEverySlot})
	for i := 0; i < 5; i++ {
		if _, err := l.Append(2, []byte{byte(i)}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Simulate a crash mid-write: a frame header claiming more payload than
	// was ever written.
	seg := l.segPath(0)
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{frameMagic, frameVersion, 2, 0, 1, 0, 0xAA, 0xBB}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, rec := openT(t, Options{Dir: dir})
	defer l2.Close()
	if rec.Truncations != 1 || rec.TruncatedBytes != 8 {
		t.Fatalf("truncations=%d bytes=%d, want 1/8", rec.Truncations, rec.TruncatedBytes)
	}
	if len(rec.Records) != 5 {
		t.Fatalf("recovered %d records, want 5", len(rec.Records))
	}
	// The torn tail is physically gone: appends continue cleanly from seq 5.
	seq, err := l2.Append(2, []byte("after"))
	if err != nil || seq != 5 {
		t.Fatalf("Append after truncation: seq=%d err=%v", seq, err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3, rec3 := openT(t, Options{Dir: dir})
	defer l3.Close()
	if len(rec3.Records) != 6 || rec3.Truncations != 0 {
		t.Fatalf("re-recovered %d records (%d truncations), want 6/0", len(rec3.Records), rec3.Truncations)
	}
}

func TestRecoveryTruncatesCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, Options{Dir: dir, Policy: SyncEveryRecord})
	for i := 0; i < 4; i++ {
		if _, err := l.Append(1, bytes.Repeat([]byte{byte(i)}, 32)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	// Flip one payload byte of the third record: CRC fails there, so
	// recovery keeps records 0-1 and truncates from record 2 on.
	seg := l.segPath(0)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	recLen := headerSize + 32 + crcSize
	data[2*recLen+headerSize] ^= 0x01
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, rec := openT(t, Options{Dir: dir})
	defer l2.Close()
	if len(rec.Records) != 2 {
		t.Fatalf("recovered %d records, want 2", len(rec.Records))
	}
	if rec.Truncations != 1 || rec.TruncatedBytes != int64(2*recLen) {
		t.Fatalf("truncations=%d bytes=%d, want 1/%d", rec.Truncations, rec.TruncatedBytes, 2*recLen)
	}
}

func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments so appends rotate often.
	l, _ := openT(t, Options{Dir: dir, Policy: SyncEverySlot, SegmentBytes: 64})
	for i := 0; i < 20; i++ {
		if _, err := l.Append(1, bytes.Repeat([]byte{byte(i)}, 40)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Snapshot([]byte("state-at-20")); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	for i := 20; i < 25; i++ {
		if _, err := l.Append(1, bytes.Repeat([]byte{byte(i)}, 40)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Snapshot([]byte("state-at-25")); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	for i := 25; i < 28; i++ {
		if _, err := l.Append(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Segments fully below the oldest retained snapshot (seq 20) are gone.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if base, ok := parseSeq(e.Name(), segPrefix, segSuffix); ok && base < 19 {
			t.Fatalf("segment %s should have been compacted", e.Name())
		}
	}

	l2, rec := openT(t, Options{Dir: dir})
	defer l2.Close()
	if string(rec.Snapshot) != "state-at-25" || rec.SnapshotSeq != 25 {
		t.Fatalf("snapshot = %q @ %d, want state-at-25 @ 25", rec.Snapshot, rec.SnapshotSeq)
	}
	if len(rec.Records) != 3 || rec.Records[0].Seq != 25 {
		t.Fatalf("replay records = %+v, want 3 from seq 25", rec.Records)
	}
}

func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, Options{Dir: dir, Policy: SyncEverySlot})
	for i := 0; i < 6; i++ {
		if _, err := l.Append(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Snapshot([]byte("snap-6")); err != nil {
		t.Fatal(err)
	}
	for i := 6; i < 9; i++ {
		if _, err := l.Append(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Snapshot([]byte("snap-9")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest snapshot at rest: recovery must fall back to the
	// older one and replay the records it still has on disk.
	newest := filepath.Join(dir, fmt.Sprintf("%s%016x%s", snapPrefix, 9, snapSuffix))
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, rec := openT(t, Options{Dir: dir})
	defer l2.Close()
	if rec.CorruptSnapshots != 1 {
		t.Fatalf("CorruptSnapshots = %d, want 1", rec.CorruptSnapshots)
	}
	if string(rec.Snapshot) != "snap-6" || rec.SnapshotSeq != 6 {
		t.Fatalf("fell back to %q @ %d, want snap-6 @ 6", rec.Snapshot, rec.SnapshotSeq)
	}
	if len(rec.Records) != 3 || rec.Records[0].Seq != 6 {
		t.Fatalf("replay records = %+v, want seqs 6..8", rec.Records)
	}
}

func TestKillLosesOnlyUnsyncedTail(t *testing.T) {
	dir := t.TempDir()
	// Timer policy with a long interval: nothing fsyncs between appends.
	l, _ := openT(t, Options{Dir: dir, Policy: SyncTimer, TimerInterval: time.Hour})
	for i := 0; i < 3; i++ {
		if _, err := l.Append(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := 3; i < 7; i++ {
		if _, err := l.Append(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Kill()
	// The first three records were synced; the rest may or may not have
	// reached the file (os.File writes are unbuffered in Go, so in-process
	// they land in the page cache — the invariant recovery must provide is
	// only "a valid prefix, at least through the last sync").
	_, rec := openT(t, Options{Dir: dir})
	if len(rec.Records) < 3 {
		t.Fatalf("recovered %d records, want >= 3", len(rec.Records))
	}
	for i, r := range rec.Records {
		if r.Seq != uint64(i) || r.Data[0] != byte(i) {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
}

func TestAppendAfterCloseAndReservedType(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, Options{Dir: dir})
	if _, err := l.Append(snapFrameType, nil); err == nil {
		t.Fatal("reserved type accepted")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(1, nil); err != ErrClosed {
		t.Fatalf("Append after close: %v, want ErrClosed", err)
	}
}

func TestMetricsFamilies(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	l, _ := openT(t, Options{Dir: dir, Policy: SyncEveryRecord, Metrics: NewMetrics(reg)})
	if _, err := l.Append(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := l.Snapshot([]byte("s")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	for name, want := range map[string]float64{
		"spotdc_wal_appends_total":   1,
		"spotdc_wal_fsyncs_total":    1, // record-policy append; snapshot seal finds nothing dirty
		"spotdc_wal_snapshots_total": 1,
		"spotdc_wal_snapshot_bytes":  1,
	} {
		if got, ok := reg.Value(name); !ok || got != want {
			t.Errorf("%s = %v (ok=%v), want %v", name, got, ok, want)
		}
	}
	// A torn tail bumps the recovery truncation counter on reopen.
	seg := l.segPath(1)
	if err := os.WriteFile(seg, []byte{frameMagic}, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, _ := openT(t, Options{Dir: dir, Metrics: NewMetrics(reg)})
	defer l2.Close()
	if got, _ := reg.Value("spotdc_wal_recovery_truncations_total"); got != 1 {
		t.Errorf("truncations = %v, want 1", got)
	}
}
