// Package par provides the bounded worker-pool primitives shared by the
// parallel simulation engine: experiment scenario fan-out
// (internal/experiments), intra-slot agent parallelism (internal/sim) and
// parallel candidate verification (internal/core).
//
// The contract every caller relies on: work item i is identified by its
// index, callers write results into slot i of a pre-sized slice, and the
// pool imposes no ordering between items — so a parallel run is
// bit-identical to a serial run as long as the per-index work is
// independent. Worker counts resolve through Workers (0 ⇒ GOMAXPROCS), and
// a resolved count of 1 (or a single item) runs inline on the calling
// goroutine with no scheduling overhead at all.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"

	"spotdc/internal/metrics"
)

// poolMetrics is the package's optional instrumentation, installed once via
// EnableMetrics and read with one atomic pointer load per parallel For. It
// deliberately observes only pool-level events (dispatches, items, worker
// occupancy) — never per-item work — so instrumentation cannot perturb the
// engine's bit-identical determinism contract, and inline (workers ≤ 1)
// paths stay untouched.
type poolMetrics struct {
	dispatches *metrics.Counter
	items      *metrics.Counter
	active     *metrics.Gauge
}

var pool atomic.Pointer[poolMetrics]

// EnableMetrics registers the worker-pool families on r and installs them
// process-wide (the pool is shared package state, so its instrumentation is
// too). Subsequent parallel For calls count dispatches and items and track
// live worker occupancy on spotdc_par_active_workers.
func EnableMetrics(r *metrics.Registry) {
	pool.Store(&poolMetrics{
		dispatches: r.Counter("spotdc_par_dispatches_total",
			"Parallel For dispatches (inline runs with one worker are not counted)."),
		items: r.Counter("spotdc_par_items_total",
			"Work items executed by parallel For dispatches."),
		active: r.Gauge("spotdc_par_active_workers",
			"Currently live worker goroutines across all parallel For dispatches."),
	})
}

// Workers resolves a worker-count knob: n <= 0 means runtime.GOMAXPROCS(0),
// anything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// For runs fn(i) for every i in [0, n) on a pool of at most workers
// goroutines (resolved via Workers). Indices are handed out dynamically
// (work stealing via an atomic counter), so uneven item costs balance
// across workers. It returns once every call has completed.
//
// workers <= 1 after resolution, or n <= 1, runs inline on the caller's
// goroutine.
func For(workers, n int, fn func(i int)) {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	pm := pool.Load()
	if pm != nil {
		pm.dispatches.Inc()
		pm.items.Add(uint64(n))
		pm.active.Add(float64(workers))
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if pm != nil {
		pm.active.Add(-float64(workers))
	}
}

// ForErr is For with error collection: it runs every call to completion
// (no cancellation — items are independent scenarios whose partial results
// the caller discards on error anyway) and returns the error of the
// lowest-indexed failing call, so the reported error is deterministic
// regardless of scheduling.
func ForErr(workers, n int, fn func(i int) error) error {
	var (
		mu      sync.Mutex
		firstI  = n
		firstEr error
	)
	For(workers, n, func(i int) {
		if err := fn(i); err != nil {
			mu.Lock()
			if i < firstI {
				firstI, firstEr = i, err
			}
			mu.Unlock()
		}
	})
	return firstEr
}
