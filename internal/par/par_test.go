package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
}

// TestForCoversEveryIndexOnce is the pool's core contract: fn(i) runs
// exactly once for every i in [0, n), at any worker count, including the
// inline paths (workers <= 1, n <= 1) and workers > n.
func TestForCoversEveryIndexOnce(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	for _, workers := range []int{0, 1, 2, 4, 100} {
		for _, n := range []int{0, 1, 2, 17, 1000} {
			counts := make([]atomic.Int32, n)
			For(workers, n, func(i int) { counts[i].Add(1) })
			for i := range counts {
				if c := counts[i].Load(); c != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestForInlineOnCallerGoroutine(t *testing.T) {
	// workers=1 must not spawn goroutines: goroutine-local state (here a
	// plain non-atomic variable) stays safe.
	sum := 0
	For(1, 100, func(i int) { sum += i })
	if sum != 4950 {
		t.Errorf("sum = %d, want 4950", sum)
	}
}

// TestForErrLowestIndexWins: the reported error must be the lowest-indexed
// failure regardless of scheduling, and every item still runs (no
// cancellation).
func TestForErrLowestIndexWins(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	for _, workers := range []int{1, 4} {
		var ran atomic.Int32
		err := ForErr(workers, 50, func(i int) error {
			ran.Add(1)
			if i%10 == 7 { // fails at 7, 17, 27, 37, 47
				return fmt.Errorf("item %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "item 7" {
			t.Errorf("workers=%d: err = %v, want item 7", workers, err)
		}
		if ran.Load() != 50 {
			t.Errorf("workers=%d: ran %d of 50 items", workers, ran.Load())
		}
	}
}

func TestForErrNilOnSuccess(t *testing.T) {
	if err := ForErr(4, 20, func(int) error { return nil }); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
	want := errors.New("only")
	if err := ForErr(4, 1, func(int) error { return want }); !errors.Is(err, want) {
		t.Errorf("single-item error not propagated: %v", err)
	}
}
