package config

import (
	"fmt"

	"spotdc/internal/core"
	"spotdc/internal/operator"
	"spotdc/internal/power"
	"spotdc/internal/sim"
	"spotdc/internal/tenant"
	"spotdc/internal/trace"
	"spotdc/internal/workload"
)

// Custom describes a fully bespoke data center: explicit power topology,
// tenants with workload models and trace generators, and background load.
// It is the declarative counterpart of assembling a sim.Scenario in code.
type Custom struct {
	// Name labels the scenario.
	Name string `json:"name,omitempty"`
	// Slots and SlotSeconds set the horizon.
	Slots       int `json:"slots"`
	SlotSeconds int `json:"slot_seconds,omitempty"`
	// Seed is the default seed for generators that do not set their own.
	Seed int64 `json:"seed,omitempty"`
	// UPSCapacity is the shared UPS capacity in watts.
	UPSCapacity float64 `json:"ups_capacity"`
	// PDUs and Racks describe the power tree.
	PDUs  []CustomPDU  `json:"pdus"`
	Racks []CustomRack `json:"racks"`
	// Tenants lists the participating agents.
	Tenants []CustomTenant `json:"tenants"`
	// Others describes non-participating load per PDU.
	Others []CustomOther `json:"others,omitempty"`
	// PriceStep is the clearing scan granularity.
	PriceStep float64 `json:"price_step,omitempty"`
	// Algorithm selects the clearing engine: "auto", "scan" or "exact".
	Algorithm string `json:"algorithm,omitempty"`
	// UnderPrediction is the conservative prediction factor.
	UnderPrediction float64 `json:"under_prediction,omitempty"`
}

// CustomPDU is one cluster PDU.
type CustomPDU struct {
	ID       string  `json:"id"`
	Capacity float64 `json:"capacity"`
}

// CustomRack is one tenant rack.
type CustomRack struct {
	ID         string  `json:"id"`
	Tenant     string  `json:"tenant,omitempty"`
	PDU        int     `json:"pdu"`
	Guaranteed float64 `json:"guaranteed"`
	Headroom   float64 `json:"headroom"`
}

// CustomTenant is one participating agent bound to a rack.
type CustomTenant struct {
	// Name identifies the tenant.
	Name string `json:"name"`
	// Class is "sprinting", "opportunistic" or "bundled" (a multi-rack
	// sprinting service bidding a joint demand vector, Section III-B3).
	Class string `json:"class"`
	// Rack is the rack ID the tenant bids for (sprinting/opportunistic).
	Rack string `json:"rack,omitempty"`
	// Racks lists the tier racks of a bundled tenant, front to back.
	Racks []string `json:"racks,omitempty"`
	// SLOms overrides the end-to-end latency SLO of a bundled tenant
	// (default 200 ms).
	SLOms float64 `json:"slo_ms,omitempty"`
	// Workload picks a preset model: "search", "web" (sprinting);
	// "wordcount", "terasort", "graph" (opportunistic).
	Workload string `json:"workload"`
	// QMin and QMax delimit the bidding prices in $/kW·h.
	QMin float64 `json:"qmin"`
	QMax float64 `json:"qmax"`
	// Load drives sprinting tenants (requests/s).
	Load *CustomArrivals `json:"load,omitempty"`
	// Backlog drives opportunistic tenants.
	Backlog *CustomBacklog `json:"backlog,omitempty"`
}

// CustomArrivals parameterizes a request-arrival generator.
type CustomArrivals struct {
	Seed          int64   `json:"seed,omitempty"`
	BaseRate      float64 `json:"base_rate"`
	PeakRate      float64 `json:"peak_rate"`
	BurstFraction float64 `json:"burst_fraction,omitempty"`
	BurstFactor   float64 `json:"burst_factor,omitempty"`
}

// CustomBacklog parameterizes a batch-backlog generator.
type CustomBacklog struct {
	Seed           int64   `json:"seed,omitempty"`
	ActiveFraction float64 `json:"active_fraction"`
	MeanUnits      float64 `json:"mean_units,omitempty"`
}

// CustomOther is non-participating load attached to one PDU.
type CustomOther struct {
	PDU        int     `json:"pdu"`
	Leased     float64 `json:"leased"`
	MeanFrac   float64 `json:"mean_frac,omitempty"`
	Volatility float64 `json:"volatility,omitempty"`
	Seed       int64   `json:"seed,omitempty"`
}

// Validate checks the custom scenario.
func (c *Custom) Validate() error {
	switch {
	case c.Slots <= 0:
		return fmt.Errorf("%w: slots %d must be positive", ErrConfig, c.Slots)
	case c.UPSCapacity <= 0:
		return fmt.Errorf("%w: ups_capacity %v must be positive", ErrConfig, c.UPSCapacity)
	case len(c.PDUs) == 0:
		return fmt.Errorf("%w: no PDUs", ErrConfig)
	case len(c.Racks) == 0:
		return fmt.Errorf("%w: no racks", ErrConfig)
	case len(c.Tenants) == 0:
		return fmt.Errorf("%w: no tenants", ErrConfig)
	}
	if _, err := core.ParseAlgorithm(c.Algorithm); err != nil {
		return fmt.Errorf("%w: %v", ErrConfig, err)
	}
	rackIDs := map[string]bool{}
	for _, r := range c.Racks {
		if r.PDU < 0 || r.PDU >= len(c.PDUs) {
			return fmt.Errorf("%w: rack %q references pdu %d of %d", ErrConfig, r.ID, r.PDU, len(c.PDUs))
		}
		rackIDs[r.ID] = true
	}
	for _, t := range c.Tenants {
		if t.Name == "" {
			return fmt.Errorf("%w: tenant with empty name", ErrConfig)
		}
		if t.Class != "bundled" && !rackIDs[t.Rack] {
			return fmt.Errorf("%w: tenant %q references unknown rack %q", ErrConfig, t.Name, t.Rack)
		}
		if t.QMax < t.QMin || t.QMin < 0 {
			return fmt.Errorf("%w: tenant %q prices [%v, %v]", ErrConfig, t.Name, t.QMin, t.QMax)
		}
		switch t.Class {
		case "sprinting":
			if _, err := sprintModel(t.Workload); err != nil {
				return err
			}
			if t.Load == nil {
				return fmt.Errorf("%w: sprinting tenant %q needs a load generator", ErrConfig, t.Name)
			}
			if t.Load.PeakRate < t.Load.BaseRate {
				return fmt.Errorf("%w: tenant %q peak rate below base", ErrConfig, t.Name)
			}
		case "opportunistic":
			if _, err := oppModel(t.Workload); err != nil {
				return err
			}
			if t.Backlog == nil {
				return fmt.Errorf("%w: opportunistic tenant %q needs a backlog generator", ErrConfig, t.Name)
			}
			if t.Backlog.ActiveFraction <= 0 || t.Backlog.ActiveFraction > 1 {
				return fmt.Errorf("%w: tenant %q active_fraction %v", ErrConfig, t.Name, t.Backlog.ActiveFraction)
			}
		case "bundled":
			if _, err := sprintModel(t.Workload); err != nil {
				return err
			}
			if len(t.Racks) < 2 {
				return fmt.Errorf("%w: bundled tenant %q needs ≥2 racks", ErrConfig, t.Name)
			}
			for _, id := range t.Racks {
				if !rackIDs[id] {
					return fmt.Errorf("%w: bundled tenant %q references unknown rack %q", ErrConfig, t.Name, id)
				}
			}
			if t.Load == nil {
				return fmt.Errorf("%w: bundled tenant %q needs a load generator", ErrConfig, t.Name)
			}
			if t.Load.PeakRate < t.Load.BaseRate {
				return fmt.Errorf("%w: tenant %q peak rate below base", ErrConfig, t.Name)
			}
		default:
			return fmt.Errorf("%w: tenant %q class %q (want sprinting, opportunistic or bundled)", ErrConfig, t.Name, t.Class)
		}
	}
	for _, o := range c.Others {
		if o.PDU < 0 || o.PDU >= len(c.PDUs) {
			return fmt.Errorf("%w: other load references pdu %d of %d", ErrConfig, o.PDU, len(c.PDUs))
		}
		if o.Leased <= 0 {
			return fmt.Errorf("%w: other load on pdu %d leases %v W", ErrConfig, o.PDU, o.Leased)
		}
	}
	return nil
}

func sprintModel(name string) (workload.LatencyModel, error) {
	switch name {
	case "search":
		return workload.SearchModel(), nil
	case "web":
		return workload.WebModel(), nil
	default:
		return workload.LatencyModel{}, fmt.Errorf("%w: unknown sprinting workload %q (want search or web)", ErrConfig, name)
	}
}

func oppModel(name string) (workload.ThroughputModel, error) {
	switch name {
	case "wordcount":
		return workload.WordCountModel(), nil
	case "terasort":
		return workload.TeraSortModel(), nil
	case "graph":
		return workload.GraphModel(), nil
	default:
		return workload.ThroughputModel{}, fmt.Errorf("%w: unknown opportunistic workload %q", ErrConfig, name)
	}
}

// Build materializes the sim.Scenario.
func (c *Custom) Build() (sim.Scenario, error) {
	if err := c.Validate(); err != nil {
		return sim.Scenario{}, err
	}
	slotSec := c.SlotSeconds
	if slotSec == 0 {
		slotSec = 120
	}
	priceStep := c.PriceStep
	if priceStep == 0 {
		priceStep = 0.001
	}
	algo, err := core.ParseAlgorithm(c.Algorithm)
	if err != nil {
		return sim.Scenario{}, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	pdus := make([]power.PDU, len(c.PDUs))
	for i, p := range c.PDUs {
		pdus[i] = power.PDU{ID: p.ID, Capacity: p.Capacity}
	}
	racks := make([]power.Rack, len(c.Racks))
	for i, r := range c.Racks {
		racks[i] = power.Rack{ID: r.ID, Tenant: r.Tenant, PDU: r.PDU, Guaranteed: r.Guaranteed, SpotHeadroom: r.Headroom}
	}
	topo, err := power.NewTopology(c.UPSCapacity, pdus, racks)
	if err != nil {
		return sim.Scenario{}, err
	}

	seedOf := func(explicit int64, i int) int64 {
		if explicit != 0 {
			return explicit
		}
		return c.Seed + int64(i)*37 + 5
	}
	var agents []tenant.Agent
	for i, t := range c.Tenants {
		if t.Class == "bundled" {
			a, err := c.buildBundled(topo, t, seedOf(t.Load.Seed, i), slotSec)
			if err != nil {
				return sim.Scenario{}, err
			}
			agents = append(agents, a)
			continue
		}
		rackIdx, ok := topo.RackByID(t.Rack)
		if !ok {
			return sim.Scenario{}, fmt.Errorf("%w: rack %q missing after build", ErrConfig, t.Rack)
		}
		reserved := topo.Racks[rackIdx].Guaranteed
		headroom := topo.Racks[rackIdx].SpotHeadroom
		switch t.Class {
		case "sprinting":
			model, err := sprintModel(t.Workload)
			if err != nil {
				return sim.Scenario{}, err
			}
			cost := workload.DefaultSprintCost()
			if t.Workload == "web" {
				cost = workload.WebSprintCost()
			}
			load, err := trace.GenerateArrivals(trace.ArrivalConfig{
				Name: t.Name + "-load", Seed: seedOf(t.Load.Seed, i),
				Slots: c.Slots, SlotSeconds: slotSec,
				BaseRate: t.Load.BaseRate, PeakRate: t.Load.PeakRate,
				BurstFraction: t.Load.BurstFraction, BurstFactor: t.Load.BurstFactor,
			})
			if err != nil {
				return sim.Scenario{}, err
			}
			agents = append(agents, &tenant.Sprint{
				TenantName: t.Name, RackIndex: rackIdx, Model: model, Cost: cost,
				Reserved: reserved, Headroom: headroom, Load: load,
				QMin: t.QMin, QMax: t.QMax,
			})
		case "opportunistic":
			model, err := oppModel(t.Workload)
			if err != nil {
				return sim.Scenario{}, err
			}
			mean := t.Backlog.MeanUnits
			if mean == 0 {
				mean = 10
			}
			backlog, err := trace.GenerateBacklog(trace.BacklogConfig{
				Name: t.Name + "-backlog", Seed: seedOf(t.Backlog.Seed, i),
				Slots: c.Slots, SlotSeconds: slotSec,
				ActiveFraction: t.Backlog.ActiveFraction, MeanUnits: mean,
			})
			if err != nil {
				return sim.Scenario{}, err
			}
			agents = append(agents, &tenant.Opp{
				TenantName: t.Name, RackIndex: rackIdx, Model: model,
				Cost: workload.DefaultOppCost(), Reserved: reserved, Headroom: headroom,
				Backlog: backlog, QMin: t.QMin, QMax: t.QMax,
			})
		}
	}

	others := make([]*trace.Power, len(c.PDUs))
	otherLeased := 0.0
	for i := range others {
		others[i] = &trace.Power{Name: fmt.Sprintf("other-%d", i), SlotSeconds: slotSec}
	}
	for i, o := range c.Others {
		meanFrac := o.MeanFrac
		if meanFrac == 0 {
			meanFrac = 0.72
		}
		vol := o.Volatility
		if vol == 0 {
			vol = 0.008
		}
		tr, err := trace.GeneratePower(trace.PowerConfig{
			Name: fmt.Sprintf("other-pdu%d", o.PDU), Seed: seedOf(o.Seed, 1000+i),
			Slots: c.Slots, SlotSeconds: slotSec,
			MeanWatts: o.Leased * meanFrac, MinWatts: o.Leased * 0.3, MaxWatts: o.Leased,
			Volatility: vol,
		})
		if err != nil {
			return sim.Scenario{}, err
		}
		otherLeased += o.Leased
		// Multiple entries for the same PDU sum.
		if others[o.PDU].Watts == nil {
			others[o.PDU] = tr
		} else {
			for s := range others[o.PDU].Watts {
				others[o.PDU].Watts[s] += tr.At(s)
			}
		}
	}
	// PDUs with no configured other-load get an all-zero trace of the right
	// length.
	for i := range others {
		if others[i].Watts == nil {
			others[i].Watts = make([]float64, c.Slots)
		}
	}

	name := c.Name
	if name == "" {
		name = "custom"
	}
	return sim.Scenario{
		Name:             name,
		Topo:             topo,
		Agents:           agents,
		OtherLoad:        others,
		OtherLeasedWatts: otherLeased,
		Slots:            c.Slots,
		SlotSeconds:      slotSec,
		MarketOptions:    core.Options{PriceStep: priceStep, Ration: true, Algorithm: algo},
		Pricing:          operator.DefaultPricing(),
		Predict:          power.PredictOptions{UnderPredictionFactor: c.UnderPrediction},
		BreakerTolerance: 0.05,
	}, nil
}

// buildBundled materializes a multi-rack bundled tenant.
func (c *Custom) buildBundled(topo *power.Topology, t CustomTenant, seed int64, slotSec int) (tenant.Agent, error) {
	model, err := sprintModel(t.Workload)
	if err != nil {
		return nil, err
	}
	tiers := make([]tenant.Tier, 0, len(t.Racks))
	for _, id := range t.Racks {
		idx, ok := topo.RackByID(id)
		if !ok {
			return nil, fmt.Errorf("%w: rack %q missing after build", ErrConfig, id)
		}
		tiers = append(tiers, tenant.Tier{
			Rack: idx, Model: model,
			Reserved: topo.Racks[idx].Guaranteed,
			Headroom: topo.Racks[idx].SpotHeadroom,
		})
	}
	load, err := trace.GenerateArrivals(trace.ArrivalConfig{
		Name: t.Name + "-load", Seed: seed,
		Slots: c.Slots, SlotSeconds: slotSec,
		BaseRate: t.Load.BaseRate, PeakRate: t.Load.PeakRate,
		BurstFraction: t.Load.BurstFraction, BurstFactor: t.Load.BurstFactor,
	})
	if err != nil {
		return nil, err
	}
	slo := t.SLOms
	if slo == 0 {
		slo = 200
	}
	cost := workload.DefaultSprintCost()
	cost.SLOms = slo
	return &tenant.BundledSprint{
		TenantName: t.Name,
		Tiers:      tiers,
		Cost:       cost,
		Load:       load,
		QMin:       t.QMin,
		QMax:       t.QMax,
	}, nil
}
