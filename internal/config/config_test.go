package config

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"spotdc/internal/sim"
)

func validTestbed() *Scenario {
	return &Scenario{Kind: "testbed", Mode: "spotdc", Seed: 42, Slots: 100}
}

func TestValidate(t *testing.T) {
	if err := validTestbed().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mod  func(*Scenario)
	}{
		{"bad kind", func(c *Scenario) { c.Kind = "nope" }},
		{"bad mode", func(c *Scenario) { c.Mode = "fast" }},
		{"bad policy", func(c *Scenario) { c.Policy = "greedy" }},
		{"zero slots", func(c *Scenario) { c.Slots = 0 }},
		{"scaled without tenants", func(c *Scenario) { c.Kind = "scaled" }},
		{"bad loss prob", func(c *Scenario) { c.BidLossProb = 2 }},
	}
	for _, c := range cases {
		cfg := validTestbed()
		c.mod(cfg)
		if err := cfg.Validate(); !errors.Is(err, ErrConfig) {
			t.Errorf("%s: err = %v, want ErrConfig", c.name, err)
		}
	}
}

func TestRunMode(t *testing.T) {
	for in, want := range map[string]sim.Mode{
		"":        sim.ModeSpotDC,
		"spotdc":  sim.ModeSpotDC,
		"capped":  sim.ModePowerCapped,
		"maxperf": sim.ModeMaxPerf,
	} {
		c := validTestbed()
		c.Mode = in
		got, err := c.RunMode()
		if err != nil || got != want {
			t.Errorf("RunMode(%q) = %v, %v", in, got, err)
		}
	}
}

func TestBuildTestbedRuns(t *testing.T) {
	cfg := validTestbed()
	cfg.BidLossProb = 0.1
	cfg.FaultSeed = 3
	sc, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	if sc.BidLossProb != 0.1 || sc.FaultSeed != 3 {
		t.Error("fault settings not propagated")
	}
	mode, err := cfg.RunMode()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sc, sim.RunOptions{Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots != 100 {
		t.Errorf("slots = %d", res.Slots)
	}
	if cfg.OtherLeasedWatts() != 500 {
		t.Errorf("other leased = %v", cfg.OtherLeasedWatts())
	}
}

func TestBuildScaled(t *testing.T) {
	cfg := &Scenario{Kind: "scaled", Seed: 1, Slots: 10, Tenants: 16, JitterFrac: 0.2}
	sc, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Agents) != 16 {
		t.Errorf("agents = %d", len(sc.Agents))
	}
	if cfg.OtherLeasedWatts() != 1000 {
		t.Errorf("other leased = %v", cfg.OtherLeasedWatts())
	}
}

func TestReadRejectsUnknownFields(t *testing.T) {
	_, err := Read(strings.NewReader(`{"kind":"testbed","slots":10,"tpyo":1}`))
	if !errors.Is(err, ErrConfig) {
		t.Errorf("unknown field accepted: %v", err)
	}
	if _, err := Read(strings.NewReader(`not json`)); !errors.Is(err, ErrConfig) {
		t.Errorf("garbage accepted: %v", err)
	}
	if _, err := Read(strings.NewReader(`{"kind":"testbed","slots":0}`)); !errors.Is(err, ErrConfig) {
		t.Errorf("invalid values accepted: %v", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	cfg := &Scenario{
		Kind: "scaled", Mode: "maxperf", Seed: 9, Slots: 50, SlotSeconds: 300,
		Policy: "step", CapacityScale: 1.05, Tenants: 24, JitterFrac: 0.1,
		BidLossProb: 0.05, FaultSeed: 2,
	}
	var buf bytes.Buffer
	if err := cfg.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *cfg {
		t.Errorf("round trip: %+v != %+v", got, cfg)
	}
	// Write refuses invalid configs.
	bad := validTestbed()
	bad.Kind = "x"
	if err := bad.Write(&bytes.Buffer{}); !errors.Is(err, ErrConfig) {
		t.Errorf("invalid write accepted: %v", err)
	}
}

func TestSaveLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scenario.json")
	cfg := validTestbed()
	if err := cfg.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *cfg {
		t.Errorf("load mismatch: %+v", got)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}
