package config

import (
	"errors"
	"strings"
	"testing"

	"spotdc/internal/sim"
)

// validCustom builds a small two-PDU custom data center.
func validCustom() *Custom {
	return &Custom{
		Name:        "edge-site",
		Slots:       200,
		SlotSeconds: 120,
		Seed:        11,
		UPSCapacity: 700,
		PDUs: []CustomPDU{
			{ID: "P1", Capacity: 360},
			{ID: "P2", Capacity: 375},
		},
		Racks: []CustomRack{
			{ID: "r1", Tenant: "fe", PDU: 0, Guaranteed: 145, Headroom: 60},
			{ID: "r2", Tenant: "batch", PDU: 1, Guaranteed: 125, Headroom: 60},
		},
		Tenants: []CustomTenant{
			{Name: "fe", Class: "sprinting", Rack: "r1", Workload: "search",
				QMin: 0.18, QMax: 0.45,
				Load: &CustomArrivals{BaseRate: 40, PeakRate: 68, BurstFraction: 0.3, BurstFactor: 1.15}},
			{Name: "batch", Class: "opportunistic", Rack: "r2", Workload: "wordcount",
				QMin: 0.02, QMax: 0.16,
				Backlog: &CustomBacklog{ActiveFraction: 0.4}},
		},
		Others: []CustomOther{
			{PDU: 0, Leased: 150},
			{PDU: 1, Leased: 180},
		},
	}
}

func TestCustomValidate(t *testing.T) {
	if err := validCustom().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mod  func(*Custom)
	}{
		{"zero slots", func(c *Custom) { c.Slots = 0 }},
		{"zero ups", func(c *Custom) { c.UPSCapacity = 0 }},
		{"no pdus", func(c *Custom) { c.PDUs = nil }},
		{"no racks", func(c *Custom) { c.Racks = nil }},
		{"no tenants", func(c *Custom) { c.Tenants = nil }},
		{"rack bad pdu", func(c *Custom) { c.Racks[0].PDU = 9 }},
		{"tenant no name", func(c *Custom) { c.Tenants[0].Name = "" }},
		{"tenant bad rack", func(c *Custom) { c.Tenants[0].Rack = "rX" }},
		{"tenant bad prices", func(c *Custom) { c.Tenants[0].QMin = 0.5 }},
		{"tenant bad class", func(c *Custom) { c.Tenants[0].Class = "mystery" }},
		{"sprint bad workload", func(c *Custom) { c.Tenants[0].Workload = "wordcount" }},
		{"sprint no load", func(c *Custom) { c.Tenants[0].Load = nil }},
		{"sprint peak<base", func(c *Custom) { c.Tenants[0].Load.PeakRate = 1 }},
		{"opp bad workload", func(c *Custom) { c.Tenants[1].Workload = "web" }},
		{"opp no backlog", func(c *Custom) { c.Tenants[1].Backlog = nil }},
		{"opp bad fraction", func(c *Custom) { c.Tenants[1].Backlog.ActiveFraction = 2 }},
		{"other bad pdu", func(c *Custom) { c.Others[0].PDU = 5 }},
		{"other zero lease", func(c *Custom) { c.Others[0].Leased = 0 }},
	}
	for _, tc := range cases {
		c := validCustom()
		tc.mod(c)
		if err := c.Validate(); !errors.Is(err, ErrConfig) {
			t.Errorf("%s: err = %v, want ErrConfig", tc.name, err)
		}
	}
}

func TestCustomBuildAndRun(t *testing.T) {
	sc, err := validCustom().Build()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "edge-site" || len(sc.Agents) != 2 || len(sc.Topo.PDUs) != 2 {
		t.Fatalf("scenario: %s agents=%d pdus=%d", sc.Name, len(sc.Agents), len(sc.Topo.PDUs))
	}
	if sc.OtherLeasedWatts != 330 {
		t.Errorf("other leased = %v", sc.OtherLeasedWatts)
	}
	res, err := sim.Run(sc, sim.RunOptions{Mode: sim.ModeSpotDC})
	if err != nil {
		t.Fatal(err)
	}
	if res.SpotRevenue <= 0 {
		t.Error("custom site sold nothing over 200 busy slots")
	}
	fe := res.Tenants["fe"]
	if fe == nil || fe.Reserved != 145 {
		t.Errorf("fe stats: %+v", fe)
	}
}

func TestCustomDefaults(t *testing.T) {
	c := validCustom()
	c.SlotSeconds = 0
	c.PriceStep = 0
	c.Name = ""
	sc, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	if sc.SlotSeconds != 120 || sc.Name != "custom" {
		t.Errorf("defaults: slot=%d name=%s", sc.SlotSeconds, sc.Name)
	}
}

func TestCustomNoOthersZeroTrace(t *testing.T) {
	c := validCustom()
	c.Others = nil
	sc, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	for m, tr := range sc.OtherLoad {
		if tr.Len() != c.Slots {
			t.Errorf("pdu %d trace len = %d", m, tr.Len())
		}
		if tr.At(0) != 0 {
			t.Errorf("pdu %d trace not zero", m)
		}
	}
	if sc.OtherLeasedWatts != 0 {
		t.Errorf("leased = %v", sc.OtherLeasedWatts)
	}
}

func TestCustomThroughScenarioConfig(t *testing.T) {
	wrapper := &Scenario{Kind: "custom", Mode: "spotdc", Custom: validCustom(), BidLossProb: 0.1, FaultSeed: 2}
	if err := wrapper.Validate(); err != nil {
		t.Fatal(err)
	}
	sc, err := wrapper.Build()
	if err != nil {
		t.Fatal(err)
	}
	if sc.BidLossProb != 0.1 {
		t.Error("fault injection not propagated")
	}
	if wrapper.OtherLeasedWatts() != 330 {
		t.Errorf("leased = %v", wrapper.OtherLeasedWatts())
	}
	// Missing custom block.
	if err := (&Scenario{Kind: "custom"}).Validate(); !errors.Is(err, ErrConfig) {
		t.Error("missing custom block accepted")
	}
}

func TestCustomJSONRoundTrip(t *testing.T) {
	wrapper := &Scenario{Kind: "custom", Custom: validCustom()}
	var sb strings.Builder
	if err := wrapper.Write(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Custom == nil || got.Custom.Name != "edge-site" || len(got.Custom.Tenants) != 2 {
		t.Errorf("round trip: %+v", got.Custom)
	}
	if got.Custom.Tenants[0].Load == nil || got.Custom.Tenants[0].Load.PeakRate != 68 {
		t.Errorf("load lost: %+v", got.Custom.Tenants[0])
	}
	// Unknown fields inside the custom block also fail loudly.
	if _, err := Read(strings.NewReader(`{"kind":"custom","custom":{"slots":1,"ups_capacity":1,"oops":2}}`)); !errors.Is(err, ErrConfig) {
		t.Errorf("unknown custom field accepted: %v", err)
	}
}

func TestCustomBundledTenant(t *testing.T) {
	c := validCustom()
	c.Racks = append(c.Racks,
		CustomRack{ID: "r3", Tenant: "svc", PDU: 0, Guaranteed: 110, Headroom: 50},
		CustomRack{ID: "r4", Tenant: "svc", PDU: 1, Guaranteed: 110, Headroom: 50},
	)
	c.Tenants = append(c.Tenants, CustomTenant{
		Name: "svc", Class: "bundled", Racks: []string{"r3", "r4"}, Workload: "web",
		QMin: 0.1, QMax: 0.4, SLOms: 200,
		Load: &CustomArrivals{BaseRate: 40, PeakRate: 75, BurstFraction: 0.3, BurstFactor: 1.2},
	})
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	sc, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Agents) != 3 {
		t.Fatalf("agents = %d", len(sc.Agents))
	}
	res, err := sim.Run(sc, sim.RunOptions{Mode: sim.ModeSpotDC})
	if err != nil {
		t.Fatal(err)
	}
	ts := res.Tenants["svc"]
	if ts == nil || ts.Reserved != 220 {
		t.Fatalf("svc stats: %+v", ts)
	}
	// Bundled validation failures.
	bad := *c
	bad.Tenants = append([]CustomTenant{}, c.Tenants...)
	bad.Tenants[2].Racks = []string{"r3"}
	if err := bad.Validate(); !errors.Is(err, ErrConfig) {
		t.Error("single-rack bundle accepted")
	}
	bad.Tenants[2].Racks = []string{"r3", "nope"}
	if err := bad.Validate(); !errors.Is(err, ErrConfig) {
		t.Error("unknown bundle rack accepted")
	}
	bad.Tenants[2].Racks = []string{"r3", "r4"}
	bad.Tenants[2].Load = nil
	if err := bad.Validate(); !errors.Is(err, ErrConfig) {
		t.Error("bundle without load accepted")
	}
}
