package config

import (
	"strings"
	"testing"
)

// FuzzRead exercises the configuration parser: it must never panic, and
// any configuration it accepts must build a runnable scenario or fail
// with a proper error (not a panic).
func FuzzRead(f *testing.F) {
	f.Add(`{"kind":"testbed","slots":10}`)
	f.Add(`{"kind":"scaled","slots":5,"tenants":8}`)
	f.Add(`{"kind":"custom","custom":{"slots":1,"ups_capacity":100,"pdus":[{"id":"p","capacity":50}],"racks":[{"id":"r","pdu":0,"guaranteed":20,"headroom":10}],"tenants":[{"name":"t","class":"opportunistic","rack":"r","workload":"graph","qmin":0.01,"qmax":0.1,"backlog":{"active_fraction":0.5}}]}}`)
	f.Add(`{"kind":"bogus"}`)
	f.Add(`{`)
	f.Add(`[]`)
	f.Fuzz(func(t *testing.T, input string) {
		cfg, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		// Accepted configs must be buildable or fail cleanly.
		if _, err := cfg.Build(); err != nil {
			return
		}
		if _, err := cfg.RunMode(); err != nil {
			t.Fatalf("built config has invalid mode: %v", err)
		}
	})
}
