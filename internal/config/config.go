// Package config loads and saves declarative simulation configurations as
// JSON, so operators can version scenario definitions (cmd/spotdc-sim
// -config). Only serializable knobs appear here; programmatic hooks
// (bidding hints, price feedback) remain code-level concerns.
package config

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"spotdc/internal/core"
	"spotdc/internal/sim"
	"spotdc/internal/tenant"
)

// ErrConfig reports an invalid configuration.
var ErrConfig = errors.New("config: invalid configuration")

// Scenario is the serializable description of one simulation run.
type Scenario struct {
	// Kind selects the scenario builder: "testbed" (Table I) or "scaled".
	Kind string `json:"kind"`
	// Mode selects the scheme: "spotdc", "capped" or "maxperf".
	Mode string `json:"mode"`
	// Seed drives all synthetic traces.
	Seed int64 `json:"seed"`
	// Slots is the horizon; SlotSeconds the slot length.
	Slots       int `json:"slots"`
	SlotSeconds int `json:"slot_seconds,omitempty"`
	// Policy is the bidding policy: "elastic" (default), "simple", "step",
	// "full".
	Policy string `json:"policy,omitempty"`
	// OtherVolatility, OtherMeanFrac, SprintBurstFraction,
	// OppActiveFraction and SprintPhase mirror sim.TestbedOptions.
	OtherVolatility     float64 `json:"other_volatility,omitempty"`
	OtherMeanFrac       float64 `json:"other_mean_frac,omitempty"`
	SprintBurstFraction float64 `json:"sprint_burst_fraction,omitempty"`
	OppActiveFraction   float64 `json:"opp_active_fraction,omitempty"`
	SprintPhase         float64 `json:"sprint_phase,omitempty"`
	// CapacityScale multiplies PDU/UPS capacities (availability knob).
	CapacityScale float64 `json:"capacity_scale,omitempty"`
	// PriceStep is the clearing scan granularity in $/kW·h.
	PriceStep float64 `json:"price_step,omitempty"`
	// Algorithm selects the clearing engine: "auto" (default; exact when
	// bids expose their breakpoints), "scan" or "exact".
	Algorithm string `json:"algorithm,omitempty"`
	// UnderPrediction is the Fig. 17 conservative prediction factor.
	UnderPrediction float64 `json:"under_prediction,omitempty"`
	// Tenants and JitterFrac apply to kind "scaled".
	Tenants    int     `json:"tenants,omitempty"`
	JitterFrac float64 `json:"jitter_frac,omitempty"`
	// BidLossProb injects communication loss; FaultSeed drives it.
	BidLossProb float64 `json:"bid_loss_prob,omitempty"`
	FaultSeed   int64   `json:"fault_seed,omitempty"`
	// Custom describes a bespoke data center (kind "custom"); all
	// testbed/scaled knobs above are ignored except Mode, BidLossProb and
	// FaultSeed.
	Custom *Custom `json:"custom,omitempty"`
}

// Validate checks the configuration.
func (c *Scenario) Validate() error {
	switch c.Kind {
	case "testbed", "scaled":
	case "custom":
		if c.Custom == nil {
			return fmt.Errorf("%w: kind custom needs a custom block", ErrConfig)
		}
		if err := c.Custom.Validate(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("%w: kind %q (want testbed, scaled or custom)", ErrConfig, c.Kind)
	}
	switch c.Mode {
	case "", "spotdc", "capped", "maxperf":
	default:
		return fmt.Errorf("%w: mode %q (want spotdc, capped or maxperf)", ErrConfig, c.Mode)
	}
	if _, err := c.policy(); err != nil {
		return err
	}
	if c.Kind != "custom" && c.Slots <= 0 {
		return fmt.Errorf("%w: slots %d must be positive", ErrConfig, c.Slots)
	}
	if c.Kind == "scaled" && c.Tenants <= 0 {
		return fmt.Errorf("%w: kind scaled needs tenants > 0", ErrConfig)
	}
	if c.BidLossProb < 0 || c.BidLossProb > 1 {
		return fmt.Errorf("%w: bid_loss_prob %v outside [0,1]", ErrConfig, c.BidLossProb)
	}
	if _, err := core.ParseAlgorithm(c.Algorithm); err != nil {
		return fmt.Errorf("%w: %v", ErrConfig, err)
	}
	return nil
}

func (c *Scenario) policy() (tenant.BidPolicy, error) {
	switch c.Policy {
	case "", "elastic":
		return tenant.PolicyElastic, nil
	case "simple":
		return tenant.PolicySimple, nil
	case "step":
		return tenant.PolicyStep, nil
	case "full":
		return tenant.PolicyFull, nil
	default:
		return 0, fmt.Errorf("%w: policy %q", ErrConfig, c.Policy)
	}
}

// RunMode converts the config's mode string.
func (c *Scenario) RunMode() (sim.Mode, error) {
	switch c.Mode {
	case "", "spotdc":
		return sim.ModeSpotDC, nil
	case "capped":
		return sim.ModePowerCapped, nil
	case "maxperf":
		return sim.ModeMaxPerf, nil
	default:
		return 0, fmt.Errorf("%w: mode %q", ErrConfig, c.Mode)
	}
}

// Build materializes the sim.Scenario.
func (c *Scenario) Build() (sim.Scenario, error) {
	if err := c.Validate(); err != nil {
		return sim.Scenario{}, err
	}
	pol, err := c.policy()
	if err != nil {
		return sim.Scenario{}, err
	}
	algo, err := core.ParseAlgorithm(c.Algorithm)
	if err != nil {
		return sim.Scenario{}, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	tb := sim.TestbedOptions{
		Seed:                c.Seed,
		Slots:               c.Slots,
		SlotSeconds:         c.SlotSeconds,
		OtherVolatility:     c.OtherVolatility,
		OtherMeanFrac:       c.OtherMeanFrac,
		SprintBurstFraction: c.SprintBurstFraction,
		OppActiveFraction:   c.OppActiveFraction,
		SprintPhase:         c.SprintPhase,
		Policy:              pol,
		CapacityScale:       c.CapacityScale,
		PriceStep:           c.PriceStep,
		Algorithm:           algo,
		UnderPrediction:     c.UnderPrediction,
	}
	var sc sim.Scenario
	switch c.Kind {
	case "testbed":
		sc, err = sim.Testbed(tb)
	case "scaled":
		jitter := c.JitterFrac
		sc, err = sim.Scaled(sim.ScaledOptions{Testbed: tb, Tenants: c.Tenants, JitterFrac: jitter})
	case "custom":
		sc, err = c.Custom.Build()
	}
	if err != nil {
		return sim.Scenario{}, err
	}
	sc.BidLossProb = c.BidLossProb
	sc.FaultSeed = c.FaultSeed
	return sc, nil
}

// OtherLeasedWatts returns the non-participating lease the profit baseline
// should include for this configuration.
func (c *Scenario) OtherLeasedWatts() float64 {
	switch c.Kind {
	case "scaled":
		return 500 * float64((c.Tenants+7)/8)
	case "custom":
		if c.Custom == nil {
			return 0
		}
		sum := 0.0
		for _, o := range c.Custom.Others {
			sum += o.Leased
		}
		return sum
	default:
		return 500
	}
}

// Read parses a configuration, rejecting unknown fields so typos fail
// loudly.
func Read(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var c Scenario
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Load reads a configuration file.
func Load(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Write serializes the configuration with stable, indented formatting.
func (c *Scenario) Write(w io.Writer) error {
	if err := c.Validate(); err != nil {
		return err
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(c); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// Save writes the configuration to a file.
func (c *Scenario) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
