package rackpdu

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func newPDU(t *testing.T, budget float64) *PDU {
	t.Helper()
	p, err := New(Config{ID: "rpdu-1", Outlets: 4, BudgetWatts: budget})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewDefaults(t *testing.T) {
	p, err := New(Config{ID: "x", BudgetWatts: 100})
	if err != nil {
		t.Fatal(err)
	}
	if p.Outlets() != DefaultOutlets {
		t.Errorf("outlets = %d, want %d", p.Outlets(), DefaultOutlets)
	}
	if p.ID() != "x" || p.Budget() != 100 {
		t.Error("config not applied")
	}
	if _, err := New(Config{Outlets: -1}); !errors.Is(err, ErrOutlet) {
		t.Error("negative outlets accepted")
	}
	if _, err := New(Config{BudgetWatts: -1}); !errors.Is(err, ErrBudget) {
		t.Error("negative budget accepted")
	}
}

func TestFeedAndRead(t *testing.T) {
	p := newPDU(t, 200)
	if err := p.Feed(0, 50); err != nil {
		t.Fatal(err)
	}
	if err := p.Feed(1, 30); err != nil {
		t.Fatal(err)
	}
	if got, err := p.ReadOutlet(0); err != nil || got != 50 {
		t.Errorf("ReadOutlet(0) = %v, %v", got, err)
	}
	if got := p.ReadTotal(); got != 80 {
		t.Errorf("ReadTotal = %v", got)
	}
	if err := p.Feed(9, 1); !errors.Is(err, ErrOutlet) {
		t.Error("bad outlet accepted")
	}
	if _, err := p.ReadOutlet(-1); !errors.Is(err, ErrOutlet) {
		t.Error("bad outlet read accepted")
	}
	if err := p.Feed(0, -5); err == nil {
		t.Error("negative draw accepted")
	}
}

func TestOutletSwitching(t *testing.T) {
	p := newPDU(t, 200)
	if on, err := p.OutletOn(2); err != nil || !on {
		t.Fatalf("outlets should start on: %v, %v", on, err)
	}
	if err := p.Feed(2, 40); err != nil {
		t.Fatal(err)
	}
	if err := p.SetOutlet(2, false); err != nil {
		t.Fatal(err)
	}
	if got, _ := p.ReadOutlet(2); got != 0 {
		t.Errorf("switched-off outlet draws %v", got)
	}
	// Feeding a switched-off outlet stays at zero.
	if err := p.Feed(2, 40); err != nil {
		t.Fatal(err)
	}
	if got, _ := p.ReadOutlet(2); got != 0 {
		t.Errorf("off outlet accepted draw: %v", got)
	}
	if err := p.SetOutlet(2, true); err != nil {
		t.Fatal(err)
	}
	if err := p.Feed(2, 40); err != nil {
		t.Fatal(err)
	}
	if got, _ := p.ReadOutlet(2); got != 40 {
		t.Errorf("re-enabled outlet draw = %v", got)
	}
	if err := p.SetOutlet(99, true); !errors.Is(err, ErrOutlet) {
		t.Error("bad outlet switch accepted")
	}
	if _, err := p.OutletOn(99); !errors.Is(err, ErrOutlet) {
		t.Error("bad OutletOn accepted")
	}
}

func TestSetBudgetAndResets(t *testing.T) {
	p := newPDU(t, 100)
	if err := p.SetBudget(175); err != nil {
		t.Fatal(err)
	}
	if p.Budget() != 175 {
		t.Errorf("budget = %v", p.Budget())
	}
	if err := p.SetBudget(-1); !errors.Is(err, ErrBudget) {
		t.Error("negative budget accepted")
	}
	if p.Resets() != 1 {
		t.Errorf("resets = %d, want 1", p.Resets())
	}
}

func TestResetRate(t *testing.T) {
	// The paper cites 20+ budget resets per second for this class of PDU;
	// with a 5 ms emulated firmware delay we comfortably exceed that.
	p, err := New(Config{ID: "x", Outlets: 2, BudgetWatts: 100, ResetDelay: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	const n = 25
	for i := 0; i < n; i++ {
		if err := p.SetBudget(float64(100 + i)); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if elapsed > time.Second {
		t.Errorf("%d resets took %v; want ≥20 resets/s", n, elapsed)
	}
	if p.Resets() != n {
		t.Errorf("resets = %d", p.Resets())
	}
}

func TestObserveAndViolations(t *testing.T) {
	p := newPDU(t, 100)
	if err := p.Feed(0, 60); err != nil {
		t.Fatal(err)
	}
	total, over := p.Observe()
	if total != 60 || over {
		t.Errorf("Observe = %v, %v", total, over)
	}
	if err := p.Feed(1, 70); err != nil {
		t.Fatal(err)
	}
	total, over = p.Observe()
	if total != 130 || !over {
		t.Errorf("Observe = %v, %v; want 130, true", total, over)
	}
	if p.Violations() != 1 {
		t.Errorf("violations = %d", p.Violations())
	}
}

func TestEnforceCap(t *testing.T) {
	p := newPDU(t, 100)
	if err := p.Feed(0, 80); err != nil {
		t.Fatal(err)
	}
	if err := p.Feed(1, 40); err != nil {
		t.Fatal(err)
	}
	shed := p.EnforceCap()
	if shed != 20 {
		t.Errorf("shed = %v, want 20", shed)
	}
	if got := p.ReadTotal(); got > 100+1e-9 {
		t.Errorf("total after cap = %v", got)
	}
	// Proportional: 80:40 ratio preserved.
	o0, _ := p.ReadOutlet(0)
	o1, _ := p.ReadOutlet(1)
	if o0/o1 < 1.99 || o0/o1 > 2.01 {
		t.Errorf("cap not proportional: %v / %v", o0, o1)
	}
	// No-op when under budget.
	if shed := p.EnforceCap(); shed != 0 {
		t.Errorf("second cap shed %v", shed)
	}
	// Zero-draw edge.
	empty := newPDU(t, 0)
	if shed := empty.EnforceCap(); shed != 0 {
		t.Errorf("empty cap shed %v", shed)
	}
}

func TestConcurrentAccess(t *testing.T) {
	p := newPDU(t, 500)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch g % 4 {
				case 0:
					_ = p.SetBudget(float64(100 + i%50))
				case 1:
					_ = p.Feed(i%4, float64(i%100))
				case 2:
					p.Observe()
				case 3:
					p.ReadTotal()
				}
			}
		}(g)
	}
	wg.Wait()
	if p.Resets() == 0 {
		t.Error("no resets recorded")
	}
}
