// Package rackpdu emulates the intelligent (metered-by-outlet, switched)
// rack PDU the paper's testbed uses (APC AP8632): per-outlet power
// metering, outlet switching, and — the capability SpotDC depends on —
// runtime resetting of the rack-level power budget, which commodity units
// sustain at 20+ resets per second without timeouts.
//
// The emulation is safe for concurrent use: the operator resets budgets
// from its market loop while the simulation feeds per-outlet draw.
package rackpdu

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"spotdc/internal/metrics"
)

// Metrics is the rack-PDU emulation's pre-registered handle set, shared by
// every PDU of a run (counters aggregate across units). Build one with
// NewMetrics and hand it to Config.Metrics; nil disables instrumentation.
type Metrics struct {
	resets     *metrics.Counter
	violations *metrics.Counter
	caps       *metrics.Counter
}

// NewMetrics registers the rack-PDU families on r. Registration is
// idempotent per registry.
func NewMetrics(r *metrics.Registry) *Metrics {
	return &Metrics{
		resets: r.Counter("spotdc_rackpdu_budget_resets_total",
			"Rack power-budget resets applied (SpotDC issues one per rack per slot; the AP8632 sustains 20+/s)."),
		violations: r.Counter("spotdc_rackpdu_budget_violations_total",
			"Observations where a rack's metered draw exceeded its budget."),
		caps: r.Counter("spotdc_rackpdu_caps_enforced_total",
			"Involuntary power cuts applied to racks that kept exceeding their budget."),
	}
}

// ErrOutlet reports an out-of-range outlet index.
var ErrOutlet = errors.New("rackpdu: invalid outlet")

// ErrBudget reports an invalid budget value.
var ErrBudget = errors.New("rackpdu: invalid budget")

// DefaultOutlets matches the AP8632's 24 outlets.
const DefaultOutlets = 24

// PDU is one emulated intelligent rack PDU.
type PDU struct {
	mu sync.Mutex

	id          string
	outletDraw  []float64
	outletOn    []bool
	budget      float64
	resetDelay  time.Duration
	resets      int
	overBudget  int // slots/observations where draw exceeded budget
	lastObserve float64
	met         *Metrics
}

// Config parameterizes a PDU.
type Config struct {
	// ID names the unit.
	ID string
	// Outlets is the outlet count (default DefaultOutlets).
	Outlets int
	// BudgetWatts is the initial rack power budget (guaranteed capacity).
	BudgetWatts float64
	// ResetDelay emulates the firmware latency of a budget reset; the
	// AP8632 sustains 20+ resets/s, i.e. < 50 ms. Zero means instantaneous
	// (useful in simulations).
	ResetDelay time.Duration
	// Metrics, if non-nil, counts budget resets, violations, and enforced
	// caps on the shared rack-PDU handle set.
	Metrics *Metrics
}

// New builds a PDU with all outlets switched on.
func New(cfg Config) (*PDU, error) {
	n := cfg.Outlets
	if n == 0 {
		n = DefaultOutlets
	}
	if n < 0 {
		return nil, fmt.Errorf("%w: %d outlets", ErrOutlet, n)
	}
	if cfg.BudgetWatts < 0 {
		return nil, fmt.Errorf("%w: %v W", ErrBudget, cfg.BudgetWatts)
	}
	p := &PDU{
		id:         cfg.ID,
		outletDraw: make([]float64, n),
		outletOn:   make([]bool, n),
		budget:     cfg.BudgetWatts,
		resetDelay: cfg.ResetDelay,
		met:        cfg.Metrics,
	}
	for i := range p.outletOn {
		p.outletOn[i] = true
	}
	return p, nil
}

// ID returns the unit's name.
func (p *PDU) ID() string { return p.id }

// Outlets returns the outlet count.
func (p *PDU) Outlets() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.outletDraw)
}

// SetBudget resets the rack-level power budget — the operation SpotDC
// issues every slot to deliver guaranteed + granted spot capacity.
func (p *PDU) SetBudget(watts float64) error {
	if watts < 0 {
		return fmt.Errorf("%w: %v W", ErrBudget, watts)
	}
	if p.resetDelay > 0 {
		time.Sleep(p.resetDelay)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.budget = watts
	p.resets++
	if p.met != nil {
		p.met.resets.Inc()
	}
	return nil
}

// Budget returns the current rack power budget.
func (p *PDU) Budget() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.budget
}

// Resets returns how many budget resets have been applied.
func (p *PDU) Resets() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.resets
}

// SetOutlet switches an outlet on or off. Switching off zeroes its draw.
func (p *PDU) SetOutlet(outlet int, on bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if outlet < 0 || outlet >= len(p.outletOn) {
		return fmt.Errorf("%w: %d of %d", ErrOutlet, outlet, len(p.outletOn))
	}
	p.outletOn[outlet] = on
	if !on {
		p.outletDraw[outlet] = 0
	}
	return nil
}

// OutletOn reports whether an outlet is switched on.
func (p *PDU) OutletOn(outlet int) (bool, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if outlet < 0 || outlet >= len(p.outletOn) {
		return false, fmt.Errorf("%w: %d of %d", ErrOutlet, outlet, len(p.outletOn))
	}
	return p.outletOn[outlet], nil
}

// Feed sets the instantaneous draw of an outlet (the simulation's stand-in
// for a plugged server). Feeding a switched-off outlet draws nothing.
func (p *PDU) Feed(outlet int, watts float64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if outlet < 0 || outlet >= len(p.outletDraw) {
		return fmt.Errorf("%w: %d of %d", ErrOutlet, outlet, len(p.outletDraw))
	}
	if watts < 0 {
		return fmt.Errorf("rackpdu: negative draw %v", watts)
	}
	if !p.outletOn[outlet] {
		p.outletDraw[outlet] = 0
		return nil
	}
	p.outletDraw[outlet] = watts
	return nil
}

// ReadOutlet returns one outlet's metered draw (per-outlet metering is the
// AP8632 feature the paper relies on for billing and monitoring).
func (p *PDU) ReadOutlet(outlet int) (float64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if outlet < 0 || outlet >= len(p.outletDraw) {
		return 0, fmt.Errorf("%w: %d of %d", ErrOutlet, outlet, len(p.outletDraw))
	}
	return p.outletDraw[outlet], nil
}

// ReadTotal returns the rack's total metered draw.
func (p *PDU) ReadTotal() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.total()
}

func (p *PDU) total() float64 {
	sum := 0.0
	for _, d := range p.outletDraw {
		sum += d
	}
	return sum
}

// Observe samples the PDU: it returns the total draw and whether it exceeds
// the budget, accumulating the violation counter the operator uses to warn
// (and eventually cut) tenants that exceed their assigned capacity
// (Section III-C, "handling exceptions").
func (p *PDU) Observe() (totalWatts float64, overBudget bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	t := p.total()
	p.lastObserve = t
	if t > p.budget+1e-9 {
		p.overBudget++
		if p.met != nil {
			p.met.violations.Inc()
		}
		return t, true
	}
	return t, false
}

// Violations returns how many observations exceeded the budget.
func (p *PDU) Violations() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.overBudget
}

// EnforceCap scales every outlet's draw down proportionally so the total
// fits the budget — the involuntary power cut applied to tenants that keep
// exceeding their assigned capacity. It returns the watts shed.
func (p *PDU) EnforceCap() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	t := p.total()
	if t <= p.budget || t == 0 {
		return 0
	}
	scale := p.budget / t
	for i := range p.outletDraw {
		p.outletDraw[i] *= scale
	}
	if p.met != nil {
		p.met.caps.Inc()
	}
	return t - p.budget
}
