package proto

import (
	"spotdc/internal/metrics"
)

// Bid-rejection reason label values of spotdc_proto_bid_rejects_total.
const (
	rejectSlot    = "slot"    // negative slot index
	rejectRack    = "rack"    // rack not registered for the tenant
	rejectInvalid = "invalid" // demand function failed validation
	rejectStale   = "stale"   // bid for a slot the market is past
	rejectWindow  = "window"  // bid beyond the acceptance window
)

// Outbound-drop reason label values of spotdc_proto_outbound_drops_total.
const (
	dropQueueFull  = "full"  // slow consumer: bounded queue overflowed
	dropWriteError = "error" // send failed (deadline expiry, reset, sever)
)

// Metrics is the protocol layer's pre-registered instrumentation handle
// set, shared by the server, clients, and fault injectors of one run (the
// networked harness wires the same set everywhere, so /metrics shows the
// whole protocol plane at once). Build one with NewMetrics and hand it to
// ServerOptions.Metrics / ClientOptions.Metrics / FaultInjector.SetMetrics.
// All methods are nil-receiver safe: an uninstrumented run pays one nil
// check per event.
type Metrics struct {
	sessionsActive *metrics.Gauge
	sessionsOpened *metrics.Counter
	sessionsReaped *metrics.Counter
	reconnects     *metrics.Counter

	bidsAccepted *metrics.Counter
	rejSlot      *metrics.Counter
	rejRack      *metrics.Counter
	rejInvalid   *metrics.Counter
	rejStale     *metrics.Counter
	rejWindow    *metrics.Counter

	broadcastsOK     *metrics.Counter
	broadcastsFailed *metrics.Counter
	bcastJSON        *metrics.Counter
	bcastBinary      *metrics.Counter

	outQueueDepth    *metrics.Gauge
	outDropFull      *metrics.Counter
	outDropError     *metrics.Counter
	deadlineExpiries *metrics.Counter

	faultDrops  *metrics.Counter
	faultDelays *metrics.Counter
	faultSevers *metrics.Counter
}

// NewMetrics registers the protocol families on r and returns the handle
// set. Registration is idempotent per registry.
func NewMetrics(r *metrics.Registry) *Metrics {
	rejects := r.CounterVec("spotdc_proto_bid_rejects_total",
		"Bid messages rejected by the server, by reason (slot, rack, invalid, stale, window).", "reason")
	bcast := r.CounterVec("spotdc_proto_broadcasts_total",
		"Per-session price broadcast sends, by result (ok, failed); a failed send leaves that tenant on the no-spot default.", "result")
	faults := r.CounterVec("spotdc_proto_faults_injected_total",
		"Protocol faults injected by the seeded FaultInjector, by kind (drop, delay, sever).", "kind")
	bcastEnc := r.CounterVec("spotdc_proto_broadcasts_by_encoding_total",
		"Successful per-session broadcast sends (price, budget_reset), by wire encoding (json, binary).", "encoding")
	outDrops := r.CounterVec("spotdc_proto_outbound_drops_total",
		"Outbound messages dropped by the writer path, by reason (full = slow-consumer queue overflow, error = failed send); either drops the session to the no-spot default.", "reason")
	return &Metrics{
		sessionsActive: r.Gauge("spotdc_proto_sessions_active",
			"Currently connected tenant sessions."),
		sessionsOpened: r.Counter("spotdc_proto_sessions_opened_total",
			"Tenant sessions accepted (hello handshakes completed)."),
		sessionsReaped: r.Counter("spotdc_proto_sessions_reaped_total",
			"Sessions expired by the idle reaper or evicted by a re-hello."),
		reconnects: r.Counter("spotdc_proto_client_reconnects_total",
			"Dropped client sessions restored by automatic redial."),
		bidsAccepted: r.Counter("spotdc_proto_bids_accepted_total",
			"Bid messages validated and buffered for a future slot."),
		rejSlot:          rejects.With(rejectSlot),
		rejRack:          rejects.With(rejectRack),
		rejInvalid:       rejects.With(rejectInvalid),
		rejStale:         rejects.With(rejectStale),
		rejWindow:        rejects.With(rejectWindow),
		broadcastsOK:     bcast.With("ok"),
		broadcastsFailed: bcast.With("failed"),
		bcastJSON:        bcastEnc.With("json"),
		bcastBinary:      bcastEnc.With("binary"),
		outQueueDepth: r.Gauge("spotdc_proto_outbound_queue_depth",
			"Messages currently buffered in per-session outbound queues, summed across sessions."),
		outDropFull:  outDrops.With(dropQueueFull),
		outDropError: outDrops.With(dropWriteError),
		deadlineExpiries: r.Counter("spotdc_proto_send_deadline_expiries_total",
			"Outbound sends that hit the per-message write deadline (ServerOptions.WriteTimeout)."),
		faultDrops:       faults.With("drop"),
		faultDelays:      faults.With("delay"),
		faultSevers:      faults.With("sever"),
	}
}

func (pm *Metrics) setSessions(n int) {
	if pm == nil {
		return
	}
	pm.sessionsActive.Set(float64(n))
}

func (pm *Metrics) sessionOpened() {
	if pm == nil {
		return
	}
	pm.sessionsOpened.Inc()
}

func (pm *Metrics) sessionReaped() {
	if pm == nil {
		return
	}
	pm.sessionsReaped.Inc()
}

func (pm *Metrics) clientReconnected() {
	if pm == nil {
		return
	}
	pm.reconnects.Inc()
}

func (pm *Metrics) bidAccepted() {
	if pm == nil {
		return
	}
	pm.bidsAccepted.Inc()
}

// bidRejected records one rejected bid message by reason (one of the
// reject* constants).
func (pm *Metrics) bidRejected(reason string) {
	if pm == nil {
		return
	}
	switch reason {
	case rejectSlot:
		pm.rejSlot.Inc()
	case rejectRack:
		pm.rejRack.Inc()
	case rejectInvalid:
		pm.rejInvalid.Inc()
	case rejectStale:
		pm.rejStale.Inc()
	case rejectWindow:
		pm.rejWindow.Inc()
	}
}

func (pm *Metrics) broadcast(ok bool) {
	if pm == nil {
		return
	}
	if ok {
		pm.broadcastsOK.Inc()
	} else {
		pm.broadcastsFailed.Inc()
	}
}

// broadcastEncoded records one successful broadcast send by wire encoding.
func (pm *Metrics) broadcastEncoded(e Encoding) {
	if pm == nil {
		return
	}
	if e == WireBinary {
		pm.bcastBinary.Inc()
	} else {
		pm.bcastJSON.Inc()
	}
}

// queueDepth moves the summed outbound queue depth gauge by delta.
func (pm *Metrics) queueDepth(delta int) {
	if pm == nil {
		return
	}
	pm.outQueueDepth.Add(float64(delta))
}

// outboundDropped records one dropped outbound message by reason (one of
// the drop* constants).
func (pm *Metrics) outboundDropped(reason string) {
	if pm == nil {
		return
	}
	if reason == dropQueueFull {
		pm.outDropFull.Inc()
	} else {
		pm.outDropError.Inc()
	}
}

func (pm *Metrics) sendDeadlineExpired() {
	if pm == nil {
		return
	}
	pm.deadlineExpiries.Inc()
}
