package proto

import (
	"bytes"
	"errors"
	"io"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"spotdc/internal/core"
)

// memStream is an in-memory ReadWriteCloser: Send appends to the buffer,
// Recv consumes it — enough for single-goroutine encode-then-decode tests.
type memStream struct{ bytes.Buffer }

func (m *memStream) Close() error { return nil }

// wireFixtures covers all six message types plus the empty-field edges.
var wireFixtures = []Message{
	{Type: TypeHello, Tenant: "acme", Racks: []string{"S-1", "S-2"}},
	{Type: TypeHello, Tenant: "bare"}, // no racks
	{Type: TypeHeartBeat, Tenant: "acme", Slot: 7},
	{Type: TypeHeartBeat},
	{Type: TypeBid, Tenant: "acme", Slot: 9, Bids: []RackBid{
		{Rack: "S-1", DMax: 50, QMin: 0.1, DMin: 10, QMax: 0.4},
		{Rack: "S-2", DMax: 32.5, QMin: 0.05, DMin: 0, QMax: 1.25},
	}},
	{Type: TypePrice, Tenant: "acme", Slot: 9, Price: 0.0375, Grants: []Grant{
		{Rack: "S-1", Watts: 240.5}, {Rack: "S-2", Watts: 0},
	}},
	{Type: TypePrice, Tenant: "acme", Slot: 10}, // degraded slot: zero price, no grants
	{Type: TypeBudgetReset, Tenant: "acme", Slot: 11, Grants: []Grant{{Rack: "S-1", Watts: 120}}},
	{Type: TypeError, Slot: 3, Detail: `unknown rack "X-9"`},
	{Type: TypeBid, Tenant: "negative", Slot: -1}, // slots are int64 on the wire
}

// copyMsg deep-copies a decoded message out of codec-owned scratch.
func copyMsg(m Message) Message {
	m.Racks = append([]string(nil), m.Racks...)
	m.Bids = append([]RackBid(nil), m.Bids...)
	m.Grants = append([]Grant(nil), m.Grants...)
	return m
}

// msgEqual compares messages with float64s compared by bit pattern (NaN
// payloads must survive the wire unchanged).
func msgEqual(a, b Message) bool {
	f64eq := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	if a.Type != b.Type || a.Tenant != b.Tenant || a.Slot != b.Slot || a.Detail != b.Detail ||
		!f64eq(a.Price, b.Price) ||
		len(a.Racks) != len(b.Racks) || len(a.Bids) != len(b.Bids) || len(a.Grants) != len(b.Grants) {
		return false
	}
	for i := range a.Racks {
		if a.Racks[i] != b.Racks[i] {
			return false
		}
	}
	for i := range a.Bids {
		x, y := a.Bids[i], b.Bids[i]
		if x.Rack != y.Rack || !f64eq(x.DMax, y.DMax) || !f64eq(x.QMin, y.QMin) ||
			!f64eq(x.DMin, y.DMin) || !f64eq(x.QMax, y.QMax) {
			return false
		}
	}
	for i := range a.Grants {
		if a.Grants[i].Rack != b.Grants[i].Rack || !f64eq(a.Grants[i].Watts, b.Grants[i].Watts) {
			return false
		}
	}
	return true
}

func TestBinaryCodecRoundTrip(t *testing.T) {
	var buf memStream
	c := NewBinaryCodec(&buf)
	for _, m := range wireFixtures {
		if err := c.Send(m); err != nil {
			t.Fatalf("Send(%+v): %v", m, err)
		}
		got, err := c.Recv()
		if err != nil {
			t.Fatalf("Recv after %+v: %v", m, err)
		}
		if got := copyMsg(got); !msgEqual(got, m) {
			t.Errorf("round-trip mismatch:\n sent %+v\n got  %+v", m, got)
		}
	}
}

// TestBinaryCodecMatchesJSON pins cross-encoding equivalence: every fixture
// decodes to the same Message through both codecs.
func TestBinaryCodecMatchesJSON(t *testing.T) {
	for _, m := range wireFixtures {
		var jb, bb memStream
		jc, bc := NewCodec(&jb), NewBinaryCodec(&bb)
		if err := jc.Send(m); err != nil {
			t.Fatalf("json Send: %v", err)
		}
		if err := bc.Send(m); err != nil {
			t.Fatalf("binary Send: %v", err)
		}
		jm, err := jc.Recv()
		if err != nil {
			t.Fatalf("json Recv: %v", err)
		}
		bm, err := bc.Recv()
		if err != nil {
			t.Fatalf("binary Recv: %v", err)
		}
		if bm := copyMsg(bm); !msgEqual(jm, bm) {
			t.Errorf("encodings disagree for %+v:\n json   %+v\n binary %+v", m, jm, bm)
		}
	}
}

// frame encodes one message to raw bytes for corruption tests.
func frame(t *testing.T, m Message) []byte {
	t.Helper()
	var buf memStream
	if err := NewBinaryCodec(&buf).Send(m); err != nil {
		t.Fatal(err)
	}
	return append([]byte(nil), buf.Bytes()...)
}

func TestBinaryCodecRejectsMalformed(t *testing.T) {
	base := frame(t, Message{Type: TypePrice, Tenant: "t", Slot: 4, Price: 1.5,
		Grants: []Grant{{Rack: "S-1", Watts: 10}}})
	corrupt := func(mut func(b []byte) []byte) []byte {
		return mut(append([]byte(nil), base...))
	}
	cases := map[string][]byte{
		"bad magic":   corrupt(func(b []byte) []byte { b[0] = '{'; return b }),
		"bad version": corrupt(func(b []byte) []byte { b[1] = 2; return b }),
		"unknown type code": corrupt(func(b []byte) []byte {
			b[2] = 99
			return b
		}),
		"oversize declared length": corrupt(func(b []byte) []byte {
			n := MaxLineBytes + 1
			b[3], b[4], b[5] = byte(n>>16), byte(n>>8), byte(n)
			return b
		}),
		"trailing payload bytes": corrupt(func(b []byte) []byte {
			b = append(b, 0xEE)
			n := len(b) - binFrameHeader
			b[3], b[4], b[5] = byte(n>>16), byte(n>>8), byte(n)
			return b
		}),
		"truncated inside payload": corrupt(func(b []byte) []byte {
			n := len(b) - binFrameHeader - 4 // length claims 4 bytes the frame lacks
			b[3], b[4], b[5] = byte(n>>16), byte(n>>8), byte(n)
			return b[:len(b)-8]
		}),
		// A hostile count the frame cannot possibly hold must be rejected by
		// the size pre-check, not trusted as an allocation hint.
		"hostile bid count": func() []byte {
			b := frame(t, Message{Type: TypeBid, Tenant: "t", Slot: 1})
			b[len(b)-2], b[len(b)-1] = 0xFF, 0xFF
			return b
		}(),
		"hostile grant count": func() []byte {
			b := frame(t, Message{Type: TypeBudgetReset, Tenant: "t", Slot: 1})
			copy(b[len(b)-4:], []byte{0xFF, 0xFF, 0xFF, 0xFF})
			return b
		}(),
		"string overruns frame": func() []byte {
			b := frame(t, Message{Type: TypeError, Tenant: "t", Detail: "x"})
			b[len(b)-3] = 0xFF // detail length now far beyond the payload
			return b
		}(),
	}
	for name, raw := range cases {
		st := &memStream{}
		st.Write(raw)
		c := NewBinaryCodec(st)
		if _, err := c.Recv(); err == nil {
			t.Errorf("%s: decoded without error", name)
		} else if !errors.Is(err, ErrProtocol) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("%s: want ErrProtocol or ErrUnexpectedEOF, got %v", name, err)
		}
	}
}

func TestBinaryCodecCleanEOF(t *testing.T) {
	c := NewBinaryCodec(&memStream{})
	if _, err := c.Recv(); err != io.EOF {
		t.Fatalf("empty stream: want io.EOF, got %v", err)
	}
	st := &memStream{}
	st.Write(frame(t, Message{Type: TypeHeartBeat, Tenant: "t"})[:3])
	c = NewBinaryCodec(st)
	if _, err := c.Recv(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("mid-frame EOF: want ErrUnexpectedEOF, got %v", err)
	}
}

func TestSendRejectsUnencodableType(t *testing.T) {
	var buf memStream
	if err := NewBinaryCodec(&buf).Send(Message{Type: "gossip"}); !errors.Is(err, ErrProtocol) {
		t.Fatalf("want ErrProtocol, got %v", err)
	}
}

func TestParseEncodingAndPolicy(t *testing.T) {
	for in, want := range map[string]Encoding{"json": WireJSON, "binary": WireBinary} {
		got, err := ParseEncoding(in)
		if err != nil || got != want {
			t.Errorf("ParseEncoding(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseEncoding("carrier-pigeon"); err == nil {
		t.Error("ParseEncoding accepted nonsense")
	}
	for in, want := range map[string]WirePolicy{"any": WireAny, "": WireAny, "json": WireJSONOnly, "binary": WireBinaryOnly} {
		got, err := ParseWirePolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseWirePolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseWirePolicy("morse"); err == nil {
		t.Error("ParseWirePolicy accepted nonsense")
	}
}

// TestServerNegotiatesMixedEncodings proves the hello negotiation: a JSON
// client and a binary client share one market — both bid, both receive the
// same slot's price broadcast, each in its own encoding.
func TestServerNegotiatesMixedEncodings(t *testing.T) {
	s := newServer(t)
	jc, err := Dial(s.Addr(), "alpha", []string{"S-1"})
	if err != nil {
		t.Fatal(err)
	}
	defer jc.Close()
	bc, err := DialOpts(s.Addr(), "beta", []string{"S-2"}, ClientOptions{Wire: WireBinary})
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	waitSessions(t, s, 2)

	if err := jc.SubmitBids(1, []RackBid{{Rack: "S-1", DMax: 50, QMin: 0.1, DMin: 10, QMax: 0.4}}); err != nil {
		t.Fatal(err)
	}
	if err := bc.SubmitBids(1, []RackBid{{Rack: "S-2", DMax: 40, QMin: 0.2, DMin: 5, QMax: 0.5}}); err != nil {
		t.Fatal(err)
	}
	bids := awaitBids(t, s, 1, 2)
	if len(bids) != 2 {
		t.Fatalf("want 2 bids, got %d", len(bids))
	}

	allocs := []core.Allocation{
		{Rack: 0, Tenant: "alpha", Watts: 120},
		{Rack: 1, Tenant: "beta", Watts: 80},
	}
	rackID := func(i int) string { return []string{"S-1", "S-2", "O-1", "O-2"}[i] }
	var wg sync.WaitGroup
	results := make([]struct {
		price  float64
		grants []Grant
		err    error
	}, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		results[0].price, results[0].grants, results[0].err = jc.AwaitPrice(1, 2*time.Second)
	}()
	go func() {
		defer wg.Done()
		results[1].price, results[1].grants, results[1].err = bc.AwaitPrice(1, 2*time.Second)
	}()
	time.Sleep(50 * time.Millisecond) // let both waiters arm
	s.Broadcast(1, 0.25, allocs, rackID)
	wg.Wait()
	for i, want := range []Grant{{Rack: "S-1", Watts: 120}, {Rack: "S-2", Watts: 80}} {
		r := results[i]
		if r.err != nil {
			t.Fatalf("client %d: %v", i, r.err)
		}
		if r.price != 0.25 || len(r.grants) != 1 || r.grants[0] != want {
			t.Errorf("client %d: price %v grants %+v, want price 0.25 grants [%+v]", i, r.price, r.grants, want)
		}
	}
}

// TestWirePolicyRejects proves the operator-side -wire restriction: a
// client on the disallowed encoding is refused at hello with a typed error
// in its own encoding.
func TestWirePolicyRejects(t *testing.T) {
	cases := []struct {
		policy WirePolicy
		wire   Encoding
	}{
		{WireJSONOnly, WireBinary},
		{WireBinaryOnly, WireJSON},
	}
	for _, tc := range cases {
		s := newServerOpts(t, ServerOptions{Wire: tc.policy})
		_, err := DialOpts(s.Addr(), "t", []string{"S-1"}, ClientOptions{Wire: tc.wire})
		if err == nil || !strings.Contains(err.Error(), "not accepted") {
			t.Errorf("policy %v vs wire %v: want policy rejection, got %v", tc.policy, tc.wire, err)
		}
		// The allowed encoding still connects.
		ok, err := DialOpts(s.Addr(), "t", []string{"S-1"}, ClientOptions{Wire: 1 - tc.wire})
		if err != nil {
			t.Errorf("policy %v vs wire %v: want success, got %v", tc.policy, 1-tc.wire, err)
			continue
		}
		ok.Close()
	}
}

// TestSortedSessions pins the Sessions() ordering contract.
func TestSortedSessions(t *testing.T) {
	s := newServer(t)
	for _, name := range []string{"zeta/S-1", "alpha/S-2", "mid/O-1"} {
		parts := strings.SplitN(name, "/", 2)
		c, err := Dial(s.Addr(), parts[0], []string{parts[1]})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
	}
	waitSessions(t, s, 3)
	got := s.Sessions()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sessions() = %v, want %v", got, want)
		}
	}
}
