package proto

import (
	"io"
	"net"
	"testing"
	"time"
)

func TestFaultPlanValidate(t *testing.T) {
	bad := []FaultPlan{
		{DropProb: -0.1},
		{DropProb: 1.1},
		{DelayProb: 2},
		{SeverProb: -1},
		{MaxDelay: -time.Second},
	}
	for i, p := range bad {
		if _, err := NewFaultInjector(p); err == nil {
			t.Errorf("plan %d accepted: %+v", i, p)
		}
	}
	if _, err := NewFaultInjector(FaultPlan{}); err != nil {
		t.Errorf("zero plan rejected: %v", err)
	}
}

func TestFaultInjectorInactiveWrapIsIdentity(t *testing.T) {
	fi, err := NewFaultInjector(FaultPlan{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	if got := fi.Wrap(a); got != a {
		t.Error("inactive plan should not wrap the connection")
	}
	var nilInj *FaultInjector
	if got := nilInj.Wrap(a); got != a {
		t.Error("nil injector should not wrap the connection")
	}
}

func TestFaultyConnDropsWrites(t *testing.T) {
	fi, err := NewFaultInjector(FaultPlan{Seed: 7, DropProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, b := net.Pipe()
	wrapped := fi.Wrap(a)
	done := make(chan []byte, 1)
	go func() {
		buf, _ := io.ReadAll(b)
		done <- buf
	}()
	if n, err := wrapped.Write([]byte("hello\n")); err != nil || n != 6 {
		t.Fatalf("dropped write reported (%d, %v), want full success", n, err)
	}
	wrapped.Close()
	b.SetReadDeadline(time.Now().Add(time.Second))
	if got := <-done; len(got) != 0 {
		t.Errorf("peer received %q despite 100%% drop", got)
	}
	if st := fi.Stats(); st.Drops != 1 {
		t.Errorf("stats = %+v, want 1 drop", st)
	}
}

func TestFaultyConnSeversConnection(t *testing.T) {
	fi, err := NewFaultInjector(FaultPlan{Seed: 3, SeverProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, b := net.Pipe()
	defer b.Close()
	wrapped := fi.Wrap(a)
	if _, err := wrapped.Write([]byte("x\n")); err == nil {
		t.Fatal("severed write succeeded")
	}
	// Subsequent writes fail immediately too.
	if _, err := wrapped.Write([]byte("y\n")); err == nil {
		t.Fatal("write after sever succeeded")
	}
	// The peer observes the closure.
	b.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := b.Read(make([]byte, 1)); err == nil {
		t.Error("peer read succeeded after sever")
	}
	if st := fi.Stats(); st.Severs != 1 {
		t.Errorf("stats = %+v, want 1 sever", st)
	}
}

func TestFaultyConnDelaysWrites(t *testing.T) {
	fi, err := NewFaultInjector(FaultPlan{Seed: 5, DelayProb: 1, MaxDelay: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	wrapped := fi.Wrap(a)
	go func() {
		_, _ = wrapped.Write([]byte("z"))
	}()
	buf := make([]byte, 1)
	b.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := b.Read(buf); err != nil || buf[0] != 'z' {
		t.Fatalf("delayed write lost: %v", err)
	}
	if st := fi.Stats(); st.Delays != 1 {
		t.Errorf("stats = %+v, want 1 delay", st)
	}
}

func TestFaultStreamSeededReproducibly(t *testing.T) {
	// Two injectors with the same plan make identical per-write decisions
	// for a serial write sequence.
	pattern := func(seed int64) []bool {
		fi, err := NewFaultInjector(FaultPlan{Seed: seed, DropProb: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		a, b := net.Pipe()
		defer a.Close()
		go func() { _, _ = io.Copy(io.Discard, b) }()
		wrapped := fi.Wrap(a)
		var drops []bool
		last := int64(0)
		for i := 0; i < 64; i++ {
			_, _ = wrapped.Write([]byte("m\n"))
			st := fi.Stats()
			drops = append(drops, st.Drops > last)
			last = st.Drops
		}
		return drops
	}
	p1, p2 := pattern(42), pattern(42)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("write %d: drop decision differs across same-seed injectors", i)
		}
	}
	p3 := pattern(43)
	same := true
	for i := range p1 {
		if p1[i] != p3[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced the identical 64-write fault pattern")
	}
}
